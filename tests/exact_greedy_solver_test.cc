#include <gtest/gtest.h>

#include "common/rng.h"
#include "solvers/exact_solver.h"
#include "solvers/greedy_solver.h"
#include "solvers/rbsc_reduction_solver.h"
#include "workload/author_journal.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

TEST(ExactSolverTest, Fig1ScenarioOneOptimumIsOne) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  // Q3-only deletion; but the instance carries both views, so the true
  // optimum pays Q4 collateral too. Build a Q3-only instance instead.
  std::vector<const ConjunctiveQuery*> q3 = {generated->queries[0].get()};
  Result<VseInstance> q3_instance =
      VseInstance::Create(*generated->database, q3);
  ASSERT_TRUE(q3_instance.ok());
  ASSERT_TRUE(q3_instance->MarkForDeletionByValues(0, {"John", "XML"}).ok());

  ExactSolver solver;
  Result<VseSolution> solution = solver.Solve(*q3_instance);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(solution->Feasible());
  EXPECT_DOUBLE_EQ(solution->Cost(), 1.0)
      << "the paper's minimum view side-effect for ΔV=(John, XML)";
  (void)instance;
}

TEST(ExactSolverTest, Fig1BothViewsOptimum) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());
  ExactSolver solver;
  Result<VseSolution> solution = solver.Solve(instance);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->Feasible());
  // Any way to kill Q3(John,XML) needs ≥2 deletions (two witnesses) and
  // kills Q3(John,CUBE) + 3 Q4 tuples at best.
  EXPECT_DOUBLE_EQ(solution->Cost(), 4.0);
}

TEST(ExactSolverTest, EmptyDeltaVIsFree) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  ExactSolver solver;
  Result<VseSolution> solution = solver.Solve(*generated->instance);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->deletion.size(), 0u);
  EXPECT_DOUBLE_EQ(solution->Cost(), 0.0);
}

// Regression: budget exhaustion used to surface as a bare error even when
// the greedy seed gave a feasible incumbent — the partial search result was
// silently discarded. It must now come back as a feasible solution with a
// gap certificate marking the optimum unproven.
TEST(ExactSolverTest, BudgetExhaustionReportsIncumbentWithGap) {
  Rng rng(51);
  RandomWorkloadParams params;
  params.relations = 3;
  params.rows_per_relation = 15;
  params.queries = 4;
  Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
  ASSERT_TRUE(generated.ok());
  ExactSolver solver(/*node_budget=*/1);
  Result<VseSolution> solution = solver.Solve(*generated->instance);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(solution->Feasible());
  EXPECT_TRUE(solution->gap.has_bound);
  EXPECT_FALSE(solution->gap.optimal);
  EXPECT_TRUE(solution->gap.budget_hit);
  EXPECT_DOUBLE_EQ(solution->gap.upper_bound, solution->Cost());
  EXPECT_GE(solution->gap.lower_bound, 0.0);
  EXPECT_LE(solution->gap.lower_bound, solution->gap.upper_bound);
  // The incumbent is the greedy seed: an unbudgeted exact run must not cost
  // more than it.
  ExactSolver full;
  Result<VseSolution> optimal = full.Solve(*generated->instance);
  ASSERT_TRUE(optimal.ok());
  EXPECT_TRUE(optimal->gap.optimal);
  EXPECT_DOUBLE_EQ(optimal->gap.lower_bound, optimal->Cost());
  EXPECT_LE(optimal->Cost(), solution->Cost());
  EXPECT_GE(optimal->Cost(), solution->gap.lower_bound);
}

TEST(GreedySolverTest, AlwaysFeasibleOnFig1) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"Tom", "CUBE"}).ok());
  GreedySolver solver;
  Result<VseSolution> solution = solver.Solve(instance);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->Feasible());
}

TEST(GreedySolverTest, ReverseDeleteKeepsSolutionMinimal) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());
  GreedySolver solver;
  Result<VseSolution> solution = solver.Solve(instance);
  ASSERT_TRUE(solution.ok());
  // Minimality: removing any single deleted tuple breaks feasibility.
  for (const TupleRef& ref : solution->deletion.Sorted()) {
    DeletionSet smaller = solution->deletion;
    smaller.Erase(ref);
    SideEffectReport report = EvaluateDeletion(instance, smaller);
    EXPECT_FALSE(report.eliminates_all_deletions);
  }
}

TEST(SolverComparisonTest, ExactNeverWorseThanHeuristics) {
  Rng rng(52);
  for (int trial = 0; trial < 25; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    params.max_atoms = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;

    ExactSolver exact;
    GreedySolver greedy;
    Result<VseSolution> exact_solution = exact.Solve(instance);
    Result<VseSolution> greedy_solution = greedy.Solve(instance);
    ASSERT_TRUE(exact_solution.ok()) << exact_solution.status().ToString();
    ASSERT_TRUE(greedy_solution.ok());
    ASSERT_TRUE(exact_solution->Feasible());
    ASSERT_TRUE(greedy_solution->Feasible());
    EXPECT_LE(exact_solution->Cost(), greedy_solution->Cost() + 1e-9)
        << "trial " << trial;

    if (instance.all_unique_witness()) {
      RbscReductionSolver rbsc;
      Result<VseSolution> rbsc_solution = rbsc.Solve(instance);
      ASSERT_TRUE(rbsc_solution.ok()) << rbsc_solution.status().ToString();
      EXPECT_TRUE(rbsc_solution->Feasible());
      EXPECT_LE(exact_solution->Cost(), rbsc_solution->Cost() + 1e-9);
    }
  }
}

TEST(RbscReductionSolverTest, RefusesMultiWitnessInstances) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());
  RbscReductionSolver solver;
  EXPECT_EQ(solver.Solve(instance).status().code(),
            StatusCode::kFailedPrecondition)
      << "Q3's (John, XML) has two witnesses";
}

TEST(RbscReductionSolverTest, SolvesKeyPreservingView) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  std::vector<const ConjunctiveQuery*> q4 = {generated->queries[1].get()};
  Result<VseInstance> instance =
      VseInstance::Create(*generated->database, q4);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(
      instance->MarkForDeletionByValues(0, {"John", "TKDE", "XML"}).ok());
  RbscReductionSolver solver;
  Result<VseSolution> solution = solver.Solve(*instance);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(solution->Feasible());
  // Optimal here: delete (John, TKDE), collateral = Q4(John, TKDE, CUBE).
  EXPECT_DOUBLE_EQ(solution->Cost(), 1.0);
}

}  // namespace
}  // namespace delprop
