#include <gtest/gtest.h>

#include "query/containment.h"
#include "query/parser.h"

namespace delprop {
namespace {

class ContainmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("R", 2, {0, 1}).ok());
    ASSERT_TRUE(schema_.AddRelation("S", 2, {0, 1}).ok());
  }

  ConjunctiveQuery Parse(const std::string& text) {
    Result<ConjunctiveQuery> q = ParseQuery(text, schema_, dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  bool Contained(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    Result<bool> r = IsContainedIn(a, b, schema_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && *r;
  }

  Schema schema_;
  ValueDictionary dict_;
};

TEST_F(ContainmentTest, IdenticalQueriesContained) {
  ConjunctiveQuery a = Parse("Q(x, y) :- R(x, y)");
  ConjunctiveQuery b = Parse("P(u, v) :- R(u, v)");
  EXPECT_TRUE(Contained(a, b));
  EXPECT_TRUE(Contained(b, a));
}

TEST_F(ContainmentTest, LongerPathContainedInShorter) {
  // Paths: every 2-step answer's endpoints... R(x,y),R(y,z) with head (x)
  // is contained in "x has an R-edge".
  ConjunctiveQuery two = Parse("Q(x) :- R(x, y), R(y, z)");
  ConjunctiveQuery one = Parse("P(x) :- R(x, y)");
  EXPECT_TRUE(Contained(two, one));
  EXPECT_FALSE(Contained(one, two));
}

TEST_F(ContainmentTest, DifferentRelationsNotContained) {
  ConjunctiveQuery a = Parse("Q(x, y) :- R(x, y)");
  ConjunctiveQuery b = Parse("P(x, y) :- S(x, y)");
  EXPECT_FALSE(Contained(a, b));
}

TEST_F(ContainmentTest, ConstantSpecializesQuery) {
  ConjunctiveQuery general = Parse("Q(x) :- R(x, y)");
  ConjunctiveQuery specific = Parse("P(x) :- R(x, 'c')");
  EXPECT_TRUE(Contained(specific, general));
  EXPECT_FALSE(Contained(general, specific));
}

TEST_F(ContainmentTest, DistinctConstantsDontUnify) {
  ConjunctiveQuery a = Parse("Q(x) :- R(x, 'c')");
  ConjunctiveQuery b = Parse("P(x) :- R(x, 'd')");
  EXPECT_FALSE(Contained(a, b));
  EXPECT_FALSE(Contained(b, a));
}

TEST_F(ContainmentTest, ArityMismatch) {
  ConjunctiveQuery a = Parse("Q(x) :- R(x, y)");
  ConjunctiveQuery b = Parse("P(x, y) :- R(x, y)");
  EXPECT_FALSE(Contained(a, b));
}

TEST_F(ContainmentTest, Equivalence) {
  ConjunctiveQuery redundant = Parse("Q(x) :- R(x, y), R(x, z)");
  ConjunctiveQuery minimal = Parse("P(x) :- R(x, y)");
  Result<bool> eq = AreEquivalent(redundant, minimal, schema_);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  ConjunctiveQuery different = Parse("D(x) :- R(x, y), R(y, x)");
  Result<bool> ne = AreEquivalent(redundant, different, schema_);
  ASSERT_TRUE(ne.ok());
  EXPECT_FALSE(*ne);
}

TEST_F(ContainmentTest, MinimizeDropsRedundantAtom) {
  ConjunctiveQuery q = Parse("Q(x) :- R(x, y), R(x, z)");
  Result<ConjunctiveQuery> minimized = MinimizeQuery(q, schema_);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->atoms().size(), 1u);
  Result<bool> eq = AreEquivalent(*minimized, q, schema_);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_F(ContainmentTest, MinimizeKeepsCore) {
  // The 2-cycle query has no redundant atom.
  ConjunctiveQuery q = Parse("Q(x) :- R(x, y), R(y, x)");
  Result<ConjunctiveQuery> minimized = MinimizeQuery(q, schema_);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->atoms().size(), 2u);
}

TEST_F(ContainmentTest, MinimizeRespectsHeadSafety) {
  // Dropping R(x, y) would strand head variable x: must keep it even though
  // the S atom is redundant... it is not (different relation), so nothing
  // drops here.
  ConjunctiveQuery q = Parse("Q(x, w) :- R(x, y), S(w, v)");
  Result<ConjunctiveQuery> minimized = MinimizeQuery(q, schema_);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->atoms().size(), 2u);
}

TEST_F(ContainmentTest, MinimizeLargerRedundancy) {
  // Three parallel copies collapse to one.
  ConjunctiveQuery q = Parse("Q(x) :- R(x, a), R(x, b), R(x, c)");
  Result<ConjunctiveQuery> minimized = MinimizeQuery(q, schema_);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->atoms().size(), 1u);
}

TEST_F(ContainmentTest, PathDominatesCycleCheck) {
  // Classic: a triangle query is contained in the 2-path query (as boolean
  // patterns with matching heads).
  ConjunctiveQuery triangle = Parse("Q(x) :- R(x, y), R(y, z), R(z, x)");
  ConjunctiveQuery path = Parse("P(x) :- R(x, y), R(y, z)");
  EXPECT_TRUE(Contained(triangle, path));
  EXPECT_FALSE(Contained(path, triangle));
}

}  // namespace
}  // namespace delprop
