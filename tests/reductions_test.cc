#include <gtest/gtest.h>

#include "common/rng.h"
#include "dp/side_effect.h"
#include "reductions/balanced_to_pnpsc.h"
#include "reductions/pnpsc_to_balanced.h"
#include "reductions/rbsc_to_vse.h"
#include "reductions/vse_to_rbsc.h"
#include "setcover/red_blue_solvers.h"
#include "workload/random_rbsc.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

// ---------- Theorem 1 direction: RBSC -> VSE ----------

RbscInstance Fig2Instance() {
  // Fig. 2: one red r1, three blues; C1={r1,b1}, C2={r1,b2}, C3={r1,b3}.
  RbscInstance instance;
  instance.red_count = 1;
  instance.blue_count = 3;
  instance.sets = {{{0}, {0}}, {{0}, {1}}, {{0}, {2}}};
  return instance;
}

TEST(RbscToVseTest, Fig2ShapeMatchesPaper) {
  Result<GeneratedVse> generated = ReduceRbscToVse(Fig2Instance());
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  const VseInstance& instance = *generated->instance;
  // One view per element: Vr1, Vb1, Vb2, Vb3, each with one tuple.
  EXPECT_EQ(instance.view_count(), 4u);
  for (size_t v = 0; v < instance.view_count(); ++v) {
    EXPECT_EQ(instance.view(v).size(), 1u);
  }
  EXPECT_EQ(instance.TotalDeletionTuples(), 3u) << "the three blue views";
  EXPECT_TRUE(instance.all_key_preserving());
  EXPECT_TRUE(instance.all_unique_witness());
  // The red view joins all three set rows (the "join path").
  EXPECT_EQ(instance.view(0).tuple(0).witnesses[0].size(), 3u);
  // The generated table has one row per set.
  EXPECT_EQ(generated->database->total_tuple_count(), 3u);
}

TEST(RbscToVseTest, Fig2CostEquivalence) {
  RbscInstance rbsc = Fig2Instance();
  Result<GeneratedVse> generated = ReduceRbscToVse(rbsc);
  ASSERT_TRUE(generated.ok());
  const VseInstance& instance = *generated->instance;
  // Deleting all three rows covers all blues and the single red: the red
  // view loses its tuple → side-effect 1 (the RBSC cost of {C1,C2,C3}).
  DeletionSet all;
  for (const TupleRef& ref : generated->set_rows) all.Insert(ref);
  SideEffectReport report = EvaluateDeletion(instance, all);
  EXPECT_TRUE(report.eliminates_all_deletions);
  EXPECT_EQ(report.side_effect_count, 1u);
  RbscSolution mapped = MapDeletionToRbscChoice(*generated, all);
  EXPECT_EQ(mapped.chosen.size(), 3u);
  EXPECT_DOUBLE_EQ(RbscCost(rbsc, mapped), 1.0);
}

TEST(RbscToVseTest, RandomCostEquivalence) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    RandomRbscParams params;
    params.red_count = 5;
    params.blue_count = 4;
    params.set_count = 6;
    RbscInstance rbsc = GenerateRandomRbsc(rng, params);
    Result<GeneratedVse> generated = ReduceRbscToVse(rbsc);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    const VseInstance& instance = *generated->instance;
    // For every subset choice made by a solver on the RBSC side, the mapped
    // deletion has side-effect weight == RBSC cost. Spot-check with greedy.
    Result<RbscSolution> greedy = SolveRbscGreedy(rbsc);
    ASSERT_TRUE(greedy.ok());
    DeletionSet deletion;
    for (size_t s : greedy->chosen) {
      deletion.Insert(generated->set_rows[s]);
    }
    SideEffectReport report = EvaluateDeletion(instance, deletion);
    EXPECT_TRUE(report.eliminates_all_deletions);
    // Red views may be filtered if a red occurs in no set; the reduction
    // keeps covered-cost equality for occurring reds, which is what RbscCost
    // measures.
    EXPECT_DOUBLE_EQ(report.side_effect_weight, RbscCost(rbsc, *greedy))
        << "trial " << trial;
  }
}

// ---------- Claim 1 direction: VSE -> RBSC ----------

TEST(VseToRbscTest, RoundTripThroughBothReductions) {
  // Lift an RBSC instance to VSE, reduce back, and check the RBSC image is
  // cost-equivalent via exact solvers.
  RbscInstance original = Fig2Instance();
  Result<GeneratedVse> generated = ReduceRbscToVse(original);
  ASSERT_TRUE(generated.ok());
  Result<VseToRbscMapping> mapping = ReduceVseToRbsc(*generated->instance);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  Result<RbscSolution> image_exact = SolveRbscExact(mapping->rbsc);
  Result<RbscSolution> original_exact = SolveRbscExact(original);
  ASSERT_TRUE(image_exact.ok());
  ASSERT_TRUE(original_exact.ok());
  EXPECT_DOUBLE_EQ(RbscCost(mapping->rbsc, *image_exact),
                   RbscCost(original, *original_exact));
}

TEST(VseToRbscTest, MappedSolutionFeasibleAndCostExact) {
  Rng rng(42);
  for (int trial = 0; trial < 15; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    if (!instance.all_unique_witness()) continue;
    Result<VseToRbscMapping> mapping = ReduceVseToRbsc(instance);
    ASSERT_TRUE(mapping.ok());
    Result<RbscSolution> solved = SolveRbscExact(mapping->rbsc);
    if (!solved.ok()) continue;
    DeletionSet deletion = MapRbscChoiceToDeletion(*mapping, *solved);
    SideEffectReport report = EvaluateDeletion(instance, deletion);
    EXPECT_TRUE(report.eliminates_all_deletions) << "trial " << trial;
    EXPECT_DOUBLE_EQ(report.side_effect_weight,
                     RbscCost(mapping->rbsc, *solved))
        << "trial " << trial;
  }
}

TEST(VseToRbscTest, RequiresMarkedDeletions) {
  Rng rng(43);
  RandomWorkloadParams params;
  params.deletion_fraction = 0.0;
  Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
  ASSERT_TRUE(generated.ok());
  // The generator force-marks one deletion; build a fresh instance with none.
  std::vector<const ConjunctiveQuery*> qs;
  for (const auto& q : generated->queries) qs.push_back(q.get());
  Result<VseInstance> fresh =
      VseInstance::Create(*generated->database, qs);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(ReduceVseToRbsc(*fresh).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------- Theorem 2 / Lemma 1 directions: ±PSC <-> balanced ----------

TEST(PnpscToBalancedTest, CostEquivalenceOnSmallInstance) {
  PnpscInstance pnpsc;
  pnpsc.positive_count = 2;
  pnpsc.negative_count = 2;
  pnpsc.sets = {{{0, 1}, {0}}, {{0}, {1}}, {{1}, {}}};
  Result<GeneratedVse> generated = ReducePnpscToBalancedVse(pnpsc);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  const VseInstance& instance = *generated->instance;

  Result<PnpscSolution> exact = SolvePnpscExact(pnpsc);
  ASSERT_TRUE(exact.ok());
  DeletionSet deletion;
  for (size_t s : exact->chosen) deletion.Insert(generated->set_rows[s]);
  SideEffectReport report = EvaluateDeletion(instance, deletion);
  EXPECT_DOUBLE_EQ(report.balanced_cost, PnpscCost(pnpsc, *exact));

  PnpscSolution mapped = MapDeletionToPnpscChoice(*generated, deletion);
  EXPECT_DOUBLE_EQ(PnpscCost(pnpsc, mapped), PnpscCost(pnpsc, *exact));
}

TEST(PnpscToBalancedTest, RandomBalancedCostEquivalence) {
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    RandomPnpscParams params;
    params.positive_count = 3;
    params.negative_count = 4;
    params.set_count = 5;
    PnpscInstance pnpsc = GenerateRandomPnpsc(rng, params);
    // Skip instances with uncoverable positives: they shift the generated
    // instance's objective by a constant (documented in the reduction).
    std::vector<bool> coverable(params.positive_count, false);
    for (const auto& set : pnpsc.sets) {
      for (size_t p : set.positives) coverable[p] = true;
    }
    bool all_coverable = true;
    for (bool c : coverable) all_coverable &= c;
    if (!all_coverable) continue;

    Result<GeneratedVse> generated = ReducePnpscToBalancedVse(pnpsc);
    ASSERT_TRUE(generated.ok());
    // Random subset choices map with equal balanced cost.
    PnpscSolution choice;
    for (size_t s = 0; s < pnpsc.sets.size(); ++s) {
      if (rng.NextBool(0.5)) choice.chosen.push_back(s);
    }
    DeletionSet deletion;
    for (size_t s : choice.chosen) deletion.Insert(generated->set_rows[s]);
    SideEffectReport report =
        EvaluateDeletion(*generated->instance, deletion);
    EXPECT_DOUBLE_EQ(report.balanced_cost, PnpscCost(pnpsc, choice))
        << "trial " << trial;
  }
}

TEST(BalancedToPnpscTest, ImageCostMatchesBalancedCost) {
  Rng rng(45);
  for (int trial = 0; trial < 15; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    if (!instance.all_unique_witness()) continue;
    if (instance.TotalDeletionTuples() == 0) continue;  // empty workload
    Result<BalancedToPnpscMapping> mapping = ReduceBalancedToPnpsc(instance);
    ASSERT_TRUE(mapping.ok());
    // Any subset of the candidate sets maps to a deletion whose balanced
    // cost equals the ±PSC cost of the subset.
    PnpscSolution choice;
    for (size_t s = 0; s < mapping->pnpsc.sets.size(); ++s) {
      if (rng.NextBool(0.4)) choice.chosen.push_back(s);
    }
    DeletionSet deletion = MapPnpscChoiceToDeletion(*mapping, choice);
    SideEffectReport report = EvaluateDeletion(instance, deletion);
    EXPECT_DOUBLE_EQ(report.balanced_cost, PnpscCost(mapping->pnpsc, choice))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace delprop
