// Unit tests for the delprop-lint static-analysis library: lexer behavior,
// each rule's positive/negative cases, suppression comments, and the
// header-guard path mapping. Files are fed in-memory through SourceFile, so
// the paths below are fake but realistic — several rules are path-scoped.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lexer.h"
#include "lint/linter.h"
#include "lint/rules.h"

namespace delprop {
namespace lint {
namespace {

// Runs `rule` over one in-memory file (Collect then Check, with
// suppressions applied) and returns the surviving diagnostics.
std::vector<Diagnostic> RunRule(std::unique_ptr<Rule> rule,
                                const std::string& path,
                                const std::string& content) {
  Linter linter;
  linter.AddRule(std::move(rule));
  std::vector<SourceFile> files;
  files.emplace_back(path, content);
  return linter.Run(files).diagnostics;
}

// === Lexer ===

TEST(LexerTest, ClassifiesBasicTokens) {
  std::vector<Token> tokens = Tokenize("foo->bar(42, \"s\"); // note");
  ASSERT_EQ(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "->");
  EXPECT_EQ(tokens[4].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[6].kind, TokenKind::kString);
  EXPECT_EQ(tokens[9].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[9].text, "// note");
}

TEST(LexerTest, TracksLinesThroughCommentsAndStrings) {
  std::vector<Token> tokens = Tokenize("a\n/* two\nlines */\nb \"x\ny\" c");
  // "a" line 1, comment line 2, "b" line 4; the unterminated string stops
  // at end of line, so "y" and "c" land on line 5.
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
  EXPECT_EQ(tokens.back().line, 5);
}

TEST(LexerTest, RawStringsSwallowInteriorTokens) {
  std::vector<Token> tokens = Tokenize("x = R\"(std::thread inside)\"; y");
  std::vector<std::string> idents;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier) idents.emplace_back(t.text);
  }
  EXPECT_EQ(idents, (std::vector<std::string>{"x", "y"}));
}

TEST(LexerTest, CommentsAreStrippedFromSourceFileTokens) {
  SourceFile file("a.cc", "x; // std::thread\n/* rand() */ y;");
  for (const Token& t : file.tokens()) {
    EXPECT_NE(t.kind, TokenKind::kComment);
  }
  ASSERT_EQ(file.tokens().size(), 4u);
}

// === discarded-status ===

constexpr const char* kStatusDecls = R"(
  Status Flush();
  Result<int> Parse(const char* text);
)";

TEST(DiscardedStatusTest, FlagsBareCallStatement) {
  std::vector<Diagnostic> diags = RunRule(
      std::make_unique<DiscardedStatusRule>(), "src/tool/a.cc",
      std::string(kStatusDecls) + "void F() { Flush(); }");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "discarded-status");
  EXPECT_EQ(diags[0].line, 4);
}

TEST(DiscardedStatusTest, FlagsMemberChainAndResultCall) {
  std::vector<Diagnostic> diags = RunRule(
      std::make_unique<DiscardedStatusRule>(), "src/tool/a.cc",
      std::string(kStatusDecls) +
          "void F(Engine& e) { e.sub->Flush(); Parse(\"x\"); }");
  EXPECT_EQ(diags.size(), 2u);
}

TEST(DiscardedStatusTest, AcceptsUsedAndExplicitlyDiscardedValues) {
  std::vector<Diagnostic> diags = RunRule(
      std::make_unique<DiscardedStatusRule>(), "src/tool/a.cc",
      std::string(kStatusDecls) + R"(
        void F() {
          Status s = Flush();
          if (!Flush().ok()) return;
          (void)Flush();
          ASSERT_TRUE(Parse("x").ok());
          return Flush();
        })");
  EXPECT_TRUE(diags.empty());
}

TEST(DiscardedStatusTest, CollectsFromOutOfLineDefinitions) {
  DiscardedStatusRule rule;
  SourceFile file("src/tool/a.cc",
                  "Status ScriptEngine::Execute(int x) { return Ok(); }");
  rule.Collect(file);
  EXPECT_TRUE(rule.status_functions().count("Execute"));
}

TEST(DiscardedStatusTest, NameOverloadedWithOtherReturnTypeIsAmbiguous) {
  // `Insert` returns Result<TupleRef> on Database but bool on DeletionSet;
  // the rule must defer such names to the compiler's [[nodiscard]].
  std::string decls =
      "Result<int> Insert(int row);\n"
      "bool Insert(const Ref& ref);\n";
  DiscardedStatusRule probe;
  probe.Collect(SourceFile("src/a.h", decls));
  EXPECT_TRUE(probe.ambiguous_functions().count("Insert"));
  std::vector<Diagnostic> diags =
      RunRule(std::make_unique<DiscardedStatusRule>(), "src/b.cc",
              decls + "void F() { Insert(7); }");
  EXPECT_TRUE(diags.empty());
}

TEST(DiscardedStatusTest, SuppressionCommentSilences) {
  std::vector<Diagnostic> diags = RunRule(
      std::make_unique<DiscardedStatusRule>(), "src/tool/a.cc",
      std::string(kStatusDecls) +
          "void F() {\n"
          "  Flush();  // delprop-lint: discarded-status-ok best effort\n"
          "}");
  EXPECT_TRUE(diags.empty());
}

// === nondeterministic-iteration ===

TEST(NondeterministicIterationTest, FlagsRangeForOverUnorderedLocal) {
  std::vector<Diagnostic> diags = RunRule(
      std::make_unique<NondeterministicIterationRule>(), "src/solvers/s.cc",
      R"(
        void Emit(std::ostream& out) {
          std::unordered_set<TupleRef, TupleRefHash> seen;
          for (const TupleRef& ref : seen) out << Render(ref);
        })");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "nondeterministic-iteration");
  EXPECT_EQ(diags[0].line, 4);
}

TEST(NondeterministicIterationTest, FlagsTreeWideAliasedContainer) {
  // The alias lives in one file, the loop in another — Collect() must carry
  // the alias across files (this is the PositionIndex case).
  Linter linter;
  linter.AddRule(std::make_unique<NondeterministicIterationRule>());
  std::vector<SourceFile> files;
  files.emplace_back(
      "src/runtime/cache.h",
      "using PositionIndex = std::unordered_map<ValueId, Rows>;");
  files.emplace_back("src/solvers/s.cc",
                     "void F(const PositionIndex index) {\n"
                     "  for (const auto& kv : index) Emit(kv);\n"
                     "}");
  LintReport report = linter.Run(files);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].file, "src/solvers/s.cc");
}

TEST(NondeterministicIterationTest, IgnoresOrderedContainersAndClassicFor) {
  std::vector<Diagnostic> diags = RunRule(
      std::make_unique<NondeterministicIterationRule>(), "src/solvers/s.cc",
      R"(
        void F() {
          std::vector<int> rows;
          std::map<int, int> sorted;
          std::unordered_set<int> lookup;
          for (int r : rows) Use(r);
          for (const auto& kv : sorted) Use(kv);
          for (size_t i = 0; i < rows.size(); ++i) Use(rows[i]);
          if (lookup.count(3) > 0) Use(3);
        })");
  EXPECT_TRUE(diags.empty());
}

TEST(NondeterministicIterationTest, OutOfScopePathIsIgnored) {
  // Hash-order loops are allowed where order cannot reach any output, e.g.
  // the query evaluator's probe loops.
  std::vector<Diagnostic> diags = RunRule(
      std::make_unique<NondeterministicIterationRule>(), "src/query/e.cc",
      "void F(std::unordered_set<int> s) { for (int x : s) Accumulate(x); }");
  EXPECT_TRUE(diags.empty());
}

TEST(NondeterministicIterationTest, SuppressionOnPrecedingLine) {
  std::vector<Diagnostic> diags = RunRule(
      std::make_unique<NondeterministicIterationRule>(), "src/dp/d.cc",
      "void F(std::unordered_set<int> s) {\n"
      "  // delprop-lint: nondeterministic-iteration-ok sums are commutative\n"
      "  for (int x : s) total += x;\n"
      "}");
  EXPECT_TRUE(diags.empty());
}

// === raw-randomness ===

TEST(RawRandomnessTest, FlagsEnginesAndCalls) {
  std::vector<Diagnostic> diags =
      RunRule(std::make_unique<RawRandomnessRule>(), "src/workload/w.cc",
              R"(
        void F() {
          std::random_device rd;
          std::mt19937 gen(rd());
          srand(42);
          int x = rand();
        })");
  EXPECT_EQ(diags.size(), 4u);
  for (const Diagnostic& d : diags) EXPECT_EQ(d.rule, "raw-randomness");
}

TEST(RawRandomnessTest, AllowsRngImplementationAndPlainWords) {
  EXPECT_TRUE(RunRule(std::make_unique<RawRandomnessRule>(),
                      "src/common/rng.cc",
                      "void Rng::Seed() { std::mt19937 bootstrap(7); }")
                  .empty());
  // `random` as a word (not a call) and #include <random> are fine.
  EXPECT_TRUE(RunRule(std::make_unique<RawRandomnessRule>(),
                      "src/workload/w.cc",
                      "#include <random>\nint random_edges = 3;")
                  .empty());
}

// === raw-threading ===

TEST(RawThreadingTest, FlagsStdThreadAndAsyncOutsideRuntime) {
  std::vector<Diagnostic> diags =
      RunRule(std::make_unique<RawThreadingRule>(), "src/solvers/s.cc",
              "void F() { std::thread t(Work); auto f = std::async(G); }");
  EXPECT_EQ(diags.size(), 2u);
  for (const Diagnostic& d : diags) EXPECT_EQ(d.rule, "raw-threading");
}

TEST(RawThreadingTest, AllowsRuntimeDirAndUnqualifiedWords) {
  EXPECT_TRUE(RunRule(std::make_unique<RawThreadingRule>(),
                      "src/runtime/thread_pool.cc",
                      "void Pool::Start() { "
                      "workers_.emplace_back(std::thread([] {})); }")
                  .empty());
  EXPECT_TRUE(RunRule(std::make_unique<RawThreadingRule>(), "src/dp/d.cc",
                      "#include <thread>\nint thread = 0; "
                      "std::this_thread::yield();")
                  .empty());
}

// === hot-path-hashing ===

TEST(HotPathHashingTest, FlagsTupleKeyedMapsInSolverLayers) {
  std::vector<Diagnostic> diags = RunRule(
      std::make_unique<HotPathHashingRule>(), "src/solvers/s.cc",
      "std::unordered_map<TupleRef, double, TupleRefHash> damage;\n"
      "std::unordered_map<ViewTupleId, size_t, ViewTupleIdHash> ids;\n");
  ASSERT_EQ(diags.size(), 2u);
  for (const Diagnostic& d : diags) EXPECT_EQ(d.rule, "hot-path-hashing");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_EQ(diags[1].line, 2);
}

TEST(HotPathHashingTest, ScopedToSolverAndSetcoverOnly) {
  const std::string content =
      "std::unordered_map<TupleRef, int, TupleRefHash> m;";
  EXPECT_EQ(RunRule(std::make_unique<HotPathHashingRule>(),
                    "src/setcover/c.cc", content)
                .size(),
            1u);
  // Cold layers (reductions, dp, tools) may keep tuple-keyed maps.
  EXPECT_TRUE(RunRule(std::make_unique<HotPathHashingRule>(),
                      "src/reductions/r.cc", content)
                  .empty());
  EXPECT_TRUE(RunRule(std::make_unique<HotPathHashingRule>(),
                      "tools/delprop_shell.cc", content)
                  .empty());
}

TEST(HotPathHashingTest, OtherKeysAndContainersIgnored) {
  EXPECT_TRUE(RunRule(std::make_unique<HotPathHashingRule>(),
                      "src/solvers/s.cc",
                      "std::unordered_map<std::string, int> by_name;\n"
                      "std::vector<TupleRef> refs;\n"
                      "std::unordered_set<int> ints;\n")
                  .empty());
}

TEST(HotPathHashingTest, SuppressionCommentSilences) {
  EXPECT_TRUE(
      RunRule(std::make_unique<HotPathHashingRule>(), "src/solvers/s.cc",
              "// delprop-lint: hot-path-hashing-ok\n"
              "std::unordered_map<TupleRef, int, TupleRefHash> cold_map;\n")
          .empty());
}

// === header-guard ===

TEST(HeaderGuardTest, ExpectedGuardMapsPaths) {
  EXPECT_EQ(HeaderGuardRule::ExpectedGuard("src/lint/rules.h"),
            "DELPROP_LINT_RULES_H_");
  EXPECT_EQ(HeaderGuardRule::ExpectedGuard("bench/bench_util.h"),
            "DELPROP_BENCH_BENCH_UTIL_H_");
  EXPECT_EQ(HeaderGuardRule::ExpectedGuard("/abs/path/src/query/view.h"),
            "DELPROP_QUERY_VIEW_H_");
}

TEST(HeaderGuardTest, AcceptsMatchingGuard) {
  EXPECT_TRUE(RunRule(std::make_unique<HeaderGuardRule>(), "src/query/view.h",
                      "// comment first is fine\n"
                      "#ifndef DELPROP_QUERY_VIEW_H_\n"
                      "#define DELPROP_QUERY_VIEW_H_\n"
                      "#endif  // DELPROP_QUERY_VIEW_H_\n")
                  .empty());
}

TEST(HeaderGuardTest, FlagsMismatchPragmaOnceAndMissingDefine) {
  std::vector<Diagnostic> wrong =
      RunRule(std::make_unique<HeaderGuardRule>(), "src/query/view.h",
              "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n");
  ASSERT_EQ(wrong.size(), 1u);
  EXPECT_NE(wrong[0].message.find("DELPROP_QUERY_VIEW_H_"),
            std::string::npos);

  EXPECT_EQ(RunRule(std::make_unique<HeaderGuardRule>(), "src/query/view.h",
                    "#pragma once\nint x;\n")
                .size(),
            1u);

  EXPECT_EQ(RunRule(std::make_unique<HeaderGuardRule>(), "src/query/view.h",
                    "#ifndef DELPROP_QUERY_VIEW_H_\n#include <vector>\n")
                .size(),
            1u);
}

TEST(HeaderGuardTest, IgnoresNonHeaders) {
  EXPECT_TRUE(RunRule(std::make_unique<HeaderGuardRule>(), "src/query/view.cc",
                      "int x;")
                  .empty());
}

// === Linter plumbing ===

TEST(LinterTest, DefaultRulesAreRegisteredAndFilterable) {
  Linter all;
  all.AddDefaultRules();
  EXPECT_EQ(all.RuleNames().size(), 10u);
  Linter subset;
  subset.AddDefaultRules({"header-guard"});
  EXPECT_EQ(subset.RuleNames(),
            std::vector<std::string>{"header-guard"});
}

TEST(LinterTest, ReportIsSortedAndCountsSuppressions) {
  Linter linter;
  linter.AddDefaultRules();
  std::vector<SourceFile> files;
  files.emplace_back("src/solvers/z.cc",
                     "void F() { std::thread t(G); }\n"
                     "void H() { srand(1); }  // delprop-lint: raw-randomness-ok\n");
  files.emplace_back("src/solvers/a.cc", "void F() { std::thread t(G); }");
  LintReport report = linter.Run(files);
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.suppressed, 1u);
  EXPECT_EQ(report.files_checked, 2u);
  EXPECT_TRUE(std::is_sorted(report.diagnostics.begin(),
                             report.diagnostics.end()));
  EXPECT_EQ(report.diagnostics[0].file, "src/solvers/a.cc");
}

TEST(LinterTest, RunOnPathsFlagsSeededViolationFile) {
  // End-to-end through the CLI's code path: a seeded file on disk violating
  // every rule must come back non-clean (the delprop_lint binary exits 1 on
  // exactly this condition).
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "delprop_lint_test" / "src" /
                 "solvers";
  fs::create_directories(dir);
  fs::path file = dir / "seeded.cc";
  {
    std::ofstream out(file);
    out << "Status Persist();\n"
           "void F(std::unordered_set<int> pending) {\n"
           "  Persist();\n"
           "  for (int x : pending) Emit(x);\n"
           "  srand(1);\n"
           "  std::thread t(G);\n"
           "}\n";
  }
  Linter linter;
  linter.AddDefaultRules();
  Result<LintReport> report = linter.RunOnPaths({file.string()});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->clean());
  std::vector<std::string> rules;
  for (const Diagnostic& d : report->diagnostics) rules.push_back(d.rule);
  EXPECT_EQ(rules,
            (std::vector<std::string>{"discarded-status",
                                      "nondeterministic-iteration",
                                      "raw-randomness", "raw-threading"}));
  fs::remove_all(fs::temp_directory_path() / "delprop_lint_test");

  EXPECT_FALSE(linter.RunOnPaths({"/no/such/delprop/path"}).ok());
}

TEST(LinterTest, OneCommentMaySuppressSeveralRules) {
  std::vector<Diagnostic> diags = RunRule(
      std::make_unique<RawThreadingRule>(), "src/dp/d.cc",
      "// delprop-lint: raw-threading-ok raw-randomness-ok fixture\n"
      "std::thread t(G);");
  EXPECT_TRUE(diags.empty());
}

}  // namespace
}  // namespace lint
}  // namespace delprop
