#include <gtest/gtest.h>

#include "common/rng.h"
#include "hypergraph/dual_graph.h"
#include "hypergraph/gyo.h"
#include "hypergraph/hypergraph.h"
#include "query/parser.h"

namespace delprop {
namespace {

TEST(HypergraphTest, AddEdgeSortsAndDedupes) {
  Hypergraph g(5);
  size_t e = g.AddEdge({3, 1, 3, 2});
  EXPECT_EQ(g.edge(e), (std::vector<size_t>{1, 2, 3}));
}

TEST(HypergraphTest, VertexComponents) {
  Hypergraph g(5);
  g.AddEdge({0, 1});
  g.AddEdge({1, 2});
  g.AddEdge({3});
  std::vector<size_t> comp = g.VertexComponents();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[4]);
}

TEST(HypergraphTest, EdgeComponents) {
  Hypergraph g(6);
  g.AddEdge({0, 1});
  g.AddEdge({2, 3});
  g.AddEdge({1, 4});
  std::vector<std::vector<size_t>> groups = g.EdgeComponents();
  ASSERT_EQ(groups.size(), 2u);
  // Edges 0 and 2 share vertex 1.
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<size_t>{1}));
}

TEST(GyoTest, SingleEdgeIsAcyclic) {
  Hypergraph g(3);
  g.AddEdge({0, 1, 2});
  EXPECT_TRUE(IsAlphaAcyclic(g));
  EXPECT_TRUE(IsBetaAcyclic(g));
}

TEST(GyoTest, TriangleIsCyclic) {
  Hypergraph g(3);
  g.AddEdge({0, 1});
  g.AddEdge({1, 2});
  g.AddEdge({0, 2});
  EXPECT_FALSE(IsAlphaAcyclic(g));
  EXPECT_FALSE(IsBetaAcyclic(g));
}

TEST(GyoTest, TriangleWithBigEdgeIsAlphaButNotBeta) {
  // The classic separator of the two acyclicity degrees: adding {0,1,2} to
  // the triangle makes it α-acyclic but β-cyclicity persists.
  Hypergraph g(3);
  g.AddEdge({0, 1, 2});
  g.AddEdge({0, 1});
  g.AddEdge({1, 2});
  g.AddEdge({0, 2});
  EXPECT_TRUE(IsAlphaAcyclic(g));
  EXPECT_FALSE(IsBetaAcyclic(g));
}

TEST(GyoTest, PathIsBetaAcyclic) {
  Hypergraph g(4);
  g.AddEdge({0, 1});
  g.AddEdge({1, 2});
  g.AddEdge({2, 3});
  EXPECT_TRUE(IsAlphaAcyclic(g));
  EXPECT_TRUE(IsBetaAcyclic(g));
}

TEST(GyoTest, JoinTreeParentsAreValid) {
  Hypergraph g(4);
  g.AddEdge({0, 1, 2});
  g.AddEdge({0, 1});
  g.AddEdge({2, 3});
  JoinTree tree;
  ASSERT_TRUE(IsAlphaAcyclic(g, &tree));
  ASSERT_EQ(tree.parent.size(), 3u);
  // Edge 1 ⊆ edge 0 so it must have been absorbed into it.
  EXPECT_EQ(tree.parent[1], 0);
}

TEST(GyoTest, DuplicateEdgesAcyclic) {
  Hypergraph g(2);
  g.AddEdge({0, 1});
  g.AddEdge({0, 1});
  EXPECT_TRUE(IsAlphaAcyclic(g));
  EXPECT_TRUE(IsBetaAcyclic(g));
}

// Property sweep: random acyclic hypergraphs (grown by attaching edges that
// intersect an existing edge in a subset) must pass GYO with a join tree
// satisfying the running-intersection property; planting a triangle over
// fresh vertices must break both acyclicity notions.
class AcyclicSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AcyclicSweep, GrownHypertreesAreAcyclic) {
  Rng rng(GetParam());
  size_t vertex_count = 12;
  Hypergraph g(vertex_count);
  std::vector<std::vector<size_t>> edges;
  // Seed edge.
  edges.push_back({0, 1, 2});
  size_t next_vertex = 3;
  for (int step = 0; step < 6 && next_vertex < vertex_count; ++step) {
    // New edge = random subset of a random existing edge + fresh vertices.
    const auto& base = edges[rng.NextBelow(edges.size())];
    std::vector<size_t> edge;
    for (size_t v : base) {
      if (rng.NextBool(0.5)) edge.push_back(v);
    }
    if (edge.empty()) edge.push_back(base[0]);
    size_t fresh = 1 + rng.NextBelow(2);
    for (size_t f = 0; f < fresh && next_vertex < vertex_count; ++f) {
      edge.push_back(next_vertex++);
    }
    edges.push_back(edge);
  }
  for (const auto& edge : edges) g.AddEdge(edge);
  JoinTree tree;
  EXPECT_TRUE(IsAlphaAcyclic(g, &tree));
  EXPECT_TRUE(IsBetaAcyclic(g))
      << "subset-attached growth cannot create β-cycles";
}

TEST_P(AcyclicSweep, PlantedTriangleBreaksAcyclicity) {
  Rng rng(GetParam() + 100);
  Hypergraph g(9);
  g.AddEdge({0, 1, 2});
  g.AddEdge({rng.NextBelow(3), 3});
  // Triangle over fresh vertices 4,5,6 — joined to the rest via vertex 0 so
  // everything is one component.
  g.AddEdge({0, 4});
  g.AddEdge({4, 5});
  g.AddEdge({5, 6});
  g.AddEdge({6, 4});
  EXPECT_FALSE(IsAlphaAcyclic(g));
  EXPECT_FALSE(IsBetaAcyclic(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcyclicSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// Fig. 3 of the paper: queries over relations T1..T4 (vertices 0..3),
//   Q1 :- T1,T2,T3   Q2 :- T1,T2,T4   Q3 :- T1,T2   Q4 :- T1,T3   Q5 :- T2,T3
// Query set 1 {Q1,Q3,Q4,Q5} is NOT a hypertree; sets 2 {Q1,Q3,Q5} and
// 3 {Q1,Q2,Q5} are.
class Fig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name : {"T1", "T2", "T3", "T4"}) {
      ASSERT_TRUE(db_.AddRelation(name, 1, {0}).ok());
    }
    const char* texts[] = {
        "Q1(x, y, z) :- T1(x), T2(y), T3(z)",
        "Q2(x, y, w) :- T1(x), T2(y), T4(w)",
        "Q3(x, y) :- T1(x), T2(y)",
        "Q4(x, z) :- T1(x), T3(z)",
        "Q5(y, z) :- T2(y), T3(z)",
    };
    for (const char* text : texts) {
      Result<ConjunctiveQuery> q = ParseQuery(text, db_.schema(), db_.dict());
      ASSERT_TRUE(q.ok()) << q.status().ToString();
      queries_.push_back(std::make_unique<ConjunctiveQuery>(std::move(*q)));
    }
  }

  DualGraphAnalysis Analyze(std::initializer_list<int> ids) {
    std::vector<const ConjunctiveQuery*> qs;
    for (int i : ids) qs.push_back(queries_[i].get());
    return AnalyzeDualGraph(db_.schema(), qs);
  }

  Database db_;
  std::vector<std::unique_ptr<ConjunctiveQuery>> queries_;
};

TEST_F(Fig3Test, QuerySet1IsNotForestCase) {
  DualGraphAnalysis a = Analyze({0, 2, 3, 4});  // {Q1, Q3, Q4, Q5}
  EXPECT_TRUE(a.alpha_acyclic) << "Q1 absorbs the triangle under GYO";
  EXPECT_FALSE(a.forest_case) << "the hidden triangle {T1T2,T1T3,T2T3}";
}

TEST_F(Fig3Test, QuerySet2IsForestCase) {
  DualGraphAnalysis a = Analyze({0, 2, 4});  // {Q1, Q3, Q5}
  EXPECT_TRUE(a.forest_case);
}

TEST_F(Fig3Test, QuerySet3IsForestCase) {
  DualGraphAnalysis a = Analyze({0, 1, 4});  // {Q1, Q2, Q5}
  EXPECT_TRUE(a.forest_case);
}

TEST_F(Fig3Test, ComponentsGroupQueries) {
  DualGraphAnalysis a = Analyze({2, 3});  // Q3 over {T1,T2}, Q4 over {T1,T3}.
  ASSERT_EQ(a.components.size(), 1u) << "share T1";
  DualGraphAnalysis b = Analyze({2});
  EXPECT_EQ(b.components.size(), 1u);
}

}  // namespace
}  // namespace delprop
