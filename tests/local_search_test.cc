#include <gtest/gtest.h>

#include "common/rng.h"
#include "solvers/exact_solver.h"
#include "solvers/greedy_solver.h"
#include "solvers/local_search_solver.h"
#include "workload/author_journal.h"
#include "workload/random_workload.h"
#include "workload/star_schema.h"

namespace delprop {
namespace {

TEST(LocalSearchTest, Fig1FindsOptimum) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());
  LocalSearchSolver solver;
  Result<VseSolution> solution = solver.Solve(instance);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(solution->Feasible());
  EXPECT_DOUBLE_EQ(solution->Cost(), 4.0) << "the two-view optimum";
}

TEST(LocalSearchTest, FeasibleAndAtLeastOptimal) {
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    LocalSearchSolver local;
    ExactSolver exact;
    Result<VseSolution> l = local.Solve(instance);
    Result<VseSolution> e = exact.Solve(instance);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(l->Feasible()) << "trial " << trial;
    EXPECT_LE(e->Cost(), l->Cost() + 1e-9) << "trial " << trial;
  }
}

TEST(LocalSearchTest, NeverWorseThanGreedyOnStars) {
  // Swap moves should let local search at least match the greedy.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    StarSchemaParams params;
    params.dimensions = 3;
    params.fact_rows = 15;
    params.deletion_fraction = 0.25;
    Result<GeneratedVse> generated = GenerateStarSchema(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    if (instance.TotalDeletionTuples() == 0) continue;
    LocalSearchSolver local;
    GreedySolver greedy;
    Result<VseSolution> l = local.Solve(instance);
    Result<VseSolution> g = greedy.Solve(instance);
    ASSERT_TRUE(l.ok());
    ASSERT_TRUE(g.ok());
    EXPECT_LE(l->Cost(), g->Cost() + 1e-9) << "seed " << seed;
  }
}

TEST(LocalSearchTest, DeterministicForSeed) {
  Rng rng(11);
  RandomWorkloadParams params;
  Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
  ASSERT_TRUE(generated.ok());
  LocalSearchSolver::Options options;
  options.seed = 99;
  LocalSearchSolver a(options), b(options);
  Result<VseSolution> x = a.Solve(*generated->instance);
  Result<VseSolution> y = b.Solve(*generated->instance);
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ(x->Cost(), y->Cost());
  EXPECT_EQ(x->deletion.Sorted(), y->deletion.Sorted());
}

TEST(LocalSearchTest, EmptyDeltaV) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  LocalSearchSolver solver;
  Result<VseSolution> solution = solver.Solve(*generated->instance);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->deletion.size(), 0u);
}

}  // namespace
}  // namespace delprop
