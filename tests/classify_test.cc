#include <gtest/gtest.h>

#include "classify/head_domination.h"
#include "classify/landscape.h"
#include "classify/triad.h"
#include "query/parser.h"

namespace delprop {
namespace {

class ClassifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // T1(a, b) with key {0}; T2(a, b) with key {1}; E(a, b) key both;
    // R/S/T binary key both; A unary.
    ASSERT_TRUE(schema_.AddRelation("T1", 2, {0}).ok());
    ASSERT_TRUE(schema_.AddRelation("T2", 2, {1}).ok());
    ASSERT_TRUE(schema_.AddRelation("E", 2, {0, 1}).ok());
    ASSERT_TRUE(schema_.AddRelation("R", 2, {0, 1}).ok());
    ASSERT_TRUE(schema_.AddRelation("S", 2, {0, 1}).ok());
    ASSERT_TRUE(schema_.AddRelation("T", 2, {0, 1}).ok());
    ASSERT_TRUE(schema_.AddRelation("A", 1, {0}).ok());
  }

  ConjunctiveQuery Parse(const std::string& text) {
    Result<ConjunctiveQuery> q = ParseQuery(text, schema_, dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  Schema schema_;
  ValueDictionary dict_;
};

TEST_F(ClassifyTest, PaperSectionIVBExample) {
  // "Q(y1, y2) :- T1(y1, x), T2(x, y2) is sj-free key-preserving but not of
  // head-domination."
  ConjunctiveQuery q = Parse("Q(y1, y2) :- T1(y1, x), T2(x, y2)");
  QueryClassification c = ClassifyQuery(q, schema_);
  EXPECT_TRUE(c.self_join_free);
  EXPECT_TRUE(c.key_preserving);
  EXPECT_FALSE(c.head_domination);
  EXPECT_FALSE(c.project_free);
  // Key preserving dominates the single-deletion verdict.
  EXPECT_NE(c.view_side_effect_single.find("PTime"), std::string::npos);
}

TEST_F(ClassifyTest, ProjectFreeHasHeadDomination) {
  ConjunctiveQuery q = Parse("Q(x, y, z) :- E(x, y), R(y, z)");
  EXPECT_TRUE(HasHeadDomination(q)) << "no existential variables at all";
}

TEST_F(ClassifyTest, SingleAtomProjectionHasHeadDomination) {
  // One atom contains every head variable trivially.
  ConjunctiveQuery q = Parse("Q(x) :- E(x, y)");
  EXPECT_TRUE(HasHeadDomination(q));
}

TEST_F(ClassifyTest, DominatingAtomAcrossComponent) {
  // The component of x touches both atoms, but E(y1, y2)'s head variables
  // all live in the third atom R(y1, y2): dominated.
  ConjunctiveQuery q =
      Parse("Q(y1, y2) :- T1(y1, x), T2(x, y2), R(y1, y2)");
  EXPECT_TRUE(HasHeadDomination(q));
}

TEST_F(ClassifyTest, TriangleHasTriad) {
  ConjunctiveQuery q = Parse("Q(w) :- A(w), R(x, y), S(y, z), T(z, x)");
  std::optional<std::array<size_t, 3>> triad = FindTriad(q);
  ASSERT_TRUE(triad.has_value());
  // The triad is the triangle, not the A atom.
  EXPECT_EQ((*triad)[0], 1u);
  EXPECT_EQ((*triad)[1], 2u);
  EXPECT_EQ((*triad)[2], 3u);
}

TEST_F(ClassifyTest, ChainIsTriadFree) {
  ConjunctiveQuery q = Parse("Q(w) :- A(w), R(x, y), S(y, z), T(z, u)");
  EXPECT_FALSE(FindTriad(q).has_value());
}

TEST_F(ClassifyTest, ProjectFreeIsTriadFree) {
  ConjunctiveQuery q = Parse("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)");
  EXPECT_FALSE(FindTriad(q).has_value())
      << "no existential variables, nothing to cut";
}

TEST_F(ClassifyTest, StarQueryTriadFree) {
  // Three atoms all sharing the single existential hub variable x: removing
  // any atom's variables disconnects the others.
  ConjunctiveQuery q = Parse("Q(a, b, c) :- R(x, a), S(x, b), T(x, c)");
  EXPECT_FALSE(FindTriad(q).has_value());
}

TEST_F(ClassifyTest, LandscapeVerdictsSingleQuery) {
  // Non-key-preserving with a triad: hard everywhere.
  ConjunctiveQuery hard = Parse("Q(w) :- A(w), R(x, y), S(y, z), T(z, x)");
  QueryClassification c = ClassifyQuery(hard, schema_);
  EXPECT_FALSE(c.key_preserving);
  EXPECT_FALSE(c.triad_free);
  EXPECT_NE(c.source_side_effect.find("NP-complete"), std::string::npos);

  // Project-free: easy everywhere.
  ConjunctiveQuery easy = Parse("Q(x, y) :- E(x, y)");
  QueryClassification e = ClassifyQuery(easy, schema_);
  EXPECT_TRUE(e.project_free);
  EXPECT_NE(e.source_side_effect.find("PTime"), std::string::npos);
  EXPECT_NE(e.view_side_effect_single.find("PTime"), std::string::npos);
}

TEST_F(ClassifyTest, QuerySetVerdicts) {
  ConjunctiveQuery q1 = Parse("Q1(x, y) :- E(x, y)");
  ConjunctiveQuery q2 = Parse("Q2(x, y, z) :- E(x, y), R(y, z)");

  // Single key-preserving query.
  QuerySetClassification single = ClassifyQuerySet({&q1}, schema_);
  EXPECT_TRUE(single.single_query);
  EXPECT_TRUE(single.all_key_preserving);
  EXPECT_NE(single.verdict.find("PTime"), std::string::npos);

  // Two project-free queries over a chain: forest case.
  QuerySetClassification forest = ClassifyQuerySet({&q1, &q2}, schema_);
  EXPECT_TRUE(forest.all_project_free);
  EXPECT_TRUE(forest.forest_case);
  EXPECT_NE(forest.recommended_solver.find("dp-tree"), std::string::npos);

  // A triangle of pairwise-overlapping queries: not a forest case.
  ConjunctiveQuery a = Parse("Qa(x, y, z, w) :- E(x, y), R(z, w)");
  ConjunctiveQuery b = Parse("Qb(x, y, z, w) :- R(x, y), S(z, w)");
  ConjunctiveQuery c2 = Parse("Qc(x, y, z, w) :- E(x, y), S(z, w)");
  QuerySetClassification general = ClassifyQuerySet({&a, &b, &c2}, schema_);
  EXPECT_FALSE(general.forest_case);
  EXPECT_NE(general.verdict.find("Thm 1"), std::string::npos);
  EXPECT_EQ(general.recommended_solver, "rbsc-lowdeg");
}

TEST_F(ClassifyTest, NonKeyPreservingSetVerdict) {
  ConjunctiveQuery q = Parse("Q(y) :- T1(y, x), T2(x, y)");
  // x keys T2 via position 1? T2 key {1} holds y — in head; T1 key {0} holds
  // y — in head; so this IS key preserving; build a truly non-kp query:
  ConjunctiveQuery bad = Parse("Qbad(x) :- T1(x, u), E(u, v)");
  QuerySetClassification c = ClassifyQuerySet({&q, &bad}, schema_);
  EXPECT_FALSE(c.all_key_preserving);
  EXPECT_NE(c.recommended_solver.find("exact"), std::string::npos);
}

}  // namespace
}  // namespace delprop
