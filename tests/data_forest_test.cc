#include <gtest/gtest.h>

#include "common/rng.h"
#include "hypergraph/data_forest.h"
#include "workload/path_schema.h"
#include "workload/star_schema.h"

namespace delprop {
namespace {

DataForest BuildFromInstance(const VseInstance& instance) {
  return DataForest::Build(instance.ViewPointers());
}

TEST(DataForestTest, PathSchemaIsForestWithVerticalWitnesses) {
  Rng rng(11);
  PathSchemaParams params;
  params.levels = 4;
  params.roots = 2;
  params.fanout = 2;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  DataForest forest = BuildFromInstance(*generated->instance);
  EXPECT_TRUE(forest.is_forest());
  EXPECT_GT(forest.node_count(), 0u);

  std::optional<std::vector<size_t>> pivots = forest.FindPivotRoots();
  ASSERT_TRUE(pivots.has_value());
  DataForest::Rooting rooting = forest.RootAt(*pivots);
  for (const ForestWitness& witness : forest.witnesses()) {
    EXPECT_TRUE(forest.WitnessIsVerticalPath(witness, rooting));
    EXPECT_TRUE(forest.WitnessIsPath(witness, rooting));
  }
}

TEST(DataForestTest, PathSchemaComponentsMatchRootTrees) {
  Rng rng(12);
  PathSchemaParams params;
  params.levels = 3;
  params.roots = 3;
  params.fanout = 2;
  params.query_intervals = {{0, 2}};
  params.deletion_fraction = 0.0;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  DataForest forest = BuildFromInstance(*generated->instance);
  EXPECT_EQ(forest.component_count(), 3u);
}

TEST(DataForestTest, StarWitnessesAreNotPaths) {
  Rng rng(13);
  StarSchemaParams params;
  params.dimensions = 3;
  params.fact_rows = 10;
  params.query_dimension_sets = {{0, 1, 2}};
  Result<GeneratedVse> generated = GenerateStarSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  DataForest forest = BuildFromInstance(*generated->instance);
  DataForest::Rooting rooting = forest.RootAt();
  bool some_non_path = false;
  for (const ForestWitness& witness : forest.witnesses()) {
    if (witness.nodes.size() >= 4 &&
        !forest.WitnessIsPath(witness, rooting)) {
      some_non_path = true;
    }
  }
  EXPECT_TRUE(some_non_path) << "a 3-dimension star witness is not a path";
}

TEST(DataForestTest, NodeOfRoundTrips) {
  Rng rng(14);
  PathSchemaParams params;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  DataForest forest = BuildFromInstance(*generated->instance);
  for (size_t n = 0; n < forest.node_count(); ++n) {
    std::optional<size_t> back = forest.NodeOf(forest.node_ref(n));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, n);
  }
  EXPECT_FALSE(forest.NodeOf(TupleRef{99, 99}).has_value());
}

TEST(DataForestTest, LcaOnChain) {
  // Build a tiny manual chain via the path generator (1 root, fanout 1).
  Rng rng(15);
  PathSchemaParams params;
  params.levels = 5;
  params.roots = 1;
  params.fanout = 1;
  params.query_intervals = {{0, 4}};
  params.deletion_fraction = 0.0;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  DataForest forest = BuildFromInstance(*generated->instance);
  ASSERT_EQ(forest.node_count(), 5u);
  DataForest::Rooting rooting = forest.RootAt();
  // On a rooted chain, the LCA of any two nodes is the shallower one.
  for (size_t a = 0; a < 5; ++a) {
    for (size_t b = 0; b < 5; ++b) {
      size_t lca = forest.Lca(rooting, a, b);
      size_t expected =
          rooting.depth[a] <= rooting.depth[b] ? a : b;
      EXPECT_EQ(lca, expected);
    }
  }
}

TEST(DataForestTest, RandomParentsStillForest) {
  Rng rng(16);
  PathSchemaParams params;
  params.levels = 4;
  params.roots = 3;
  params.fanout = 3;
  params.random_parents = true;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  DataForest forest = BuildFromInstance(*generated->instance);
  EXPECT_TRUE(forest.is_forest())
      << "unique parents cannot create cycles even when chosen randomly";
  EXPECT_TRUE(forest.FindPivotRoots().has_value());
}

}  // namespace
}  // namespace delprop
