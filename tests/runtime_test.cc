// Tests for the runtime substrate: ThreadPool / ParallelFor scheduling,
// deterministic per-task RNG seeding, and the shared evaluator IndexCache
// (hit/miss accounting, staleness after Database mutation, and concurrent
// Evaluate() calls sharing one cache). The concurrency tests are written to
// be clean under TSan: tasks write disjoint slots, shared counters are
// atomic, and every cross-thread handoff goes through ParallelFor's join.
#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/evaluator.h"
#include "runtime/index_cache.h"
#include "runtime/thread_pool.h"
#include "workload/author_journal.h"

namespace delprop {
namespace {

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    // delprop-lint: shared-core-mutation-ok pool.Wait() below outlives capture
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool is reusable after Wait().
  // delprop-lint: shared-core-mutation-ok pool.Wait() below outlives capture
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> counter{0};
  // delprop-lint: shared-core-mutation-ok pool.Wait() below outlives capture
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      // delprop-lint: shared-core-mutation-ok dtor drains before counter dies
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (ThreadPool* pool_ptr : {static_cast<ThreadPool*>(nullptr)}) {
    std::vector<int> visits(257, 0);
    ParallelFor(pool_ptr, visits.size(),
                [&visits](size_t i) { visits[i] += 1; });
    for (int v : visits) EXPECT_EQ(v, 1);
  }
  ThreadPool pool(4);
  std::vector<int> visits(257, 0);
  ParallelFor(&pool, visits.size(), [&visits](size_t i) { visits[i] += 1; });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelForTest, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(&pool, 0, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, SlotWritesMatchSerialExecution) {
  // The determinism contract: tasks seeded via DeriveTaskSeed and writing
  // pre-assigned slots produce the same result at any thread count.
  auto run = [](ThreadPool* pool) {
    std::vector<uint64_t> out(64, 0);
    ParallelFor(pool, out.size(), [&out](size_t i) {
      Rng rng(DeriveTaskSeed(123, i));
      uint64_t acc = 0;
      for (int k = 0; k < 10; ++k) acc ^= rng.Next();
      out[i] = acc;
    });
    return out;
  };
  ThreadPool pool(4);
  EXPECT_EQ(run(nullptr), run(&pool));
}

TEST(RngTest, DeriveTaskSeedIsStableAndCollisionFree) {
  EXPECT_EQ(DeriveTaskSeed(7, 42), DeriveTaskSeed(7, 42));
  std::set<uint64_t> seeds;
  for (uint64_t base : {0ull, 1ull, 55ull}) {
    for (uint64_t task = 0; task < 512; ++task) {
      seeds.insert(DeriveTaskSeed(base, task));
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 512u) << "per-task seed streams collided";
}

class IndexCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<RelationId> rel = db_.AddRelation("R", 2, {0, 1});
    ASSERT_TRUE(rel.ok());
    rel_ = *rel;
    ASSERT_TRUE(db_.InsertText(rel_, {"a", "1"}).ok());
    ASSERT_TRUE(db_.InsertText(rel_, {"a", "2"}).ok());
    ASSERT_TRUE(db_.InsertText(rel_, {"b", "1"}).ok());
  }
  Database db_;
  RelationId rel_ = 0;
};

TEST_F(IndexCacheTest, MissThenHit) {
  IndexCache cache;
  bool was_hit = true;
  auto first = cache.Get(db_, rel_, 0, &was_hit);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(was_hit);
  auto second = cache.Get(db_, rel_, 0, &was_hit);
  EXPECT_TRUE(was_hit);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
  // Distinct positions are distinct entries.
  cache.Get(db_, rel_, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(IndexCacheTest, IndexContentMatchesDirectBuild) {
  IndexCache cache;
  auto cached = cache.Get(db_, rel_, 0);
  PositionIndex direct = BuildPositionIndex(db_.relation(rel_), 0);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(*cached, direct);
  // Row lists must be ascending (the evaluator's emission-order invariant).
  for (const auto& [value, rows] : *cached) {
    EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  }
}

TEST_F(IndexCacheTest, InsertInvalidatesEntry) {
  IndexCache cache;
  auto stale = cache.Get(db_, rel_, 0);
  ASSERT_TRUE(db_.InsertText(rel_, {"b", "2"}).ok());
  EXPECT_EQ(cache.Peek(db_, rel_, 0), nullptr) << "stale entry served";
  bool was_hit = true;
  auto fresh = cache.Get(db_, rel_, 0, &was_hit);
  EXPECT_FALSE(was_hit) << "stale entry must rebuild";
  // The old handle still describes the pre-insert snapshot; the new one sees
  // the inserted row.
  size_t stale_rows = 0, fresh_rows = 0;
  for (const auto& [value, rows] : *stale) stale_rows += rows.size();
  for (const auto& [value, rows] : *fresh) fresh_rows += rows.size();
  EXPECT_EQ(stale_rows, 3u);
  EXPECT_EQ(fresh_rows, 4u);
}

TEST_F(IndexCacheTest, ClearDropsEntriesButKeepsCounters) {
  IndexCache cache;
  cache.Get(db_, rel_, 0);
  cache.Get(db_, rel_, 0);
  ASSERT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  bool was_hit = true;
  cache.Get(db_, rel_, 0, &was_hit);
  EXPECT_FALSE(was_hit);
}

TEST_F(IndexCacheTest, PeekCountsHitsButNeverBuilds) {
  IndexCache cache;
  EXPECT_EQ(cache.Peek(db_, rel_, 0), nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u) << "Peek must not count a miss";
  cache.Get(db_, rel_, 0);
  EXPECT_NE(cache.Peek(db_, rel_, 0), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(IndexCacheTest, SecondDatabaseDropsEntries) {
  IndexCache cache;
  cache.Get(db_, rel_, 0);
  ASSERT_EQ(cache.size(), 1u);
  Database other;
  Result<RelationId> rel = other.AddRelation("S", 1, {0});
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(other.InsertText(*rel, {"x"}).ok());
  cache.Get(other, *rel, 0);
  EXPECT_EQ(cache.size(), 1u) << "entries from the first database must drop";
  EXPECT_EQ(cache.Peek(db_, rel_, 0), nullptr);
}

TEST(IndexCacheEvaluateTest, ConcurrentEvaluateSharesOneCache) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  const Database& db = *generated->database;

  // Serial reference views, evaluated without any cache.
  std::vector<View> reference;
  for (const auto& query : generated->queries) {
    Result<View> view = Evaluate(db, *query);
    ASSERT_TRUE(view.ok());
    reference.push_back(std::move(*view));
  }

  // Many concurrent evaluations of all queries against one shared cache.
  constexpr size_t kRounds = 16;
  IndexCache cache;
  ThreadPool pool(4);
  const size_t queries = generated->queries.size();
  std::vector<Result<View>> views;
  views.reserve(kRounds * queries);
  for (size_t i = 0; i < kRounds * queries; ++i) {
    views.push_back(Status::Internal("not evaluated"));
  }
  ParallelFor(&pool, views.size(), [&](size_t i) {
    EvalOptions options;
    options.index_cache = &cache;
    views[i] = Evaluate(db, *generated->queries[i % queries], options);
  });

  for (size_t i = 0; i < views.size(); ++i) {
    ASSERT_TRUE(views[i].ok()) << views[i].status().ToString();
    const View& expect = reference[i % queries];
    const View& got = *views[i];
    ASSERT_EQ(got.size(), expect.size());
    for (size_t t = 0; t < got.size(); ++t) {
      EXPECT_EQ(got.tuple(t).values, expect.tuple(t).values)
          << "view tuple " << t << " differs — emission order changed";
      EXPECT_EQ(got.tuple(t).witnesses, expect.tuple(t).witnesses);
    }
  }
  IndexCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u) << "repeated evaluations never reused an index";
  // Benign build races may duplicate a miss, but the cache can never miss
  // more than once per (relation, position) per racing evaluation.
  EXPECT_LT(stats.misses, stats.hits);
}

}  // namespace
}  // namespace delprop
