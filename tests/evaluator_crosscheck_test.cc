// Differential test: the indexed backtracking evaluator must agree with a
// brute-force reference evaluator (full cartesian enumeration) on random
// databases and queries — answers AND witness sets.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/evaluator.h"
#include "testing/reference_eval.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

// The reference implementation lives in src/testing/reference_eval.* so the
// fuzz oracles (testing::CheckOracles) and this sweep cross-check the SAME
// semantics; this test keeps the dedicated gtest surface for it.
using testing::NaiveEvaluate;
using testing::ResultMap;
using testing::ViewToResultMap;

class CrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossCheck, IndexedMatchesNaive) {
  Rng rng(GetParam());
  RandomWorkloadParams params;
  params.relations = 2;
  params.rows_per_relation = 6;
  params.domain = 4;
  params.queries = 4;
  params.max_atoms = 3;
  Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
  ASSERT_TRUE(generated.ok());
  const Database& db = *generated->database;
  for (const auto& query : generated->queries) {
    Result<View> view = Evaluate(db, *query);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(ViewToResultMap(*view), NaiveEvaluate(db, *query))
        << query->ToString(db.schema(), db.dict());
  }
}

TEST_P(CrossCheck, IndexedMatchesNaiveUnderMask) {
  Rng rng(GetParam() + 5000);
  RandomWorkloadParams params;
  params.relations = 2;
  params.rows_per_relation = 6;
  params.domain = 4;
  params.queries = 3;
  params.max_atoms = 2;
  Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
  ASSERT_TRUE(generated.ok());
  const Database& db = *generated->database;
  // Random mask over all rows.
  DeletionSet mask;
  for (RelationId rel = 0; rel < db.relation_count(); ++rel) {
    for (uint32_t row = 0; row < db.relation(rel).row_count(); ++row) {
      if (rng.NextBool(0.3)) mask.Insert({rel, row});
    }
  }
  EvalOptions options;
  options.mask = &mask;
  for (const auto& query : generated->queries) {
    Result<View> view = Evaluate(db, *query, options);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(ViewToResultMap(*view), NaiveEvaluate(db, *query, &mask))
        << query->ToString(db.schema(), db.dict());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheck,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace delprop
