// Differential test: the indexed backtracking evaluator must agree with a
// brute-force reference evaluator (full cartesian enumeration) on random
// databases and queries — answers AND witness sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "query/evaluator.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

using WitnessSet = std::set<std::vector<TupleRef>>;
using ResultMap = std::map<Tuple, WitnessSet>;

// Reference: try every combination of rows for the atoms.
ResultMap NaiveEvaluate(const Database& db, const ConjunctiveQuery& query,
                        const DeletionSet* mask) {
  ResultMap results;
  size_t atom_count = query.atoms().size();
  std::vector<uint32_t> choice(atom_count, 0);

  std::vector<size_t> row_counts(atom_count);
  for (size_t a = 0; a < atom_count; ++a) {
    row_counts[a] = db.relation(query.atoms()[a].relation).row_count();
    if (row_counts[a] == 0) return results;
  }

  constexpr ValueId kUnbound = 0xFFFFFFFF;
  for (;;) {
    // Check this combination.
    std::vector<ValueId> assignment(query.variable_count(), kUnbound);
    bool match = true;
    bool masked = false;
    for (size_t a = 0; a < atom_count && match; ++a) {
      const Atom& atom = query.atoms()[a];
      TupleRef ref{atom.relation, choice[a]};
      if (mask != nullptr && mask->Contains(ref)) {
        masked = true;
        break;
      }
      const Tuple& row = db.relation(atom.relation).row(choice[a]);
      for (size_t p = 0; p < atom.terms.size(); ++p) {
        const Term& t = atom.terms[p];
        if (t.is_constant()) {
          if (row[p] != t.id) match = false;
        } else if (assignment[t.id] == kUnbound) {
          assignment[t.id] = row[p];
        } else if (assignment[t.id] != row[p]) {
          match = false;
        }
        if (!match) break;
      }
    }
    if (match && !masked) {
      Tuple head;
      for (const Term& t : query.head()) {
        head.push_back(t.is_constant() ? t.id : assignment[t.id]);
      }
      std::vector<TupleRef> witness;
      for (size_t a = 0; a < atom_count; ++a) {
        witness.push_back({query.atoms()[a].relation, choice[a]});
      }
      results[head].insert(witness);
    }
    // Advance the odometer.
    size_t a = 0;
    while (a < atom_count) {
      if (++choice[a] < row_counts[a]) break;
      choice[a] = 0;
      ++a;
    }
    if (a == atom_count) break;
  }
  return results;
}

ResultMap ToMap(const View& view) {
  ResultMap map;
  for (size_t t = 0; t < view.size(); ++t) {
    for (const Witness& w : view.tuple(t).witnesses) {
      map[view.tuple(t).values].insert(w);
    }
  }
  return map;
}

class CrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossCheck, IndexedMatchesNaive) {
  Rng rng(GetParam());
  RandomWorkloadParams params;
  params.relations = 2;
  params.rows_per_relation = 6;
  params.domain = 4;
  params.queries = 4;
  params.max_atoms = 3;
  Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
  ASSERT_TRUE(generated.ok());
  const Database& db = *generated->database;
  for (const auto& query : generated->queries) {
    Result<View> view = Evaluate(db, *query);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(ToMap(*view), NaiveEvaluate(db, *query, nullptr))
        << query->ToString(db.schema(), db.dict());
  }
}

TEST_P(CrossCheck, IndexedMatchesNaiveUnderMask) {
  Rng rng(GetParam() + 5000);
  RandomWorkloadParams params;
  params.relations = 2;
  params.rows_per_relation = 6;
  params.domain = 4;
  params.queries = 3;
  params.max_atoms = 2;
  Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
  ASSERT_TRUE(generated.ok());
  const Database& db = *generated->database;
  // Random mask over all rows.
  DeletionSet mask;
  for (RelationId rel = 0; rel < db.relation_count(); ++rel) {
    for (uint32_t row = 0; row < db.relation(rel).row_count(); ++row) {
      if (rng.NextBool(0.3)) mask.Insert({rel, row});
    }
  }
  EvalOptions options;
  options.mask = &mask;
  for (const auto& query : generated->queries) {
    Result<View> view = Evaluate(db, *query, options);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(ToMap(*view), NaiveEvaluate(db, *query, &mask))
        << query->ToString(db.schema(), db.dict());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheck,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace delprop
