// Engine determinism sweep (slow): every checked-in corpus instance and 200
// fuzz-generated instances go through BatchSolveEngine at --threads 1 vs 4
// and with the memo cache on vs off; the rendered outcome vectors must be
// byte-identical. This is the batched-serving analogue of the fuzz engine's
// thread-count-invariance contract: scheduling and caching may only change
// wall-clock, never results.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/batch_engine.h"
#include "testing/fuzzer.h"
#include "tool/script.h"

#ifndef DELPROP_CORPUS_DIR
#error "build must define DELPROP_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace delprop {
namespace {

std::string Render(const Result<VseSolution>& result) {
  std::ostringstream out;
  if (!result.ok()) {
    out << StatusCodeName(result.status().code()) << ": "
        << result.status().message();
    return out.str();
  }
  out << result->solver_name << " feasible=" << result->Feasible()
      << " cost=" << result->Cost() << " deletion=";
  for (const TupleRef& ref : result->deletion.Sorted()) {
    out << "(" << ref.relation << "," << ref.row << ")";
  }
  return out.str();
}

std::string RenderAll(const std::vector<RequestOutcome>& outcomes) {
  std::string out;
  for (const RequestOutcome& outcome : outcomes) {
    out += Render(outcome.result);
    out += "\n";
  }
  return out;
}

// A mixed request stream over `instance`: rotating solvers (refusals are
// legitimate deterministic outcomes), varied ΔV sizes, plus one duplicate
// so the memo cache always has a hit to mis-serve if it were buggy.
std::vector<SolveRequest> MakeRequests(const VseInstance& instance,
                                       uint64_t seed) {
  std::vector<ViewTupleId> all;
  for (size_t v = 0; v < instance.view_count(); ++v) {
    for (size_t t = 0; t < instance.view(v).size(); ++t) {
      all.push_back(ViewTupleId{v, t});
    }
  }
  const char* solvers[] = {"greedy", "local-search", "rbsc-greedy",
                           "primal-dual"};
  Rng rng(DeriveTaskSeed(17, seed));
  std::vector<SolveRequest> requests;
  for (size_t i = 0; i < 7; ++i) {
    SolveRequest request;
    request.solver = solvers[i % 4];
    size_t k = 1 + static_cast<size_t>(rng.NextBelow(
                       std::max<size_t>(1, std::min<size_t>(all.size(), 16))));
    for (size_t index : rng.SampleIndices(all.size(), k)) {
      request.delta_v.push_back(all[index]);
    }
    requests.push_back(std::move(request));
  }
  requests.push_back(requests[0]);  // guaranteed duplicate
  return requests;
}

void ExpectInvariant(VseInstance& instance, uint64_t seed) {
  if (instance.TotalViewTuples() == 0) return;
  std::vector<SolveRequest> requests = MakeRequests(instance, seed);

  BatchSolveEngine::Options t1;
  t1.threads = 1;
  BatchSolveEngine engine_t1(instance, t1);
  std::string baseline = RenderAll(engine_t1.SolveBatch(requests));

  BatchSolveEngine::Options t4;
  t4.threads = 4;
  BatchSolveEngine engine_t4(instance, t4);
  EXPECT_EQ(baseline, RenderAll(engine_t4.SolveBatch(requests)))
      << "thread count changed batch results";

  BatchSolveEngine::Options no_cache;
  no_cache.threads = 4;
  no_cache.memo_cache = false;
  BatchSolveEngine engine_plain(instance, no_cache);
  EXPECT_EQ(baseline, RenderAll(engine_plain.SolveBatch(requests)))
      << "memo cache changed batch results";
}

TEST(EngineDeterminismTest, CorpusInstances) {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DELPROP_CORPUS_DIR)) {
    if (entry.path().extension() == ".delprop") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 5u);
  uint64_t seed = 0;
  for (const std::string& file : files) {
    SCOPED_TRACE(file);
    std::ifstream in(file);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ScriptSession session;
    std::string out;
    ASSERT_TRUE(session.Run(buffer.str(), &out).ok()) << out;
    if (session.instance() == nullptr) continue;
    ExpectInvariant(*session.mutable_instance(), seed++);
  }
}

TEST(EngineDeterminismTest, TwoHundredFuzzSeeds) {
  size_t generated_cases = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    SCOPED_TRACE(i);
    Result<testing::FuzzCase> fuzz_case =
        testing::GenerateFuzzCase(DeriveTaskSeed(1, i));
    ASSERT_TRUE(fuzz_case.ok()) << fuzz_case.status().ToString();
    ++generated_cases;
    ExpectInvariant(*fuzz_case->generated.instance, i);
  }
  EXPECT_EQ(generated_cases, 200u);
}

}  // namespace
}  // namespace delprop
