#include <gtest/gtest.h>

#include "common/rng.h"
#include "setcover/pnpsc.h"
#include "workload/random_rbsc.h"

namespace delprop {
namespace {

PnpscInstance TinyInstance() {
  // Positives {0,1}, negatives {0,1,2}.
  // Set 0 covers both positives but negatives {0,1}; set 1 covers p0 with
  // n2; set 2 covers p1 cleanly.
  PnpscInstance instance;
  instance.positive_count = 2;
  instance.negative_count = 3;
  instance.sets = {{{0, 1}, {0, 1}}, {{0}, {2}}, {{1}, {}}};
  return instance;
}

TEST(PnpscTest, CostAccounting) {
  PnpscInstance instance = TinyInstance();
  // Choose nothing: both positives uncovered.
  EXPECT_DOUBLE_EQ(PnpscCost(instance, PnpscSolution{{}}), 2.0);
  // Choose set 0: no uncovered positives, two covered negatives.
  EXPECT_DOUBLE_EQ(PnpscCost(instance, PnpscSolution{{0}}), 2.0);
  // Choose sets 1+2: one covered negative.
  EXPECT_DOUBLE_EQ(PnpscCost(instance, PnpscSolution{{1, 2}}), 1.0);
  // Choose set 2 only: p0 uncovered (1) + no negatives = 1.
  EXPECT_DOUBLE_EQ(PnpscCost(instance, PnpscSolution{{2}}), 1.0);
}

TEST(PnpscTest, WeightedCost) {
  PnpscInstance instance = TinyInstance();
  instance.positive_weights = {10.0, 1.0};
  instance.negative_weights = {1.0, 1.0, 0.25};
  // Set 2 only: p0 uncovered → 10.
  EXPECT_DOUBLE_EQ(PnpscCost(instance, PnpscSolution{{2}}), 10.0);
  // Sets 1+2: n2 covered → 0.25.
  EXPECT_DOUBLE_EQ(PnpscCost(instance, PnpscSolution{{1, 2}}), 0.25);
}

TEST(PnpscTest, ExactFindsOptimum) {
  PnpscInstance instance = TinyInstance();
  Result<PnpscSolution> exact = SolvePnpscExact(instance);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_DOUBLE_EQ(PnpscCost(instance, *exact), 1.0);
}

TEST(PnpscTest, ReductionToRbscPreservesCosts) {
  PnpscInstance instance = TinyInstance();
  RbscInstance rbsc = ReducePnpscToRbsc(instance);
  ASSERT_TRUE(rbsc.Validate().ok());
  EXPECT_EQ(rbsc.blue_count, instance.positive_count);
  EXPECT_EQ(rbsc.red_count,
            instance.negative_count + instance.positive_count);
  EXPECT_EQ(rbsc.sets.size(),
            instance.sets.size() + instance.positive_count);

  // The RBSC optimum equals the ±PSC optimum.
  Result<RbscSolution> rbsc_exact = SolveRbscExact(rbsc);
  Result<PnpscSolution> pnpsc_exact = SolvePnpscExact(instance);
  ASSERT_TRUE(rbsc_exact.ok());
  ASSERT_TRUE(pnpsc_exact.ok());
  EXPECT_DOUBLE_EQ(RbscCost(rbsc, *rbsc_exact),
                   PnpscCost(instance, *pnpsc_exact));

  // Mapping the RBSC solution back gives a ±PSC solution of the same cost.
  PnpscSolution mapped = MapRbscSolutionBack(instance, *rbsc_exact);
  EXPECT_DOUBLE_EQ(PnpscCost(instance, mapped), RbscCost(rbsc, *rbsc_exact));
}

TEST(PnpscTest, SolveViaReductionIsFeasibleAndSane) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    RandomPnpscParams params;
    params.positive_count = 5;
    params.negative_count = 7;
    params.set_count = 9;
    PnpscInstance instance = GenerateRandomPnpsc(rng, params);
    Result<PnpscSolution> approx = SolvePnpsc(instance);
    Result<PnpscSolution> exact = SolvePnpscExact(instance);
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(PnpscCost(instance, *exact),
              PnpscCost(instance, *approx) + 1e-9);
    // Trivially, doing nothing costs |P|; the approximation must not exceed
    // the number of elements.
    EXPECT_LE(PnpscCost(instance, *approx),
              static_cast<double>(params.positive_count +
                                  params.negative_count) +
                  1e-9);
  }
}

TEST(PnpscTest, RandomReductionEquivalence) {
  Rng rng(32);
  for (int trial = 0; trial < 10; ++trial) {
    RandomPnpscParams params;
    params.positive_count = 4;
    params.negative_count = 5;
    params.set_count = 6;
    PnpscInstance instance = GenerateRandomPnpsc(rng, params);
    RbscInstance rbsc = ReducePnpscToRbsc(instance);
    Result<RbscSolution> rbsc_exact = SolveRbscExact(rbsc);
    Result<PnpscSolution> pnpsc_exact = SolvePnpscExact(instance);
    ASSERT_TRUE(rbsc_exact.ok());
    ASSERT_TRUE(pnpsc_exact.ok());
    EXPECT_NEAR(RbscCost(rbsc, *rbsc_exact),
                PnpscCost(instance, *pnpsc_exact), 1e-9)
        << "trial " << trial;
  }
}

TEST(PnpscTest, ValidateCatchesOutOfRange) {
  PnpscInstance bad;
  bad.positive_count = 1;
  bad.negative_count = 1;
  bad.sets = {{{3}, {}}};
  EXPECT_FALSE(bad.Validate().ok());
}

}  // namespace
}  // namespace delprop
