#include <gtest/gtest.h>

#include "dp/side_effect.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "workload/author_journal.h"

namespace delprop {
namespace {

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddRelation("E", 2, {0, 1}).ok());
    ASSERT_TRUE(db_.InsertText(0, {"a", "b"}).ok());
    Result<ConjunctiveQuery> q =
        ParseQuery("Q(x, y) :- E(x, y)", db_.schema(), db_.dict());
    ASSERT_TRUE(q.ok());
    query_ = std::make_unique<ConjunctiveQuery>(std::move(*q));
  }

  Database db_;
  std::unique_ptr<ConjunctiveQuery> query_;
};

TEST_F(ViewTest, AddMatchDeduplicatesWitnesses) {
  View view(query_.get(), &db_);
  Tuple values = {db_.dict().Intern("a"), db_.dict().Intern("b")};
  Witness witness = {{0, 0}};
  size_t first = view.AddMatch(values, witness);
  size_t second = view.AddMatch(values, witness);
  EXPECT_EQ(first, second);
  EXPECT_EQ(view.size(), 1u);
  EXPECT_EQ(view.tuple(first).witnesses.size(), 1u);
  // A different witness accumulates.
  view.AddMatch(values, Witness{{0, 1}});
  EXPECT_EQ(view.tuple(first).witnesses.size(), 2u);
}

TEST_F(ViewTest, FindMissingReturnsNullopt) {
  View view(query_.get(), &db_);
  Tuple missing = {db_.dict().Intern("zzz"), db_.dict().Intern("b")};
  EXPECT_FALSE(view.Find(missing).has_value());
}

TEST_F(ViewTest, SurvivesRequiresDisjointWitness) {
  View view(query_.get(), &db_);
  Tuple values = {db_.dict().Intern("a"), db_.dict().Intern("b")};
  view.AddMatch(values, Witness{{0, 0}});
  view.AddMatch(values, Witness{{0, 1}});
  DeletionSet one;
  one.Insert({0, 0});
  EXPECT_TRUE(view.Survives(0, one)) << "second witness intact";
  one.Insert({0, 1});
  EXPECT_FALSE(view.Survives(0, one));
}

TEST_F(ViewTest, RenderTupleUsesQueryName) {
  Result<View> view = Evaluate(db_, *query_);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->size(), 1u);
  EXPECT_EQ(view->RenderTuple(0), "Q(a, b)");
}

TEST(EvaluatorGuardTest, MaxMatchesTriggersOnCartesianBlowup) {
  Database db;
  ASSERT_TRUE(db.AddRelation("A", 1, {0}).ok());
  ASSERT_TRUE(db.AddRelation("B", 1, {0}).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db.InsertText(0, {"a" + std::to_string(i)}).ok());
    ASSERT_TRUE(db.InsertText(1, {"b" + std::to_string(i)}).ok());
  }
  Result<ConjunctiveQuery> q =
      ParseQuery("Q(x, y) :- A(x), B(y)", db.schema(), db.dict());
  ASSERT_TRUE(q.ok());
  EvalOptions options;
  options.max_matches = 100;
  Result<View> view = Evaluate(db, *q, options);  // 900 matches > 100
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kOutOfRange);
  // Within the limit it succeeds.
  options.max_matches = 1000;
  EXPECT_TRUE(Evaluate(db, *q, options).ok());
  // Zero disables the guard.
  options.max_matches = 0;
  EXPECT_TRUE(Evaluate(db, *q, options).ok());
}

TEST(PerViewSideEffectTest, BreakdownMatchesDefinition) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());
  RelationId t1 = *generated->database->schema().FindRelation("T1");
  DeletionSet deletion;
  deletion.Insert({t1, 1});
  deletion.Insert({t1, 3});
  SideEffectReport report = EvaluateDeletion(instance, deletion);
  ASSERT_EQ(report.per_view_side_effect.size(), 2u);
  EXPECT_EQ(report.per_view_side_effect[0], 1u) << "Q3 loses (John, CUBE)";
  EXPECT_EQ(report.per_view_side_effect[1], 3u) << "Q4 loses John's 3 rows";
  EXPECT_EQ(report.per_view_side_effect[0] + report.per_view_side_effect[1],
            report.side_effect_count);
}

}  // namespace
}  // namespace delprop
