#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/tuple_ref.h"
#include "dp/side_effect.h"
#include "solvers/damage_tracker.h"
#include "workload/author_journal.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

class TrackerFig1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<GeneratedVse> generated = BuildFig1Example();
    ASSERT_TRUE(generated.ok());
    generated_ = std::move(*generated);
    ASSERT_TRUE(generated_.instance
                    ->MarkForDeletionByValues(0, {"John", "XML"})
                    .ok());
  }
  TupleRef Row(const char* rel, uint32_t row) {
    RelationId id = *generated_.database->schema().FindRelation(rel);
    return TupleRef{id, row};
  }
  GeneratedVse generated_;
};

TEST_F(TrackerFig1Test, InitialStateMatchesInstance) {
  DamageTracker tracker(*generated_.instance);
  EXPECT_EQ(tracker.unkilled_deletion_count(), 1u);
  EXPECT_DOUBLE_EQ(tracker.killed_preserved_weight(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.surviving_deletion_weight(), 1.0);
  EXPECT_EQ(tracker.deleted_count(), 0u);
}

TEST_F(TrackerFig1Test, MultiWitnessKillNeedsBothWitnessesHit) {
  DamageTracker tracker(*generated_.instance);
  // (John, XML) has witnesses via TKDE and TODS; hitting one is not enough.
  tracker.Delete(Row("T1", 1));  // (John, TKDE)
  EXPECT_EQ(tracker.unkilled_deletion_count(), 1u);
  tracker.Delete(Row("T1", 3));  // (John, TODS)
  EXPECT_EQ(tracker.unkilled_deletion_count(), 0u);
}

TEST_F(TrackerFig1Test, DeleteReturnsMarginalAndUndeleteRestores) {
  DamageTracker tracker(*generated_.instance);
  double marginal = tracker.MarginalDamage(Row("T1", 1));
  double killed = tracker.Delete(Row("T1", 1));
  EXPECT_DOUBLE_EQ(marginal, killed);
  // (John,TKDE) kills Q3(John,CUBE) (single witness) + Q4(John,TKDE,XML) +
  // Q4(John,TKDE,CUBE); Q3(John,XML) is a ΔV tuple and not counted.
  EXPECT_DOUBLE_EQ(killed, 3.0);
  tracker.Undelete(Row("T1", 1));
  EXPECT_DOUBLE_EQ(tracker.killed_preserved_weight(), 0.0);
  EXPECT_EQ(tracker.unkilled_deletion_count(), 1u);
  EXPECT_FALSE(tracker.IsDeleted(Row("T1", 1)));
}

TEST_F(TrackerFig1Test, MarginalDamageAccountsForPriorDeletions) {
  DamageTracker tracker(*generated_.instance);
  tracker.Delete(Row("T1", 1));
  // After (John, TKDE), deleting (TKDE, XML, 30) no longer re-kills the
  // John tuples but still kills Joe/Tom XML rows in Q3 and Q4.
  double marginal = tracker.MarginalDamage(Row("T2", 0));
  EXPECT_DOUBLE_EQ(marginal, 4.0);  // Q3(Joe,XML), Q3(Tom,XML) + 2 Q4 rows.
}

TEST_F(TrackerFig1Test, CurrentDeletionRoundTrips) {
  DamageTracker tracker(*generated_.instance);
  tracker.Delete(Row("T1", 1));
  tracker.Delete(Row("T2", 2));
  DeletionSet set = tracker.CurrentDeletion();
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(Row("T1", 1)));
  EXPECT_TRUE(set.Contains(Row("T2", 2)));
}

TEST_F(TrackerFig1Test, UnknownTupleIsHarmless) {
  DamageTracker tracker(*generated_.instance);
  // A base tuple in no witness: zero damage, state unchanged.
  EXPECT_DOUBLE_EQ(tracker.MarginalDamage(TupleRef{0, 77}), 0.0);
  EXPECT_DOUBLE_EQ(tracker.Delete(TupleRef{0, 77}), 0.0);
  EXPECT_EQ(tracker.unkilled_deletion_count(), 1u);
  tracker.Undelete(TupleRef{0, 77});
}

// Property: tracker accounting must agree with EvaluateDeletion for random
// deletion sets applied in random order with interleaved undeletes.
TEST(TrackerPropertyTest, AgreesWithSideEffectEvaluation) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 3;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    DamageTracker tracker(instance);

    std::vector<TupleRef> candidates = instance.CandidateTuples();
    if (candidates.empty()) continue;
    // Random walk: delete/undelete.
    for (int step = 0; step < 30; ++step) {
      const TupleRef& ref = candidates[rng.NextBelow(candidates.size())];
      if (tracker.IsDeleted(ref)) {
        tracker.Undelete(ref);
      } else {
        tracker.Delete(ref);
      }
      SideEffectReport report =
          EvaluateDeletion(instance, tracker.CurrentDeletion());
      EXPECT_DOUBLE_EQ(tracker.killed_preserved_weight(),
                       report.side_effect_weight)
          << "seed " << seed << " step " << step;
      EXPECT_EQ(tracker.unkilled_deletion_count(),
                report.surviving_deletions.size());
    }
  }
}

// Regression for the swap-and-pop Undelete rewrite: CurrentDeletion() must
// stay semantically identical (same set, any order) to a reference set under
// arbitrary interleavings, including undeletes from the middle of the
// deletion list (the swap case) and non-LIFO orders.
TEST(TrackerUndeleteRegressionTest, CurrentDeletionMatchesReferenceSet) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(generated->instance->MarkForDeletionByValues(0, {"John", "XML"})
                  .ok());
  const VseInstance& instance = *generated->instance;
  DamageTracker tracker(instance);
  std::vector<TupleRef> candidates = instance.CandidateTuples();
  ASSERT_GE(candidates.size(), 4u);

  std::unordered_set<TupleRef, TupleRefHash> reference;
  auto check = [&] {
    DeletionSet current = tracker.CurrentDeletion();
    ASSERT_EQ(current.size(), reference.size());
    for (const TupleRef& ref : reference) {
      EXPECT_TRUE(current.Contains(ref)) << "lost " << ref.relation << "/"
                                         << ref.row << " on undelete";
      EXPECT_TRUE(tracker.IsDeleted(ref));
    }
    EXPECT_EQ(tracker.deleted_count(), reference.size());
  };

  // Delete four, undelete the SECOND one deleted (middle of the internal
  // list — exercises the swap), then continue mutating.
  for (size_t i = 0; i < 4; ++i) {
    tracker.Delete(candidates[i]);
    reference.insert(candidates[i]);
  }
  check();
  tracker.Undelete(candidates[1]);
  reference.erase(candidates[1]);
  check();
  // Undelete the element that was swapped into the hole (was last).
  tracker.Undelete(candidates[3]);
  reference.erase(candidates[3]);
  check();
  // Re-delete and drain in FIFO order (worst case for the old linear find).
  tracker.Delete(candidates[1]);
  reference.insert(candidates[1]);
  check();
  for (const TupleRef& ref :
       {candidates[0], candidates[2], candidates[1]}) {
    tracker.Undelete(ref);
    reference.erase(ref);
    check();
  }
  EXPECT_EQ(tracker.deleted_count(), 0u);
  EXPECT_DOUBLE_EQ(tracker.killed_preserved_weight(), 0.0);
}

}  // namespace
}  // namespace delprop
