#include <gtest/gtest.h>

#include "common/rng.h"
#include "solvers/exact_solver.h"
#include "solvers/single_query_solver.h"
#include "solvers/source_side_effect_solver.h"
#include "workload/author_journal.h"
#include "workload/path_schema.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

TEST(SourceSolverTest, Fig1Q4SingleDeletionNeedsOneTuple) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  std::vector<const ConjunctiveQuery*> q4 = {generated->queries[1].get()};
  Result<VseInstance> instance =
      VseInstance::Create(*generated->database, q4);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(
      instance->MarkForDeletionByValues(0, {"John", "TKDE", "XML"}).ok());
  SourceSideEffectSolver greedy;
  SourceSideEffectSolver exact(SourceSideEffectSolver::Mode::kExact);
  Result<VseSolution> g = greedy.Solve(*instance);
  Result<VseSolution> e = exact.Solve(*instance);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(g->Feasible());
  EXPECT_TRUE(e->Feasible());
  EXPECT_EQ(e->report.source_deletion_count, 1u);
  EXPECT_EQ(g->report.source_deletion_count, 1u);
}

TEST(SourceSolverTest, SharedTupleCoversManyDeletions) {
  // Delete all XML-topic view tuples of Q4: removing (TKDE, XML, 30) and
  // (TODS, XML, 30) suffices — exact source optimum 2.
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  std::vector<const ConjunctiveQuery*> q4 = {generated->queries[1].get()};
  Result<VseInstance> instance =
      VseInstance::Create(*generated->database, q4);
  ASSERT_TRUE(instance.ok());
  for (auto values :
       {std::vector<std::string>{"Joe", "TKDE", "XML"},
        {"John", "TKDE", "XML"},
        {"Tom", "TKDE", "XML"},
        {"John", "TODS", "XML"}}) {
    ASSERT_TRUE(instance->MarkForDeletionByValues(0, values).ok());
  }
  SourceSideEffectSolver exact(SourceSideEffectSolver::Mode::kExact);
  Result<VseSolution> solution = exact.Solve(*instance);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->Feasible());
  EXPECT_EQ(solution->report.source_deletion_count, 2u);
}

TEST(SourceSolverTest, GreedyNeverBeatsExact) {
  Rng rng(91);
  for (int trial = 0; trial < 15; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    if (!instance.all_unique_witness()) continue;
    SourceSideEffectSolver greedy;
    SourceSideEffectSolver exact(SourceSideEffectSolver::Mode::kExact);
    Result<VseSolution> g = greedy.Solve(instance);
    Result<VseSolution> e = exact.Solve(instance);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(g->Feasible());
    EXPECT_TRUE(e->Feasible());
    EXPECT_LE(e->report.source_deletion_count,
              g->report.source_deletion_count)
        << "trial " << trial;
  }
}

TEST(SingleQuerySolverTest, OptimalForSingleDeletion) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(1000 + seed);
    PathSchemaParams params;
    params.levels = 3;
    params.roots = 2;
    params.fanout = 2;
    params.deletion_fraction = 0.0;
    Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
    ASSERT_TRUE(generated.ok());
    VseInstance& instance = *generated->instance;
    ASSERT_GT(instance.view(0).size(), 0u);
    size_t pick = rng.NextBelow(instance.view(0).size());
    ASSERT_TRUE(instance.MarkForDeletion(ViewTupleId{0, pick}).ok());

    SingleQuerySolver single;
    ExactSolver exact;
    Result<VseSolution> fast = single.Solve(instance);
    Result<VseSolution> optimal = exact.Solve(instance);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ASSERT_TRUE(optimal.ok());
    EXPECT_TRUE(fast->Feasible());
    EXPECT_EQ(fast->deletion.size(), 1u);
    EXPECT_NEAR(fast->Cost(), optimal->Cost(), 1e-9) << "seed " << seed;
  }
}

TEST(SingleQuerySolverTest, RefusesMultipleDeletions) {
  Rng rng(92);
  PathSchemaParams params;
  params.deletion_fraction = 1.0;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  ASSERT_GT(generated->instance->TotalDeletionTuples(), 1u);
  SingleQuerySolver solver;
  EXPECT_EQ(solver.Solve(*generated->instance).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SourceSolverTest, RefusesMultiWitness) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());
  SourceSideEffectSolver solver;
  EXPECT_EQ(solver.Solve(instance).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace delprop
