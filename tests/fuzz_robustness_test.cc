// Robustness fuzzing: the parser, the CSV reader and the script interpreter
// must return error statuses — never crash or accept garbage silently — on
// random and adversarial inputs.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "query/parser.h"
#include "tool/csv.h"
#include "tool/script.h"

namespace delprop {
namespace {

std::string RandomText(Rng& rng, size_t max_len) {
  static const char kAlphabet[] =
      "abcxyz012 ,()'*:-_\"\n\t#QT";
  size_t len = rng.NextBelow(max_len);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
  }
  return out;
}

TEST(FuzzTest, ParserNeverCrashes) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("T1", 2, {0}).ok());
  ASSERT_TRUE(schema.AddRelation("T2", 3, {0, 1}).ok());
  ValueDictionary dict;
  Rng rng(424242);
  size_t parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string text = RandomText(rng, 60);
    Result<ConjunctiveQuery> q = ParseQuery(text, schema, dict);
    if (q.ok()) {
      ++parsed_ok;
      // Whatever parses must validate.
      EXPECT_TRUE(q->Validate(schema).ok()) << text;
    }
  }
  // Overwhelmingly garbage; a handful may parse by chance.
  EXPECT_LT(parsed_ok, 100u);
}

TEST(FuzzTest, ParserMutationsOfValidQuery) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("T1", 2, {0}).ok());
  ASSERT_TRUE(schema.AddRelation("T2", 3, {0, 1}).ok());
  ValueDictionary dict;
  const std::string base = "Q3(x, z) :- T1(x, y), T2(y, z, w)";
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = base;
    size_t edits = 1 + rng.NextBelow(3);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, "(),:-'x"[rng.NextBelow(7)]);
          break;
        default:
          mutated[pos] = "(),:-'x"[rng.NextBelow(7)];
      }
      if (mutated.empty()) break;
    }
    (void)ParseQuery(mutated, schema, dict);  // must not crash
  }
}

TEST(FuzzTest, CsvParserNeverCrashes) {
  Rng rng(99);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string line = RandomText(rng, 50);
    (void)ParseCsvLine(line);
  }
}

TEST(FuzzTest, CsvLoaderNeverCrashes) {
  Rng rng(100);
  for (int trial = 0; trial < 500; ++trial) {
    Database db;
    std::string csv = RandomText(rng, 120);
    (void)LoadCsvRelation(db, "R", csv);
  }
}

TEST(FuzzTest, ScriptSessionNeverCrashes) {
  Rng rng(2718);
  for (int trial = 0; trial < 400; ++trial) {
    ScriptSession session;
    std::string out;
    std::string script = RandomText(rng, 200);
    (void)session.Run(script, &out);
  }
}

TEST(FuzzTest, ScriptSessionCommandMutations) {
  const std::string base =
      "relation T1(a*, b)\n"
      "insert T1(x, y)\n"
      "query Q(a, b) :- T1(a, b)\n"
      "delete Q(x, y)\n"
      "solve greedy\n";
  Rng rng(3141);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    size_t pos = rng.NextBelow(mutated.size());
    mutated[pos] = static_cast<char>('!' + rng.NextBelow(90));
    ScriptSession session;
    std::string out;
    (void)session.Run(mutated, &out);  // must not crash
  }
}

}  // namespace
}  // namespace delprop
