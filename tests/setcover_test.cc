#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "setcover/greedy_set_cover.h"
#include "setcover/red_blue.h"
#include "setcover/red_blue_solvers.h"
#include "workload/hardness_family.h"
#include "workload/random_rbsc.h"

namespace delprop {
namespace {

RbscInstance TinyInstance() {
  // Blues {0,1}; sets: {b0,b1,r0,r1} (cost 2), {b0,r0} and {b1,r0}
  // (together cost 1 — share red 0).
  RbscInstance instance;
  instance.red_count = 2;
  instance.blue_count = 2;
  instance.sets = {{{0, 1}, {0, 1}}, {{0}, {0}}, {{0}, {1}}};
  return instance;
}

TEST(RbscTest, ValidateCatchesOutOfRange) {
  RbscInstance bad;
  bad.red_count = 1;
  bad.blue_count = 1;
  bad.sets = {{{5}, {}}};
  EXPECT_FALSE(bad.Validate().ok());
  RbscInstance bad_blue;
  bad_blue.red_count = 1;
  bad_blue.blue_count = 1;
  bad_blue.sets = {{{}, {7}}};
  EXPECT_FALSE(bad_blue.Validate().ok());
}

TEST(RbscTest, CostCountsCoveredRedsOnce) {
  RbscInstance instance = TinyInstance();
  RbscSolution solution{{1, 2}};
  EXPECT_TRUE(RbscFeasible(instance, solution));
  EXPECT_DOUBLE_EQ(RbscCost(instance, solution), 1.0) << "red 0 shared";
}

TEST(RbscTest, WeightedCost) {
  RbscInstance instance = TinyInstance();
  instance.red_weights = {5.0, 0.5};
  EXPECT_DOUBLE_EQ(RbscCost(instance, RbscSolution{{0}}), 5.5);
  EXPECT_DOUBLE_EQ(RbscCost(instance, RbscSolution{{1, 2}}), 5.0);
}

TEST(RbscTest, InfeasibleDetected) {
  RbscInstance instance = TinyInstance();
  EXPECT_FALSE(RbscFeasible(instance, RbscSolution{{1}}));
}

TEST(RbscSolversTest, ExactFindsOptimum) {
  RbscInstance instance = TinyInstance();
  Result<RbscSolution> exact = SolveRbscExact(instance);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_TRUE(RbscFeasible(instance, *exact));
  EXPECT_DOUBLE_EQ(RbscCost(instance, *exact), 1.0);
}

TEST(RbscSolversTest, GreedyIsFeasible) {
  RbscInstance instance = TinyInstance();
  Result<RbscSolution> greedy = SolveRbscGreedy(instance);
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(RbscFeasible(instance, *greedy));
}

TEST(RbscSolversTest, LowDegTwoBeatsGreedyOnTrap) {
  RbscInstance trap = GreedyTrapRbsc(8);
  Result<RbscSolution> greedy = SolveRbscGreedy(trap);
  Result<RbscSolution> lowdeg = SolveRbscLowDegTwo(trap);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(lowdeg.ok());
  EXPECT_DOUBLE_EQ(RbscCost(trap, *greedy), 7.0) << "greedy takes the big set";
  EXPECT_DOUBLE_EQ(RbscCost(trap, *lowdeg), 1.0) << "τ=1 pass recovers OPT";
}

TEST(RbscSolversTest, InfeasibleInstanceReported) {
  RbscInstance instance;
  instance.red_count = 0;
  instance.blue_count = 2;
  instance.sets = {{{}, {0}}};  // blue 1 uncoverable
  EXPECT_EQ(SolveRbscGreedy(instance).status().code(), StatusCode::kInfeasible);
  EXPECT_EQ(SolveRbscLowDegTwo(instance).status().code(),
            StatusCode::kInfeasible);
  EXPECT_EQ(SolveRbscExact(instance).status().code(), StatusCode::kInfeasible);
}

TEST(RbscSolversTest, LowDegWithinPelegBoundOnRandomInstances) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    RandomRbscParams params;
    params.red_count = 8;
    params.blue_count = 5;
    params.set_count = 10;
    RbscInstance instance = GenerateRandomRbsc(rng, params);
    Result<RbscSolution> exact = SolveRbscExact(instance);
    Result<RbscSolution> lowdeg = SolveRbscLowDegTwo(instance);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(lowdeg.ok());
    double opt = RbscCost(instance, *exact);
    double approx = RbscCost(instance, *lowdeg);
    EXPECT_LE(opt, approx + 1e-9);
    double bound =
        2.0 * std::sqrt(static_cast<double>(instance.sets.size()) *
                        std::log(std::max<double>(2.0, instance.blue_count)));
    EXPECT_LE(approx, bound * std::max(opt, 1.0) + 1e-9)
        << "trial " << trial;
  }
}

TEST(RbscSolversTest, ExactBudgetExhaustionReported) {
  Rng rng(22);
  RandomRbscParams params;
  params.red_count = 20;
  params.blue_count = 15;
  params.set_count = 30;
  RbscInstance instance = GenerateRandomRbsc(rng, params);
  RbscExactOptions options;
  options.node_budget = 3;
  Result<RbscSolution> result = SolveRbscExact(instance, options);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SetCoverTest, GreedyAndExactOnSmallInstance) {
  SetCoverInstance instance;
  instance.element_count = 3;
  instance.sets = {{0}, {1}, {2}, {0, 1, 2}};
  Result<std::vector<size_t>> greedy = GreedySetCover(instance);
  Result<std::vector<size_t>> exact = ExactSetCover(instance);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(SetCoverFeasible(instance, *greedy));
  EXPECT_TRUE(SetCoverFeasible(instance, *exact));
  EXPECT_DOUBLE_EQ(SetCoverCost(instance, *exact), 1.0);
  EXPECT_DOUBLE_EQ(SetCoverCost(instance, *greedy), 1.0);
}

TEST(SetCoverTest, WeightedCosts) {
  SetCoverInstance instance;
  instance.element_count = 2;
  instance.sets = {{0, 1}, {0}, {1}};
  instance.set_costs = {10.0, 1.0, 1.0};
  Result<std::vector<size_t>> exact = ExactSetCover(instance);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(SetCoverCost(instance, *exact), 2.0);
}

TEST(SetCoverTest, InfeasibleReported) {
  SetCoverInstance instance;
  instance.element_count = 2;
  instance.sets = {{0}};
  EXPECT_EQ(GreedySetCover(instance).status().code(), StatusCode::kInfeasible);
  EXPECT_EQ(ExactSetCover(instance).status().code(), StatusCode::kInfeasible);
}

// The lazy-heap greedy must pick the same set as the reference scan on every
// iteration — including ties, where the lowest index wins. Random weighted
// and unweighted instances, with deliberate duplicate elements (the
// reference counts occurrences, not distinct elements).
TEST(SetCoverTest, LazyHeapMatchesScanReference) {
  Rng rng(77);
  for (int round = 0; round < 60; ++round) {
    SetCoverInstance instance;
    instance.element_count = 3 + rng.NextBelow(20);
    size_t set_count = 2 + rng.NextBelow(25);
    for (size_t s = 0; s < set_count; ++s) {
      std::vector<size_t> elements;
      size_t size = rng.NextBelow(6);
      for (size_t i = 0; i < size; ++i) {
        elements.push_back(rng.NextBelow(instance.element_count));
        if (rng.NextBool(0.15) && !elements.empty()) {
          elements.push_back(elements.back());  // duplicate occurrence
        }
      }
      instance.sets.push_back(std::move(elements));
    }
    // One in three rounds weighted; small integer costs force score ties.
    if (round % 3 == 0) {
      for (size_t s = 0; s < set_count; ++s) {
        instance.set_costs.push_back(
            static_cast<double>(1 + rng.NextBelow(3)));
      }
    }
    Result<std::vector<size_t>> lazy = GreedySetCover(instance);
    Result<std::vector<size_t>> scan = GreedySetCoverScanReference(instance);
    ASSERT_EQ(lazy.ok(), scan.ok()) << "round " << round;
    if (!lazy.ok()) {
      EXPECT_EQ(lazy.status().code(), scan.status().code());
      continue;
    }
    // Byte-identical pick sequence, not merely equal cost.
    EXPECT_EQ(*lazy, *scan) << "round " << round;
  }
}

TEST(HardnessFamilyTest, LayeredTrapScalesGreedyGap) {
  RbscInstance trap = LayeredTrapRbsc(3, 5);
  ASSERT_TRUE(trap.Validate().ok());
  Result<RbscSolution> greedy = SolveRbscGreedy(trap);
  Result<RbscSolution> lowdeg = SolveRbscLowDegTwo(trap);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(lowdeg.ok());
  EXPECT_DOUBLE_EQ(RbscCost(trap, *greedy), 12.0);  // 3 layers × (k-1).
  EXPECT_DOUBLE_EQ(RbscCost(trap, *lowdeg), 3.0);   // 3 shared cheap reds.
}

}  // namespace
}  // namespace delprop
