#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dp/vse_instance.h"
#include "plan/compiled_instance.h"
#include "query/parser.h"
#include "relational/database.h"
#include "solvers/damage_tracker.h"
#include "solvers/greedy_solver.h"
#include "solvers/kill_kernels.h"
#include "solvers/local_search_solver.h"

namespace delprop {
namespace {

using kernels::KernelMode;
using kernels::ScopedKernelOverride;

// ---------------------------------------------------------------------------
// Word primitives across the boundaries that matter: 63/64/65/127/128.
// ---------------------------------------------------------------------------

TEST(KernelPrimitivesTest, LowMaskBoundaries) {
  EXPECT_EQ(kernels::LowMask(0), 0u);
  EXPECT_EQ(kernels::LowMask(1), 1u);
  EXPECT_EQ(kernels::LowMask(63), ~0ull >> 1);
  EXPECT_EQ(kernels::LowMask(64), ~0ull);
}

TEST(KernelPrimitivesTest, ExtractBitsStraddlesWords) {
  // Bits 62..66 set across a 3-word array.
  uint64_t words[3] = {0, 0, 0};
  for (uint32_t bit : {62u, 63u, 64u, 65u, 66u}) {
    kernels::SetBit(words, bit);
  }
  EXPECT_EQ(kernels::ExtractBits(words, 62, 5), 0b11111u);
  EXPECT_EQ(kernels::ExtractBits(words, 63, 2), 0b11u);
  EXPECT_EQ(kernels::ExtractBits(words, 64, 3), 0b111u);
  EXPECT_EQ(kernels::ExtractBits(words, 60, 2), 0u);
  EXPECT_EQ(kernels::ExtractBits(words, 0, 64), 1ull << 62 | 1ull << 63);
  EXPECT_EQ(kernels::ExtractBits(words, 62, 0), 0u);
}

TEST(KernelPrimitivesTest, RangeOpsAtEveryWidth) {
  for (uint32_t width : {63u, 64u, 65u, 127u, 128u}) {
    for (uint32_t offset : {0u, 1u, 37u, 63u}) {
      std::vector<uint64_t> words((offset + width + 63) / 64 + 1, 0);
      EXPECT_TRUE(kernels::RangeIsZero(words.data(), offset, width));
      EXPECT_EQ(kernels::RangePopCount(words.data(), offset, width), 0u);
      // Set the first, middle, and last bit of the range.
      kernels::SetBit(words.data(), offset);
      kernels::SetBit(words.data(), offset + width / 2);
      kernels::SetBit(words.data(), offset + width - 1);
      EXPECT_FALSE(kernels::RangeIsZero(words.data(), offset, width));
      // The three markers collapse when width makes them coincide.
      uint32_t expected = width == 1 ? 1 : (width == 2 ? 2 : 3);
      EXPECT_EQ(kernels::RangePopCount(words.data(), offset, width), expected)
          << "width " << width << " offset " << offset;
      // Clearing the exact range leaves neighbors untouched.
      kernels::SetBit(words.data(), offset + width);  // sentinel past the end
      kernels::ClearRange(words.data(), offset, width);
      EXPECT_TRUE(kernels::RangeIsZero(words.data(), offset, width));
      EXPECT_TRUE(kernels::TestBit(words.data(), offset + width));
    }
  }
}

TEST(KernelPrimitivesTest, ScopedOverrideNestsAndRestores) {
  KernelMode ambient = kernels::RequestedKernelMode();
  {
    ScopedKernelOverride outer(KernelMode::kScalar);
    EXPECT_EQ(kernels::RequestedKernelMode(), KernelMode::kScalar);
    {
      ScopedKernelOverride inner(KernelMode::kBitset);
      EXPECT_EQ(kernels::RequestedKernelMode(), KernelMode::kBitset);
    }
    EXPECT_EQ(kernels::RequestedKernelMode(), KernelMode::kScalar);
  }
  EXPECT_EQ(kernels::RequestedKernelMode(), ambient);
}

// ---------------------------------------------------------------------------
// Witness fan-in at the one-word boundary. Q(x) :- R(x, y), S(y) over rows
// ("h", y_i) / ("p", y_i) / S(y_i) yields two view tuples with `n` witnesses
// of two members each; the S rows are shared between them, so deleting S
// damages the preserved tuple while killing the ΔV one.
// ---------------------------------------------------------------------------

struct FanInCase {
  std::unique_ptr<Database> db;
  std::unique_ptr<ConjunctiveQuery> query;
  std::unique_ptr<VseInstance> instance;
  std::vector<TupleRef> s_rows;
  std::vector<TupleRef> r_rows;
};

FanInCase BuildFanIn(uint32_t n) {
  FanInCase c;
  c.db = std::make_unique<Database>();
  EXPECT_TRUE(c.db->AddRelation("R", 2, {0, 1}).ok());
  EXPECT_TRUE(c.db->AddRelation("S", 1, {0}).ok());
  for (uint32_t i = 0; i < n; ++i) {
    std::string y = "y" + std::to_string(i);
    Result<TupleRef> r =
        c.db->InsertText(0, std::vector<std::string>{"h", y});
    EXPECT_TRUE(r.ok());
    c.r_rows.push_back(*r);
    EXPECT_TRUE(c.db->InsertText(0, std::vector<std::string>{"p", y}).ok());
    Result<TupleRef> s = c.db->InsertText(1, std::vector<std::string>{y});
    EXPECT_TRUE(s.ok());
    c.s_rows.push_back(*s);
  }
  Result<ConjunctiveQuery> q =
      ParseQuery("Q(x) :- R(x, y), S(y)", c.db->schema(), c.db->dict());
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  c.query = std::make_unique<ConjunctiveQuery>(std::move(*q));
  Result<VseInstance> instance =
      VseInstance::Create(*c.db, {c.query.get()});
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  c.instance = std::make_unique<VseInstance>(std::move(*instance));
  EXPECT_TRUE(c.instance->MarkForDeletionByValues(0, {"h"}).ok());
  return c;
}

/// Scalar/bitset lockstep over one fan-in case: per-op bitwise comparison of
/// marginals, deltas, aggregates, probes; both paths must agree at every
/// step whether or not the plan supports the packed layout.
void RunLockstep(const FanInCase& c, bool expect_bits) {
  std::optional<DamageTracker> scalar;
  std::optional<DamageTracker> bits;
  {
    ScopedKernelOverride pin(KernelMode::kScalar);
    scalar.emplace(*c.instance);
  }
  {
    ScopedKernelOverride pin(KernelMode::kBitset);
    bits.emplace(*c.instance);
  }
  EXPECT_FALSE(scalar->bit_kernels_active());
  EXPECT_EQ(bits->bit_kernels_active(), expect_bits);
  EXPECT_EQ(c.instance->compiled()->bits_supported(), expect_bits);

  auto agree = [&](const char* when) {
    ASSERT_EQ(scalar->unkilled_deletion_count(),
              bits->unkilled_deletion_count())
        << when;
    ASSERT_EQ(scalar->killed_preserved_weight(),
              bits->killed_preserved_weight())
        << when;
    const CompiledInstance& plan = scalar->plan();
    for (uint32_t w = 0; w < plan.witness_count(); ++w) {
      ASSERT_EQ(scalar->witness_hits(w), bits->witness_hits(w))
          << when << " witness " << w;
    }
    for (uint32_t d = 0; d < plan.tuple_count(); ++d) {
      ASSERT_EQ(scalar->IsKilledDense(d), bits->IsKilledDense(d))
          << when << " tuple " << d;
      ASSERT_EQ(scalar->dead_witness_count(d), bits->dead_witness_count(d))
          << when << " tuple " << d;
      ASSERT_EQ(scalar->FirstUnhitWitness(d), bits->FirstUnhitWitness(d))
          << when << " tuple " << d;
    }
  };
  agree("initial");
  EXPECT_EQ(scalar->unkilled_deletion_count(), 1u);

  // Kill via the shared S rows: the i-th delete hits witness i of both view
  // tuples; the final one kills both at once, with the preserved weight
  // crossing from 0 to 1 on both paths in the same step.
  for (size_t i = 0; i < c.s_rows.size(); ++i) {
    ASSERT_EQ(scalar->MarginalDamage(c.s_rows[i]),
              bits->MarginalDamage(c.s_rows[i]))
        << "marginal before delete " << i;
    ASSERT_EQ(scalar->Delete(c.s_rows[i]), bits->Delete(c.s_rows[i]))
        << "delete " << i;
  }
  agree("all S deleted");
  EXPECT_EQ(scalar->unkilled_deletion_count(), 0u);
  EXPECT_EQ(scalar->killed_preserved_weight(), 1.0);

  // All rows dead: every further marginal is zero, and no S row is
  // droppable (each is the sole deleted member of its witness pair).
  for (const TupleRef& r : c.r_rows) {
    ASSERT_EQ(scalar->MarginalDamage(r), bits->MarginalDamage(r));
    ASSERT_EQ(scalar->MarginalDamage(r), 0.0);
  }
  const CompiledInstance& plan = scalar->plan();
  for (const TupleRef& s : c.s_rows) {
    uint32_t base = plan.FindBase(s);
    ASSERT_NE(base, CompiledInstance::kNpos);
    ASSERT_EQ(scalar->CanDropBase(base), bits->CanDropBase(base));
    EXPECT_FALSE(scalar->CanDropBase(base));
  }

  // Undelete the even rows; the re-kill path must agree too.
  for (size_t i = 0; i < c.s_rows.size(); i += 2) {
    scalar->Undelete(c.s_rows[i]);
    bits->Undelete(c.s_rows[i]);
  }
  agree("half undeleted");
  for (size_t i = 0; i < c.s_rows.size(); i += 2) {
    ASSERT_EQ(scalar->Delete(c.s_rows[i]), bits->Delete(c.s_rows[i]));
  }
  agree("re-deleted");

  scalar->Reset();
  bits->Reset();
  agree("after reset");
  EXPECT_EQ(scalar->unkilled_deletion_count(), 1u);
  EXPECT_EQ(scalar->killed_preserved_weight(), 0.0);
}

TEST(KernelFanInTest, Width63) { RunLockstep(BuildFanIn(63), true); }
TEST(KernelFanInTest, Width64) { RunLockstep(BuildFanIn(64), true); }

TEST(KernelFanInTest, Width65FallsBackToScalar) {
  FanInCase c = BuildFanIn(65);
  EXPECT_FALSE(c.instance->compiled()->bits_supported());
  EXPECT_EQ(c.instance->compiled()->max_witnesses_per_tuple(), 65u);
  // The lockstep still runs — both pins resolve to the scalar engine.
  RunLockstep(c, false);
}

TEST(KernelFanInTest, SolversMatchAcrossKernelsAtBoundaryWidths) {
  for (uint32_t n : {63u, 64u, 65u}) {
    FanInCase c = BuildFanIn(n);
    GreedySolver greedy;
    LocalSearchSolver local_search;
    for (VseSolver* solver :
         std::initializer_list<VseSolver*>{&greedy, &local_search}) {
      std::optional<VseSolution> s;
      std::optional<VseSolution> b;
      {
        ScopedKernelOverride pin(KernelMode::kScalar);
        Result<VseSolution> r = solver->Solve(*c.instance);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        s = std::move(*r);
      }
      {
        ScopedKernelOverride pin(KernelMode::kBitset);
        Result<VseSolution> r = solver->Solve(*c.instance);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        b = std::move(*r);
      }
      EXPECT_EQ(s->deletion.Sorted(), b->deletion.Sorted())
          << solver->name() << " at width " << n;
      EXPECT_EQ(s->Cost(), b->Cost()) << solver->name() << " at width " << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Single-member witnesses: Q(x) :- R(x, y) gives every witness exactly one
// member, so each delete is a direct witness kill.
// ---------------------------------------------------------------------------

TEST(KernelSingleMemberTest, EachDeleteKillsExactlyOneWitness) {
  Database db;
  ASSERT_TRUE(db.AddRelation("R", 2, {0, 1}).ok());
  std::vector<TupleRef> rows;
  for (uint32_t i = 0; i < 64; ++i) {
    Result<TupleRef> r = db.InsertText(
        0, std::vector<std::string>{"h", "y" + std::to_string(i)});
    ASSERT_TRUE(r.ok());
    rows.push_back(*r);
  }
  Result<ConjunctiveQuery> q =
      ParseQuery("Q(x) :- R(x, y)", db.schema(), db.dict());
  ASSERT_TRUE(q.ok());
  Result<VseInstance> instance = VseInstance::Create(db, {&*q});
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(instance->MarkForDeletionByValues(0, {"h"}).ok());

  ScopedKernelOverride pin(KernelMode::kBitset);
  DamageTracker tracker(*instance);
  ASSERT_TRUE(tracker.bit_kernels_active());
  uint32_t dense = tracker.plan().deletion_dense()[0];
  for (uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(tracker.dead_witness_count(dense), i);
    EXPECT_FALSE(tracker.IsKilledDense(dense));
    tracker.Delete(rows[i]);
    for (uint32_t w = 0; w <= i; ++w) {
      EXPECT_EQ(tracker.witness_hits(tracker.plan().tuple_witness_begin(
                    dense) + w),
                1u);
    }
  }
  EXPECT_TRUE(tracker.IsKilledDense(dense));
  EXPECT_EQ(tracker.unkilled_deletion_count(), 0u);
  // Undeleting any single row revives the tuple (its witness comes back).
  tracker.Undelete(rows[17]);
  EXPECT_FALSE(tracker.IsKilledDense(dense));
  EXPECT_EQ(tracker.unkilled_deletion_count(), 1u);
  EXPECT_EQ(tracker.FirstUnhitWitness(dense),
            tracker.plan().tuple_witness_begin(dense) + 17);
}

// ---------------------------------------------------------------------------
// Regressions for the foreign-ref side list and the sparse reset.
// ---------------------------------------------------------------------------

TEST(KernelRegressionTest, ForeignRefsStayBoundedAndExact) {
  FanInCase c = BuildFanIn(8);
  DamageTracker tracker(*c.instance);
  size_t interned = tracker.deleted_count();
  ASSERT_EQ(interned, 0u);
  // Rows far past the stored relation: never interned, tracked on the
  // sorted side list. Insert out of order to exercise the sorted insert.
  std::vector<TupleRef> foreign;
  for (uint32_t i = 0; i < 100; ++i) {
    foreign.push_back(TupleRef{0, 100000 + ((i * 37) % 100)});
  }
  for (const TupleRef& ref : foreign) {
    EXPECT_FALSE(tracker.IsDeleted(ref));
    EXPECT_EQ(tracker.Delete(ref), 0.0);
    EXPECT_TRUE(tracker.IsDeleted(ref));
  }
  EXPECT_EQ(tracker.deleted_count(), 100u);
  EXPECT_EQ(tracker.unkilled_deletion_count(), 1u);  // ΔV untouched
  // Undelete in a different order; membership stays exact throughout.
  for (uint32_t i = 0; i < 100; ++i) {
    TupleRef ref{0, 100000 + i};
    EXPECT_TRUE(tracker.IsDeleted(ref));
    tracker.Undelete(ref);
    EXPECT_FALSE(tracker.IsDeleted(ref));
  }
  EXPECT_EQ(tracker.deleted_count(), 0u);
}

TEST(KernelRegressionTest, ResetRestoresPristineStateSparselyAndAfterOverflow) {
  for (KernelMode mode : {KernelMode::kScalar, KernelMode::kBitset}) {
    FanInCase c = BuildFanIn(32);
    ScopedKernelOverride pin(mode);
    DamageTracker tracker(*c.instance);
    DamageTracker fresh(*c.instance);
    auto expect_pristine = [&](const char* when) {
      const CompiledInstance& plan = tracker.plan();
      ASSERT_EQ(tracker.unkilled_deletion_count(),
                fresh.unkilled_deletion_count())
          << when;
      ASSERT_EQ(tracker.killed_preserved_weight(),
                fresh.killed_preserved_weight())
          << when;
      ASSERT_EQ(tracker.deleted_count(), 0u) << when;
      for (uint32_t w = 0; w < plan.witness_count(); ++w) {
        ASSERT_EQ(tracker.witness_hits(w), 0u) << when << " witness " << w;
      }
      for (uint32_t d = 0; d < plan.tuple_count(); ++d) {
        ASSERT_EQ(tracker.IsKilledDense(d), fresh.IsKilledDense(d))
            << when << " tuple " << d;
      }
    };

    // Sparse path: touch a handful of witnesses, well under the log caps.
    tracker.Delete(c.s_rows[3]);
    tracker.Delete(c.s_rows[7]);
    tracker.Reset();
    expect_pristine("sparse reset");

    // Overflow path: hammer one base through delete/undelete cycles — every
    // re-delete logs its witness transitions again, so the touch log
    // overflows and Reset must fall back to the full clear.
    for (int cycle = 0; cycle < 500; ++cycle) {
      tracker.Delete(c.s_rows[0]);
      tracker.Undelete(c.s_rows[0]);
    }
    for (const TupleRef& s : c.s_rows) tracker.Delete(s);
    tracker.Reset();
    expect_pristine("overflow reset");

    // Back-to-back reset on an untouched tracker is a no-op.
    tracker.Reset();
    expect_pristine("idle reset");
  }
}

}  // namespace
}  // namespace delprop
