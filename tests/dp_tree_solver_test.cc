#include <gtest/gtest.h>

#include "common/rng.h"
#include "solvers/dp_tree_solver.h"
#include "solvers/exact_solver.h"
#include "workload/path_schema.h"
#include "workload/star_schema.h"

namespace delprop {
namespace {

Result<GeneratedVse> PivotInstance(uint64_t seed, size_t levels, size_t roots,
                                   size_t fanout, double delta) {
  Rng rng(seed);
  PathSchemaParams params;
  params.levels = levels;
  params.roots = roots;
  params.fanout = fanout;
  params.deletion_fraction = delta;
  return GeneratePathSchema(rng, params);
}

TEST(DpTreeTest, MatchesExactOnPivotInstances) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Result<GeneratedVse> generated = PivotInstance(400 + seed, 3, 2, 2, 0.3);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    DpTreeSolver dp;
    ExactSolver exact;
    Result<VseSolution> dp_solution = dp.Solve(instance);
    Result<VseSolution> exact_solution = exact.Solve(instance);
    ASSERT_TRUE(dp_solution.ok()) << dp_solution.status().ToString();
    ASSERT_TRUE(exact_solution.ok());
    EXPECT_TRUE(dp_solution->Feasible()) << "seed " << seed;
    EXPECT_NEAR(dp_solution->Cost(), exact_solution->Cost(), 1e-9)
        << "seed " << seed << ": Algorithm 4 must be exact on pivot forests";
  }
}

TEST(DpTreeTest, MatchesExactWithWeights) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Result<GeneratedVse> generated = PivotInstance(500 + seed, 3, 2, 2, 0.25);
    ASSERT_TRUE(generated.ok());
    VseInstance& instance = *generated->instance;
    // Random weights on all view tuples.
    Rng rng(900 + seed);
    for (size_t v = 0; v < instance.view_count(); ++v) {
      for (size_t t = 0; t < instance.view(v).size(); ++t) {
        ASSERT_TRUE(
            instance.SetWeight(ViewTupleId{v, t},
                               1.0 + static_cast<double>(rng.NextBelow(5)))
                .ok());
      }
    }
    DpTreeSolver dp;
    ExactSolver exact;
    Result<VseSolution> dp_solution = dp.Solve(instance);
    Result<VseSolution> exact_solution = exact.Solve(instance);
    ASSERT_TRUE(dp_solution.ok());
    ASSERT_TRUE(exact_solution.ok());
    EXPECT_NEAR(dp_solution->Cost(), exact_solution->Cost(), 1e-9)
        << "seed " << seed;
  }
}

TEST(DpTreeTest, BalancedMatchesExactBalanced) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Result<GeneratedVse> generated = PivotInstance(600 + seed, 3, 2, 2, 0.35);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    DpTreeSolver dp(Objective::kBalanced);
    ExactBalancedSolver exact;
    Result<VseSolution> dp_solution = dp.Solve(instance);
    Result<VseSolution> exact_solution = exact.Solve(instance);
    ASSERT_TRUE(dp_solution.ok()) << dp_solution.status().ToString();
    ASSERT_TRUE(exact_solution.ok()) << exact_solution.status().ToString();
    EXPECT_NEAR(dp_solution->BalancedCost(), exact_solution->BalancedCost(),
                1e-9)
        << "seed " << seed;
  }
}

TEST(DpTreeTest, RefusesNonPivotInstances) {
  Rng rng(71);
  StarSchemaParams params;
  params.dimensions = 3;
  params.fact_rows = 12;
  params.query_dimension_sets = {{0, 1, 2}};
  params.deletion_fraction = 0.4;
  Result<GeneratedVse> generated = GenerateStarSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  ASSERT_GT(generated->instance->TotalDeletionTuples(), 0u);
  DpTreeSolver dp;
  EXPECT_EQ(dp.Solve(*generated->instance).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DpTreeTest, DeepChainExact) {
  // A single long chain: the DP must still match the exact optimum.
  Result<GeneratedVse> generated = PivotInstance(72, 6, 1, 1, 0.4);
  ASSERT_TRUE(generated.ok());
  const VseInstance& instance = *generated->instance;
  DpTreeSolver dp;
  ExactSolver exact;
  Result<VseSolution> dp_solution = dp.Solve(instance);
  Result<VseSolution> exact_solution = exact.Solve(instance);
  ASSERT_TRUE(dp_solution.ok()) << dp_solution.status().ToString();
  ASSERT_TRUE(exact_solution.ok());
  EXPECT_NEAR(dp_solution->Cost(), exact_solution->Cost(), 1e-9);
}

TEST(DpTreeTest, RandomParentTreesExact) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(800 + seed);
    PathSchemaParams params;
    params.levels = 3;
    params.roots = 2;
    params.fanout = 3;
    params.random_parents = true;
    params.deletion_fraction = 0.3;
    Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    DpTreeSolver dp;
    ExactSolver exact;
    Result<VseSolution> dp_solution = dp.Solve(instance);
    Result<VseSolution> exact_solution = exact.Solve(instance);
    ASSERT_TRUE(dp_solution.ok()) << dp_solution.status().ToString();
    ASSERT_TRUE(exact_solution.ok());
    EXPECT_NEAR(dp_solution->Cost(), exact_solution->Cost(), 1e-9)
        << "seed " << seed;
  }
}

TEST(DpTreeTest, BalancedNeverExceedsDoingNothing) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Result<GeneratedVse> generated = PivotInstance(700 + seed, 3, 2, 2, 0.5);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    DpTreeSolver dp(Objective::kBalanced);
    Result<VseSolution> solution = dp.Solve(instance);
    ASSERT_TRUE(solution.ok());
    double do_nothing = 0.0;
    for (const ViewTupleId& id : instance.deletion_tuples()) {
      do_nothing += instance.weight(id);
    }
    EXPECT_LE(solution->BalancedCost(), do_nothing + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace delprop
