#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/text_table.h"

namespace delprop {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kKeyViolation, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kInfeasible}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool diverged = false;
  for (int i = 0; i < 10 && !diverged; ++i) diverged = a.Next() != b.Next();
  EXPECT_TRUE(diverged);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values of a small range should appear";
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(8);
  std::vector<size_t> sample = rng.SampleIndices(10, 4);
  ASSERT_EQ(sample.size(), 4u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 4u);
  for (size_t s : sample) EXPECT_LT(s, 10u);
}

TEST(RngTest, SampleIndicesClampsToUniverse) {
  Rng rng(9);
  EXPECT_EQ(rng.SampleIndices(3, 10).size(), 3u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end()), b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(HashTest, VectorHashDistinguishesContent) {
  VectorHash<int> h;
  EXPECT_NE(h({1, 2, 3}), h({3, 2, 1}));
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTableTest, FmtHelpers) {
  EXPECT_EQ(FmtDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FmtRatio(3.0, 2.0, 1), "1.5");
  EXPECT_EQ(FmtRatio(1.0, 0.0), "inf");
  EXPECT_EQ(FmtRatio(0.0, 0.0), "1.000");
}

}  // namespace
}  // namespace delprop
