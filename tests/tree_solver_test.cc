#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "solvers/exact_solver.h"
#include "solvers/lowdeg_tree_solver.h"
#include "solvers/primal_dual_tree_solver.h"
#include "solvers/tree_common.h"
#include "workload/path_schema.h"
#include "workload/star_schema.h"

namespace delprop {
namespace {

Result<GeneratedVse> TreeInstance(uint64_t seed, size_t levels, size_t roots,
                                  size_t fanout, double delta) {
  Rng rng(seed);
  PathSchemaParams params;
  params.levels = levels;
  params.roots = roots;
  params.fanout = fanout;
  params.deletion_fraction = delta;
  return GeneratePathSchema(rng, params);
}

TEST(TreeCommonTest, BuildsOnPathSchema) {
  Result<GeneratedVse> generated = TreeInstance(61, 4, 2, 2, 0.2);
  ASSERT_TRUE(generated.ok());
  Result<TreeStructure> structure =
      BuildTreeStructure(*generated->instance, TreeMode::kDeltaPaths);
  ASSERT_TRUE(structure.ok()) << structure.status().ToString();
  EXPECT_EQ(structure->delta_paths.size(),
            generated->instance->TotalDeletionTuples());
  EXPECT_EQ(structure->delta_paths.size() + structure->preserved_paths.size(),
            generated->instance->TotalViewTuples());
  // Every path's LCA is its shallowest node.
  for (const auto& path : structure->delta_paths) {
    for (size_t n : path.nodes) {
      EXPECT_GE(structure->rooting.depth[n],
                structure->rooting.depth[path.lca_node]);
    }
  }
}

TEST(TreeCommonTest, RefusesStarWitnesses) {
  Rng rng(62);
  StarSchemaParams params;
  params.dimensions = 3;
  params.fact_rows = 12;
  params.query_dimension_sets = {{0, 1, 2}};
  params.deletion_fraction = 0.5;
  Result<GeneratedVse> generated = GenerateStarSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  ASSERT_GT(generated->instance->TotalDeletionTuples(), 0u);
  Result<TreeStructure> structure =
      BuildTreeStructure(*generated->instance, TreeMode::kDeltaPaths);
  EXPECT_EQ(structure.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PrimalDualTest, FeasibleOnTreeInstances) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Result<GeneratedVse> generated = TreeInstance(100 + seed, 4, 2, 2, 0.25);
    ASSERT_TRUE(generated.ok());
    PrimalDualTreeSolver solver;
    Result<VseSolution> solution = solver.Solve(*generated->instance);
    ASSERT_TRUE(solution.ok()) << solution.status().ToString();
    EXPECT_TRUE(solution->Feasible()) << "seed " << seed;
  }
}

TEST(PrimalDualTest, WithinFactorLOfExact) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Result<GeneratedVse> generated = TreeInstance(200 + seed, 3, 2, 2, 0.3);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    PrimalDualTreeSolver primal_dual;
    ExactSolver exact;
    Result<VseSolution> approx = primal_dual.Solve(instance);
    Result<VseSolution> optimal = exact.Solve(instance);
    ASSERT_TRUE(approx.ok());
    ASSERT_TRUE(optimal.ok()) << optimal.status().ToString();
    double l = static_cast<double>(instance.max_arity());
    EXPECT_LE(optimal->Cost(), approx->Cost() + 1e-9);
    EXPECT_LE(approx->Cost(), l * optimal->Cost() + 1e-9)
        << "seed " << seed << ": Theorem 3's l-approximation bound";
  }
}

TEST(PrimalDualTest, ReverseDeleteGivesMinimalSolution) {
  Result<GeneratedVse> generated = TreeInstance(63, 4, 2, 2, 0.3);
  ASSERT_TRUE(generated.ok());
  const VseInstance& instance = *generated->instance;
  PrimalDualTreeSolver solver;
  Result<VseSolution> solution = solver.Solve(instance);
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution->Feasible());
  for (const TupleRef& ref : solution->deletion.Sorted()) {
    DeletionSet smaller = solution->deletion;
    smaller.Erase(ref);
    EXPECT_FALSE(
        EvaluateDeletion(instance, smaller).eliminates_all_deletions)
        << "dropping " << instance.database().RenderTuple(ref)
        << " should break feasibility";
  }
}

TEST(PrimalDualTest, UndeletableNodesRespected) {
  Result<GeneratedVse> generated = TreeInstance(64, 3, 1, 2, 0.4);
  ASSERT_TRUE(generated.ok());
  Result<TreeStructure> structure =
      BuildTreeStructure(*generated->instance, TreeMode::kDeltaPaths);
  ASSERT_TRUE(structure.ok());
  PrimalDualOptions options;
  options.undeletable.assign(structure->forest.node_count(), true);
  Result<std::vector<size_t>> nodes =
      PrimalDualTreeSolver::SolveOnTree(*structure, options);
  EXPECT_EQ(nodes.status().code(), StatusCode::kInfeasible);
}

TEST(LowDegTest, FeasibleAndWithinTheoremFourBound) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Result<GeneratedVse> generated = TreeInstance(300 + seed, 3, 2, 2, 0.3);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    LowDegTreeSolver lowdeg;
    ExactSolver exact;
    Result<VseSolution> approx = lowdeg.Solve(instance);
    Result<VseSolution> optimal = exact.Solve(instance);
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    ASSERT_TRUE(optimal.ok());
    EXPECT_TRUE(approx->Feasible());
    double bound =
        2.0 * std::sqrt(static_cast<double>(instance.TotalViewTuples()));
    EXPECT_LE(approx->Cost(),
              bound * std::max(optimal->Cost(), 1.0) + 1e-9)
        << "seed " << seed << ": Theorem 4's 2·sqrt(‖V‖) bound";
  }
}

TEST(LowDegTest, NeverWorseThanPrimalDualByMuch) {
  // Algorithm 3 includes the unrestricted τ=max pass, whose image is the
  // plain primal-dual run with pruned wide tuples; sanity-check both run.
  Result<GeneratedVse> generated = TreeInstance(65, 4, 2, 3, 0.25);
  ASSERT_TRUE(generated.ok());
  const VseInstance& instance = *generated->instance;
  LowDegTreeSolver lowdeg;
  PrimalDualTreeSolver primal_dual;
  Result<VseSolution> a = lowdeg.Solve(instance);
  Result<VseSolution> b = primal_dual.Solve(instance);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Feasible());
  EXPECT_TRUE(b->Feasible());
}

TEST(TreeSolversTest, EmptyDeltaV) {
  Result<GeneratedVse> generated = TreeInstance(66, 3, 1, 2, 0.0);
  ASSERT_TRUE(generated.ok());
  if (generated->instance->TotalDeletionTuples() != 0) GTEST_SKIP();
  PrimalDualTreeSolver pd;
  LowDegTreeSolver ld;
  Result<VseSolution> a = pd.Solve(*generated->instance);
  Result<VseSolution> b = ld.Solve(*generated->instance);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->deletion.size(), 0u);
  EXPECT_EQ(b->deletion.size(), 0u);
}

}  // namespace
}  // namespace delprop
