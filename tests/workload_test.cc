#include <gtest/gtest.h>

#include "common/rng.h"
#include "hypergraph/dual_graph.h"
#include "query/query_properties.h"
#include "workload/author_journal.h"
#include "workload/path_schema.h"
#include "workload/random_workload.h"
#include "workload/star_schema.h"

namespace delprop {
namespace {

TEST(AuthorJournalTest, RandomInstancesBuild) {
  Rng rng(101);
  AuthorJournalParams params;
  Result<GeneratedVse> generated = GenerateAuthorJournal(rng, params);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_EQ(generated->instance->view_count(), 2u);
}

TEST(AuthorJournalTest, Q4OnlyIsKeyPreserving) {
  Rng rng(102);
  AuthorJournalParams params;
  params.include_q4 = true;
  Result<GeneratedVse> generated = GenerateAuthorJournal(rng, params);
  ASSERT_TRUE(generated.ok());
  EXPECT_TRUE(IsKeyPreserving(*generated->queries[1],
                              generated->database->schema()));
  EXPECT_FALSE(IsKeyPreserving(*generated->queries[0],
                               generated->database->schema()));
}

TEST(PathSchemaTest, QueriesAreProjectFreeAndKeyPreserving) {
  Rng rng(103);
  PathSchemaParams params;
  params.levels = 4;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  for (const auto& q : generated->queries) {
    EXPECT_TRUE(IsProjectFree(*q)) << q->name();
    EXPECT_TRUE(IsKeyPreserving(*q, generated->database->schema()))
        << q->name();
    EXPECT_TRUE(IsSelfJoinFree(*q)) << q->name();
  }
  EXPECT_TRUE(generated->instance->all_key_preserving());
  EXPECT_TRUE(generated->instance->all_unique_witness());
}

TEST(PathSchemaTest, ViewSizesMatchLevelCounts) {
  Rng rng(104);
  PathSchemaParams params;
  params.levels = 4;
  params.roots = 2;
  params.fanout = 3;
  params.query_intervals = {{0, 3}, {2, 3}};
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  // Each bottom-level tuple determines one join chain: 2 * 3^3 = 54.
  EXPECT_EQ(generated->instance->view(0).size(), 54u);
  EXPECT_EQ(generated->instance->view(1).size(), 54u);
}

TEST(PathSchemaTest, DualGraphIsForestCase) {
  Rng rng(105);
  PathSchemaParams params;
  params.levels = 5;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  std::vector<const ConjunctiveQuery*> qs;
  for (const auto& q : generated->queries) qs.push_back(q.get());
  DualGraphAnalysis analysis =
      AnalyzeDualGraph(generated->database->schema(), qs);
  EXPECT_TRUE(analysis.forest_case)
      << "interval queries over a chain are a hypertree";
}

TEST(PathSchemaTest, RejectsBadParameters) {
  Rng rng(106);
  PathSchemaParams params;
  params.levels = 1;
  EXPECT_FALSE(GeneratePathSchema(rng, params).ok());
  params.levels = 3;
  params.query_intervals = {{2, 1}};
  EXPECT_FALSE(GeneratePathSchema(rng, params).ok());
  params.query_intervals = {{0, 9}};
  EXPECT_FALSE(GeneratePathSchema(rng, params).ok());
}

TEST(StarSchemaTest, BuildsAndIsKeyPreserving) {
  Rng rng(107);
  StarSchemaParams params;
  Result<GeneratedVse> generated = GenerateStarSchema(rng, params);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_TRUE(generated->instance->all_key_preserving());
  EXPECT_TRUE(generated->instance->all_unique_witness());
  for (const auto& q : generated->queries) {
    EXPECT_TRUE(IsProjectFree(*q));
  }
}

TEST(StarSchemaTest, FactViewJoinsAllRows) {
  Rng rng(108);
  StarSchemaParams params;
  params.dimensions = 2;
  params.fact_rows = 15;
  params.query_dimension_sets = {{0, 1}};
  Result<GeneratedVse> generated = GenerateStarSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  // Every fact row joins its dimensions (they exist by construction).
  EXPECT_EQ(generated->instance->view(0).size(), 15u);
}

TEST(RandomWorkloadTest, AlwaysHasDeletions) {
  Rng rng(109);
  for (int trial = 0; trial < 10; ++trial) {
    RandomWorkloadParams params;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    if (generated->instance->TotalViewTuples() > 0) {
      EXPECT_GT(generated->instance->TotalDeletionTuples(), 0u);
    }
  }
}

TEST(RandomWorkloadTest, QueriesAreProjectFree) {
  Rng rng(110);
  RandomWorkloadParams params;
  params.queries = 5;
  Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
  ASSERT_TRUE(generated.ok());
  for (const auto& q : generated->queries) {
    EXPECT_TRUE(IsProjectFree(*q)) << q->name();
  }
  EXPECT_TRUE(generated->instance->all_unique_witness())
      << "project-free queries have unique witnesses";
}

TEST(RandomWorkloadTest, DeterministicForSeed) {
  RandomWorkloadParams params;
  Rng rng1(7), rng2(7);
  Result<GeneratedVse> a = GenerateRandomWorkload(rng1, params);
  Result<GeneratedVse> b = GenerateRandomWorkload(rng2, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->instance->TotalViewTuples(), b->instance->TotalViewTuples());
  EXPECT_EQ(a->instance->TotalDeletionTuples(),
            b->instance->TotalDeletionTuples());
  EXPECT_EQ(a->database->total_tuple_count(),
            b->database->total_tuple_count());
}

}  // namespace
}  // namespace delprop
