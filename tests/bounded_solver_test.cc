#include <gtest/gtest.h>

#include "common/rng.h"
#include "solvers/exact_solver.h"
#include "workload/author_journal.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

TEST(BoundedExactTest, Fig1NeedsTwoDeletions) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  // (John, XML) has two witnesses: one deletion can never cut both.
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());

  BoundedExactSolver one(1);
  EXPECT_EQ(one.Solve(instance).status().code(), StatusCode::kInfeasible);

  BoundedExactSolver two(2);
  Result<VseSolution> solution = two.Solve(instance);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(solution->Feasible());
  EXPECT_LE(solution->deletion.size(), 2u);
  EXPECT_DOUBLE_EQ(solution->Cost(), 4.0) << "cap of 2 still reaches OPT";
}

TEST(BoundedExactTest, LooseCapMatchesUnbounded) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    ExactSolver unbounded;
    BoundedExactSolver loose(instance.database().total_tuple_count());
    Result<VseSolution> a = unbounded.Solve(instance);
    Result<VseSolution> b = loose.Solve(instance);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_DOUBLE_EQ(a->Cost(), b->Cost()) << "trial " << trial;
  }
}

TEST(BoundedExactTest, TighterCapCanCostMore) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 9;
    params.queries = 3;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    ExactSolver unbounded;
    Result<VseSolution> free = unbounded.Solve(instance);
    ASSERT_TRUE(free.ok());
    size_t used = free->deletion.size();
    if (used <= 1) continue;
    // The cap at the unconstrained optimum's size is feasible with equal
    // cost; one less may be infeasible or strictly costlier — never cheaper.
    BoundedExactSolver at(used);
    Result<VseSolution> capped = at.Solve(instance);
    ASSERT_TRUE(capped.ok());
    EXPECT_DOUBLE_EQ(capped->Cost(), free->Cost());
    BoundedExactSolver tighter(used - 1);
    Result<VseSolution> tight = tighter.Solve(instance);
    if (tight.ok()) {
      EXPECT_GE(tight->Cost(), free->Cost() - 1e-9) << "trial " << trial;
      EXPECT_LE(tight->deletion.size(), used - 1);
    } else {
      EXPECT_EQ(tight.status().code(), StatusCode::kInfeasible);
    }
  }
}

TEST(BoundedExactTest, ZeroCapOnlyWorksForEmptyDelta) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  BoundedExactSolver zero(0);
  // Without flags the empty deletion is fine.
  Result<VseSolution> empty = zero.Solve(instance);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->deletion.size(), 0u);
  // With a flag it is infeasible.
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());
  EXPECT_EQ(zero.Solve(instance).status().code(), StatusCode::kInfeasible);
}

}  // namespace
}  // namespace delprop
