#include <gtest/gtest.h>

#include "classify/fd.h"
#include "classify/head_domination.h"
#include "query/parser.h"

namespace delprop {
namespace {

class FdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("T1", 2, {0}).ok());
    ASSERT_TRUE(schema_.AddRelation("T2", 2, {0}).ok());
    ASSERT_TRUE(schema_.AddRelation("E", 2, {0, 1}).ok());
  }

  ConjunctiveQuery Parse(const std::string& text) {
    Result<ConjunctiveQuery> q = ParseQuery(text, schema_, dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  Schema schema_;
  ValueDictionary dict_;
};

TEST_F(FdTest, KeyFdsCoverEveryRelation) {
  std::vector<FunctionalDependency> fds = KeyFds(schema_);
  ASSERT_EQ(fds.size(), 3u);
  EXPECT_EQ(fds[0].lhs, (std::vector<size_t>{0}));
  EXPECT_EQ(fds[0].rhs, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(fds[2].lhs, (std::vector<size_t>{0, 1}));
}

TEST_F(FdTest, ClosureExtendsHeadThroughKeys) {
  // Q(y) :- T1(y, x): y keys T1, so x is determined by the key FD.
  ConjunctiveQuery q = Parse("Q(y) :- T1(y, x)");
  Result<ConjunctiveQuery> closure =
      FdHeadClosure(q, schema_, KeyFds(schema_));
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->head().size(), 2u) << "x joined the head";
}

TEST_F(FdTest, ClosureChainsAcrossAtoms) {
  // y determines x in T1, x keys T2 and determines z: both join the head.
  ConjunctiveQuery q = Parse("Q(y) :- T1(y, x), T2(x, z)");
  Result<ConjunctiveQuery> closure =
      FdHeadClosure(q, schema_, KeyFds(schema_));
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->head().size(), 3u);
}

TEST_F(FdTest, NoFdsNoChange)  {
  ConjunctiveQuery q = Parse("Q(y) :- T1(y, x), T2(x, z)");
  Result<ConjunctiveQuery> closure = FdHeadClosure(q, schema_, {});
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->head().size(), q.head().size());
}

TEST_F(FdTest, FdHeadDominationAppears) {
  // Without FDs: the existential component {x} spans both atoms whose head
  // variables {y1, y2} sit in no single atom — no head domination. With the
  // FD x → y2 on T2 (x at position 0 keys T2), x becomes determined only if
  // y1 determines it first: add FD lhs {0} → rhs {1} on T1.
  ConjunctiveQuery q = Parse("Q(y1, y2) :- T1(y1, x), T2(x, y2)");
  EXPECT_FALSE(HasHeadDomination(q));
  EXPECT_TRUE(HasFdHeadDomination(q, schema_, KeyFds(schema_)))
      << "the closure has no existential variables left";
}

TEST_F(FdTest, FdHeadDominationAbsentWithoutUsefulFds) {
  // Reverse the chain: x is at the non-key position of both atoms, so no
  // key FD fires and head domination stays absent.
  ConjunctiveQuery q = Parse("Q(y1, y2) :- T1(y1, x), T2(y2, x)");
  EXPECT_FALSE(HasHeadDomination(q));
  // Key FDs: y1 → x fires on T1! So x becomes determined after all; use a
  // schema-free FD list to show the negative case.
  EXPECT_FALSE(HasFdHeadDomination(q, schema_, {}));
}

TEST_F(FdTest, ConstantsCountAsDetermined) {
  ConjunctiveQuery q = Parse("Q(y) :- E(y, w), T1('c', x), T2(x, z)");
  // T1's key position holds the constant 'c': the FD fires without any
  // head variable, determining x, then z.
  Result<ConjunctiveQuery> closure =
      FdHeadClosure(q, schema_, KeyFds(schema_));
  ASSERT_TRUE(closure.ok());
  // Head gains x and z but not w (E's key covers both positions, so the FD
  // on E needs BOTH y and w... E key = {0,1} so lhs = {y,w}: w undetermined,
  // does not fire).
  EXPECT_EQ(closure->head().size(), 3u);
}

TEST_F(FdTest, RejectsBadFds) {
  ConjunctiveQuery q = Parse("Q(y) :- T1(y, x)");
  FunctionalDependency bad;
  bad.relation = 99;
  EXPECT_FALSE(FdHeadClosure(q, schema_, {bad}).ok());
  FunctionalDependency out_of_range;
  out_of_range.relation = 0;
  out_of_range.lhs = {5};
  EXPECT_FALSE(FdHeadClosure(q, schema_, {out_of_range}).ok());
}

}  // namespace
}  // namespace delprop
