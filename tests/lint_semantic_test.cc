// Tests for delprop_lint's semantic layer: the SemanticModel (function
// extraction, call graph, hot reachability), the three semantic rules
// (hot-path-allocation, shared-core-mutation, epoch-protocol) with
// positive/negative/suppression cases each, the parallel Check phase's
// determinism, and the JSON report/baseline round-trip. Files are fed
// in-memory through SourceFile; paths are fake but realistic because the
// hot graph and several checks are path-scoped to src/.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/compile_commands.h"
#include "lint/json.h"
#include "lint/json_report.h"
#include "lint/linter.h"
#include "lint/rules.h"
#include "lint/semantic_model.h"

namespace delprop {
namespace lint {
namespace {

// Builds a model over in-memory files given as (path, content) pairs.
SemanticModel BuildModel(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  SemanticModel model;
  std::vector<SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [path, content] : sources) {
    files.emplace_back(path, content);
  }
  for (const SourceFile& file : files) model.AddFile(file);
  model.Finalize();
  return model;
}

// Runs `rule` (binding the semantic model built over all files) and returns
// surviving diagnostics, exactly as Linter::Run would.
std::vector<Diagnostic> RunSemanticRule(
    std::unique_ptr<Rule> rule,
    const std::vector<std::pair<std::string, std::string>>& sources) {
  Linter linter;
  linter.AddRule(std::move(rule));
  std::vector<SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [path, content] : sources) {
    files.emplace_back(path, content);
  }
  return linter.Run(files).diagnostics;
}

const FunctionInfo* FindFn(const SemanticModel& model,
                           const std::string& qualified) {
  for (const FunctionInfo& fn : model.functions()) {
    if (fn.qualified == qualified) return &fn;
  }
  return nullptr;
}

bool Hot(const SemanticModel& model, const std::string& qualified) {
  for (size_t i = 0; i < model.functions().size(); ++i) {
    if (model.functions()[i].qualified == qualified) {
      return model.IsHotReachable(i);
    }
  }
  return false;
}

// === SemanticModel: extraction ===

TEST(SemanticModelTest, ExtractsFreeMemberAndOutOfLineFunctions) {
  SemanticModel model = BuildModel({{"src/a.cc", R"(
    namespace delprop {
    int Free(int x) { return x + 1; }
    class Widget {
     public:
      void Inline() { Free(2); }
      void OutOfLine();
    };
    void Widget::OutOfLine() { Inline(); }
    }  // namespace delprop
  )"}});
  const FunctionInfo* free_fn = FindFn(model, "Free");
  ASSERT_NE(free_fn, nullptr);
  EXPECT_EQ(free_fn->class_name, "");
  const FunctionInfo* inline_fn = FindFn(model, "Widget::Inline");
  ASSERT_NE(inline_fn, nullptr);
  EXPECT_EQ(inline_fn->class_name, "Widget");
  EXPECT_EQ(inline_fn->calls, std::vector<std::string>{"Free"});
  const FunctionInfo* out_fn = FindFn(model, "Widget::OutOfLine");
  ASSERT_NE(out_fn, nullptr);
  EXPECT_EQ(out_fn->calls, std::vector<std::string>{"Inline"});
}

TEST(SemanticModelTest, HandlesCtorInitializersAndQualifiers) {
  SemanticModel model = BuildModel({{"src/a.cc", R"(
    class Pool {
     public:
      explicit Pool(size_t n) : size_(n), data_(n, 0) { Fill(); }
      size_t size() const noexcept { return size_; }
     private:
      size_t size_;
      std::vector<int> data_;
    };
  )"}});
  const FunctionInfo* ctor = FindFn(model, "Pool::Pool");
  ASSERT_NE(ctor, nullptr);
  EXPECT_EQ(ctor->calls, std::vector<std::string>{"Fill"});
  EXPECT_NE(FindFn(model, "Pool::size"), nullptr);
}

TEST(SemanticModelTest, EnclosingFunctionMapsTokenToBody) {
  std::vector<SourceFile> files;
  files.emplace_back("src/a.cc", "void A() { x(); }\nvoid B() { y(); }\n");
  SemanticModel model;
  model.AddFile(files[0]);
  model.Finalize();
  // Token index of "y" — tokens: void A ( ) { x ( ) ; } void B ( ) { y ...
  size_t y_index = 0;
  for (size_t i = 0; i < files[0].tokens().size(); ++i) {
    if (files[0].tokens()[i].Is("y")) y_index = i;
  }
  const FunctionInfo* fn = model.EnclosingFunction("src/a.cc", y_index);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->name, "B");
}

TEST(SemanticModelTest, CollectsReservedNamesTreeWide) {
  SemanticModel model = BuildModel(
      {{"src/a.cc", "void F() { buf_.reserve(10); out->reserve(2); }"}});
  EXPECT_TRUE(model.IsReservedName("buf_"));
  EXPECT_TRUE(model.IsReservedName("out"));
  EXPECT_FALSE(model.IsReservedName("other"));
}

// === SemanticModel: hot reachability ===

constexpr const char* kSolverFile = R"(
  class GreedySolver : public VseSolver {
   public:
    Result<VseSolution> SolveWith(const VseInstance& instance,
                                  SolverScratch* scratch) override {
      return Helper(instance);
    }
  };
  Result<VseSolution> Helper(const VseInstance& instance) {
    Leaf();
    return {};
  }
  void Leaf() {}
  void Unrelated() { Leaf(); }
)";

TEST(SemanticModelTest, SolveWithOverridesSeedHotGraph) {
  SemanticModel model = BuildModel({{"src/solvers/greedy.cc", kSolverFile}});
  EXPECT_TRUE(Hot(model, "GreedySolver::SolveWith"));
  EXPECT_TRUE(Hot(model, "Helper"));
  EXPECT_TRUE(Hot(model, "Leaf"));
  EXPECT_FALSE(Hot(model, "Unrelated"));
}

TEST(SemanticModelTest, HotChainNamesTheDiscoveryPath) {
  SemanticModel model = BuildModel({{"src/solvers/greedy.cc", kSolverFile}});
  for (size_t i = 0; i < model.functions().size(); ++i) {
    if (model.functions()[i].qualified == "Leaf") {
      EXPECT_EQ(model.HotChain(i),
                "GreedySolver::SolveWith → Helper → Leaf");
    }
  }
}

TEST(SemanticModelTest, HotAnnotationAddsRootAndHotStopPrunes) {
  SemanticModel model = BuildModel({{"src/dp/a.cc", R"(
    // delprop-hot
    void PerPickKernel() { Shared(); }
    void Shared() { Sink(); }
    // delprop-hot-stop
    void Sink() { Below(); }
    void Below() {}
  )"}});
  EXPECT_TRUE(Hot(model, "PerPickKernel"));
  EXPECT_TRUE(Hot(model, "Shared"));
  // The sink and everything only reachable through it stay cold.
  EXPECT_FALSE(Hot(model, "Sink"));
  EXPECT_FALSE(Hot(model, "Below"));
}

TEST(SemanticModelTest, TestFilesNeverJoinTheHotGraph) {
  // Same content as a src/ solver, but under tests/: out of hot scope.
  SemanticModel model = BuildModel({{"tests/fake_test.cc", kSolverFile}});
  EXPECT_FALSE(Hot(model, "GreedySolver::SolveWith"));
  EXPECT_FALSE(Hot(model, "Helper"));
}

// === hot-path-allocation ===

TEST(HotPathAllocationTest, FlagsUnReservedPushBackInHotFunction) {
  // The seeded mutation from the acceptance checklist: an un-annotated
  // push_back in a hot-reachable function must fire.
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<HotPathAllocationRule>(),
      {{"src/solvers/s.cc", R"(
        class S : public VseSolver {
         public:
          Result<VseSolution> SolveWith(const VseInstance& i,
                                        SolverScratch* s) override {
            picks_.push_back(1);
            return {};
          }
        };
      )"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "hot-path-allocation");
  EXPECT_NE(diags[0].message.find("picks_"), std::string::npos);
  EXPECT_NE(diags[0].message.find("reached via"), std::string::npos);
}

TEST(HotPathAllocationTest, FlagsNewMakeSharedStringAndUnorderedMap) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<HotPathAllocationRule>(),
      {{"src/solvers/s.cc", R"(
        class S : public VseSolver {
         public:
          Result<VseSolution> SolveWith(const VseInstance& i,
                                        SolverScratch* s) override {
            auto* p = new int(3);
            auto q = std::make_shared<int>(4);
            std::string label = "x";
            std::unordered_map<int, int> m;
            return {};
          }
        };
      )"}});
  EXPECT_EQ(diags.size(), 4u);
}

TEST(HotPathAllocationTest, ReservedContainersAndColdFunctionsPass) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<HotPathAllocationRule>(),
      {{"src/solvers/s.cc", R"(
        class S : public VseSolver {
         public:
          Result<VseSolution> SolveWith(const VseInstance& i,
                                        SolverScratch* s) override {
            picks_.reserve(64);
            picks_.push_back(1);
            const std::string& name = i.name();
            return {};
          }
        };
        void ColdSetup() { cold_.push_back(2); }
      )"}});
  EXPECT_TRUE(diags.empty());
}

TEST(HotPathAllocationTest, SuppressionCommentSilencesFinding) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<HotPathAllocationRule>(),
      {{"src/solvers/s.cc", R"(
        class S : public VseSolver {
         public:
          Result<VseSolution> SolveWith(const VseInstance& i,
                                        SolverScratch* s) override {
            // delprop-lint: hot-path-allocation-ok grows once then stable
            picks_.push_back(1);
            return {};
          }
        };
      )"}});
  EXPECT_TRUE(diags.empty());
}

// === scalar-kill-loop ===

TEST(ScalarKillLoopTest, FlagsCounterWalkInHotLoop) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<ScalarKillLoopRule>(),
      {{"src/solvers/t.cc", R"(
        double DamageTracker::Walk(uint32_t base) const {
          double sum = 0.0;
          for (uint32_t slot = begin; slot < end; ++slot) {
            if (witness_hits_[slot] == 0) sum += 1.0;
          }
          return sum;
        }
      )"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "scalar-kill-loop");
  EXPECT_NE(diags[0].message.find("reached via"), std::string::npos);
}

TEST(ScalarKillLoopTest, FlagsAccessorCallInSingleStatementLoop) {
  // `while (...) stmt;` — no braces; the statement is still inside the loop.
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<ScalarKillLoopRule>(),
      {{"src/solvers/t.cc", R"(
        void DamageTracker::Scan(uint32_t w) const {
          while (w < end) w += tracker.witness_hits(w);
        }
      )"}});
  ASSERT_EQ(diags.size(), 1u);
}

TEST(ScalarKillLoopTest, NonLoopUseAndColdFunctionsPass) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<ScalarKillLoopRule>(),
      {{"src/solvers/t.cc", R"(
        uint32_t DamageTracker::One(uint32_t w) const {
          return witness_hits_[w];
        }
        void ColdDump(const DamageTracker& t) {
          for (uint32_t w = 0; w < n; ++w) Print(t.witness_hits(w));
        }
      )"}});
  EXPECT_TRUE(diags.empty());
}

TEST(ScalarKillLoopTest, SuppressionCommentSilencesFinding) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<ScalarKillLoopRule>(),
      {{"src/solvers/t.cc", R"(
        double DamageTracker::WalkScalar(uint32_t base) const {
          double sum = 0.0;
          for (uint32_t slot = begin; slot < end; ++slot) {
            // delprop-lint: scalar-kill-loop-ok scalar fallback path
            if (witness_hits_[slot] == 0) sum += 1.0;
          }
          return sum;
        }
      )"}});
  EXPECT_TRUE(diags.empty());
}

// === shared-core-mutation ===

TEST(SharedCoreMutationTest, FlagsFieldWriteOutsideMutationPoints) {
  // Seeded mutation: a PlanCore field write outside the allowlist.
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<SharedCoreMutationRule>(),
      {{"src/dp/a.cc", R"(
        void Tweak(PlanCore* core) { core->weight[0] = 2.0; }
      )"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "shared-core-mutation");
  EXPECT_NE(diags[0].message.find("core"), std::string::npos);
}

TEST(SharedCoreMutationTest, FlagsMutatingCallAndConstCast) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<SharedCoreMutationRule>(),
      {{"src/dp/a.cc", R"(
        void Grow(PlanCore& core) { core.weight.push_back(1.0); }
        void Strip(const PlanCore& core) {
          const_cast<PlanCore&>(core).weight.clear();
        }
      )"}});
  EXPECT_EQ(diags.size(), 2u);
}

TEST(SharedCoreMutationTest, MutationPointsAndConstUsesPass) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<SharedCoreMutationRule>(),
      {{"src/plan/a.cc", R"(
        void SetWeight(const PlanCore& core, double w) {
          const_cast<PlanCore&>(core).weight[0] = w;
        }
        std::shared_ptr<PlanCore> BuildCore() {
          auto core = std::make_shared<PlanCore>();
          core->weight.push_back(1.0);
          return core;
        }
        double Read(const PlanCore& core) { return core.weight[0]; }
      )"}});
  EXPECT_TRUE(diags.empty());
}

TEST(SharedCoreMutationTest, FlagsSubmitByReferenceOutsideRuntime) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<SharedCoreMutationRule>(),
      {{"src/engine/a.cc",
        "void F(ThreadPool& pool, int& x) {\n"
        "  pool.Submit([&x] { x = 1; });\n"
        "}\n"},
       {"src/runtime/b.cc",
        "void G(ThreadPool& pool, int& x) {\n"
        "  pool.Submit([&x] { x = 1; });\n"
        "}\n"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/engine/a.cc");
  EXPECT_NE(diags[0].message.find("Submit"), std::string::npos);
}

TEST(SharedCoreMutationTest, SuppressionCommentSilencesFinding) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<SharedCoreMutationRule>(),
      {{"src/engine/a.cc",
        "void F(ThreadPool& pool, int& x) {\n"
        "  // delprop-lint: shared-core-mutation-ok Wait() in same frame\n"
        "  pool.Submit([&x] { x = 1; });\n"
        "  pool.Wait();\n"
        "}\n"}});
  EXPECT_TRUE(diags.empty());
}

// === epoch-protocol ===

TEST(EpochProtocolTest, FlagsSwapWithoutReleaseAfterAcquire) {
  // Seeded mutation: tracker re-acquired, then the ΔV swap runs without an
  // intervening release.
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<EpochProtocolRule>(),
      {{"src/engine/e.cc", R"(
        void Handoff(Scratch& scratch, Replica* replica, Delta delta) {
          scratch.AcquireTracker(*replica);
          replica->ResetDeletions();
        }
      )"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "epoch-protocol");
  EXPECT_NE(diags[0].message.find("ΔV swap"), std::string::npos);
}

TEST(EpochProtocolTest, ReleaseBeforeSwapPasses) {
  // The real engine pattern: ReleasePlans() then the swap.
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<EpochProtocolRule>(),
      {{"src/engine/e.cc", R"(
        void Handoff(Scratch& scratch, Replica* replica, Delta delta) {
          scratch.ReleasePlans();
          replica->ResetDeletions();
          replica->ApplyDelta(delta);
        }
      )"}});
  EXPECT_TRUE(diags.empty());
}

TEST(EpochProtocolTest, SwapCallsOutsideServingLayersAreIgnored) {
  // The mutator definitions and tests live outside src/engine,src/solvers.
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<EpochProtocolRule>(),
      {{"tests/engine_test.cc", R"(
        void Drive(Replica* replica) { replica->ResetDeletions(); }
      )"}});
  EXPECT_TRUE(diags.empty());
}

TEST(EpochProtocolTest, FlagsMutatorWithoutInvalidation) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<EpochProtocolRule>(),
      {{"src/dp/vse.cc", R"(
        void VseInstance::MarkForDeletion(ViewTupleId id) {
          deletions_.insert(id);
        }
      )"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("MarkForDeletion"), std::string::npos);
}

TEST(EpochProtocolTest, MutatorInvalidatingOrDelegatingPasses) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<EpochProtocolRule>(),
      {{"src/dp/vse.cc", R"(
        void VseInstance::MarkForDeletion(ViewTupleId id) {
          deletions_.insert(id);
          InvalidateOverlayCaches();
        }
        void VseInstance::MarkForDeletionByValues(const Tuple& t) {
          MarkForDeletion(Find(t));
        }
        void VseInstance::SetWeight(ViewTupleId id, double w) {
          caches_->plan_core->weight[0] = w;
        }
      )"}});
  EXPECT_TRUE(diags.empty());
}

TEST(EpochProtocolTest, FlagsEpochAdvanceWithoutCacheClear) {
  // Seeded mutation: ++core_epoch_ with the memo-cache clear deleted.
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<EpochProtocolRule>(),
      {{"src/engine/e.cc", R"(
        void BatchSolveEngine::Advance() {
          ++core_epoch_;
        }
      )"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("core_epoch_"), std::string::npos);
}

TEST(EpochProtocolTest, EpochAdvanceWithCacheClearPasses) {
  std::vector<Diagnostic> diags = RunSemanticRule(
      std::make_unique<EpochProtocolRule>(),
      {{"src/engine/e.cc", R"(
        void BatchSolveEngine::Advance() {
          ++core_epoch_;
          cache_.clear();
        }
      )"}});
  EXPECT_TRUE(diags.empty());
}

// === Parallel Check determinism ===

TEST(LinterParallelTest, ThreadCountsProduceIdenticalReports) {
  // Many small files with violations in several rules; the merged report
  // must be identical at every thread count.
  std::vector<SourceFile> files;
  for (int i = 0; i < 24; ++i) {
    std::string path =
        "src/solvers/f" + std::to_string(i) + ".cc";
    files.emplace_back(path,
                       "void F() { std::thread t(G); }\n"
                       "void H() { srand(" + std::to_string(i) + "); }\n");
  }
  Linter serial;
  serial.AddDefaultRules();
  LintReport base = serial.Run(files);
  EXPECT_FALSE(base.diagnostics.empty());
  for (int threads : {2, 4, 13}) {
    Linter parallel;
    parallel.AddDefaultRules();
    parallel.set_threads(threads);
    LintReport got = parallel.Run(files);
    EXPECT_EQ(got.diagnostics, base.diagnostics) << threads << " threads";
    EXPECT_EQ(got.suppressed, base.suppressed);
  }
}

// === JSON report and baseline ===

TEST(JsonTest, ParsesAndDumpsRoundTrip) {
  Result<JsonValue> doc = ParseJson(
      "{\"a\": [1, 2.5, true, null], \"b\": {\"c\": \"x\\ny\"}}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->items().size(), 4u);
  EXPECT_EQ(a->items()[0].AsNumber(), 1.0);
  Result<JsonValue> again = ParseJson(doc->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Dump(), doc->Dump());
  EXPECT_FALSE(ParseJson("{oops}").ok());
  EXPECT_FALSE(ParseJson("[1, 2] tail").ok());
}

TEST(JsonReportTest, BaselineRoundTripAbsorbsKnownFindings) {
  LintReport report;
  report.files_checked = 3;
  report.diagnostics.push_back(
      Diagnostic{"src/a.cc", 10, "hot-path-allocation", "operator new"});
  report.diagnostics.push_back(
      Diagnostic{"src/b.cc", 20, "epoch-protocol", "swap without release"});
  std::string json = ReportToJson(report, "abc123");

  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() / "delprop_lint_baseline.json";
  {
    std::ofstream out(path);
    out << json;
  }
  Result<std::vector<BaselineEntry>> baseline = LoadBaseline(path.string());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->size(), 2u);

  // Same findings at drifted line numbers: all absorbed, none fresh.
  std::vector<Diagnostic> drifted = report.diagnostics;
  drifted[0].line = 14;
  BaselineDelta delta = ApplyBaseline(drifted, *baseline);
  EXPECT_TRUE(delta.fresh.empty());
  EXPECT_EQ(delta.baselined, 2u);
  EXPECT_EQ(delta.stale, 0u);

  // A new finding stays fresh; a fixed finding leaves a stale entry.
  std::vector<Diagnostic> changed = {
      report.diagnostics[0],
      Diagnostic{"src/c.cc", 5, "shared-core-mutation", "field write"}};
  delta = ApplyBaseline(changed, *baseline);
  ASSERT_EQ(delta.fresh.size(), 1u);
  EXPECT_EQ(delta.fresh[0].file, "src/c.cc");
  EXPECT_EQ(delta.baselined, 1u);
  EXPECT_EQ(delta.stale, 1u);

  // A duplicated violation exceeds the baseline's multiset budget.
  std::vector<Diagnostic> duplicated = {report.diagnostics[0],
                                        report.diagnostics[0]};
  delta = ApplyBaseline(duplicated, *baseline);
  EXPECT_EQ(delta.fresh.size(), 1u);

  fs::remove(path);
  EXPECT_FALSE(LoadBaseline("/no/such/baseline.json").ok());
}

TEST(CompileCommandsTest, ReadsFileEntriesRelativeToBase) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "delprop_lint_cc_test";
  fs::create_directories(dir / "src");
  {
    std::ofstream out(dir / "src" / "a.cc");
    out << "int x;\n";
  }
  fs::path db = dir / "compile_commands.json";
  {
    std::ofstream out(db);
    out << "[{\"directory\": \"" << dir.generic_string()
        << "\", \"command\": \"c++ -c src/a.cc\", \"file\": \""
        << (dir / "src" / "a.cc").generic_string()
        << "\"},\n"
           " {\"directory\": \"" << dir.generic_string()
        << "\", \"command\": \"c++ -c gone.cc\", \"file\": \""
        << (dir / "gone.cc").generic_string() << "\"}]\n";
  }
  Result<std::vector<std::string>> files =
      ReadCompileCommands(db.string(), dir.string());
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  // The stale entry (gone.cc does not exist) is dropped.
  EXPECT_EQ(*files, std::vector<std::string>{"src/a.cc"});
  fs::remove_all(dir);

  EXPECT_FALSE(ReadCompileCommands("/no/such/db.json", ".").ok());
}

}  // namespace
}  // namespace lint
}  // namespace delprop
