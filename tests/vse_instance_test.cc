#include <gtest/gtest.h>

#include <algorithm>

#include "dp/side_effect.h"
#include "dp/vse_instance.h"
#include "workload/author_journal.h"

namespace delprop {
namespace {

// All tests run on the paper's Fig. 1 example (views Q3 and Q4).
class Fig1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<GeneratedVse> generated = BuildFig1Example();
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    generated_ = std::move(*generated);
  }

  VseInstance& instance() { return *generated_.instance; }
  Database& db() { return *generated_.database; }

  TupleRef Row(const char* rel, uint32_t row) {
    RelationId id = *db().schema().FindRelation(rel);
    return TupleRef{id, row};
  }

  GeneratedVse generated_;
};

TEST_F(Fig1Test, ViewSizesMatchPaper) {
  EXPECT_EQ(instance().view_count(), 2u);
  EXPECT_EQ(instance().view(0).size(), 6u);  // Q3 (Fig. 1c).
  EXPECT_EQ(instance().view(1).size(), 7u);  // Q4 (Fig. 1d).
  EXPECT_EQ(instance().TotalViewTuples(), 13u);
}

TEST_F(Fig1Test, PropertiesDetected) {
  EXPECT_FALSE(instance().all_key_preserving()) << "Q3 projects keys away";
  EXPECT_FALSE(instance().all_unique_witness()) << "(John, XML) has 2";
  EXPECT_EQ(instance().max_arity(), 3u);
}

TEST_F(Fig1Test, MarkForDeletionByValues) {
  EXPECT_TRUE(
      instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  EXPECT_EQ(instance().TotalDeletionTuples(), 1u);
  // Idempotent.
  EXPECT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  EXPECT_EQ(instance().TotalDeletionTuples(), 1u);
  // Unknown tuples and views rejected.
  EXPECT_EQ(instance().MarkForDeletionByValues(0, {"John", "Nope"})
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(instance().MarkForDeletionByValues(9, {"John", "XML"}).code(),
            StatusCode::kOutOfRange);
}

TEST_F(Fig1Test, PaperScenarioOne) {
  // ΔV = (John, XML) on Q3. Deleting (John, TKDE) and (John, TODS) from T1
  // eliminates it with exactly one side-effect tuple: (John, CUBE).
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  DeletionSet deletion;
  deletion.Insert(Row("T1", 1));  // (John, TKDE)
  deletion.Insert(Row("T1", 3));  // (John, TODS)
  SideEffectReport report = EvaluateDeletion(instance(), deletion);
  EXPECT_TRUE(report.eliminates_all_deletions);
  // Q3 loses (John, CUBE); Q4 loses (John,TKDE,CUBE), (John,TKDE,XML),
  // (John,TODS,XML) — the Q4 losses count because Q4's tuples were not
  // marked for deletion.
  EXPECT_EQ(report.side_effect_count, 4u);
  std::vector<ViewTupleId> q3_losses;
  for (const ViewTupleId& id : report.killed_preserved) {
    if (id.view == 0) q3_losses.push_back(id);
  }
  ASSERT_EQ(q3_losses.size(), 1u);
  EXPECT_EQ(instance().RenderViewTuple(q3_losses[0]), "Q3(John, CUBE)");
}

TEST_F(Fig1Test, PaperScenarioOneAlternative) {
  // The other optimum: (John, TKDE) from T1 and (TODS, XML, 30) from T2.
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  DeletionSet deletion;
  deletion.Insert(Row("T1", 1));
  deletion.Insert(Row("T2", 2));
  SideEffectReport report = EvaluateDeletion(instance(), deletion);
  EXPECT_TRUE(report.eliminates_all_deletions);
  size_t q3_losses = 0;
  for (const ViewTupleId& id : report.killed_preserved) {
    if (id.view == 0) ++q3_losses;
  }
  EXPECT_EQ(q3_losses, 1u) << "(John, CUBE) again";
}

TEST_F(Fig1Test, PaperScenarioTwoKeyPreservingChoice) {
  // ΔV = (John, TKDE, XML) on Q4: deleting either witness tuple eliminates
  // it (the key-preserving property).
  ASSERT_TRUE(
      instance().MarkForDeletionByValues(1, {"John", "TKDE", "XML"}).ok());
  {
    DeletionSet deletion;
    deletion.Insert(Row("T1", 1));  // (John, TKDE)
    SideEffectReport report = EvaluateDeletion(instance(), deletion);
    EXPECT_TRUE(report.eliminates_all_deletions);
  }
  {
    DeletionSet deletion;
    deletion.Insert(Row("T2", 0));  // (TKDE, XML, 30)
    SideEffectReport report = EvaluateDeletion(instance(), deletion);
    EXPECT_TRUE(report.eliminates_all_deletions);
  }
}

TEST_F(Fig1Test, EmptyDeletionHasNoSideEffect) {
  SideEffectReport report = EvaluateDeletion(instance(), DeletionSet());
  EXPECT_TRUE(report.eliminates_all_deletions) << "ΔV empty";
  EXPECT_EQ(report.side_effect_count, 0u);
  EXPECT_DOUBLE_EQ(report.balanced_cost, 0.0);
}

TEST_F(Fig1Test, SurvivingDeletionsReported) {
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  DeletionSet deletion;
  deletion.Insert(Row("T1", 1));  // Only (John, TKDE): TODS path survives.
  SideEffectReport report = EvaluateDeletion(instance(), deletion);
  EXPECT_FALSE(report.eliminates_all_deletions);
  ASSERT_EQ(report.surviving_deletions.size(), 1u);
  EXPECT_EQ(instance().RenderViewTuple(report.surviving_deletions[0]),
            "Q3(John, XML)");
  EXPECT_GT(report.balanced_cost, 0.0);
}

TEST_F(Fig1Test, CandidateTuplesAreDeltaWitnessMembers) {
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  std::vector<TupleRef> candidates = instance().CandidateTuples();
  // (John,TKDE), (John,TODS), (TKDE,XML,30), (TODS,XML,30).
  EXPECT_EQ(candidates.size(), 4u);
  EXPECT_TRUE(std::count(candidates.begin(), candidates.end(), Row("T1", 1)));
  EXPECT_TRUE(std::count(candidates.begin(), candidates.end(), Row("T1", 3)));
  EXPECT_TRUE(std::count(candidates.begin(), candidates.end(), Row("T2", 0)));
  EXPECT_TRUE(std::count(candidates.begin(), candidates.end(), Row("T2", 2)));
}

TEST_F(Fig1Test, KilledByMapsBaseTuplesToViews) {
  // (TKDE, XML, 30) participates in Q3(Joe,XML), Q3(John,XML), Q3(Tom,XML)
  // and the three Q4 XML-at-TKDE tuples.
  const std::vector<ViewTupleId>& killed = instance().KilledBy(Row("T2", 0));
  EXPECT_EQ(killed.size(), 6u);
  EXPECT_TRUE(instance().KilledBy(TupleRef{0, 99}).empty());
}

TEST_F(Fig1Test, WeightsDefaultAndSet) {
  ViewTupleId id{0, 0};
  EXPECT_DOUBLE_EQ(instance().weight(id), 1.0);
  ASSERT_TRUE(instance().SetWeight(id, 2.5).ok());
  EXPECT_DOUBLE_EQ(instance().weight(id), 2.5);
  EXPECT_FALSE(instance().SetWeight(id, -1.0).ok());
  EXPECT_FALSE(instance().SetWeight(ViewTupleId{9, 0}, 1.0).ok());
}

TEST_F(Fig1Test, WeightedSideEffect) {
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  // Make Q3(John, CUBE) expensive.
  std::optional<size_t> cube = instance().view(0).Find(
      {*db().dict().Find("John"), *db().dict().Find("CUBE")});
  ASSERT_TRUE(cube.has_value());
  ASSERT_TRUE(instance().SetWeight(ViewTupleId{0, *cube}, 10.0).ok());
  DeletionSet deletion;
  deletion.Insert(Row("T1", 1));
  deletion.Insert(Row("T1", 3));
  SideEffectReport report = EvaluateDeletion(instance(), deletion);
  EXPECT_EQ(report.side_effect_count, 4u);
  EXPECT_DOUBLE_EQ(report.side_effect_weight, 13.0);  // 10 + 3 Q4 tuples.
}

TEST_F(Fig1Test, PreservedTuplesPartition) {
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  std::vector<ViewTupleId> preserved = instance().PreservedTuples();
  EXPECT_EQ(preserved.size(), instance().TotalViewTuples() - 1);
  for (const ViewTupleId& id : preserved) {
    EXPECT_FALSE(instance().IsMarkedForDeletion(id));
  }
}

}  // namespace
}  // namespace delprop
