#include <gtest/gtest.h>

#include <algorithm>

#include "dp/side_effect.h"
#include "dp/vse_instance.h"
#include "query/evaluator.h"
#include "workload/author_journal.h"

namespace delprop {
namespace {

// All tests run on the paper's Fig. 1 example (views Q3 and Q4).
class Fig1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<GeneratedVse> generated = BuildFig1Example();
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    generated_ = std::move(*generated);
  }

  VseInstance& instance() { return *generated_.instance; }
  Database& db() { return *generated_.database; }

  TupleRef Row(const char* rel, uint32_t row) {
    RelationId id = *db().schema().FindRelation(rel);
    return TupleRef{id, row};
  }

  GeneratedVse generated_;
};

TEST_F(Fig1Test, ViewSizesMatchPaper) {
  EXPECT_EQ(instance().view_count(), 2u);
  EXPECT_EQ(instance().view(0).size(), 6u);  // Q3 (Fig. 1c).
  EXPECT_EQ(instance().view(1).size(), 7u);  // Q4 (Fig. 1d).
  EXPECT_EQ(instance().TotalViewTuples(), 13u);
}

TEST_F(Fig1Test, PropertiesDetected) {
  EXPECT_FALSE(instance().all_key_preserving()) << "Q3 projects keys away";
  EXPECT_FALSE(instance().all_unique_witness()) << "(John, XML) has 2";
  EXPECT_EQ(instance().max_arity(), 3u);
}

TEST_F(Fig1Test, MarkForDeletionByValues) {
  EXPECT_TRUE(
      instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  EXPECT_EQ(instance().TotalDeletionTuples(), 1u);
  // Idempotent.
  EXPECT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  EXPECT_EQ(instance().TotalDeletionTuples(), 1u);
  // Unknown tuples and views rejected.
  EXPECT_EQ(instance().MarkForDeletionByValues(0, {"John", "Nope"})
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(instance().MarkForDeletionByValues(9, {"John", "XML"}).code(),
            StatusCode::kOutOfRange);
}

TEST_F(Fig1Test, PaperScenarioOne) {
  // ΔV = (John, XML) on Q3. Deleting (John, TKDE) and (John, TODS) from T1
  // eliminates it with exactly one side-effect tuple: (John, CUBE).
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  DeletionSet deletion;
  deletion.Insert(Row("T1", 1));  // (John, TKDE)
  deletion.Insert(Row("T1", 3));  // (John, TODS)
  SideEffectReport report = EvaluateDeletion(instance(), deletion);
  EXPECT_TRUE(report.eliminates_all_deletions);
  // Q3 loses (John, CUBE); Q4 loses (John,TKDE,CUBE), (John,TKDE,XML),
  // (John,TODS,XML) — the Q4 losses count because Q4's tuples were not
  // marked for deletion.
  EXPECT_EQ(report.side_effect_count, 4u);
  std::vector<ViewTupleId> q3_losses;
  for (const ViewTupleId& id : report.killed_preserved) {
    if (id.view == 0) q3_losses.push_back(id);
  }
  ASSERT_EQ(q3_losses.size(), 1u);
  EXPECT_EQ(instance().RenderViewTuple(q3_losses[0]), "Q3(John, CUBE)");
}

TEST_F(Fig1Test, PaperScenarioOneAlternative) {
  // The other optimum: (John, TKDE) from T1 and (TODS, XML, 30) from T2.
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  DeletionSet deletion;
  deletion.Insert(Row("T1", 1));
  deletion.Insert(Row("T2", 2));
  SideEffectReport report = EvaluateDeletion(instance(), deletion);
  EXPECT_TRUE(report.eliminates_all_deletions);
  size_t q3_losses = 0;
  for (const ViewTupleId& id : report.killed_preserved) {
    if (id.view == 0) ++q3_losses;
  }
  EXPECT_EQ(q3_losses, 1u) << "(John, CUBE) again";
}

TEST_F(Fig1Test, PaperScenarioTwoKeyPreservingChoice) {
  // ΔV = (John, TKDE, XML) on Q4: deleting either witness tuple eliminates
  // it (the key-preserving property).
  ASSERT_TRUE(
      instance().MarkForDeletionByValues(1, {"John", "TKDE", "XML"}).ok());
  {
    DeletionSet deletion;
    deletion.Insert(Row("T1", 1));  // (John, TKDE)
    SideEffectReport report = EvaluateDeletion(instance(), deletion);
    EXPECT_TRUE(report.eliminates_all_deletions);
  }
  {
    DeletionSet deletion;
    deletion.Insert(Row("T2", 0));  // (TKDE, XML, 30)
    SideEffectReport report = EvaluateDeletion(instance(), deletion);
    EXPECT_TRUE(report.eliminates_all_deletions);
  }
}

TEST_F(Fig1Test, EmptyDeletionHasNoSideEffect) {
  SideEffectReport report = EvaluateDeletion(instance(), DeletionSet());
  EXPECT_TRUE(report.eliminates_all_deletions) << "ΔV empty";
  EXPECT_EQ(report.side_effect_count, 0u);
  EXPECT_DOUBLE_EQ(report.balanced_cost, 0.0);
}

TEST_F(Fig1Test, SurvivingDeletionsReported) {
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  DeletionSet deletion;
  deletion.Insert(Row("T1", 1));  // Only (John, TKDE): TODS path survives.
  SideEffectReport report = EvaluateDeletion(instance(), deletion);
  EXPECT_FALSE(report.eliminates_all_deletions);
  ASSERT_EQ(report.surviving_deletions.size(), 1u);
  EXPECT_EQ(instance().RenderViewTuple(report.surviving_deletions[0]),
            "Q3(John, XML)");
  EXPECT_GT(report.balanced_cost, 0.0);
}

TEST_F(Fig1Test, CandidateTuplesAreDeltaWitnessMembers) {
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  std::vector<TupleRef> candidates = instance().CandidateTuples();
  // (John,TKDE), (John,TODS), (TKDE,XML,30), (TODS,XML,30).
  EXPECT_EQ(candidates.size(), 4u);
  EXPECT_TRUE(std::count(candidates.begin(), candidates.end(), Row("T1", 1)));
  EXPECT_TRUE(std::count(candidates.begin(), candidates.end(), Row("T1", 3)));
  EXPECT_TRUE(std::count(candidates.begin(), candidates.end(), Row("T2", 0)));
  EXPECT_TRUE(std::count(candidates.begin(), candidates.end(), Row("T2", 2)));
}

TEST_F(Fig1Test, KilledByMapsBaseTuplesToViews) {
  // (TKDE, XML, 30) participates in Q3(Joe,XML), Q3(John,XML), Q3(Tom,XML)
  // and the three Q4 XML-at-TKDE tuples.
  const std::vector<ViewTupleId>& killed = instance().KilledBy(Row("T2", 0));
  EXPECT_EQ(killed.size(), 6u);
  EXPECT_TRUE(instance().KilledBy(TupleRef{0, 99}).empty());
}

TEST_F(Fig1Test, WeightsDefaultAndSet) {
  ViewTupleId id{0, 0};
  EXPECT_DOUBLE_EQ(instance().weight(id), 1.0);
  ASSERT_TRUE(instance().SetWeight(id, 2.5).ok());
  EXPECT_DOUBLE_EQ(instance().weight(id), 2.5);
  EXPECT_FALSE(instance().SetWeight(id, -1.0).ok());
  EXPECT_FALSE(instance().SetWeight(ViewTupleId{9, 0}, 1.0).ok());
}

TEST_F(Fig1Test, WeightedSideEffect) {
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  // Make Q3(John, CUBE) expensive.
  std::optional<size_t> cube = instance().view(0).Find(
      {*db().dict().Find("John"), *db().dict().Find("CUBE")});
  ASSERT_TRUE(cube.has_value());
  ASSERT_TRUE(instance().SetWeight(ViewTupleId{0, *cube}, 10.0).ok());
  DeletionSet deletion;
  deletion.Insert(Row("T1", 1));
  deletion.Insert(Row("T1", 3));
  SideEffectReport report = EvaluateDeletion(instance(), deletion);
  EXPECT_EQ(report.side_effect_count, 4u);
  EXPECT_DOUBLE_EQ(report.side_effect_weight, 13.0);  // 10 + 3 Q4 tuples.
}

TEST_F(Fig1Test, PreservedTuplesPartition) {
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  std::vector<ViewTupleId> preserved = instance().PreservedTuples();
  EXPECT_EQ(preserved.size(), instance().TotalViewTuples() - 1);
  for (const ViewTupleId& id : preserved) {
    EXPECT_FALSE(instance().IsMarkedForDeletion(id));
  }
}

// PreservedTuples() is cached; interleaving marks with queries must keep
// every answer consistent with a fresh recomputation (the cache is
// invalidated on each mark, not merely on the first one).
TEST_F(Fig1Test, PreservedTuplesCacheInvalidatedByInterleavedMarks) {
  auto recompute = [&] {
    std::vector<ViewTupleId> fresh;
    for (size_t v = 0; v < instance().view_count(); ++v) {
      for (size_t t = 0; t < instance().view(v).size(); ++t) {
        ViewTupleId id{v, t};
        if (!instance().IsMarkedForDeletion(id)) fresh.push_back(id);
      }
    }
    return fresh;
  };

  EXPECT_EQ(instance().PreservedTuples(), recompute());
  // Repeated queries hit the cache; the answer must not change.
  EXPECT_EQ(instance().PreservedTuples(), recompute());

  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  EXPECT_EQ(instance().PreservedTuples(), recompute());
  EXPECT_EQ(instance().PreservedTuples().size(),
            instance().TotalViewTuples() - 1);

  ASSERT_TRUE(
      instance().MarkForDeletionByValues(1, {"John", "TKDE", "XML"}).ok());
  std::vector<ViewTupleId> after_second = instance().PreservedTuples();
  EXPECT_EQ(after_second, recompute());
  EXPECT_EQ(after_second.size(), instance().TotalViewTuples() - 2);
  for (const ViewTupleId& id : after_second) {
    EXPECT_FALSE(instance().IsMarkedForDeletion(id));
  }

  // Idempotent re-mark: the answer is stable whether or not the cache was
  // invalidated for it.
  ASSERT_TRUE(
      instance().MarkForDeletionByValues(1, {"John", "TKDE", "XML"}).ok());
  EXPECT_EQ(instance().PreservedTuples(), after_second);
}

// Negative paths of CreateFromMaterializedViews: externally supplied lineage
// must be rejected with a message naming the offending view and tuple, so a
// caller pasting in provenance from the wrong place can find the bad row.
class MaterializedViewsTest : public Fig1Test {
 protected:
  /// Fresh honestly-evaluated views for Q3 and Q4, ready to tamper with.
  std::vector<View> EvaluateViews() {
    std::vector<View> views;
    for (size_t v = 0; v < instance().view_count(); ++v) {
      Result<View> view = Evaluate(db(), instance().query(v));
      EXPECT_TRUE(view.ok()) << view.status().ToString();
      views.push_back(std::move(*view));
    }
    return views;
  }

  Result<VseInstance> Rebuild(std::vector<View> views) {
    return VseInstance::CreateFromMaterializedViews(
        db(), {&instance().query(0), &instance().query(1)}, std::move(views));
  }
};

TEST_F(MaterializedViewsTest, HonestViewsAccepted) {
  Result<VseInstance> rebuilt = Rebuild(EvaluateViews());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(rebuilt->TotalViewTuples(), instance().TotalViewTuples());
}

TEST_F(MaterializedViewsTest, RejectsTupleFromAnotherView) {
  std::vector<View> views = EvaluateViews();
  // Paste a Q4 tuple (arity 3) into the Q3 view (arity 2). It lands at
  // index 6 — the message must name exactly that tuple.
  const ViewTuple& alien = views[1].tuple(0);
  views[0].AddMatch(alien.values, alien.witnesses[0]);
  Result<VseInstance> rebuilt = Rebuild(std::move(views));
  ASSERT_FALSE(rebuilt.ok());
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(rebuilt.status().message(),
            "view 0 tuple 6 has 3 head values but query 'Q3' has arity 2; "
            "it does not belong to this view");
}

TEST_F(MaterializedViewsTest, RejectsDanglingWitnessRow) {
  std::vector<View> views = EvaluateViews();
  // T1 has 4 rows; row 99 dangles.
  views[0].AddMatch(views[0].tuple(0).values, {Row("T1", 99), Row("T2", 0)});
  Result<VseInstance> rebuilt = Rebuild(std::move(views));
  ASSERT_FALSE(rebuilt.ok());
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rebuilt.status().message().find("view 0 tuple 0"),
            std::string::npos)
      << rebuilt.status().message();
  EXPECT_NE(rebuilt.status().message().find(
                "dangling witness: row 99 of relation 'T1' does not exist "
                "(4 row(s))"),
            std::string::npos)
      << rebuilt.status().message();
}

TEST_F(MaterializedViewsTest, RejectsDanglingWitnessRelation) {
  std::vector<View> views = EvaluateViews();
  views[0].AddMatch(views[0].tuple(0).values,
                    {TupleRef{99, 0}, Row("T2", 0)});
  Result<VseInstance> rebuilt = Rebuild(std::move(views));
  ASSERT_FALSE(rebuilt.ok());
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rebuilt.status().message().find(
                "dangling witness: relation id 99 does not exist"),
            std::string::npos)
      << rebuilt.status().message();
}

TEST_F(MaterializedViewsTest, RejectsWitnessOnWrongRelation) {
  std::vector<View> views = EvaluateViews();
  // Q3's first body atom is T1(x, y); a witness pointing it at T2 is lying
  // about the provenance even though the row exists.
  views[0].AddMatch(views[0].tuple(0).values, {Row("T2", 0), Row("T2", 0)});
  Result<VseInstance> rebuilt = Rebuild(std::move(views));
  ASSERT_FALSE(rebuilt.ok());
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rebuilt.status().message().find(
                "witness whose atom 0 references relation 'T2' where the "
                "query body has 'T1'"),
            std::string::npos)
      << rebuilt.status().message();
}

TEST_F(MaterializedViewsTest, RejectsWitnessOfWrongLength) {
  std::vector<View> views = EvaluateViews();
  views[0].AddMatch(views[0].tuple(0).values, {Row("T1", 0)});
  Result<VseInstance> rebuilt = Rebuild(std::move(views));
  ASSERT_FALSE(rebuilt.ok());
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rebuilt.status().message().find(
                "a witness of 1 base tuple(s) for a body of 2 atom(s)"),
            std::string::npos)
      << rebuilt.status().message();
}

TEST_F(MaterializedViewsTest, RejectsEmptyWitness) {
  std::vector<View> views = EvaluateViews();
  views[0].AddMatch(views[0].tuple(0).values, {});
  Result<VseInstance> rebuilt = Rebuild(std::move(views));
  ASSERT_FALSE(rebuilt.ok());
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rebuilt.status().message().find("view 0 tuple 0"),
            std::string::npos)
      << rebuilt.status().message();
  EXPECT_NE(rebuilt.status().message().find("empty witness"),
            std::string::npos)
      << rebuilt.status().message();
}

}  // namespace
}  // namespace delprop
