// BatchSolveEngine and ScratchPool: batched results must be byte-identical
// to direct per-request solves at any thread count and cache setting, and
// the steady-state hot path must run entirely on reused storage (asserted
// through the engine/pool/plan counters, the closest a test can get to
// "allocation-free" without an allocator hook).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/batch_engine.h"
#include "solvers/scratch_pool.h"
#include "solvers/solver_registry.h"
#include "workload/path_schema.h"

namespace delprop {
namespace {

// Small path-schema workload: every solver family applies, builds in
// milliseconds, and has enough view tuples (~100) for varied ΔV subsets.
GeneratedVse MakeWorkload() {
  Rng rng(1);
  PathSchemaParams params;
  params.levels = 4;
  params.roots = 2;
  params.fanout = 2;
  params.deletion_fraction = 0.25;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  EXPECT_TRUE(generated.ok());
  return std::move(*generated);
}

std::vector<ViewTupleId> AllViewTupleIds(const VseInstance& instance) {
  std::vector<ViewTupleId> ids;
  for (size_t v = 0; v < instance.view_count(); ++v) {
    for (size_t t = 0; t < instance.view(v).size(); ++t) {
      ids.push_back(ViewTupleId{v, t});
    }
  }
  return ids;
}

// Deterministic ΔV subset of `size` tuples, varying with `salt`.
std::vector<ViewTupleId> MakeDeltaV(const std::vector<ViewTupleId>& all,
                                    uint64_t salt, size_t size) {
  Rng rng(DeriveTaskSeed(7, salt));
  std::vector<ViewTupleId> dv;
  for (size_t index : rng.SampleIndices(all.size(), size)) {
    dv.push_back(all[index]);
  }
  return dv;
}

// Renders everything the determinism contract covers (and nothing the
// scheduling-dependent RequestStats cover).
std::string Render(const Result<VseSolution>& result) {
  std::ostringstream out;
  if (!result.ok()) {
    out << StatusCodeName(result.status().code()) << ": "
        << result.status().message();
    return out.str();
  }
  out << result->solver_name << " feasible=" << result->Feasible()
      << " cost=" << result->Cost() << " deletion=";
  for (const TupleRef& ref : result->deletion.Sorted()) {
    out << "(" << ref.relation << "," << ref.row << ")";
  }
  return out.str();
}

std::string RenderAll(const std::vector<RequestOutcome>& outcomes) {
  std::string out;
  for (const RequestOutcome& outcome : outcomes) {
    out += Render(outcome.result);
    out += "\n";
  }
  return out;
}

std::vector<SolveRequest> MakeRequests(const VseInstance& instance,
                                       size_t count,
                                       const std::string& solver) {
  std::vector<ViewTupleId> all = AllViewTupleIds(instance);
  std::vector<SolveRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    SolveRequest request;
    request.solver = solver;
    request.delta_v = MakeDeltaV(all, i, 1 + i % 9);
    requests.push_back(std::move(request));
  }
  return requests;
}

// --- ScratchPool -----------------------------------------------------------

// Interleaves ΔV sets of very different sizes on ONE pooled tracker and
// checks every scratch-backed solve against a fresh-tracker solve of the
// same state: a stale counter or unswept epoch stamp from the previous,
// larger ΔV would surface as a different deletion set or cost.
TEST(ScratchPoolTest, InterleavedDeltaVReuseMatchesFreshTracker) {
  GeneratedVse generated = MakeWorkload();
  VseInstance& instance = *generated.instance;
  std::vector<ViewTupleId> all = AllViewTupleIds(instance);
  std::unique_ptr<VseSolver> pooled_solver = MakeSolver("greedy");
  ScratchPool pool;
  const size_t sizes[] = {1, 23, 4, 17, 2, 31, 9, 1, 28, 5};
  size_t rounds = 0;
  for (size_t size : sizes) {
    SCOPED_TRACE(rounds);
    pool.ReleasePlans();
    ASSERT_TRUE(instance.ResetDeletions(MakeDeltaV(all, rounds, size)).ok());
    Result<VseSolution> with_pool = pooled_solver->SolveWith(instance, &pool);
    Result<VseSolution> fresh = MakeSolver("greedy")->Solve(instance);
    EXPECT_EQ(Render(with_pool), Render(fresh));
    ++rounds;
  }
  const ScratchPool::Stats& stats = pool.stats();
  EXPECT_EQ(stats.tracker_acquires, rounds);
  EXPECT_EQ(stats.tracker_allocs, 1u);  // storage allocated exactly once
  EXPECT_EQ(stats.tracker_reuses, rounds - 1);
}

// --- BatchSolveEngine ------------------------------------------------------

TEST(BatchEngineTest, MatchesDirectPerRequestSolve) {
  GeneratedVse generated = MakeWorkload();
  VseInstance& instance = *generated.instance;
  std::vector<SolveRequest> requests = MakeRequests(instance, 6, "greedy");
  requests[2].solver = "local-search";
  requests[4].solver = "exact";

  BatchSolveEngine engine(instance, {});
  std::vector<RequestOutcome> outcomes = engine.SolveBatch(requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(instance.ResetDeletions(requests[i].delta_v).ok());
    Result<VseSolution> direct =
        MakeSolver(requests[i].solver)->Solve(instance);
    EXPECT_EQ(Render(outcomes[i].result), Render(direct));
  }
}

TEST(BatchEngineTest, OutcomesIdenticalAcrossThreadCounts) {
  GeneratedVse generated = MakeWorkload();
  std::vector<SolveRequest> requests =
      MakeRequests(*generated.instance, 24, "greedy");
  for (size_t i = 0; i < requests.size(); i += 3) {
    requests[i].solver = "local-search";
  }
  // Duplicates exercise the memo cache under concurrent claiming.
  requests.push_back(requests[1]);
  requests.push_back(requests[4]);

  BatchSolveEngine::Options t1;
  t1.threads = 1;
  BatchSolveEngine engine1(*generated.instance, t1);
  BatchSolveEngine::Options t4;
  t4.threads = 4;
  BatchSolveEngine engine4(*generated.instance, t4);
  EXPECT_EQ(engine4.worker_count(), 4u);

  std::string rendered1 = RenderAll(engine1.SolveBatch(requests));
  std::string rendered4 = RenderAll(engine4.SolveBatch(requests));
  EXPECT_EQ(rendered1, rendered4);
}

TEST(BatchEngineTest, MemoCacheChangesNothingButSkipsSolves) {
  GeneratedVse generated = MakeWorkload();
  std::vector<SolveRequest> requests =
      MakeRequests(*generated.instance, 10, "greedy");
  for (size_t i = 0; i < 6; ++i) requests.push_back(requests[i]);

  BatchSolveEngine::Options with_cache;
  BatchSolveEngine engine_cached(*generated.instance, with_cache);
  BatchSolveEngine::Options without_cache;
  without_cache.memo_cache = false;
  BatchSolveEngine engine_plain(*generated.instance, without_cache);

  std::string cached = RenderAll(engine_cached.SolveBatch(requests));
  std::string plain = RenderAll(engine_plain.SolveBatch(requests));
  EXPECT_EQ(cached, plain);

  EXPECT_EQ(engine_cached.stats().cache_hits, 6u);
  EXPECT_EQ(engine_cached.stats().solver_runs, 10u);
  EXPECT_EQ(engine_plain.stats().cache_hits, 0u);
  EXPECT_EQ(engine_plain.stats().solver_runs, 16u);
}

// The "zero steady-state allocations" contract, expressed in counters: after
// the first request warms the worker, every further request reuses the
// pooled tracker storage (no tracker alloc), rebuilds only the ΔV overlay
// (no full plan build), and recycles the previous overlay's buffers.
TEST(BatchEngineTest, SteadyStateRunsOnReusedStorage) {
  GeneratedVse generated = MakeWorkload();
  std::vector<SolveRequest> requests =
      MakeRequests(*generated.instance, 20, "greedy");

  BatchSolveEngine::Options options;
  options.threads = 1;
  options.memo_cache = false;  // cache hits would skip solves and counters
  BatchSolveEngine engine(*generated.instance, options);
  std::vector<RequestOutcome> outcomes = engine.SolveBatch(requests);
  for (const RequestOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.result.ok());
  }

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 20u);
  EXPECT_EQ(stats.solver_runs, 20u);
  EXPECT_EQ(stats.scratch_acquires, 20u);
  EXPECT_EQ(stats.scratch_allocs, 1u);
  EXPECT_EQ(stats.scratch_reuses, 19u);
  EXPECT_EQ(stats.plan_full_builds, 0u);  // core came from the primary
  EXPECT_EQ(stats.plan_core_rebinds, 20u);
  // Request 1's retired plan is still shared with the primary instance, so
  // only requests 2..20 can steal overlay buffers.
  EXPECT_EQ(stats.plan_overlay_recycles, 19u);

  // Per-request provenance tells the same story.
  EXPECT_FALSE(outcomes[0].stats.scratch_reused);
  for (size_t i = 1; i < outcomes.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(outcomes[i].stats.scratch_reused);
    EXPECT_TRUE(outcomes[i].stats.plan_core_reused);
    EXPECT_TRUE(outcomes[i].stats.plan_overlay_recycled);
  }
}

// Same contract with the memo cache ON: probes must not disturb the reuse
// counters — cache-hit requests skip the solve entirely (no overlay rebuild,
// no scratch acquire), and every miss still runs on recycled storage. The
// heterogeneous cache probe means hits and misses alike build no owned key
// on the lookup path; the counters pin the visible half of that contract.
TEST(BatchEngineTest, SteadyStateRunsOnReusedStorageWithMemoCache) {
  GeneratedVse generated = MakeWorkload();
  std::vector<SolveRequest> requests =
      MakeRequests(*generated.instance, 12, "greedy");
  for (size_t i = 0; i < 8; ++i) requests.push_back(requests[i]);

  BatchSolveEngine::Options options;
  options.threads = 1;
  options.memo_cache = true;
  BatchSolveEngine engine(*generated.instance, options);
  std::vector<RequestOutcome> outcomes = engine.SolveBatch(requests);
  for (const RequestOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.result.ok());
  }

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 20u);
  EXPECT_EQ(stats.cache_hits, 8u);
  EXPECT_EQ(stats.solver_runs, 12u);
  // Only the 12 misses touch the solve path; each acquires the one pooled
  // tracker and rebuilds only the ΔV overlay over the shared core.
  EXPECT_EQ(stats.scratch_acquires, 12u);
  EXPECT_EQ(stats.scratch_allocs, 1u);
  EXPECT_EQ(stats.scratch_reuses, 11u);
  EXPECT_EQ(stats.plan_full_builds, 0u);
  EXPECT_EQ(stats.plan_core_rebinds, 12u);
  EXPECT_EQ(stats.plan_overlay_recycles, 11u);
}

TEST(BatchEngineTest, InvalidRequestsFailAloneWithoutAbortingTheBatch) {
  GeneratedVse generated = MakeWorkload();
  std::vector<SolveRequest> requests =
      MakeRequests(*generated.instance, 2, "greedy");

  SolveRequest unknown = requests[0];
  unknown.solver = "no-such-solver";
  requests.push_back(unknown);

  SolveRequest mismatched = requests[0];
  mismatched.objective = Objective::kBalanced;  // greedy is kStandard
  requests.push_back(mismatched);

  SolveRequest out_of_range = requests[0];
  out_of_range.delta_v.push_back(ViewTupleId{9999, 0});
  requests.push_back(out_of_range);

  BatchSolveEngine engine(*generated.instance, {});
  std::vector<RequestOutcome> outcomes = engine.SolveBatch(requests);
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_TRUE(outcomes[0].result.ok());
  EXPECT_TRUE(outcomes[1].result.ok());
  EXPECT_EQ(outcomes[2].result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(outcomes[3].result.status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(outcomes[4].result.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(engine.stats().invalid_requests, 3u);
  EXPECT_EQ(engine.stats().solver_runs, 2u);
}

// --- Live base data through the engine -------------------------------------

// ApplyDelta's epoch handoff: replicas are dropped, the primary mutates in
// place (sole owner, no copy-on-write detach), and the re-replicated fleet
// serves results identical to direct solves over the mutated primary.
TEST(BatchEngineTest, ApplyDeltaAdvancesEpochAndServesNewData) {
  GeneratedVse generated = MakeWorkload();
  VseInstance& primary = *generated.instance;
  BatchSolveEngine::Options options;
  options.threads = 2;
  BatchSolveEngine engine(primary, options);
  EXPECT_EQ(engine.core_epoch(), 0u);

  std::vector<RequestOutcome> before =
      engine.SolveBatch(MakeRequests(primary, 4, "greedy"));
  for (const RequestOutcome& outcome : before) {
    ASSERT_TRUE(outcome.result.ok());
  }

  // Delete one base row that occurs in a witness — guaranteed to change the
  // view structure.
  BaseDelta delta;
  delta.deletes.push_back(primary.view_tuple(ViewTupleId{0, 0}).witnesses[0][0]);
  ApplyDeltaReport report;
  ASSERT_TRUE(
      engine.ApplyDelta(*generated.database, delta, {}, &report).ok());
  EXPECT_EQ(engine.core_epoch(), 1u);
  EXPECT_EQ(engine.stats().deltas_applied, 1u);
  EXPECT_EQ(primary.structure_epoch(), 1u);
  EXPECT_GT(report.view_tuples_removed, 0u);

  // Post-delta batches must match direct solves on the mutated primary.
  std::vector<SolveRequest> requests = MakeRequests(primary, 6, "greedy");
  std::vector<RequestOutcome> after = engine.SolveBatch(requests);
  ASSERT_EQ(after.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(primary.ResetDeletions(requests[i].delta_v).ok());
    EXPECT_EQ(Render(after[i].result),
              Render(MakeSolver("greedy")->Solve(primary)));
  }
}

// Memoized results were computed against the old base data; a delta must
// evict them, and a repeated request must re-solve instead of replaying the
// stale cached outcome.
TEST(BatchEngineTest, ApplyDeltaInvalidatesTheMemoCache) {
  GeneratedVse generated = MakeWorkload();
  VseInstance& primary = *generated.instance;
  BatchSolveEngine engine(primary, {});

  std::vector<SolveRequest> request = MakeRequests(primary, 1, "greedy");
  (void)engine.SolveBatch(request);
  (void)engine.SolveBatch(request);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(engine.stats().solver_runs, 1u);

  BaseDelta delta;
  delta.deletes.push_back(primary.view_tuple(ViewTupleId{0, 0}).witnesses[0][0]);
  ASSERT_TRUE(engine.ApplyDelta(*generated.database, delta).ok());

  // ΔV ids may have shifted; re-derive a valid request and repeat it twice:
  // the first run must be a real solve (cache was cleared), the second a hit.
  std::vector<SolveRequest> fresh = MakeRequests(primary, 1, "greedy");
  std::vector<RequestOutcome> first = engine.SolveBatch(fresh);
  ASSERT_TRUE(first[0].result.ok());
  EXPECT_FALSE(first[0].stats.cache_hit);
  std::vector<RequestOutcome> second = engine.SolveBatch(fresh);
  EXPECT_TRUE(second[0].stats.cache_hit);
  ASSERT_TRUE(primary.ResetDeletions(fresh[0].delta_v).ok());
  EXPECT_EQ(Render(first[0].result),
            Render(MakeSolver("greedy")->Solve(primary)));
}

// A rejected delta must leave the primary untouched but still restore the
// worker fleet, and the epoch must not advance.
TEST(BatchEngineTest, RejectedDeltaKeepsEpochAndKeepsServing) {
  GeneratedVse generated = MakeWorkload();
  VseInstance& primary = *generated.instance;
  BatchSolveEngine engine(primary, {});

  BaseDelta dangling;
  dangling.deletes.push_back(TupleRef{0, 1u << 30});
  EXPECT_EQ(engine.ApplyDelta(*generated.database, dangling).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.core_epoch(), 0u);
  EXPECT_EQ(engine.stats().deltas_applied, 0u);
  EXPECT_EQ(primary.structure_epoch(), 0u);

  std::vector<SolveRequest> requests = MakeRequests(primary, 3, "greedy");
  for (const RequestOutcome& outcome : engine.SolveBatch(requests)) {
    EXPECT_TRUE(outcome.result.ok());
  }
}

// --- VseInstance batched-serving primitives --------------------------------

TEST(ResetDeletionsTest, EquivalentToMarkingAndKeepsCore) {
  GeneratedVse generated = MakeWorkload();
  VseInstance& instance = *generated.instance;
  std::vector<ViewTupleId> all = AllViewTupleIds(instance);
  std::vector<ViewTupleId> dv = MakeDeltaV(all, 3, 12);

  GeneratedVse reference = MakeWorkload();
  ASSERT_TRUE(reference.instance->ResetDeletions({}).ok());
  for (const ViewTupleId& id : dv) {
    ASSERT_TRUE(reference.instance->MarkForDeletion(id).ok());
  }

  (void)instance.compiled();  // warm the core
  std::vector<ViewTupleId> doubled = dv;
  doubled.insert(doubled.end(), dv.begin(), dv.end());  // duplicates collapse
  ASSERT_TRUE(instance.ResetDeletions(doubled).ok());
  EXPECT_EQ(instance.deletion_tuples(),
            reference.instance->deletion_tuples());
  EXPECT_EQ(Render(MakeSolver("greedy")->Solve(instance)),
            Render(MakeSolver("greedy")->Solve(*reference.instance)));
  (void)instance.compiled();
  PlanBuildStats stats = instance.plan_stats();
  EXPECT_EQ(stats.full_builds, 1u);
  EXPECT_GE(stats.core_rebinds, 1u);
}

TEST(ResetDeletionsTest, OutOfRangeLeavesInstanceUnchanged) {
  GeneratedVse generated = MakeWorkload();
  VseInstance& instance = *generated.instance;
  std::vector<ViewTupleId> before = instance.deletion_tuples();
  Status status = instance.ResetDeletions({ViewTupleId{0, 1u << 20}});
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(instance.deletion_tuples(), before);
}

TEST(ReplicateTest, ReplicaIsIndependentButEquivalent) {
  GeneratedVse generated = MakeWorkload();
  VseInstance& primary = *generated.instance;
  std::vector<ViewTupleId> primary_dv = primary.deletion_tuples();
  (void)primary.compiled();

  VseInstance replica = primary.Replicate();
  EXPECT_EQ(replica.deletion_tuples(), primary_dv);
  EXPECT_EQ(Render(MakeSolver("greedy")->Solve(replica)),
            Render(MakeSolver("greedy")->Solve(primary)));

  // Swapping the replica's ΔV must not leak into the primary, and the
  // replica must not pay a full structural rebuild for it.
  std::vector<ViewTupleId> all = AllViewTupleIds(primary);
  ASSERT_TRUE(replica.ResetDeletions(MakeDeltaV(all, 11, 5)).ok());
  (void)replica.compiled();
  EXPECT_EQ(primary.deletion_tuples(), primary_dv);
  EXPECT_EQ(replica.plan_stats().full_builds, 0u);
  EXPECT_GE(replica.plan_stats().core_rebinds, 1u);
}

}  // namespace
}  // namespace delprop
