// CreateByFiltering must be observationally equivalent to a full
// re-materialization over the combined mask.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "dp/vse_instance.h"
#include "workload/author_journal.h"
#include "workload/random_workload.h"
#include "workload/star_schema.h"

namespace delprop {
namespace {

using ViewMap = std::map<Tuple, std::set<std::vector<TupleRef>>>;

ViewMap ToMap(const View& view) {
  ViewMap map;
  for (size_t t = 0; t < view.size(); ++t) {
    for (const Witness& w : view.tuple(t).witnesses) {
      map[view.tuple(t).values].insert(w);
    }
  }
  return map;
}

void ExpectEquivalent(const VseInstance& a, const VseInstance& b) {
  ASSERT_EQ(a.view_count(), b.view_count());
  for (size_t v = 0; v < a.view_count(); ++v) {
    EXPECT_EQ(ToMap(a.view(v)), ToMap(b.view(v))) << "view " << v;
  }
  EXPECT_EQ(a.all_unique_witness(), b.all_unique_witness());
  EXPECT_EQ(a.TotalViewTuples(), b.TotalViewTuples());
}

TEST(IncrementalTest, Fig1FilteringMatchesRematerialization) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  const VseInstance& full = *generated->instance;

  DeletionSet deletion;
  RelationId t1 = *generated->database->schema().FindRelation("T1");
  deletion.Insert({t1, 1});  // (John, TKDE)

  Result<VseInstance> filtered = VseInstance::CreateByFiltering(full, deletion);
  ASSERT_TRUE(filtered.ok());
  std::vector<const ConjunctiveQuery*> qs;
  for (const auto& q : generated->queries) qs.push_back(q.get());
  Result<VseInstance> remade =
      VseInstance::Create(*generated->database, qs, &deletion);
  ASSERT_TRUE(remade.ok());
  ExpectEquivalent(*filtered, *remade);
}

TEST(IncrementalTest, ChainedFiltersEqualCombinedMask) {
  Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 9;
    params.queries = 3;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& full = *generated->instance;

    // Two waves of random deletions, applied incrementally.
    DeletionSet wave1, wave2, combined;
    const Database& db = *generated->database;
    for (RelationId rel = 0; rel < db.relation_count(); ++rel) {
      for (uint32_t row = 0; row < db.relation(rel).row_count(); ++row) {
        if (rng.NextBool(0.15)) {
          wave1.Insert({rel, row});
          combined.Insert({rel, row});
        } else if (rng.NextBool(0.15)) {
          wave2.Insert({rel, row});
          combined.Insert({rel, row});
        }
      }
    }
    Result<VseInstance> step1 = VseInstance::CreateByFiltering(full, wave1);
    ASSERT_TRUE(step1.ok());
    Result<VseInstance> step2 = VseInstance::CreateByFiltering(*step1, wave2);
    ASSERT_TRUE(step2.ok());

    std::vector<const ConjunctiveQuery*> qs;
    for (const auto& q : generated->queries) qs.push_back(q.get());
    Result<VseInstance> remade = VseInstance::Create(db, qs, &combined);
    ASSERT_TRUE(remade.ok());
    ExpectEquivalent(*step2, *remade);
  }
}

TEST(IncrementalTest, KillMapRebuilt) {
  Rng rng(32);
  StarSchemaParams params;
  params.fact_rows = 12;
  params.deletion_fraction = 0.0;
  Result<GeneratedVse> generated = GenerateStarSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  const VseInstance& full = *generated->instance;
  DeletionSet deletion;
  RelationId fact = *generated->database->schema().FindRelation("F");
  deletion.Insert({fact, 0});
  Result<VseInstance> filtered =
      VseInstance::CreateByFiltering(full, deletion);
  ASSERT_TRUE(filtered.ok());
  // The deleted fact row must no longer appear in any kill set.
  EXPECT_TRUE(filtered->KilledBy({fact, 0}).empty());
  // A surviving fact row's kill set is consistent with its witnesses.
  for (uint32_t row = 1; row < 3; ++row) {
    for (const ViewTupleId& id : filtered->KilledBy({fact, row})) {
      bool found = false;
      for (const Witness& w : filtered->view_tuple(id).witnesses) {
        for (const TupleRef& ref : w) {
          if (ref == TupleRef{fact, row}) found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(IncrementalTest, EmptyDeletionIsIdentity) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  Result<VseInstance> filtered =
      VseInstance::CreateByFiltering(*generated->instance, DeletionSet());
  ASSERT_TRUE(filtered.ok());
  ExpectEquivalent(*filtered, *generated->instance);
}

}  // namespace
}  // namespace delprop
