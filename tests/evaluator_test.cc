#include <gtest/gtest.h>

#include <algorithm>

#include "query/evaluator.h"
#include "query/parser.h"

namespace delprop {
namespace {

// Builds the Fig. 1 database from the paper.
class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddRelation("T1", 2, {0, 1}).ok());
    ASSERT_TRUE(db_.AddRelation("T2", 3, {0, 1}).ok());
    for (auto [a, j] : {std::pair{"Joe", "TKDE"}, {"John", "TKDE"},
                        {"Tom", "TKDE"}, {"John", "TODS"}}) {
      ASSERT_TRUE(db_.InsertText(0, {a, j}).ok());
    }
    for (auto [j, t] : {std::pair{"TKDE", "XML"}, {"TKDE", "CUBE"},
                        {"TODS", "XML"}}) {
      ASSERT_TRUE(db_.InsertText(1, {j, t, "30"}).ok());
    }
  }

  View Eval(const ConjunctiveQuery& q, const DeletionSet* mask = nullptr) {
    EvalOptions options;
    options.mask = mask;
    Result<View> view = Evaluate(db_, q, options);
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    return std::move(*view);
  }

  Tuple Values(std::initializer_list<const char*> texts) {
    Tuple t;
    for (const char* s : texts) t.push_back(db_.dict().Intern(s));
    return t;
  }

  Database db_;
};

TEST_F(EvaluatorTest, Fig1Q3HasSixTuples) {
  Result<ConjunctiveQuery> q =
      ParseQuery("Q3(x, z) :- T1(x, y), T2(y, z, w)", db_.schema(), db_.dict());
  ASSERT_TRUE(q.ok());
  View view = Eval(*q);
  EXPECT_EQ(view.size(), 6u);
  EXPECT_TRUE(view.Find(Values({"John", "XML"})).has_value());
  EXPECT_TRUE(view.Find(Values({"Joe", "CUBE"})).has_value());
  EXPECT_FALSE(view.Find(Values({"Joe", "Nope"})).has_value());
}

TEST_F(EvaluatorTest, Fig1Q4HasSevenTuples) {
  Result<ConjunctiveQuery> q = ParseQuery(
      "Q4(x, y, z) :- T1(x, y), T2(y, z, w)", db_.schema(), db_.dict());
  ASSERT_TRUE(q.ok());
  View view = Eval(*q);
  EXPECT_EQ(view.size(), 7u);
}

TEST_F(EvaluatorTest, JohnXmlHasTwoWitnesses) {
  Result<ConjunctiveQuery> q =
      ParseQuery("Q3(x, z) :- T1(x, y), T2(y, z, w)", db_.schema(), db_.dict());
  ASSERT_TRUE(q.ok());
  View view = Eval(*q);
  std::optional<size_t> index = view.Find(Values({"John", "XML"}));
  ASSERT_TRUE(index.has_value());
  // (John,TKDE)+(TKDE,XML,30) and (John,TODS)+(TODS,XML,30).
  EXPECT_EQ(view.tuple(*index).witnesses.size(), 2u);
  std::optional<size_t> joe = view.Find(Values({"Joe", "XML"}));
  ASSERT_TRUE(joe.has_value());
  EXPECT_EQ(view.tuple(*joe).witnesses.size(), 1u);
}

TEST_F(EvaluatorTest, KeyPreservingQ4HasUniqueWitnesses) {
  Result<ConjunctiveQuery> q = ParseQuery(
      "Q4(x, y, z) :- T1(x, y), T2(y, z, w)", db_.schema(), db_.dict());
  ASSERT_TRUE(q.ok());
  View view = Eval(*q);
  for (size_t t = 0; t < view.size(); ++t) {
    EXPECT_EQ(view.tuple(t).witnesses.size(), 1u) << view.RenderTuple(t);
  }
}

TEST_F(EvaluatorTest, WitnessesAreActualRows) {
  Result<ConjunctiveQuery> q =
      ParseQuery("Q3(x, z) :- T1(x, y), T2(y, z, w)", db_.schema(), db_.dict());
  ASSERT_TRUE(q.ok());
  View view = Eval(*q);
  for (size_t t = 0; t < view.size(); ++t) {
    for (const Witness& w : view.tuple(t).witnesses) {
      ASSERT_EQ(w.size(), 2u);
      EXPECT_EQ(w[0].relation, 0u);
      EXPECT_EQ(w[1].relation, 1u);
      // The join column must match between the two rows.
      EXPECT_EQ(db_.TupleAt(w[0])[1], db_.TupleAt(w[1])[0]);
    }
  }
}

TEST_F(EvaluatorTest, ConstantSelection) {
  Result<ConjunctiveQuery> q = ParseQuery(
      "Q(x) :- T1(x, 'TODS')", db_.schema(), db_.dict());
  ASSERT_TRUE(q.ok());
  View view = Eval(*q);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view.RenderTuple(0), "Q(John)");
}

TEST_F(EvaluatorTest, MaskHidesRows) {
  Result<ConjunctiveQuery> q =
      ParseQuery("Q3(x, z) :- T1(x, y), T2(y, z, w)", db_.schema(), db_.dict());
  ASSERT_TRUE(q.ok());
  // Delete (John, TKDE) — row 1 of T1 — and (TODS, XML, 30) — row 2 of T2.
  DeletionSet mask;
  mask.Insert({0, 1});
  mask.Insert({1, 2});
  View view = Eval(*q, &mask);
  // John loses both XML derivations and CUBE.
  EXPECT_FALSE(view.Find(Values({"John", "XML"})).has_value());
  EXPECT_FALSE(view.Find(Values({"John", "CUBE"})).has_value());
  EXPECT_TRUE(view.Find(Values({"Joe", "XML"})).has_value());
  EXPECT_EQ(view.size(), 4u);
}

TEST_F(EvaluatorTest, MaskMatchesSurvivesSemantics) {
  // Evaluating under a mask must agree with View::Survives on the unmasked
  // lineage (monotone queries).
  Result<ConjunctiveQuery> q =
      ParseQuery("Q3(x, z) :- T1(x, y), T2(y, z, w)", db_.schema(), db_.dict());
  ASSERT_TRUE(q.ok());
  View full = Eval(*q);
  DeletionSet mask;
  mask.Insert({0, 0});
  mask.Insert({1, 1});
  View masked = Eval(*q, &mask);
  for (size_t t = 0; t < full.size(); ++t) {
    bool survived = masked.Find(full.tuple(t).values).has_value();
    EXPECT_EQ(survived, full.Survives(t, mask)) << full.RenderTuple(t);
  }
}

TEST_F(EvaluatorTest, SelfJoin) {
  Database db;
  ASSERT_TRUE(db.AddRelation("E", 2, {0, 1}).ok());
  ASSERT_TRUE(db.InsertText(0, {"a", "b"}).ok());
  ASSERT_TRUE(db.InsertText(0, {"b", "c"}).ok());
  ASSERT_TRUE(db.InsertText(0, {"c", "a"}).ok());
  Result<ConjunctiveQuery> q = ParseQuery(
      "Path2(x, y, z) :- E(x, y), E(y, z)", db.schema(), db.dict());
  ASSERT_TRUE(q.ok());
  Result<View> view = Evaluate(db, *q);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 3u);  // a-b-c, b-c-a, c-a-b.
}

TEST_F(EvaluatorTest, CartesianProductWhenNoSharedVariables) {
  Database db;
  ASSERT_TRUE(db.AddRelation("A", 1, {0}).ok());
  ASSERT_TRUE(db.AddRelation("B", 1, {0}).ok());
  ASSERT_TRUE(db.InsertText(0, {"a1"}).ok());
  ASSERT_TRUE(db.InsertText(0, {"a2"}).ok());
  ASSERT_TRUE(db.InsertText(1, {"b1"}).ok());
  Result<ConjunctiveQuery> q =
      ParseQuery("Q(x, y) :- A(x), B(y)", db.schema(), db.dict());
  ASSERT_TRUE(q.ok());
  Result<View> view = Evaluate(db, *q);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 2u);
}

TEST_F(EvaluatorTest, EmptyResultOnEmptyJoin) {
  Result<ConjunctiveQuery> q = ParseQuery(
      "Q(x) :- T1(x, 'Nowhere')", db_.schema(), db_.dict());
  ASSERT_TRUE(q.ok());
  View view = Eval(*q);
  EXPECT_EQ(view.size(), 0u);
}

TEST_F(EvaluatorTest, RepeatedVariableWithinAtom) {
  Database db;
  ASSERT_TRUE(db.AddRelation("E", 2, {0, 1}).ok());
  ASSERT_TRUE(db.InsertText(0, {"a", "a"}).ok());
  ASSERT_TRUE(db.InsertText(0, {"a", "b"}).ok());
  Result<ConjunctiveQuery> q =
      ParseQuery("Loop(x) :- E(x, x)", db.schema(), db.dict());
  ASSERT_TRUE(q.ok());
  Result<View> view = Evaluate(db, *q);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->size(), 1u);
  EXPECT_EQ(view->RenderTuple(0), "Loop(a)");
}

}  // namespace
}  // namespace delprop
