#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/query_properties.h"

namespace delprop {
namespace {

class PropertiesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // T1's key is its first column; T2's key is its first two columns;
    // K's key is both columns (mirrors the paper's Section II examples).
    ASSERT_TRUE(schema_.AddRelation("T1", 3, {0}).ok());
    ASSERT_TRUE(schema_.AddRelation("T2", 3, {0, 1}).ok());
    ASSERT_TRUE(schema_.AddRelation("K", 2, {0, 1}).ok());
  }

  ConjunctiveQuery Parse(const std::string& text) {
    Result<ConjunctiveQuery> q = ParseQuery(text, schema_, dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  Schema schema_;
  ValueDictionary dict_;
};

TEST_F(PropertiesTest, ProjectFreeDetection) {
  EXPECT_TRUE(IsProjectFree(Parse("Q(x, y, z) :- T1(x, y, z)")));
  EXPECT_FALSE(IsProjectFree(Parse("Q(x) :- T1(x, y, z)")));
}

TEST_F(PropertiesTest, ProjectFreeImpliesKeyPreserving) {
  ConjunctiveQuery q = Parse("Q(a, b, c, d) :- T1(a, b, c), K(c, d)");
  EXPECT_TRUE(IsProjectFree(q));
  EXPECT_TRUE(IsKeyPreserving(q, schema_));
}

TEST_F(PropertiesTest, SelfJoinFreeDetection) {
  EXPECT_TRUE(IsSelfJoinFree(Parse("Q(x, y) :- K(x, y)")));
  EXPECT_FALSE(IsSelfJoinFree(Parse("Q(x, y, z) :- K(x, y), K(y, z)")));
}

TEST_F(PropertiesTest, KeyPreservingWithProjection) {
  // x is T1's key variable and is in the head; y, z are projected away but
  // are not key variables.
  EXPECT_TRUE(IsKeyPreserving(Parse("Q(x) :- T1(x, y, z)"), schema_));
  // Here the key variable x is projected away.
  EXPECT_FALSE(IsKeyPreserving(Parse("Q(y) :- T1(x, y, z)"), schema_));
}

TEST_F(PropertiesTest, PaperExampleQ1IsKeyPreserving) {
  // Q1(y1, y2, w) :- T1(y1, x, z), T2(x, y2, w) with keys T1:{0}, T2:{0,1}.
  // Key variables: y1 (T1 pos 0), x and y2 (T2 pos 0, 1).
  ConjunctiveQuery q = Parse("Q1(y1, y2, w, x) :- T1(y1, x, z), T2(x, y2, w)");
  EXPECT_TRUE(IsKeyPreserving(q, schema_));
  // Dropping x from the head breaks key preservation (x keys T2).
  ConjunctiveQuery bad = Parse("Q1(y1, y2, w) :- T1(y1, x, z), T2(x, y2, w)");
  EXPECT_FALSE(IsKeyPreserving(bad, schema_));
}

TEST_F(PropertiesTest, ConstantAtKeyPositionIsAllowed) {
  EXPECT_TRUE(IsKeyPreserving(Parse("Q(y) :- T1('c', y, z)"), schema_));
}

TEST_F(PropertiesTest, HeadAndExistentialVariables) {
  ConjunctiveQuery q = Parse("Q(x, z) :- T1(x, y, z), K(z, w)");
  std::vector<VarId> head = HeadVariables(q);
  std::vector<VarId> exist = ExistentialVariables(q);
  EXPECT_EQ(head.size(), 2u);
  EXPECT_EQ(exist.size(), 2u);
  // Names resolve correctly.
  EXPECT_EQ(q.variable_name(head[0]), "x");
  EXPECT_EQ(q.variable_name(head[1]), "z");
  EXPECT_EQ(q.variable_name(exist[0]), "y");
  EXPECT_EQ(q.variable_name(exist[1]), "w");
}

TEST_F(PropertiesTest, KeyVariablesCollectsKeyPositions) {
  ConjunctiveQuery q = Parse("Q(x, z, w) :- T1(x, y, z), K(z, w)");
  std::vector<VarId> keys = KeyVariables(q, schema_);
  ASSERT_EQ(keys.size(), 3u);  // x (T1 pos 0), z and w (K pos 0, 1).
  EXPECT_EQ(q.variable_name(keys[0]), "x");
  EXPECT_EQ(q.variable_name(keys[1]), "z");
  EXPECT_EQ(q.variable_name(keys[2]), "w");
}

TEST_F(PropertiesTest, IsHeadVariable) {
  ConjunctiveQuery q = Parse("Q(x) :- T1(x, y, z)");
  std::vector<VarId> head = HeadVariables(q);
  ASSERT_EQ(head.size(), 1u);
  EXPECT_TRUE(q.IsHeadVariable(head[0]));
  std::vector<VarId> exist = ExistentialVariables(q);
  for (VarId v : exist) EXPECT_FALSE(q.IsHeadVariable(v));
}

}  // namespace
}  // namespace delprop
