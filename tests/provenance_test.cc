#include <gtest/gtest.h>

#include "dp/side_effect.h"
#include "tool/provenance.h"
#include "workload/author_journal.h"

namespace delprop {
namespace {

class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<GeneratedVse> generated = BuildFig1Example();
    ASSERT_TRUE(generated.ok());
    generated_ = std::move(*generated);
  }

  ViewTupleId Find(size_t view, std::initializer_list<const char*> values) {
    Tuple tuple;
    for (const char* v : values) {
      tuple.push_back(*generated_.database->dict().Find(v));
    }
    std::optional<size_t> index =
        generated_.instance->view(view).Find(tuple);
    EXPECT_TRUE(index.has_value());
    return ViewTupleId{view, index.value_or(0)};
  }

  GeneratedVse generated_;
};

TEST_F(ProvenanceTest, DnfForMultiWitnessTuple) {
  std::string dnf =
      ProvenanceDnf(*generated_.instance, Find(0, {"John", "XML"}));
  EXPECT_NE(dnf.find("T1(John, TKDE)·T2(TKDE, XML, 30)"), std::string::npos);
  EXPECT_NE(dnf.find(" + "), std::string::npos);
  EXPECT_NE(dnf.find("T1(John, TODS)·T2(TODS, XML, 30)"), std::string::npos);
}

TEST_F(ProvenanceTest, DnfForSingleWitnessTuple) {
  std::string dnf =
      ProvenanceDnf(*generated_.instance, Find(0, {"Joe", "CUBE"}));
  EXPECT_EQ(dnf, "T1(Joe, TKDE)·T2(TKDE, CUBE, 30)");
}

TEST_F(ProvenanceTest, CertificatesForSingleWitness) {
  // One witness of two tuples → two singleton certificates.
  std::string certs =
      DeletionCertificates(*generated_.instance, Find(0, {"Joe", "CUBE"}));
  EXPECT_NE(certs.find("- {T1(Joe, TKDE)}"), std::string::npos);
  EXPECT_NE(certs.find("- {T2(TKDE, CUBE, 30)}"), std::string::npos);
  EXPECT_EQ(std::count(certs.begin(), certs.end(), '\n'), 2);
}

TEST_F(ProvenanceTest, CertificatesForTwoWitnesses) {
  // (John, XML): witnesses {A=T1(J,TKDE), B=T2(TKDE,XML)} and
  // {C=T1(J,TODS), D=T2(TODS,XML)} — minimal transversals are the four
  // cross pairs {A,C},{A,D},{B,C},{B,D}.
  std::string certs =
      DeletionCertificates(*generated_.instance, Find(0, {"John", "XML"}));
  EXPECT_EQ(std::count(certs.begin(), certs.end(), '\n'), 4);
  EXPECT_NE(certs.find("{T1(John, TKDE), T1(John, TODS)}"),
            std::string::npos);
  EXPECT_NE(certs.find("{T1(John, TKDE), T2(TODS, XML, 30)}"),
            std::string::npos);
}

TEST_F(ProvenanceTest, CertificatesActuallyDelete) {
  // Every certificate, applied as a deletion, eliminates the tuple.
  ViewTupleId id = Find(0, {"John", "XML"});
  ASSERT_TRUE(generated_.instance->MarkForDeletion(id).ok());
  const ViewTuple& tuple = generated_.instance->view_tuple(id);
  // Manually replay the first certificate: {T1(John,TKDE), T1(John,TODS)}.
  DeletionSet deletion;
  deletion.Insert(tuple.witnesses[0][0]);
  deletion.Insert(tuple.witnesses[1][0]);
  SideEffectReport report = EvaluateDeletion(*generated_.instance, deletion);
  EXPECT_TRUE(report.eliminates_all_deletions);
}

TEST_F(ProvenanceTest, ResponsibilityUniqueWitnessIsOne) {
  ViewTupleId id = Find(0, {"Joe", "CUBE"});
  const Witness& witness =
      generated_.instance->view_tuple(id).witnesses[0];
  for (const TupleRef& ref : witness) {
    EXPECT_DOUBLE_EQ(Responsibility(*generated_.instance, id, ref), 1.0);
  }
}

TEST_F(ProvenanceTest, ResponsibilityWithContingency) {
  // (John, XML) has two disjoint witnesses; any member needs the other
  // witness removed first: contingency size 1 → responsibility 1/2.
  ViewTupleId id = Find(0, {"John", "XML"});
  const ViewTuple& tuple = generated_.instance->view_tuple(id);
  for (const Witness& witness : tuple.witnesses) {
    for (const TupleRef& ref : witness) {
      EXPECT_DOUBLE_EQ(Responsibility(*generated_.instance, id, ref), 0.5)
          << generated_.database->RenderTuple(ref);
    }
  }
}

TEST_F(ProvenanceTest, ResponsibilityOfBystanderIsZero) {
  ViewTupleId id = Find(0, {"Joe", "CUBE"});
  // (John, TODS) plays no role in Joe's CUBE answer.
  RelationId t1 = *generated_.database->schema().FindRelation("T1");
  EXPECT_DOUBLE_EQ(
      Responsibility(*generated_.instance, id, TupleRef{t1, 3}), 0.0);
}

TEST_F(ProvenanceTest, ResponsibilityMatchesCounterfactualSemantics) {
  // Brute-force check on (John, XML): for the found contingency size k,
  // verify a contingency of that size exists and none smaller does.
  ViewTupleId id = Find(0, {"John", "XML"});
  const ViewTuple& tuple = generated_.instance->view_tuple(id);
  TupleRef ref = tuple.witnesses[0][0];  // T1(John, TKDE)
  double r = Responsibility(*generated_.instance, id, ref);
  ASSERT_DOUBLE_EQ(r, 0.5);
  // Contingency {T1(John, TODS)}: without ref the tuple survives via the
  // TODS witness? No — the contingency removes it; then deleting ref kills
  // the remaining witness. Verify via View::Survives.
  const View& view = generated_.instance->view(id.view);
  DeletionSet gamma;
  gamma.Insert(tuple.witnesses[1][0]);  // T1(John, TODS)
  EXPECT_TRUE(view.Survives(id.tuple, gamma));
  gamma.Insert(ref);
  EXPECT_FALSE(view.Survives(id.tuple, gamma));
}

}  // namespace
}  // namespace delprop
