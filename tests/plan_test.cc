#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "dp/vse_instance.h"
#include "plan/compiled_instance.h"
#include "testing/fuzzer.h"
#include "workload/author_journal.h"
#include "workload/path_schema.h"

namespace delprop {
namespace {

class PlanFig1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<GeneratedVse> generated = BuildFig1Example();
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    generated_ = std::move(*generated);
    ASSERT_TRUE(
        instance().MarkForDeletionByValues(0, {"John", "XML"}).ok());
  }

  VseInstance& instance() { return *generated_.instance; }

  GeneratedVse generated_;
};

TEST_F(PlanFig1Test, DenseIdRoundTrip) {
  std::shared_ptr<const CompiledInstance> plan = instance().compiled();
  ASSERT_EQ(plan->tuple_count(), instance().TotalViewTuples());
  uint32_t expected = 0;
  for (size_t v = 0; v < instance().view_count(); ++v) {
    for (size_t t = 0; t < instance().view(v).size(); ++t) {
      ViewTupleId id{v, t};
      uint32_t dense = plan->DenseOf(id);
      // Dense ids are assigned in ascending (view, tuple) order.
      EXPECT_EQ(dense, expected++);
      EXPECT_EQ(plan->IdOf(dense), id);
      EXPECT_DOUBLE_EQ(plan->weight(dense), instance().weight(id));
      EXPECT_EQ(plan->is_deletion(dense),
                instance().IsMarkedForDeletion(id));
    }
  }
}

TEST_F(PlanFig1Test, BaseInterningIsSortedBijection) {
  std::shared_ptr<const CompiledInstance> plan = instance().compiled();
  ASSERT_GT(plan->base_count(), 0u);
  for (uint32_t b = 0; b < plan->base_count(); ++b) {
    if (b + 1 < plan->base_count()) {
      EXPECT_TRUE(plan->base_ref(b) < plan->base_ref(b + 1));
    }
    EXPECT_EQ(plan->FindBase(plan->base_ref(b)), b);
  }
  EXPECT_EQ(plan->FindBase(TupleRef{RelationId{0}, 9999}),
            CompiledInstance::kNpos);
}

TEST_F(PlanFig1Test, WitnessRowsKeepRawMembers) {
  std::shared_ptr<const CompiledInstance> plan = instance().compiled();
  for (size_t v = 0; v < instance().view_count(); ++v) {
    const View& view = instance().view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      uint32_t dense = plan->DenseOf(ViewTupleId{v, t});
      const std::vector<Witness>& witnesses = view.tuple(t).witnesses;
      ASSERT_EQ(plan->tuple_witness_count(dense), witnesses.size());
      for (size_t w = 0; w < witnesses.size(); ++w) {
        uint32_t wid =
            plan->tuple_witness_begin(dense) + static_cast<uint32_t>(w);
        EXPECT_EQ(plan->witness_owner(wid), dense);
        ASSERT_EQ(plan->member_end(wid) - plan->member_begin(wid),
                  witnesses[w].size());
        for (size_t m = 0; m < witnesses[w].size(); ++m) {
          uint32_t base = plan->member_base(plan->member_begin(wid) +
                                            static_cast<uint32_t>(m));
          EXPECT_EQ(plan->base_ref(base), witnesses[w][m]);
        }
      }
    }
  }
}

TEST_F(PlanFig1Test, KillRowsMatchKilledBy) {
  std::shared_ptr<const CompiledInstance> plan = instance().compiled();
  for (uint32_t b = 0; b < plan->base_count(); ++b) {
    const auto& killed = instance().KilledBy(plan->base_ref(b));
    ASSERT_EQ(plan->kill_end(b) - plan->kill_begin(b), killed.size());
    for (size_t k = 0; k < killed.size(); ++k) {
      uint32_t dense =
          plan->kill_tuple(plan->kill_begin(b) + static_cast<uint32_t>(k));
      EXPECT_EQ(plan->IdOf(dense), killed[k]);
    }
  }
}

TEST_F(PlanFig1Test, OccRowsSortedAndMirrorWitnessMembership) {
  std::shared_ptr<const CompiledInstance> plan = instance().compiled();
  size_t occ_total = 0;
  for (uint32_t b = 0; b < plan->base_count(); ++b) {
    for (uint32_t slot = plan->occ_begin(b); slot < plan->occ_end(b);
         ++slot) {
      ++occ_total;
      if (slot + 1 < plan->occ_end(b)) {
        // Sorted by (tuple, witness), one entry per witness.
        EXPECT_LE(plan->occ_tuple(slot), plan->occ_tuple(slot + 1));
        if (plan->occ_tuple(slot) == plan->occ_tuple(slot + 1)) {
          EXPECT_LT(plan->occ_witness(slot), plan->occ_witness(slot + 1));
        }
      }
      uint32_t wid = plan->occ_witness(slot);
      EXPECT_EQ(plan->witness_owner(wid), plan->occ_tuple(slot));
      // The witness really contains this base.
      bool found = false;
      for (uint32_t m = plan->member_begin(wid); m < plan->member_end(wid);
           ++m) {
        if (plan->member_base(m) == b) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
  // Every witness membership appears exactly once per (base, witness) pair.
  size_t expected = 0;
  for (uint32_t w = 0; w < plan->witness_count(); ++w) {
    std::vector<uint32_t> members;
    for (uint32_t m = plan->member_begin(w); m < plan->member_end(w); ++m) {
      members.push_back(plan->member_base(m));
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    expected += members.size();
  }
  EXPECT_EQ(occ_total, expected);
}

TEST_F(PlanFig1Test, DeletionAndCandidateListsMirrorInstance) {
  std::shared_ptr<const CompiledInstance> plan = instance().compiled();
  const std::vector<ViewTupleId>& deletions = instance().deletion_tuples();
  ASSERT_EQ(plan->deletion_dense().size(), deletions.size());
  for (size_t i = 0; i < deletions.size(); ++i) {
    uint32_t dense = plan->deletion_dense()[i];
    EXPECT_EQ(plan->IdOf(dense), deletions[i]);
    EXPECT_EQ(plan->deletion_index(dense), i);
  }
  std::vector<TupleRef> candidates = instance().CandidateTuples();
  ASSERT_EQ(plan->candidate_bases().size(), candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(plan->base_ref(plan->candidate_bases()[i]), candidates[i]);
  }
}

TEST_F(PlanFig1Test, CompiledCacheSharedAndInvalidatedByMarks) {
  std::shared_ptr<const CompiledInstance> first = instance().compiled();
  // Cached: repeated calls hand out the same plan.
  EXPECT_EQ(first.get(), instance().compiled().get());

  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"Tom", "XML"}).ok());
  std::shared_ptr<const CompiledInstance> second = instance().compiled();
  EXPECT_NE(first.get(), second.get());
  // The old shared_ptr stays valid (readers in flight keep their snapshot)
  // while the new plan reflects the extra deletion.
  EXPECT_EQ(second->deletion_dense().size(),
            first->deletion_dense().size() + 1);

  ViewTupleId reweighted{0, 0};
  ASSERT_TRUE(instance().SetWeight(reweighted, 7.5).ok());
  std::shared_ptr<const CompiledInstance> third = instance().compiled();
  EXPECT_NE(second.get(), third.get());
  EXPECT_DOUBLE_EQ(third->weight(third->DenseOf(reweighted)), 7.5);
  EXPECT_DOUBLE_EQ(second->weight(second->DenseOf(reweighted)), 1.0);
}

// A larger key-preserving instance: the plan's aggregate shapes must line up
// with the instance on something beyond the hand-sized Fig. 1 example.
TEST(PlanPathSchemaTest, AggregateShapesMatch) {
  Rng rng(11);
  PathSchemaParams params;
  params.levels = 4;
  params.roots = 2;
  params.fanout = 2;
  params.deletion_fraction = 0.3;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  VseInstance& instance = *generated->instance;
  ASSERT_GT(instance.TotalDeletionTuples(), 0u);

  std::shared_ptr<const CompiledInstance> plan = instance.compiled();
  EXPECT_EQ(plan->tuple_count(), instance.TotalViewTuples());
  size_t witness_total = 0;
  for (size_t v = 0; v < instance.view_count(); ++v) {
    for (size_t t = 0; t < instance.view(v).size(); ++t) {
      witness_total += instance.view(v).tuple(t).witnesses.size();
    }
  }
  EXPECT_EQ(plan->witness_count(), witness_total);
  EXPECT_EQ(plan->candidate_bases().size(),
            instance.CandidateTuples().size());
}

// Round-trip over the fuzz families: a handful of seeds from each generator
// shape (random/path/star/hardness) through the full dense encoding.
TEST(PlanFuzzTest, DenseRoundTripOverFuzzSeeds) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Result<testing::FuzzCase> fuzz = testing::GenerateFuzzCase(seed);
    ASSERT_TRUE(fuzz.ok()) << fuzz.status().ToString();
    VseInstance& instance = *fuzz->generated.instance;
    std::shared_ptr<const CompiledInstance> plan = instance.compiled();
    ASSERT_EQ(plan->tuple_count(), instance.TotalViewTuples())
        << "seed " << seed;
    for (size_t v = 0; v < instance.view_count(); ++v) {
      for (size_t t = 0; t < instance.view(v).size(); ++t) {
        ViewTupleId id{v, t};
        uint32_t dense = plan->DenseOf(id);
        ASSERT_EQ(plan->IdOf(dense), id) << "seed " << seed;
        ASSERT_EQ(plan->is_deletion(dense),
                  instance.IsMarkedForDeletion(id))
            << "seed " << seed;
      }
    }
    for (uint32_t b = 0; b < plan->base_count(); ++b) {
      ASSERT_EQ(plan->FindBase(plan->base_ref(b)), b) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace delprop
