#include <gtest/gtest.h>

#include "applications/pareto.h"
#include "common/rng.h"
#include "solvers/exact_solver.h"
#include "solvers/source_side_effect_solver.h"
#include "workload/author_journal.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

TEST(ParetoTest, Fig1Frontier) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());
  Result<std::vector<ParetoPoint>> frontier =
      SourceViewParetoFrontier(instance, 6);
  ASSERT_TRUE(frontier.ok()) << frontier.status().ToString();
  ASSERT_FALSE(frontier->empty());
  // Two witnesses: the smallest feasible budget is 2, and cost 4 is already
  // the unconstrained optimum, so the frontier is the single point (2, 4).
  EXPECT_EQ(frontier->front().deletions, 2u);
  EXPECT_DOUBLE_EQ(frontier->front().side_effect, 4.0);
  EXPECT_EQ(frontier->size(), 1u);
}

TEST(ParetoTest, FrontierIsStrictlyDecreasing) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    Result<std::vector<ParetoPoint>> frontier =
        SourceViewParetoFrontier(instance, 8);
    if (!frontier.ok()) continue;  // needs more than 8 deletions
    for (size_t i = 0; i + 1 < frontier->size(); ++i) {
      EXPECT_LT((*frontier)[i].deletions, (*frontier)[i + 1].deletions);
      EXPECT_GT((*frontier)[i].side_effect, (*frontier)[i + 1].side_effect);
    }
    for (const ParetoPoint& point : *frontier) {
      EXPECT_TRUE(point.solution.Feasible());
      EXPECT_LE(point.solution.deletion.size(), point.deletions);
    }
  }
}

TEST(ParetoTest, EndpointsMatchTheTwoObjectives) {
  // The last frontier point's side-effect equals the unconstrained view
  // optimum; the first point's budget is the minimum-source-deletion size.
  Rng rng(6);
  for (int trial = 0; trial < 8; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    if (!instance.all_unique_witness()) continue;
    Result<std::vector<ParetoPoint>> frontier =
        SourceViewParetoFrontier(instance, 12);
    if (!frontier.ok()) continue;
    ExactSolver view_exact;
    Result<VseSolution> view_opt = view_exact.Solve(instance);
    ASSERT_TRUE(view_opt.ok());
    EXPECT_DOUBLE_EQ(frontier->back().side_effect, view_opt->Cost())
        << "trial " << trial;
    SourceSideEffectSolver source_exact(SourceSideEffectSolver::Mode::kExact);
    Result<VseSolution> source_opt = source_exact.Solve(instance);
    ASSERT_TRUE(source_opt.ok());
    EXPECT_EQ(frontier->front().deletions,
              source_opt->report.source_deletion_count)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace delprop
