#include <gtest/gtest.h>

#include "common/rng.h"
#include "ilp/ilp_solver.h"
#include "solvers/exact_solver.h"
#include "solvers/greedy_solver.h"
#include "solvers/scratch_pool.h"
#include "solvers/solver_registry.h"
#include "workload/author_journal.h"
#include "workload/random_workload.h"
#include "workload/trap_chain.h"

namespace delprop {
namespace {

TEST(IlpSolverTest, RegistryKnowsBothObjectives) {
  std::unique_ptr<VseSolver> standard = MakeSolver("ilp");
  ASSERT_NE(standard, nullptr);
  EXPECT_EQ(standard->name(), "ilp");
  EXPECT_EQ(standard->objective(), Objective::kStandard);
  std::unique_ptr<VseSolver> balanced = MakeSolver("ilp-balanced");
  ASSERT_NE(balanced, nullptr);
  EXPECT_EQ(balanced->name(), "ilp-balanced");
  EXPECT_EQ(balanced->objective(), Objective::kBalanced);
}

TEST(IlpSolverTest, Fig1MatchesExact) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());

  IlpSolver ilp;
  Result<VseSolution> solution = ilp.Solve(instance);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(solution->Feasible());
  EXPECT_TRUE(solution->gap.optimal);
  EXPECT_DOUBLE_EQ(solution->gap.lower_bound, solution->gap.upper_bound);
  EXPECT_DOUBLE_EQ(solution->Cost(), 4.0);  // the paper's Fig. 1 optimum
}

TEST(IlpSolverTest, EmptyDeltaVIsFree) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  IlpSolver ilp;
  Result<VseSolution> solution = ilp.Solve(*generated->instance);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->deletion.size(), 0u);
  EXPECT_TRUE(solution->gap.optimal);
  EXPECT_DOUBLE_EQ(solution->Cost(), 0.0);
}

TEST(IlpSolverTest, RandomSweepMatchesExactBothObjectives) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok()) << "seed " << seed;
    const VseInstance& instance = *generated->instance;

    ExactSolver exact;
    Result<VseSolution> optimal = exact.Solve(instance);
    IlpSolver ilp;
    Result<VseSolution> solution = ilp.Solve(instance);
    ASSERT_EQ(optimal.ok(), solution.ok()) << "seed " << seed;
    if (optimal.ok() && optimal->gap.optimal) {
      ASSERT_TRUE(solution->gap.optimal) << "seed " << seed;
      EXPECT_NEAR(solution->Cost(), optimal->Cost(), 1e-9)
          << "seed " << seed;
    }

    ExactBalancedSolver exact_balanced;
    Result<VseSolution> balanced_opt = exact_balanced.Solve(instance);
    IlpSolver ilp_balanced(Objective::kBalanced);
    Result<VseSolution> balanced = ilp_balanced.Solve(instance);
    ASSERT_TRUE(balanced_opt.ok()) << "seed " << seed;
    ASSERT_TRUE(balanced.ok()) << "seed " << seed;
    if (balanced_opt->gap.optimal) {
      ASSERT_TRUE(balanced->gap.optimal) << "seed " << seed;
      EXPECT_NEAR(balanced->BalancedCost(), balanced_opt->BalancedCost(),
                  1e-9)
          << "seed " << seed;
    }
  }
}

TEST(IlpSolverTest, TrapChainCertifiesOptimumGreedyCannotReach) {
  const size_t kGadgets = 16;
  Result<GeneratedVse> generated = MakeTrapChain(kGadgets);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  const VseInstance& instance = *generated->instance;

  GreedySolver greedy;
  Result<VseSolution> trapped = greedy.Solve(instance);
  ASSERT_TRUE(trapped.ok());
  EXPECT_NEAR(trapped->Cost(), 1.1 * kGadgets, 1e-9);

  IlpSolver ilp;
  Result<VseSolution> solution = ilp.Solve(instance);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(solution->Feasible());
  EXPECT_TRUE(solution->gap.optimal);
  EXPECT_NEAR(solution->Cost(), 1.0 * kGadgets, 1e-9);
  EXPECT_DOUBLE_EQ(solution->gap.RelativeGap(), 0.0);
  // Decomposition makes the search linear in the chain length: a handful of
  // nodes per gadget instead of one exponential tree.
  EXPECT_LE(solution->gap.nodes, 16 * kGadgets);
}

TEST(IlpSolverTest, TrapChainBalancedMatchesExact) {
  Result<GeneratedVse> generated = MakeTrapChain(3);
  ASSERT_TRUE(generated.ok());
  const VseInstance& instance = *generated->instance;
  ExactBalancedSolver exact;
  Result<VseSolution> optimal = exact.Solve(instance);
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(optimal->gap.optimal);
  IlpSolver ilp(Objective::kBalanced);
  Result<VseSolution> solution = ilp.Solve(instance);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->gap.optimal);
  EXPECT_NEAR(solution->BalancedCost(), optimal->BalancedCost(), 1e-9);
  // Per gadget: deleting U pays damage 1.0 against 2.0 of surviving ΔV.
  EXPECT_NEAR(solution->BalancedCost(), 3.0, 1e-9);
}

TEST(IlpSolverTest, NodeCountsAndSolutionsAreDeterministic) {
  Result<GeneratedVse> generated = MakeTrapChain(8);
  ASSERT_TRUE(generated.ok());
  const VseInstance& instance = *generated->instance;
  ScratchPool pool;
  IlpSolver first;
  Result<VseSolution> a = first.SolveWith(instance, &pool);
  IlpSolver second;
  Result<VseSolution> b = second.SolveWith(instance, &pool);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->gap.nodes, b->gap.nodes);
  EXPECT_DOUBLE_EQ(a->Cost(), b->Cost());
  EXPECT_EQ(a->deletion.Sorted(), b->deletion.Sorted());
  // And a third run through the pooled-scratch path on a random instance.
  Rng rng(7);
  RandomWorkloadParams params;
  Result<GeneratedVse> random = GenerateRandomWorkload(rng, params);
  ASSERT_TRUE(random.ok());
  IlpSolver third;
  Result<VseSolution> c = third.SolveWith(*random->instance, &pool);
  IlpSolver fourth;
  Result<VseSolution> d = fourth.SolveWith(*random->instance, &pool);
  ASSERT_EQ(c.ok(), d.ok());
  if (c.ok()) {
    EXPECT_EQ(c->gap.nodes, d->gap.nodes);
    EXPECT_EQ(c->deletion.Sorted(), d->deletion.Sorted());
  }
}

TEST(IlpSolverTest, ExhaustedBudgetReturnsWarmStartWithValidBound) {
  const size_t kGadgets = 10;
  Result<GeneratedVse> generated = MakeTrapChain(kGadgets);
  ASSERT_TRUE(generated.ok());
  IlpOptions options;
  options.node_budget = 0;  // abort at the very first search node
  IlpSolver ilp(Objective::kStandard, options);
  Result<VseSolution> solution = ilp.Solve(*generated->instance);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(solution->Feasible());
  EXPECT_TRUE(solution->gap.has_bound);
  EXPECT_FALSE(solution->gap.optimal);
  EXPECT_TRUE(solution->gap.budget_hit);
  // The incumbent is the greedy warm start (1.1 per gadget); the certified
  // lower bound is the root packing bound (0.4 per gadget).
  EXPECT_NEAR(solution->Cost(), 1.1 * kGadgets, 1e-9);
  EXPECT_DOUBLE_EQ(solution->gap.upper_bound, solution->Cost());
  EXPECT_NEAR(solution->gap.lower_bound, 0.4 * kGadgets, 1e-9);
  EXPECT_GT(solution->gap.RelativeGap(), 0.0);
}

TEST(IlpSolverTest, ZeroDeadlineReturnsFeasibleBestSoFar) {
  Result<GeneratedVse> generated = MakeTrapChain(6);
  ASSERT_TRUE(generated.ok());
  IlpOptions options;
  options.deadline_ms = 0.0;  // expires before the first search node
  IlpSolver ilp(Objective::kStandard, options);
  Result<VseSolution> solution = ilp.Solve(*generated->instance);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_TRUE(solution->Feasible());
  EXPECT_TRUE(solution->gap.has_bound);
  EXPECT_FALSE(solution->gap.optimal);
  EXPECT_TRUE(solution->gap.deadline_hit);
  EXPECT_LE(solution->gap.lower_bound, solution->gap.upper_bound);
  EXPECT_GE(solution->gap.lower_bound, 0.0);
  EXPECT_DOUBLE_EQ(solution->gap.upper_bound, solution->Cost());
}

}  // namespace
}  // namespace delprop
