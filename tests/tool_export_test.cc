#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/parser.h"
#include "tool/csv.h"
#include "tool/dot_export.h"
#include "workload/author_journal.h"
#include "workload/path_schema.h"

namespace delprop {
namespace {

// ---------------- DOT export ----------------

TEST(DotExportTest, LineageContainsMarkedAndBaseNodes) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(
      generated->instance->MarkForDeletionByValues(0, {"John", "XML"}).ok());
  std::string dot = LineageToDot(*generated->instance);
  EXPECT_NE(dot.find("digraph lineage"), std::string::npos);
  EXPECT_NE(dot.find("\"T1(John, TKDE)\""), std::string::npos);
  EXPECT_NE(dot.find("\"Q3(John, XML)\""), std::string::npos);
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos) << "ΔV marker";
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(DotExportTest, NodeDeclarationsAreEmittedInSortedOrder) {
  // Regression: base-tuple and relation nodes were emitted in
  // unordered_set iteration order, so the DOT text could differ across
  // platforms/runs. Node ids are t<relation>_<row> / r<relation> and must
  // now appear in ascending order.
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());

  std::string lineage = LineageToDot(*generated->instance);
  std::vector<std::pair<int, int>> bases;
  std::istringstream lineage_in(lineage);
  for (std::string line; std::getline(lineage_in, line);) {
    int rel = 0, row = 0, matched = -1;
    std::sscanf(line.c_str(), "  t%d_%d [shape=box%n", &rel, &row, &matched);
    if (matched > 0) bases.emplace_back(rel, row);
  }
  ASSERT_GT(bases.size(), 1u);
  EXPECT_TRUE(std::is_sorted(bases.begin(), bases.end()));

  std::string dual = DualHypergraphToDot(*generated->instance);
  std::vector<int> rels;
  std::istringstream dual_in(dual);
  for (std::string line; std::getline(dual_in, line);) {
    int rel = 0, matched = -1;
    std::sscanf(line.c_str(), "  r%d [label%n", &rel, &matched);
    if (matched > 0) rels.push_back(rel);
  }
  ASSERT_GT(rels.size(), 1u);
  EXPECT_TRUE(std::is_sorted(rels.begin(), rels.end()));
}

TEST(DotExportTest, DataForestHighlightsPivots) {
  Rng rng(7);
  PathSchemaParams params;
  params.levels = 3;
  params.roots = 2;
  params.fanout = 2;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  std::string dot = DataForestToDot(*generated->instance);
  EXPECT_NE(dot.find("graph data_forest"), std::string::npos);
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_1"), std::string::npos) << "two components";
  EXPECT_NE(dot.find("doublecircle"), std::string::npos) << "pivot markers";
  EXPECT_NE(dot.find(" -- "), std::string::npos);
}

TEST(DotExportTest, DualHypergraphColorsQueries) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  std::string dot = DualHypergraphToDot(*generated->instance);
  EXPECT_NE(dot.find("\"T1\""), std::string::npos);
  EXPECT_NE(dot.find("\"T2\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"Q3\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"Q4\""), std::string::npos);
}

TEST(DotExportTest, QuotesEscaped) {
  Database db;
  ASSERT_TRUE(db.AddRelation("R", 1, {0}).ok());
  ASSERT_TRUE(db.InsertText(0, {"va\"lue"}).ok());
  ValueDictionary& dict = db.dict();
  ConjunctiveQuery q("Q");
  VarId x = q.AddVariable("x");
  q.AddHeadTerm(Term::Variable(x));
  Atom atom;
  atom.relation = 0;
  atom.terms.push_back(Term::Variable(x));
  q.AddAtom(std::move(atom));
  (void)dict;
  std::vector<const ConjunctiveQuery*> qs = {&q};
  Result<VseInstance> instance = VseInstance::Create(db, qs);
  ASSERT_TRUE(instance.ok());
  std::string dot = LineageToDot(*instance);
  EXPECT_NE(dot.find("va\\\"lue"), std::string::npos);
}

// ---------------- CSV ----------------

TEST(CsvTest, ParseSimpleLine) {
  Result<std::vector<std::string>> fields = ParseCsvLine("a, b ,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedFields) {
  Result<std::vector<std::string>> fields =
      ParseCsvLine(R"("hello, world",plain,"with ""quotes""")");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[0], "hello, world");
  EXPECT_EQ((*fields)[1], "plain");
  EXPECT_EQ((*fields)[2], "with \"quotes\"");
}

TEST(CsvTest, ParseErrors) {
  EXPECT_FALSE(ParseCsvLine("\"unterminated").ok());
  EXPECT_FALSE(ParseCsvLine("\"closed\" junk, b").ok());
}

TEST(CsvTest, TrailingDelimiterGivesEmptyField) {
  Result<std::vector<std::string>> fields = ParseCsvLine("a,b,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[2], "");
}

TEST(CsvTest, LoadRelationWithHeaderAndKeys) {
  Database db;
  CsvLoadReport report;
  Result<RelationId> rel = LoadCsvRelation(db, "Authors",
                                           "AuName*,Journal*\n"
                                           "Joe,TKDE\n"
                                           "John,TKDE\r\n"
                                           "John,TODS\n",
                                           {}, &report);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(report.rows_inserted, 3u);
  EXPECT_EQ(db.relation(*rel).row_count(), 3u);
  const RelationSchema& schema = db.schema().relation(*rel);
  EXPECT_EQ(schema.attribute_names[0], "AuName");
  EXPECT_EQ(schema.key_positions, (std::vector<size_t>{0, 1}));
}

TEST(CsvTest, KeyConflictPolicies) {
  const char* csv =
      "id*,payload\n"
      "1,a\n"
      "1,b\n";
  {
    Database db;
    EXPECT_EQ(LoadCsvRelation(db, "R", csv).status().code(),
              StatusCode::kKeyViolation);
  }
  {
    Database db;
    CsvOptions options;
    options.on_key_conflict = CsvOptions::OnKeyConflict::kSkip;
    CsvLoadReport report;
    Result<RelationId> rel = LoadCsvRelation(db, "R", csv, options, &report);
    ASSERT_TRUE(rel.ok());
    EXPECT_EQ(report.rows_inserted, 1u);
    EXPECT_EQ(report.rows_skipped, 1u);
  }
}

TEST(CsvTest, AppendRows) {
  Database db;
  Result<RelationId> rel = LoadCsvRelation(db, "R", "id*,v\n1,a\n");
  ASSERT_TRUE(rel.ok());
  Result<CsvLoadReport> report = AppendCsvRows(db, *rel, "2,b\n3,c\n");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_inserted, 2u);
  EXPECT_EQ(db.relation(*rel).row_count(), 3u);
  EXPECT_FALSE(AppendCsvRows(db, 99, "4,d\n").ok());
}

TEST(CsvTest, HeaderWithoutKeyRejected) {
  Database db;
  EXPECT_FALSE(LoadCsvRelation(db, "R", "a,b\n1,2\n").ok());
}

TEST(CsvTest, CustomDelimiter) {
  Database db;
  CsvOptions options;
  options.delimiter = ';';
  Result<RelationId> rel =
      LoadCsvRelation(db, "R", "id*;v\n1;hello, with comma\n", options);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(db.dict().Text(db.relation(*rel).row(0)[1]), "hello, with comma");
}

TEST(CsvTest, EndToEndWithQueries) {
  // CSV-loaded data feeds the normal pipeline.
  Database db;
  ASSERT_TRUE(LoadCsvRelation(db, "T1",
                              "AuName*,Journal*\n"
                              "Joe,TKDE\nJohn,TKDE\nJohn,TODS\n")
                  .ok());
  ASSERT_TRUE(LoadCsvRelation(db, "T2",
                              "Journal*,Topic*\n"
                              "TKDE,XML\nTODS,XML\n")
                  .ok());
  Result<ConjunctiveQuery> q = ParseQuery(
      "Q(x, y, z) :- T1(x, y), T2(y, z)", db.schema(), db.dict());
  ASSERT_TRUE(q.ok());
  std::vector<const ConjunctiveQuery*> qs = {&*q};
  Result<VseInstance> instance = VseInstance::Create(db, qs);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->TotalViewTuples(), 3u);
}

}  // namespace
}  // namespace delprop
