#include <gtest/gtest.h>

#include "query/evaluator.h"
#include "query/parser.h"
#include "workload/author_journal.h"

namespace delprop {
namespace {

class EvalStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<GeneratedVse> generated = BuildFig1Example();
    ASSERT_TRUE(generated.ok());
    generated_ = std::move(*generated);
  }
  GeneratedVse generated_;
};

TEST_F(EvalStatsTest, CountersFilled) {
  const Database& db = *generated_.database;
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  Result<View> view = Evaluate(db, *generated_.queries[0], options);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(stats.atom_order.size(), 2u);
  EXPECT_EQ(stats.matches, 7u) << "7 join matches collapse to 6 Q3 answers";
  EXPECT_GT(stats.rows_scanned, 0u);
  EXPECT_GE(stats.indexes_built, 1u);
}

TEST_F(EvalStatsTest, ConstantSelectionOrdersSelectiveAtomFirst) {
  const Database& db = *generated_.database;
  ValueDictionary& dict = generated_.database->dict();
  Result<ConjunctiveQuery> q = ParseQuery(
      "Q(x, z, w) :- T1(x, y), T2(y, z, w), T1('Tom', y)", db.schema(), dict);
  ASSERT_TRUE(q.ok());
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  Result<View> view = Evaluate(db, *q, options);
  ASSERT_TRUE(view.ok());
  // The constant-bound atom (index 2) must be placed first by the greedy.
  ASSERT_EQ(stats.atom_order.size(), 3u);
  EXPECT_EQ(stats.atom_order[0], 2u);
}

TEST_F(EvalStatsTest, ExplainPlanRendersSteps) {
  const Database& db = *generated_.database;
  std::string plan = ExplainPlan(db, *generated_.queries[0]);
  EXPECT_NE(plan.find("plan for Q3"), std::string::npos);
  EXPECT_NE(plan.find("1. "), std::string::npos);
  EXPECT_NE(plan.find("2. "), std::string::npos);
  // The first atom has nothing bound (full scan); the second joins on y.
  EXPECT_NE(plan.find("full scan"), std::string::npos);
  EXPECT_NE(plan.find("index lookup"), std::string::npos);
}

TEST_F(EvalStatsTest, MaskReducesWork) {
  const Database& db = *generated_.database;
  EvalStats full_stats, masked_stats;
  {
    EvalOptions options;
    options.stats = &full_stats;
    ASSERT_TRUE(Evaluate(db, *generated_.queries[1], options).ok());
  }
  DeletionSet mask;
  // Delete all of T1.
  RelationId t1 = *db.schema().FindRelation("T1");
  for (uint32_t row = 0; row < db.relation(t1).row_count(); ++row) {
    mask.Insert({t1, row});
  }
  {
    EvalOptions options;
    options.stats = &masked_stats;
    options.mask = &mask;
    Result<View> view = Evaluate(db, *generated_.queries[1], options);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->size(), 0u);
  }
  EXPECT_EQ(masked_stats.matches, 0u);
  EXPECT_LE(masked_stats.rows_scanned, full_stats.rows_scanned);
}

}  // namespace
}  // namespace delprop
