#include <gtest/gtest.h>

#include "query/evaluator.h"
#include "query/parser.h"
#include "runtime/index_cache.h"
#include "workload/author_journal.h"

namespace delprop {
namespace {

class EvalStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<GeneratedVse> generated = BuildFig1Example();
    ASSERT_TRUE(generated.ok());
    generated_ = std::move(*generated);
  }
  GeneratedVse generated_;
};

TEST_F(EvalStatsTest, CountersFilled) {
  const Database& db = *generated_.database;
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  Result<View> view = Evaluate(db, *generated_.queries[0], options);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(stats.atom_order.size(), 2u);
  EXPECT_EQ(stats.matches, 7u) << "7 join matches collapse to 6 Q3 answers";
  EXPECT_GT(stats.rows_scanned, 0u);
  EXPECT_GE(stats.indexes_built, 1u);
}

TEST_F(EvalStatsTest, ConstantSelectionOrdersSelectiveAtomFirst) {
  const Database& db = *generated_.database;
  ValueDictionary& dict = generated_.database->dict();
  Result<ConjunctiveQuery> q = ParseQuery(
      "Q(x, z, w) :- T1(x, y), T2(y, z, w), T1('Tom', y)", db.schema(), dict);
  ASSERT_TRUE(q.ok());
  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  Result<View> view = Evaluate(db, *q, options);
  ASSERT_TRUE(view.ok());
  // The constant-bound atom (index 2) must be placed first by the greedy.
  ASSERT_EQ(stats.atom_order.size(), 3u);
  EXPECT_EQ(stats.atom_order[0], 2u);
}

TEST_F(EvalStatsTest, ExplainPlanRendersSteps) {
  const Database& db = *generated_.database;
  std::string plan = ExplainPlan(db, *generated_.queries[0]);
  EXPECT_NE(plan.find("plan for Q3"), std::string::npos);
  EXPECT_NE(plan.find("1. "), std::string::npos);
  EXPECT_NE(plan.find("2. "), std::string::npos);
  // The first atom has nothing bound (full scan); the second joins on y.
  EXPECT_NE(plan.find("full scan"), std::string::npos);
  EXPECT_NE(plan.find("index lookup"), std::string::npos);
}

TEST_F(EvalStatsTest, MaskReducesWork) {
  const Database& db = *generated_.database;
  EvalStats full_stats, masked_stats;
  {
    EvalOptions options;
    options.stats = &full_stats;
    ASSERT_TRUE(Evaluate(db, *generated_.queries[1], options).ok());
  }
  DeletionSet mask;
  // Delete all of T1.
  RelationId t1 = *db.schema().FindRelation("T1");
  for (uint32_t row = 0; row < db.relation(t1).row_count(); ++row) {
    mask.Insert({t1, row});
  }
  {
    EvalOptions options;
    options.stats = &masked_stats;
    options.mask = &mask;
    Result<View> view = Evaluate(db, *generated_.queries[1], options);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->size(), 0u);
  }
  EXPECT_EQ(masked_stats.matches, 0u);
  EXPECT_LE(masked_stats.rows_scanned, full_stats.rows_scanned);
}

// Regression for the eager index build in Descend: with several positions of
// one atom bound (here the repeated T2 atom binds y, z, and w), the old code
// built one index per bound position; the new code builds at most one and
// prefers indexes that already exist. The repeated atom adds no new matches,
// so the view must equal the two-atom query's result.
TEST_F(EvalStatsTest, MultiBoundPositionBuildsAtMostOneIndexPerAtom) {
  const Database& db = *generated_.database;
  ValueDictionary& dict = generated_.database->dict();
  Result<ConjunctiveQuery> repeated = ParseQuery(
      "QR(x, z, w) :- T1(x, y), T2(y, z, w), T2(y, z, w)", db.schema(), dict);
  ASSERT_TRUE(repeated.ok());
  Result<ConjunctiveQuery> plain =
      ParseQuery("QP(x, z, w) :- T1(x, y), T2(y, z, w)", db.schema(), dict);
  ASSERT_TRUE(plain.ok());

  EvalStats stats;
  EvalOptions options;
  options.stats = &stats;
  Result<View> view = Evaluate(db, *repeated, options);
  ASSERT_TRUE(view.ok());
  // At most one index per non-leading atom: one for the repeated T2 atom
  // (which has three bound positions — the old eager code built one index
  // for EACH, four in total here) and one for T1's join on y.
  EXPECT_EQ(stats.indexes_built, 2u);

  EvalStats plain_stats;
  EvalOptions plain_options;
  plain_options.stats = &plain_stats;
  Result<View> expect = Evaluate(db, *plain, plain_options);
  ASSERT_TRUE(expect.ok());
  // The repeated fully-bound atom contributes exactly one extra index.
  EXPECT_EQ(stats.indexes_built, plain_stats.indexes_built + 1);
  ASSERT_EQ(view->size(), expect->size());
  for (size_t t = 0; t < view->size(); ++t) {
    EXPECT_EQ(view->tuple(t).values, expect->tuple(t).values)
        << "probe-position choice changed the emitted view";
  }
}

TEST_F(EvalStatsTest, IndexCacheColdThenWarmCounters) {
  const Database& db = *generated_.database;
  IndexCache cache;
  EvalStats cold, warm;
  for (int pass = 0; pass < 2; ++pass) {
    EvalOptions options;
    options.index_cache = &cache;
    options.stats = pass == 0 ? &cold : &warm;
    for (const auto& query : generated_.queries) {
      ASSERT_TRUE(Evaluate(db, *query, options).ok());
    }
  }
  EXPECT_GT(cold.index_cache_misses, 0u);
  EXPECT_EQ(cold.index_cache_misses, cold.indexes_built);
  EXPECT_EQ(warm.index_cache_misses, 0u);
  EXPECT_EQ(warm.indexes_built, 0u) << "warm pass rebuilt an index";
  EXPECT_GE(warm.index_cache_hits, cold.index_cache_misses);
  // Cache-level counters agree with the per-evaluation stats.
  EXPECT_EQ(cache.stats().misses, cold.index_cache_misses);

  // An uncached evaluation leaves the cache counters untouched.
  EvalStats uncached;
  EvalOptions options;
  options.stats = &uncached;
  ASSERT_TRUE(Evaluate(db, *generated_.queries[0], options).ok());
  EXPECT_EQ(uncached.index_cache_hits, 0u);
  EXPECT_EQ(uncached.index_cache_misses, 0u);
  EXPECT_GT(uncached.indexes_built, 0u);
}

}  // namespace
}  // namespace delprop
