#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/deletion_set.h"

namespace delprop {
namespace {

TEST(ValueDictionaryTest, InternIsIdempotent) {
  ValueDictionary dict;
  ValueId a = dict.Intern("alpha");
  ValueId b = dict.Intern("alpha");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.Text(a), "alpha");
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictionaryTest, DistinctTextsDistinctIds) {
  ValueDictionary dict;
  EXPECT_NE(dict.Intern("a"), dict.Intern("b"));
}

TEST(ValueDictionaryTest, FindDoesNotIntern) {
  ValueDictionary dict;
  EXPECT_FALSE(dict.Find("ghost").has_value());
  EXPECT_EQ(dict.size(), 0u);
  ValueId a = dict.Intern("real");
  ASSERT_TRUE(dict.Find("real").has_value());
  EXPECT_EQ(*dict.Find("real"), a);
}

TEST(ValueDictionaryTest, FreshValuesAreDistinct) {
  ValueDictionary dict;
  ValueId a = dict.FreshValue();
  ValueId b = dict.FreshValue();
  EXPECT_NE(a, b);
  EXPECT_NE(dict.Text(a), dict.Text(b));
}

TEST(ValueDictionaryTest, InternIntMatchesDecimalText) {
  ValueDictionary dict;
  EXPECT_EQ(dict.InternInt(42), dict.Intern("42"));
}

TEST(SchemaTest, AddAndFindRelation) {
  Schema schema;
  Result<RelationId> id = schema.AddRelation("T", 3, {0});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(schema.relation(*id).name, "T");
  EXPECT_EQ(schema.relation(*id).arity, 3u);
  ASSERT_TRUE(schema.FindRelation("T").has_value());
  EXPECT_EQ(*schema.FindRelation("T"), *id);
  EXPECT_FALSE(schema.FindRelation("U").has_value());
}

TEST(SchemaTest, RejectsBadDeclarations) {
  Schema schema;
  EXPECT_FALSE(schema.AddRelation("Z", 0, {0}).ok()) << "zero arity";
  EXPECT_FALSE(schema.AddRelation("K", 2, {}).ok()) << "empty key";
  EXPECT_FALSE(schema.AddRelation("O", 2, {2}).ok()) << "key out of range";
  EXPECT_FALSE(schema.AddRelation("D", 2, {0, 0}).ok()) << "duplicate key pos";
  ASSERT_TRUE(schema.AddRelation("T", 2, {0}).ok());
  EXPECT_EQ(schema.AddRelation("T", 2, {0}).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, IsKeyPosition) {
  Schema schema;
  Result<RelationId> id = schema.AddRelation("T", 3, {2, 0});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(schema.relation(*id).IsKeyPosition(0));
  EXPECT_FALSE(schema.relation(*id).IsKeyPosition(1));
  EXPECT_TRUE(schema.relation(*id).IsKeyPosition(2));
}

TEST(DatabaseTest, InsertAndRetrieve) {
  Database db;
  Result<RelationId> rel = db.AddRelation("T", 2, {0});
  ASSERT_TRUE(rel.ok());
  Result<TupleRef> ref = db.InsertText(*rel, {"a", "b"});
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(db.RenderTuple(*ref), "T(a, b)");
  EXPECT_EQ(db.total_tuple_count(), 1u);
}

TEST(DatabaseTest, KeyViolationRejected) {
  Database db;
  Result<RelationId> rel = db.AddRelation("T", 2, {0});
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(db.InsertText(*rel, {"a", "b"}).ok());
  Result<TupleRef> dup = db.InsertText(*rel, {"a", "c"});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kKeyViolation);
  // Distinct key is fine.
  EXPECT_TRUE(db.InsertText(*rel, {"x", "b"}).ok());
}

TEST(DatabaseTest, CompositeKeyAllowsSharedPrefix) {
  Database db;
  Result<RelationId> rel = db.AddRelation("T", 3, {0, 1});
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(db.InsertText(*rel, {"a", "b", "1"}).ok());
  EXPECT_TRUE(db.InsertText(*rel, {"a", "c", "2"}).ok());
  EXPECT_FALSE(db.InsertText(*rel, {"a", "b", "3"}).ok());
}

TEST(DatabaseTest, ArityMismatchRejected) {
  Database db;
  Result<RelationId> rel = db.AddRelation("T", 2, {0});
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(db.InsertText(*rel, {"only-one"}).ok());
}

TEST(DatabaseTest, FindByKey) {
  Database db;
  Result<RelationId> rel = db.AddRelation("T", 2, {0});
  ASSERT_TRUE(rel.ok());
  Result<TupleRef> ref = db.InsertText(*rel, {"k", "v"});
  ASSERT_TRUE(ref.ok());
  Tuple key = {*db.dict().Find("k")};
  ASSERT_TRUE(db.relation(*rel).FindByKey(key).has_value());
  EXPECT_EQ(*db.relation(*rel).FindByKey(key), ref->row);
}

TEST(DeletionSetTest, InsertEraseContains) {
  DeletionSet set;
  TupleRef a{0, 1}, b{1, 0};
  EXPECT_TRUE(set.Insert(a));
  EXPECT_FALSE(set.Insert(a)) << "duplicate insert";
  EXPECT_TRUE(set.Contains(a));
  EXPECT_FALSE(set.Contains(b));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Erase(a));
  EXPECT_FALSE(set.Erase(a));
  EXPECT_TRUE(set.empty());
}

TEST(DeletionSetTest, SortedIsDeterministic) {
  DeletionSet set;
  set.Insert({1, 5});
  set.Insert({0, 9});
  set.Insert({1, 2});
  std::vector<TupleRef> sorted = set.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_TRUE(sorted[0] == (TupleRef{0, 9}));
  EXPECT_TRUE(sorted[1] == (TupleRef{1, 2}));
  EXPECT_TRUE(sorted[2] == (TupleRef{1, 5}));
}

}  // namespace
}  // namespace delprop
