#include <gtest/gtest.h>

#include "query/parser.h"

namespace delprop {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("T1", 2, {0}).ok());
    ASSERT_TRUE(schema_.AddRelation("T2", 3, {0, 1}).ok());
  }
  Schema schema_;
  ValueDictionary dict_;
};

TEST_F(ParserTest, ParsesFig1StyleQuery) {
  Result<ConjunctiveQuery> q =
      ParseQuery("Q3(x, z) :- T1(x, y), T2(y, z, w)", schema_, dict_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->name(), "Q3");
  EXPECT_EQ(q->arity(), 2u);
  EXPECT_EQ(q->atoms().size(), 2u);
  EXPECT_EQ(q->variable_count(), 4u);
  EXPECT_EQ(q->ToString(schema_, dict_), "Q3(x, z) :- T1(x, y), T2(y, z, w)");
}

TEST_F(ParserTest, ParsesConstants) {
  Result<ConjunctiveQuery> q =
      ParseQuery("Q(x) :- T2('TKDE', x, 30)", schema_, dict_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const Atom& atom = q->atoms()[0];
  EXPECT_TRUE(atom.terms[0].is_constant());
  EXPECT_EQ(dict_.Text(atom.terms[0].id), "TKDE");
  EXPECT_TRUE(atom.terms[1].is_variable());
  EXPECT_TRUE(atom.terms[2].is_constant());
  EXPECT_EQ(dict_.Text(atom.terms[2].id), "30");
}

TEST_F(ParserTest, RepeatedHeadVariablesShareIds) {
  Result<ConjunctiveQuery> q =
      ParseQuery("Q(y, y) :- T1(y, x)", schema_, dict_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->head()[0].id, q->head()[1].id);
}

TEST_F(ParserTest, SelfJoinAllowed) {
  Result<ConjunctiveQuery> q =
      ParseQuery("Q(a, b, c) :- T1(a, b), T1(b, c)", schema_, dict_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms().size(), 2u);
  EXPECT_EQ(q->atoms()[0].relation, q->atoms()[1].relation);
}

TEST_F(ParserTest, RejectsUndeclaredRelation) {
  Result<ConjunctiveQuery> q = ParseQuery("Q(x) :- Nope(x)", schema_, dict_);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(ParserTest, RejectsArityMismatch) {
  EXPECT_FALSE(ParseQuery("Q(x) :- T1(x)", schema_, dict_).ok());
  EXPECT_FALSE(ParseQuery("Q(x) :- T1(x, y, z)", schema_, dict_).ok());
}

TEST_F(ParserTest, RejectsUnsafeHead) {
  // Head variable q does not occur in the body.
  Result<ConjunctiveQuery> q = ParseQuery("Q(q) :- T1(x, y)", schema_, dict_);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(ParseQuery("Q(x) : T1(x, y)", schema_, dict_).ok());
  EXPECT_FALSE(ParseQuery("Q(x :- T1(x, y)", schema_, dict_).ok());
  EXPECT_FALSE(ParseQuery("Q(x) :- T1(x, y) trailing", schema_, dict_).ok());
  EXPECT_FALSE(ParseQuery("Q(x) :- T1('unterminated, y)", schema_, dict_).ok());
  EXPECT_FALSE(ParseQuery("", schema_, dict_).ok());
}

TEST_F(ParserTest, NegativeIntegerConstant) {
  Result<ConjunctiveQuery> q =
      ParseQuery("Q(x, y) :- T2(x, y, -5)", schema_, dict_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(dict_.Text(q->atoms()[0].terms[2].id), "-5");
}

}  // namespace
}  // namespace delprop
