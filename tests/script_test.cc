#include <gtest/gtest.h>

#include "tool/script.h"

namespace delprop {
namespace {

constexpr const char* kFig1Setup = R"(
# Fig. 1 of the paper
relation T1(AuName*, Journal*)
relation T2(Journal*, Topic*, NumPapers)
insert T1(Joe, TKDE)
insert T1(John, TKDE)
insert T1(Tom, TKDE)
insert T1(John, TODS)
insert T2(TKDE, XML, 30)
insert T2(TKDE, CUBE, 30)
insert T2(TODS, XML, 30)
query Q3(x, z) :- T1(x, y), T2(y, z, w)
query Q4(x, y, z) :- T1(x, y), T2(y, z, w)
)";

TEST(ScriptTest, Fig1EndToEnd) {
  ScriptSession session;
  std::string out;
  Status status = session.Run(kFig1Setup, &out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_TRUE(session.Run("views", &out).ok());
  EXPECT_NE(out.find("Q3(John, XML)"), std::string::npos);
  EXPECT_NE(out.find("Q4(John, TODS, XML)"), std::string::npos);

  out.clear();
  ASSERT_TRUE(session.Run("delete Q3(John, XML)\nsolve exact", &out).ok())
      << out;
  EXPECT_NE(out.find("eliminates all of ΔV: yes"), std::string::npos);
  EXPECT_NE(out.find("view side-effect: 4"), std::string::npos);
}

TEST(ScriptTest, ExplainShowsWitnesses) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  out.clear();
  ASSERT_TRUE(session.Run("explain Q3(John, XML)", &out).ok()) << out;
  EXPECT_NE(out.find("2 witness(es)"), std::string::npos);
  EXPECT_NE(out.find("T1(John, TKDE)"), std::string::npos);
  EXPECT_NE(out.find("T2(TODS, XML, 30)"), std::string::npos);
}

TEST(ScriptTest, ClassifyReportsLandscape) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  out.clear();
  ASSERT_TRUE(session.Run("classify", &out).ok());
  EXPECT_NE(out.find("Q4: "), std::string::npos);
  EXPECT_NE(out.find("key-preserving"), std::string::npos);
  EXPECT_NE(out.find("recommended solver"), std::string::npos);
}

TEST(ScriptTest, WeightChangesOptimum) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  // Make the CUBE collateral expensive and re-solve: the optimum moves to a
  // solution avoiding (John, TKDE) if possible — cost must reflect weights.
  ASSERT_TRUE(session
                  .Run("delete Q3(John, XML)\n"
                       "weight Q3(John, CUBE) 100\n"
                       "solve exact",
                       &out)
                  .ok())
      << out;
  // Any feasible solution kills Q3(John, CUBE) (both of John's T1 rows or
  // (John,TKDE)+TODS-XML hit it), so weighted cost >= 100... unless the
  // solver uses TKDE-XML + TODS-XML (killing Joe/Tom XML instead).
  EXPECT_NE(out.find("solver exact"), std::string::npos);
  // Extract the weighted side-effect number: must avoid the 100-weight tuple.
  size_t pos = out.find("view side-effect: ");
  ASSERT_NE(pos, std::string::npos);
  double cost = std::stod(out.substr(pos + 18));
  EXPECT_LT(cost, 100.0) << "optimum must route around the heavy tuple";
}

TEST(ScriptTest, PhaseViolationsRejected) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  ASSERT_TRUE(session.Run("views", &out).ok());  // materializes
  EXPECT_EQ(session.Execute("insert T1(Zed, TODS)", &out).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Execute("relation T9(a*)", &out).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Execute("query Q9(x, y) :- T1(x, y)", &out).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ScriptTest, ErrorsCarryLineNumbers) {
  ScriptSession session;
  std::string out;
  Status status = session.Run("relation T1(a*, b)\nbogus command", &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(ScriptTest, UnknownSolverListsKnownOnes) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  ASSERT_TRUE(session.Run("delete Q3(John, XML)", &out).ok());
  Status status = session.Execute("solve nope", &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("rbsc-lowdeg"), std::string::npos);
}

TEST(ScriptTest, RelationNeedsKey) {
  ScriptSession session;
  std::string out;
  EXPECT_EQ(session.Execute("relation NoKey(a, b)", &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ScriptTest, CommentsAndBlankLinesIgnored) {
  ScriptSession session;
  std::string out;
  EXPECT_TRUE(session.Run("# just a comment\n\n   \n", &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ScriptTest, ReportRepeatsLastSolve) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  EXPECT_EQ(session.Execute("report", &out).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Run("delete Q3(John, XML)\nsolve greedy", &out).ok());
  out.clear();
  ASSERT_TRUE(session.Execute("report", &out).ok());
  EXPECT_NE(out.find("solver greedy"), std::string::npos);
}

TEST(ScriptTest, CertificatesCommand) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  out.clear();
  ASSERT_TRUE(session.Run("certificates Q3(John, XML)", &out).ok()) << out;
  EXPECT_NE(out.find("provenance: "), std::string::npos);
  EXPECT_NE(out.find(" + "), std::string::npos) << "two witnesses";
  EXPECT_NE(out.find("deletion certificates:"), std::string::npos);
  EXPECT_NE(out.find("{T1(John, TKDE), T1(John, TODS)}"), std::string::npos);
}

TEST(ScriptTest, PlanCommand) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  out.clear();
  ASSERT_TRUE(session.Run("plan Q3", &out).ok());
  EXPECT_NE(out.find("plan for Q3"), std::string::npos);
  EXPECT_EQ(session.Execute("plan Nope", &out).code(), StatusCode::kNotFound);
}

TEST(ScriptTest, DotCommands) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  out.clear();
  ASSERT_TRUE(session.Run("dot lineage", &out).ok());
  EXPECT_NE(out.find("digraph lineage"), std::string::npos);
  out.clear();
  ASSERT_TRUE(session.Run("dot dual", &out).ok());
  EXPECT_NE(out.find("graph dual_hypergraph"), std::string::npos);
  EXPECT_EQ(session.Execute("dot nonsense", &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ScriptTest, SaveRoundTrips) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  ASSERT_TRUE(session.Run("delete Q3(John, XML)", &out).ok());
  std::string saved;
  ASSERT_TRUE(session.Execute("save", &saved).ok());
  // Replaying the saved script yields the same solve outcome.
  ScriptSession replay;
  std::string replay_out;
  ASSERT_TRUE(replay.Run(saved, &replay_out).ok()) << replay_out;
  ASSERT_TRUE(replay.Run("solve exact", &replay_out).ok());
  EXPECT_NE(replay_out.find("view side-effect: 4"), std::string::npos);
}

TEST(ScriptTest, DescribeCommand) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run(kFig1Setup, &out).ok());
  out.clear();
  ASSERT_TRUE(session.Run("describe", &out).ok());
  EXPECT_NE(out.find("2 views"), std::string::npos);
  EXPECT_NE(out.find("key preserving: no"), std::string::npos);
  EXPECT_NE(out.find("recommended solver:"), std::string::npos);
}

TEST(ScriptTest, DuplicateQueryNameRejected) {
  ScriptSession session;
  std::string out;
  ASSERT_TRUE(session.Run("relation E(a*, b*)\ninsert E(x, y)", &out).ok());
  ASSERT_TRUE(session.Execute("query Q(a, b) :- E(a, b)", &out).ok());
  EXPECT_EQ(session.Execute("query Q(b, a) :- E(a, b)", &out).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace delprop
