#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/evaluator.h"
#include "solvers/exact_solver.h"
#include "tool/script.h"
#include "tool/serialize.h"
#include "workload/author_journal.h"
#include "workload/path_schema.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

// Round trip: serialize an instance to the script language, replay it, and
// compare structure + optimal cost.
void ExpectRoundTrip(const VseInstance& original) {
  std::string script = SerializeToScript(original);
  ScriptSession session;
  std::string out;
  Status status = session.Run(script, &out);
  ASSERT_TRUE(status.ok()) << status.ToString() << "\nscript:\n" << script;
  // Force materialization via a views command.
  ASSERT_TRUE(session.Run("views", &out).ok());
  const VseInstance* replayed = session.instance();
  ASSERT_NE(replayed, nullptr);

  EXPECT_EQ(replayed->view_count(), original.view_count());
  EXPECT_EQ(replayed->TotalViewTuples(), original.TotalViewTuples());
  EXPECT_EQ(replayed->TotalDeletionTuples(),
            original.TotalDeletionTuples());
  EXPECT_EQ(replayed->all_key_preserving(), original.all_key_preserving());
  EXPECT_EQ(replayed->all_unique_witness(), original.all_unique_witness());
  for (size_t v = 0; v < original.view_count(); ++v) {
    EXPECT_EQ(replayed->view(v).size(), original.view(v).size()) << v;
  }

  if (original.TotalDeletionTuples() > 0) {
    ExactSolver exact;
    Result<VseSolution> a = exact.Solve(original);
    Result<VseSolution> b = exact.Solve(*replayed);
    if (a.ok() && b.ok()) {
      EXPECT_DOUBLE_EQ(a->Cost(), b->Cost());
      EXPECT_DOUBLE_EQ(a->BalancedCost(), b->BalancedCost());
    }
  }
}

TEST(SerializeTest, Fig1RoundTrip) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(
      generated->instance->MarkForDeletionByValues(0, {"John", "XML"}).ok());
  ExpectRoundTrip(*generated->instance);
}

TEST(SerializeTest, WeightsSurvive) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_TRUE(instance.MarkForDeletionByValues(0, {"John", "XML"}).ok());
  ASSERT_TRUE(instance.SetWeight(ViewTupleId{0, 0}, 7.5).ok());
  std::string script = SerializeToScript(instance);
  EXPECT_NE(script.find("weight "), std::string::npos);
  EXPECT_NE(script.find("7.5"), std::string::npos);
  ExpectRoundTrip(instance);
}

TEST(SerializeTest, PathSchemaRoundTrip) {
  Rng rng(123);
  PathSchemaParams params;
  params.levels = 3;
  params.roots = 2;
  params.fanout = 2;
  params.deletion_fraction = 0.3;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  ExpectRoundTrip(*generated->instance);
}

TEST(SerializeTest, RandomWorkloadRoundTrips) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 7;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    ExpectRoundTrip(*generated->instance);
  }
}

// Load-time witness validation: a view materialized elsewhere (the
// deserialization path CreateFromMaterializedViews serves) may carry broken
// provenance. The constructor must reject it with InvalidArgument naming the
// offending view and tuple, instead of letting solvers trip over it later.
TEST(SerializeTest, LoadRejectsEmptyWitness) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  const Database& db = *generated->database;
  const ConjunctiveQuery& query = *generated->queries[0];

  // A healthy materialized view loads fine and matches Create().
  Result<View> good = Evaluate(db, query);
  ASSERT_TRUE(good.ok());
  std::vector<View> views;
  views.push_back(std::move(*good));
  Result<VseInstance> loaded =
      VseInstance::CreateFromMaterializedViews(db, {&query}, std::move(views));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->TotalViewTuples(),
            generated->instance->view(0).size());

  // The same view with one empty witness must be rejected, and the error
  // must say which tuple is broken.
  Result<View> tampered = Evaluate(db, query);
  ASSERT_TRUE(tampered.ok());
  size_t index = tampered->AddMatch(tampered->tuple(0).values, Witness{});
  ASSERT_EQ(index, 0u) << "tamper should extend an existing tuple";
  std::vector<View> bad_views;
  bad_views.push_back(std::move(*tampered));
  Result<VseInstance> rejected = VseInstance::CreateFromMaterializedViews(
      db, {&query}, std::move(bad_views));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("view 0 tuple 0"),
            std::string::npos)
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().message().find("empty witness"),
            std::string::npos)
      << rejected.status().ToString();

  // Mismatched query/view counts are caught before witness indexing.
  Result<VseInstance> mismatched =
      VseInstance::CreateFromMaterializedViews(db, {&query}, {});
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ScriptContainsAllSections) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(
      generated->instance->MarkForDeletionByValues(0, {"John", "XML"}).ok());
  std::string script = SerializeToScript(*generated->instance);
  EXPECT_NE(script.find("relation T1(AuName*, Journal*)"), std::string::npos);
  EXPECT_NE(script.find("insert T1(John, TKDE)"), std::string::npos);
  EXPECT_NE(script.find("query Q3(x, z) :- T1(x, y), T2(y, z, w)"),
            std::string::npos);
  EXPECT_NE(script.find("delete Q3(John, XML)"), std::string::npos);
}

}  // namespace
}  // namespace delprop
