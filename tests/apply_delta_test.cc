#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dp/base_delta.h"
#include "dp/vse_instance.h"
#include "plan/compiled_instance.h"
#include "workload/author_journal.h"

namespace delprop {
namespace {

// All tests run on the paper's Fig. 1 example: T1(AuName, Journal),
// T2(Journal, Topic, NumPapers), views Q3(x,z) and Q4(x,y,z). T1 rows:
// 0=(Joe,TKDE) 1=(John,TKDE) 2=(Tom,TKDE) 3=(John,TODS); T2 rows:
// 0=(TKDE,XML) 1=(TKDE,CUBE) 2=(TODS,XML).
class ApplyDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<GeneratedVse> generated = BuildFig1Example();
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    generated_ = std::move(*generated);
  }

  VseInstance& instance() { return *generated_.instance; }
  Database& db() { return *generated_.database; }

  TupleRef Row(const char* rel, uint32_t row) {
    RelationId id = *db().schema().FindRelation(rel);
    return TupleRef{id, row};
  }

  BaseInsert T1Insert(const char* author, const char* journal) {
    RelationId id = *db().schema().FindRelation("T1");
    return BaseInsert{
        id, {db().dict().Intern(author), db().dict().Intern(journal)}};
  }

  /// Byte-compares the live instance's derived state against a fresh
  /// re-index of a copy of its views (CreateFromMaterializedViews), carrying
  /// over ΔV and weights — the unit-test-sized version of the mutate-vs-
  /// rebuild oracle in testing/mutation.h.
  void ExpectMatchesReindex() {
    std::vector<const ConjunctiveQuery*> queries;
    for (const auto& query : generated_.queries) queries.push_back(query.get());
    std::vector<View> views;
    for (size_t v = 0; v < instance().view_count(); ++v) {
      views.push_back(instance().view(v));
    }
    Result<VseInstance> reindexed = VseInstance::CreateFromMaterializedViews(
        db(), queries, std::move(views));
    ASSERT_TRUE(reindexed.ok()) << reindexed.status().ToString();
    VseInstance& shadow = *reindexed;
    ASSERT_TRUE(shadow.ResetDeletions(instance().deletion_tuples()).ok());
    for (size_t v = 0; v < instance().view_count(); ++v) {
      for (size_t t = 0; t < instance().view(v).size(); ++t) {
        ViewTupleId id{v, t};
        if (instance().weight(id) != 1.0) {
          ASSERT_TRUE(shadow.SetWeight(id, instance().weight(id)).ok());
        }
      }
    }
    EXPECT_EQ(instance().all_unique_witness(), shadow.all_unique_witness());
    const PlanCore& a = *instance().compiled()->core();
    const PlanCore& b = *shadow.compiled()->core();
    EXPECT_EQ(a.view_first, b.view_first);
    EXPECT_EQ(a.tuple_view, b.tuple_view);
    EXPECT_EQ(a.weight, b.weight);
    EXPECT_EQ(a.tuple_witness_first, b.tuple_witness_first);
    EXPECT_EQ(a.witness_owner, b.witness_owner);
    EXPECT_EQ(a.witness_member_first, b.witness_member_first);
    EXPECT_EQ(a.witness_member_base, b.witness_member_base);
    EXPECT_EQ(a.base_refs, b.base_refs);
    EXPECT_EQ(a.base_occ_first, b.base_occ_first);
    EXPECT_EQ(a.occ_tuple, b.occ_tuple);
    EXPECT_EQ(a.occ_witness, b.occ_witness);
    EXPECT_EQ(a.base_kill_first, b.base_kill_first);
    EXPECT_EQ(a.kill_tuple, b.kill_tuple);
    EXPECT_EQ(instance().compiled()->deletion_dense(),
              shadow.compiled()->deletion_dense());
    EXPECT_EQ(instance().compiled()->candidate_bases(),
              shadow.compiled()->candidate_bases());
  }

  GeneratedVse generated_;
};

TEST_F(ApplyDeltaTest, InsertExpandsViewsIncrementally) {
  BaseDelta delta;
  delta.inserts.push_back(T1Insert("Bob", "TKDE"));
  ApplyDeltaReport report;
  ASSERT_TRUE(instance().ApplyDelta(db(), delta, {}, &report).ok());

  // Bob×TKDE joins T2's two TKDE rows: Q3 gains (Bob,XML),(Bob,CUBE), Q4
  // gains (Bob,TKDE,XML),(Bob,TKDE,CUBE).
  EXPECT_EQ(instance().view(0).size(), 8u);
  EXPECT_EQ(instance().view(1).size(), 9u);
  EXPECT_EQ(report.view_tuples_added, 4u);
  EXPECT_EQ(report.witnesses_added, 4u);
  EXPECT_EQ(report.view_tuples_removed, 0u);
  EXPECT_EQ(instance().structure_epoch(), 1u);

  // The new base row is live, present in the kill map, and the new view
  // tuples carry real witnesses through it.
  TupleRef bob = Row("T1", 4);
  EXPECT_FALSE(instance().base_mask().Contains(bob));
  EXPECT_EQ(instance().KilledBy(bob).size(), 4u);
  ExpectMatchesReindex();
}

TEST_F(ApplyDeltaTest, DeleteShrinksViewsAndDropsDeadMarks) {
  // Mark Q4 (John,TODS,XML) — killed by the delete below — and Q3 (Tom,*),
  // which survive but shift when Q3 loses nothing... Q3 keeps its size here:
  // only Q4 loses a tuple, Q3's (John,XML) just loses one witness.
  ASSERT_TRUE(
      instance().MarkForDeletionByValues(1, {"John", "TODS", "XML"}).ok());
  ASSERT_TRUE(instance().MarkForDeletionByValues(0, {"Tom", "XML"}).ok());
  ASSERT_FALSE(instance().all_unique_witness()) << "(John, XML) has 2";

  BaseDelta delta;
  delta.deletes.push_back(Row("T1", 3));  // (John, TODS)
  ApplyDeltaReport report;
  ASSERT_TRUE(instance().ApplyDelta(db(), delta, {}, &report).ok());

  EXPECT_EQ(instance().view(0).size(), 6u);  // (John,XML) survives via TKDE
  EXPECT_EQ(instance().view(1).size(), 6u);  // (John,TODS,XML) is gone
  EXPECT_EQ(report.view_tuples_removed, 1u);
  EXPECT_EQ(report.witnesses_removed, 2u);
  EXPECT_TRUE(instance().base_mask().Contains(Row("T1", 3)));

  // The dead tuple's mark is dropped; the surviving mark still points at
  // (Tom, XML). The last multi-witness tuple lost a witness, so the
  // unique-witness property now holds.
  ASSERT_EQ(instance().deletion_tuples().size(), 1u);
  EXPECT_EQ(instance().RenderViewTuple(instance().deletion_tuples()[0]),
            "Q3(Tom, XML)");
  EXPECT_TRUE(instance().all_unique_witness());
  ExpectMatchesReindex();
}

TEST_F(ApplyDeltaTest, MixedDeltaMatchesReindexUnderWeights) {
  ASSERT_TRUE(instance().SetWeight(ViewTupleId{0, 0}, 3.5).ok());
  BaseDelta delta;
  delta.inserts.push_back(T1Insert("Bob", "TODS"));
  delta.deletes.push_back(Row("T1", 0));  // (Joe, TKDE)
  ApplyDeltaReport report;
  ASSERT_TRUE(instance().ApplyDelta(db(), delta, {}, &report).ok());
  EXPECT_GT(report.view_tuples_added, 0u);
  EXPECT_GT(report.view_tuples_removed, 0u);
  ExpectMatchesReindex();
}

TEST_F(ApplyDeltaTest, ErrorsNameTheOffendingRelationAndRow) {
  auto expect_invalid = [&](const BaseDelta& delta, const char* fragment) {
    Status status = instance().ApplyDelta(db(), delta);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.ToString().find(fragment), std::string::npos)
        << "missing '" << fragment << "' in: " << status.ToString();
  };

  BaseDelta bad_relation;
  bad_relation.inserts.push_back(BaseInsert{99, {0, 0}});
  expect_invalid(bad_relation, "relation id 99, which does not exist");

  BaseDelta bad_arity;
  bad_arity.inserts.push_back(T1Insert("Bob", "TKDE"));
  bad_arity.inserts[0].tuple.push_back(0);
  expect_invalid(bad_arity, "has 3 value(s) for relation 'T1' of arity 2");

  BaseDelta duplicate;
  duplicate.inserts.push_back(T1Insert("John", "TKDE"));
  expect_invalid(duplicate, "duplicates row 1 of relation 'T1'");

  BaseDelta batch_repeat;
  batch_repeat.inserts.push_back(T1Insert("Bob", "TKDE"));
  batch_repeat.inserts.push_back(T1Insert("Bob", "TKDE"));
  expect_invalid(batch_repeat, "repeats the key of an earlier insert");

  BaseDelta dangling;
  dangling.deletes.push_back(Row("T1", 40));
  expect_invalid(dangling,
                 "row 40 of relation 'T1' does not exist (4 row(s))");

  BaseDelta witnessed;
  witnessed.deletes.push_back(Row("T1", 0));
  ApplyDeltaOptions forbid;
  forbid.forbid_witnessed_deletes = true;
  Status status = instance().ApplyDelta(db(), witnessed, forbid);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("still occurs in a witness"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("Q3(Joe,"), std::string::npos)
      << "error should render the referencing view tuple: "
      << status.ToString();

  // Masked rows stay masked and keep their keys occupied.
  BaseDelta first;
  first.deletes.push_back(Row("T1", 3));
  ASSERT_TRUE(instance().ApplyDelta(db(), first).ok());
  BaseDelta again;
  again.deletes.push_back(Row("T1", 3));
  expect_invalid(again, "row 3 of relation 'T1' is already deleted");
  BaseDelta reuse_key;
  reuse_key.inserts.push_back(T1Insert("John", "TODS"));
  expect_invalid(reuse_key,
                 "logically deleted rows keep their keys occupied");
}

TEST_F(ApplyDeltaTest, RejectedDeltaHasNoSideEffects) {
  size_t rows_before = db().relation(Row("T1", 0).relation).row_count();
  size_t q3_before = instance().view(0).size();
  uint64_t epoch_before = instance().structure_epoch();

  // Valid insert + dangling delete: the whole delta must be rejected and the
  // insert must NOT reach the database.
  BaseDelta delta;
  delta.inserts.push_back(T1Insert("Bob", "TKDE"));
  delta.deletes.push_back(Row("T2", 77));
  EXPECT_EQ(instance().ApplyDelta(db(), delta).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db().relation(Row("T1", 0).relation).row_count(), rows_before);
  EXPECT_EQ(instance().view(0).size(), q3_before);
  EXPECT_EQ(instance().structure_epoch(), epoch_before);
  EXPECT_TRUE(instance().base_mask().Sorted().empty());
}

TEST_F(ApplyDeltaTest, SmallDeltaPatchesCoreLargeDeltaRebuilds) {
  (void)instance().compiled();
  ASSERT_EQ(instance().plan_stats().full_builds, 1u);

  BaseDelta small;
  small.deletes.push_back(Row("T1", 3));
  ApplyDeltaReport report;
  ASSERT_TRUE(instance().ApplyDelta(db(), small, {}, &report).ok());
  EXPECT_TRUE(report.core_patched);
  EXPECT_FALSE(report.core_rebuilt);
  PlanBuildStats stats = instance().plan_stats();
  EXPECT_EQ(stats.core_patches, 1u);
  EXPECT_EQ(stats.core_patch_fallbacks, 0u);

  // The patched core serves the next compiled() without a full build.
  (void)instance().compiled();
  EXPECT_EQ(instance().plan_stats().full_builds, 1u);
  ExpectMatchesReindex();

  // threshold 0 forces the fallback: the core is dropped and the next
  // compiled() pays a counted full rebuild.
  BaseDelta large;
  large.deletes.push_back(Row("T1", 0));
  ApplyDeltaOptions rebuild_always;
  rebuild_always.patch_threshold = 0.0;
  ASSERT_TRUE(
      instance().ApplyDelta(db(), large, rebuild_always, &report).ok());
  EXPECT_FALSE(report.core_patched);
  EXPECT_TRUE(report.core_rebuilt);
  stats = instance().plan_stats();
  EXPECT_EQ(stats.core_patch_fallbacks, 1u);
  (void)instance().compiled();
  EXPECT_EQ(instance().plan_stats().full_builds, 2u);
  ExpectMatchesReindex();
}

// Satellite regression: SetWeight used to discard the shared PlanCore
// (InvalidateDerivedCaches(false)), forcing a full re-intern on the next
// compiled(). It must now patch the weight array in place.
TEST_F(ApplyDeltaTest, SetWeightPatchesCoreWithoutRebuild) {
  std::shared_ptr<const CompiledInstance> before = instance().compiled();
  ASSERT_EQ(instance().plan_stats().full_builds, 1u);

  ViewTupleId id{0, 2};
  ASSERT_TRUE(instance().SetWeight(id, 7.5).ok());
  PlanBuildStats stats = instance().plan_stats();
  EXPECT_EQ(stats.full_builds, 1u) << "SetWeight must not drop the core";
  EXPECT_EQ(stats.weight_patches + stats.core_clones, 1u);

  std::shared_ptr<const CompiledInstance> after = instance().compiled();
  EXPECT_EQ(instance().plan_stats().full_builds, 1u);
  EXPECT_EQ(after->weight(after->DenseOf(id)), 7.5);
  EXPECT_EQ(instance().weight(id), 7.5);
  (void)before;
}

TEST_F(ApplyDeltaTest, SetWeightClonesCoreWhenReplicasShareIt) {
  (void)instance().compiled();
  VseInstance replica = instance().Replicate();
  std::shared_ptr<const CompiledInstance> replica_plan = replica.compiled();
  double replica_weight_before = replica_plan->weight(
      replica_plan->DenseOf(ViewTupleId{0, 1}));

  ASSERT_TRUE(instance().SetWeight(ViewTupleId{0, 1}, 9.0).ok());
  PlanBuildStats stats = instance().plan_stats();
  EXPECT_EQ(stats.core_clones, 1u) << "shared core must be cloned, not "
                                      "mutated under the replica";
  EXPECT_EQ(stats.full_builds, 1u);

  // The replica's frozen plan still sees the old weight; the primary's new
  // plan sees the new one.
  EXPECT_EQ(replica_plan->weight(replica_plan->DenseOf(ViewTupleId{0, 1})),
            replica_weight_before);
  std::shared_ptr<const CompiledInstance> primary_plan = instance().compiled();
  EXPECT_EQ(primary_plan->weight(primary_plan->DenseOf(ViewTupleId{0, 1})),
            9.0);
}

// Satellite regression: ResetDeletions used to rebuild a shadow hash set per
// request; membership is now derived from the sorted deletion_tuples_ alone
// and must stay consistent through resets, marks, and deltas.
TEST_F(ApplyDeltaTest, DeletionMembershipStaysConsistent) {
  std::vector<ViewTupleId> dv = {{1, 3}, {0, 1}, {1, 3}, {0, 5}};  // dupes ok
  ASSERT_TRUE(instance().ResetDeletions(dv).ok());
  EXPECT_EQ(instance().TotalDeletionTuples(), 3u);
  EXPECT_TRUE(instance().IsMarkedForDeletion(ViewTupleId{0, 1}));
  EXPECT_TRUE(instance().IsMarkedForDeletion(ViewTupleId{0, 5}));
  EXPECT_TRUE(instance().IsMarkedForDeletion(ViewTupleId{1, 3}));
  EXPECT_FALSE(instance().IsMarkedForDeletion(ViewTupleId{0, 0}));
  EXPECT_TRUE(std::is_sorted(instance().deletion_tuples().begin(),
                             instance().deletion_tuples().end()));

  ASSERT_TRUE(instance().MarkForDeletion(ViewTupleId{0, 0}).ok());
  EXPECT_TRUE(instance().IsMarkedForDeletion(ViewTupleId{0, 0}));
  EXPECT_TRUE(std::is_sorted(instance().deletion_tuples().begin(),
                             instance().deletion_tuples().end()));

  // Every marked id appears in PreservedTuples' complement exactly.
  const std::vector<ViewTupleId>& preserved = instance().PreservedTuples();
  EXPECT_EQ(preserved.size() + instance().TotalDeletionTuples(),
            instance().TotalViewTuples());
  for (const ViewTupleId& id : preserved) {
    EXPECT_FALSE(instance().IsMarkedForDeletion(id));
  }

  ASSERT_TRUE(instance().ResetDeletions({}).ok());
  EXPECT_FALSE(instance().IsMarkedForDeletion(ViewTupleId{0, 1}));
  EXPECT_EQ(instance().TotalDeletionTuples(), 0u);
}

TEST_F(ApplyDeltaTest, DeleteOfUnreferencedRowIsAllowedUnderForbid) {
  // (Bob, Nowhere) joins nothing, so it lands in no witness; deleting it
  // with forbid_witnessed_deletes on must succeed and change no view.
  BaseDelta insert;
  insert.inserts.push_back(T1Insert("Bob", "Nowhere"));
  ApplyDeltaReport report;
  ASSERT_TRUE(instance().ApplyDelta(db(), insert, {}, &report).ok());
  EXPECT_EQ(report.view_tuples_added, 0u);

  BaseDelta remove;
  remove.deletes.push_back(Row("T1", 4));
  ApplyDeltaOptions forbid;
  forbid.forbid_witnessed_deletes = true;
  ASSERT_TRUE(instance().ApplyDelta(db(), remove, forbid, &report).ok());
  EXPECT_EQ(report.view_tuples_removed, 0u);
  EXPECT_TRUE(instance().base_mask().Contains(Row("T1", 4)));
  ExpectMatchesReindex();
}

TEST_F(ApplyDeltaTest, WrongDatabaseIsRejected) {
  Database other;
  BaseDelta delta;
  delta.deletes.push_back(Row("T1", 0));
  EXPECT_EQ(instance().ApplyDelta(other, delta).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace delprop
