// Golden tree-wide lint: runs every rule over the real repository sources
// (DELPROP_SOURCE_DIR is baked in by CMake) and asserts the tree is clean
// modulo the committed baseline. A failure here means a change introduced a
// new lint finding — fix it, suppress it with an explanatory
// `// delprop-lint: <rule>-ok` comment, or (for accepted debt) regenerate
// lint_baseline.json via `reproduce.sh lint-json` and justify the entry in
// the PR.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/json_report.h"
#include "lint/linter.h"

namespace delprop {
namespace lint {
namespace {

TEST(LintTreeTest, RepositoryIsCleanModuloBaseline) {
  const std::filesystem::path root = DELPROP_SOURCE_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(root))
      << "DELPROP_SOURCE_DIR does not point at the repo: " << root;

  // Diagnostics report paths verbatim, and the committed baseline stores
  // them relative to the repo root — run from there.
  const std::filesystem::path previous = std::filesystem::current_path();
  std::filesystem::current_path(root);

  Linter linter;
  linter.AddDefaultRules();
  Result<LintReport> report =
      linter.RunOnPaths({"src", "tools", "bench", "tests"});
  std::filesystem::current_path(previous);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->files_checked, 100u) << "tree walk found too few files";

  std::vector<BaselineEntry> baseline;
  Result<std::vector<BaselineEntry>> loaded =
      LoadBaseline((root / "lint_baseline.json").string());
  if (loaded.ok()) baseline = *std::move(loaded);

  BaselineDelta delta = ApplyBaseline(report->diagnostics, baseline);
  std::string rendered;
  for (const Diagnostic& d : delta.fresh) rendered += d.ToString() + "\n";
  EXPECT_TRUE(delta.fresh.empty())
      << delta.fresh.size() << " fresh lint finding(s):\n"
      << rendered;
}

}  // namespace
}  // namespace lint
}  // namespace delprop
