// Tests of the differential fuzzing subsystem (src/testing/): deterministic
// case generation, the oracle suite on healthy instances, thread-count
// invariance of the engine summary, and — via an artificially injected
// oracle bug — the full violation → shrink → repro-file → replay pipeline.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"
#include "testing/engine.h"
#include "testing/fuzzer.h"
#include "testing/oracles.h"
#include "testing/shrink.h"
#include "tool/serialize.h"
#include "workload/author_journal.h"

namespace delprop {
namespace {

using testing::CheckOracles;
using testing::FuzzCase;
using testing::FuzzEngineOptions;
using testing::FuzzFamilies;
using testing::FuzzSummary;
using testing::GenerateFuzzCase;
using testing::OracleOptions;
using testing::OracleViolation;
using testing::ReplayScriptFile;
using testing::RunFuzz;
using testing::ScriptFailsOracle;
using testing::ShrinkOutcome;
using testing::ShrinkScript;

/// Oracle options with the artificial Theorem 4 bug injected: scaling the
/// ratio-lowdeg bound to zero turns every positive-cost lowdeg-tree solution
/// into a violation, so the shrink/repro pipeline can be exercised without a
/// real solver bug on hand.
OracleOptions InjectedBugOptions() {
  OracleOptions options;
  options.lowdeg_ratio_scale = 0.0;
  return options;
}

TEST(FuzzerTest, SameSeedSameInstance) {
  for (uint64_t seed : {1u, 7u, 23u, 104u}) {
    Result<FuzzCase> first = GenerateFuzzCase(seed);
    Result<FuzzCase> second = GenerateFuzzCase(seed);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(first->family, second->family);
    EXPECT_EQ(SerializeToScript(*first->generated.instance),
              SerializeToScript(*second->generated.instance))
        << "seed " << seed;
  }
}

TEST(FuzzerTest, AllFamiliesReachable) {
  std::set<std::string> seen;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Result<FuzzCase> fuzz_case = GenerateFuzzCase(seed);
    ASSERT_TRUE(fuzz_case.ok()) << fuzz_case.status().ToString();
    seen.insert(fuzz_case->family);
  }
  std::set<std::string> expected;
  for (const std::string& family : FuzzFamilies()) expected.insert(family);
  EXPECT_EQ(seen, expected);
}

TEST(OracleTest, HealthyFig1InstancePasses) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  ASSERT_TRUE(
      generated->instance->MarkForDeletionByValues(0, {"John", "XML"}).ok());
  std::vector<OracleViolation> violations =
      CheckOracles(*generated->instance);
  for (const OracleViolation& violation : violations) {
    ADD_FAILURE() << violation.oracle << ": " << violation.detail;
  }
}

TEST(OracleTest, EmptyDeltaVIsAHealthyEdgeCase) {
  // No ΔV marked at all: every solver must return an empty deletion with
  // zero cost rather than crash or refuse.
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  ASSERT_EQ(generated->instance->TotalDeletionTuples(), 0u);
  std::vector<OracleViolation> violations =
      CheckOracles(*generated->instance);
  for (const OracleViolation& violation : violations) {
    ADD_FAILURE() << violation.oracle << ": " << violation.detail;
  }
}

TEST(OracleTest, OracleNamesDocumented) {
  EXPECT_FALSE(testing::OracleNames().empty());
}

TEST(FuzzEngineTest, CleanRunFindsNoViolations) {
  FuzzEngineOptions options;
  options.seed_start = 1;
  options.iterations = 25;
  FuzzSummary summary = RunFuzz(options);
  EXPECT_EQ(summary.cases, 25u);
  EXPECT_EQ(summary.generation_failures, 0u);
  EXPECT_EQ(summary.failing_cases, 0u) << summary.ToString();
  size_t family_total = 0;
  for (const auto& [family, count] : summary.per_family) {
    family_total += count;
  }
  EXPECT_EQ(family_total, 25u);
}

TEST(FuzzEngineTest, SummaryIsIdenticalAtAnyThreadCount) {
  FuzzEngineOptions options;
  options.seed_start = 11;
  options.iterations = 40;
  FuzzSummary serial = RunFuzz(options, nullptr);
  ThreadPool pool(4);
  FuzzSummary parallel = RunFuzz(options, &pool);
  EXPECT_EQ(serial.ToString(), parallel.ToString());
}

TEST(FuzzEngineTest, InjectedOracleBugYieldsMinimizedRepro) {
  // End-to-end acceptance check for the harness itself: with the Theorem 4
  // bound artificially broken, the engine must (1) flag ratio-lowdeg
  // violations, (2) shrink each repro strictly below the original failing
  // instance, (3) write a replayable repro file whose violation disappears
  // once the injected bug is removed.
  FuzzEngineOptions options;
  options.seed_start = 1;
  options.iterations = 40;
  options.oracle = InjectedBugOptions();
  options.out_dir =
      (std::filesystem::path(::testing::TempDir()) / "delprop_fuzz_repro")
          .string();
  FuzzSummary summary = RunFuzz(options);
  ASSERT_GT(summary.failing_cases, 0u)
      << "the injected bug found nothing; widen the seed range";
  ASSERT_GT(summary.per_oracle.count("ratio-lowdeg"), 0u)
      << summary.ToString();

  bool checked_one = false;
  for (const testing::SeedOutcome& failure : summary.failures) {
    ASSERT_TRUE(failure.generation.ok());
    ASSERT_FALSE(failure.violations.empty());
    if (failure.violations[0].oracle != "ratio-lowdeg") continue;
    checked_one = true;
    // Shrinking must have made the repro strictly smaller...
    EXPECT_GT(failure.shrink_initial_lines, 0u);
    EXPECT_LT(failure.shrink_final_lines, failure.shrink_initial_lines)
        << "seed " << failure.seed << " did not shrink";
    // ...while still reproducing the (injected) violation...
    EXPECT_TRUE(ScriptFailsOracle(failure.repro_script, "ratio-lowdeg",
                                  InjectedBugOptions()))
        << failure.repro_script;
    // ...and the same script is healthy under the real Theorem 4 bound,
    // proving the violation comes from the injection, not a solver bug.
    EXPECT_FALSE(
        ScriptFailsOracle(failure.repro_script, "ratio-lowdeg", {}))
        << failure.repro_script;

    // The repro file on disk replays to the same verdicts.
    ASSERT_FALSE(failure.repro_path.empty());
    std::ifstream in(failure.repro_path);
    ASSERT_TRUE(in.good()) << failure.repro_path;
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str().rfind("# delprop_fuzz repro", 0), 0u);
    EXPECT_NE(content.str().find("# oracle: ratio-lowdeg"),
              std::string::npos);
    Result<std::vector<OracleViolation>> replay =
        ReplayScriptFile(failure.repro_path, InjectedBugOptions());
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    bool reproduced = false;
    for (const OracleViolation& violation : *replay) {
      if (violation.oracle == "ratio-lowdeg") reproduced = true;
    }
    EXPECT_TRUE(reproduced) << failure.repro_path;
    Result<std::vector<OracleViolation>> healthy =
        ReplayScriptFile(failure.repro_path);
    ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
    EXPECT_TRUE(healthy->empty());
    break;  // one fully-checked repro is enough; the rest are identical work
  }
  EXPECT_TRUE(checked_one);
}

TEST(ShrinkTest, RejectsAScriptThatDoesNotFail) {
  Result<GeneratedVse> generated = BuildFig1Example();
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  std::string script = SerializeToScript(*generated->instance);
  Result<ShrinkOutcome> shrunk = ShrinkScript(script, "ratio-lowdeg", {});
  ASSERT_FALSE(shrunk.ok());
  EXPECT_EQ(shrunk.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReplayTest, MissingFileIsNotFound) {
  Result<std::vector<OracleViolation>> replay =
      ReplayScriptFile("/nonexistent/no_such_file.delprop");
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace delprop
