#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "query/parser.h"
#include "query/semijoin.h"
#include "workload/path_schema.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

using ResultMap =
    std::map<Tuple, std::set<std::vector<TupleRef>>>;

ResultMap ToMap(const View& view) {
  ResultMap map;
  for (size_t t = 0; t < view.size(); ++t) {
    for (const Witness& w : view.tuple(t).witnesses) {
      map[view.tuple(t).values].insert(w);
    }
  }
  return map;
}

TEST(SemijoinTest, PrunesDanglingRows) {
  Database db;
  ASSERT_TRUE(db.AddRelation("R", 2, {0, 1}).ok());
  ASSERT_TRUE(db.AddRelation("S", 2, {0, 1}).ok());
  // R rows: (a,b) joins, (x,orphan) dangles.
  ASSERT_TRUE(db.InsertText(0, {"a", "b"}).ok());
  ASSERT_TRUE(db.InsertText(0, {"x", "orphan"}).ok());
  ASSERT_TRUE(db.InsertText(1, {"b", "c"}).ok());
  ASSERT_TRUE(db.InsertText(1, {"nope", "d"}).ok());
  Result<ConjunctiveQuery> q =
      ParseQuery("Q(x, y, z) :- R(x, y), S(y, z)", db.schema(), db.dict());
  ASSERT_TRUE(q.ok());
  SemijoinStats stats;
  Result<View> view =
      EvaluateWithSemijoinReduction(db, *q, {}, &stats);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(stats.acyclic);
  EXPECT_EQ(view->size(), 1u);
  EXPECT_EQ(stats.rows_pruned[0], 1u) << "R(x, orphan)";
  EXPECT_EQ(stats.rows_pruned[1], 1u) << "S(nope, d)";
}

TEST(SemijoinTest, FallsBackOnSelfJoins) {
  Database db;
  ASSERT_TRUE(db.AddRelation("E", 2, {0, 1}).ok());
  ASSERT_TRUE(db.InsertText(0, {"a", "b"}).ok());
  ASSERT_TRUE(db.InsertText(0, {"b", "c"}).ok());
  Result<ConjunctiveQuery> q = ParseQuery(
      "Q(x, y, z) :- E(x, y), E(y, z)", db.schema(), db.dict());
  ASSERT_TRUE(q.ok());
  SemijoinStats stats;
  Result<View> view = EvaluateWithSemijoinReduction(db, *q, {}, &stats);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(stats.acyclic) << "self-join fallback";
  EXPECT_EQ(view->size(), 1u);
}

TEST(SemijoinTest, CyclicQueryFallsBack) {
  Database db;
  ASSERT_TRUE(db.AddRelation("R", 2, {0, 1}).ok());
  ASSERT_TRUE(db.AddRelation("S", 2, {0, 1}).ok());
  ASSERT_TRUE(db.AddRelation("T", 2, {0, 1}).ok());
  ASSERT_TRUE(db.InsertText(0, {"a", "b"}).ok());
  ASSERT_TRUE(db.InsertText(1, {"b", "c"}).ok());
  ASSERT_TRUE(db.InsertText(2, {"c", "a"}).ok());
  // Triangle over existential-free variables is cyclic as a hypergraph.
  Result<ConjunctiveQuery> q = ParseQuery(
      "Q(x, y, z) :- R(x, y), S(y, z), T(z, x)", db.schema(), db.dict());
  ASSERT_TRUE(q.ok());
  SemijoinStats stats;
  Result<View> view = EvaluateWithSemijoinReduction(db, *q, {}, &stats);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(stats.acyclic);
  EXPECT_EQ(view->size(), 1u);
}

// Differential: identical answers and witnesses on random sj-free chains.
class SemijoinSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemijoinSweep, AgreesWithPlainEvaluator) {
  Rng rng(GetParam());
  PathSchemaParams params;
  params.levels = 3 + rng.NextBelow(2);
  params.roots = 2;
  params.fanout = 2;
  params.deletion_fraction = 0.0;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  const Database& db = *generated->database;
  for (const auto& query : generated->queries) {
    Result<View> plain = Evaluate(db, *query);
    SemijoinStats stats;
    Result<View> reduced =
        EvaluateWithSemijoinReduction(db, *query, {}, &stats);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(reduced.ok());
    EXPECT_TRUE(stats.acyclic);
    EXPECT_EQ(ToMap(*plain), ToMap(*reduced))
        << query->ToString(db.schema(), db.dict());
  }
}

TEST_P(SemijoinSweep, AgreesUnderMask) {
  Rng rng(GetParam() + 77);
  PathSchemaParams params;
  params.levels = 3;
  params.roots = 2;
  params.fanout = 3;
  params.deletion_fraction = 0.0;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  const Database& db = *generated->database;
  DeletionSet mask;
  for (RelationId rel = 0; rel < db.relation_count(); ++rel) {
    for (uint32_t row = 0; row < db.relation(rel).row_count(); ++row) {
      if (rng.NextBool(0.25)) mask.Insert({rel, row});
    }
  }
  EvalOptions options;
  options.mask = &mask;
  for (const auto& query : generated->queries) {
    Result<View> plain = Evaluate(db, *query, options);
    Result<View> reduced = EvaluateWithSemijoinReduction(db, *query, options);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(reduced.ok());
    EXPECT_EQ(ToMap(*plain), ToMap(*reduced));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemijoinSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace delprop
