// Replays every checked-in corpus script (tests/corpus/*.delprop) through
// the full differential-oracle suite. The corpus holds minimized interesting
// instances — paper examples, the smallest pivot forest, trap cases for the
// greedy heuristics — and each must keep passing every solver contract; a
// failure here is a regression with a ready-made minimal repro.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "testing/engine.h"

#ifndef DELPROP_CORPUS_DIR
#error "build must define DELPROP_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace delprop {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DELPROP_CORPUS_DIR)) {
    if (entry.path().extension() == ".delprop") {
      files.push_back(entry.path().string());
    }
  }
  // directory_iterator order is filesystem-dependent; sort for stable runs.
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplayTest, CorpusIsPresent) {
  EXPECT_GE(CorpusFiles().size(), 5u)
      << "corpus at " << DELPROP_CORPUS_DIR << " looks truncated";
}

TEST(CorpusReplayTest, EveryFileIsDocumented) {
  for (const std::string& file : CorpusFiles()) {
    SCOPED_TRACE(file);
    std::ifstream in(file);
    ASSERT_TRUE(in.good());
    std::string first_line;
    std::getline(in, first_line);
    // Every corpus file leads with a comment block saying why it is kept.
    EXPECT_FALSE(first_line.empty());
    EXPECT_EQ(first_line[0], '#') << first_line;
  }
}

TEST(CorpusReplayTest, EveryFilePassesAllOracles) {
  for (const std::string& file : CorpusFiles()) {
    SCOPED_TRACE(file);
    Result<std::vector<testing::OracleViolation>> violations =
        testing::ReplayScriptFile(file);
    ASSERT_TRUE(violations.ok()) << violations.status().ToString();
    for (const testing::OracleViolation& violation : *violations) {
      ADD_FAILURE() << violation.oracle << ": " << violation.detail;
    }
  }
}

}  // namespace
}  // namespace delprop
