#include <gtest/gtest.h>

#include "applications/cleaning_session.h"
#include "solvers/exact_solver.h"
#include "solvers/greedy_solver.h"
#include "workload/author_journal.h"

namespace delprop {
namespace {

class CleaningSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<GeneratedVse> generated = BuildFig1Example();
    ASSERT_TRUE(generated.ok());
    generated_ = std::move(*generated);
    for (const auto& q : generated_.queries) queries_.push_back(q.get());
  }

  GeneratedVse generated_;
  std::vector<const ConjunctiveQuery*> queries_;
};

TEST_F(CleaningSessionTest, RequiresBegin) {
  CleaningSession session(*generated_.database, queries_);
  EXPECT_EQ(session.Flag(0, {"John", "XML"}).code(),
            StatusCode::kFailedPrecondition);
  ExactSolver solver;
  EXPECT_EQ(session.ResolveRound(solver).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CleaningSessionTest, SingleRoundMatchesDirectSolve) {
  CleaningSession session(*generated_.database, queries_);
  ASSERT_TRUE(session.Begin().ok());
  ASSERT_TRUE(session.Flag(0, {"John", "XML"}).ok());
  EXPECT_EQ(session.pending_flags(), 1u);

  ExactSolver solver;
  Result<CleaningSession::RoundOutcome> outcome = session.ResolveRound(solver);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->unresolved_flags.empty());
  EXPECT_DOUBLE_EQ(outcome->side_effect_weight, 4.0);
  EXPECT_EQ(session.rounds_resolved(), 1u);
  EXPECT_EQ(session.applied_deletions().size(), outcome->deleted.size());

  // After applying, the refreshed views no longer contain the flagged tuple.
  const VseInstance* refreshed = session.instance();
  ASSERT_NE(refreshed, nullptr);
  EXPECT_EQ(refreshed->TotalDeletionTuples(), 0u) << "flags were consumed";
  auto& dict = generated_.database->dict();
  Tuple values = {*dict.Find("John"), *dict.Find("XML")};
  EXPECT_FALSE(refreshed->view(0).Find(values).has_value());
}

TEST_F(CleaningSessionTest, MultiRoundAccumulates) {
  CleaningSession session(*generated_.database, queries_);
  ASSERT_TRUE(session.Begin().ok());
  ASSERT_TRUE(session.Flag(0, {"John", "XML"}).ok());
  GreedySolver solver;
  ASSERT_TRUE(session.ResolveRound(solver).ok());

  // Round 2: flag an answer that survived round 1, if any.
  const VseInstance* instance = session.instance();
  ASSERT_NE(instance, nullptr);
  bool flagged = false;
  for (size_t v = 0; v < instance->view_count() && !flagged; ++v) {
    if (instance->view(v).size() > 0) {
      // Flag the first surviving tuple by value.
      const Tuple& values = instance->view(v).tuple(0).values;
      std::vector<std::string> texts;
      for (ValueId id : values) {
        texts.push_back(generated_.database->dict().Text(id));
      }
      ASSERT_TRUE(session.Flag(v, texts).ok());
      flagged = true;
    }
  }
  ASSERT_TRUE(flagged);
  size_t deleted_before = session.applied_deletions().size();
  Result<CleaningSession::RoundOutcome> outcome = session.ResolveRound(solver);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(session.rounds_resolved(), 2u);
  EXPECT_GE(session.applied_deletions().size(), deleted_before + 1);
  EXPECT_GE(session.total_side_effect(), 0.0);
}

TEST_F(CleaningSessionTest, ResolveWithoutFlagsRejected) {
  CleaningSession session(*generated_.database, queries_);
  ASSERT_TRUE(session.Begin().ok());
  ExactSolver solver;
  EXPECT_EQ(session.ResolveRound(solver).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CleaningSessionTest, FlagUnknownAnswerRejected) {
  CleaningSession session(*generated_.database, queries_);
  ASSERT_TRUE(session.Begin().ok());
  EXPECT_EQ(session.Flag(0, {"Nobody", "XML"}).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace delprop
