// Property-based sweeps: every solver must uphold its contract on randomized
// instance families. TEST_P sweeps over seeds and instance shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "solvers/dp_tree_solver.h"
#include "solvers/exact_solver.h"
#include "solvers/greedy_solver.h"
#include "solvers/lowdeg_tree_solver.h"
#include "solvers/primal_dual_tree_solver.h"
#include "solvers/rbsc_reduction_solver.h"
#include "solvers/solver_registry.h"
#include "workload/path_schema.h"
#include "workload/random_workload.h"
#include "workload/star_schema.h"

namespace delprop {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: random project-free workloads — feasibility, optimality ordering,
// Claim 1 bound.
// ---------------------------------------------------------------------------

struct RandomSweepCase {
  uint64_t seed;
  size_t relations;
  size_t rows;
  size_t queries;
};

class RandomWorkloadSweep : public ::testing::TestWithParam<RandomSweepCase> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    RandomWorkloadParams params;
    params.relations = GetParam().relations;
    params.rows_per_relation = GetParam().rows;
    params.queries = GetParam().queries;
    params.max_atoms = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    generated_ = std::move(*generated);
  }
  GeneratedVse generated_;
};

TEST_P(RandomWorkloadSweep, SolversUpholdContracts) {
  const VseInstance& instance = *generated_.instance;
  ExactSolver exact;
  Result<VseSolution> optimal = exact.Solve(instance);
  ASSERT_TRUE(optimal.ok()) << optimal.status().ToString();
  ASSERT_TRUE(optimal->Feasible());

  GreedySolver greedy;
  Result<VseSolution> g = greedy.Solve(instance);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->Feasible());
  EXPECT_LE(optimal->Cost(), g->Cost() + 1e-9);

  if (instance.all_unique_witness()) {
    RbscReductionSolver rbsc;
    Result<VseSolution> r = rbsc.Solve(instance);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->Feasible());
    EXPECT_LE(optimal->Cost(), r->Cost() + 1e-9);
    // Claim 1: O(2·sqrt(l·‖V‖·log‖ΔV‖)).
    double l = static_cast<double>(instance.max_arity());
    double v = static_cast<double>(instance.TotalViewTuples());
    double dv = static_cast<double>(instance.TotalDeletionTuples());
    double bound = 2.0 * std::sqrt(l * v * std::log(std::max(2.0, dv)));
    EXPECT_LE(r->Cost(), bound * std::max(optimal->Cost(), 1.0) + 1e-9);
  }
}

TEST_P(RandomWorkloadSweep, DeletionsAreSubsetsOfCandidates) {
  const VseInstance& instance = *generated_.instance;
  ExactSolver exact;
  Result<VseSolution> optimal = exact.Solve(instance);
  ASSERT_TRUE(optimal.ok());
  // An optimal solution never deletes a tuple outside the ΔV witnesses.
  std::vector<TupleRef> candidates = instance.CandidateTuples();
  for (const TupleRef& ref : optimal->deletion.Sorted()) {
    EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), ref))
        << instance.database().RenderTuple(ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomWorkloadSweep,
    ::testing::Values(RandomSweepCase{1, 2, 6, 1}, RandomSweepCase{2, 2, 8, 2},
                      RandomSweepCase{3, 3, 8, 2}, RandomSweepCase{4, 2, 10, 3},
                      RandomSweepCase{5, 3, 6, 3}, RandomSweepCase{6, 2, 8, 2},
                      RandomSweepCase{7, 3, 10, 2}, RandomSweepCase{8, 2, 6, 4},
                      RandomSweepCase{9, 3, 8, 3},
                      RandomSweepCase{10, 2, 12, 2}),
    [](const ::testing::TestParamInfo<RandomSweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_r" +
             std::to_string(info.param.relations) + "_n" +
             std::to_string(info.param.rows) + "_q" +
             std::to_string(info.param.queries);
    });

// ---------------------------------------------------------------------------
// Sweep 2: tree instances — Theorems 3/4 bounds and Algorithm 4 exactness.
// ---------------------------------------------------------------------------

struct TreeSweepCase {
  uint64_t seed;
  size_t levels;
  size_t roots;
  size_t fanout;
  double delta;
};

class TreeSweep : public ::testing::TestWithParam<TreeSweepCase> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    PathSchemaParams params;
    params.levels = GetParam().levels;
    params.roots = GetParam().roots;
    params.fanout = GetParam().fanout;
    params.deletion_fraction = GetParam().delta;
    Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    generated_ = std::move(*generated);
  }
  GeneratedVse generated_;
};

TEST_P(TreeSweep, TreeAlgorithmsUpholdTheorems) {
  const VseInstance& instance = *generated_.instance;
  ExactSolver exact;
  Result<VseSolution> optimal = exact.Solve(instance);
  ASSERT_TRUE(optimal.ok()) << optimal.status().ToString();

  DpTreeSolver dp;
  Result<VseSolution> dp_solution = dp.Solve(instance);
  ASSERT_TRUE(dp_solution.ok()) << dp_solution.status().ToString();
  EXPECT_NEAR(dp_solution->Cost(), optimal->Cost(), 1e-9)
      << "Algorithm 4 exactness";

  PrimalDualTreeSolver primal_dual;
  Result<VseSolution> pd = primal_dual.Solve(instance);
  ASSERT_TRUE(pd.ok()) << pd.status().ToString();
  EXPECT_TRUE(pd->Feasible());
  double l = static_cast<double>(instance.max_arity());
  EXPECT_LE(pd->Cost(), l * optimal->Cost() + 1e-9) << "Theorem 3 bound";

  LowDegTreeSolver lowdeg;
  Result<VseSolution> ld = lowdeg.Solve(instance);
  ASSERT_TRUE(ld.ok()) << ld.status().ToString();
  EXPECT_TRUE(ld->Feasible());
  double bound =
      2.0 * std::sqrt(static_cast<double>(instance.TotalViewTuples()));
  EXPECT_LE(ld->Cost(), bound * std::max(optimal->Cost(), 1.0) + 1e-9)
      << "Theorem 4 bound";
}

TEST_P(TreeSweep, BalancedDpExactness) {
  const VseInstance& instance = *generated_.instance;
  DpTreeSolver dp(Objective::kBalanced);
  ExactBalancedSolver exact;
  Result<VseSolution> a = dp.Solve(instance);
  Result<VseSolution> b = exact.Solve(instance);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_NEAR(a->BalancedCost(), b->BalancedCost(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeSweep,
    ::testing::Values(TreeSweepCase{11, 3, 1, 2, 0.3},
                      TreeSweepCase{12, 3, 2, 2, 0.2},
                      TreeSweepCase{13, 4, 1, 2, 0.25},
                      TreeSweepCase{14, 4, 2, 2, 0.15},
                      TreeSweepCase{15, 3, 3, 2, 0.3},
                      TreeSweepCase{16, 5, 1, 1, 0.4},
                      TreeSweepCase{17, 3, 2, 3, 0.2},
                      TreeSweepCase{18, 4, 1, 3, 0.1}),
    [](const ::testing::TestParamInfo<TreeSweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_l" +
             std::to_string(info.param.levels) + "_r" +
             std::to_string(info.param.roots) + "_f" +
             std::to_string(info.param.fanout);
    });

// ---------------------------------------------------------------------------
// Sweep 3: star instances — general-case algorithm on non-tree inputs.
// ---------------------------------------------------------------------------

class StarSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StarSweep, GeneralAlgorithmHandlesNonTreeShapes) {
  Rng rng(GetParam());
  StarSchemaParams params;
  params.dimensions = 3;
  params.fact_rows = 12;
  params.deletion_fraction = 0.2;
  Result<GeneratedVse> generated = GenerateStarSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  const VseInstance& instance = *generated->instance;
  if (instance.TotalDeletionTuples() == 0) GTEST_SKIP();

  RbscReductionSolver rbsc;
  ExactSolver exact;
  Result<VseSolution> r = rbsc.Solve(instance);
  Result<VseSolution> e = exact.Solve(instance);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_TRUE(r->Feasible());
  EXPECT_LE(e->Cost(), r->Cost() + 1e-9);

  // Tree solvers must refuse.
  PrimalDualTreeSolver pd;
  EXPECT_EQ(pd.Solve(instance).status().code(),
            StatusCode::kFailedPrecondition);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StarSweep,
                         ::testing::Range(uint64_t{20}, uint64_t{28}));

// ---------------------------------------------------------------------------
// Registry coverage.
// ---------------------------------------------------------------------------

TEST(RegistryTest, AllNamesConstruct) {
  for (const std::string& name : AllSolverNames()) {
    EXPECT_NE(MakeSolver(name), nullptr) << name;
    EXPECT_EQ(MakeSolver(name)->name(), name);
  }
  EXPECT_EQ(MakeSolver("no-such-solver"), nullptr);
}

TEST(RegistryTest, StandardSolversNonEmpty) {
  EXPECT_GE(StandardApproximationSolvers().size(), 5u);
}

// RunAll on a pool must be a pure parallelization: same solver set, same
// order, same statuses, same costs and deletion sets as the sequential run.
TEST(RegistryTest, RunAllParallelMatchesSequential) {
  Rng rng(17);
  PathSchemaParams params;
  params.levels = 3;
  params.roots = 2;
  params.fanout = 2;
  params.deletion_fraction = 0.3;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  const VseInstance& instance = *generated->instance;

  std::vector<SolverRun> sequential = RunAll(instance, nullptr);
  ThreadPool pool(4);
  std::vector<SolverRun> parallel = RunAll(instance, &pool);

  ASSERT_EQ(sequential.size(), parallel.size());
  ASSERT_GE(sequential.size(), 6u);
  for (size_t i = 0; i < sequential.size(); ++i) {
    const SolverRun& seq = sequential[i];
    const SolverRun& par = parallel[i];
    EXPECT_EQ(seq.name, par.name);
    EXPECT_GE(seq.wall_ms, 0.0);
    EXPECT_GE(par.wall_ms, 0.0);
    ASSERT_EQ(seq.result.ok(), par.result.ok()) << seq.name;
    if (!seq.result.ok()) {
      EXPECT_EQ(seq.result.status().code(), par.result.status().code());
      continue;
    }
    EXPECT_DOUBLE_EQ(seq.result->Cost(), par.result->Cost()) << seq.name;
    EXPECT_EQ(seq.result->deletion.size(), par.result->deletion.size())
        << seq.name;
    for (const TupleRef& ref : seq.result->deletion) {
      EXPECT_TRUE(par.result->deletion.Contains(ref)) << seq.name;
    }
  }
}

TEST(RegistryTest, RunAllReportsUnknownSolverName) {
  Rng rng(18);
  PathSchemaParams params;
  params.levels = 2;
  params.roots = 1;
  params.fanout = 2;
  params.deletion_fraction = 0.5;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  std::vector<SolverRun> runs =
      RunAll(*generated->instance, nullptr, {"greedy", "no-such-solver"});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_TRUE(runs[0].result.ok());
  ASSERT_FALSE(runs[1].result.ok());
  EXPECT_EQ(runs[1].result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace delprop
