#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "solvers/balanced_pnpsc_solver.h"
#include "solvers/exact_solver.h"
#include "workload/path_schema.h"
#include "workload/random_workload.h"

namespace delprop {
namespace {

TEST(BalancedSolverTest, NeverWorseThanDoingNothing) {
  Rng rng(81);
  for (int trial = 0; trial < 15; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    if (!instance.all_unique_witness()) continue;
    BalancedPnpscSolver solver;
    Result<VseSolution> solution = solver.Solve(instance);
    ASSERT_TRUE(solution.ok()) << solution.status().ToString();
    double do_nothing = 0.0;
    for (const ViewTupleId& id : instance.deletion_tuples()) {
      do_nothing += instance.weight(id);
    }
    // The ±PSC image always contains the empty choice, and LowDegTwo's
    // thresholds include the skip-only cover, so the result cannot exceed
    // leaving everything in place... modulo the greedy's choices; verify
    // against the exact balanced optimum instead.
    ExactBalancedSolver exact;
    Result<VseSolution> optimal = exact.Solve(instance);
    ASSERT_TRUE(optimal.ok());
    EXPECT_LE(optimal->BalancedCost(), solution->BalancedCost() + 1e-9);
    EXPECT_LE(optimal->BalancedCost(), do_nothing + 1e-9);
  }
}

TEST(BalancedSolverTest, WithinLemmaOneBound) {
  Rng rng(82);
  for (int trial = 0; trial < 15; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 8;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    if (!instance.all_unique_witness()) continue;
    BalancedPnpscSolver approx;
    ExactBalancedSolver exact;
    Result<VseSolution> a = approx.Solve(instance);
    Result<VseSolution> b = exact.Solve(instance);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    double l = static_cast<double>(instance.max_arity());
    double v = static_cast<double>(instance.TotalViewTuples());
    double dv = static_cast<double>(instance.TotalDeletionTuples());
    double bound =
        2.0 * std::sqrt(l * (v + dv) *
                        std::log(std::max(2.0, dv)));
    EXPECT_LE(a->BalancedCost(),
              bound * std::max(b->BalancedCost(), 1.0) + 1e-9)
        << "trial " << trial;
  }
}

TEST(BalancedSolverTest, RefusesMultiWitness) {
  // Fig. 1's Q3 has a multi-witness tuple.
  Rng rng(83);
  RandomWorkloadParams params;
  Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
  ASSERT_TRUE(generated.ok());
  // Force a multi-witness situation via author/journal is tested elsewhere;
  // here just exercise the fast path on unique-witness instances.
  const VseInstance& instance = *generated->instance;
  BalancedPnpscSolver solver;
  Result<VseSolution> solution = solver.Solve(instance);
  if (instance.all_unique_witness()) {
    EXPECT_TRUE(solution.ok());
  } else {
    EXPECT_EQ(solution.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(ExactBalancedTest, PrefersSkippingExpensiveDeletions) {
  // Weight a ΔV tuple so high a deletion is never worth it vs. weight the
  // collateral so low that deletion is clearly right.
  Rng rng(84);
  PathSchemaParams params;
  params.levels = 3;
  params.roots = 1;
  params.fanout = 2;
  params.deletion_fraction = 0.0;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  ASSERT_TRUE(generated.ok());
  VseInstance& instance = *generated->instance;
  ASSERT_GT(instance.view(0).size(), 0u);
  ASSERT_TRUE(instance.MarkForDeletion(ViewTupleId{0, 0}).ok());

  ExactBalancedSolver exact;
  // Case 1: ΔV weight tiny, collateral weights huge → do nothing.
  ASSERT_TRUE(instance.SetWeight(ViewTupleId{0, 0}, 0.1).ok());
  Result<VseSolution> lazy = exact.Solve(instance);
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ(lazy->deletion.size(), 0u);
  EXPECT_NEAR(lazy->BalancedCost(), 0.1, 1e-9);

  // Case 2: ΔV weight huge → kill it despite collateral.
  ASSERT_TRUE(instance.SetWeight(ViewTupleId{0, 0}, 1000.0).ok());
  Result<VseSolution> eager = exact.Solve(instance);
  ASSERT_TRUE(eager.ok());
  EXPECT_GT(eager->deletion.size(), 0u);
  EXPECT_LT(eager->BalancedCost(), 1000.0);
}

TEST(ExactBalancedTest, StandardFeasibleSolutionUpperBoundsBalanced) {
  Rng rng(85);
  for (int trial = 0; trial < 10; ++trial) {
    RandomWorkloadParams params;
    params.relations = 2;
    params.rows_per_relation = 7;
    params.queries = 2;
    Result<GeneratedVse> generated = GenerateRandomWorkload(rng, params);
    ASSERT_TRUE(generated.ok());
    const VseInstance& instance = *generated->instance;
    ExactSolver standard;
    ExactBalancedSolver balanced;
    Result<VseSolution> s = standard.Solve(instance);
    Result<VseSolution> b = balanced.Solve(instance);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(b.ok());
    // A standard-feasible optimum has balanced cost == its side effect, so
    // the balanced optimum is at most that.
    EXPECT_LE(b->BalancedCost(), s->Cost() + 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace delprop
