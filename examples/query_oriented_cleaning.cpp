// Query-oriented cleaning scenario (Section V, QOCO-style): a batch of
// expert feedback flags wrong answers across several materialized views of a
// product catalog; the library translates the whole batch back to source
// deletions in one shot — the theoretical guarantee the paper contributes —
// instead of processing feedback one answer at a time.
#include <cstdio>

#include "common/rng.h"
#include "solvers/greedy_solver.h"
#include "solvers/primal_dual_tree_solver.h"
#include "solvers/rbsc_reduction_solver.h"
#include "workload/path_schema.h"

int main() {
  using namespace delprop;

  // A 3-level catalog: suppliers -> products -> offers, with two dashboards
  // (views): full chains, and product-offer pairs.
  Rng rng(2024);
  PathSchemaParams params;
  params.levels = 3;
  params.roots = 3;
  params.fanout = 3;
  params.deletion_fraction = 0.0;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  if (!generated.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  VseInstance& instance = *generated->instance;
  std::printf("Catalog: %zu source tuples, %zu views, %zu view tuples\n",
              generated->database->total_tuple_count(), instance.view_count(),
              instance.TotalViewTuples());

  // The crowd flags a batch of wrong answers across both dashboards.
  size_t flagged = 0;
  for (size_t v = 0; v < instance.view_count(); ++v) {
    for (size_t t = 0; t < instance.view(v).size(); t += 5) {
      if (instance.MarkForDeletion(ViewTupleId{v, t}).ok()) ++flagged;
    }
  }
  std::printf("Batch feedback: %zu answers flagged as wrong\n", flagged);

  // Batch translation with the paper's tree algorithm (the catalog's dual
  // graph is a hypertree), versus the naive per-answer greedy.
  PrimalDualTreeSolver tree_solver;
  GreedySolver greedy;
  Result<VseSolution> batched = tree_solver.Solve(instance);
  Result<VseSolution> naive = greedy.Solve(instance);
  if (!batched.ok() || !naive.ok()) {
    std::fprintf(stderr, "solve failed: %s / %s\n",
                 batched.ok() ? "ok" : batched.status().ToString().c_str(),
                 naive.ok() ? "ok" : naive.status().ToString().c_str());
    return 1;
  }

  std::printf("\nPrimeDualVSE (batch, Theorem 3 guarantee):\n");
  std::printf("  source deletions: %zu, collateral answers lost: %.0f\n",
              batched->deletion.size(), batched->Cost());
  std::printf("Greedy per-answer baseline:\n");
  std::printf("  source deletions: %zu, collateral answers lost: %.0f\n",
              naive->deletion.size(), naive->Cost());
  std::printf("\nBoth eliminate every flagged answer: %s / %s\n",
              batched->Feasible() ? "yes" : "no",
              naive->Feasible() ? "yes" : "no");
  return 0;
}
