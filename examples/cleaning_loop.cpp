// Iterative cleaning loop (Section V) built on the CleaningSession
// application component: several rounds of feedback are translated in batch
// and applied; the views refresh between rounds, so later feedback refers to
// the already-cleaned state.
#include <cstdio>

#include "applications/cleaning_session.h"
#include "common/rng.h"
#include "solvers/solver_registry.h"
#include "workload/path_schema.h"

int main() {
  using namespace delprop;

  Rng rng(99);
  PathSchemaParams params;
  params.levels = 3;
  params.roots = 2;
  params.fanout = 3;
  params.deletion_fraction = 0.0;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  if (!generated.ok()) return 1;

  std::vector<const ConjunctiveQuery*> queries;
  for (const auto& q : generated->queries) queries.push_back(q.get());
  CleaningSession session(*generated->database, queries);
  if (!session.Begin().ok()) return 1;

  std::unique_ptr<VseSolver> solver = MakeSolver("dp-tree");
  Rng feedback_rng(7);

  for (int round = 1; round <= 3; ++round) {
    const VseInstance* instance = session.instance();
    std::printf("round %d: %zu answers on display\n", round,
                instance->TotalViewTuples());
    // The "crowd" flags ~20%% of the surviving answers of view 0.
    size_t flagged = 0;
    const View& view = instance->view(0);
    for (size_t t = 0; t < view.size(); ++t) {
      if (!feedback_rng.NextBool(0.2)) continue;
      std::vector<std::string> values;
      for (ValueId v : view.tuple(t).values) {
        values.push_back(generated->database->dict().Text(v));
      }
      if (session.Flag(0, values).ok()) ++flagged;
    }
    if (flagged == 0) {
      std::printf("  no flags this round\n");
      continue;
    }
    Result<CleaningSession::RoundOutcome> outcome =
        session.ResolveRound(*solver);
    if (!outcome.ok()) {
      std::fprintf(stderr, "  resolve failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "  %zu flags -> deleted %zu source tuples, side-effect %.0f "
        "(solver: %s)\n",
        flagged, outcome->deleted.size(), outcome->side_effect_weight,
        outcome->solver_name.c_str());
  }

  std::printf(
      "\nafter %zu rounds: %zu source tuples deleted in total, cumulative "
      "side-effect %.0f\n",
      session.rounds_resolved(), session.applied_deletions().size(),
      session.total_side_effect());
  return 0;
}
