// Balanced deletion propagation scenario (Section V): crowd feedback is
// noisy — ΔV may be incompletely or wrongly specified — so instead of
// eliminating every flagged answer at any price, the balanced objective
// trades flagged answers left in place against good answers destroyed.
#include <cstdio>

#include "common/rng.h"
#include "solvers/dp_tree_solver.h"
#include "solvers/exact_solver.h"
#include "workload/path_schema.h"

int main() {
  using namespace delprop;

  Rng rng(7);
  PathSchemaParams params;
  params.levels = 3;
  params.roots = 2;
  params.fanout = 3;
  params.deletion_fraction = 0.3;
  Result<GeneratedVse> generated = GeneratePathSchema(rng, params);
  if (!generated.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  VseInstance& instance = *generated->instance;
  std::printf("Views: %zu tuples total, %zu flagged by the crowd\n",
              instance.TotalViewTuples(), instance.TotalDeletionTuples());

  // Confidence weighting: flags from trusted reviewers weigh 3, the rest 1.
  size_t i = 0;
  for (const ViewTupleId& id : instance.deletion_tuples()) {
    if (i++ % 3 == 0) (void)instance.SetWeight(id, 3.0);
  }

  // Standard objective: every flag MUST be honored.
  ExactSolver standard;
  Result<VseSolution> strict = standard.Solve(instance);
  if (!strict.ok()) return 1;

  // Balanced objective (Algorithm 4's DP solves it exactly on this
  // hypertree workload): low-confidence flags may stay if honoring them is
  // too destructive.
  DpTreeSolver balanced(Objective::kBalanced);
  Result<VseSolution> relaxed = balanced.Solve(instance);
  if (!relaxed.ok()) {
    std::fprintf(stderr, "balanced solve failed: %s\n",
                 relaxed.status().ToString().c_str());
    return 1;
  }

  std::printf("\nStrict translation (standard objective):\n");
  std::printf("  deletions: %zu, good answers lost: %.0f\n",
              strict->deletion.size(), strict->Cost());
  std::printf("Balanced translation (DPTreeVSE):\n");
  std::printf("  deletions: %zu, flags left in place: %zu, "
              "good answers lost: %zu, balanced cost: %.1f\n",
              relaxed->deletion.size(),
              relaxed->report.surviving_deletions.size(),
              relaxed->report.killed_preserved.size(),
              relaxed->BalancedCost());
  std::printf("\nBalanced cost is never above the strict side-effect: %s\n",
              relaxed->BalancedCost() <= strict->Cost() + 1e-9 ? "yes" : "no");
  return 0;
}
