// Quickstart: the paper's Fig. 1 running example, end to end.
//
// Builds the Author/Journal database, materializes the two views, marks the
// unwanted answer (John, XML), and asks the exact solver for the deletion
// with minimum view side-effect.
#include <cstdio>

#include "dp/side_effect.h"
#include "solvers/exact_solver.h"
#include "workload/author_journal.h"

int main() {
  using namespace delprop;

  Result<GeneratedVse> generated = BuildFig1Example();
  if (!generated.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  Database& db = *generated->database;
  VseInstance& instance = *generated->instance;

  std::printf("== Source database (Fig. 1a/1b) ==\n");
  for (RelationId rel = 0; rel < db.relation_count(); ++rel) {
    for (uint32_t row = 0; row < db.relation(rel).row_count(); ++row) {
      std::printf("  %s\n", db.RenderTuple({rel, row}).c_str());
    }
  }

  std::printf("\n== Materialized views ==\n");
  for (size_t v = 0; v < instance.view_count(); ++v) {
    std::printf("  %s  (%zu tuples)\n",
                instance.query(v)
                    .ToString(db.schema(), db.dict())
                    .c_str(),
                instance.view(v).size());
  }

  // The researcher John does not work on XML: remove that answer from Q3.
  Status marked = instance.MarkForDeletionByValues(0, {"John", "XML"});
  if (!marked.ok()) {
    std::fprintf(stderr, "mark failed: %s\n", marked.ToString().c_str());
    return 1;
  }
  std::printf("\nDeletion request: Q3(John, XML)\n");

  ExactSolver solver;
  Result<VseSolution> solution = solver.Solve(instance);
  if (!solution.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }

  std::printf("\n== Optimal source deletion (solver: %s) ==\n",
              solution->solver_name.c_str());
  for (const TupleRef& ref : solution->deletion.Sorted()) {
    std::printf("  delete %s\n", db.RenderTuple(ref).c_str());
  }
  std::printf("\nView side-effect (weight): %.0f\n", solution->Cost());
  for (const ViewTupleId& id : solution->report.killed_preserved) {
    std::printf("  collateral: %s\n", instance.RenderViewTuple(id).c_str());
  }
  std::printf("\nAll requested deletions eliminated: %s\n",
              solution->Feasible() ? "yes" : "no");
  return 0;
}
