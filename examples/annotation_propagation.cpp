// Data annotation scenario (Section V): when an error is spotted in one
// view, propagating deletions over the results of MULTIPLE queries narrows
// the set of suspect source tuples — "the more queries and views, the closer
// we approach the side-effect free solution".
//
// We compare the optimal deletion when only Q3's error is known against the
// optimum when the corresponding Q4 errors are reported as well.
#include <cstdio>

#include "solvers/exact_solver.h"
#include "workload/author_journal.h"

namespace {

void Report(const delprop::VseInstance& instance,
            const delprop::VseSolution& solution, const char* label) {
  std::printf("\n-- %s --\n", label);
  for (const delprop::TupleRef& ref : solution.deletion.Sorted()) {
    std::printf("  delete %s\n",
                instance.database().RenderTuple(ref).c_str());
  }
  std::printf("  side-effect: %.0f tuple(s)\n", solution.Cost());
  for (const delprop::ViewTupleId& id : solution.report.killed_preserved) {
    std::printf("    collateral: %s\n",
                instance.RenderViewTuple(id).c_str());
  }
}

}  // namespace

int main() {
  using namespace delprop;

  // Scenario A: the curator only flags the Q3 answer.
  {
    Result<GeneratedVse> generated = BuildFig1Example();
    if (!generated.ok()) return 1;
    VseInstance& instance = *generated->instance;
    if (!instance.MarkForDeletionByValues(0, {"John", "XML"}).ok()) return 1;
    ExactSolver solver;
    Result<VseSolution> solution = solver.Solve(instance);
    if (!solution.ok()) return 1;
    std::printf("Scenario A: only Q3(John, XML) flagged\n");
    Report(instance, *solution, "optimal translation");
  }

  // Scenario B: annotations merged across both views. John's XML rows in Q4
  // stem from the same source error, so the curator flags them too; the
  // solver no longer counts them as collateral and the translation becomes
  // unambiguous.
  {
    Result<GeneratedVse> generated = BuildFig1Example();
    if (!generated.ok()) return 1;
    VseInstance& instance = *generated->instance;
    if (!instance.MarkForDeletionByValues(0, {"John", "XML"}).ok()) return 1;
    if (!instance.MarkForDeletionByValues(1, {"John", "TKDE", "XML"}).ok()) {
      return 1;
    }
    if (!instance.MarkForDeletionByValues(1, {"John", "TODS", "XML"}).ok()) {
      return 1;
    }
    ExactSolver solver;
    Result<VseSolution> solution = solver.Solve(instance);
    if (!solution.ok()) return 1;
    std::printf("\nScenario B: Q3 and Q4 annotations merged\n");
    Report(instance, *solution, "optimal translation");
    std::printf(
        "\nMerging feedback across views cut the ambiguity: the deletion\n"
        "now touches only John's own rows and the side-effect shrinks.\n");
  }
  return 0;
}
