#include "applications/pareto.h"

#include "solvers/exact_solver.h"

namespace delprop {

Result<std::vector<ParetoPoint>> SourceViewParetoFrontier(
    const VseInstance& instance, size_t max_budget,
    uint64_t node_budget_per_point) {
  std::vector<ParetoPoint> frontier;
  for (size_t k = 0; k <= max_budget; ++k) {
    BoundedExactSolver solver(k, node_budget_per_point);
    Result<VseSolution> solution = solver.Solve(instance);
    if (!solution.ok()) {
      if (solution.status().code() == StatusCode::kInfeasible) {
        continue;  // budget too small; try the next one
      }
      return solution.status();
    }
    if (!solution->gap.optimal) {
      // An uncertified incumbent would poison the frontier: every point's
      // side-effect is advertised as the optimum for its budget.
      return Status::FailedPrecondition(
          "bounded exact search exceeded its node budget at deletion budget " +
          std::to_string(k));
    }
    double cost = solution->Cost();
    if (!frontier.empty() && cost >= frontier.back().side_effect) {
      continue;  // dominated by a smaller budget
    }
    ParetoPoint point;
    point.deletions = k;
    point.side_effect = cost;
    point.solution = std::move(*solution);
    frontier.push_back(std::move(point));
    if (cost == 0.0) break;  // side-effect free: nothing left to improve
  }
  if (frontier.empty()) {
    return Status::Infeasible(
        "no budget up to the maximum eliminates all of ΔV");
  }
  return frontier;
}

}  // namespace delprop
