#ifndef DELPROP_APPLICATIONS_PARETO_H_
#define DELPROP_APPLICATIONS_PARETO_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dp/solution.h"
#include "dp/vse_instance.h"

namespace delprop {

/// One point of the source-budget / view-damage trade-off.
struct ParetoPoint {
  /// The source-deletion budget this point was solved under (and met).
  size_t deletions = 0;
  /// Minimum view side-effect achievable within that budget.
  double side_effect = 0.0;
  VseSolution solution;
};

/// Enumerates the Pareto frontier between the two side-effect measures the
/// literature studies (source: Tables II/III; view: Tables IV/V): for each
/// budget k = k_min..max_budget, the optimal view side-effect with |ΔD| ≤ k,
/// via BoundedExactSolver. Dominated points (same cost as a smaller budget)
/// are dropped, so the result is strictly decreasing in side_effect. k_min
/// is the smallest feasible budget. Small instances only (exact search).
Result<std::vector<ParetoPoint>> SourceViewParetoFrontier(
    const VseInstance& instance, size_t max_budget,
    uint64_t node_budget_per_point = 20'000'000);

}  // namespace delprop

#endif  // DELPROP_APPLICATIONS_PARETO_H_
