#ifndef DELPROP_APPLICATIONS_CLEANING_SESSION_H_
#define DELPROP_APPLICATIONS_CLEANING_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dp/solver.h"
#include "dp/vse_instance.h"
#include "relational/database.h"

namespace delprop {

/// The Section V query-oriented cleaning loop (QOCO-style), as a reusable
/// application component: rounds of expert/crowd feedback on view answers
/// are translated to source deletions in batch — the batch processing with
/// a guarantee is exactly what the paper contributes — and applied, after
/// which the views are re-materialized for the next round.
///
/// Usage:
///   CleaningSession session(db, queries);
///   session.Begin();
///   session.Flag(view, {"John", "XML"});     // any number of flags
///   auto outcome = session.ResolveRound(*solver);   // translate + apply
///   ... inspect outcome, flag more answers on the refreshed views ...
///
/// The database itself is never rewritten; the session accumulates the
/// deletions of all rounds as a mask.
class CleaningSession {
 public:
  /// Summary of one resolved feedback round.
  struct RoundOutcome {
    /// Source tuples deleted this round.
    std::vector<TupleRef> deleted;
    /// Flags that could not be honored (standard solvers: none on success;
    /// balanced solvers may leave some).
    std::vector<ViewTupleId> unresolved_flags;
    /// Preserved answers lost this round (the side-effect).
    std::vector<ViewTupleId> collateral;
    double side_effect_weight = 0.0;
    std::string solver_name;
  };

  /// `database` and `queries` must outlive the session.
  CleaningSession(const Database& database,
                  std::vector<const ConjunctiveQuery*> queries);

  /// (Re-)materializes the views over the database minus all deletions
  /// applied so far and starts a feedback round. Must be called before
  /// Flag/ResolveRound, and again after each resolved round (ResolveRound
  /// does it automatically on success).
  Status Begin();

  /// Flags the answer with the given values on view `view_index` as wrong.
  Status Flag(size_t view_index, const std::vector<std::string>& values);

  /// Number of flags in the current round.
  size_t pending_flags() const;

  /// Translates this round's flags with `solver`, applies the deletion, and
  /// refreshes the views for the next round — incrementally, by filtering
  /// the surviving lineage (VseInstance::CreateByFiltering), not by
  /// re-running the queries.
  Result<RoundOutcome> ResolveRound(VseSolver& solver);

  /// The current round's instance (flags included); null before Begin.
  const VseInstance* instance() const { return instance_.get(); }

  /// All source tuples deleted across rounds.
  const DeletionSet& applied_deletions() const { return applied_; }

  /// Total side-effect weight accumulated across rounds.
  double total_side_effect() const { return total_side_effect_; }

  /// Number of resolved rounds.
  size_t rounds_resolved() const { return rounds_; }

 private:
  const Database* database_;
  std::vector<const ConjunctiveQuery*> queries_;
  std::unique_ptr<VseInstance> instance_;
  DeletionSet applied_;
  double total_side_effect_ = 0.0;
  size_t rounds_ = 0;
};

}  // namespace delprop

#endif  // DELPROP_APPLICATIONS_CLEANING_SESSION_H_
