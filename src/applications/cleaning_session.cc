#include "applications/cleaning_session.h"

namespace delprop {

CleaningSession::CleaningSession(
    const Database& database, std::vector<const ConjunctiveQuery*> queries)
    : database_(&database), queries_(std::move(queries)) {}

Status CleaningSession::Begin() {
  Result<VseInstance> instance =
      VseInstance::Create(*database_, queries_, &applied_);
  if (!instance.ok()) return instance.status();
  instance_ = std::make_unique<VseInstance>(std::move(*instance));
  return Status::Ok();
}

Status CleaningSession::Flag(size_t view_index,
                             const std::vector<std::string>& values) {
  if (instance_ == nullptr) {
    return Status::FailedPrecondition("call Begin() before Flag()");
  }
  return instance_->MarkForDeletionByValues(view_index, values);
}

size_t CleaningSession::pending_flags() const {
  return instance_ == nullptr ? 0 : instance_->TotalDeletionTuples();
}

Result<CleaningSession::RoundOutcome> CleaningSession::ResolveRound(
    VseSolver& solver) {
  if (instance_ == nullptr) {
    return Status::FailedPrecondition("call Begin() before ResolveRound()");
  }
  if (instance_->TotalDeletionTuples() == 0) {
    return Status::FailedPrecondition("no flags in the current round");
  }
  Result<VseSolution> solution = solver.Solve(*instance_);
  if (!solution.ok()) return solution.status();

  RoundOutcome outcome;
  outcome.deleted = solution->deletion.Sorted();
  outcome.unresolved_flags = solution->report.surviving_deletions;
  outcome.collateral = solution->report.killed_preserved;
  outcome.side_effect_weight = solution->report.side_effect_weight;
  outcome.solver_name = solution->solver_name;

  // Apply the round's deletions and refresh incrementally.
  for (const TupleRef& ref : outcome.deleted) applied_.Insert(ref);
  total_side_effect_ += outcome.side_effect_weight;
  ++rounds_;
  Result<VseInstance> refreshed =
      VseInstance::CreateByFiltering(*instance_, solution->deletion);
  if (!refreshed.ok()) return refreshed.status();
  instance_ = std::make_unique<VseInstance>(std::move(*refreshed));
  return outcome;
}

}  // namespace delprop
