#include "lint/rules.h"

#include <utility>

namespace delprop {
namespace lint {

HotPathHashingRule::HotPathHashingRule(std::vector<std::string> scoped_paths)
    : scoped_paths_(std::move(scoped_paths)) {}

std::vector<std::string> HotPathHashingRule::DefaultScopedPaths() {
  return {"src/solvers/", "src/setcover/", "src/engine/"};
}

void HotPathHashingRule::Check(const SourceFile& file,
                               std::vector<Diagnostic>* out) const {
  if (!PathHasAnyPrefix(file.path(), scoped_paths_)) return;
  const std::vector<Token>& tokens = file.tokens();
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!tokens[i].Is("unordered_map")) continue;
    if (!tokens[i + 1].Is("<")) continue;
    const Token& key = tokens[i + 2];
    if (!key.Is("TupleRef") && !key.Is("ViewTupleId")) continue;
    out->push_back(Diagnostic{
        file.path(), tokens[i].line, std::string(name()),
        "'unordered_map<" + std::string(key.text) +
            ", ...>' in a solver-layer hot path; intern through "
            "CompiledInstance and index flat arrays by dense id instead"});
  }
}

}  // namespace lint
}  // namespace delprop
