#include "lint/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <utility>

namespace delprop {
namespace lint {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

void JsonValue::Append(JsonValue v) { items_.push_back(std::move(v)); }

const JsonValue* JsonValue::Find(const std::string& key) const {
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  members_[key] = std::move(v);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string FormatNumber(double d) {
  // Integral values (the only numbers we emit) print without a decimal
  // point, matching what a human would write in the baseline.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      *out += FormatNumber(number_);
      break;
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (size_t i = 0; i < items_.size(); ++i) {
        *out += inner_pad;
        items_[i].DumpTo(out, indent + 1);
        if (i + 1 < items_.size()) *out += ',';
        *out += '\n';
      }
      *out += pad;
      *out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      size_t i = 0;
      for (const auto& [key, value] : members_) {
        *out += inner_pad;
        *out += '"';
        *out += JsonEscape(key);
        *out += "\": ";
        value.DumpTo(out, indent + 1);
        if (++i < members_.size()) *out += ',';
        *out += '\n';
      }
      *out += pad;
      *out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    Result<JsonValue> v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      Result<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      return JsonValue::Str(*std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::Bool(true);
    if (ConsumeWord("false")) return JsonValue::Bool(false);
    if (ConsumeWord("null")) return JsonValue();
    return ParseNumber();
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u':
          // Preserved verbatim; our documents are ASCII.
          out += "\\u";
          break;
        default:
          return Fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    try {
      return JsonValue::Number(std::stod(text_.substr(start, pos_ - start)));
    } catch (...) {
      return Fail("malformed number");
    }
  }

  Result<JsonValue> ParseArray() {
    Consume('[');
    JsonValue out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return out;
    while (true) {
      SkipWs();
      Result<JsonValue> v = ParseValue();
      if (!v.ok()) return v;
      out.Append(*std::move(v));
      SkipWs();
      if (Consume(']')) return out;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    Consume('{');
    JsonValue out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return out;
    while (true) {
      SkipWs();
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      Result<JsonValue> v = ParseValue();
      if (!v.ok()) return v;
      out.Set(*key, *std::move(v));
      SkipWs();
      if (Consume('}')) return out;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace lint
}  // namespace delprop
