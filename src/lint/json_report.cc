#include "lint/json_report.h"

#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "lint/json.h"

namespace delprop {
namespace lint {

std::string ReportToJson(const LintReport& report,
                         const std::string& git_stamp) {
  JsonValue root = JsonValue::Object();
  root.Set("tool", JsonValue::Str("delprop_lint"));
  root.Set("version", JsonValue::Number(2));
  if (!git_stamp.empty()) root.Set("git", JsonValue::Str(git_stamp));
  root.Set("files_checked",
           JsonValue::Number(static_cast<double>(report.files_checked)));
  root.Set("suppressed",
           JsonValue::Number(static_cast<double>(report.suppressed)));
  JsonValue findings = JsonValue::Array();
  for (const Diagnostic& diag : report.diagnostics) {
    JsonValue f = JsonValue::Object();
    f.Set("file", JsonValue::Str(diag.file));
    f.Set("line", JsonValue::Number(diag.line));
    f.Set("rule", JsonValue::Str(diag.rule));
    f.Set("message", JsonValue::Str(diag.message));
    findings.Append(std::move(f));
  }
  root.Set("findings", std::move(findings));
  return root.Dump();
}

Result<std::vector<BaselineEntry>> LoadBaseline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot read baseline " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> doc = ParseJson(std::move(buffer).str());
  if (!doc.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(doc.status().message()));
  }
  const JsonValue* findings = doc->Find("findings");
  if (findings == nullptr || findings->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(path +
                                   ": missing or non-array \"findings\"");
  }
  std::vector<BaselineEntry> out;
  for (const JsonValue& f : findings->items()) {
    const JsonValue* file = f.Find("file");
    const JsonValue* rule = f.Find("rule");
    const JsonValue* message = f.Find("message");
    if (file == nullptr || rule == nullptr || message == nullptr ||
        file->kind() != JsonValue::Kind::kString ||
        rule->kind() != JsonValue::Kind::kString ||
        message->kind() != JsonValue::Kind::kString) {
      return Status::InvalidArgument(
          path + ": finding lacks string file/rule/message");
    }
    out.push_back(BaselineEntry{file->AsString(), rule->AsString(),
                                message->AsString()});
  }
  return out;
}

BaselineDelta ApplyBaseline(const std::vector<Diagnostic>& diagnostics,
                            const std::vector<BaselineEntry>& baseline) {
  // Multiset match on (file, rule, message) — line numbers drift with
  // unrelated edits and are deliberately ignored.
  std::map<std::tuple<std::string, std::string, std::string>, size_t> budget;
  for (const BaselineEntry& entry : baseline) {
    ++budget[{entry.file, entry.rule, entry.message}];
  }
  BaselineDelta delta;
  for (const Diagnostic& diag : diagnostics) {
    auto it = budget.find({diag.file, diag.rule, diag.message});
    if (it != budget.end() && it->second > 0) {
      --it->second;
      ++delta.baselined;
    } else {
      delta.fresh.push_back(diag);
    }
  }
  for (const auto& [key, remaining] : budget) {
    (void)key;
    delta.stale += remaining;
  }
  return delta;
}

}  // namespace lint
}  // namespace delprop
