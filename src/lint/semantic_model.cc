#include "lint/semantic_model.h"

#include <algorithm>
#include <deque>

#include "lint/rule.h"

namespace delprop {
namespace lint {
namespace {

// Spellings that look like `name(` but never open a function definition or
// name a project call target. Includes the control keywords (so `if (x) {`
// is not a definition) and function-style casts over builtin types.
const std::unordered_set<std::string_view>& Keywords() {
  static const std::unordered_set<std::string_view> kSet = {
      "if",       "for",       "while",    "switch",   "catch",
      "return",   "do",        "else",     "sizeof",   "alignof",
      "alignas",  "decltype",  "noexcept", "new",      "delete",
      "throw",    "case",      "goto",     "operator", "static_assert",
      "assert",   "defined",   "typeid",   "co_await", "co_return",
      "bool",     "char",      "int",      "unsigned", "signed",
      "short",    "long",      "float",    "double",   "void",
      "auto",     "int8_t",    "int16_t",  "int32_t",  "int64_t",
      "uint8_t",  "uint16_t",  "uint32_t", "uint64_t", "size_t",
      "ptrdiff_t"};
  return kSet;
}

// Index of the token matching the opener at `open` (toks[open] must spell
// `open_text`), or toks.size() when unbalanced.
size_t MatchGroup(const std::vector<Token>& toks, size_t open,
                  std::string_view open_text, std::string_view close_text) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == open_text) {
      ++depth;
    } else if (toks[i].text == close_text) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

// Skips a template argument list starting at a `<` token; returns the index
// just past the closing `>`. Treats `>>` as two closers (the lexer folds it
// into one token). Bails at `;`/`{`/`}` so a stray comparison `<` cannot
// swallow the rest of the file.
size_t SkipAngles(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return i + 1;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t.text == ";" || t.text == "{" || t.text == "}") {
      return i;
    }
  }
  return toks.size();
}

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

}  // namespace

void SemanticModel::AddFile(const SourceFile& file) {
  // Tree-wide reserved-container names: `x.reserve(` / `x->reserve(`.
  const std::vector<Token>& toks = file.tokens();
  for (size_t k = 2; k + 1 < toks.size(); ++k) {
    if (toks[k].Is("reserve") && toks[k + 1].Is("(") &&
        (toks[k - 1].Is(".") || toks[k - 1].Is("->")) &&
        IsIdent(toks[k - 2])) {
      reserved_names_.insert(std::string(toks[k - 2].text));
    }
  }
  ExtractFunctions(file);
}

void SemanticModel::ExtractFunctions(const SourceFile& file) {
  const std::vector<Token>& toks = file.tokens();
  const size_t n = toks.size();

  struct Scope {
    bool is_class = false;
    std::string name;
  };
  std::vector<Scope> scopes;

  auto innermost_class = [&scopes]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->is_class) return it->name;
    }
    return std::string();
  };

  size_t i = 0;
  while (i < n) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "{") {
        scopes.push_back(Scope{});
      } else if (t.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
      }
      ++i;
      continue;
    }
    if (!IsIdent(t)) {
      ++i;
      continue;
    }

    if (t.Is("template")) {
      // Skip the parameter list so `template <class T>` never reads as a
      // class definition.
      if (i + 1 < n && toks[i + 1].Is("<")) {
        i = SkipAngles(toks, i + 1);
      } else {
        ++i;
      }
      continue;
    }
    if (t.Is("using") || t.Is("typedef")) {
      while (i < n && !toks[i].Is(";")) ++i;
      continue;
    }
    if (t.Is("namespace")) {
      size_t j = i + 1;
      std::string name;
      while (j < n && IsIdent(toks[j])) {
        name = std::string(toks[j].text);
        ++j;
        if (j < n && toks[j].Is("::")) ++j;  // nested namespace a::b
      }
      if (j < n && toks[j].Is("{")) {
        scopes.push_back(Scope{false, name});
        i = j + 1;
      } else {
        // Alias (`namespace fs = ...;`): consume the statement.
        while (j < n && !toks[j].Is(";")) ++j;
        i = j + 1;
      }
      continue;
    }
    if (t.Is("enum")) {
      // Enumerator lists contain no functions; skip the whole body.
      size_t j = i + 1;
      while (j < n && !toks[j].Is("{") && !toks[j].Is(";")) ++j;
      if (j < n && toks[j].Is("{")) j = MatchGroup(toks, j, "{", "}");
      i = j + 1;
      continue;
    }
    if (t.Is("class") || t.Is("struct")) {
      // `template <class T>` is handled above; `<class` / `, class` inside
      // an unskipped list is still possible — ignore those.
      if (i > 0 && (toks[i - 1].Is("<") || toks[i - 1].Is(","))) {
        ++i;
        continue;
      }
      size_t j = i + 1;
      std::string name;
      while (j < n && IsIdent(toks[j]) && !toks[j].Is("final")) {
        name = std::string(toks[j].text);
        ++j;
        if (j + 1 < n && toks[j].Is("::") && IsIdent(toks[j + 1])) {
          ++j;  // out-of-line nested class: keep the last component
        } else {
          break;
        }
      }
      if (j < n && toks[j].Is("final")) ++j;
      // Base clause / nothing: scan to the body or the end of a
      // forward/variable declaration.
      size_t k = j;
      int parens = 0;
      while (k < n) {
        if (toks[k].Is("(")) ++parens;
        if (toks[k].Is(")")) --parens;
        if (parens == 0 && (toks[k].Is("{") || toks[k].Is(";"))) break;
        ++k;
      }
      if (k < n && toks[k].Is("{")) {
        scopes.push_back(Scope{true, name});
        i = k + 1;
      } else {
        i = k + 1;
      }
      continue;
    }

    // Candidate function definition: identifier followed by '('.
    if (i + 1 < n && toks[i + 1].Is("(") &&
        Keywords().count(t.text) == 0) {
      size_t close = MatchGroup(toks, i + 1, "(", ")");
      if (close >= n) {
        ++i;
        continue;
      }
      size_t j = close + 1;
      bool viable = true;
      // Post-parameter qualifiers.
      while (j < n) {
        if (toks[j].Is("const") || toks[j].Is("override") ||
            toks[j].Is("final") || toks[j].Is("&") || toks[j].Is("&&") ||
            toks[j].Is("mutable") || toks[j].Is("volatile")) {
          ++j;
        } else if (toks[j].Is("noexcept")) {
          ++j;
          if (j < n && toks[j].Is("(")) j = MatchGroup(toks, j, "(", ")") + 1;
        } else {
          break;
        }
      }
      // Trailing return type.
      if (j < n && toks[j].Is("->")) {
        ++j;
        while (j < n &&
               (IsIdent(toks[j]) || toks[j].Is("::") || toks[j].Is("<") ||
                toks[j].Is(">") || toks[j].Is("*") || toks[j].Is("&"))) {
          ++j;
        }
      }
      // Constructor initializer list.
      if (j < n && toks[j].Is(":")) {
        ++j;
        while (viable && j < n) {
          while (j < n && (IsIdent(toks[j]) || toks[j].Is("::"))) ++j;
          if (j < n && toks[j].Is("<")) j = SkipAngles(toks, j);
          if (j < n && toks[j].Is("(")) {
            j = MatchGroup(toks, j, "(", ")") + 1;
          } else if (j < n && toks[j].Is("{")) {
            j = MatchGroup(toks, j, "{", "}") + 1;
          } else {
            viable = false;
            break;
          }
          if (j < n && toks[j].Is(",")) {
            ++j;
            continue;
          }
          break;
        }
      }
      if (viable && j < n && toks[j].Is("{")) {
        size_t body_close = MatchGroup(toks, j, "{", "}");
        if (body_close < n) {
          FunctionInfo fn;
          fn.name = std::string(t.text);
          if (i > 0 && toks[i - 1].Is("~")) fn.name = "~" + fn.name;
          if (i >= 2 && toks[i - 1].Is("::") && IsIdent(toks[i - 2])) {
            fn.class_name = std::string(toks[i - 2].text);
          } else {
            fn.class_name = innermost_class();
          }
          fn.qualified = fn.class_name.empty()
                             ? fn.name
                             : fn.class_name + "::" + fn.name;
          fn.file = file.path();
          fn.line = t.line;
          fn.body_begin = j + 1;
          fn.body_end = body_close;
          for (int l = t.line; l <= toks[j].line; ++l) {
            if (file.HasHotStopAnnotation(l)) fn.hot_stop = true;
            if (file.HasHotAnnotation(l)) fn.hot_annotated = true;
          }
          std::unordered_set<std::string_view> seen;
          for (size_t k = fn.body_begin; k + 1 < body_close; ++k) {
            if (IsIdent(toks[k]) && toks[k + 1].Is("(") &&
                Keywords().count(toks[k].text) == 0 &&
                !(k > 0 && toks[k - 1].Is("operator")) &&
                seen.insert(toks[k].text).second) {
              fn.calls.emplace_back(toks[k].text);
            }
          }
          size_t index = functions_.size();
          functions_.push_back(std::move(fn));
          by_file_[file.path()].push_back(index);
          by_name_[functions_[index].name].push_back(index);
          i = body_close + 1;
          continue;
        }
      }
    }
    ++i;
  }
}

bool SemanticModel::InHotScope(const FunctionInfo& fn) const {
  return PathHasAnyPrefix(fn.file, hot_scope_);
}

bool SemanticModel::IsBuiltinHotRoot(const FunctionInfo& fn) const {
  if (fn.class_name == "DamageTracker") return true;
  if (fn.name == "SolveWith" && !fn.class_name.empty() &&
      fn.class_name != "VseSolver") {
    return true;
  }
  return fn.qualified == "BatchSolveEngine::Process";
}

void SemanticModel::Finalize() {
  auto by_position = [this](size_t a, size_t b) {
    const FunctionInfo& fa = functions_[a];
    const FunctionInfo& fb = functions_[b];
    if (fa.file != fb.file) return fa.file < fb.file;
    return fa.line < fb.line;
  };
  for (auto& [name, indices] : by_name_) {
    std::sort(indices.begin(), indices.end(), by_position);
  }

  hot_reachable_.assign(functions_.size(), 0);
  hot_parent_.assign(functions_.size(), kNoParent);

  std::vector<size_t> roots;
  for (size_t i = 0; i < functions_.size(); ++i) {
    const FunctionInfo& fn = functions_[i];
    if (!InHotScope(fn) || fn.hot_stop) continue;
    if (IsBuiltinHotRoot(fn) || fn.hot_annotated) roots.push_back(i);
  }
  std::sort(roots.begin(), roots.end(), [this](size_t a, size_t b) {
    const FunctionInfo& fa = functions_[a];
    const FunctionInfo& fb = functions_[b];
    if (fa.qualified != fb.qualified) return fa.qualified < fb.qualified;
    if (fa.file != fb.file) return fa.file < fb.file;
    return fa.line < fb.line;
  });

  // Deterministic BFS: roots in sorted order, call edges in body order,
  // same-name candidates in (file, line) order. A callee defined in the
  // caller's own file shadows same-named definitions elsewhere — that keeps
  // `search.Run()` resolving to the local search class instead of every
  // `Run` in the tree.
  std::deque<size_t> queue;
  for (size_t root : roots) {
    if (hot_reachable_[root]) continue;
    hot_reachable_[root] = 1;
    queue.push_back(root);
  }
  while (!queue.empty()) {
    size_t current = queue.front();
    queue.pop_front();
    const FunctionInfo& fn = functions_[current];
    for (const std::string& callee : fn.calls) {
      auto it = by_name_.find(callee);
      if (it == by_name_.end()) continue;
      bool any_same_file = false;
      for (size_t cand : it->second) {
        if (functions_[cand].file == fn.file) {
          any_same_file = true;
          break;
        }
      }
      for (size_t cand : it->second) {
        const FunctionInfo& target = functions_[cand];
        if (any_same_file && target.file != fn.file) continue;
        if (!InHotScope(target) || target.hot_stop) continue;
        if (hot_reachable_[cand]) continue;
        hot_reachable_[cand] = 1;
        hot_parent_[cand] = current;
        queue.push_back(cand);
      }
    }
  }
}

const std::vector<size_t>* SemanticModel::FunctionsInFile(
    const std::string& file) const {
  auto it = by_file_.find(file);
  return it == by_file_.end() ? nullptr : &it->second;
}

const FunctionInfo* SemanticModel::EnclosingFunction(
    const std::string& file, size_t token_index) const {
  const std::vector<size_t>* indices = FunctionsInFile(file);
  if (indices == nullptr) return nullptr;
  for (size_t idx : *indices) {
    const FunctionInfo& fn = functions_[idx];
    if (fn.body_begin <= token_index && token_index < fn.body_end) {
      return &fn;
    }
  }
  return nullptr;
}

bool SemanticModel::IsHotReachable(size_t index) const {
  return index < hot_reachable_.size() && hot_reachable_[index] != 0;
}

std::string SemanticModel::HotChain(size_t index) const {
  if (!IsHotReachable(index)) return std::string();
  std::vector<size_t> path;
  for (size_t at = index; at != kNoParent; at = hot_parent_[at]) {
    path.push_back(at);
    if (path.size() > functions_.size()) break;  // defensive: no cycles
  }
  std::string out;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if (!out.empty()) out += " → ";
    out += functions_[*it].qualified;
  }
  return out;
}

}  // namespace lint
}  // namespace delprop
