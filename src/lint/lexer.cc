#include "lint/lexer.h"

#include <cctype>

namespace delprop {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first so greedy matching works.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "++", "--", "<<",
    ">>",  "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=",
    "/=",  "%=",  "&=",  "|=",  "^=",  "##",
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      size_t start = pos_;
      int start_line = line_;
      TokenKind kind;
      if (c == '/' && Peek(1) == '/') {
        kind = TokenKind::kComment;
        LexLineComment();
      } else if (c == '/' && Peek(1) == '*') {
        kind = TokenKind::kComment;
        LexBlockComment();
      } else if (IsIdentStart(c)) {
        // Raw/encoded string literals look like an identifier prefix glued
        // to a quote: R"(..)", u8"x", L'\0'.
        size_t end = pos_;
        while (end < src_.size() && IsIdentChar(src_[end])) ++end;
        if (end < src_.size() && src_[end] == '"' &&
            src_.substr(pos_, end - pos_).find('R') != std::string_view::npos) {
          kind = TokenKind::kString;
          pos_ = end;
          LexRawString();
        } else if (end < src_.size() &&
                   (src_[end] == '"' || src_[end] == '\'') && end - pos_ <= 2) {
          kind = src_[end] == '"' ? TokenKind::kString
                                  : TokenKind::kCharLiteral;
          pos_ = end;
          LexQuoted(src_[end]);
        } else {
          kind = TokenKind::kIdentifier;
          pos_ = end;
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && std::isdigit(
                                  static_cast<unsigned char>(Peek(1))))) {
        kind = TokenKind::kNumber;
        LexNumber();
      } else if (c == '"') {
        kind = TokenKind::kString;
        LexQuoted('"');
      } else if (c == '\'') {
        kind = TokenKind::kCharLiteral;
        LexQuoted('\'');
      } else {
        kind = TokenKind::kPunct;
        LexPunct();
      }
      tokens.push_back(
          Token{kind, src_.substr(start, pos_ - start), start_line});
    }
    return tokens;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void LexLineComment() {
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
  }

  void LexBlockComment() {
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        return;
      }
      ++pos_;
    }
  }

  // pos_ is on the quote; consumes through the closing quote, honoring
  // backslash escapes. Unterminated literals stop at end of line (matching
  // the compiler's error recovery closely enough for linting).
  void LexQuoted(char quote) {
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == quote) {
        ++pos_;
        return;
      }
      ++pos_;
    }
  }

  // pos_ is on the opening quote of R"delim( ... )delim".
  void LexRawString() {
    ++pos_;  // quote
    size_t delim_start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
    std::string closer = ")";
    closer += std::string(src_.substr(delim_start, pos_ - delim_start));
    closer += '"';
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        pos_ += closer.size();
        return;
      }
      ++pos_;
    }
  }

  void LexNumber() {
    // Permissive pp-number scan: digits, letters, dots, and sign characters
    // after an exponent marker. Covers hex, separators, and suffixes.
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        ++pos_;
      } else if ((c == '+' || c == '-') && pos_ > 0 &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
                  src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void LexPunct() {
    for (std::string_view p : kPuncts) {
      if (src_.compare(pos_, p.size(), p) == 0) {
        pos_ += p.size();
        return;
      }
    }
    ++pos_;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace lint
}  // namespace delprop
