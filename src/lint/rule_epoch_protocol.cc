#include <string>
#include <unordered_set>
#include <vector>

#include "lint/rules.h"
#include "lint/semantic_model.h"

namespace delprop {
namespace lint {
namespace {

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

bool IsCall(const std::vector<Token>& toks, size_t i, std::string_view name) {
  return toks[i].Is(name) && i + 1 < toks.size() && toks[i + 1].Is("(");
}

// VseInstance entry points that change what the compiled plan must reflect.
const std::unordered_set<std::string_view>& Mutators() {
  static const std::unordered_set<std::string_view> kSet = {
      "ApplyDelta", "SetWeight", "MarkForDeletion", "MarkForDeletionByValues",
      "ResetDeletions"};
  return kSet;
}

}  // namespace

EpochProtocolRule::EpochProtocolRule(std::vector<std::string> serving_paths)
    : serving_paths_(std::move(serving_paths)) {}

void EpochProtocolRule::Check(const SourceFile& file,
                              std::vector<Diagnostic>* out) const {
  if (model_ == nullptr) return;
  const std::vector<size_t>* indices = model_->FunctionsInFile(file.path());
  if (indices == nullptr) return;
  const std::vector<Token>& toks = file.tokens();
  const bool serving = PathHasAnyPrefix(file.path(), serving_paths_);

  for (size_t idx : *indices) {
    const FunctionInfo& fn = model_->functions()[idx];

    // Check 1 — Rebind/ReleasePlan pairing in the serving layers: a ΔV swap
    // must see a plan release after the most recent tracker acquire.
    // Without it the pooled tracker still references the plan being
    // retired, so the rebuild cannot recycle its overlay buffers.
    if (serving) {
      size_t last_release = 0;
      bool released = false;
      for (size_t k = fn.body_begin; k < fn.body_end; ++k) {
        if (!IsIdent(toks[k])) continue;
        if (IsCall(toks, k, "ReleasePlans") || IsCall(toks, k, "ReleasePlan")) {
          released = true;
          last_release = k;
          continue;
        }
        if (k + 2 < fn.body_end && toks[k].Is("plan_") &&
            toks[k + 1].Is(".") && toks[k + 2].Is("reset")) {
          released = true;
          last_release = k;
          continue;
        }
        if (IsCall(toks, k, "Rebind") || IsCall(toks, k, "AcquireTracker")) {
          // A fresh acquire re-binds a plan; a later swap needs a release
          // that happens after this point.
          if (released && last_release < k) released = false;
          continue;
        }
        if (IsCall(toks, k, "ResetDeletions") || IsCall(toks, k, "ApplyDelta")) {
          // The mutator definitions themselves live outside the serving
          // layers; here this is always a call site.
          if (!released) {
            out->push_back(Diagnostic{
                file.path(), toks[k].line, std::string(name()),
                "ΔV swap (" + std::string(toks[k].text) + ") in '" +
                    fn.qualified +
                    "' without releasing pooled plans first — call "
                    "ReleasePlans()/ReleasePlan() so the retired plan's "
                    "overlay buffers can be recycled"});
          }
          continue;
        }
      }
    }

    // Check 2 — every VseInstance mutator must invalidate or patch the
    // compiled plan. Accepted evidence: a call to InvalidateOverlayCaches
    // or PatchCore, delegation to another mutator, or direct plan_core
    // maintenance (the SetWeight in-place patch).
    if (fn.class_name == "VseInstance" && Mutators().count(fn.name) > 0) {
      bool evidence = false;
      for (size_t k = fn.body_begin; k < fn.body_end && !evidence; ++k) {
        if (!IsIdent(toks[k])) continue;
        if (IsCall(toks, k, "InvalidateOverlayCaches") ||
            IsCall(toks, k, "PatchCore")) {
          evidence = true;
        } else if (Mutators().count(toks[k].text) > 0 &&
                   toks[k].text != fn.name && k + 1 < fn.body_end &&
                   toks[k + 1].Is("(")) {
          evidence = true;  // delegates to another mutator
        } else if (toks[k].Is("plan_core")) {
          evidence = true;  // maintains the core directly
        }
      }
      if (!evidence) {
        out->push_back(Diagnostic{
            file.path(), fn.line, std::string(name()),
            "VseInstance::" + fn.name +
                " mutates instance state without invalidating or patching "
                "the compiled plan — call InvalidateOverlayCaches(), patch "
                "via PatchCore, or delegate to a mutator that does"});
      }
    }

    // Check 3 — advancing the core epoch must clear the memo cache:
    // memoized results were computed against the previous core.
    bool advances_epoch = false;
    int epoch_line = fn.line;
    bool clears_cache = false;
    for (size_t k = fn.body_begin; k < fn.body_end; ++k) {
      const Token& t = toks[k];
      if (t.Is("core_epoch_")) {
        bool inc_before =
            k > 0 && (toks[k - 1].Is("++") || toks[k - 1].Is("--"));
        bool inc_after =
            k + 1 < fn.body_end &&
            (toks[k + 1].Is("++") || toks[k + 1].Is("--") ||
             toks[k + 1].Is("+=") || toks[k + 1].Is("-=") ||
             toks[k + 1].Is("="));
        if (inc_before || inc_after) {
          advances_epoch = true;
          epoch_line = t.line;
        }
      }
      if (IsIdent(t) && t.text.find("cache") != std::string_view::npos &&
          k + 3 < fn.body_end && (toks[k + 1].Is(".") || toks[k + 1].Is("->")) &&
          toks[k + 2].Is("clear") && toks[k + 3].Is("(")) {
        clears_cache = true;
      }
    }
    if (advances_epoch && !clears_cache) {
      out->push_back(Diagnostic{
          file.path(), epoch_line, std::string(name()),
          "'" + fn.qualified +
              "' advances core_epoch_ without clearing the memo cache — "
              "memoized results from the previous epoch would be served "
              "against the new core"});
    }
  }
}

}  // namespace lint
}  // namespace delprop
