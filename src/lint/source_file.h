#ifndef DELPROP_LINT_SOURCE_FILE_H_
#define DELPROP_LINT_SOURCE_FILE_H_

#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/lexer.h"

namespace delprop {
namespace lint {

/// One file prepared for linting: the token stream with comments stripped,
/// plus the suppressions and hot-path annotations extracted from those
/// comments.
///
/// A comment anywhere on a line may carry `delprop-lint: <rule>-ok`; it
/// suppresses diagnostics of that rule on the comment's own line and on the
/// following line, so both styles work:
///
///   DoThing();  // delprop-lint: discarded-status-ok (best-effort cleanup)
///
///   // delprop-lint: nondeterministic-iteration-ok (order folded into a sum)
///   for (const auto& [k, v] : counts) total += v;
///
/// Two further markers drive the call-graph analysis (see docs/lint.md):
/// `// delprop-hot` on (or one line above) a function signature makes that
/// function an extra hot root; `// delprop-hot-stop` marks an allocation
/// sink — the function is excluded from the hot set and the traversal does
/// not descend through it. Both expect a justification in the comment.
class SourceFile {
 public:
  /// Lexes `content`. `path` is kept verbatim for diagnostics and for
  /// path-sensitive rules (header guards, allowed-directory checks).
  SourceFile(std::string path, std::string content);

  const std::string& path() const { return path_; }
  const std::string& content() const { return content_; }

  /// Code tokens only (no comments).
  const std::vector<Token>& tokens() const { return tokens_; }

  /// True if `rule` is suppressed on `line` by a nearby suppression comment.
  bool IsSuppressed(std::string_view rule, int line) const;

  /// True if a `// delprop-hot` comment covers `line` (the comment's own
  /// line or the one after it).
  bool HasHotAnnotation(int line) const { return hot_lines_.count(line) > 0; }

  /// True if a `// delprop-hot-stop` comment covers `line`.
  bool HasHotStopAnnotation(int line) const {
    return hot_stop_lines_.count(line) > 0;
  }

 private:
  std::string path_;
  std::string content_;
  std::vector<Token> tokens_;
  // (line, rule) pairs with an active suppression.
  std::set<std::pair<int, std::string>> suppressions_;
  std::set<int> hot_lines_;
  std::set<int> hot_stop_lines_;
};

}  // namespace lint
}  // namespace delprop

#endif  // DELPROP_LINT_SOURCE_FILE_H_
