#ifndef DELPROP_LINT_SOURCE_FILE_H_
#define DELPROP_LINT_SOURCE_FILE_H_

#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/lexer.h"

namespace delprop {
namespace lint {

/// One file prepared for linting: the token stream with comments stripped,
/// plus the suppressions extracted from those comments.
///
/// A comment anywhere on a line may carry `delprop-lint: <rule>-ok`; it
/// suppresses diagnostics of that rule on the comment's own line and on the
/// following line, so both styles work:
///
///   DoThing();  // delprop-lint: discarded-status-ok (best-effort cleanup)
///
///   // delprop-lint: nondeterministic-iteration-ok (order folded into a sum)
///   for (const auto& [k, v] : counts) total += v;
class SourceFile {
 public:
  /// Lexes `content`. `path` is kept verbatim for diagnostics and for
  /// path-sensitive rules (header guards, allowed-directory checks).
  SourceFile(std::string path, std::string content);

  const std::string& path() const { return path_; }
  const std::string& content() const { return content_; }

  /// Code tokens only (no comments).
  const std::vector<Token>& tokens() const { return tokens_; }

  /// True if `rule` is suppressed on `line` by a nearby suppression comment.
  bool IsSuppressed(std::string_view rule, int line) const;

 private:
  std::string path_;
  std::string content_;
  std::vector<Token> tokens_;
  // (line, rule) pairs with an active suppression.
  std::set<std::pair<int, std::string>> suppressions_;
};

}  // namespace lint
}  // namespace delprop

#endif  // DELPROP_LINT_SOURCE_FILE_H_
