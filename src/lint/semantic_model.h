#ifndef DELPROP_LINT_SEMANTIC_MODEL_H_
#define DELPROP_LINT_SEMANTIC_MODEL_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lint/source_file.h"

namespace delprop {
namespace lint {

/// One function definition recovered from the token stream: where it lives,
/// what it is called (project-qualified when the enclosing class or an
/// explicit `Class::` qualifier is known), the token range of its body, the
/// hot-path annotations on its signature, and the names it calls.
///
/// This is a lexical, not a compiled, view: the extractor walks
/// namespace/class scopes and matches `name(params) ... {` headers, so it
/// knows spellings and nesting but not types. Call edges are therefore
/// resolved by name (see SemanticModel::Finalize for the disambiguation
/// policy), which over-approximates — acceptable for lint rules whose
/// findings are suppressible.
struct FunctionInfo {
  std::string name;        // unqualified, e.g. "SolveWith"
  std::string qualified;   // "GreedySolver::SolveWith" when a class is known
  std::string class_name;  // enclosing class/struct or explicit qualifier
  std::string file;        // path of the defining SourceFile, verbatim
  int line = 0;            // 1-based line of the name token
  size_t body_begin = 0;   // first token index inside the body (after '{')
  size_t body_end = 0;     // token index of the closing '}' (exclusive)
  bool hot_annotated = false;  // // delprop-hot on the signature
  bool hot_stop = false;       // // delprop-hot-stop on the signature
  // Callee names in first-occurrence body order (identifier followed by
  // '('), keywords and duplicates removed.
  std::vector<std::string> calls;
};

/// Tree-wide semantic facts shared by the call-graph rules. Built once per
/// lint run by the Linter: AddFile() for every file, then Finalize().
///
/// Finalize() computes the hot set — functions transitively reachable from
/// the hot roots (`VseSolver::SolveWith` overrides, `DamageTracker` methods,
/// `BatchSolveEngine::Process`, plus `// delprop-hot` annotations), stopping
/// at `// delprop-hot-stop` sinks. The traversal is restricted to functions
/// defined under `hot_scope` paths (src/ by default) so test doubles never
/// join the hot graph, and is deterministic: roots are visited in sorted
/// order and call edges expand in body order.
class SemanticModel {
 public:
  explicit SemanticModel(std::vector<std::string> hot_scope = {"src/"})
      : hot_scope_(std::move(hot_scope)) {}

  /// Extracts every function definition in `file`. Call once per file.
  void AddFile(const SourceFile& file);

  /// Resolves the call graph and computes hot reachability. Call after the
  /// last AddFile() and before any query.
  void Finalize();

  const std::vector<FunctionInfo>& functions() const { return functions_; }

  /// Indices (into functions()) of the definitions in `file`, in body order.
  /// Returns nullptr when the file defines no functions.
  const std::vector<size_t>* FunctionsInFile(const std::string& file) const;

  /// The innermost function of `file` whose body covers `token_index`, or
  /// nullptr (function headers and namespace-scope tokens are outside every
  /// body).
  const FunctionInfo* EnclosingFunction(const std::string& file,
                                        size_t token_index) const;

  /// True if functions()[index] is in the hot set (reachable from a hot
  /// root and not a delprop-hot-stop sink).
  bool IsHotReachable(size_t index) const;

  /// "Root::A → B::C → fn" — the discovery path of a hot-reachable
  /// function, for per-edge diagnostics. Empty when not hot-reachable.
  std::string HotChain(size_t index) const;

  /// True if some `name.reserve(` / `name->reserve(` call exists anywhere
  /// in the linted tree — the growth of containers with that spelling is
  /// treated as pre-sized. Name-based (no aliasing analysis), so one
  /// reserve() vouches for every container sharing the spelling.
  bool IsReservedName(const std::string& name) const {
    return reserved_names_.count(name) > 0;
  }

 private:
  void ExtractFunctions(const SourceFile& file);
  bool InHotScope(const FunctionInfo& fn) const;
  bool IsBuiltinHotRoot(const FunctionInfo& fn) const;

  std::vector<std::string> hot_scope_;
  std::vector<FunctionInfo> functions_;
  // file -> indices into functions_, ascending body_begin.
  std::map<std::string, std::vector<size_t>> by_file_;
  // unqualified name -> indices into functions_ (sorted in Finalize).
  std::unordered_map<std::string, std::vector<size_t>> by_name_;
  std::unordered_set<std::string> reserved_names_;
  // Hot reachability, parallel to functions_: parent index in the BFS
  // forest (kNoParent for roots / unreached).
  static constexpr size_t kNoParent = static_cast<size_t>(-1);
  std::vector<char> hot_reachable_;
  std::vector<size_t> hot_parent_;
};

}  // namespace lint
}  // namespace delprop

#endif  // DELPROP_LINT_SEMANTIC_MODEL_H_
