#ifndef DELPROP_LINT_COMPILE_COMMANDS_H_
#define DELPROP_LINT_COMPILE_COMMANDS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace delprop {
namespace lint {

/// Reads a CMake-style compile_commands.json and returns the "file" entry of
/// every translation unit, made relative to `base_dir` when the absolute
/// path lies under it, sorted and deduplicated. Only files that still exist
/// are returned — the database may be stale after a source removal.
///
/// This is how the CLI derives its file list when --compile-commands is
/// passed: the build system's view of the tree, instead of a directory glob
/// that could drift from what actually compiles. Headers never appear in
/// the database, so callers union this with a glob of the same roots.
Result<std::vector<std::string>> ReadCompileCommands(
    const std::string& path, const std::string& base_dir);

}  // namespace lint
}  // namespace delprop

#endif  // DELPROP_LINT_COMPILE_COMMANDS_H_
