#ifndef DELPROP_LINT_JSON_H_
#define DELPROP_LINT_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace delprop {
namespace lint {

/// A minimal JSON document model, enough for the lint baseline and
/// compile_commands.json. Numbers are kept as doubles (the values we read —
/// line numbers, counts — are all small integers) and object keys are
/// ordered, which also makes serialization deterministic.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  /// Array access. Append() is only valid on arrays.
  const std::vector<JsonValue>& items() const { return items_; }
  void Append(JsonValue v);

  /// Object access. Returns nullptr when the key is absent (or this is not
  /// an object). Set() is only valid on objects.
  const JsonValue* Find(const std::string& key) const;
  void Set(const std::string& key, JsonValue v);
  const std::map<std::string, JsonValue>& members() const { return members_; }

  /// Serializes with 2-space indentation and sorted keys — stable output
  /// for committed files.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Parses a JSON document. Supports the full value grammar minus exotic
/// escapes: \uXXXX sequences are preserved verbatim (the files we parse are
/// ASCII paths and messages).
Result<JsonValue> ParseJson(const std::string& text);

/// Escapes `s` for embedding in a JSON string literal (quotes not included).
std::string JsonEscape(const std::string& s);

}  // namespace lint
}  // namespace delprop

#endif  // DELPROP_LINT_JSON_H_
