#include "lint/rules.h"

#include <utility>

namespace delprop {
namespace lint {
namespace {

bool IsUnorderedContainer(std::string_view text) {
  return text == "unordered_map" || text == "unordered_set" ||
         text == "unordered_multimap" || text == "unordered_multiset";
}

// tokens[open] == "<": index one past the matching ">" (">>" counts twice),
// or `open` when unbalanced / not a template argument list.
size_t SkipAngles(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    std::string_view t = tokens[i].text;
    if (t == "<") ++depth;
    if (t == "<<") depth += 2;
    if (t == ">") --depth;
    if (t == ">>") depth -= 2;
    if (t == ";" || t == "{") return open;
    if (depth <= 0) return i + 1;
  }
  return open;
}

// Collects names declared in `file` with an unordered container type (or an
// alias of one): members, locals, and reference/pointer parameters.
std::unordered_set<std::string> UnorderedVariables(
    const SourceFile& file,
    const std::unordered_set<std::string>& aliases) {
  std::unordered_set<std::string> vars;
  const std::vector<Token>& tokens = file.tokens();
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    size_t after_type;
    if (IsUnorderedContainer(tokens[i].text) && i + 1 < tokens.size() &&
        tokens[i + 1].Is("<")) {
      after_type = SkipAngles(tokens, i + 1);
      if (after_type == i + 1) continue;
    } else if (aliases.count(std::string(tokens[i].text)) > 0) {
      after_type = i + 1;
    } else {
      continue;
    }
    // Skip declarator qualifiers between type and name.
    while (after_type < tokens.size() &&
           (tokens[after_type].Is("&") || tokens[after_type].Is("*") ||
            tokens[after_type].Is("const"))) {
      ++after_type;
    }
    if (after_type + 1 >= tokens.size()) continue;
    const Token& name = tokens[after_type];
    std::string_view next = tokens[after_type + 1].text;
    if (name.kind == TokenKind::kIdentifier &&
        (next == ";" || next == "=" || next == "{" || next == "(" ||
         next == "," || next == ")")) {
      vars.insert(std::string(name.text));
    }
  }
  return vars;
}

}  // namespace

NondeterministicIterationRule::NondeterministicIterationRule(
    std::vector<std::string> scoped_paths)
    : scoped_paths_(std::move(scoped_paths)) {}

std::vector<std::string> NondeterministicIterationRule::DefaultScopedPaths() {
  // The layers whose loops feed solver results, reported tables, or exported
  // artifacts — where hash order would leak into output. Pure index lookups
  // (query evaluation probes) are order-insensitive and stay out of scope.
  return {"src/solvers/", "src/dp/",   "src/setcover/", "src/reductions/",
          "src/tool/",    "src/applications/", "bench/"};
}

void NondeterministicIterationRule::Collect(const SourceFile& file) {
  // Record `using Alias = ... unordered_xxx<...> ...;` tree-wide so a
  // range-for over an aliased container in another file is still caught.
  const std::vector<Token>& tokens = file.tokens();
  for (size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (!tokens[i].Is("using")) continue;
    if (tokens[i + 1].kind != TokenKind::kIdentifier) continue;
    if (!tokens[i + 2].Is("=")) continue;
    for (size_t j = i + 3; j < tokens.size() && !tokens[j].Is(";"); ++j) {
      if (IsUnorderedContainer(tokens[j].text)) {
        unordered_aliases_.insert(std::string(tokens[i + 1].text));
        break;
      }
    }
  }
}

void NondeterministicIterationRule::Check(const SourceFile& file,
                                          std::vector<Diagnostic>* out) const {
  if (!PathHasAnyPrefix(file.path(), scoped_paths_)) return;
  const std::unordered_set<std::string> vars =
      UnorderedVariables(file, unordered_aliases_);
  const std::vector<Token>& tokens = file.tokens();
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!tokens[i].Is("for") || !tokens[i + 1].Is("(")) continue;
    // Find the close paren and the range-for colon (depth 1, no depth-1
    // semicolon before it — that would make this a classic for).
    int depth = 0;
    size_t colon = 0, close = 0;
    bool classic = false;
    for (size_t j = i + 1; j < tokens.size(); ++j) {
      std::string_view t = tokens[j].text;
      if (t == "(") ++depth;
      if (t == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && t == ";") classic = true;
      if (depth == 1 && t == ":" && colon == 0 && !classic) colon = j;
    }
    if (close == 0 || classic || colon == 0) continue;

    // The range expression is tokens (colon, close). Flag a direct
    // construction of an unordered container, or a chain whose final
    // identifier is a variable declared unordered.
    const Token* hit = nullptr;
    for (size_t j = colon + 1; j < close; ++j) {
      if (IsUnorderedContainer(tokens[j].text)) hit = &tokens[j];
    }
    if (hit == nullptr) {
      const Token& last = tokens[close - 1];
      if (last.kind == TokenKind::kIdentifier &&
          vars.count(std::string(last.text)) > 0) {
        hit = &last;
      }
    }
    if (hit == nullptr) continue;
    out->push_back(Diagnostic{
        file.path(), tokens[i].line, std::string(name()),
        "range-for over unordered container '" + std::string(hit->text) +
            "': hash iteration order is unspecified and breaks "
            "run-to-run/cross-platform output determinism; iterate a sorted "
            "copy or an ordered structure"});
  }
}

}  // namespace lint
}  // namespace delprop
