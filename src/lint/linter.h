#ifndef DELPROP_LINT_LINTER_H_
#define DELPROP_LINT_LINTER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "lint/rule.h"

namespace delprop {
namespace lint {

/// Summary of one lint run.
struct LintReport {
  std::vector<Diagnostic> diagnostics;  // sorted by (file, line, rule)
  size_t files_checked = 0;
  size_t suppressed = 0;  // findings silenced by delprop-lint comments

  bool clean() const { return diagnostics.empty(); }
};

/// Owns a set of rules and runs them over files. Two-phase: every file is
/// shown to every rule's Collect() before any Check() runs, so rules can use
/// tree-wide knowledge (Status-returning function names, container aliases).
/// If any rule wants the SemanticModel, the Linter builds it once between
/// the phases and binds it to every rule that opted in.
class Linter {
 public:
  /// Registers the project rules (see docs/lint.md). `only` restricts
  /// to the named rules; empty means all.
  void AddDefaultRules(const std::vector<std::string>& only = {});

  void AddRule(std::unique_ptr<Rule> rule);

  /// Registered rule names, in registration order.
  std::vector<std::string> RuleNames() const;

  /// Rule name -> description pairs for --list-rules.
  std::vector<std::pair<std::string, std::string>> RuleDescriptions() const;

  /// Number of worker threads for the Check phase. 1 (the default) runs
  /// inline; N > 1 fans files out over a runtime ThreadPool. Output is
  /// byte-identical at any setting: each file writes into its own
  /// pre-assigned slot and the merged list is sorted before suppression
  /// filtering.
  void set_threads(int threads) { threads_ = threads < 1 ? 1 : threads; }
  int threads() const { return threads_; }

  /// Lints in-memory files (also the unit-test entry point). Diagnostics on
  /// lines covered by a `// delprop-lint: <rule>-ok` comment are dropped and
  /// counted in `suppressed`.
  LintReport Run(const std::vector<SourceFile>& files);

  /// Loads each file path verbatim and lints the lot.
  Result<LintReport> RunOnFiles(const std::vector<std::string>& files);

  /// Loads each path (file, or directory walked recursively for C++
  /// sources) and lints the lot. Paths are reported verbatim, so run from
  /// the repo root for canonical diagnostics.
  Result<LintReport> RunOnPaths(const std::vector<std::string>& paths);

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  int threads_ = 1;
};

/// Expands `paths` to the sorted list of C++ source files under them
/// (.h/.cc/.cpp). A path that is neither a C++ file nor a directory is an
/// InvalidArgument.
Result<std::vector<std::string>> CollectSourceFiles(
    const std::vector<std::string>& paths);

}  // namespace lint
}  // namespace delprop

#endif  // DELPROP_LINT_LINTER_H_
