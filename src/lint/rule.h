#ifndef DELPROP_LINT_RULE_H_
#define DELPROP_LINT_RULE_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/source_file.h"

namespace delprop {
namespace lint {

class SemanticModel;

/// One finding: where, which rule, and a human-readable message.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  /// Renders "file:line: [rule] message" — the CLI output format.
  std::string ToString() const;

  friend bool operator==(const Diagnostic& a, const Diagnostic& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule &&
           a.message == b.message;
  }
  friend bool operator<(const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  }
};

/// A lint rule. Rules run in two phases: Collect() sees every file first and
/// may build tree-wide knowledge (e.g. which function names return Status);
/// Check() is then called per file to report findings. Single-file rules
/// implement only Check(). The Linter handles suppression comments — rules
/// report every finding unconditionally.
class Rule {
 public:
  virtual ~Rule() = default;

  /// Stable rule name used in diagnostics and suppression comments
  /// (`// delprop-lint: <name>-ok`).
  virtual std::string_view name() const = 0;

  /// One-line description for `delprop_lint --list-rules`.
  virtual std::string_view description() const = 0;

  /// Phase 1: observe a file (called once per file, before any Check()).
  virtual void Collect(const SourceFile& file) { (void)file; }

  /// Rules that analyze whole functions or the cross-TU call graph opt in
  /// to the shared SemanticModel. The Linter builds the model once per run
  /// (between the Collect and Check phases) and binds it to every rule that
  /// wants it; the pointer is valid for the duration of the Check phase.
  virtual bool wants_semantic_model() const { return false; }
  virtual void BindModel(const SemanticModel* model) { (void)model; }

  /// Phase 2: append findings for `file` to `out`. May run concurrently for
  /// different files, so implementations must not mutate rule state.
  virtual void Check(const SourceFile& file,
                     std::vector<Diagnostic>* out) const = 0;
};

/// True if `path` starts with any of `prefixes` (after stripping a leading
/// "./") or contains one at a directory boundary — so "src/solvers/" scopes
/// both `src/solvers/x.cc` and `/abs/repo/src/solvers/x.cc`. An empty
/// prefix list matches nothing; an empty-string prefix matches everything.
/// Shared by the path-scoped rules.
bool PathHasAnyPrefix(std::string_view path,
                      const std::vector<std::string>& prefixes);

}  // namespace lint
}  // namespace delprop

#endif  // DELPROP_LINT_RULE_H_
