#include <string>
#include <vector>

#include "lint/rules.h"
#include "lint/semantic_model.h"

namespace delprop {
namespace lint {
namespace {

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

}  // namespace

void HotPathAllocationRule::Check(const SourceFile& file,
                                  std::vector<Diagnostic>* out) const {
  if (model_ == nullptr) return;
  const std::vector<size_t>* indices = model_->FunctionsInFile(file.path());
  if (indices == nullptr) return;
  const std::vector<Token>& toks = file.tokens();

  for (size_t idx : *indices) {
    if (!model_->IsHotReachable(idx)) continue;
    const FunctionInfo& fn = model_->functions()[idx];
    const std::string chain = model_->HotChain(idx);
    auto report = [&](int line, const std::string& what) {
      out->push_back(Diagnostic{
          file.path(), line, std::string(name()),
          what + " in hot function '" + fn.qualified + "' (reached via " +
              chain +
              "); pre-size the container, hoist the allocation to setup, or "
              "mark a sanctioned sink with // delprop-hot-stop"});
    };

    for (size_t k = fn.body_begin; k < fn.body_end; ++k) {
      const Token& t = toks[k];
      if (!IsIdent(t)) continue;
      if (t.Is("new")) {
        // `operator new` declarations are not allocations themselves.
        if (k > 0 && toks[k - 1].Is("operator")) continue;
        report(t.line, "operator new");
      } else if (t.Is("make_unique") || t.Is("make_shared")) {
        report(t.line, "std::" + std::string(t.text));
      } else if (t.Is("push_back") || t.Is("emplace_back")) {
        if (k < 2 || (!toks[k - 1].Is(".") && !toks[k - 1].Is("->"))) {
          continue;
        }
        if (!IsIdent(toks[k - 2])) continue;
        std::string target(toks[k - 2].text);
        if (model_->IsReservedName(target)) continue;
        report(t.line, std::string(t.text) + " on un-reserved container '" +
                           target + "'");
      } else if (t.Is("string")) {
        // `std::string x` local construction; `const std::string&` (next
        // token not an identifier) reads without allocating.
        if (k < 2 || !toks[k - 1].Is("::") || !toks[k - 2].Is("std")) {
          continue;
        }
        if (k + 1 < fn.body_end && IsIdent(toks[k + 1])) {
          report(t.line, "std::string construction");
        }
      } else if (t.Is("unordered_map") || t.Is("unordered_set") ||
                 t.Is("unordered_multimap") || t.Is("unordered_multiset")) {
        if (k + 1 < fn.body_end && toks[k + 1].Is("<")) {
          report(t.line, "std::" + std::string(t.text) + " construction");
        }
      }
    }
  }
}

}  // namespace lint
}  // namespace delprop
