#include "lint/rules.h"

#include <utility>

namespace delprop {
namespace lint {
namespace {

// Engines / sources whose mere declaration is the violation.
bool IsRandomType(std::string_view text) {
  return text == "random_device" || text == "mt19937" ||
         text == "mt19937_64" || text == "minstd_rand" ||
         text == "minstd_rand0" || text == "default_random_engine" ||
         text == "ranlux24" || text == "ranlux48" || text == "knuth_b";
}

// C-library functions; flagged only when called, so a variable named `rand`
// elsewhere does not trip the rule.
bool IsRandomCall(std::string_view text) {
  return text == "rand" || text == "srand" || text == "rand_r" ||
         text == "drand48" || text == "random";
}

}  // namespace

RawRandomnessRule::RawRandomnessRule(std::vector<std::string> allowed_paths)
    : allowed_paths_(std::move(allowed_paths)) {}

void RawRandomnessRule::Check(const SourceFile& file,
                              std::vector<Diagnostic>* out) const {
  if (PathHasAnyPrefix(file.path(), allowed_paths_)) return;
  const std::vector<Token>& tokens = file.tokens();
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    std::string_view text = tokens[i].text;
    bool is_type = IsRandomType(text);
    bool is_call = IsRandomCall(text) && i + 1 < tokens.size() &&
                   tokens[i + 1].Is("(");
    if (!is_type && !is_call) continue;
    // `#include <random>`-style tokens are fine; so is the word inside a
    // qualified delprop name (there are none today, but be precise): only
    // flag plain or std:: qualified uses.
    if (i >= 2 && tokens[i - 1].Is("::") && !tokens[i - 2].Is("std")) {
      continue;
    }
    if (i >= 1 && (tokens[i - 1].Is("<") || tokens[i - 1].Is("."))) continue;
    out->push_back(Diagnostic{
        file.path(), tokens[i].line, std::string(name()),
        "raw randomness source '" + std::string(text) +
            "' outside src/common/rng.*; use delprop::Rng with an explicit "
            "seed so runs are reproducible"});
  }
}

}  // namespace lint
}  // namespace delprop
