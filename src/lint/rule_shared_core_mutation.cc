#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "lint/rules.h"
#include "lint/semantic_model.h"

namespace delprop {
namespace lint {
namespace {

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

const std::unordered_set<std::string_view>& MutatingMethods() {
  static const std::unordered_set<std::string_view> kSet = {
      "push_back", "emplace_back", "pop_back", "resize", "assign",
      "clear",     "reserve",      "erase",    "insert", "emplace",
      "swap",      "shrink_to_fit"};
  return kSet;
}

const std::unordered_set<std::string_view>& AssignmentOps() {
  static const std::unordered_set<std::string_view> kSet = {
      "=",  "+=", "-=",  "*=",  "/=", "%=", "&=",
      "|=", "^=", "<<=", ">>=", "++", "--"};
  return kSet;
}

// Index just past a matched bracket group opening at `open`, or toks.size().
size_t SkipGroup(const std::vector<Token>& toks, size_t open,
                 std::string_view open_text, std::string_view close_text) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == open_text) ++depth;
    if (toks[i].text == close_text && --depth == 0) return i + 1;
  }
  return toks.size();
}

}  // namespace

SharedCoreMutationRule::SharedCoreMutationRule(
    std::vector<std::string> core_types,
    std::vector<std::string> mutation_points,
    std::vector<std::string> submit_exempt_paths)
    : core_types_(std::move(core_types)),
      mutation_points_(std::move(mutation_points)),
      submit_exempt_paths_(std::move(submit_exempt_paths)) {}

std::vector<std::string> SharedCoreMutationRule::DefaultMutationPoints() {
  // BuildCore/FinishCore/PatchCore assemble or splice a fresh core before
  // publication; Build/BuildFromCore own the overlay (including the
  // sole-owner recycle const_cast); SetWeight is the in-place weight patch
  // (docs/perf.md "Weight patching").
  return {"BuildCore", "FinishCore", "PatchCore",
          "BuildFromCore", "Build", "SetWeight"};
}

bool SharedCoreMutationRule::Allowlisted(const SourceFile& file,
                                         size_t token_index) const {
  if (model_ == nullptr) return false;
  const FunctionInfo* fn =
      model_->EnclosingFunction(file.path(), token_index);
  if (fn == nullptr) return false;
  return std::find(mutation_points_.begin(), mutation_points_.end(),
                   fn->name) != mutation_points_.end();
}

void SharedCoreMutationRule::Check(const SourceFile& file,
                                   std::vector<Diagnostic>* out) const {
  const std::vector<Token>& toks = file.tokens();
  const size_t n = toks.size();
  auto is_core_type = [this](const Token& t) {
    for (const std::string& type : core_types_) {
      if (t.Is(type)) return true;
    }
    return false;
  };

  // Pass 1: collect variables declared with a mutable core type, and flag
  // const_cast gateways directly.
  std::unordered_set<std::string> tracked;
  for (size_t i = 0; i < n; ++i) {
    if (!IsIdent(toks[i]) || !is_core_type(toks[i])) continue;
    bool const_qualified = i > 0 && toks[i - 1].Is("const");
    bool after_class_key =
        i > 0 && (toks[i - 1].Is("class") || toks[i - 1].Is("struct"));
    if (i >= 3 && toks[i - 1].Is("<") && toks[i - 2].Is("const_cast")) {
      // const_cast<PlanCore&>/<CompiledInstance*> — the only way to write
      // through the shared pointer.
      if (!Allowlisted(file, i)) {
        out->push_back(Diagnostic{
            file.path(), toks[i].line, std::string(name()),
            "const_cast to mutable " + std::string(toks[i].text) +
                " outside a sanctioned mutation point (allowed: BuildCore/"
                "FinishCore/PatchCore/BuildFromCore/Build/SetWeight)"});
      }
      continue;
    }
    if (const_qualified || after_class_key) continue;
    // `Type* name` / `Type& name` (parameters and locals).
    if (i + 2 < n && (toks[i + 1].Is("*") || toks[i + 1].Is("&")) &&
        IsIdent(toks[i + 2])) {
      tracked.insert(std::string(toks[i + 2].text));
      continue;
    }
    // `shared_ptr<Type> name`, or `name = {make_shared,shared_ptr}<Type>(...`.
    if (i >= 2 && toks[i - 1].Is("<") &&
        (toks[i - 2].Is("shared_ptr") || toks[i - 2].Is("make_shared")) &&
        i + 1 < n && toks[i + 1].Is(">")) {
      if (i + 2 < n && IsIdent(toks[i + 2])) {
        tracked.insert(std::string(toks[i + 2].text));
      } else if (i + 2 < n && toks[i + 2].Is("(")) {
        // Walk back over `std::` to the `name =` that receives the result.
        size_t back = i - 2;
        if (back >= 2 && toks[back - 1].Is("::") && toks[back - 2].Is("std")) {
          back -= 2;
        }
        if (back >= 2 && toks[back - 1].Is("=") && IsIdent(toks[back - 2])) {
          tracked.insert(std::string(toks[back - 2].text));
        }
      }
    }
  }

  // Pass 2: writes through tracked variables, outside the allowlist.
  for (size_t i = 0; i + 1 < n; ++i) {
    if (!IsIdent(toks[i]) ||
        tracked.count(std::string(toks[i].text)) == 0) {
      continue;
    }
    if (!toks[i + 1].Is(".") && !toks[i + 1].Is("->")) continue;
    // Walk the member chain: name{./->}member([...])* and see how it ends.
    size_t j = i + 1;
    bool mutation = false;
    std::string detail;
    while (j < n) {
      if (toks[j].Is(".") || toks[j].Is("->")) {
        ++j;
        if (j >= n || !IsIdent(toks[j])) break;
        if (MutatingMethods().count(toks[j].text) > 0 && j + 1 < n &&
            toks[j + 1].Is("(")) {
          mutation = true;
          detail = "mutating call ." + std::string(toks[j].text) + "()";
        }
        ++j;
        continue;
      }
      if (toks[j].Is("[")) {
        j = SkipGroup(toks, j, "[", "]");
        continue;
      }
      break;
    }
    if (!mutation && j < n && toks[j].kind == TokenKind::kPunct &&
        AssignmentOps().count(toks[j].text) > 0) {
      mutation = true;
      detail = "field write via '" + std::string(toks[j].text) + "'";
    }
    if (mutation && !Allowlisted(file, i)) {
      out->push_back(Diagnostic{
          file.path(), toks[i].line, std::string(name()),
          detail + " on shared-core variable '" + std::string(toks[i].text) +
              "' outside a sanctioned mutation point (allowed: BuildCore/"
              "FinishCore/PatchCore/BuildFromCore/Build/SetWeight)"});
    }
  }

  // Pass 3: ThreadPool::Submit lambdas capturing by reference. ParallelFor
  // blocks until every body finishes, so its `[&]` is exempt by
  // construction (the pattern only matches Submit).
  if (!PathHasAnyPrefix(file.path(), submit_exempt_paths_)) {
    for (size_t i = 1; i + 2 < n; ++i) {
      if (!toks[i].Is("Submit")) continue;
      if (!toks[i - 1].Is(".") && !toks[i - 1].Is("->")) continue;
      if (!toks[i + 1].Is("(") || !toks[i + 2].Is("[")) continue;
      size_t capture_end = SkipGroup(toks, i + 2, "[", "]");
      for (size_t k = i + 3; k + 1 < capture_end; ++k) {
        if (toks[k].Is("&")) {
          out->push_back(Diagnostic{
              file.path(), toks[i].line, std::string(name()),
              "task lambda passed to ThreadPool::Submit captures by "
              "reference; Submit does not block, so the capture can outlive "
              "its frame — capture by value or Wait() before the frame "
              "exits"});
          break;
        }
      }
    }
  }
}

}  // namespace lint
}  // namespace delprop
