#include "lint/rule.h"

namespace delprop {
namespace lint {

std::string Diagnostic::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

bool PathHasAnyPrefix(std::string_view path,
                      const std::vector<std::string>& prefixes) {
  if (path.substr(0, 2) == "./") path.remove_prefix(2);
  for (const std::string& prefix : prefixes) {
    if (path.substr(0, prefix.size()) == prefix) return true;
    // Also match at a directory boundary anywhere in the path, so absolute
    // invocations (/repo/src/solvers/x.cc) scope the same way as relative
    // ones.
    for (size_t at = path.find(prefix); at != std::string_view::npos;
         at = path.find(prefix, at + 1)) {
      if (at > 0 && path[at - 1] == '/') return true;
    }
  }
  return false;
}

}  // namespace lint
}  // namespace delprop
