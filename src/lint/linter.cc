#include "lint/linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "lint/rules.h"

namespace delprop {
namespace lint {
namespace {

bool HasSourceExtension(const std::filesystem::path& path) {
  std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

void Linter::AddDefaultRules(const std::vector<std::string>& only) {
  auto wanted = [&only](std::string_view name) {
    return only.empty() ||
           std::find(only.begin(), only.end(), name) != only.end();
  };
  if (wanted("discarded-status")) {
    AddRule(std::make_unique<DiscardedStatusRule>());
  }
  if (wanted("nondeterministic-iteration")) {
    AddRule(std::make_unique<NondeterministicIterationRule>());
  }
  if (wanted("raw-randomness")) AddRule(std::make_unique<RawRandomnessRule>());
  if (wanted("raw-threading")) AddRule(std::make_unique<RawThreadingRule>());
  if (wanted("hot-path-hashing")) {
    AddRule(std::make_unique<HotPathHashingRule>());
  }
  if (wanted("header-guard")) AddRule(std::make_unique<HeaderGuardRule>());
}

void Linter::AddRule(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

std::vector<std::string> Linter::RuleNames() const {
  std::vector<std::string> names;
  for (const auto& rule : rules_) names.emplace_back(rule->name());
  return names;
}

std::vector<std::pair<std::string, std::string>> Linter::RuleDescriptions()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& rule : rules_) {
    out.emplace_back(std::string(rule->name()),
                     std::string(rule->description()));
  }
  return out;
}

LintReport Linter::Run(const std::vector<SourceFile>& files) {
  LintReport report;
  report.files_checked = files.size();
  for (const auto& rule : rules_) {
    for (const SourceFile& file : files) rule->Collect(file);
  }
  std::vector<Diagnostic> raw;
  for (const auto& rule : rules_) {
    for (const SourceFile& file : files) rule->Check(file, &raw);
  }
  for (Diagnostic& diag : raw) {
    const SourceFile* file = nullptr;
    for (const SourceFile& candidate : files) {
      if (candidate.path() == diag.file) {
        file = &candidate;
        break;
      }
    }
    if (file != nullptr && file->IsSuppressed(diag.rule, diag.line)) {
      ++report.suppressed;
      continue;
    }
    report.diagnostics.push_back(std::move(diag));
  }
  std::sort(report.diagnostics.begin(), report.diagnostics.end());
  return report;
}

Result<LintReport> Linter::RunOnPaths(const std::vector<std::string>& paths) {
  Result<std::vector<std::string>> files = CollectSourceFiles(paths);
  if (!files.ok()) return files.status();
  std::vector<SourceFile> sources;
  sources.reserve(files->size());
  for (const std::string& path : *files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.emplace_back(path, std::move(buffer).str());
  }
  return Run(sources);
}

Result<std::vector<std::string>> CollectSourceFiles(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && HasSourceExtension(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) {
        return Status::Internal("error walking " + path + ": " +
                                ec.message());
      }
    } else if (fs::is_regular_file(path, ec)) {
      if (!HasSourceExtension(path)) {
        return Status::InvalidArgument(path + " is not a C++ source file");
      }
      files.push_back(path);
    } else {
      return Status::InvalidArgument(path + ": no such file or directory");
    }
  }
  // Deterministic order regardless of directory-entry order.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace lint
}  // namespace delprop
