#include "lint/linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "lint/rules.h"
#include "lint/semantic_model.h"
#include "runtime/thread_pool.h"

namespace delprop {
namespace lint {
namespace {

bool HasSourceExtension(const std::filesystem::path& path) {
  std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

void Linter::AddDefaultRules(const std::vector<std::string>& only) {
  auto wanted = [&only](std::string_view name) {
    return only.empty() ||
           std::find(only.begin(), only.end(), name) != only.end();
  };
  if (wanted("discarded-status")) {
    AddRule(std::make_unique<DiscardedStatusRule>());
  }
  if (wanted("nondeterministic-iteration")) {
    AddRule(std::make_unique<NondeterministicIterationRule>());
  }
  if (wanted("raw-randomness")) AddRule(std::make_unique<RawRandomnessRule>());
  if (wanted("raw-threading")) AddRule(std::make_unique<RawThreadingRule>());
  if (wanted("hot-path-hashing")) {
    AddRule(std::make_unique<HotPathHashingRule>());
  }
  if (wanted("hot-path-allocation")) {
    AddRule(std::make_unique<HotPathAllocationRule>());
  }
  if (wanted("scalar-kill-loop")) {
    AddRule(std::make_unique<ScalarKillLoopRule>());
  }
  if (wanted("shared-core-mutation")) {
    AddRule(std::make_unique<SharedCoreMutationRule>());
  }
  if (wanted("epoch-protocol")) {
    AddRule(std::make_unique<EpochProtocolRule>());
  }
  if (wanted("header-guard")) AddRule(std::make_unique<HeaderGuardRule>());
}

void Linter::AddRule(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

std::vector<std::string> Linter::RuleNames() const {
  std::vector<std::string> names;
  for (const auto& rule : rules_) names.emplace_back(rule->name());
  return names;
}

std::vector<std::pair<std::string, std::string>> Linter::RuleDescriptions()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& rule : rules_) {
    out.emplace_back(std::string(rule->name()),
                     std::string(rule->description()));
  }
  return out;
}

LintReport Linter::Run(const std::vector<SourceFile>& files) {
  LintReport report;
  report.files_checked = files.size();
  for (const auto& rule : rules_) {
    for (const SourceFile& file : files) rule->Collect(file);
  }

  // Build the shared semantic model only when a registered rule asked for
  // it — token-level rules keep their zero-cost path.
  bool needs_model = false;
  for (const auto& rule : rules_) {
    if (rule->wants_semantic_model()) needs_model = true;
  }
  SemanticModel model;
  if (needs_model) {
    for (const SourceFile& file : files) model.AddFile(file);
    model.Finalize();
    for (const auto& rule : rules_) {
      if (rule->wants_semantic_model()) rule->BindModel(&model);
    }
  }

  // Check phase: every file gets its own diagnostic slot, so the merged
  // output is independent of which worker processed which file. The final
  // sort makes the report byte-identical at any --threads setting.
  std::vector<std::vector<Diagnostic>> slots(files.size());
  std::unique_ptr<ThreadPool> pool;
  if (threads_ > 1 && files.size() > 1) {
    pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads_));
  }
  ParallelFor(pool.get(), files.size(), [&](size_t i) {
    for (const auto& rule : rules_) rule->Check(files[i], &slots[i]);
  });
  pool.reset();
  if (needs_model) {
    for (const auto& rule : rules_) {
      if (rule->wants_semantic_model()) rule->BindModel(nullptr);
    }
  }

  std::map<std::string_view, const SourceFile*> by_path;
  for (const SourceFile& file : files) by_path.emplace(file.path(), &file);
  std::vector<Diagnostic> raw;
  for (std::vector<Diagnostic>& slot : slots) {
    for (Diagnostic& diag : slot) raw.push_back(std::move(diag));
  }
  for (Diagnostic& diag : raw) {
    auto it = by_path.find(diag.file);
    if (it != by_path.end() &&
        it->second->IsSuppressed(diag.rule, diag.line)) {
      ++report.suppressed;
      continue;
    }
    report.diagnostics.push_back(std::move(diag));
  }
  std::sort(report.diagnostics.begin(), report.diagnostics.end());
  return report;
}

Result<LintReport> Linter::RunOnFiles(const std::vector<std::string>& files) {
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.emplace_back(path, std::move(buffer).str());
  }
  return Run(sources);
}

Result<LintReport> Linter::RunOnPaths(const std::vector<std::string>& paths) {
  Result<std::vector<std::string>> files = CollectSourceFiles(paths);
  if (!files.ok()) return files.status();
  return RunOnFiles(*files);
}

Result<std::vector<std::string>> CollectSourceFiles(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && HasSourceExtension(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) {
        return Status::Internal("error walking " + path + ": " +
                                ec.message());
      }
    } else if (fs::is_regular_file(path, ec)) {
      if (!HasSourceExtension(path)) {
        return Status::InvalidArgument(path + " is not a C++ source file");
      }
      files.push_back(path);
    } else {
      return Status::InvalidArgument(path + ": no such file or directory");
    }
  }
  // Deterministic order regardless of directory-entry order.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace lint
}  // namespace delprop
