#include "lint/rules.h"

#include <cctype>

namespace delprop {
namespace lint {
namespace {

// Path component roots that anchor guard names. src/ is stripped (library
// headers are included as "lint/rules.h"); the tool/bench/test trees keep
// their directory so guards stay unique across roots.
constexpr std::string_view kStrippedRoots[] = {"src/"};
constexpr std::string_view kKeptRoots[] = {"tools/", "bench/", "tests/",
                                           "examples/"};

// Returns the path suffix the guard is derived from: everything after the
// last occurrence of a root marker ("src/" dropped, others kept), or the
// basename when no marker is present (in-memory test snippets).
std::string_view GuardPath(std::string_view path) {
  auto at_component = [&](size_t pos) {
    return pos == 0 || path[pos - 1] == '/';
  };
  size_t best = std::string_view::npos;
  std::string_view best_suffix;
  for (std::string_view root : kStrippedRoots) {
    for (size_t pos = path.find(root); pos != std::string_view::npos;
         pos = path.find(root, pos + 1)) {
      if (!at_component(pos)) continue;
      if (best == std::string_view::npos || pos > best) {
        best = pos;
        best_suffix = path.substr(pos + root.size());
      }
    }
  }
  for (std::string_view root : kKeptRoots) {
    for (size_t pos = path.find(root); pos != std::string_view::npos;
         pos = path.find(root, pos + 1)) {
      if (!at_component(pos)) continue;
      if (best == std::string_view::npos || pos > best) {
        best = pos;
        best_suffix = path.substr(pos);
      }
    }
  }
  if (best != std::string_view::npos) return best_suffix;
  size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::string HeaderGuardRule::ExpectedGuard(std::string_view path) {
  std::string_view rel = GuardPath(path);
  std::string guard = "DELPROP_";
  for (char c : rel) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';  // "foo/bar.h" -> DELPROP_FOO_BAR_H + trailing underscore
  return guard;
}

void HeaderGuardRule::Check(const SourceFile& file,
                            std::vector<Diagnostic>* out) const {
  const std::string& path = file.path();
  if (path.size() < 2 || path.substr(path.size() - 2) != ".h") return;
  const std::vector<Token>& tokens = file.tokens();
  const std::string expected = ExpectedGuard(path);

  auto report = [&](int line, const std::string& message) {
    out->push_back(Diagnostic{path, line, std::string(name()), message});
  };

  // The first code tokens (comments are already stripped) must be exactly
  // `# ifndef GUARD # define GUARD`.
  if (tokens.size() < 6 || !tokens[0].Is("#")) {
    report(1, "missing include guard; expected '#ifndef " + expected + "'");
    return;
  }
  if (tokens[1].Is("pragma")) {
    report(tokens[1].line,
           "#pragma once is not used in this tree; use '#ifndef " + expected +
               "' guards");
    return;
  }
  if (!tokens[1].Is("ifndef")) {
    report(tokens[1].line,
           "file must open with '#ifndef " + expected + "' before any other "
           "directive");
    return;
  }
  if (!tokens[2].Is(expected)) {
    report(tokens[2].line, "guard macro '" + std::string(tokens[2].text) +
                               "' does not match path; expected '" + expected +
                               "'");
    return;
  }
  if (!tokens[3].Is("#") || !tokens[4].Is("define") ||
      !tokens[5].Is(expected)) {
    report(tokens[3].line,
           "'#define " + expected + "' must immediately follow the #ifndef");
  }
}

}  // namespace lint
}  // namespace delprop
