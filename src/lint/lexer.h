#ifndef DELPROP_LINT_LEXER_H_
#define DELPROP_LINT_LEXER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace delprop {
namespace lint {

/// Token classes the lint rules care about. This is a lexical, not
/// syntactic, view of C++: preprocessor directives come out as a `#` punct
/// token followed by ordinary identifiers, and keywords are identifiers
/// (rules compare spellings).
enum class TokenKind {
  kIdentifier,   // identifiers and keywords
  kNumber,       // integer / floating literals
  kString,       // "..." including raw strings, with prefix
  kCharLiteral,  // '...'
  kPunct,        // operators and punctuation, longest-match (e.g. "::", "->")
  kComment,      // // and /* */ comments, text included
};

/// One lexed token. `text` points into the source buffer handed to
/// Tokenize(), so the buffer must outlive the tokens.
struct Token {
  TokenKind kind;
  std::string_view text;
  int line = 0;  // 1-based line of the token's first character

  bool Is(std::string_view spelling) const { return text == spelling; }
};

/// Splits `source` into tokens. Never fails: bytes that do not start a valid
/// token (stray backslashes, unterminated literals at EOF) are consumed as
/// single-character punct tokens so rules always see a complete stream.
/// Comments are kept as tokens — callers that want code only should filter
/// kComment (SourceFile does this and extracts suppressions from them).
std::vector<Token> Tokenize(std::string_view source);

}  // namespace lint
}  // namespace delprop

#endif  // DELPROP_LINT_LEXER_H_
