#include "lint/source_file.h"

#include <cctype>

namespace delprop {
namespace lint {
namespace {

constexpr std::string_view kMarker = "delprop-lint:";
constexpr std::string_view kOkSuffix = "-ok";
constexpr std::string_view kHotMarker = "delprop-hot";
constexpr std::string_view kHotStopMarker = "delprop-hot-stop";

// True if `comment` contains `marker` as a whole word (so "delprop-hot" does
// not also match inside "delprop-hot-stop").
bool HasMarkerWord(std::string_view comment, std::string_view marker) {
  size_t at = 0;
  while ((at = comment.find(marker, at)) != std::string_view::npos) {
    size_t end = at + marker.size();
    bool left_ok = at == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   comment[at - 1])) &&
                               comment[at - 1] != '-');
    bool right_ok = end == comment.size() ||
                    (!std::isalnum(static_cast<unsigned char>(comment[end])) &&
                     comment[end] != '-');
    if (left_ok && right_ok) return true;
    at = end;
  }
  return false;
}

bool IsRuleNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-';
}

// Extracts every `<rule>-ok` mention after a `delprop-lint:` marker in
// `comment` (one comment may suppress several rules).
std::vector<std::string> ParseSuppressions(std::string_view comment) {
  std::vector<std::string> rules;
  size_t at = comment.find(kMarker);
  if (at == std::string_view::npos) return rules;
  size_t pos = at + kMarker.size();
  while (pos < comment.size()) {
    while (pos < comment.size() && !IsRuleNameChar(comment[pos])) ++pos;
    size_t start = pos;
    while (pos < comment.size() && IsRuleNameChar(comment[pos])) ++pos;
    std::string_view word = comment.substr(start, pos - start);
    if (word.size() <= kOkSuffix.size()) break;
    if (word.substr(word.size() - kOkSuffix.size()) != kOkSuffix) break;
    rules.emplace_back(word.substr(0, word.size() - kOkSuffix.size()));
  }
  return rules;
}

}  // namespace

SourceFile::SourceFile(std::string path, std::string content)
    : path_(std::move(path)), content_(std::move(content)) {
  for (Token& token : Tokenize(content_)) {
    if (token.kind == TokenKind::kComment) {
      for (std::string& rule : ParseSuppressions(token.text)) {
        suppressions_.emplace(token.line, rule);
        suppressions_.emplace(token.line + 1, std::move(rule));
      }
      if (HasMarkerWord(token.text, kHotStopMarker)) {
        hot_stop_lines_.insert(token.line);
        hot_stop_lines_.insert(token.line + 1);
      } else if (HasMarkerWord(token.text, kHotMarker)) {
        hot_lines_.insert(token.line);
        hot_lines_.insert(token.line + 1);
      }
      continue;
    }
    tokens_.push_back(token);
  }
}

bool SourceFile::IsSuppressed(std::string_view rule, int line) const {
  return suppressions_.count({line, std::string(rule)}) > 0;
}

}  // namespace lint
}  // namespace delprop
