#include "lint/source_file.h"

#include <cctype>

namespace delprop {
namespace lint {
namespace {

constexpr std::string_view kMarker = "delprop-lint:";
constexpr std::string_view kOkSuffix = "-ok";

bool IsRuleNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-';
}

// Extracts every `<rule>-ok` mention after a `delprop-lint:` marker in
// `comment` (one comment may suppress several rules).
std::vector<std::string> ParseSuppressions(std::string_view comment) {
  std::vector<std::string> rules;
  size_t at = comment.find(kMarker);
  if (at == std::string_view::npos) return rules;
  size_t pos = at + kMarker.size();
  while (pos < comment.size()) {
    while (pos < comment.size() && !IsRuleNameChar(comment[pos])) ++pos;
    size_t start = pos;
    while (pos < comment.size() && IsRuleNameChar(comment[pos])) ++pos;
    std::string_view word = comment.substr(start, pos - start);
    if (word.size() <= kOkSuffix.size()) break;
    if (word.substr(word.size() - kOkSuffix.size()) != kOkSuffix) break;
    rules.emplace_back(word.substr(0, word.size() - kOkSuffix.size()));
  }
  return rules;
}

}  // namespace

SourceFile::SourceFile(std::string path, std::string content)
    : path_(std::move(path)), content_(std::move(content)) {
  for (Token& token : Tokenize(content_)) {
    if (token.kind == TokenKind::kComment) {
      for (std::string& rule : ParseSuppressions(token.text)) {
        suppressions_.emplace(token.line, rule);
        suppressions_.emplace(token.line + 1, std::move(rule));
      }
      continue;
    }
    tokens_.push_back(token);
  }
}

bool SourceFile::IsSuppressed(std::string_view rule, int line) const {
  return suppressions_.count({line, std::string(rule)}) > 0;
}

}  // namespace lint
}  // namespace delprop
