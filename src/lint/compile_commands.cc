#include "lint/compile_commands.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "lint/json.h"

namespace delprop {
namespace lint {

Result<std::vector<std::string>> ReadCompileCommands(
    const std::string& path, const std::string& base_dir) {
  namespace fs = std::filesystem;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> doc = ParseJson(std::move(buffer).str());
  if (!doc.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(doc.status().message()));
  }
  if (doc->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(path + ": expected a top-level array");
  }

  std::error_code ec;
  fs::path base = fs::absolute(base_dir, ec);
  if (ec) base = fs::path(base_dir);
  base = base.lexically_normal();

  std::vector<std::string> files;
  for (const JsonValue& entry : doc->items()) {
    const JsonValue* file = entry.Find("file");
    if (file == nullptr || file->kind() != JsonValue::Kind::kString) continue;
    fs::path p(file->AsString());
    if (p.is_relative()) {
      // Relative entries are relative to the entry's "directory".
      const JsonValue* dir = entry.Find("directory");
      if (dir != nullptr && dir->kind() == JsonValue::Kind::kString) {
        p = fs::path(dir->AsString()) / p;
      }
    }
    p = p.lexically_normal();
    fs::path rel = p.lexically_relative(base);
    if (!rel.empty() && rel.native()[0] != '.') p = rel;
    if (!fs::is_regular_file(base / p, ec)) continue;
    files.push_back(p.generic_string());
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace lint
}  // namespace delprop
