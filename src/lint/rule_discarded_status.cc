#include "lint/rules.h"

namespace delprop {
namespace lint {
namespace {

// Keywords and specifiers that cannot be the type or the name in a
// `ReturnType FunctionName (` declaration window. `void`/`auto` are
// deliberately absent: they are legitimate return types and register the
// declared name as non-Status-returning.
bool IsKeyword(std::string_view text) {
  static const std::unordered_set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",    "return",
      "sizeof",   "catch",    "case",     "new",       "delete",
      "co_await", "co_return", "co_yield", "static_assert", "alignof",
      "decltype", "operator", "throw",    "noexcept",  "else",
      "do",       "goto",     "const",    "constexpr", "static",
      "inline",   "virtual",  "explicit", "friend",    "using",
      "namespace", "class",   "struct",   "enum",      "public",
      "private",  "protected", "template", "typename", "override",
      "final",    "typedef",  "requires",
  };
  return kKeywords.count(std::string(text)) > 0;
}

// Given tokens[open] == "<", returns the index one past the matching ">",
// or `open` if unbalanced. Treats ">>" as two closers (template context).
size_t SkipAngles(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    std::string_view t = tokens[i].text;
    if (t == "<") ++depth;
    if (t == "<<") depth += 2;
    if (t == ">") --depth;
    if (t == ">>") depth -= 2;
    // A ; or { before balance means this < was a comparison, not a
    // template argument list.
    if (t == ";" || t == "{") return open;
    if (depth <= 0) return i + 1;
  }
  return open;
}

// Given tokens[open] == "(", returns the index of the matching ")", or
// tokens.size() if unbalanced.
size_t MatchParen(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == "(") ++depth;
    if (tokens[i].text == ")" && --depth == 0) return i;
  }
  return tokens.size();
}

bool IsStatementBoundary(std::string_view text) {
  return text == ";" || text == "{" || text == "}" || text == ")" ||
         text == "else";
}

}  // namespace

void DiscardedStatusRule::Collect(const SourceFile& file) {
  // Record every `ReturnType [Qualifier::]Name (` declaration window:
  // Status/Result return types feed status_functions_, everything else
  // feeds other_return_functions_ so overloaded names can be recognized as
  // ambiguous.
  const std::vector<Token>& tokens = file.tokens();
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    if (IsKeyword(tokens[i].text)) continue;
    // In a call context (`return Foo(Bar(x))`, template args) the window is
    // not a declaration.
    if (i > 0 && (tokens[i - 1].Is("return") || tokens[i - 1].Is("new") ||
                  tokens[i - 1].Is("<") || tokens[i - 1].Is(","))) {
      continue;
    }
    bool is_status = tokens[i].Is("Status") || tokens[i].Is("Result");
    // The type may carry template arguments: Result<T>, std::vector<T>.
    size_t decl = i + 1;
    if (decl < tokens.size() && tokens[decl].Is("<")) {
      decl = SkipAngles(tokens, decl);
      if (decl == i + 1) continue;
    }
    // The declared name, possibly qualified (Status ScriptEngine::Run).
    if (decl >= tokens.size()) continue;
    if (tokens[decl].kind != TokenKind::kIdentifier ||
        IsKeyword(tokens[decl].text)) {
      continue;
    }
    while (decl + 2 < tokens.size() && tokens[decl + 1].Is("::") &&
           tokens[decl + 2].kind == TokenKind::kIdentifier &&
           !IsKeyword(tokens[decl + 2].text)) {
      decl += 2;
    }
    if (decl + 1 >= tokens.size() || !tokens[decl + 1].Is("(")) continue;
    if (is_status) {
      status_functions_.insert(std::string(tokens[decl].text));
    } else {
      other_return_functions_.insert(std::string(tokens[decl].text));
    }
  }
}

void DiscardedStatusRule::Check(const SourceFile& file,
                                std::vector<Diagnostic>* out) const {
  const std::vector<Token>& tokens = file.tokens();
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    if (!tokens[i + 1].Is("(")) continue;
    std::string callee(tokens[i].text);
    if (status_functions_.count(callee) == 0) continue;
    // Overloaded across return types somewhere in the tree — leave these to
    // the compiler's [[nodiscard]] diagnostics, which see real types.
    if (other_return_functions_.count(callee) > 0) continue;

    // Walk back over a member/namespace chain (a.b->c::Call) to the start
    // of the expression statement candidate.
    size_t start = i;
    while (start >= 2 &&
           (tokens[start - 1].Is(".") || tokens[start - 1].Is("->") ||
            tokens[start - 1].Is("::")) &&
           tokens[start - 2].kind == TokenKind::kIdentifier) {
      start -= 2;
    }
    // The chain must begin a statement; anything else (assignment RHS,
    // argument, condition, declaration where the previous token is the
    // return type) is a use of the value.
    if (start > 0 && !IsStatementBoundary(tokens[start - 1].text)) continue;
    // `(void)chain(...)` is an explicit, compiler-sanctioned discard.
    if (start >= 2 && tokens[start - 1].Is(")") && tokens[start - 2].Is("void")) {
      continue;
    }
    // The call must be the whole statement: `);` right after the balanced
    // argument list.
    size_t close = MatchParen(tokens, i + 1);
    if (close + 1 >= tokens.size() || !tokens[close + 1].Is(";")) continue;

    out->push_back(Diagnostic{
        file.path(), tokens[i].line, std::string(name()),
        "result of '" + std::string(tokens[i].text) +
            "' (declared to return Status/Result) is silently discarded; "
            "handle it or cast to (void) with a justification"});
  }
}

}  // namespace lint
}  // namespace delprop
