#include <string>
#include <vector>

#include "lint/rules.h"
#include "lint/semantic_model.h"

namespace delprop {
namespace lint {
namespace {

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

/// Loop-structure tracker for one function body: a brace stack whose frames
/// know whether they belong to a loop, plus a count of single-statement
/// loop bodies (`for (...) stmt;`) still waiting for their terminating `;`.
/// Lexical only — good enough because the rule's findings are suppressible.
struct LoopScan {
  struct StmtLoop {
    size_t brace_depth;  // the `;` that ends the body sits at this depth
  };

  std::vector<bool> brace_is_loop;
  std::vector<StmtLoop> stmt_loops;
  // A loop header was seen; skipping its parenthesized clause(s).
  bool pending_header = false;
  size_t header_parens = 0;
  // The header's parens closed; the next token starts the body.
  bool pending_body = false;

  bool InLoop() const {
    if (!stmt_loops.empty()) return true;
    for (bool is_loop : brace_is_loop) {
      if (is_loop) return true;
    }
    return false;
  }

  void Feed(const Token& t) {
    if (pending_body) {
      pending_body = false;
      if (t.Is("{")) {
        brace_is_loop.push_back(true);
        return;
      }
      // `for (...) stmt;` — the body is one statement; it may open nested
      // braces (a lambda), so remember the depth its `;` must appear at.
      stmt_loops.push_back(StmtLoop{brace_is_loop.size()});
      // Fall through: `t` is the body's first token and may itself be a
      // loop keyword or a brace.
    }
    if (pending_header) {
      if (t.Is("(")) {
        ++header_parens;
      } else if (t.Is(")")) {
        if (header_parens > 0 && --header_parens == 0) {
          pending_header = false;
          pending_body = true;
        }
      }
      return;
    }
    if (t.Is("for") || t.Is("while")) {
      pending_header = true;
      header_parens = 0;
      return;
    }
    if (t.Is("do")) {
      // `do { ... } while (...);` — the body follows immediately, no
      // parenthesized header. The trailing `while` re-enters the header
      // path above and its empty "body" closes on the final `;`.
      pending_body = true;
      return;
    }
    if (t.Is("{")) {
      brace_is_loop.push_back(false);
    } else if (t.Is("}")) {
      if (!brace_is_loop.empty()) brace_is_loop.pop_back();
    } else if (t.Is(";")) {
      while (!stmt_loops.empty() &&
             stmt_loops.back().brace_depth == brace_is_loop.size()) {
        stmt_loops.pop_back();
      }
    }
  }
};

}  // namespace

void ScalarKillLoopRule::Check(const SourceFile& file,
                               std::vector<Diagnostic>* out) const {
  if (model_ == nullptr) return;
  const std::vector<size_t>* indices = model_->FunctionsInFile(file.path());
  if (indices == nullptr) return;
  const std::vector<Token>& toks = file.tokens();

  for (size_t idx : *indices) {
    if (!model_->IsHotReachable(idx)) continue;
    const FunctionInfo& fn = model_->functions()[idx];
    const std::string chain = model_->HotChain(idx);

    LoopScan scan;
    int last_line = 0;  // one finding per source line
    for (size_t k = fn.body_begin; k < fn.body_end; ++k) {
      const Token& t = toks[k];
      scan.Feed(t);
      if (!scan.InLoop() || !IsIdent(t)) continue;
      bool hit = false;
      if (t.Is("witness_hits_")) {
        hit = k + 1 < fn.body_end && toks[k + 1].Is("[");
      } else if (t.Is("witness_hits")) {
        // The accessor call `x.witness_hits(...)` / `->witness_hits(...)`;
        // a bare mention (declaration, comment code) is not a loop walk.
        hit = k + 1 < fn.body_end && toks[k + 1].Is("(") && k > 0 &&
              (toks[k - 1].Is(".") || toks[k - 1].Is("->"));
      }
      if (!hit || t.line == last_line) continue;
      last_line = t.line;
      out->push_back(Diagnostic{
          file.path(), t.line, std::string(name()),
          "per-witness counter walk in a loop of hot function '" +
              fn.qualified + "' (reached via " + chain +
              "); query the bit kernels (MarginalDamageBase, "
              "ForEachUnhitWitness, dead_witness_count) or mark a scalar "
              "fallback twin with // delprop-lint: scalar-kill-loop-ok"});
    }
  }
}

}  // namespace lint
}  // namespace delprop
