#ifndef DELPROP_LINT_RULES_H_
#define DELPROP_LINT_RULES_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "lint/rule.h"

namespace delprop {
namespace lint {

/// discarded-status: a call to a function declared (anywhere in the linted
/// tree) to return `Status` or `Result<T>` whose value is dropped — the call
/// is a bare expression statement. `(void)call();` is an explicit discard
/// and is allowed, mirroring `[[nodiscard]]` semantics.
///
/// Matching is by name (the linter has no type information), so a name that
/// is also declared somewhere with a non-Status return type — e.g. `Insert`,
/// which is `Result<TupleRef> Database::Insert` but `bool
/// DeletionSet::Insert` — is treated as ambiguous and skipped; those call
/// sites are covered by `[[nodiscard]]` on Status/Result at compile time
/// instead (src/common/status.h).
class DiscardedStatusRule : public Rule {
 public:
  std::string_view name() const override { return "discarded-status"; }
  std::string_view description() const override {
    return "call returning Status/Result used as a bare statement";
  }
  void Collect(const SourceFile& file) override;
  void Check(const SourceFile& file,
             std::vector<Diagnostic>* out) const override;

  /// Names of functions observed to return Status/Result (exposed for
  /// tests).
  const std::unordered_set<std::string>& status_functions() const {
    return status_functions_;
  }
  /// Names also declared with a different return type (skipped by Check).
  const std::unordered_set<std::string>& ambiguous_functions() const {
    return other_return_functions_;
  }

 private:
  std::unordered_set<std::string> status_functions_;
  std::unordered_set<std::string> other_return_functions_;
};

/// nondeterministic-iteration: a range-for over an `std::unordered_map` /
/// `std::unordered_set` (or an alias of one) in result-emission or
/// accumulation paths — hash iteration order is unspecified, which breaks
/// the solver/bench contract that output is bit-identical at any
/// `--threads N` and across platforms.
class NondeterministicIterationRule : public Rule {
 public:
  /// Findings are reported only for files whose path starts with one of
  /// `scoped_paths` (the solver / emission layers by default).
  explicit NondeterministicIterationRule(
      std::vector<std::string> scoped_paths = DefaultScopedPaths());

  static std::vector<std::string> DefaultScopedPaths();

  std::string_view name() const override {
    return "nondeterministic-iteration";
  }
  std::string_view description() const override {
    return "range-for over unordered container in emission/accumulation path";
  }
  void Collect(const SourceFile& file) override;
  void Check(const SourceFile& file,
             std::vector<Diagnostic>* out) const override;

 private:
  std::vector<std::string> scoped_paths_;
  // Type-alias names observed (tree-wide) to name an unordered container,
  // e.g. `using PositionIndex = std::unordered_map<...>;`.
  std::unordered_set<std::string> unordered_aliases_;
};

/// raw-randomness: `rand()`, `srand()`, `std::random_device`, or a standard
/// engine (`mt19937`, ...) outside src/common/rng.* — all randomness must
/// flow through delprop::Rng so seeds make runs reproducible.
class RawRandomnessRule : public Rule {
 public:
  explicit RawRandomnessRule(
      std::vector<std::string> allowed_paths = {"src/common/rng."});

  std::string_view name() const override { return "raw-randomness"; }
  std::string_view description() const override {
    return "raw PRNG use outside src/common/rng.*";
  }
  void Check(const SourceFile& file,
             std::vector<Diagnostic>* out) const override;

 private:
  std::vector<std::string> allowed_paths_;
};

/// raw-threading: `std::thread` / `std::jthread` / `std::async` outside
/// src/runtime/ — concurrency must go through the ThreadPool substrate so
/// determinism (DeriveTaskSeed) and shutdown are handled in one place.
class RawThreadingRule : public Rule {
 public:
  explicit RawThreadingRule(
      std::vector<std::string> allowed_paths = {"src/runtime/"});

  std::string_view name() const override { return "raw-threading"; }
  std::string_view description() const override {
    return "std::thread/std::async outside src/runtime/";
  }
  void Check(const SourceFile& file,
             std::vector<Diagnostic>* out) const override;

 private:
  std::vector<std::string> allowed_paths_;
};

/// hot-path-hashing: an `unordered_map` keyed by `TupleRef` or `ViewTupleId`
/// inside the solver or set-cover layers. Those layers run per-pick inner
/// loops over tuples; the dense compiled plan (src/plan/) interns both key
/// types into contiguous uint32 ids precisely so these loops can use flat
/// arrays. A hash map there reintroduces per-operation hashing on the hot
/// path — index by dense id instead, or suppress with
/// `// delprop-lint: hot-path-hashing-ok` when the map is genuinely cold.
class HotPathHashingRule : public Rule {
 public:
  explicit HotPathHashingRule(
      std::vector<std::string> scoped_paths = DefaultScopedPaths());

  static std::vector<std::string> DefaultScopedPaths();

  std::string_view name() const override { return "hot-path-hashing"; }
  std::string_view description() const override {
    return "unordered_map keyed by TupleRef/ViewTupleId in solver layers";
  }
  void Check(const SourceFile& file,
             std::vector<Diagnostic>* out) const override;

 private:
  std::vector<std::string> scoped_paths_;
};

/// hot-path-allocation: a heap allocation inside a function transitively
/// reachable from a hot root. Roots are the scratch-aware solver entry
/// points (`SolveWith` overrides), every `DamageTracker` method, the engine
/// request loop (`BatchSolveEngine::Process`), and anything annotated
/// `// delprop-hot`; `// delprop-hot-stop` marks sanctioned allocation
/// sinks (lazy builds, result materialization) that the traversal does not
/// enter. Flagged constructs: `new`, `make_unique`/`make_shared`,
/// `push_back`/`emplace_back` on a container whose name is never
/// `.reserve()`d anywhere in the tree, `std::string` locals, and
/// `unordered_map`/`unordered_set` construction. Diagnostics carry the
/// discovery path ("reached via A → B → C") so the offending edge is
/// auditable. The graph is restricted to src/ — test doubles never join it.
class HotPathAllocationRule : public Rule {
 public:
  std::string_view name() const override { return "hot-path-allocation"; }
  std::string_view description() const override {
    return "heap allocation in a function reachable from a hot root";
  }
  bool wants_semantic_model() const override { return true; }
  void BindModel(const SemanticModel* model) override { model_ = model; }
  void Check(const SourceFile& file,
             std::vector<Diagnostic>* out) const override;

 private:
  const SemanticModel* model_ = nullptr;
};

/// scalar-kill-loop: a per-element walk over the witness hit counters
/// (`witness_hits_[...]` or the `witness_hits(...)` accessor) inside a loop
/// in a hot-reachable function. The bit-parallel kill kernels
/// (src/solvers/kill_kernels.h) answer the same queries with word ops —
/// popcount over the packed hit bits, one alive-mask test per kill-row slot
/// — so a scalar counter loop on the hot path forfeits the speedup for
/// every plan the packed layout supports. Use the kernel-backed tracker
/// queries (MarginalDamageBase, FirstUnhitWitness, ForEachUnhitWitness,
/// dead_witness_count) or suppress with
/// `// delprop-lint: scalar-kill-loop-ok` on the sanctioned scalar
/// fallback twins.
class ScalarKillLoopRule : public Rule {
 public:
  std::string_view name() const override { return "scalar-kill-loop"; }
  std::string_view description() const override {
    return "per-witness counter loop on the hot path; use the bit kernels";
  }
  bool wants_semantic_model() const override { return true; }
  void BindModel(const SemanticModel* model) override { model_ = model; }
  void Check(const SourceFile& file,
             std::vector<Diagnostic>* out) const override;

 private:
  const SemanticModel* model_ = nullptr;
};

/// shared-core-mutation: a write to `PlanCore`/`CompiledInstance` state
/// outside the sanctioned mutation points. The compiled core is shared
/// immutably across worker replicas; every legal mutation lives in
/// `BuildCore`/`FinishCore`/`PatchCore`/`BuildFromCore`/`Build` or the
/// sole-owner weight patch in `SetWeight`. Tracked forms: mutable
/// declarations (`PlanCore*`, `PlanCore&`, non-const `shared_ptr<...>`)
/// whose variables are later assigned through or passed to mutating
/// methods, and any `const_cast` that strips const from a core type. Also
/// flags ThreadPool task lambdas (`Submit([&]...)`) capturing by reference
/// outside src/runtime/ — `ParallelFor` blocks before returning, `Submit`
/// does not, so by-reference captures outlive their frame.
class SharedCoreMutationRule : public Rule {
 public:
  SharedCoreMutationRule(
      std::vector<std::string> core_types = {"PlanCore", "CompiledInstance"},
      std::vector<std::string> mutation_points = DefaultMutationPoints(),
      std::vector<std::string> submit_exempt_paths = {"src/runtime/"});

  static std::vector<std::string> DefaultMutationPoints();

  std::string_view name() const override { return "shared-core-mutation"; }
  std::string_view description() const override {
    return "PlanCore/compiled-core mutation outside sanctioned points";
  }
  bool wants_semantic_model() const override { return true; }
  void BindModel(const SemanticModel* model) override { model_ = model; }
  void Check(const SourceFile& file,
             std::vector<Diagnostic>* out) const override;

 private:
  bool Allowlisted(const SourceFile& file, size_t token_index) const;

  std::vector<std::string> core_types_;
  std::vector<std::string> mutation_points_;
  std::vector<std::string> submit_exempt_paths_;
  const SemanticModel* model_ = nullptr;
};

/// epoch-protocol: a per-function automaton over the plan-epoch handoff.
/// Three checks: (1) in the serving layers (src/engine/, src/solvers/), a
/// ΔV swap (`ResetDeletions`/`ApplyDelta` call) must be preceded — after
/// any tracker acquire — by a plan release (`ReleasePlan`/`ReleasePlans`/
/// `plan_.reset()`), the Rebind/ReleasePlan pairing that lets retired plans
/// recycle their overlay buffers; (2) every `VseInstance` mutator
/// (`ApplyDelta`, `SetWeight`, `MarkForDeletion`, `MarkForDeletionByValues`,
/// `ResetDeletions`) must invalidate or patch the compiled plan
/// (`InvalidateOverlayCaches`/`PatchCore`/delegation/direct `plan_core`
/// maintenance); (3) a body advancing `core_epoch_` must also clear the
/// memo cache — stale entries must not cross the epoch.
class EpochProtocolRule : public Rule {
 public:
  explicit EpochProtocolRule(
      std::vector<std::string> serving_paths = {"src/engine/",
                                                "src/solvers/"});

  std::string_view name() const override { return "epoch-protocol"; }
  std::string_view description() const override {
    return "Rebind/ReleasePlan pairing, mutator invalidation, epoch cache";
  }
  bool wants_semantic_model() const override { return true; }
  void BindModel(const SemanticModel* model) override { model_ = model; }
  void Check(const SourceFile& file,
             std::vector<Diagnostic>* out) const override;

 private:
  std::vector<std::string> serving_paths_;
  const SemanticModel* model_ = nullptr;
};

/// header-guard: every .h file must open with
/// `#ifndef DELPROP_<PATH>_H_` / `#define` of the same macro, where <PATH>
/// is the file path with the leading src/ stripped, uppercased, and
/// punctuation mapped to underscores (tools/bench/tests keep their
/// directory). `#pragma once` and missing/mismatched guards are findings.
class HeaderGuardRule : public Rule {
 public:
  std::string_view name() const override { return "header-guard"; }
  std::string_view description() const override {
    return "include guard must be DELPROP_<PATH>_H_";
  }
  void Check(const SourceFile& file,
             std::vector<Diagnostic>* out) const override;

  /// Expected guard macro for `path` (exposed for tests).
  static std::string ExpectedGuard(std::string_view path);
};

}  // namespace lint
}  // namespace delprop

#endif  // DELPROP_LINT_RULES_H_
