#ifndef DELPROP_LINT_JSON_REPORT_H_
#define DELPROP_LINT_JSON_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "lint/linter.h"

namespace delprop {
namespace lint {

/// One baseline entry: a finding accepted as known. Line numbers are
/// recorded for the reader but ignored when matching — edits above a
/// baselined finding must not resurrect it.
struct BaselineEntry {
  std::string file;
  std::string rule;
  std::string message;
};

/// Result of subtracting a baseline from a report.
struct BaselineDelta {
  std::vector<Diagnostic> fresh;  // findings not covered by the baseline
  size_t baselined = 0;           // findings matched (and dropped)
  size_t stale = 0;               // baseline entries that matched nothing
};

/// Renders `report` as the delprop_lint JSON schema:
/// {"tool": "delprop_lint", "version": 2, "git": "<describe>",
///  "files_checked": N, "suppressed": N,
///  "findings": [{"file","line","rule","message"}...]}.
/// Findings keep the report's (file, line, rule, message) sort, so output
/// is byte-identical across runs and thread counts. `git_stamp` may be
/// empty (omitted field) when no git metadata is available.
std::string ReportToJson(const LintReport& report,
                         const std::string& git_stamp);

/// Parses a baseline file produced by `delprop_lint --json` (the `findings`
/// array is the baseline; the envelope fields are informational).
Result<std::vector<BaselineEntry>> LoadBaseline(const std::string& path);

/// Subtracts `baseline` from `diagnostics`. Matching is by multiset of
/// (file, rule, message): each baseline entry absorbs at most one finding,
/// so a newly duplicated violation still surfaces.
BaselineDelta ApplyBaseline(const std::vector<Diagnostic>& diagnostics,
                            const std::vector<BaselineEntry>& baseline);

}  // namespace lint
}  // namespace delprop

#endif  // DELPROP_LINT_JSON_REPORT_H_
