#include "lint/rules.h"

#include <utility>

namespace delprop {
namespace lint {

RawThreadingRule::RawThreadingRule(std::vector<std::string> allowed_paths)
    : allowed_paths_(std::move(allowed_paths)) {}

void RawThreadingRule::Check(const SourceFile& file,
                             std::vector<Diagnostic>* out) const {
  if (PathHasAnyPrefix(file.path(), allowed_paths_)) return;
  const std::vector<Token>& tokens = file.tokens();
  for (size_t i = 2; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::kIdentifier) continue;
    if (!token.Is("thread") && !token.Is("jthread") && !token.Is("async")) {
      continue;
    }
    // Only `std::thread` / `std::jthread` / `std::async` — bare words (a
    // parameter named `thread`, `#include <thread>`) are not findings.
    if (!tokens[i - 1].Is("::") || !tokens[i - 2].Is("std")) continue;
    out->push_back(Diagnostic{
        file.path(), token.line, std::string(name()),
        "'std::" + std::string(token.text) +
            "' outside src/runtime/; spawn work through ThreadPool/"
            "ParallelFor so seeding and shutdown stay deterministic"});
  }
}

}  // namespace lint
}  // namespace delprop
