#ifndef DELPROP_ILP_COVERING_MODEL_H_
#define DELPROP_ILP_COVERING_MODEL_H_

#include <cstdint>
#include <vector>

#include "plan/compiled_instance.h"

namespace delprop {

/// The 0/1 covering ILP behind view side-effect deletion propagation, read
/// straight off a CompiledInstance's CSR arrays:
///
///   variables    x_b ∈ {0,1}   one per candidate base tuple b
///   constraints  per ΔV tuple t and witness w of t: Σ_{b ∈ w} x_b ≥ 1
///                (every witness of every ΔV tuple must lose a member)
///   objective    Σ_t' weight(t') · [t' killed by x]   (standard), or
///                Σ killed preserved + Σ surviving ΔV  (balanced)
///
/// The objective is not a linear function of x (a preserved tuple dies only
/// when ALL of its witnesses are hit), so the solver works on the instance
/// directly through a DamageTracker rather than on a matrix. What this model
/// contributes is the *decomposition*: two candidates interact only when
/// they co-occur in the constraint row or objective term of the same view
/// tuple, so the connected components of that co-occurrence relation are
/// independent subproblems whose optima (and bounds) add up. Components are
/// found by union-find over the candidate bases:
///
///   * every ΔV tuple unions the members of all of its witnesses (they share
///     constraint rows);
///   * every *killable* preserved tuple — one where each witness holds at
///     least one candidate, so a candidate deletion can actually kill it —
///     unions its candidate members (they share an objective term). A
///     preserved tuple with a candidate-free witness can never die and
///     couples nothing.
///
/// All storage is reusable: Decompose() only allocates when the plan dimensions
/// grow, so a pooled solver reaches zero steady-state allocations.
class CoveringModel {
 public:
  /// Decomposes `plan`'s candidate bases into independent components.
  /// Components, their base lists, and their ΔV tuple lists are all ordered
  /// deterministically (by first appearance over ascending candidate id /
  /// ascending dense tuple id).
  void Decompose(const CompiledInstance& plan);

  uint32_t component_count() const {
    return static_cast<uint32_t>(comp_base_first_.empty()
                                     ? 0
                                     : comp_base_first_.size() - 1);
  }

  /// Candidate bases of component `c`, ascending dense base id.
  const uint32_t* comp_bases_begin(uint32_t c) const {
    return comp_bases_.data() + comp_base_first_[c];
  }
  const uint32_t* comp_bases_end(uint32_t c) const {
    return comp_bases_.data() + comp_base_first_[c + 1];
  }
  uint32_t comp_base_count(uint32_t c) const {
    return comp_base_first_[c + 1] - comp_base_first_[c];
  }

  /// ΔV tuples of component `c`, ascending dense tuple id.
  const uint32_t* comp_tuples_begin(uint32_t c) const {
    return comp_tuples_.data() + comp_tuple_first_[c];
  }
  const uint32_t* comp_tuples_end(uint32_t c) const {
    return comp_tuples_.data() + comp_tuple_first_[c + 1];
  }

  /// Σ weight over component `c`'s ΔV tuples (the balanced objective's cost
  /// of deleting nothing in the component).
  double comp_delta_weight(uint32_t c) const { return comp_delta_weight_[c]; }

  /// True when some ΔV tuple has a witness with no members at all: no
  /// deletion can hit that witness, so the standard objective is infeasible.
  bool standard_infeasible() const { return standard_infeasible_; }

  /// Σ weight of ΔV tuples belonging to no component (no candidate member in
  /// any witness — only possible alongside standard_infeasible()). They
  /// survive any deletion: a constant addend for the balanced objective and
  /// its lower bound.
  double orphan_delta_weight() const { return orphan_delta_weight_; }

 private:
  uint32_t Find(uint32_t base);
  void Union(uint32_t a, uint32_t b);

  // Component CSR: comp_base_first_ has component_count()+1 entries.
  std::vector<uint32_t> comp_base_first_;
  std::vector<uint32_t> comp_bases_;
  std::vector<uint32_t> comp_tuple_first_;
  std::vector<uint32_t> comp_tuples_;
  std::vector<double> comp_delta_weight_;
  bool standard_infeasible_ = false;
  double orphan_delta_weight_ = 0.0;

  // Union-find over dense base ids; kNpos marks non-candidates.
  std::vector<uint32_t> parent_;
  // Per base: component index (valid for candidates after Decompose).
  std::vector<uint32_t> comp_of_base_;
  // Per component: fill cursor during the bucketing passes.
  std::vector<uint32_t> cursor_;
};

}  // namespace delprop

#endif  // DELPROP_ILP_COVERING_MODEL_H_
