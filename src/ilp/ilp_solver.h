#ifndef DELPROP_ILP_ILP_SOLVER_H_
#define DELPROP_ILP_ILP_SOLVER_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

#include "dp/solver.h"
#include "ilp/covering_model.h"

namespace delprop {

class DamageTracker;

/// Knobs for the branch-and-bound 0/1 ILP solver.
struct IlpOptions {
  /// Total search-node budget across all components; exhaustion returns the
  /// best-so-far incumbent with a certified gap (never an error — the greedy
  /// warm start guarantees a feasible incumbent on feasible instances).
  uint64_t node_budget = 50'000'000;
  /// Wall-clock deadline in milliseconds, checked every 256 nodes;
  /// infinity (the default) disables it, 0 expires immediately (the search
  /// returns the warm-start incumbent plus root bounds). Note a finite
  /// deadline makes node counts — though never costs or feasibility —
  /// machine-dependent; the fuzz oracles run with the deadline disabled.
  double deadline_ms = std::numeric_limits<double>::infinity();
};

/// Branch-and-bound 0/1 ILP solver for both deletion-propagation objectives
/// (ROADMAP's in-tree ILP item; the formulation-first approach of "Is
/// Integer Linear Programming All You Need for Deletion Propagation?",
/// arXiv 2411.17603, built without external dependencies).
///
/// The model (ilp/covering_model.h) decomposes the candidate bases into
/// independent components; each is solved by depth-first branch-and-bound:
///
///   * warm start: a per-component damage-greedy (with reverse-delete) seeds
///     the incumbent, so there is always a feasible best-so-far;
///   * lower bounds: a dual-feasible witness-packing bound — pairwise
///     member-disjoint unhit witnesses are packed greedily, each charging
///     the union of its members' marginal-damage sets so no preserved
///     tuple's weight is counted twice (docs/ilp.md has the argument);
///   * branching: standard objective branches on the members of a
///     minimum-available-size unhit witness of the first unkilled ΔV tuple,
///     excluding tried members (exclusion strengthens later bounds);
///     balanced branches include/exclude over the component's candidates;
///   * determinism: all orders are fixed by dense ids, so node counts and
///     solutions are identical across runs and thread counts (deadline
///     aside — see IlpOptions).
///
/// Solutions carry a VseSolution::gap certificate: proven optimal when every
/// component search completed, otherwise incumbent vs. the sum of completed
/// components' optima plus interrupted components' root bounds.
class IlpSolver : public VseSolver {
 public:
  explicit IlpSolver(Objective objective = Objective::kStandard,
                     IlpOptions options = {})
      : objective_(objective), options_(options) {}

  std::string name() const override {
    return objective_ == Objective::kBalanced ? "ilp-balanced" : "ilp";
  }
  Objective objective() const override { return objective_; }
  Result<VseSolution> Solve(const VseInstance& instance) override;
  Result<VseSolution> SolveWith(const VseInstance& instance,
                                ScratchPool* scratch) override;

 private:
  struct CompResult {
    double best_cost = 0.0;    // incumbent objective value of the component
    double lower_bound = 0.0;  // certified bound on the component optimum
    bool proven = false;       // the component search ran to completion
  };

  CompResult SolveComponent(uint32_t c, DamageTracker& tracker);
  double WarmStart(uint32_t c, DamageTracker& tracker);
  void DescendStandard(uint32_t c, DamageTracker& tracker);
  void DescendBalanced(uint32_t c, uint32_t index, DamageTracker& tracker);
  double DualBound(uint32_t c, DamageTracker& tracker);
  double BalancedDualBound(uint32_t c, DamageTracker& tracker);
  double MarginalWeight(uint32_t base, const DamageTracker& tracker,
                        bool charge);
  void SnapshotIncumbent(const DamageTracker& tracker);
  bool CheckLimits();

  bool IsExcluded(uint32_t base) const {
    return excluded_stamp_[base] == solve_epoch_;
  }

  Objective objective_;
  IlpOptions options_;
  CoveringModel model_;

  // Per-solve search state. All buffers are members reused across solves:
  // after the first solve over a plan shape, SolveWith allocates nothing.
  uint64_t nodes_ = 0;
  bool aborted_ = false;
  bool budget_hit_ = false;
  bool deadline_hit_ = false;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;

  // Current component search.
  double best_cost_ = 0.0;       // component-local incumbent objective
  double comp_base_kpw_ = 0.0;   // killed-preserved weight at component entry
  double comp_base_surviving_ = 0.0;  // surviving ΔV weight at entry
  size_t comp_trail_start_ = 0;  // tracker.DeletedBases() size at entry
  std::vector<uint32_t> comp_best_;  // incumbent deletion of the component

  // Branch exclusions (node-scoped, trail-unwound); stamp == solve_epoch_.
  uint64_t solve_epoch_ = 0;
  std::vector<uint64_t> excluded_stamp_;
  std::vector<uint32_t> excl_trail_;

  // Witness-packing scratch (per DualBound call); stamp == pack_epoch_.
  uint64_t pack_epoch_ = 0;
  std::vector<uint64_t> pack_used_stamp_;     // per base: packed-witness member
  std::vector<uint64_t> pack_charged_stamp_;  // per tuple: weight charged
};

}  // namespace delprop

#endif  // DELPROP_ILP_ILP_SOLVER_H_
