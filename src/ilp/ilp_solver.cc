#include "ilp/ilp_solver.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "solvers/damage_tracker.h"
#include "solvers/scratch_pool.h"

namespace delprop {

namespace {
constexpr uint32_t kNpos = CompiledInstance::kNpos;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<VseSolution> IlpSolver::Solve(const VseInstance& instance) {
  return SolveWith(instance, nullptr);
}

Result<VseSolution> IlpSolver::SolveWith(const VseInstance& instance,
                                         ScratchPool* scratch) {
  std::optional<DamageTracker> local;
  if (scratch == nullptr) local.emplace(instance);
  DamageTracker& tracker =
      scratch != nullptr ? *scratch->AcquireTracker(instance) : *local;
  const CompiledInstance& plan = tracker.plan();
  model_.Decompose(plan);
  if (objective_ == Objective::kStandard && model_.standard_infeasible()) {
    return Status::Infeasible("no deletion eliminates all of ΔV");
  }

  nodes_ = 0;
  aborted_ = false;
  budget_hit_ = false;
  deadline_hit_ = false;
  has_deadline_ = std::isfinite(options_.deadline_ms);
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        std::max(0.0, options_.deadline_ms)));
  }
  ++solve_epoch_;
  if (excluded_stamp_.size() < plan.base_count()) {
    excluded_stamp_.resize(plan.base_count(), 0);
  }
  if (pack_used_stamp_.size() < plan.base_count()) {
    pack_used_stamp_.resize(plan.base_count(), 0);
  }
  if (pack_charged_stamp_.size() < plan.tuple_count()) {
    pack_charged_stamp_.resize(plan.tuple_count(), 0);
  }
  excl_trail_.clear();
  excl_trail_.reserve(plan.candidate_bases().size());

  // Components are independent: their incumbents concatenate into the
  // solution and their bounds add up (orphaned ΔV tuples survive any
  // deletion, a constant for the balanced objective).
  double lower = 0.0;
  bool all_proven = true;
  if (objective_ == Objective::kBalanced) lower = model_.orphan_delta_weight();
  const uint32_t comps = model_.component_count();
  for (uint32_t c = 0; c < comps; ++c) {
    CompResult result = SolveComponent(c, tracker);
    lower += result.lower_bound;
    all_proven = all_proven && result.proven;
  }

  VseSolution solution =
      MakeSolution(instance, tracker.CurrentDeletion(), name());
  double upper = objective_ == Objective::kBalanced ? solution.BalancedCost()
                                                    : solution.Cost();
  solution.gap.has_bound = true;
  solution.gap.optimal = all_proven;
  solution.gap.upper_bound = upper;
  solution.gap.lower_bound = all_proven ? upper : std::min(lower, upper);
  solution.gap.nodes = nodes_;
  solution.gap.budget_hit = budget_hit_;
  solution.gap.deadline_hit = deadline_hit_;
  return solution;
}

IlpSolver::CompResult IlpSolver::SolveComponent(uint32_t c,
                                                DamageTracker& tracker) {
  comp_trail_start_ = tracker.DeletedBases().size();
  comp_base_kpw_ = tracker.killed_preserved_weight();
  comp_base_surviving_ = tracker.surviving_deletion_weight();
  // The root bound is valid whatever happens later: earlier components'
  // deletions cannot touch this component's marginals (base-disjoint, and
  // every killable preserved tuple lives inside one component).
  double root_bound = objective_ == Objective::kBalanced
                          ? BalancedDualBound(c, tracker)
                          : DualBound(c, tracker);
  WarmStart(c, tracker);  // sets best_cost_ and comp_best_, restores state

  CompResult result;
  if (!aborted_) {
    if (root_bound >= best_cost_) {
      // The warm start already meets the root bound: proven optimal with
      // zero search nodes.
      result.proven = true;
    } else if (objective_ == Objective::kBalanced) {
      DescendBalanced(c, 0, tracker);
      result.proven = !aborted_;
    } else {
      DescendStandard(c, tracker);
      result.proven = !aborted_;
    }
  }
  result.best_cost = best_cost_;
  result.lower_bound =
      result.proven ? best_cost_ : std::min(root_bound, best_cost_);
  // Commit the incumbent: later components search on top of it, and the
  // final DeletionSet is read back off the tracker.
  for (uint32_t b : comp_best_) tracker.DeleteBase(b);
  return result;
}

/// Damage-greedy warm start restricted to the component, with the greedy
/// solver's reverse-delete pass; leaves the tracker back at component-entry
/// state with `comp_best_` holding the incumbent deletion and `best_cost_`
/// its component-local objective value.
double IlpSolver::WarmStart(uint32_t c, DamageTracker& tracker) {
  const CompiledInstance& plan = tracker.plan();
  const uint32_t* tbegin = model_.comp_tuples_begin(c);
  const uint32_t* tend = model_.comp_tuples_end(c);
  for (const uint32_t* t = tbegin; t != tend; ++t) {
    while (!tracker.IsKilledDense(*t)) {
      // First unhit witness — one ctz on the alive mask under the bit
      // kernels, the legacy hit-counter scan otherwise.
      uint32_t open = tracker.FirstUnhitWitness(*t);
      if (open == kNpos) break;  // unreachable: unkilled => an alive witness
      uint32_t best_base = kNpos;
      double best_damage = kInf;
      for (uint32_t slot = plan.member_begin(open); slot < plan.member_end(open);
           ++slot) {
        uint32_t b = plan.member_base(slot);
        if (tracker.IsDeletedBase(b)) continue;
        double damage = tracker.MarginalDamageBase(b);
        if (damage < best_damage) {
          best_damage = damage;
          best_base = b;
        }
      }
      if (best_base == kNpos) break;  // memberless witness: unkillable tuple
      tracker.DeleteBase(best_base);
    }
  }
  // Remember which ΔV tuples the greedy killed (an unkillable tuple must not
  // anchor the reverse-delete check); pack_charged doubles as the marker —
  // every DualBound call bumps the epoch, so no collision.
  ++pack_epoch_;
  for (const uint32_t* t = tbegin; t != tend; ++t) {
    if (tracker.IsKilledDense(*t)) pack_charged_stamp_[*t] = pack_epoch_;
  }
  // Reverse-delete in ascending dense id: drop any deletion whose removal
  // keeps every greedy-killed tuple dead.
  const std::vector<uint32_t>& deleted = tracker.DeletedBases();
  comp_best_.assign(deleted.begin() + comp_trail_start_, deleted.end());
  std::sort(comp_best_.begin(), comp_best_.end());
  for (uint32_t b : comp_best_) {
    tracker.UndeleteBase(b);
    bool still_covered = true;
    for (const uint32_t* t = tbegin; still_covered && t != tend; ++t) {
      still_covered = pack_charged_stamp_[*t] != pack_epoch_ ||
                      tracker.IsKilledDense(*t);
    }
    if (!still_covered) tracker.DeleteBase(b);
  }
  double warm_damage = tracker.killed_preserved_weight() - comp_base_kpw_;
  double warm_surviving =
      model_.comp_delta_weight(c) -
      (comp_base_surviving_ - tracker.surviving_deletion_weight());
  comp_best_.assign(deleted.begin() + comp_trail_start_, deleted.end());
  // Restore component-entry state; the search re-derives deletions itself.
  for (uint32_t b : comp_best_) tracker.UndeleteBase(b);
  if (objective_ == Objective::kBalanced) {
    double warm_balanced = warm_damage + warm_surviving;
    double empty_cost = model_.comp_delta_weight(c);
    if (empty_cost <= warm_balanced) {
      comp_best_.clear();
      best_cost_ = empty_cost;
    } else {
      best_cost_ = warm_balanced;
    }
  } else {
    best_cost_ = warm_damage;
  }
  return best_cost_;
}

bool IlpSolver::CheckLimits() {
  ++nodes_;
  if (nodes_ > options_.node_budget) {
    aborted_ = true;
    budget_hit_ = true;
    return false;
  }
  // Deadline checks hit nodes 1, 257, 513, ... — the very first node is
  // included so a 0ms deadline deterministically returns the warm starts.
  if (has_deadline_ && (nodes_ & 0xFF) == 1 &&
      std::chrono::steady_clock::now() >= deadline_) {
    aborted_ = true;
    deadline_hit_ = true;
    return false;
  }
  return true;
}

void IlpSolver::SnapshotIncumbent(const DamageTracker& tracker) {
  const std::vector<uint32_t>& deleted = tracker.DeletedBases();
  comp_best_.assign(deleted.begin() + comp_trail_start_, deleted.end());
}

void IlpSolver::DescendStandard(uint32_t c, DamageTracker& tracker) {
  if (aborted_ || !CheckLimits()) return;
  const CompiledInstance& plan = tracker.plan();
  double cost = tracker.killed_preserved_weight() - comp_base_kpw_;
  if (cost >= best_cost_) return;
  const uint32_t* tend = model_.comp_tuples_end(c);
  uint32_t first_unkilled = kNpos;
  for (const uint32_t* t = model_.comp_tuples_begin(c);
       first_unkilled == kNpos && t != tend; ++t) {
    if (!tracker.IsKilledDense(*t)) first_unkilled = *t;
  }
  if (first_unkilled == kNpos) {
    // Feasible leaf, strictly better than the incumbent by the prune above.
    best_cost_ = cost;
    SnapshotIncumbent(tracker);
    return;
  }
  // The packing bound also detects infeasible subtrees (+inf: some witness
  // lost all of its available members to exclusions).
  double bound = cost + DualBound(c, tracker);
  if (bound >= best_cost_) return;
  // Branch on the unhit witness of the first unkilled ΔV tuple with the
  // fewest available members (strict <, first wins: deterministic). The
  // unhit witnesses come off the alive mask (ctz walk) under the bit
  // kernels; the availability count still needs the member scan either way.
  uint32_t branch_witness = kNpos;
  uint32_t branch_avail = std::numeric_limits<uint32_t>::max();
  tracker.ForEachUnhitWitness(first_unkilled, [&](uint32_t w) {
    uint32_t avail = 0;
    for (uint32_t slot = plan.member_begin(w); slot < plan.member_end(w);
         ++slot) {
      uint32_t b = plan.member_base(slot);
      if (!tracker.IsDeletedBase(b) && !IsExcluded(b)) ++avail;
    }
    if (avail < branch_avail) {
      branch_avail = avail;
      branch_witness = w;
    }
    return true;
  });
  // An unkilled tuple always has an unhit witness, and the bound above
  // pruned witnesses with no available member — the branch list is nonempty.
  size_t trail_mark = excl_trail_.size();
  uint32_t mend = plan.member_end(branch_witness);
  for (uint32_t slot = plan.member_begin(branch_witness); slot < mend;
       ++slot) {
    uint32_t b = plan.member_base(slot);
    if (tracker.IsDeletedBase(b) || IsExcluded(b)) continue;  // incl. dups
    tracker.DeleteBase(b);
    DescendStandard(c, tracker);
    tracker.UndeleteBase(b);
    if (aborted_) break;
    // Completeness: later branches cover solutions avoiding b, so exclude
    // it — which also sharpens DualBound in the remaining siblings.
    excluded_stamp_[b] = solve_epoch_;
    excl_trail_.push_back(b);
  }
  while (excl_trail_.size() > trail_mark) {
    excluded_stamp_[excl_trail_.back()] = 0;
    excl_trail_.pop_back();
  }
}

void IlpSolver::DescendBalanced(uint32_t c, uint32_t index,
                                DamageTracker& tracker) {
  if (aborted_ || !CheckLimits()) return;
  double killed = tracker.killed_preserved_weight() - comp_base_kpw_;
  double surviving =
      model_.comp_delta_weight(c) -
      (comp_base_surviving_ - tracker.surviving_deletion_weight());
  double cost = killed + surviving;
  if (cost < best_cost_) {
    best_cost_ = cost;
    SnapshotIncumbent(tracker);
  }
  if (killed + BalancedDualBound(c, tracker) >= best_cost_) return;
  if (index == model_.comp_base_count(c)) return;
  uint32_t b = model_.comp_bases_begin(c)[index];
  // Branch: delete the candidate.
  tracker.DeleteBase(b);
  DescendBalanced(c, index + 1, tracker);
  tracker.UndeleteBase(b);
  if (aborted_) return;
  // Branch: keep it, excluded so the bound sees the commitment.
  excluded_stamp_[b] = solve_epoch_;
  excl_trail_.push_back(b);
  DescendBalanced(c, index + 1, tracker);
  excluded_stamp_[b] = 0;
  excl_trail_.pop_back();
}

/// Dual-feasible witness-packing bound for the standard objective: extra
/// damage any completion of this node must still pay to kill the component's
/// remaining ΔV tuples. Packed witnesses are unhit, pairwise disjoint on
/// available members, and each charges the union of its available members'
/// marginal-damage sets, so a preserved tuple's weight is counted at most
/// once (docs/ilp.md gives the proof). Returns +inf when some unhit witness
/// has no available member left — the subtree is infeasible.
double IlpSolver::DualBound(uint32_t c, DamageTracker& tracker) {
  const CompiledInstance& plan = tracker.plan();
  ++pack_epoch_;
  double lb = 0.0;
  const uint32_t* tend = model_.comp_tuples_end(c);
  for (const uint32_t* t = model_.comp_tuples_begin(c); t != tend; ++t) {
    uint32_t dense = *t;
    if (tracker.IsKilledDense(dense)) continue;
    uint32_t chosen = kNpos;
    bool infeasible = false;
    // Full scan over the unhit witnesses (alive-mask ctz walk under the bit
    // kernels): a later witness with no available member still proves the
    // subtree infeasible, so no early exit once `chosen` is set.
    tracker.ForEachUnhitWitness(dense, [&](uint32_t w) {
      uint32_t avail = 0;
      bool conflict = false;
      for (uint32_t slot = plan.member_begin(w); slot < plan.member_end(w);
           ++slot) {
        uint32_t b = plan.member_base(slot);
        if (tracker.IsDeletedBase(b) || IsExcluded(b)) continue;
        ++avail;
        if (pack_used_stamp_[b] == pack_epoch_) conflict = true;
      }
      if (avail == 0) {  // this witness can never be hit
        infeasible = true;
        return false;
      }
      if (!conflict && chosen == kNpos) chosen = w;
      return true;
    });
    if (infeasible) return kInf;
    if (chosen == kNpos) continue;  // every witness conflicts: no claim
    double delta = kInf;
    for (uint32_t slot = plan.member_begin(chosen);
         slot < plan.member_end(chosen); ++slot) {
      uint32_t b = plan.member_base(slot);
      if (tracker.IsDeletedBase(b) || IsExcluded(b)) continue;
      delta = std::min(delta, MarginalWeight(b, tracker, /*charge=*/false));
    }
    if (delta <= 0.0) continue;  // free to hit: pack nothing, consume nothing
    for (uint32_t slot = plan.member_begin(chosen);
         slot < plan.member_end(chosen); ++slot) {
      uint32_t b = plan.member_base(slot);
      if (tracker.IsDeletedBase(b) || IsExcluded(b)) continue;
      pack_used_stamp_[b] = pack_epoch_;
      MarginalWeight(b, tracker, /*charge=*/true);
    }
    lb += delta;
  }
  return lb;
}

/// Balanced variant: an unkilled ΔV tuple either survives (paying its own
/// weight — certain when some witness has no available member) or is killed
/// (paying at least the packed witness's charged marginal minimum). The
/// survivor weights are per-tuple and the kill charges are disjoint, so the
/// contributions add.
double IlpSolver::BalancedDualBound(uint32_t c, DamageTracker& tracker) {
  const CompiledInstance& plan = tracker.plan();
  ++pack_epoch_;
  double lb = 0.0;
  const uint32_t* tend = model_.comp_tuples_end(c);
  for (const uint32_t* t = model_.comp_tuples_begin(c); t != tend; ++t) {
    uint32_t dense = *t;
    if (tracker.IsKilledDense(dense)) continue;
    double survive_cost = plan.weight(dense);
    uint32_t chosen = kNpos;
    bool unkillable = false;
    tracker.ForEachUnhitWitness(dense, [&](uint32_t w) {
      uint32_t avail = 0;
      bool conflict = false;
      for (uint32_t slot = plan.member_begin(w); slot < plan.member_end(w);
           ++slot) {
        uint32_t b = plan.member_base(slot);
        if (tracker.IsDeletedBase(b) || IsExcluded(b)) continue;
        ++avail;
        if (pack_used_stamp_[b] == pack_epoch_) conflict = true;
      }
      if (avail == 0) {
        unkillable = true;
        return false;  // survivor weight decided; stop as the legacy loop did
      }
      if (!conflict && chosen == kNpos) chosen = w;
      return true;
    });
    if (unkillable) {
      lb += survive_cost;
      continue;
    }
    if (chosen == kNpos) continue;
    double delta = kInf;
    for (uint32_t slot = plan.member_begin(chosen);
         slot < plan.member_end(chosen); ++slot) {
      uint32_t b = plan.member_base(slot);
      if (tracker.IsDeletedBase(b) || IsExcluded(b)) continue;
      delta = std::min(delta, MarginalWeight(b, tracker, /*charge=*/false));
    }
    double contribution = std::min(survive_cost, delta);
    if (contribution <= 0.0) continue;
    for (uint32_t slot = plan.member_begin(chosen);
         slot < plan.member_end(chosen); ++slot) {
      uint32_t b = plan.member_base(slot);
      if (tracker.IsDeletedBase(b) || IsExcluded(b)) continue;
      pack_used_stamp_[b] = pack_epoch_;
      MarginalWeight(b, tracker, /*charge=*/true);
    }
    lb += contribution;
  }
  return lb;
}

/// Marginal damage of `base` restricted to pack-uncharged preserved tuples
/// (charge == false), or marks every marginal tuple of `base` as charged
/// (charge == true). Mirrors DamageTracker::MarginalDamageBase's walk: a
/// preserved tuple is marginal when all of its unhit witnesses contain
/// `base`. Under the bit kernels that is two word ops per kill-row entry
/// (alive mask nonzero and covered by the row's witness-incidence mask);
/// both paths visit marginal tuples in the same ascending-tuple order, so
/// the pack sums are bit-identical.
double IlpSolver::MarginalWeight(uint32_t base, const DamageTracker& tracker,
                                 bool charge) {
  const CompiledInstance& plan = tracker.plan();
  double sum = 0.0;
  if (tracker.bit_kernels_active()) {
    uint32_t end = plan.kill_end(base);
    for (uint32_t slot = plan.kill_begin(base); slot < end; ++slot) {
      uint32_t dense = plan.kill_tuple(slot);
      if (plan.is_deletion(dense)) continue;
      uint64_t la = tracker.AliveMaskDense(dense);
      if (la == 0 || (la & ~plan.kill_witness_mask(slot)) != 0) continue;
      if (charge) {
        pack_charged_stamp_[dense] = pack_epoch_;
      } else if (pack_charged_stamp_[dense] != pack_epoch_) {
        sum += plan.weight(dense);
      }
    }
    return sum;
  }
  uint32_t slot = plan.occ_begin(base);
  uint32_t end = plan.occ_end(base);
  while (slot < end) {
    uint32_t dense = plan.occ_tuple(slot);
    uint32_t mine_unhit = 0;
    do {
      // delprop-lint: scalar-kill-loop-ok scalar fallback path
      if (tracker.witness_hits(plan.occ_witness(slot)) == 0) ++mine_unhit;
      ++slot;
    } while (slot < end && plan.occ_tuple(slot) == dense);
    if (plan.is_deletion(dense)) continue;
    uint32_t dead = tracker.dead_witness_count(dense);
    uint32_t total = plan.tuple_witness_count(dense);
    if (dead >= total || dead + mine_unhit != total) continue;
    if (charge) {
      pack_charged_stamp_[dense] = pack_epoch_;
    } else if (pack_charged_stamp_[dense] != pack_epoch_) {
      sum += plan.weight(dense);
    }
  }
  return sum;
}

}  // namespace delprop
