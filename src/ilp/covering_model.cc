#include "ilp/covering_model.h"

namespace delprop {

namespace {
constexpr uint32_t kNpos = CompiledInstance::kNpos;
}  // namespace

uint32_t CoveringModel::Find(uint32_t base) {
  // Path halving: every candidate's parent chain ends at its root.
  while (parent_[base] != base) {
    parent_[base] = parent_[parent_[base]];
    base = parent_[base];
  }
  return base;
}

void CoveringModel::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return;
  // Attach the larger root under the smaller: roots stay the minimal dense
  // id of their component, independent of union order.
  if (ra < rb) {
    parent_[rb] = ra;
  } else {
    parent_[ra] = rb;
  }
}

void CoveringModel::Decompose(const CompiledInstance& plan) {
  const uint32_t base_count = plan.base_count();
  const std::vector<uint32_t>& candidates = plan.candidate_bases();
  const std::vector<uint32_t>& deltas = plan.deletion_dense();
  standard_infeasible_ = false;
  orphan_delta_weight_ = 0.0;

  // Singleton sets over the candidates; kNpos marks non-candidates.
  parent_.assign(base_count, kNpos);
  for (uint32_t b : candidates) parent_[b] = b;

  // Constraint rows: every ΔV tuple unions the members of all its witnesses
  // (they are all candidates by definition of the candidate set). A witness
  // with no members can never be hit — the standard objective is infeasible.
  for (uint32_t dense : deltas) {
    uint32_t anchor = kNpos;
    uint32_t wend = plan.tuple_witness_end(dense);
    for (uint32_t w = plan.tuple_witness_begin(dense); w < wend; ++w) {
      if (plan.member_begin(w) == plan.member_end(w)) {
        standard_infeasible_ = true;
      }
      for (uint32_t slot = plan.member_begin(w); slot < plan.member_end(w);
           ++slot) {
        uint32_t b = plan.member_base(slot);
        if (anchor == kNpos) {
          anchor = b;
        } else {
          Union(anchor, b);
        }
      }
    }
  }

  // Objective terms: a preserved tuple couples its candidate members only
  // when a candidate deletion can actually kill it, i.e. when every witness
  // holds at least one candidate. Checked first, unioned second — unioning
  // through an unkillable tuple would merge components that never interact.
  const uint32_t tuple_count = plan.tuple_count();
  for (uint32_t t = 0; t < tuple_count; ++t) {
    if (plan.is_deletion(t)) continue;
    uint32_t wend = plan.tuple_witness_end(t);
    bool killable = true;
    for (uint32_t w = plan.tuple_witness_begin(t); killable && w < wend; ++w) {
      bool has_candidate = false;
      for (uint32_t slot = plan.member_begin(w);
           !has_candidate && slot < plan.member_end(w); ++slot) {
        has_candidate = parent_[plan.member_base(slot)] != kNpos;
      }
      killable = has_candidate;
    }
    if (!killable) continue;
    uint32_t anchor = kNpos;
    for (uint32_t w = plan.tuple_witness_begin(t); w < wend; ++w) {
      for (uint32_t slot = plan.member_begin(w); slot < plan.member_end(w);
           ++slot) {
        uint32_t b = plan.member_base(slot);
        if (parent_[b] == kNpos) continue;
        if (anchor == kNpos) {
          anchor = b;
        } else {
          Union(anchor, b);
        }
      }
    }
  }

  // Number the components by first appearance over ascending candidate id;
  // comp_of_base_ doubles as the root -> component map.
  comp_of_base_.assign(base_count, kNpos);
  uint32_t comp_count = 0;
  for (uint32_t b : candidates) {
    uint32_t root = Find(b);
    if (comp_of_base_[root] == kNpos) comp_of_base_[root] = comp_count++;
  }
  for (uint32_t b : candidates) comp_of_base_[b] = comp_of_base_[Find(b)];

  // Bucket the candidate bases (ascending within each component: the fill
  // pass walks candidates in ascending dense order).
  cursor_.assign(comp_count, 0);
  for (uint32_t b : candidates) ++cursor_[comp_of_base_[b]];
  comp_base_first_.resize(comp_count + 1);
  comp_base_first_[0] = 0;
  for (uint32_t c = 0; c < comp_count; ++c) {
    comp_base_first_[c + 1] = comp_base_first_[c] + cursor_[c];
    cursor_[c] = comp_base_first_[c];
  }
  comp_bases_.resize(candidates.size());
  for (uint32_t b : candidates) comp_bases_[cursor_[comp_of_base_[b]]++] = b;

  // Bucket the ΔV tuples (ascending dense within each component). A tuple's
  // component is that of any witness member — Decompose unioned them all.
  cursor_.assign(comp_count, 0);
  uint32_t orphan_count = 0;
  for (uint32_t dense : deltas) {
    uint32_t c = kNpos;
    uint32_t wend = plan.tuple_witness_end(dense);
    for (uint32_t w = plan.tuple_witness_begin(dense);
         c == kNpos && w < wend; ++w) {
      if (plan.member_begin(w) < plan.member_end(w)) {
        c = comp_of_base_[plan.member_base(plan.member_begin(w))];
      }
    }
    if (c == kNpos) {
      // No candidate in any witness: the tuple survives every deletion.
      orphan_delta_weight_ += plan.weight(dense);
      ++orphan_count;
    } else {
      ++cursor_[c];
    }
  }
  comp_tuple_first_.resize(comp_count + 1);
  comp_tuple_first_[0] = 0;
  for (uint32_t c = 0; c < comp_count; ++c) {
    comp_tuple_first_[c + 1] = comp_tuple_first_[c] + cursor_[c];
    cursor_[c] = comp_tuple_first_[c];
  }
  comp_tuples_.resize(deltas.size() - orphan_count);
  comp_delta_weight_.assign(comp_count, 0.0);
  for (uint32_t dense : deltas) {
    uint32_t c = kNpos;
    uint32_t wend = plan.tuple_witness_end(dense);
    for (uint32_t w = plan.tuple_witness_begin(dense);
         c == kNpos && w < wend; ++w) {
      if (plan.member_begin(w) < plan.member_end(w)) {
        c = comp_of_base_[plan.member_base(plan.member_begin(w))];
      }
    }
    if (c == kNpos) continue;
    comp_tuples_[cursor_[c]++] = dense;
    comp_delta_weight_[c] += plan.weight(dense);
  }
}

}  // namespace delprop
