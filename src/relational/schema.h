#ifndef DELPROP_RELATIONAL_SCHEMA_H_
#define DELPROP_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace delprop {

/// Dense id of a relation symbol within a Schema.
using RelationId = uint32_t;

/// Declaration of one relation symbol: name, arity, and its key — the set of
/// key attribute positions (the paper requires every relation to have a key
/// with at least one position).
struct RelationSchema {
  std::string name;
  size_t arity = 0;
  /// Sorted, distinct positions in [0, arity) forming the key.
  std::vector<size_t> key_positions;

  /// Optional attribute names, one per position; empty means unnamed
  /// (rendered as "a0", "a1", ... by printers).
  std::vector<std::string> attribute_names;

  /// True if `position` is part of the key.
  bool IsKeyPosition(size_t position) const;
};

/// A finite sequence of distinct relation symbols (the paper's `S`).
class Schema {
 public:
  /// Declares a relation. `key_positions` must be non-empty, distinct, and
  /// within [0, arity). Fails with AlreadyExists on duplicate names.
  Result<RelationId> AddRelation(std::string_view name, size_t arity,
                                 std::vector<size_t> key_positions);

  /// As above with explicit attribute names (size must equal arity).
  Result<RelationId> AddRelationNamed(std::string_view name,
                                      std::vector<std::string> attribute_names,
                                      std::vector<size_t> key_positions);

  /// Looks a relation up by name.
  std::optional<RelationId> FindRelation(std::string_view name) const;

  /// The returned reference stays valid across later AddRelation calls
  /// (Relation instances hold on to it).
  const RelationSchema& relation(RelationId id) const {
    return *relations_[id];
  }
  size_t relation_count() const { return relations_.size(); }

 private:
  // unique_ptr keeps RelationSchema addresses stable across vector growth.
  std::vector<std::unique_ptr<RelationSchema>> relations_;
  std::unordered_map<std::string, RelationId> ids_by_name_;
};

}  // namespace delprop

#endif  // DELPROP_RELATIONAL_SCHEMA_H_
