#ifndef DELPROP_RELATIONAL_DATABASE_H_
#define DELPROP_RELATIONAL_DATABASE_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/deletion_set.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple_ref.h"
#include "relational/value.h"

namespace delprop {

/// A database instance `D`: a Schema, a shared constant dictionary, and one
/// Relation per declared relation symbol. Move-only (relations hold pointers
/// into the schema).
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Declares a relation; see Schema::AddRelation for the key contract.
  Result<RelationId> AddRelation(std::string_view name, size_t arity,
                                 std::vector<size_t> key_positions);

  /// Declares a relation with named attributes.
  Result<RelationId> AddRelationNamed(std::string_view name,
                                      std::vector<std::string> attribute_names,
                                      std::vector<size_t> key_positions);

  /// Inserts a pre-interned tuple into `relation`.
  Result<TupleRef> Insert(RelationId relation, Tuple tuple);

  /// Convenience: interns `texts` and inserts the resulting tuple.
  Result<TupleRef> InsertText(RelationId relation,
                              std::initializer_list<std::string_view> texts);
  Result<TupleRef> InsertText(RelationId relation,
                              const std::vector<std::string>& texts);

  /// The stored tuple a reference points at.
  const Tuple& TupleAt(const TupleRef& ref) const {
    return relations_[ref.relation]->row(ref.row);
  }

  /// Renders a tuple as "Rel(a, b, c)" for diagnostics and examples.
  std::string RenderTuple(const TupleRef& ref) const;

  /// Total number of stored tuples across all relations (the paper's |D|).
  size_t total_tuple_count() const;

  const Schema& schema() const { return schema_; }
  const Relation& relation(RelationId id) const { return *relations_[id]; }
  size_t relation_count() const { return relations_.size(); }
  ValueDictionary& dict() { return dict_; }
  const ValueDictionary& dict() const { return dict_; }

 private:
  Schema schema_;
  ValueDictionary dict_;
  // unique_ptr keeps Relation addresses stable across vector growth.
  std::vector<std::unique_ptr<Relation>> relations_;
};

}  // namespace delprop

#endif  // DELPROP_RELATIONAL_DATABASE_H_
