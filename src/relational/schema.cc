#include "relational/schema.h"

#include <algorithm>

namespace delprop {

bool RelationSchema::IsKeyPosition(size_t position) const {
  return std::binary_search(key_positions.begin(), key_positions.end(),
                            position);
}

Result<RelationId> Schema::AddRelation(std::string_view name, size_t arity,
                                       std::vector<size_t> key_positions) {
  if (arity == 0) {
    return Status::InvalidArgument("relation '" + std::string(name) +
                                   "' must have arity > 0");
  }
  if (key_positions.empty()) {
    return Status::InvalidArgument(
        "relation '" + std::string(name) +
        "' must have a key with at least one position");
  }
  std::sort(key_positions.begin(), key_positions.end());
  if (std::adjacent_find(key_positions.begin(), key_positions.end()) !=
      key_positions.end()) {
    return Status::InvalidArgument("duplicate key position in relation '" +
                                   std::string(name) + "'");
  }
  if (key_positions.back() >= arity) {
    return Status::InvalidArgument("key position out of range in relation '" +
                                   std::string(name) + "'");
  }
  if (ids_by_name_.count(std::string(name)) != 0) {
    return Status::AlreadyExists("relation '" + std::string(name) +
                                 "' already declared");
  }
  RelationId id = static_cast<RelationId>(relations_.size());
  auto rel = std::make_unique<RelationSchema>();
  rel->name = std::string(name);
  rel->arity = arity;
  rel->key_positions = std::move(key_positions);
  relations_.push_back(std::move(rel));
  ids_by_name_.emplace(std::string(name), id);
  return id;
}

Result<RelationId> Schema::AddRelationNamed(
    std::string_view name, std::vector<std::string> attribute_names,
    std::vector<size_t> key_positions) {
  Result<RelationId> id =
      AddRelation(name, attribute_names.size(), std::move(key_positions));
  if (!id.ok()) return id;
  relations_[*id]->attribute_names = std::move(attribute_names);
  return id;
}

std::optional<RelationId> Schema::FindRelation(std::string_view name) const {
  auto it = ids_by_name_.find(std::string(name));
  if (it == ids_by_name_.end()) return std::nullopt;
  return it->second;
}

}  // namespace delprop
