#ifndef DELPROP_RELATIONAL_TUPLE_REF_H_
#define DELPROP_RELATIONAL_TUPLE_REF_H_

#include <cstdint>
#include <functional>
#include <tuple>

#include "common/hash.h"
#include "relational/schema.h"

namespace delprop {

/// Stable reference to one base tuple: (relation, row index). Row indices are
/// assigned at insertion time and never reused; deletions are expressed as
/// sets of TupleRefs, the stored rows are immutable.
struct TupleRef {
  RelationId relation = 0;
  uint32_t row = 0;

  friend bool operator==(const TupleRef& a, const TupleRef& b) {
    return a.relation == b.relation && a.row == b.row;
  }
  friend bool operator!=(const TupleRef& a, const TupleRef& b) {
    return !(a == b);
  }
  friend bool operator<(const TupleRef& a, const TupleRef& b) {
    return std::tie(a.relation, a.row) < std::tie(b.relation, b.row);
  }
};

struct TupleRefHash {
  size_t operator()(const TupleRef& ref) const {
    size_t seed = std::hash<uint32_t>()(ref.relation);
    HashCombine(seed, std::hash<uint32_t>()(ref.row));
    return seed;
  }
};

}  // namespace delprop

#endif  // DELPROP_RELATIONAL_TUPLE_REF_H_
