#include "relational/relation.h"

namespace delprop {

Tuple Relation::KeyOf(const Tuple& tuple) const {
  Tuple key;
  key.reserve(schema_->key_positions.size());
  for (size_t pos : schema_->key_positions) key.push_back(tuple[pos]);
  return key;
}

// Base-data loading, not solve-path work — solvers mutate DeletionSets,
// never relations. (The call-graph rule would otherwise pull this in
// through the name collision with DeletionSet::Insert.)
// delprop-hot-stop
Result<uint32_t> Relation::Insert(Tuple tuple) {
  if (tuple.size() != schema_->arity) {
    return Status::InvalidArgument("arity mismatch inserting into relation '" +
                                   schema_->name + "'");
  }
  Tuple key = KeyOf(tuple);
  auto [it, inserted] =
      rows_by_key_.emplace(std::move(key), static_cast<uint32_t>(rows_.size()));
  if (!inserted) {
    return Status::KeyViolation("duplicate key inserting into relation '" +
                                schema_->name + "'");
  }
  rows_.push_back(std::move(tuple));
  return static_cast<uint32_t>(rows_.size() - 1);
}

std::optional<uint32_t> Relation::FindByKey(const Tuple& key) const {
  auto it = rows_by_key_.find(key);
  if (it == rows_by_key_.end()) return std::nullopt;
  return it->second;
}

}  // namespace delprop
