#include "relational/value.h"

#include <cassert>

namespace delprop {

ValueId ValueDictionary::Intern(std::string_view text) {
  auto it = ids_by_text_.find(std::string(text));
  if (it != ids_by_text_.end()) return it->second;
  ValueId id = static_cast<ValueId>(texts_.size());
  texts_.emplace_back(text);
  ids_by_text_.emplace(texts_.back(), id);
  return id;
}

ValueId ValueDictionary::InternInt(int64_t value) {
  return Intern(std::to_string(value));
}

ValueId ValueDictionary::FreshValue() {
  for (;;) {
    std::string candidate = "$fresh" + std::to_string(fresh_counter_++);
    if (ids_by_text_.find(candidate) == ids_by_text_.end()) {
      return Intern(candidate);
    }
  }
}

}  // namespace delprop
