#ifndef DELPROP_RELATIONAL_DELETION_SET_H_
#define DELPROP_RELATIONAL_DELETION_SET_H_

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "relational/tuple_ref.h"

namespace delprop {

/// A set of base tuples to delete from the source database (the paper's ΔD).
/// Logical: the underlying rows are never physically removed, queries are
/// evaluated against D \ ΔD by masking.
class DeletionSet {
 public:
  DeletionSet() = default;
  /// Builds from an explicit list (duplicates collapse).
  explicit DeletionSet(const std::vector<TupleRef>& refs) {
    set_.reserve(refs.size());
    for (const TupleRef& r : refs) Insert(r);
  }

  /// Adds `ref`; returns true if newly inserted.
  bool Insert(const TupleRef& ref) { return set_.insert(ref).second; }

  /// Removes `ref`; returns true if it was present.
  bool Erase(const TupleRef& ref) { return set_.erase(ref) > 0; }

  bool Contains(const TupleRef& ref) const {
    return set_.find(ref) != set_.end();
  }
  size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }
  void Clear() { set_.clear(); }

  /// Deleted refs in deterministic (sorted) order.
  std::vector<TupleRef> Sorted() const {
    std::vector<TupleRef> out(set_.begin(), set_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  auto begin() const { return set_.begin(); }
  auto end() const { return set_.end(); }

 private:
  std::unordered_set<TupleRef, TupleRefHash> set_;
};

}  // namespace delprop

#endif  // DELPROP_RELATIONAL_DELETION_SET_H_
