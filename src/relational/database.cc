#include "relational/database.h"

namespace delprop {

Result<RelationId> Database::AddRelation(std::string_view name, size_t arity,
                                         std::vector<size_t> key_positions) {
  Result<RelationId> id =
      schema_.AddRelation(name, arity, std::move(key_positions));
  if (!id.ok()) return id;
  relations_.push_back(std::make_unique<Relation>(&schema_.relation(*id)));
  return id;
}

Result<RelationId> Database::AddRelationNamed(
    std::string_view name, std::vector<std::string> attribute_names,
    std::vector<size_t> key_positions) {
  Result<RelationId> id = schema_.AddRelationNamed(
      name, std::move(attribute_names), std::move(key_positions));
  if (!id.ok()) return id;
  relations_.push_back(std::make_unique<Relation>(&schema_.relation(*id)));
  return id;
}

Result<TupleRef> Database::Insert(RelationId relation, Tuple tuple) {
  if (relation >= relations_.size()) {
    return Status::NotFound("no such relation id " + std::to_string(relation));
  }
  Result<uint32_t> row = relations_[relation]->Insert(std::move(tuple));
  if (!row.ok()) return row.status();
  return TupleRef{relation, *row};
}

Result<TupleRef> Database::InsertText(
    RelationId relation, std::initializer_list<std::string_view> texts) {
  Tuple tuple;
  tuple.reserve(texts.size());
  for (std::string_view t : texts) tuple.push_back(dict_.Intern(t));
  return Insert(relation, std::move(tuple));
}

Result<TupleRef> Database::InsertText(RelationId relation,
                                      const std::vector<std::string>& texts) {
  Tuple tuple;
  tuple.reserve(texts.size());
  for (const std::string& t : texts) tuple.push_back(dict_.Intern(t));
  return Insert(relation, std::move(tuple));
}

std::string Database::RenderTuple(const TupleRef& ref) const {
  const Relation& rel = *relations_[ref.relation];
  const Tuple& tuple = rel.row(ref.row);
  std::string out = rel.schema().name;
  out += '(';
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += dict_.Text(tuple[i]);
  }
  out += ')';
  return out;
}

size_t Database::total_tuple_count() const {
  size_t n = 0;
  for (const auto& rel : relations_) n += rel->row_count();
  return n;
}

}  // namespace delprop
