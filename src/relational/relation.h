#ifndef DELPROP_RELATIONAL_RELATION_H_
#define DELPROP_RELATIONAL_RELATION_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace delprop {

/// One stored relation instance. Enforces the declared key: no two rows agree
/// on all key positions. Rows are append-only; logical deletion is handled by
/// callers via deletion masks so that lineage row indices stay stable.
class Relation {
 public:
  /// Creates an empty instance of `schema` (which must outlive the Relation).
  explicit Relation(const RelationSchema* schema) : schema_(schema) {}

  /// Inserts `tuple`; fails with InvalidArgument on arity mismatch and with
  /// KeyViolation if a row with the same key projection exists.
  Result<uint32_t> Insert(Tuple tuple);

  /// Returns the row index holding `key` (the projection of a tuple onto the
  /// key positions), if any.
  std::optional<uint32_t> FindByKey(const Tuple& key) const;

  /// Extracts the key projection of `tuple` under this relation's schema.
  Tuple KeyOf(const Tuple& tuple) const;

  const Tuple& row(uint32_t index) const { return rows_[index]; }
  size_t row_count() const { return rows_.size(); }
  const RelationSchema& schema() const { return *schema_; }

 private:
  const RelationSchema* schema_;
  std::vector<Tuple> rows_;
  std::unordered_map<Tuple, uint32_t, VectorHash<ValueId>> rows_by_key_;
};

}  // namespace delprop

#endif  // DELPROP_RELATIONAL_RELATION_H_
