#ifndef DELPROP_RELATIONAL_VALUE_H_
#define DELPROP_RELATIONAL_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace delprop {

/// Interned identifier of a constant from the paper's domain `Const`.
/// Equality of ValueIds is equality of constants.
using ValueId = uint32_t;

/// Interns constants (rendered as text) to dense ValueIds. All constants in a
/// Database share one dictionary so cross-relation joins compare ids only.
class ValueDictionary {
 public:
  ValueDictionary() = default;
  // Interned ids index into ids_by_text_; copying would be correct but is
  // almost always a bug (two dictionaries with diverging ids), so forbid it.
  ValueDictionary(const ValueDictionary&) = delete;
  ValueDictionary& operator=(const ValueDictionary&) = delete;
  ValueDictionary(ValueDictionary&&) = default;
  ValueDictionary& operator=(ValueDictionary&&) = default;

  /// Returns the id of `text`, interning it on first sight.
  ValueId Intern(std::string_view text);

  /// Interns the decimal rendering of `value`.
  ValueId InternInt(int64_t value);

  /// Returns a fresh constant guaranteed distinct from every other constant
  /// ever interned ("value invention" in the Theorem 1 reduction).
  ValueId FreshValue();

  /// Returns the id of `text` if it was interned before, without interning.
  std::optional<ValueId> Find(std::string_view text) const {
    auto it = ids_by_text_.find(std::string(text));
    if (it == ids_by_text_.end()) return std::nullopt;
    return it->second;
  }

  /// Returns the text of an interned id.
  const std::string& Text(ValueId id) const { return texts_[id]; }

  /// Number of distinct constants interned so far.
  size_t size() const { return texts_.size(); }

 private:
  std::unordered_map<std::string, ValueId> ids_by_text_;
  std::vector<std::string> texts_;
  uint64_t fresh_counter_ = 0;
};

/// A database tuple: one interned constant per attribute position.
using Tuple = std::vector<ValueId>;

}  // namespace delprop

#endif  // DELPROP_RELATIONAL_VALUE_H_
