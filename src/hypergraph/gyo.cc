#include "hypergraph/gyo.h"

#include <algorithm>
#include <set>

namespace delprop {

bool IsAlphaAcyclic(const Hypergraph& graph, JoinTree* join_tree) {
  size_t m = graph.edge_count();
  // Working copies of the edges as sets of vertices.
  std::vector<std::set<size_t>> edges(m);
  for (size_t e = 0; e < m; ++e) {
    edges[e].insert(graph.edge(e).begin(), graph.edge(e).end());
  }
  std::vector<bool> removed(m, false);
  std::vector<long> parent(m, -1);

  // Vertex occurrence counts.
  std::vector<size_t> occurrences(graph.vertex_count(), 0);
  for (const auto& edge : edges) {
    for (size_t v : edge) ++occurrences[v];
  }

  bool progress = true;
  size_t remaining = m;
  while (progress) {
    progress = false;
    // Rule 1: delete vertices occurring in exactly one edge.
    for (size_t e = 0; e < m; ++e) {
      if (removed[e]) continue;
      for (auto it = edges[e].begin(); it != edges[e].end();) {
        if (occurrences[*it] == 1) {
          --occurrences[*it];
          it = edges[e].erase(it);
          progress = true;
        } else {
          ++it;
        }
      }
    }
    // Rule 2: delete an edge contained in another (absorb into the witness).
    for (size_t e = 0; e < m && remaining > 1; ++e) {
      if (removed[e]) continue;
      for (size_t f = 0; f < m; ++f) {
        if (f == e || removed[f]) continue;
        if (std::includes(edges[f].begin(), edges[f].end(), edges[e].begin(),
                          edges[e].end())) {
          removed[e] = true;
          parent[e] = static_cast<long>(f);
          for (size_t v : edges[e]) --occurrences[v];
          edges[e].clear();
          --remaining;
          progress = true;
          break;
        }
      }
    }
  }

  // Acyclic iff at most one non-empty edge per component survives; after the
  // loop that means every remaining edge must be empty or the unique maximal
  // edge of its component — equivalently every remaining edge has no shared
  // vertices left (occurrences all 1 were stripped), i.e. is empty.
  for (size_t e = 0; e < m; ++e) {
    if (!removed[e] && !edges[e].empty()) return false;
  }
  if (join_tree != nullptr) join_tree->parent = std::move(parent);
  return true;
}

bool IsBetaAcyclic(const Hypergraph& graph) {
  size_t m = graph.edge_count();
  std::vector<std::set<size_t>> edges(m);
  for (size_t e = 0; e < m; ++e) {
    edges[e].insert(graph.edge(e).begin(), graph.edge(e).end());
  }

  auto incident_chain = [&](size_t v) {
    // Collect edges containing v; check they are linearly ordered by ⊆.
    std::vector<const std::set<size_t>*> incident;
    for (const auto& edge : edges) {
      if (edge.count(v) > 0) incident.push_back(&edge);
    }
    std::sort(incident.begin(), incident.end(),
              [](const std::set<size_t>* a, const std::set<size_t>* b) {
                return a->size() < b->size();
              });
    for (size_t i = 0; i + 1 < incident.size(); ++i) {
      if (!std::includes(incident[i + 1]->begin(), incident[i + 1]->end(),
                         incident[i]->begin(), incident[i]->end())) {
        return false;
      }
    }
    return true;
  };

  // Nest-point elimination.
  std::vector<bool> alive_vertex(graph.vertex_count(), false);
  for (const auto& edge : edges) {
    for (size_t v : edge) alive_vertex[v] = true;
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t v = 0; v < graph.vertex_count(); ++v) {
      if (!alive_vertex[v]) continue;
      if (incident_chain(v)) {
        for (auto& edge : edges) edge.erase(v);
        alive_vertex[v] = false;
        progress = true;
      }
    }
  }
  for (const auto& edge : edges) {
    if (!edge.empty()) return false;
  }
  return true;
}

}  // namespace delprop
