#include "hypergraph/dual_graph.h"

namespace delprop {

DualGraphAnalysis AnalyzeDualGraph(
    const Schema& schema,
    const std::vector<const ConjunctiveQuery*>& queries) {
  Hypergraph graph(schema.relation_count());
  for (const ConjunctiveQuery* query : queries) {
    std::vector<size_t> vertices;
    vertices.reserve(query->atoms().size());
    for (const Atom& atom : query->atoms()) {
      vertices.push_back(atom.relation);
    }
    graph.AddEdge(std::move(vertices));
  }

  DualGraphAnalysis analysis{std::move(graph), {}, false, false};
  analysis.components = analysis.graph.EdgeComponents();
  analysis.alpha_acyclic = IsAlphaAcyclic(analysis.graph);
  analysis.forest_case = true;
  for (const auto& component : analysis.components) {
    Hypergraph sub = analysis.graph.InducedByEdges(component);
    if (!IsBetaAcyclic(sub)) {
      analysis.forest_case = false;
      break;
    }
  }
  return analysis;
}

}  // namespace delprop
