#ifndef DELPROP_HYPERGRAPH_GYO_H_
#define DELPROP_HYPERGRAPH_GYO_H_

#include <optional>
#include <utility>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace delprop {

/// A join tree over hyperedges: parent edge id per edge (-1 for roots).
struct JoinTree {
  std::vector<long> parent;
};

/// Graham/Yu–Ozsoyoglu reduction: true iff the hypergraph is α-acyclic
/// (Fagin's weakest degree of acyclicity). If `join_tree` is non-null and the
/// hypergraph is acyclic, a join tree is emitted (edge e's parent is the edge
/// it was absorbed into).
bool IsAlphaAcyclic(const Hypergraph& graph, JoinTree* join_tree = nullptr);

/// True iff the hypergraph is β-acyclic: every subset of hyperedges is
/// α-acyclic. Decided by nest-point elimination: repeatedly delete a vertex
/// whose incident edges form a chain under inclusion; β-acyclic iff all edges
/// empty out. This is the notion matching the paper's Fig. 3 "hypertree"
/// classification (Q2, Q3 hypertrees; Q1 — which hides the triangle
/// {T1T2},{T1T3},{T2T3} — not).
bool IsBetaAcyclic(const Hypergraph& graph);

}  // namespace delprop

#endif  // DELPROP_HYPERGRAPH_GYO_H_
