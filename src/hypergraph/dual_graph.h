#ifndef DELPROP_HYPERGRAPH_DUAL_GRAPH_H_
#define DELPROP_HYPERGRAPH_DUAL_GRAPH_H_

#include <vector>

#include "hypergraph/gyo.h"
#include "hypergraph/hypergraph.h"
#include "query/conjunctive_query.h"

namespace delprop {

/// Result of classifying a query set via its dual hypergraph (Section IV.B):
/// vertices are the schema's relations, one hyperedge per query containing
/// the relations in its body.
struct DualGraphAnalysis {
  Hypergraph graph;
  /// Query (edge) ids grouped by connected component.
  std::vector<std::vector<size_t>> components;
  /// Whole graph α-acyclic (GYO)?
  bool alpha_acyclic = false;
  /// Every connected component a hypertree (β-acyclic)? This is the paper's
  /// "forest case" precondition for the tree algorithms.
  bool forest_case = false;
};

/// Builds and classifies the dual hypergraph H(Q) of `queries` over `schema`.
DualGraphAnalysis AnalyzeDualGraph(
    const Schema& schema, const std::vector<const ConjunctiveQuery*>& queries);

}  // namespace delprop

#endif  // DELPROP_HYPERGRAPH_DUAL_GRAPH_H_
