#ifndef DELPROP_HYPERGRAPH_DATA_FOREST_H_
#define DELPROP_HYPERGRAPH_DATA_FOREST_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "query/view.h"
#include "relational/tuple_ref.h"

namespace delprop {

/// One view tuple's witness mapped onto forest nodes (the paper's "view tuple
/// as a path in the data dual graph").
struct ForestWitness {
  /// Which view (index into the views vector given to Build) and which view
  /// tuple inside it this witness belongs to.
  size_t view_index = 0;
  size_t tuple_index = 0;
  /// Which witness of the view tuple (key-preserving queries have exactly 1).
  size_t witness_index = 0;
  /// Dense node ids of the base tuples in the witness, deduplicated.
  std::vector<size_t> nodes;
};

/// The data dual graph of Section IV.E, specialized to the tree algorithms:
/// vertices are the base tuples occurring in some witness; for every witness,
/// tuples matched by atoms that share a query variable are connected. The
/// tree algorithms require the graph to be a forest and witnesses to be
/// paths.
class DataForest {
 public:
  /// A rooting of the forest: parent node per node (-1 at roots), depths, and
  /// the chosen root per component.
  struct Rooting {
    std::vector<long> parent;
    std::vector<size_t> depth;
    /// Root node id per component id.
    std::vector<size_t> roots;
  };

  /// Builds the graph from materialized views (all witnesses of all tuples).
  static DataForest Build(const std::vector<const View*>& views);

  /// True if no cycle was formed (a precondition of Algorithms 1-4).
  bool is_forest() const { return is_forest_; }

  size_t node_count() const { return refs_.size(); }
  const TupleRef& node_ref(size_t node) const { return refs_[node]; }
  std::optional<size_t> NodeOf(const TupleRef& ref) const;
  const std::vector<size_t>& neighbors(size_t node) const {
    return adjacency_[node];
  }
  size_t component(size_t node) const { return component_[node]; }
  size_t component_count() const { return component_count_; }
  const std::vector<ForestWitness>& witnesses() const { return witnesses_; }

  /// Roots every component at the given node (one per component id); if
  /// `roots` is empty, the lowest node id of each component is used.
  Rooting RootAt(const std::vector<size_t>& roots = {}) const;

  /// Lowest common ancestor of two nodes in the same component.
  size_t Lca(const Rooting& rooting, size_t a, size_t b) const;

  /// True if the witness's nodes form a contiguous path in the forest.
  bool WitnessIsPath(const ForestWitness& witness,
                     const Rooting& rooting) const;

  /// True if the witness's nodes form an ancestor chain (a vertical path)
  /// under `rooting` — the pivot-tuple condition of Algorithm 4.
  bool WitnessIsVerticalPath(const ForestWitness& witness,
                             const Rooting& rooting) const;

  /// Searches each component for a pivot node whose rooting makes every
  /// witness of that component vertical. Returns one pivot per component, or
  /// nullopt if some component has none.
  std::optional<std::vector<size_t>> FindPivotRoots() const;

 private:
  DataForest() = default;

  std::vector<TupleRef> refs_;
  std::unordered_map<TupleRef, size_t, TupleRefHash> node_of_;
  std::vector<std::vector<size_t>> adjacency_;
  std::vector<size_t> component_;
  size_t component_count_ = 0;
  bool is_forest_ = true;
  std::vector<ForestWitness> witnesses_;
};

}  // namespace delprop

#endif  // DELPROP_HYPERGRAPH_DATA_FOREST_H_
