#include "hypergraph/data_forest.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>
#include <set>

namespace delprop {
namespace {

// Atom pairs of `query` that share at least one variable; witness tuples
// matched by such atom pairs are adjacent in the data dual graph.
std::vector<std::pair<size_t, size_t>> JoinedAtomPairs(
    const ConjunctiveQuery& query) {
  std::vector<std::pair<size_t, size_t>> pairs;
  const auto& atoms = query.atoms();
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      bool shared = false;
      for (const Term& a : atoms[i].terms) {
        if (!a.is_variable()) continue;
        for (const Term& b : atoms[j].terms) {
          if (b.is_variable() && b.id == a.id) {
            shared = true;
            break;
          }
        }
        if (shared) break;
      }
      if (shared) pairs.emplace_back(i, j);
    }
  }
  return pairs;
}

class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  // Returns false if a and b were already connected.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

DataForest DataForest::Build(const std::vector<const View*>& views) {
  DataForest forest;

  auto intern_node = [&forest](const TupleRef& ref) {
    auto [it, inserted] = forest.node_of_.emplace(ref, forest.refs_.size());
    if (inserted) {
      forest.refs_.push_back(ref);
      forest.adjacency_.emplace_back();
    }
    return it->second;
  };

  // First pass: intern nodes and record witnesses.
  for (size_t v = 0; v < views.size(); ++v) {
    const View& view = *views[v];
    for (size_t t = 0; t < view.size(); ++t) {
      const ViewTuple& tuple = view.tuple(t);
      for (size_t w = 0; w < tuple.witnesses.size(); ++w) {
        ForestWitness fw;
        fw.view_index = v;
        fw.tuple_index = t;
        fw.witness_index = w;
        for (const TupleRef& ref : tuple.witnesses[w]) {
          fw.nodes.push_back(intern_node(ref));
        }
        std::sort(fw.nodes.begin(), fw.nodes.end());
        fw.nodes.erase(std::unique(fw.nodes.begin(), fw.nodes.end()),
                       fw.nodes.end());
        forest.witnesses_.push_back(std::move(fw));
      }
    }
  }

  // Second pass: add edges between tuples matched by joined atoms.
  DisjointSets sets(forest.refs_.size());
  std::set<std::pair<size_t, size_t>> edge_set;
  size_t witness_cursor = 0;
  for (size_t v = 0; v < views.size(); ++v) {
    const View& view = *views[v];
    auto joined_pairs = JoinedAtomPairs(view.query());
    for (size_t t = 0; t < view.size(); ++t) {
      const ViewTuple& tuple = view.tuple(t);
      for (size_t w = 0; w < tuple.witnesses.size(); ++w) {
        const Witness& witness = tuple.witnesses[w];
        (void)witness_cursor;
        for (auto [i, j] : joined_pairs) {
          size_t a = forest.node_of_.at(witness[i]);
          size_t b = forest.node_of_.at(witness[j]);
          if (a == b) continue;
          auto key = std::minmax(a, b);
          if (edge_set.count({key.first, key.second}) > 0) continue;
          edge_set.insert({key.first, key.second});
          if (!sets.Union(a, b)) forest.is_forest_ = false;
          forest.adjacency_[a].push_back(b);
          forest.adjacency_[b].push_back(a);
        }
      }
    }
  }

  // Component ids, dense.
  forest.component_.assign(forest.refs_.size(), 0);
  std::unordered_map<size_t, size_t> dense;
  for (size_t n = 0; n < forest.refs_.size(); ++n) {
    size_t root = sets.Find(n);
    auto [it, inserted] = dense.emplace(root, dense.size());
    forest.component_[n] = it->second;
  }
  forest.component_count_ = dense.size();
  return forest;
}

std::optional<size_t> DataForest::NodeOf(const TupleRef& ref) const {
  auto it = node_of_.find(ref);
  if (it == node_of_.end()) return std::nullopt;
  return it->second;
}

DataForest::Rooting DataForest::RootAt(const std::vector<size_t>& roots) const {
  Rooting rooting;
  rooting.parent.assign(node_count(), -1);
  rooting.depth.assign(node_count(), 0);
  rooting.roots.assign(component_count_, node_count());

  if (!roots.empty()) {
    assert(roots.size() == component_count_);
    for (size_t c = 0; c < roots.size(); ++c) {
      assert(component_[roots[c]] == c);
      rooting.roots[c] = roots[c];
    }
  } else {
    // Default: lowest node id per component.
    for (size_t n = node_count(); n-- > 0;) {
      rooting.roots[component_[n]] = n;
    }
  }

  std::vector<bool> visited(node_count(), false);
  for (size_t root : rooting.roots) {
    std::deque<size_t> queue{root};
    visited[root] = true;
    while (!queue.empty()) {
      size_t node = queue.front();
      queue.pop_front();
      for (size_t next : adjacency_[node]) {
        if (visited[next]) continue;
        visited[next] = true;
        rooting.parent[next] = static_cast<long>(node);
        rooting.depth[next] = rooting.depth[node] + 1;
        queue.push_back(next);
      }
    }
  }
  return rooting;
}

size_t DataForest::Lca(const Rooting& rooting, size_t a, size_t b) const {
  assert(component_[a] == component_[b]);
  while (a != b) {
    if (rooting.depth[a] < rooting.depth[b]) std::swap(a, b);
    a = static_cast<size_t>(rooting.parent[a]);
  }
  return a;
}

bool DataForest::WitnessIsPath(const ForestWitness& witness,
                               const Rooting& rooting) const {
  const std::vector<size_t>& nodes = witness.nodes;
  if (nodes.size() <= 1) return true;
  // All nodes must share a component.
  for (size_t n : nodes) {
    if (component_[n] != component_[nodes[0]]) return false;
  }
  // Endpoint x: the deepest node; endpoint y: the node farthest from x.
  size_t x = nodes[0];
  for (size_t n : nodes) {
    if (rooting.depth[n] > rooting.depth[x]) x = n;
  }
  auto dist = [&](size_t a, size_t b) {
    size_t l = Lca(rooting, a, b);
    return rooting.depth[a] + rooting.depth[b] - 2 * rooting.depth[l];
  };
  size_t y = x;
  for (size_t n : nodes) {
    if (dist(x, n) > dist(x, y)) y = n;
  }
  // S is a path iff every node lies on path(x, y) and the count matches.
  size_t path_len = dist(x, y);
  if (nodes.size() != path_len + 1) return false;
  size_t top = Lca(rooting, x, y);
  for (size_t n : nodes) {
    // n on path(x,y) iff (lca(x,n)==n or lca(y,n)==n) and lca(x,y) is an
    // ancestor of n, i.e. dist(x,n)+dist(n,y)==dist(x,y).
    if (dist(x, n) + dist(n, y) != path_len) return false;
    (void)top;
  }
  return true;
}

bool DataForest::WitnessIsVerticalPath(const ForestWitness& witness,
                                       const Rooting& rooting) const {
  const std::vector<size_t>& nodes = witness.nodes;
  if (nodes.size() <= 1) return true;
  for (size_t n : nodes) {
    if (component_[n] != component_[nodes[0]]) return false;
  }
  // Deepest node d: all others must be ancestors of d at distinct depths
  // forming a contiguous chain.
  size_t d = nodes[0];
  for (size_t n : nodes) {
    if (rooting.depth[n] > rooting.depth[d]) d = n;
  }
  // Collect depths; must be |nodes| consecutive values ending at depth(d),
  // and each node must be the ancestor of d at its depth.
  std::vector<size_t> sorted = nodes;
  std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
    return rooting.depth[a] > rooting.depth[b];
  });
  size_t walker = d;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != walker) return false;
    if (i + 1 < sorted.size()) {
      if (rooting.parent[walker] < 0) return false;
      walker = static_cast<size_t>(rooting.parent[walker]);
    }
  }
  return true;
}

std::optional<std::vector<size_t>> DataForest::FindPivotRoots() const {
  if (!is_forest_) return std::nullopt;

  // Group nodes and witnesses by component.
  std::vector<std::vector<size_t>> nodes_by_component(component_count_);
  for (size_t n = 0; n < node_count(); ++n) {
    nodes_by_component[component_[n]].push_back(n);
  }
  std::vector<std::vector<const ForestWitness*>> witnesses_by_component(
      component_count_);
  for (const ForestWitness& w : witnesses_) {
    if (w.nodes.empty()) continue;
    size_t c = component_[w.nodes[0]];
    bool single = std::all_of(w.nodes.begin(), w.nodes.end(),
                              [&](size_t n) { return component_[n] == c; });
    if (!single) return std::nullopt;
    witnesses_by_component[c].push_back(&w);
  }

  std::vector<size_t> pivots(component_count_);
  std::vector<size_t> candidate_roots(component_count_);
  for (size_t c = 0; c < component_count_; ++c) {
    bool found = false;
    for (size_t candidate : nodes_by_component[c]) {
      candidate_roots[c] = candidate;
      // Root only this component at `candidate`; others at their first node
      // (their choice does not affect this component's check).
      std::vector<size_t> roots(component_count_);
      for (size_t c2 = 0; c2 < component_count_; ++c2) {
        roots[c2] = (c2 == c) ? candidate : nodes_by_component[c2].front();
      }
      Rooting rooting = RootAt(roots);
      bool all_vertical = true;
      for (const ForestWitness* w : witnesses_by_component[c]) {
        if (!WitnessIsVerticalPath(*w, rooting)) {
          all_vertical = false;
          break;
        }
      }
      if (all_vertical) {
        pivots[c] = candidate;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return pivots;
}

}  // namespace delprop
