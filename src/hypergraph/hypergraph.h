#ifndef DELPROP_HYPERGRAPH_HYPERGRAPH_H_
#define DELPROP_HYPERGRAPH_HYPERGRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

namespace delprop {

/// A finite hypergraph over dense vertex ids [0, vertex_count). Hyperedges
/// are stored as sorted vertex lists. Used for the paper's dual hypergraph
/// H(Q) (vertices = relations, hyperedges = query bodies).
class Hypergraph {
 public:
  explicit Hypergraph(size_t vertex_count) : vertex_count_(vertex_count) {}

  /// Adds a hyperedge; vertices are sorted and deduplicated. Returns its id.
  size_t AddEdge(std::vector<size_t> vertices);

  size_t vertex_count() const { return vertex_count_; }
  size_t edge_count() const { return edges_.size(); }
  const std::vector<size_t>& edge(size_t e) const { return edges_[e]; }

  /// Component id per vertex (vertices connected iff they co-occur in a chain
  /// of overlapping hyperedges). Isolated vertices get their own component.
  std::vector<size_t> VertexComponents() const;

  /// Partition of edge ids by connected component.
  std::vector<std::vector<size_t>> EdgeComponents() const;

  /// The sub-hypergraph induced by an edge subset (vertex ids preserved).
  Hypergraph InducedByEdges(const std::vector<size_t>& edge_ids) const;

 private:
  size_t vertex_count_;
  std::vector<std::vector<size_t>> edges_;
};

}  // namespace delprop

#endif  // DELPROP_HYPERGRAPH_HYPERGRAPH_H_
