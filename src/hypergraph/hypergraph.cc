#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <numeric>

namespace delprop {
namespace {

// Union-find over dense ids.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

size_t Hypergraph::AddEdge(std::vector<size_t> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  edges_.push_back(std::move(vertices));
  return edges_.size() - 1;
}

std::vector<size_t> Hypergraph::VertexComponents() const {
  DisjointSets sets(vertex_count_);
  for (const auto& edge : edges_) {
    for (size_t i = 1; i < edge.size(); ++i) sets.Union(edge[0], edge[i]);
  }
  std::vector<size_t> component(vertex_count_);
  for (size_t v = 0; v < vertex_count_; ++v) component[v] = sets.Find(v);
  return component;
}

std::vector<std::vector<size_t>> Hypergraph::EdgeComponents() const {
  std::vector<size_t> vertex_component = VertexComponents();
  std::vector<std::vector<size_t>> groups;
  std::vector<long> group_of_root(vertex_count_, -1);
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (edges_[e].empty()) {
      groups.push_back({e});
      continue;
    }
    size_t root = vertex_component[edges_[e][0]];
    if (group_of_root[root] < 0) {
      group_of_root[root] = static_cast<long>(groups.size());
      groups.emplace_back();
    }
    groups[group_of_root[root]].push_back(e);
  }
  return groups;
}

Hypergraph Hypergraph::InducedByEdges(
    const std::vector<size_t>& edge_ids) const {
  Hypergraph sub(vertex_count_);
  for (size_t e : edge_ids) sub.AddEdge(edges_[e]);
  return sub;
}

}  // namespace delprop
