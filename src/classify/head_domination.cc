#include "classify/head_domination.h"

#include <numeric>
#include <unordered_set>
#include <vector>

#include "query/query_properties.h"

namespace delprop {
namespace {

class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

bool HasHeadDomination(const ConjunctiveQuery& query) {
  const auto& atoms = query.atoms();
  std::unordered_set<VarId> head;
  for (const Term& t : query.head()) {
    if (t.is_variable()) head.insert(t.id);
  }

  // Which atoms carry an existential variable, and the variable sets.
  std::vector<std::unordered_set<VarId>> vars(atoms.size());
  std::vector<bool> existential_atom(atoms.size(), false);
  for (size_t a = 0; a < atoms.size(); ++a) {
    for (const Term& t : atoms[a].terms) {
      if (!t.is_variable()) continue;
      vars[a].insert(t.id);
      if (head.count(t.id) == 0) existential_atom[a] = true;
    }
  }

  // Components of existential atoms connected via shared EXISTENTIAL vars.
  DisjointSets sets(atoms.size());
  for (size_t a = 0; a < atoms.size(); ++a) {
    if (!existential_atom[a]) continue;
    for (size_t b = a + 1; b < atoms.size(); ++b) {
      if (!existential_atom[b]) continue;
      for (VarId v : vars[a]) {
        if (head.count(v) == 0 && vars[b].count(v) > 0) {
          sets.Union(a, b);
          break;
        }
      }
    }
  }

  // Head variables per component.
  std::vector<std::unordered_set<VarId>> component_heads(atoms.size());
  for (size_t a = 0; a < atoms.size(); ++a) {
    if (!existential_atom[a]) continue;
    size_t root = sets.Find(a);
    for (VarId v : vars[a]) {
      if (head.count(v) > 0) component_heads[root].insert(v);
    }
  }

  // Each component's head variables must sit inside one atom.
  for (size_t root = 0; root < atoms.size(); ++root) {
    const auto& needed = component_heads[root];
    if (needed.empty()) continue;
    bool dominated = false;
    for (size_t a = 0; a < atoms.size() && !dominated; ++a) {
      bool contains_all = true;
      for (VarId v : needed) {
        if (vars[a].count(v) == 0) {
          contains_all = false;
          break;
        }
      }
      dominated = contains_all;
    }
    if (!dominated) return false;
  }
  return true;
}

}  // namespace delprop
