#include "classify/fd.h"

#include <unordered_set>

#include "classify/head_domination.h"

namespace delprop {

std::vector<FunctionalDependency> KeyFds(const Schema& schema) {
  std::vector<FunctionalDependency> fds;
  for (RelationId rel = 0; rel < schema.relation_count(); ++rel) {
    const RelationSchema& r = schema.relation(rel);
    FunctionalDependency fd;
    fd.relation = rel;
    fd.lhs = r.key_positions;
    for (size_t p = 0; p < r.arity; ++p) fd.rhs.push_back(p);
    fds.push_back(std::move(fd));
  }
  return fds;
}

Result<ConjunctiveQuery> FdHeadClosure(
    const ConjunctiveQuery& query, const Schema& schema,
    const std::vector<FunctionalDependency>& fds) {
  for (const FunctionalDependency& fd : fds) {
    if (fd.relation >= schema.relation_count()) {
      return Status::InvalidArgument("FD over undeclared relation");
    }
    size_t arity = schema.relation(fd.relation).arity;
    for (size_t p : fd.lhs) {
      if (p >= arity) return Status::OutOfRange("FD lhs position");
    }
    for (size_t p : fd.rhs) {
      if (p >= arity) return Status::OutOfRange("FD rhs position");
    }
  }

  // Clone the query (variable ids preserved by re-adding in id order).
  ConjunctiveQuery closure(query.name() + "_fdclosure");
  for (VarId v = 0; v < query.variable_count(); ++v) {
    closure.AddVariable(query.variable_name(v));
  }
  for (const Term& t : query.head()) closure.AddHeadTerm(t);
  for (const Atom& atom : query.atoms()) closure.AddAtom(atom);

  // Fixpoint of determined variables.
  std::unordered_set<VarId> determined;
  for (const Term& t : query.head()) {
    if (t.is_variable()) determined.insert(t.id);
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (const Atom& atom : query.atoms()) {
      for (const FunctionalDependency& fd : fds) {
        if (fd.relation != atom.relation) continue;
        bool lhs_fixed = true;
        for (size_t p : fd.lhs) {
          const Term& t = atom.terms[p];
          if (t.is_variable() && determined.count(t.id) == 0) {
            lhs_fixed = false;
            break;
          }
        }
        if (!lhs_fixed) continue;
        for (size_t p : fd.rhs) {
          const Term& t = atom.terms[p];
          if (t.is_variable() && determined.insert(t.id).second) {
            closure.AddHeadTerm(t);
            progress = true;
          }
        }
      }
    }
  }
  return closure;
}

bool HasFdHeadDomination(const ConjunctiveQuery& query, const Schema& schema,
                         const std::vector<FunctionalDependency>& fds) {
  Result<ConjunctiveQuery> closure = FdHeadClosure(query, schema, fds);
  if (!closure.ok()) return false;
  return HasHeadDomination(*closure);
}

}  // namespace delprop
