#ifndef DELPROP_CLASSIFY_FD_H_
#define DELPROP_CLASSIFY_FD_H_

#include <vector>

#include "common/status.h"
#include "query/conjunctive_query.h"

namespace delprop {

/// A functional dependency lhs → rhs over one relation's attribute
/// positions. Keys are the special case key → all positions.
struct FunctionalDependency {
  RelationId relation = 0;
  std::vector<size_t> lhs;
  std::vector<size_t> rhs;
};

/// The FDs implied by the schema's declared keys (key positions determine
/// every position of the relation).
std::vector<FunctionalDependency> KeyFds(const Schema& schema);

/// Kimelfeld's FD-extension (PODS 2012, the 'fd-head domination' dichotomy
/// of Table IV): starting from the head variables, repeatedly add variables
/// functionally determined through some atom — if an FD lhs → rhs holds on
/// atom A and every lhs position of A carries a constant or an
/// already-determined variable, the rhs variables become determined. The
/// returned query has the determined variables appended to its head;
/// fd-head domination is head domination of this closure.
Result<ConjunctiveQuery> FdHeadClosure(
    const ConjunctiveQuery& query, const Schema& schema,
    const std::vector<FunctionalDependency>& fds);

/// Convenience: head domination of the FD closure.
bool HasFdHeadDomination(const ConjunctiveQuery& query, const Schema& schema,
                         const std::vector<FunctionalDependency>& fds);

}  // namespace delprop

#endif  // DELPROP_CLASSIFY_FD_H_
