#ifndef DELPROP_CLASSIFY_HEAD_DOMINATION_H_
#define DELPROP_CLASSIFY_HEAD_DOMINATION_H_

#include "query/conjunctive_query.h"

namespace delprop {

/// Kimelfeld, Vondrák, Williams' dichotomy property for single-query view
/// side-effect (TODS 2012, Table IV): a CQ has *head domination* iff for
/// every connected component of its existential-variable structure — atoms
/// containing existential variables, connected when they share one — some
/// atom of the query contains every head variable occurring in that
/// component. sj-free queries with head domination are PTime for single-
/// tuple deletion propagation; without it there is no PTAS.
///
/// Example (Section IV.B of the reproduced paper):
///   Q(y1, y2) :- T1(y1, x), T2(x, y2)
/// has one existential component {T1, T2} whose head variables {y1, y2}
/// appear together in no atom — not head-dominated, yet key preserving when
/// x keys both relations.
bool HasHeadDomination(const ConjunctiveQuery& query);

}  // namespace delprop

#endif  // DELPROP_CLASSIFY_HEAD_DOMINATION_H_
