#include "classify/landscape.h"

#include "hypergraph/dual_graph.h"
#include "query/query_properties.h"

namespace delprop {

QueryClassification ClassifyQuery(const ConjunctiveQuery& query,
                                  const Schema& schema) {
  QueryClassification c;
  c.project_free = IsProjectFree(query);
  c.self_join_free = IsSelfJoinFree(query);
  c.key_preserving = IsKeyPreserving(query, schema);
  c.head_domination = HasHeadDomination(query);
  c.triad_free = !FindTriad(query).has_value();

  // Tables II/III: source side-effect.
  if (c.project_free && c.self_join_free) {
    c.source_side_effect = "PTime (Buneman et al. 2002)";
  } else if (c.key_preserving) {
    c.source_side_effect = "PTime (Cong et al. 2012)";
  } else if (c.self_join_free && c.triad_free) {
    c.source_side_effect = "PTime (triad-free, Freire et al. 2015)";
  } else if (c.self_join_free) {
    c.source_side_effect = "NP-complete (triad, Freire et al. 2015)";
  } else {
    c.source_side_effect = "NP-complete (Cong et al. 2012)";
  }

  // Tables IV/V: view side-effect, single deletion.
  if (c.key_preserving) {
    c.view_side_effect_single = "PTime (key preserving, Cong et al. 2012)";
  } else if (c.self_join_free && c.head_domination) {
    c.view_side_effect_single =
        "PTime (head domination, Kimelfeld et al. 2012)";
  } else if (c.self_join_free) {
    c.view_side_effect_single =
        "NP-complete, no PTAS (Kimelfeld et al. 2012)";
  } else {
    c.view_side_effect_single = "NP-complete (Cong et al. 2012)";
  }
  return c;
}

QuerySetClassification ClassifyQuerySet(
    const std::vector<const ConjunctiveQuery*>& queries,
    const Schema& schema) {
  QuerySetClassification c;
  c.single_query = queries.size() == 1;
  c.all_key_preserving = true;
  c.all_project_free = true;
  for (const ConjunctiveQuery* q : queries) {
    if (!IsKeyPreserving(*q, schema)) c.all_key_preserving = false;
    if (!IsProjectFree(*q)) c.all_project_free = false;
  }
  c.forest_case = AnalyzeDualGraph(schema, queries).forest_case;

  if (c.single_query && c.all_key_preserving) {
    c.verdict = "PTime per answer (Cong et al. 2012)";
    c.recommended_solver = "single-deletion / rbsc-lowdeg";
  } else if (!c.all_key_preserving) {
    c.verdict = "NP-hard already per query; use general search";
    c.recommended_solver = "exact (small) / greedy";
  } else if (c.forest_case) {
    c.verdict =
        "forest case: l- and 2*sqrt(|V|)-approximable (Thms 3-4); "
        "exact DP if a pivot exists (Alg 4)";
    c.recommended_solver = "dp-tree / primal-dual / lowdeg-tree";
  } else {
    c.verdict =
        "no O(2^log^(1-d)|V|) approximation (Thm 1); "
        "O(2*sqrt(l*|V|*log|dV|)) via RBSC (Claim 1)";
    c.recommended_solver = "rbsc-lowdeg";
  }
  return c;
}

}  // namespace delprop
