#include "classify/triad.h"

#include <deque>
#include <unordered_set>
#include <vector>

namespace delprop {
namespace {

// Existential-variable sets per atom.
std::vector<std::unordered_set<VarId>> ExistentialVarSets(
    const ConjunctiveQuery& query) {
  std::unordered_set<VarId> head;
  for (const Term& t : query.head()) {
    if (t.is_variable()) head.insert(t.id);
  }
  std::vector<std::unordered_set<VarId>> vars(query.atoms().size());
  for (size_t a = 0; a < query.atoms().size(); ++a) {
    for (const Term& t : query.atoms()[a].terms) {
      if (t.is_variable() && head.count(t.id) == 0) vars[a].insert(t.id);
    }
  }
  return vars;
}

// Is there a path from atom `from` to atom `to` where every edge shares an
// existential variable NOT in `forbidden`, and no intermediate atom is the
// third triad member? Endpoints and intermediates may not use forbidden
// variables for their connections.
bool ConnectedAvoiding(const std::vector<std::unordered_set<VarId>>& vars,
                       size_t from, size_t to,
                       const std::unordered_set<VarId>& forbidden,
                       size_t excluded_atom) {
  size_t n = vars.size();
  auto linked = [&](size_t a, size_t b) {
    for (VarId v : vars[a]) {
      if (forbidden.count(v) == 0 && vars[b].count(v) > 0) return true;
    }
    return false;
  };
  std::vector<bool> visited(n, false);
  std::deque<size_t> queue{from};
  visited[from] = true;
  while (!queue.empty()) {
    size_t a = queue.front();
    queue.pop_front();
    if (a == to) return true;
    for (size_t b = 0; b < n; ++b) {
      if (visited[b] || b == excluded_atom) continue;
      if (linked(a, b)) {
        visited[b] = true;
        queue.push_back(b);
      }
    }
  }
  return false;
}

}  // namespace

std::optional<std::array<size_t, 3>> FindTriad(const ConjunctiveQuery& query) {
  std::vector<std::unordered_set<VarId>> vars = ExistentialVarSets(query);
  size_t n = vars.size();
  if (n < 3) return std::nullopt;
  for (size_t i = 0; i < n; ++i) {
    if (vars[i].empty()) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (vars[j].empty()) continue;
      for (size_t k = j + 1; k < n; ++k) {
        if (vars[k].empty()) continue;
        bool ij = ConnectedAvoiding(vars, i, j, vars[k], k);
        bool ik = ConnectedAvoiding(vars, i, k, vars[j], j);
        bool jk = ConnectedAvoiding(vars, j, k, vars[i], i);
        if (ij && ik && jk) {
          return std::array<size_t, 3>{i, j, k};
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace delprop
