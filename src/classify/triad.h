#ifndef DELPROP_CLASSIFY_TRIAD_H_
#define DELPROP_CLASSIFY_TRIAD_H_

#include <optional>
#include <array>

#include "query/conjunctive_query.h"

namespace delprop {

/// Freire, Gatterbauer, Immerman, Meliou's structural property for source
/// side-effect (resilience, PVLDB 2015, Tables II/III): a *triad* is a set
/// of three atoms {R0, R1, R2} such that for every pair i ≠ j there is a
/// path from Ri to Rj — consecutive atoms sharing a variable — that uses no
/// variable of the third atom. sj-free queries without a triad have PTime
/// resilience; with one, it is NP-complete.
///
/// Adaptation: resilience is defined for Boolean queries, so we run the test
/// on the existential-variable structure (head variables are pinned by the
/// deleted answer and act as constants).
///
/// Returns the atom indices of one triad, or nullopt if the query is
/// triad-free.
std::optional<std::array<size_t, 3>> FindTriad(const ConjunctiveQuery& query);

}  // namespace delprop

#endif  // DELPROP_CLASSIFY_TRIAD_H_
