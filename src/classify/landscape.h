#ifndef DELPROP_CLASSIFY_LANDSCAPE_H_
#define DELPROP_CLASSIFY_LANDSCAPE_H_

#include <string>
#include <vector>

#include "classify/head_domination.h"
#include "classify/triad.h"
#include "query/conjunctive_query.h"

namespace delprop {

/// Structural fingerprint of one query: the properties Tables II-V key on.
struct QueryClassification {
  bool project_free = false;
  bool self_join_free = false;
  bool key_preserving = false;
  bool head_domination = false;
  bool triad_free = false;

  /// Landscape verdicts, rendered as the literature cites them.
  /// Source side-effect for single answer deletion (Tables II/III).
  std::string source_side_effect;
  /// View side-effect for single answer deletion (Tables IV/V).
  std::string view_side_effect_single;
};

/// Classifies `query` against the schema's keys and fills the Table II-V
/// verdict strings.
QueryClassification ClassifyQuery(const ConjunctiveQuery& query,
                                  const Schema& schema);

/// Multi-query verdict (this paper's contribution).
struct QuerySetClassification {
  bool all_key_preserving = false;
  bool all_project_free = false;
  bool forest_case = false;
  bool single_query = false;
  /// What the reproduced paper says about minimizing view side-effect for
  /// this input class, and which solver in this library applies.
  std::string verdict;
  std::string recommended_solver;
};

QuerySetClassification ClassifyQuerySet(
    const std::vector<const ConjunctiveQuery*>& queries, const Schema& schema);

}  // namespace delprop

#endif  // DELPROP_CLASSIFY_LANDSCAPE_H_
