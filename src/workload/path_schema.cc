#include "workload/path_schema.h"

#include <string>

namespace delprop {

Result<GeneratedVse> GeneratePathSchema(Rng& rng,
                                        const PathSchemaParams& params) {
  if (params.levels < 2 || params.roots == 0 || params.fanout == 0) {
    return Status::InvalidArgument("path schema needs levels>=2, roots>=1, "
                                   "fanout>=1");
  }
  GeneratedVse generated;
  generated.database = std::make_unique<Database>();
  Database& db = *generated.database;

  // Relations L0(id, payload), Li(id, parent, payload).
  std::vector<RelationId> levels;
  for (size_t i = 0; i < params.levels; ++i) {
    Result<RelationId> rel =
        (i == 0)
            ? db.AddRelationNamed("L0", {"id", "payload"}, {0})
            : db.AddRelationNamed("L" + std::to_string(i),
                                  {"id", "parent", "payload"}, {0});
    if (!rel.ok()) return rel.status();
    levels.push_back(*rel);
  }

  // Rows, level by level; counts[i] = roots * fanout^i.
  size_t previous_count = 0;
  std::vector<size_t> counts(params.levels);
  for (size_t i = 0; i < params.levels; ++i) {
    counts[i] = (i == 0) ? params.roots : counts[i - 1] * params.fanout;
    for (size_t j = 0; j < counts[i]; ++j) {
      std::string id = "n" + std::to_string(i) + "_" + std::to_string(j);
      std::string payload = "p" + std::to_string(rng.NextBelow(1000));
      std::vector<std::string> row;
      if (i == 0) {
        row = {id, payload};
      } else {
        size_t parent = params.random_parents
                            ? rng.NextBelow(previous_count)
                            : j / params.fanout;
        std::string parent_id =
            "n" + std::to_string(i - 1) + "_" + std::to_string(parent);
        row = {id, parent_id, payload};
      }
      Result<TupleRef> ref = db.InsertText(levels[i], row);
      if (!ref.ok()) return ref.status();
    }
    previous_count = counts[i];
  }

  // Queries: one per interval, every variable in the head (project-free).
  std::vector<std::pair<size_t, size_t>> intervals = params.query_intervals;
  if (intervals.empty()) {
    for (size_t a = 0; a + 1 < params.levels; ++a) {
      intervals.emplace_back(a, params.levels - 1);
    }
  }
  for (size_t q = 0; q < intervals.size(); ++q) {
    auto [a, b] = intervals[q];
    if (a > b || b >= params.levels) {
      return Status::InvalidArgument("bad query interval");
    }
    auto query =
        std::make_unique<ConjunctiveQuery>("Q" + std::to_string(q));
    std::vector<VarId> id_vars(params.levels);
    for (size_t i = a; i <= b; ++i) {
      id_vars[i] = query->AddVariable("x" + std::to_string(i));
    }
    for (size_t i = a; i <= b; ++i) {
      Atom atom;
      atom.relation = levels[i];
      atom.terms.push_back(Term::Variable(id_vars[i]));
      query->AddHeadTerm(Term::Variable(id_vars[i]));
      if (i > 0) {
        Term parent_term =
            (i == a) ? Term::Variable(query->AddVariable("par"))
                     : Term::Variable(id_vars[i - 1]);
        atom.terms.push_back(parent_term);
        if (i == a) query->AddHeadTerm(parent_term);
      }
      VarId payload = query->AddVariable("w" + std::to_string(i));
      atom.terms.push_back(Term::Variable(payload));
      query->AddHeadTerm(Term::Variable(payload));
      query->AddAtom(std::move(atom));
    }
    generated.queries.push_back(std::move(query));
  }

  std::vector<const ConjunctiveQuery*> query_ptrs;
  for (const auto& q : generated.queries) query_ptrs.push_back(q.get());
  Result<VseInstance> instance = VseInstance::Create(db, query_ptrs);
  if (!instance.ok()) return instance.status();
  generated.instance = std::make_unique<VseInstance>(std::move(*instance));

  for (size_t v = 0; v < generated.instance->view_count(); ++v) {
    const View& view = generated.instance->view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      if (rng.NextBool(params.deletion_fraction)) {
        if (Status s = generated.instance->MarkForDeletion(ViewTupleId{v, t});
            !s.ok()) {
          return s;
        }
      }
    }
  }
  return generated;
}

}  // namespace delprop
