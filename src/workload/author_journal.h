#ifndef DELPROP_WORKLOAD_AUTHOR_JOURNAL_H_
#define DELPROP_WORKLOAD_AUTHOR_JOURNAL_H_

#include "common/rng.h"
#include "common/status.h"
#include "reductions/rbsc_to_vse.h"

namespace delprop {

/// Builds the paper's Fig. 1 running example verbatim:
///   T1(AuName, Journal) with key {AuName, Journal}: Joe/John/Tom rows;
///   T2(Journal, Topic, #Papers) with key {Journal, Topic}: TKDE/TODS rows;
///   Q3(x, z) :- T1(x, y), T2(y, z, w)      (not key preserving),
///   Q4(x, y, z) :- T1(x, y), T2(y, z, w)   (key preserving).
/// No deletions are marked; callers mark (John, XML) on Q3 or
/// (John, TKDE, XML) on Q4 to replay the paper's two scenarios.
Result<GeneratedVse> BuildFig1Example();

/// Parameters for randomized author/journal-style instances (two relations
/// joined on Journal, same query shapes as Fig. 1).
struct AuthorJournalParams {
  size_t authors = 10;
  size_t journals = 5;
  size_t topics = 4;
  /// Probability an (author, journal) pair is present in T1.
  double write_probability = 0.4;
  /// Probability a (journal, topic) pair is present in T2.
  double cover_probability = 0.5;
  /// Fraction of Q3 view tuples marked for deletion.
  double deletion_fraction = 0.2;
  /// Include the key-preserving Q4 view alongside Q3.
  bool include_q4 = true;
};

/// Generates a random instance; deletions are marked on the Q3 view.
Result<GeneratedVse> GenerateAuthorJournal(Rng& rng,
                                           const AuthorJournalParams& params);

}  // namespace delprop

#endif  // DELPROP_WORKLOAD_AUTHOR_JOURNAL_H_
