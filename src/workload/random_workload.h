#ifndef DELPROP_WORKLOAD_RANDOM_WORKLOAD_H_
#define DELPROP_WORKLOAD_RANDOM_WORKLOAD_H_

#include "common/rng.h"
#include "common/status.h"
#include "reductions/rbsc_to_vse.h"

namespace delprop {

/// Fully random multi-query instances for property tests and ratio sweeps:
/// binary relations over a small constant domain (key = both columns),
/// project-free connected conjunctive queries (hence key preserving with a
/// unique witness per view tuple, the paper's input class), random ΔV marks.
struct RandomWorkloadParams {
  size_t relations = 3;
  size_t rows_per_relation = 12;
  /// Size of the constant domain values are drawn from.
  size_t domain = 6;
  size_t queries = 3;
  /// Atoms per query drawn uniformly from [1, max_atoms].
  size_t max_atoms = 3;
  /// Probability that an atom term reuses an existing variable.
  double share_probability = 0.6;
  /// Fraction of view tuples marked for deletion (at least one is always
  /// marked when any view tuple exists).
  double deletion_fraction = 0.25;
};

Result<GeneratedVse> GenerateRandomWorkload(Rng& rng,
                                            const RandomWorkloadParams& params);

}  // namespace delprop

#endif  // DELPROP_WORKLOAD_RANDOM_WORKLOAD_H_
