#ifndef DELPROP_WORKLOAD_TRAP_CHAIN_H_
#define DELPROP_WORKLOAD_TRAP_CHAIN_H_

#include <cstddef>

#include "reductions/rbsc_to_vse.h"

namespace delprop {

/// A chain of `gadgets` independent greedy-trap gadgets (the corpus case
/// tests/corpus/greedy_trap.delprop, concatenated). Gadget g holds base rows
/// U(a_g, k_g), W(b_g, k_g), W(c_g, k_g) under views
///
///   QD(u, w) :- U(u, p), W(w, p)   (ΔV: QD(a_g, b_g) and QD(a_g, c_g)),
///   QU(u, p) :- U(u, p)            (weight 1.0),
///   QW(w, p) :- W(w, p)            (weights 0.4 for b_g, 0.7 for c_g),
///
/// joined on the gadget-private key k_g, so gadgets share nothing. Per
/// gadget the optimum deletes U(a_g, k_g) (damage 1.0) while damage-greedy
/// deletes both W rows (0.4 + 0.7 = 1.1): OPT = 1.0 · gadgets, greedy
/// = 1.1 · gadgets.
///
/// The family is the ILP solver's showcase and the exact solver's wall:
/// branch-and-bound over the whole instance has no per-gadget bound, so its
/// search tree is exponential in `gadgets` (the 20M-node default budget dies
/// near 25), while component decomposition solves each gadget in a handful
/// of nodes and certifies gap 0.
Result<GeneratedVse> MakeTrapChain(size_t gadgets);

}  // namespace delprop

#endif  // DELPROP_WORKLOAD_TRAP_CHAIN_H_
