#include "workload/random_rbsc.h"

namespace delprop {
namespace {

// Adds each element of [0, universe) independently with probability
// expected/universe.
std::vector<size_t> SampleMembers(Rng& rng, size_t universe, double expected) {
  std::vector<size_t> members;
  if (universe == 0) return members;
  double p = expected / static_cast<double>(universe);
  for (size_t e = 0; e < universe; ++e) {
    if (rng.NextBool(p)) members.push_back(e);
  }
  return members;
}

}  // namespace

RbscInstance GenerateRandomRbsc(Rng& rng, const RandomRbscParams& params) {
  RbscInstance instance;
  instance.red_count = params.red_count;
  instance.blue_count = params.blue_count;
  instance.sets.resize(params.set_count);
  for (auto& set : instance.sets) {
    set.reds = SampleMembers(rng, params.red_count, params.reds_per_set);
    set.blues = SampleMembers(rng, params.blue_count, params.blues_per_set);
  }
  // Guarantee feasibility: drop every uncovered blue into a random set.
  std::vector<bool> covered(params.blue_count, false);
  for (const auto& set : instance.sets) {
    for (size_t b : set.blues) covered[b] = true;
  }
  for (size_t b = 0; b < params.blue_count; ++b) {
    if (!covered[b] && !instance.sets.empty()) {
      instance.sets[rng.NextBelow(instance.sets.size())].blues.push_back(b);
    }
  }
  return instance;
}

PnpscInstance GenerateRandomPnpsc(Rng& rng, const RandomPnpscParams& params) {
  PnpscInstance instance;
  instance.positive_count = params.positive_count;
  instance.negative_count = params.negative_count;
  instance.sets.resize(params.set_count);
  for (auto& set : instance.sets) {
    set.positives =
        SampleMembers(rng, params.positive_count, params.positives_per_set);
    set.negatives =
        SampleMembers(rng, params.negative_count, params.negatives_per_set);
  }
  return instance;
}

}  // namespace delprop
