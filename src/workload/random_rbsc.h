#ifndef DELPROP_WORKLOAD_RANDOM_RBSC_H_
#define DELPROP_WORKLOAD_RANDOM_RBSC_H_

#include "common/rng.h"
#include "setcover/pnpsc.h"
#include "setcover/red_blue.h"

namespace delprop {

/// Random Red-Blue Set Cover instances for the ratio benches.
struct RandomRbscParams {
  size_t red_count = 10;
  size_t blue_count = 6;
  size_t set_count = 12;
  /// Expected red/blue members per set.
  double reds_per_set = 2.0;
  double blues_per_set = 2.0;
};

/// Every blue element is guaranteed to occur in at least one set (feasible
/// by construction).
RbscInstance GenerateRandomRbsc(Rng& rng, const RandomRbscParams& params);

/// Random ±PSC instances (same shape; no coverage guarantee is needed, any
/// solution is feasible).
struct RandomPnpscParams {
  size_t positive_count = 6;
  size_t negative_count = 10;
  size_t set_count = 12;
  double positives_per_set = 2.0;
  double negatives_per_set = 2.0;
};

PnpscInstance GenerateRandomPnpsc(Rng& rng, const RandomPnpscParams& params);

}  // namespace delprop

#endif  // DELPROP_WORKLOAD_RANDOM_RBSC_H_
