#include "workload/hardness_family.h"

namespace delprop {

RbscInstance GreedyTrapRbsc(size_t k) {
  RbscInstance instance;
  if (k < 2) k = 2;
  // Reds: r0 is the shared cheap red; r1..r_{k-1} are the big set's reds.
  instance.red_count = k;
  instance.blue_count = k;
  RbscInstance::Set big;
  for (size_t b = 0; b < k; ++b) big.blues.push_back(b);
  for (size_t r = 1; r < k; ++r) big.reds.push_back(r);
  instance.sets.push_back(std::move(big));
  for (size_t b = 0; b < k; ++b) {
    RbscInstance::Set single;
    single.blues = {b};
    single.reds = {0};
    instance.sets.push_back(std::move(single));
  }
  return instance;
}

RbscInstance LayeredTrapRbsc(size_t layers, size_t k) {
  if (layers == 0) layers = 1;
  if (k < 2) k = 2;
  RbscInstance instance;
  // Per layer: one cheap red + (k-1) big-set reds; k blues.
  instance.red_count = layers * k;
  instance.blue_count = layers * k;
  for (size_t layer = 0; layer < layers; ++layer) {
    size_t red_base = layer * k;
    size_t blue_base = layer * k;
    RbscInstance::Set big;
    for (size_t b = 0; b < k; ++b) big.blues.push_back(blue_base + b);
    for (size_t r = 1; r < k; ++r) big.reds.push_back(red_base + r);
    instance.sets.push_back(std::move(big));
    for (size_t b = 0; b < k; ++b) {
      RbscInstance::Set single;
      single.blues = {blue_base + b};
      single.reds = {red_base};
      instance.sets.push_back(std::move(single));
    }
  }
  return instance;
}

}  // namespace delprop
