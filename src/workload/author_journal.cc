#include "workload/author_journal.h"

#include <string>

#include "query/parser.h"

namespace delprop {
namespace {

Result<GeneratedVse> AssembleInstance(GeneratedVse generated) {
  std::vector<const ConjunctiveQuery*> query_ptrs;
  for (const auto& q : generated.queries) query_ptrs.push_back(q.get());
  Result<VseInstance> instance =
      VseInstance::Create(*generated.database, query_ptrs);
  if (!instance.ok()) return instance.status();
  generated.instance = std::make_unique<VseInstance>(std::move(*instance));
  return generated;
}

}  // namespace

Result<GeneratedVse> BuildFig1Example() {
  GeneratedVse generated;
  generated.database = std::make_unique<Database>();
  Database& db = *generated.database;

  Result<RelationId> t1 = db.AddRelationNamed(
      "T1", {"AuName", "Journal"}, {0, 1});
  if (!t1.ok()) return t1.status();
  Result<RelationId> t2 = db.AddRelationNamed(
      "T2", {"Journal", "Topic", "NumPapers"}, {0, 1});
  if (!t2.ok()) return t2.status();

  for (auto [author, journal] :
       {std::pair{"Joe", "TKDE"}, {"John", "TKDE"}, {"Tom", "TKDE"},
        {"John", "TODS"}}) {
    Result<TupleRef> ref = db.InsertText(*t1, {author, journal});
    if (!ref.ok()) return ref.status();
  }
  for (auto [journal, topic] :
       {std::pair{"TKDE", "XML"}, {"TKDE", "CUBE"}, {"TODS", "XML"}}) {
    Result<TupleRef> ref = db.InsertText(*t2, {journal, topic, "30"});
    if (!ref.ok()) return ref.status();
  }

  for (const char* text :
       {"Q3(x, z) :- T1(x, y), T2(y, z, w)",
        "Q4(x, y, z) :- T1(x, y), T2(y, z, w)"}) {
    Result<ConjunctiveQuery> query = ParseQuery(text, db.schema(), db.dict());
    if (!query.ok()) return query.status();
    generated.queries.push_back(
        std::make_unique<ConjunctiveQuery>(std::move(*query)));
  }
  return AssembleInstance(std::move(generated));
}

Result<GeneratedVse> GenerateAuthorJournal(Rng& rng,
                                           const AuthorJournalParams& params) {
  GeneratedVse generated;
  generated.database = std::make_unique<Database>();
  Database& db = *generated.database;

  Result<RelationId> t1 =
      db.AddRelationNamed("T1", {"AuName", "Journal"}, {0, 1});
  if (!t1.ok()) return t1.status();
  Result<RelationId> t2 =
      db.AddRelationNamed("T2", {"Journal", "Topic", "NumPapers"}, {0, 1});
  if (!t2.ok()) return t2.status();

  for (size_t a = 0; a < params.authors; ++a) {
    for (size_t j = 0; j < params.journals; ++j) {
      if (!rng.NextBool(params.write_probability)) continue;
      Result<TupleRef> ref = db.InsertText(
          *t1, {"author" + std::to_string(a), "journal" + std::to_string(j)});
      if (!ref.ok()) return ref.status();
    }
  }
  for (size_t j = 0; j < params.journals; ++j) {
    for (size_t t = 0; t < params.topics; ++t) {
      if (!rng.NextBool(params.cover_probability)) continue;
      Result<TupleRef> ref = db.InsertText(
          *t2, {"journal" + std::to_string(j), "topic" + std::to_string(t),
                std::to_string(10 + rng.NextBelow(90))});
      if (!ref.ok()) return ref.status();
    }
  }

  std::vector<const char*> texts = {"Q3(x, z) :- T1(x, y), T2(y, z, w)"};
  if (params.include_q4) {
    texts.push_back("Q4(x, y, z) :- T1(x, y), T2(y, z, w)");
  }
  for (const char* text : texts) {
    Result<ConjunctiveQuery> query = ParseQuery(text, db.schema(), db.dict());
    if (!query.ok()) return query.status();
    generated.queries.push_back(
        std::make_unique<ConjunctiveQuery>(std::move(*query)));
  }
  Result<GeneratedVse> assembled = AssembleInstance(std::move(generated));
  if (!assembled.ok()) return assembled;

  VseInstance& instance = *assembled->instance;
  if (instance.view_count() > 0) {
    const View& q3 = instance.view(0);
    for (size_t t = 0; t < q3.size(); ++t) {
      if (rng.NextBool(params.deletion_fraction)) {
        if (Status s = instance.MarkForDeletion(ViewTupleId{0, t}); !s.ok()) {
          return s;
        }
      }
    }
  }
  return assembled;
}

}  // namespace delprop
