#include "workload/random_workload.h"

#include <string>

namespace delprop {

Result<GeneratedVse> GenerateRandomWorkload(
    Rng& rng, const RandomWorkloadParams& params) {
  if (params.relations == 0 || params.queries == 0 || params.domain == 0) {
    return Status::InvalidArgument("random workload needs relations, queries "
                                   "and a non-empty domain");
  }
  GeneratedVse generated;
  generated.database = std::make_unique<Database>();
  Database& db = *generated.database;

  std::vector<RelationId> relations;
  for (size_t r = 0; r < params.relations; ++r) {
    Result<RelationId> rel =
        db.AddRelation("R" + std::to_string(r), 2, {0, 1});
    if (!rel.ok()) return rel.status();
    relations.push_back(*rel);
    for (size_t row = 0; row < params.rows_per_relation; ++row) {
      std::string a = "v" + std::to_string(rng.NextBelow(params.domain));
      std::string b = "v" + std::to_string(rng.NextBelow(params.domain));
      // Duplicate keys are simply skipped (key = both columns).
      (void)db.InsertText(*rel, {a, b});
    }
  }

  for (size_t q = 0; q < params.queries; ++q) {
    auto query = std::make_unique<ConjunctiveQuery>("Q" + std::to_string(q));
    size_t atoms = 1 + rng.NextBelow(params.max_atoms);
    std::vector<VarId> pool;
    auto pick_term = [&](bool force_shared) -> Term {
      if ((force_shared || rng.NextBool(params.share_probability)) &&
          !pool.empty()) {
        return Term::Variable(pool[rng.NextBelow(pool.size())]);
      }
      VarId var = query->AddVariable("z" + std::to_string(pool.size()));
      pool.push_back(var);
      return Term::Variable(var);
    };
    for (size_t a = 0; a < atoms; ++a) {
      Atom atom;
      atom.relation = relations[rng.NextBelow(relations.size())];
      // Keep the query connected: from the second atom on, the first term
      // reuses an existing variable.
      atom.terms.push_back(pick_term(/*force_shared=*/a > 0));
      atom.terms.push_back(pick_term(/*force_shared=*/false));
      query->AddAtom(std::move(atom));
    }
    // Project-free: every variable goes into the head.
    for (VarId var : pool) query->AddHeadTerm(Term::Variable(var));
    generated.queries.push_back(std::move(query));
  }

  std::vector<const ConjunctiveQuery*> query_ptrs;
  for (const auto& q : generated.queries) query_ptrs.push_back(q.get());
  Result<VseInstance> instance = VseInstance::Create(db, query_ptrs);
  if (!instance.ok()) return instance.status();
  generated.instance = std::make_unique<VseInstance>(std::move(*instance));

  size_t marked = 0;
  for (size_t v = 0; v < generated.instance->view_count(); ++v) {
    const View& view = generated.instance->view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      if (rng.NextBool(params.deletion_fraction)) {
        if (Status s = generated.instance->MarkForDeletion(ViewTupleId{v, t});
            !s.ok()) {
          return s;
        }
        ++marked;
      }
    }
  }
  if (marked == 0) {
    // Mark one view tuple deterministically so the instance is non-trivial.
    for (size_t v = 0; v < generated.instance->view_count() && marked == 0;
         ++v) {
      if (generated.instance->view(v).size() > 0) {
        if (Status s = generated.instance->MarkForDeletion(ViewTupleId{v, 0});
            !s.ok()) {
          return s;
        }
        marked = 1;
      }
    }
  }
  return generated;
}

}  // namespace delprop
