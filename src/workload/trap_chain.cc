#include "workload/trap_chain.h"

#include <optional>
#include <string>

#include "query/parser.h"

namespace delprop {
namespace {

/// Sets the weight of the view tuple of `view_index` with the given head
/// values (all constants were interned during row insertion).
Status WeightByValues(VseInstance& instance, size_t view_index,
                      const std::vector<std::string>& values, double weight) {
  const ValueDictionary& dict = instance.database().dict();
  Tuple tuple;
  tuple.reserve(values.size());
  for (const std::string& text : values) {
    std::optional<ValueId> id = dict.Find(text);
    if (!id.has_value()) {
      return Status::NotFound("unknown constant '" + text + "'");
    }
    tuple.push_back(*id);
  }
  std::optional<size_t> index = instance.view(view_index).Find(tuple);
  if (!index.has_value()) {
    return Status::NotFound("no view tuple with the given values in view " +
                            std::to_string(view_index));
  }
  return instance.SetWeight(ViewTupleId{view_index, *index}, weight);
}

}  // namespace

Result<GeneratedVse> MakeTrapChain(size_t gadgets) {
  GeneratedVse generated;
  generated.database = std::make_unique<Database>();
  Database& db = *generated.database;

  Result<RelationId> u = db.AddRelationNamed("U", {"id", "p"}, {0});
  if (!u.ok()) return u.status();
  Result<RelationId> w = db.AddRelationNamed("W", {"id", "p"}, {0});
  if (!w.ok()) return w.status();

  for (size_t g = 0; g < gadgets; ++g) {
    const std::string key = "k" + std::to_string(g);
    if (Result<TupleRef> r = db.InsertText(*u, {"a" + std::to_string(g), key});
        !r.ok()) {
      return r.status();
    }
    for (const char* row : {"b", "c"}) {
      if (Result<TupleRef> r =
              db.InsertText(*w, {row + std::to_string(g), key});
          !r.ok()) {
        return r.status();
      }
    }
  }

  for (const char* text :
       {"QD(u, w) :- U(u, p), W(w, p)", "QU(u, p) :- U(u, p)",
        "QW(w, p) :- W(w, p)"}) {
    Result<ConjunctiveQuery> query = ParseQuery(text, db.schema(), db.dict());
    if (!query.ok()) return query.status();
    generated.queries.push_back(
        std::make_unique<ConjunctiveQuery>(std::move(*query)));
  }
  std::vector<const ConjunctiveQuery*> query_ptrs;
  for (const auto& q : generated.queries) query_ptrs.push_back(q.get());
  Result<VseInstance> assembled = VseInstance::Create(db, query_ptrs);
  if (!assembled.ok()) return assembled.status();
  generated.instance = std::make_unique<VseInstance>(std::move(*assembled));

  VseInstance& instance = *generated.instance;
  for (size_t g = 0; g < gadgets; ++g) {
    const std::string a = "a" + std::to_string(g);
    const std::string b = "b" + std::to_string(g);
    const std::string c = "c" + std::to_string(g);
    const std::string key = "k" + std::to_string(g);
    if (Status s = instance.MarkForDeletionByValues(0, {a, b}); !s.ok()) {
      return s;
    }
    if (Status s = instance.MarkForDeletionByValues(0, {a, c}); !s.ok()) {
      return s;
    }
    if (Status s = WeightByValues(instance, 2, {b, key}, 0.4); !s.ok()) {
      return s;
    }
    if (Status s = WeightByValues(instance, 2, {c, key}, 0.7); !s.ok()) {
      return s;
    }
  }
  return generated;
}

}  // namespace delprop
