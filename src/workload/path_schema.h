#ifndef DELPROP_WORKLOAD_PATH_SCHEMA_H_
#define DELPROP_WORKLOAD_PATH_SCHEMA_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "reductions/rbsc_to_vse.h"

namespace delprop {

/// Chain-of-relations workload producing the paper's *forest cases*:
/// relations L0(id, payload), Li(id, parent, payload) form a tree of tuples
/// (each row keys a unique parent), and every query joins a contiguous level
/// interval [a, b] with all variables in the head (project-free, hence key
/// preserving). Witnesses are vertical paths, so the generated instances
/// satisfy the preconditions of Algorithms 1-4 with the level-a tuples as
/// pivots.
struct PathSchemaParams {
  /// Number of chained relations (≥ 2).
  size_t levels = 4;
  /// Number of tuples in L0.
  size_t roots = 2;
  /// Children per tuple at each level (tree fanout).
  size_t fanout = 2;
  /// One query per interval; empty means every suffix interval
  /// {[0,levels-1], [1,levels-1], ..., [levels-2,levels-1]}.
  std::vector<std::pair<size_t, size_t>> query_intervals;
  /// Fraction of view tuples (across all views) marked for deletion.
  double deletion_fraction = 0.2;
  /// If true, each row picks a uniform random parent instead of the
  /// deterministic j/fanout layout.
  bool random_parents = false;
};

Result<GeneratedVse> GeneratePathSchema(Rng& rng,
                                        const PathSchemaParams& params);

}  // namespace delprop

#endif  // DELPROP_WORKLOAD_PATH_SCHEMA_H_
