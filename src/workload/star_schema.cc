#include "workload/star_schema.h"

#include <string>

namespace delprop {

Result<GeneratedVse> GenerateStarSchema(Rng& rng,
                                        const StarSchemaParams& params) {
  if (params.dimensions == 0 || params.dimension_rows == 0) {
    return Status::InvalidArgument("star schema needs dimensions and rows");
  }
  GeneratedVse generated;
  generated.database = std::make_unique<Database>();
  Database& db = *generated.database;

  std::vector<RelationId> dims;
  for (size_t d = 0; d < params.dimensions; ++d) {
    Result<RelationId> rel = db.AddRelationNamed(
        "D" + std::to_string(d), {"id", "payload"}, {0});
    if (!rel.ok()) return rel.status();
    dims.push_back(*rel);
    for (size_t j = 0; j < params.dimension_rows; ++j) {
      Result<TupleRef> ref = db.InsertText(
          *rel, {"d" + std::to_string(d) + "_" + std::to_string(j),
                 "p" + std::to_string(rng.NextBelow(1000))});
      if (!ref.ok()) return ref.status();
    }
  }
  std::vector<std::string> fact_columns = {"id"};
  for (size_t d = 0; d < params.dimensions; ++d) {
    fact_columns.push_back("d" + std::to_string(d));
  }
  Result<RelationId> fact = db.AddRelationNamed("F", fact_columns, {0});
  if (!fact.ok()) return fact.status();
  for (size_t j = 0; j < params.fact_rows; ++j) {
    std::vector<std::string> row = {"f" + std::to_string(j)};
    for (size_t d = 0; d < params.dimensions; ++d) {
      row.push_back("d" + std::to_string(d) + "_" +
                    std::to_string(rng.NextBelow(params.dimension_rows)));
    }
    Result<TupleRef> ref = db.InsertText(*fact, row);
    if (!ref.ok()) return ref.status();
  }

  std::vector<std::vector<size_t>> query_sets = params.query_dimension_sets;
  if (query_sets.empty()) {
    std::vector<size_t> all;
    for (size_t d = 0; d < params.dimensions; ++d) all.push_back(d);
    query_sets.push_back(all);
    for (size_t d = 0; d + 1 < params.dimensions; ++d) {
      query_sets.push_back({d, d + 1});
    }
  }
  for (size_t q = 0; q < query_sets.size(); ++q) {
    auto query = std::make_unique<ConjunctiveQuery>("Q" + std::to_string(q));
    // Fact atom: id + one variable per dimension column.
    Atom fact_atom;
    fact_atom.relation = *fact;
    VarId fact_id = query->AddVariable("f");
    fact_atom.terms.push_back(Term::Variable(fact_id));
    query->AddHeadTerm(Term::Variable(fact_id));
    std::vector<VarId> dim_vars(params.dimensions);
    for (size_t d = 0; d < params.dimensions; ++d) {
      dim_vars[d] = query->AddVariable("x" + std::to_string(d));
      fact_atom.terms.push_back(Term::Variable(dim_vars[d]));
      query->AddHeadTerm(Term::Variable(dim_vars[d]));
    }
    query->AddAtom(std::move(fact_atom));
    for (size_t d : query_sets[q]) {
      if (d >= params.dimensions) {
        return Status::InvalidArgument("bad dimension index in query set");
      }
      Atom dim_atom;
      dim_atom.relation = dims[d];
      dim_atom.terms.push_back(Term::Variable(dim_vars[d]));
      VarId payload = query->AddVariable("w" + std::to_string(d));
      dim_atom.terms.push_back(Term::Variable(payload));
      query->AddHeadTerm(Term::Variable(payload));
      query->AddAtom(std::move(dim_atom));
    }
    generated.queries.push_back(std::move(query));
  }

  std::vector<const ConjunctiveQuery*> query_ptrs;
  for (const auto& q : generated.queries) query_ptrs.push_back(q.get());
  Result<VseInstance> instance = VseInstance::Create(db, query_ptrs);
  if (!instance.ok()) return instance.status();
  generated.instance = std::make_unique<VseInstance>(std::move(*instance));

  for (size_t v = 0; v < generated.instance->view_count(); ++v) {
    const View& view = generated.instance->view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      if (rng.NextBool(params.deletion_fraction)) {
        if (Status s = generated.instance->MarkForDeletion(ViewTupleId{v, t});
            !s.ok()) {
          return s;
        }
      }
    }
  }
  return generated;
}

}  // namespace delprop
