#ifndef DELPROP_WORKLOAD_HARDNESS_FAMILY_H_
#define DELPROP_WORKLOAD_HARDNESS_FAMILY_H_

#include <cstddef>

#include "setcover/red_blue.h"

namespace delprop {

/// The greedy-trap family (Theorem 1 flavor): k blue elements, one "cheap
/// looking" set covering all blues at k-1 distinct reds, and k singleton
/// sets {b_i, r*} sharing a single red. The naive density greedy picks the
/// big set (ratio (k-1)/k < 1) and pays k-1, while OPT pays 1 through the
/// singletons; LowDegTwo's τ=1 pass recovers the optimum. Ratio grows
/// linearly in the instance size, illustrating why no constant factor can
/// exist for the lifted deletion-propagation instances.
RbscInstance GreedyTrapRbsc(size_t k);

/// A layered trap chaining `layers` copies of GreedyTrapRbsc(k) over
/// disjoint blues with a shared cheap red per layer; stresses the threshold
/// sweep of LowDegTwo.
RbscInstance LayeredTrapRbsc(size_t layers, size_t k);

}  // namespace delprop

#endif  // DELPROP_WORKLOAD_HARDNESS_FAMILY_H_
