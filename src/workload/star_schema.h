#ifndef DELPROP_WORKLOAD_STAR_SCHEMA_H_
#define DELPROP_WORKLOAD_STAR_SCHEMA_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "reductions/rbsc_to_vse.h"

namespace delprop {

/// Star-join workload: a fact table F(id, d0, ..., dk-1) plus dimension
/// tables Di(id, payload); each query joins F with a subset of dimensions,
/// all variables in the head (project-free / key preserving). Witnesses are
/// stars — *not* paths — so these instances exercise the general-case
/// algorithm (Claim 1) where the tree algorithms must refuse.
struct StarSchemaParams {
  size_t dimensions = 3;
  size_t dimension_rows = 4;
  size_t fact_rows = 20;
  /// One query per entry: the dimension subsets to join with the fact table;
  /// empty means {all dimensions} plus each pair {i, i+1}.
  std::vector<std::vector<size_t>> query_dimension_sets;
  /// Fraction of view tuples (across all views) marked for deletion.
  double deletion_fraction = 0.15;
};

Result<GeneratedVse> GenerateStarSchema(Rng& rng,
                                        const StarSchemaParams& params);

}  // namespace delprop

#endif  // DELPROP_WORKLOAD_STAR_SCHEMA_H_
