#ifndef DELPROP_PLAN_COMPILED_INSTANCE_H_
#define DELPROP_PLAN_COMPILED_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "dp/vse_instance.h"
#include "relational/tuple_ref.h"

namespace delprop {

/// The ΔV-independent part of a compiled plan: interned id spaces and CSR
/// incidence for one (database, queries, views, weights) input. Everything
/// here is a function of the views and weights only — marking or clearing
/// deletions never changes it — so one PlanCore is built per instance shape
/// and shared (immutably, via shared_ptr) across every ΔV overlay compiled
/// from it, across replicas (`VseInstance::Replicate`), and across threads.
struct PlanCore {
  std::vector<uint32_t> view_first;  // per view: first dense tuple id
  std::vector<uint32_t> tuple_view;  // per tuple: owning view
  std::vector<double> weight;        // per tuple

  std::vector<uint32_t> tuple_witness_first;  // size tuple_count + 1
  std::vector<uint32_t> witness_owner;        // per witness

  std::vector<uint32_t> witness_member_first;  // size witness_count + 1
  std::vector<uint32_t> witness_member_base;   // raw, atom order

  std::vector<TupleRef> base_refs;  // ascending

  std::vector<uint32_t> base_occ_first;  // size base_count + 1
  std::vector<uint32_t> occ_tuple;
  std::vector<uint32_t> occ_witness;

  std::vector<uint32_t> base_kill_first;  // size base_count + 1
  std::vector<uint32_t> kill_tuple;

  // --- bit-parallel kill-kernel layout (src/solvers/kill_kernels.h) -------
  // Packed member-hit bit space: witness `wid` owns the absolute bit range
  // [witness_bit_first[wid], witness_bit_first[wid+1]) — one bit per UNIQUE
  // member base (the deduped row FinishCore already derives), and
  // occ_hit_bit[slot] is the absolute bit of occurrence `slot`. Both are
  // emitted unconditionally: the bit space is just the deduped member list
  // reindexed, so it costs one uint32 per occurrence.
  std::vector<uint32_t> witness_bit_first;  // size witness_count + 1
  std::vector<uint32_t> occ_hit_bit;        // per occ slot, ascending per row
  // Per kill entry: witness-incidence mask of the owning base within the
  // killed tuple — bit j set iff witness (tuple_witness_first[t] + j)
  // contains the base. Only emitted when `bits_supported` (every tuple's
  // witness fan-in fits one word); wide-fan-in plans keep the scalar CSR.
  std::vector<uint64_t> kill_witness_mask;  // parallel to kill_tuple
  // Row-width statistics: drive the per-plan kernel dispatch and the exact
  // solver's branch short-circuit.
  uint32_t max_witnesses_per_tuple = 0;
  uint32_t max_witness_members = 0;      // widest deduped member row
  uint32_t min_witness_raw_members = 0;  // narrowest raw member row
  bool bits_supported = false;           // kill_witness_mask emitted

  uint32_t tuple_count() const { return static_cast<uint32_t>(weight.size()); }
  uint32_t witness_count() const {
    return static_cast<uint32_t>(witness_owner.size());
  }
  uint32_t base_count() const {
    return static_cast<uint32_t>(base_refs.size());
  }
};

/// A view-level delta phrased in an existing core's dense ids: which old
/// view tuples disappeared and which old witnesses were removed (a removed
/// tuple has all of its witnesses marked). Appended tuples and witnesses are
/// not listed — `CompiledInstance::PatchCore` reads them straight from the
/// already-mutated views, which hold survivors first (in their old relative
/// order) and appended tuples/witnesses last.
struct CoreDelta {
  std::vector<uint8_t> tuple_removed;    // by old dense tuple id
  std::vector<uint8_t> witness_removed;  // by old witness id
  size_t removed_tuple_count = 0;
  size_t removed_witness_count = 0;
};

/// The dense, immutable execution plan of a VseInstance: every view tuple
/// and every base tuple occurring in a witness is interned into a dense
/// `uint32_t` id, and all incidence structure is materialized as CSR
/// (compressed sparse row) arrays. Built once per instance (lazily, see
/// `VseInstance::compiled()`), then shared read-only across threads — every
/// solver hot path becomes an array walk instead of an `unordered_map`
/// lookup chain.
///
/// Internally the plan is split in two: a shared `PlanCore` (everything that
/// does not depend on ΔV) and this object's overlay (`is_deletion`,
/// `deletion_index`, `deletion_dense`, `candidate_bases`). Re-marking ΔV on
/// an instance keeps the core and only rebuilds the overlay — O(‖V‖) instead
/// of re-interning every witness — and `BuildFromCore` can additionally
/// recycle the overlay buffers of a retired plan so batched serving
/// (engine/batch_engine.h) allocates nothing in steady state.
///
/// Id spaces and their orderings are chosen so dense-id iteration reproduces
/// the legacy tuple orderings byte for byte:
///   * view tuples: dense id = prefix-sum over views + tuple index, i.e.
///     ascending (view, tuple) — the order of `deletion_tuples()` and of
///     every per-view scan;
///   * witnesses: per view tuple, in `ViewTuple::witnesses` order;
///   * base tuples: ascending TupleRef — the order of `CandidateTuples()`
///     and of `DeletionSet::Sorted()`.
///
/// Witness member rows keep the RAW atom-order member list including
/// duplicate refs from self-joins: the greedy/exact/local-search tie-break
/// and rng-consumption behavior (and the exact solver's node counts) depend
/// on seeing exactly the legacy sequence. The per-base occurrence rows are
/// deduplicated per witness, matching the legacy DamageTracker.
class CompiledInstance {
 public:
  /// Sentinel for "no dense id" (absent base tuple, non-ΔV tuple).
  static constexpr uint32_t kNpos = 0xFFFFFFFFu;

  /// Compiles `instance` from scratch (core + overlay). The instance must
  /// outlive nothing — the plan copies everything it needs and holds no
  /// pointer back.
  static std::shared_ptr<const CompiledInstance> Build(
      const VseInstance& instance);

  /// Compiles only the ΔV overlay over an existing `core`. `deletions` must
  /// be sorted ascending with every id in range (the VseInstance mark/reset
  /// paths guarantee both). If `recycle` is non-null, has the same tuple and
  /// base dimensions as `core` (same core, or a weight-patched clone of it),
  /// and is the sole remaining owner of its plan, that plan's overlay
  /// buffers are stolen instead of allocated — the recycled plan must no
  /// longer be referenced by any tracker or solver (callers pass a retired
  /// plan the instance alone still holds).
  static std::shared_ptr<const CompiledInstance> BuildFromCore(
      std::shared_ptr<const PlanCore> core,
      const std::vector<ViewTupleId>& deletions,
      std::shared_ptr<const CompiledInstance> recycle);

  /// Splices a new core out of `old_core` after a base-data delta: the
  /// removed tuples/witnesses in `delta` are dropped, appended ones are read
  /// from `instance`'s (already mutated) views, and every derived array
  /// (remapped ids, merged base refs, occurrence and kill rows) is rebuilt
  /// in linear passes — no per-member hashing and no global ref sort, the
  /// two costs that dominate a from-scratch build. The result is
  /// byte-identical to BuildCore over the mutated instance (property-tested
  /// by the mutate-vs-rebuild oracle).
  static std::shared_ptr<const PlanCore> PatchCore(const PlanCore& old_core,
                                                   const VseInstance& instance,
                                                   const CoreDelta& delta);

  /// The shared ΔV-independent core this plan was compiled from.
  const std::shared_ptr<const PlanCore>& core() const { return core_; }

  /// True when this plan's overlay buffers were recycled from a retired
  /// plan (no allocation); false for a fresh overlay. Feeds EngineStats.
  bool overlay_recycled() const { return overlay_recycled_; }

  // --- view tuples -------------------------------------------------------
  uint32_t tuple_count() const { return core_->tuple_count(); }
  uint32_t DenseOf(const ViewTupleId& id) const {
    return core_->view_first[id.view] + static_cast<uint32_t>(id.tuple);
  }
  ViewTupleId IdOf(uint32_t dense) const {
    size_t view = core_->tuple_view[dense];
    return ViewTupleId{view, dense - core_->view_first[view]};
  }
  double weight(uint32_t dense) const { return core_->weight[dense]; }
  bool is_deletion(uint32_t dense) const { return is_deletion_[dense] != 0; }
  /// Position of `dense` in the ΔV list, or kNpos if not marked.
  uint32_t deletion_index(uint32_t dense) const {
    return deletion_index_[dense];
  }
  /// ΔV as dense ids, ascending — mirrors `deletion_tuples()`.
  const std::vector<uint32_t>& deletion_dense() const {
    return deletion_dense_;
  }
  /// ΔV as a bitset over dense tuple ids (bit d set iff is_deletion(d)),
  /// ceil(tuple_count/64) words — the word-parallel twin of `is_deletion`.
  const std::vector<uint64_t>& deletion_words() const {
    return deletion_words_;
  }
  /// Number of ΔV tuples in `base`'s kill row: branchless bit-test
  /// accumulation against the ΔV word overlay. The set-cover reductions use
  /// this for their exact-size count pass before splitting a kill row into
  /// deletion / preserved element lists.
  uint32_t KillRowDeletionCount(uint32_t base) const {
    const uint64_t* del = deletion_words_.data();
    uint32_t count = 0;
    uint32_t end = kill_end(base);
    for (uint32_t slot = kill_begin(base); slot < end; ++slot) {
      uint32_t t = kill_tuple(slot);
      count += static_cast<uint32_t>((del[t >> 6] >> (t & 63)) & 1u);
    }
    return count;
  }

  // --- witnesses (CSR: view tuple -> witnesses) --------------------------
  uint32_t witness_count() const { return core_->witness_count(); }
  uint32_t tuple_witness_begin(uint32_t dense) const {
    return core_->tuple_witness_first[dense];
  }
  uint32_t tuple_witness_end(uint32_t dense) const {
    return core_->tuple_witness_first[dense + 1];
  }
  uint32_t tuple_witness_count(uint32_t dense) const {
    return tuple_witness_end(dense) - tuple_witness_begin(dense);
  }
  uint32_t witness_owner(uint32_t wid) const { return core_->witness_owner[wid]; }

  // --- witness members (CSR: witness -> raw base-id list, atom order) ----
  uint32_t member_begin(uint32_t wid) const {
    return core_->witness_member_first[wid];
  }
  uint32_t member_end(uint32_t wid) const {
    return core_->witness_member_first[wid + 1];
  }
  /// Raw member list entry (duplicates preserved).
  uint32_t member_base(uint32_t slot) const {
    return core_->witness_member_base[slot];
  }

  // --- base tuples (interned refs, ascending TupleRef order) -------------
  uint32_t base_count() const { return core_->base_count(); }
  const TupleRef& base_ref(uint32_t base) const {
    return core_->base_refs[base];
  }
  /// Dense id of `ref`, or kNpos when it occurs in no witness.
  uint32_t FindBase(const TupleRef& ref) const;

  // --- occurrences (CSR: base -> (view tuple, witness) pairs) ------------
  /// Rows are sorted by (tuple, witness) and deduplicated per witness.
  uint32_t occ_begin(uint32_t base) const {
    return core_->base_occ_first[base];
  }
  uint32_t occ_end(uint32_t base) const {
    return core_->base_occ_first[base + 1];
  }
  uint32_t occ_tuple(uint32_t slot) const { return core_->occ_tuple[slot]; }
  uint32_t occ_witness(uint32_t slot) const {
    return core_->occ_witness[slot];
  }

  // --- kills (CSR: base -> killed view tuples, ascending) ----------------
  /// Mirrors `VseInstance::KilledBy` (unique view tuples having the base in
  /// some witness, ascending (view, tuple)).
  uint32_t kill_begin(uint32_t base) const {
    return core_->base_kill_first[base];
  }
  uint32_t kill_end(uint32_t base) const {
    return core_->base_kill_first[base + 1];
  }
  uint32_t kill_tuple(uint32_t slot) const { return core_->kill_tuple[slot]; }
  /// Witness-incidence mask of kill entry `slot` within its killed tuple
  /// (bit j ⇔ witness tuple_witness_begin(t)+j contains the base). Only
  /// valid when `bits_supported()`.
  uint64_t kill_witness_mask(uint32_t slot) const {
    return core_->kill_witness_mask[slot];
  }

  // --- packed member-hit bit layout --------------------------------------
  /// Absolute bit range owned by witness `wid`: one bit per unique member.
  uint32_t witness_bit_begin(uint32_t wid) const {
    return core_->witness_bit_first[wid];
  }
  uint32_t witness_bit_end(uint32_t wid) const {
    return core_->witness_bit_first[wid + 1];
  }
  /// Absolute hit bit of occurrence `slot` (ascending within each occ row).
  uint32_t occ_hit_bit(uint32_t slot) const {
    return core_->occ_hit_bit[slot];
  }
  /// Total size of the packed member-hit bit space (one bit per unique
  /// member of each witness).
  uint32_t hit_bit_count() const { return core_->witness_bit_first.back(); }
  /// True when every tuple's witness fan-in fits one 64-bit word, i.e. the
  /// kill masks were emitted and the bit-parallel tracker path may bind.
  bool bits_supported() const { return core_->bits_supported; }
  uint32_t max_witnesses_per_tuple() const {
    return core_->max_witnesses_per_tuple;
  }
  /// Narrowest raw member row over all witnesses — a static lower bound on
  /// any branch witness's member count (exact solver short-circuit).
  uint32_t min_witness_raw_members() const {
    return core_->min_witness_raw_members;
  }

  // --- deletion candidates -----------------------------------------------
  /// Base ids occurring in some witness of some ΔV tuple, ascending —
  /// mirrors `CandidateTuples()`.
  const std::vector<uint32_t>& candidate_bases() const {
    return candidate_bases_;
  }

 private:
  CompiledInstance() = default;

  std::shared_ptr<const PlanCore> core_;
  bool overlay_recycled_ = false;

  // ΔV overlay — the only arrays that change between plans sharing a core.
  std::vector<uint8_t> is_deletion_;      // per tuple
  std::vector<uint64_t> deletion_words_;  // same predicate, 1 bit per tuple
  std::vector<uint32_t> deletion_index_;  // per tuple: ΔV position or kNpos
  std::vector<uint32_t> deletion_dense_;
  std::vector<uint32_t> candidate_bases_;
  // Per-base mark scratch for the candidate sweep. Invariant between builds:
  // all zero (BuildFromCore clears exactly the previous candidate set), so a
  // recycled overlay rebuild touches O(ΔV incidence), not O(bases).
  std::vector<uint8_t> touched_;
};

}  // namespace delprop

#endif  // DELPROP_PLAN_COMPILED_INSTANCE_H_
