#ifndef DELPROP_PLAN_COMPILED_INSTANCE_H_
#define DELPROP_PLAN_COMPILED_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "dp/vse_instance.h"
#include "relational/tuple_ref.h"

namespace delprop {

/// The dense, immutable execution plan of a VseInstance: every view tuple
/// and every base tuple occurring in a witness is interned into a dense
/// `uint32_t` id, and all incidence structure is materialized as CSR
/// (compressed sparse row) arrays. Built once per instance (lazily, see
/// `VseInstance::compiled()`), then shared read-only across threads — every
/// solver hot path becomes an array walk instead of an `unordered_map`
/// lookup chain.
///
/// Id spaces and their orderings are chosen so dense-id iteration reproduces
/// the legacy tuple orderings byte for byte:
///   * view tuples: dense id = prefix-sum over views + tuple index, i.e.
///     ascending (view, tuple) — the order of `deletion_tuples()` and of
///     every per-view scan;
///   * witnesses: per view tuple, in `ViewTuple::witnesses` order;
///   * base tuples: ascending TupleRef — the order of `CandidateTuples()`
///     and of `DeletionSet::Sorted()`.
///
/// Witness member rows keep the RAW atom-order member list including
/// duplicate refs from self-joins: the greedy/exact/local-search tie-break
/// and rng-consumption behavior (and the exact solver's node counts) depend
/// on seeing exactly the legacy sequence. The per-base occurrence rows are
/// deduplicated per witness, matching the legacy DamageTracker.
class CompiledInstance {
 public:
  /// Sentinel for "no dense id" (absent base tuple, non-ΔV tuple).
  static constexpr uint32_t kNpos = 0xFFFFFFFFu;

  /// Compiles `instance`. The instance must outlive nothing — the plan
  /// copies everything it needs and holds no pointer back.
  static std::shared_ptr<const CompiledInstance> Build(
      const VseInstance& instance);

  // --- view tuples -------------------------------------------------------
  uint32_t tuple_count() const {
    return static_cast<uint32_t>(weight_.size());
  }
  uint32_t DenseOf(const ViewTupleId& id) const {
    return view_first_[id.view] + static_cast<uint32_t>(id.tuple);
  }
  ViewTupleId IdOf(uint32_t dense) const {
    size_t view = tuple_view_[dense];
    return ViewTupleId{view, dense - view_first_[view]};
  }
  double weight(uint32_t dense) const { return weight_[dense]; }
  bool is_deletion(uint32_t dense) const { return is_deletion_[dense] != 0; }
  /// Position of `dense` in the ΔV list, or kNpos if not marked.
  uint32_t deletion_index(uint32_t dense) const {
    return deletion_index_[dense];
  }
  /// ΔV as dense ids, ascending — mirrors `deletion_tuples()`.
  const std::vector<uint32_t>& deletion_dense() const {
    return deletion_dense_;
  }

  // --- witnesses (CSR: view tuple -> witnesses) --------------------------
  uint32_t witness_count() const {
    return static_cast<uint32_t>(witness_owner_.size());
  }
  uint32_t tuple_witness_begin(uint32_t dense) const {
    return tuple_witness_first_[dense];
  }
  uint32_t tuple_witness_end(uint32_t dense) const {
    return tuple_witness_first_[dense + 1];
  }
  uint32_t tuple_witness_count(uint32_t dense) const {
    return tuple_witness_end(dense) - tuple_witness_begin(dense);
  }
  uint32_t witness_owner(uint32_t wid) const { return witness_owner_[wid]; }

  // --- witness members (CSR: witness -> raw base-id list, atom order) ----
  uint32_t member_begin(uint32_t wid) const {
    return witness_member_first_[wid];
  }
  uint32_t member_end(uint32_t wid) const {
    return witness_member_first_[wid + 1];
  }
  /// Raw member list entry (duplicates preserved).
  uint32_t member_base(uint32_t slot) const {
    return witness_member_base_[slot];
  }

  // --- base tuples (interned refs, ascending TupleRef order) -------------
  uint32_t base_count() const {
    return static_cast<uint32_t>(base_refs_.size());
  }
  const TupleRef& base_ref(uint32_t base) const { return base_refs_[base]; }
  /// Dense id of `ref`, or kNpos when it occurs in no witness.
  uint32_t FindBase(const TupleRef& ref) const;

  // --- occurrences (CSR: base -> (view tuple, witness) pairs) ------------
  /// Rows are sorted by (tuple, witness) and deduplicated per witness.
  uint32_t occ_begin(uint32_t base) const { return base_occ_first_[base]; }
  uint32_t occ_end(uint32_t base) const { return base_occ_first_[base + 1]; }
  uint32_t occ_tuple(uint32_t slot) const { return occ_tuple_[slot]; }
  uint32_t occ_witness(uint32_t slot) const { return occ_witness_[slot]; }

  // --- kills (CSR: base -> killed view tuples, ascending) ----------------
  /// Mirrors `VseInstance::KilledBy` (unique view tuples having the base in
  /// some witness, ascending (view, tuple)).
  uint32_t kill_begin(uint32_t base) const { return base_kill_first_[base]; }
  uint32_t kill_end(uint32_t base) const { return base_kill_first_[base + 1]; }
  uint32_t kill_tuple(uint32_t slot) const { return kill_tuple_[slot]; }

  // --- deletion candidates -----------------------------------------------
  /// Base ids occurring in some witness of some ΔV tuple, ascending —
  /// mirrors `CandidateTuples()`.
  const std::vector<uint32_t>& candidate_bases() const {
    return candidate_bases_;
  }

 private:
  CompiledInstance() = default;

  std::vector<uint32_t> view_first_;   // per view: first dense tuple id
  std::vector<uint32_t> tuple_view_;   // per tuple: owning view
  std::vector<double> weight_;         // per tuple
  std::vector<uint8_t> is_deletion_;   // per tuple
  std::vector<uint32_t> deletion_index_;  // per tuple: ΔV position or kNpos
  std::vector<uint32_t> deletion_dense_;

  std::vector<uint32_t> tuple_witness_first_;  // size tuple_count + 1
  std::vector<uint32_t> witness_owner_;        // per witness

  std::vector<uint32_t> witness_member_first_;  // size witness_count + 1
  std::vector<uint32_t> witness_member_base_;   // raw, atom order

  std::vector<TupleRef> base_refs_;  // ascending

  std::vector<uint32_t> base_occ_first_;  // size base_count + 1
  std::vector<uint32_t> occ_tuple_;
  std::vector<uint32_t> occ_witness_;

  std::vector<uint32_t> base_kill_first_;  // size base_count + 1
  std::vector<uint32_t> kill_tuple_;

  std::vector<uint32_t> candidate_bases_;
};

}  // namespace delprop

#endif  // DELPROP_PLAN_COMPILED_INSTANCE_H_
