#include "plan/compiled_instance.h"

#include <algorithm>

#include "query/view.h"

namespace delprop {

uint32_t CompiledInstance::FindBase(const TupleRef& ref) const {
  const std::vector<TupleRef>& refs = core_->base_refs;
  auto it = std::lower_bound(refs.begin(), refs.end(), ref);
  if (it == refs.end() || !(*it == ref)) return kNpos;
  return static_cast<uint32_t>(it - refs.begin());
}

namespace {

std::shared_ptr<const PlanCore> BuildCore(const VseInstance& instance) {
  auto core = std::make_shared<PlanCore>();

  // View tuples: dense ids in ascending (view, tuple) order.
  size_t view_count = instance.view_count();
  core->view_first.resize(view_count + 1);
  uint32_t dense = 0;
  for (size_t v = 0; v < view_count; ++v) {
    core->view_first[v] = dense;
    dense += static_cast<uint32_t>(instance.view(v).size());
  }
  core->view_first[view_count] = dense;
  uint32_t tuple_count = dense;
  core->tuple_view.resize(tuple_count);
  core->weight.resize(tuple_count);
  for (size_t v = 0; v < view_count; ++v) {
    const View& view = instance.view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      uint32_t d = core->view_first[v] + static_cast<uint32_t>(t);
      core->tuple_view[d] = static_cast<uint32_t>(v);
      core->weight[d] = instance.weight(ViewTupleId{v, t});
    }
  }

  // Witness CSR + raw member refs; intern base refs in sorted order.
  core->tuple_witness_first.resize(tuple_count + 1);
  std::vector<TupleRef> all_refs;
  {
    uint32_t wid = 0;
    size_t member_total = 0;
    for (size_t v = 0; v < view_count; ++v) {
      const View& view = instance.view(v);
      for (size_t t = 0; t < view.size(); ++t) {
        uint32_t d = core->view_first[v] + static_cast<uint32_t>(t);
        core->tuple_witness_first[d] = wid;
        for (const Witness& witness : view.tuple(t).witnesses) {
          ++wid;
          member_total += witness.size();
        }
      }
    }
    core->tuple_witness_first[tuple_count] = wid;
    core->witness_owner.resize(wid);
    core->witness_member_first.resize(static_cast<size_t>(wid) + 1);
    core->witness_member_base.reserve(member_total);
    all_refs.reserve(member_total);
  }
  for (size_t v = 0; v < view_count; ++v) {
    const View& view = instance.view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      for (const Witness& witness : view.tuple(t).witnesses) {
        for (const TupleRef& ref : witness) all_refs.push_back(ref);
      }
    }
  }
  std::sort(all_refs.begin(), all_refs.end());
  all_refs.erase(std::unique(all_refs.begin(), all_refs.end()),
                 all_refs.end());
  core->base_refs = std::move(all_refs);
  uint32_t base_count = core->base_count();
  auto find_base = [core](const TupleRef& ref) {
    auto it = std::lower_bound(core->base_refs.begin(), core->base_refs.end(),
                               ref);
    return static_cast<uint32_t>(it - core->base_refs.begin());
  };

  // Member rows (raw, atom order) and occurrence counting in one sweep.
  core->base_occ_first.assign(static_cast<size_t>(base_count) + 1, 0);
  std::vector<uint32_t> scratch;  // per-witness unique base ids
  {
    uint32_t wid = 0;
    uint32_t member_slot = 0;
    for (size_t v = 0; v < view_count; ++v) {
      const View& view = instance.view(v);
      for (size_t t = 0; t < view.size(); ++t) {
        uint32_t d = core->view_first[v] + static_cast<uint32_t>(t);
        for (const Witness& witness : view.tuple(t).witnesses) {
          core->witness_owner[wid] = d;
          core->witness_member_first[wid] = member_slot;
          scratch.clear();
          for (const TupleRef& ref : witness) {
            uint32_t base = find_base(ref);
            core->witness_member_base.push_back(base);
            ++member_slot;
            scratch.push_back(base);
          }
          std::sort(scratch.begin(), scratch.end());
          scratch.erase(std::unique(scratch.begin(), scratch.end()),
                        scratch.end());
          for (uint32_t base : scratch) ++core->base_occ_first[base + 1];
          ++wid;
        }
      }
    }
    core->witness_member_first[wid] = member_slot;
  }
  for (uint32_t b = 0; b < base_count; ++b) {
    core->base_occ_first[b + 1] += core->base_occ_first[b];
  }
  size_t occ_total = core->base_occ_first[base_count];
  core->occ_tuple.resize(occ_total);
  core->occ_witness.resize(occ_total);
  {
    // Fill pass: appending in (view, tuple, witness) order leaves every
    // per-base row sorted by (tuple, witness) — the invariant MarginalDamage
    // relies on to walk runs.
    std::vector<uint32_t> cursor(core->base_occ_first.begin(),
                                 core->base_occ_first.end() - 1);
    for (uint32_t wid = 0; wid < core->witness_count(); ++wid) {
      uint32_t owner = core->witness_owner[wid];
      scratch.assign(core->witness_member_base.begin() +
                         core->witness_member_first[wid],
                     core->witness_member_base.begin() +
                         core->witness_member_first[wid + 1]);
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
      for (uint32_t base : scratch) {
        uint32_t slot = cursor[base]++;
        core->occ_tuple[slot] = owner;
        core->occ_witness[slot] = wid;
      }
    }
  }

  // Kill rows: unique view tuples per base, in row order (ascending) —
  // byte-compatible with the legacy kill_map_ (first-witness dedup, (view,
  // tuple) iteration order).
  core->base_kill_first.assign(static_cast<size_t>(base_count) + 1, 0);
  for (uint32_t b = 0; b < base_count; ++b) {
    uint32_t kills = 0;
    uint32_t prev = CompiledInstance::kNpos;
    for (uint32_t slot = core->base_occ_first[b];
         slot < core->base_occ_first[b + 1]; ++slot) {
      if (core->occ_tuple[slot] != prev) {
        prev = core->occ_tuple[slot];
        ++kills;
      }
    }
    core->base_kill_first[b + 1] = kills;
  }
  for (uint32_t b = 0; b < base_count; ++b) {
    core->base_kill_first[b + 1] += core->base_kill_first[b];
  }
  core->kill_tuple.resize(core->base_kill_first[base_count]);
  for (uint32_t b = 0; b < base_count; ++b) {
    uint32_t out = core->base_kill_first[b];
    uint32_t prev = CompiledInstance::kNpos;
    for (uint32_t slot = core->base_occ_first[b];
         slot < core->base_occ_first[b + 1]; ++slot) {
      if (core->occ_tuple[slot] != prev) {
        prev = core->occ_tuple[slot];
        core->kill_tuple[out++] = prev;
      }
    }
  }
  return core;
}

}  // namespace

std::shared_ptr<const CompiledInstance> CompiledInstance::Build(
    const VseInstance& instance) {
  return BuildFromCore(BuildCore(instance), instance.deletion_tuples(),
                       nullptr);
}

std::shared_ptr<const CompiledInstance> CompiledInstance::BuildFromCore(
    std::shared_ptr<const PlanCore> core,
    const std::vector<ViewTupleId>& deletions,
    std::shared_ptr<const CompiledInstance> recycle) {
  auto plan = std::shared_ptr<CompiledInstance>(new CompiledInstance());
  uint32_t tuple_count = core->tuple_count();
  uint32_t base_count = core->base_count();

  if (recycle != nullptr && recycle->core_ == core &&
      recycle.use_count() == 1) {
    // Sole owner of a retired plan over the same core: steal its overlay
    // buffers. Clearing by the retired ΔV/candidate lists (instead of a full
    // fill) keeps the reset O(previous ΔV incidence), and re-establishes the
    // all-zero `touched_` invariant. The const_cast is sound: we hold the
    // only reference, so no reader can observe the mutation.
    CompiledInstance& prev = const_cast<CompiledInstance&>(*recycle);
    for (uint32_t d : prev.deletion_dense_) {
      prev.is_deletion_[d] = 0;
      prev.deletion_index_[d] = kNpos;
    }
    for (uint32_t b : prev.candidate_bases_) prev.touched_[b] = 0;
    plan->is_deletion_ = std::move(prev.is_deletion_);
    plan->deletion_index_ = std::move(prev.deletion_index_);
    plan->touched_ = std::move(prev.touched_);
    plan->deletion_dense_ = std::move(prev.deletion_dense_);
    plan->deletion_dense_.clear();
    plan->candidate_bases_ = std::move(prev.candidate_bases_);
    plan->candidate_bases_.clear();
    plan->overlay_recycled_ = true;
  } else {
    plan->is_deletion_.assign(tuple_count, 0);
    plan->deletion_index_.assign(tuple_count, kNpos);
    plan->touched_.assign(base_count, 0);
    plan->deletion_dense_.reserve(deletions.size());
  }
  recycle.reset();
  plan->core_ = std::move(core);

  for (size_t i = 0; i < deletions.size(); ++i) {
    uint32_t d = plan->DenseOf(deletions[i]);
    plan->is_deletion_[d] = 1;
    plan->deletion_index_[d] = static_cast<uint32_t>(i);
    plan->deletion_dense_.push_back(d);
  }

  // Candidates: bases in witnesses of ΔV tuples, ascending. Collect-then-sort
  // (instead of the full 0..base_count scan) so a recycled rebuild stays
  // proportional to the ΔV neighborhood; the sorted result is identical.
  const PlanCore& c = *plan->core_;
  for (uint32_t d : plan->deletion_dense_) {
    for (uint32_t w = c.tuple_witness_first[d];
         w < c.tuple_witness_first[d + 1]; ++w) {
      for (uint32_t slot = c.witness_member_first[w];
           slot < c.witness_member_first[w + 1]; ++slot) {
        uint32_t base = c.witness_member_base[slot];
        if (!plan->touched_[base]) {
          plan->touched_[base] = 1;
          plan->candidate_bases_.push_back(base);
        }
      }
    }
  }
  std::sort(plan->candidate_bases_.begin(), plan->candidate_bases_.end());
  return plan;
}

std::shared_ptr<const CompiledInstance> VseInstance::compiled() const {
  std::lock_guard<std::mutex> lock(caches_->mu);
  if (caches_->compiled == nullptr) {
    if (caches_->plan_core != nullptr) {
      // ΔV-only invalidation kept the core; rebuild just the overlay,
      // recycling the retired plan's buffers when we are its sole owner.
      ++caches_->plan_stats.core_rebinds;
      caches_->compiled = CompiledInstance::BuildFromCore(
          caches_->plan_core, deletion_tuples_, std::move(caches_->retired));
      caches_->retired.reset();
      if (caches_->compiled->overlay_recycled()) {
        ++caches_->plan_stats.overlay_recycles;
      }
    } else {
      ++caches_->plan_stats.full_builds;
      caches_->compiled = CompiledInstance::Build(*this);
      caches_->plan_core = caches_->compiled->core();
    }
  }
  return caches_->compiled;
}

}  // namespace delprop
