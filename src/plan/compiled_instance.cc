#include "plan/compiled_instance.h"

#include <algorithm>

#include "query/view.h"

namespace delprop {

uint32_t CompiledInstance::FindBase(const TupleRef& ref) const {
  auto it = std::lower_bound(base_refs_.begin(), base_refs_.end(), ref);
  if (it == base_refs_.end() || !(*it == ref)) return kNpos;
  return static_cast<uint32_t>(it - base_refs_.begin());
}

std::shared_ptr<const CompiledInstance> CompiledInstance::Build(
    const VseInstance& instance) {
  auto plan = std::shared_ptr<CompiledInstance>(new CompiledInstance());

  // View tuples: dense ids in ascending (view, tuple) order.
  size_t view_count = instance.view_count();
  plan->view_first_.resize(view_count + 1);
  uint32_t dense = 0;
  for (size_t v = 0; v < view_count; ++v) {
    plan->view_first_[v] = dense;
    dense += static_cast<uint32_t>(instance.view(v).size());
  }
  plan->view_first_[view_count] = dense;
  uint32_t tuple_count = dense;
  plan->tuple_view_.resize(tuple_count);
  plan->weight_.resize(tuple_count);
  plan->is_deletion_.assign(tuple_count, 0);
  plan->deletion_index_.assign(tuple_count, kNpos);
  for (size_t v = 0; v < view_count; ++v) {
    const View& view = instance.view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      uint32_t d = plan->view_first_[v] + static_cast<uint32_t>(t);
      plan->tuple_view_[d] = static_cast<uint32_t>(v);
      plan->weight_[d] = instance.weight(ViewTupleId{v, t});
    }
  }
  const std::vector<ViewTupleId>& deletions = instance.deletion_tuples();
  plan->deletion_dense_.reserve(deletions.size());
  for (size_t i = 0; i < deletions.size(); ++i) {
    uint32_t d = plan->DenseOf(deletions[i]);
    plan->is_deletion_[d] = 1;
    plan->deletion_index_[d] = static_cast<uint32_t>(i);
    plan->deletion_dense_.push_back(d);
  }

  // Witness CSR + raw member refs; intern base refs in sorted order.
  plan->tuple_witness_first_.resize(tuple_count + 1);
  std::vector<TupleRef> all_refs;
  {
    uint32_t wid = 0;
    size_t member_total = 0;
    for (size_t v = 0; v < view_count; ++v) {
      const View& view = instance.view(v);
      for (size_t t = 0; t < view.size(); ++t) {
        uint32_t d = plan->view_first_[v] + static_cast<uint32_t>(t);
        plan->tuple_witness_first_[d] = wid;
        for (const Witness& witness : view.tuple(t).witnesses) {
          ++wid;
          member_total += witness.size();
        }
      }
    }
    plan->tuple_witness_first_[tuple_count] = wid;
    plan->witness_owner_.resize(wid);
    plan->witness_member_first_.resize(static_cast<size_t>(wid) + 1);
    plan->witness_member_base_.reserve(member_total);
    all_refs.reserve(member_total);
  }
  for (size_t v = 0; v < view_count; ++v) {
    const View& view = instance.view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      for (const Witness& witness : view.tuple(t).witnesses) {
        for (const TupleRef& ref : witness) all_refs.push_back(ref);
      }
    }
  }
  std::sort(all_refs.begin(), all_refs.end());
  all_refs.erase(std::unique(all_refs.begin(), all_refs.end()),
                 all_refs.end());
  plan->base_refs_ = std::move(all_refs);
  uint32_t base_count = static_cast<uint32_t>(plan->base_refs_.size());

  // Member rows (raw, atom order) and occurrence counting in one sweep.
  plan->base_occ_first_.assign(static_cast<size_t>(base_count) + 1, 0);
  std::vector<uint32_t> scratch;  // per-witness unique base ids
  {
    uint32_t wid = 0;
    uint32_t member_slot = 0;
    for (size_t v = 0; v < view_count; ++v) {
      const View& view = instance.view(v);
      for (size_t t = 0; t < view.size(); ++t) {
        uint32_t d = plan->view_first_[v] + static_cast<uint32_t>(t);
        for (const Witness& witness : view.tuple(t).witnesses) {
          plan->witness_owner_[wid] = d;
          plan->witness_member_first_[wid] = member_slot;
          scratch.clear();
          for (const TupleRef& ref : witness) {
            uint32_t base = plan->FindBase(ref);
            plan->witness_member_base_.push_back(base);
            ++member_slot;
            scratch.push_back(base);
          }
          std::sort(scratch.begin(), scratch.end());
          scratch.erase(std::unique(scratch.begin(), scratch.end()),
                        scratch.end());
          for (uint32_t base : scratch) ++plan->base_occ_first_[base + 1];
          ++wid;
        }
      }
    }
    plan->witness_member_first_[wid] = member_slot;
  }
  for (uint32_t b = 0; b < base_count; ++b) {
    plan->base_occ_first_[b + 1] += plan->base_occ_first_[b];
  }
  size_t occ_total = plan->base_occ_first_[base_count];
  plan->occ_tuple_.resize(occ_total);
  plan->occ_witness_.resize(occ_total);
  {
    // Fill pass: appending in (view, tuple, witness) order leaves every
    // per-base row sorted by (tuple, witness) — the invariant MarginalDamage
    // relies on to walk runs.
    std::vector<uint32_t> cursor(plan->base_occ_first_.begin(),
                                 plan->base_occ_first_.end() - 1);
    for (uint32_t wid = 0; wid < plan->witness_count(); ++wid) {
      uint32_t owner = plan->witness_owner_[wid];
      scratch.assign(plan->witness_member_base_.begin() +
                         plan->witness_member_first_[wid],
                     plan->witness_member_base_.begin() +
                         plan->witness_member_first_[wid + 1]);
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
      for (uint32_t base : scratch) {
        uint32_t slot = cursor[base]++;
        plan->occ_tuple_[slot] = owner;
        plan->occ_witness_[slot] = wid;
      }
    }
  }

  // Kill rows: unique view tuples per base, in row order (ascending) —
  // byte-compatible with the legacy kill_map_ (first-witness dedup, (view,
  // tuple) iteration order).
  plan->base_kill_first_.assign(static_cast<size_t>(base_count) + 1, 0);
  for (uint32_t b = 0; b < base_count; ++b) {
    uint32_t kills = 0;
    uint32_t prev = kNpos;
    for (uint32_t slot = plan->base_occ_first_[b];
         slot < plan->base_occ_first_[b + 1]; ++slot) {
      if (plan->occ_tuple_[slot] != prev) {
        prev = plan->occ_tuple_[slot];
        ++kills;
      }
    }
    plan->base_kill_first_[b + 1] = kills;
  }
  for (uint32_t b = 0; b < base_count; ++b) {
    plan->base_kill_first_[b + 1] += plan->base_kill_first_[b];
  }
  plan->kill_tuple_.resize(plan->base_kill_first_[base_count]);
  for (uint32_t b = 0; b < base_count; ++b) {
    uint32_t out = plan->base_kill_first_[b];
    uint32_t prev = kNpos;
    for (uint32_t slot = plan->base_occ_first_[b];
         slot < plan->base_occ_first_[b + 1]; ++slot) {
      if (plan->occ_tuple_[slot] != prev) {
        prev = plan->occ_tuple_[slot];
        plan->kill_tuple_[out++] = prev;
      }
    }
  }

  // Candidates: bases in witnesses of ΔV tuples, ascending.
  {
    std::vector<uint8_t> touched(base_count, 0);
    for (uint32_t d : plan->deletion_dense_) {
      for (uint32_t w = plan->tuple_witness_first_[d];
           w < plan->tuple_witness_first_[d + 1]; ++w) {
        for (uint32_t slot = plan->witness_member_first_[w];
             slot < plan->witness_member_first_[w + 1]; ++slot) {
          touched[plan->witness_member_base_[slot]] = 1;
        }
      }
    }
    for (uint32_t b = 0; b < base_count; ++b) {
      if (touched[b]) plan->candidate_bases_.push_back(b);
    }
  }
  return plan;
}

std::shared_ptr<const CompiledInstance> VseInstance::compiled() const {
  std::lock_guard<std::mutex> lock(caches_->mu);
  if (caches_->compiled == nullptr) {
    caches_->compiled = CompiledInstance::Build(*this);
  }
  return caches_->compiled;
}

}  // namespace delprop
