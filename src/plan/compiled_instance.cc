#include "plan/compiled_instance.h"

#include <algorithm>

#include "query/view.h"

namespace delprop {

uint32_t CompiledInstance::FindBase(const TupleRef& ref) const {
  const std::vector<TupleRef>& refs = core_->base_refs;
  auto it = std::lower_bound(refs.begin(), refs.end(), ref);
  if (it == refs.end() || !(*it == ref)) return kNpos;
  return static_cast<uint32_t>(it - refs.begin());
}

namespace {

/// Shared tail of BuildCore and PatchCore: derives the occurrence and kill
/// CSR arrays from the witness member rows. Appending in ascending wid order
/// leaves every per-base occurrence row sorted by (tuple, witness) — the
/// invariant MarginalDamage relies on to walk runs — and the kill rows are
/// its per-base run-dedup.
void FinishCore(PlanCore* core) {
  uint32_t base_count = core->base_count();
  uint32_t witness_count = core->witness_count();
  core->base_occ_first.assign(static_cast<size_t>(base_count) + 1, 0);
  // Deduped member lists, flattened: computed once in the counting pass and
  // replayed by the fill pass (this function runs on every core patch, so
  // the per-witness sorts are worth paying only once). A witness whose
  // members are already strictly ascending — every schema without
  // self-joins — skips the sort entirely.
  std::vector<uint32_t> dedup;
  dedup.reserve(core->witness_member_base.size());
  std::vector<uint32_t> dedup_first(static_cast<size_t>(witness_count) + 1,
                                    0);
  std::vector<uint32_t> scratch;  // per-witness unique base ids
  for (uint32_t wid = 0; wid < witness_count; ++wid) {
    dedup_first[wid] = static_cast<uint32_t>(dedup.size());
    uint32_t first = core->witness_member_first[wid];
    uint32_t last = core->witness_member_first[wid + 1];
    bool ascending = true;
    for (uint32_t slot = first; ascending && slot + 1 < last; ++slot) {
      ascending = core->witness_member_base[slot] <
                  core->witness_member_base[slot + 1];
    }
    if (ascending) {
      dedup.insert(dedup.end(), core->witness_member_base.begin() + first,
                   core->witness_member_base.begin() + last);
    } else {
      scratch.assign(core->witness_member_base.begin() + first,
                     core->witness_member_base.begin() + last);
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
      dedup.insert(dedup.end(), scratch.begin(), scratch.end());
    }
    for (size_t i = dedup_first[wid]; i < dedup.size(); ++i) {
      ++core->base_occ_first[dedup[i] + 1];
    }
  }
  dedup_first[witness_count] = static_cast<uint32_t>(dedup.size());
  for (uint32_t b = 0; b < base_count; ++b) {
    core->base_occ_first[b + 1] += core->base_occ_first[b];
  }
  size_t occ_total = core->base_occ_first[base_count];
  core->occ_tuple.resize(occ_total);
  core->occ_witness.resize(occ_total);
  core->occ_hit_bit.resize(occ_total);
  {
    std::vector<uint32_t> cursor(core->base_occ_first.begin(),
                                 core->base_occ_first.end() - 1);
    for (uint32_t wid = 0; wid < witness_count; ++wid) {
      uint32_t owner = core->witness_owner[wid];
      for (uint32_t i = dedup_first[wid]; i < dedup_first[wid + 1]; ++i) {
        uint32_t slot = cursor[dedup[i]]++;
        core->occ_tuple[slot] = owner;
        core->occ_witness[slot] = wid;
        // Hit bit = position in the flattened dedup list: witness wid owns
        // bits [dedup_first[wid], dedup_first[wid+1]), one per unique
        // member. Witness ids ascend along every occ row (rows are sorted
        // by (tuple, witness) and wid ranges follow tuple order), so hit
        // bits ascend too — the kernels' word-merge relies on that.
        core->occ_hit_bit[slot] = i;
      }
    }
  }
  core->witness_bit_first = std::move(dedup_first);

  // Row-width statistics + the bit-support verdict. The packed kill masks
  // index a tuple's witnesses by their offset from tuple_witness_first, so
  // the bit-parallel path requires every fan-in to fit one 64-bit word.
  uint32_t tuple_count = core->tuple_count();
  core->max_witnesses_per_tuple = 0;
  for (uint32_t t = 0; t < tuple_count; ++t) {
    core->max_witnesses_per_tuple =
        std::max(core->max_witnesses_per_tuple,
                 core->tuple_witness_first[t + 1] - core->tuple_witness_first[t]);
  }
  core->max_witness_members = 0;
  core->min_witness_raw_members =
      witness_count == 0 ? 0 : 0xFFFFFFFFu;
  for (uint32_t wid = 0; wid < witness_count; ++wid) {
    core->max_witness_members =
        std::max(core->max_witness_members, core->witness_bit_first[wid + 1] -
                                                core->witness_bit_first[wid]);
    core->min_witness_raw_members =
        std::min(core->min_witness_raw_members,
                 core->witness_member_first[wid + 1] -
                     core->witness_member_first[wid]);
  }
  core->bits_supported = core->max_witnesses_per_tuple <= 64;

  // Kill rows: unique view tuples per base, in row order (ascending) —
  // byte-compatible with the legacy kill_map_ (first-witness dedup, (view,
  // tuple) iteration order).
  core->base_kill_first.assign(static_cast<size_t>(base_count) + 1, 0);
  for (uint32_t b = 0; b < base_count; ++b) {
    uint32_t kills = 0;
    uint32_t prev = CompiledInstance::kNpos;
    for (uint32_t slot = core->base_occ_first[b];
         slot < core->base_occ_first[b + 1]; ++slot) {
      if (core->occ_tuple[slot] != prev) {
        prev = core->occ_tuple[slot];
        ++kills;
      }
    }
    core->base_kill_first[b + 1] = kills;
  }
  for (uint32_t b = 0; b < base_count; ++b) {
    core->base_kill_first[b + 1] += core->base_kill_first[b];
  }
  core->kill_tuple.resize(core->base_kill_first[base_count]);
  core->kill_witness_mask.assign(
      core->bits_supported ? core->kill_tuple.size() : 0, 0);
  for (uint32_t b = 0; b < base_count; ++b) {
    uint32_t out = core->base_kill_first[b];
    uint32_t prev = CompiledInstance::kNpos;
    for (uint32_t slot = core->base_occ_first[b];
         slot < core->base_occ_first[b + 1]; ++slot) {
      uint32_t t = core->occ_tuple[slot];
      if (t != prev) {
        prev = t;
        core->kill_tuple[out++] = t;
      }
      if (core->bits_supported) {
        core->kill_witness_mask[out - 1] |=
            1ull << (core->occ_witness[slot] - core->tuple_witness_first[t]);
      }
    }
  }
}

std::shared_ptr<const PlanCore> BuildCore(const VseInstance& instance) {
  auto core = std::make_shared<PlanCore>();

  // View tuples: dense ids in ascending (view, tuple) order.
  size_t view_count = instance.view_count();
  core->view_first.resize(view_count + 1);
  uint32_t dense = 0;
  for (size_t v = 0; v < view_count; ++v) {
    core->view_first[v] = dense;
    dense += static_cast<uint32_t>(instance.view(v).size());
  }
  core->view_first[view_count] = dense;
  uint32_t tuple_count = dense;
  core->tuple_view.resize(tuple_count);
  core->weight.resize(tuple_count);
  for (size_t v = 0; v < view_count; ++v) {
    const View& view = instance.view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      uint32_t d = core->view_first[v] + static_cast<uint32_t>(t);
      core->tuple_view[d] = static_cast<uint32_t>(v);
      core->weight[d] = instance.weight(ViewTupleId{v, t});
    }
  }

  // Witness CSR + raw member refs; intern base refs in sorted order.
  core->tuple_witness_first.resize(tuple_count + 1);
  std::vector<TupleRef> all_refs;
  {
    uint32_t wid = 0;
    size_t member_total = 0;
    for (size_t v = 0; v < view_count; ++v) {
      const View& view = instance.view(v);
      for (size_t t = 0; t < view.size(); ++t) {
        uint32_t d = core->view_first[v] + static_cast<uint32_t>(t);
        core->tuple_witness_first[d] = wid;
        for (const Witness& witness : view.tuple(t).witnesses) {
          ++wid;
          member_total += witness.size();
        }
      }
    }
    core->tuple_witness_first[tuple_count] = wid;
    core->witness_owner.resize(wid);
    core->witness_member_first.resize(static_cast<size_t>(wid) + 1);
    core->witness_member_base.reserve(member_total);
    all_refs.reserve(member_total);
  }
  for (size_t v = 0; v < view_count; ++v) {
    const View& view = instance.view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      for (const Witness& witness : view.tuple(t).witnesses) {
        for (const TupleRef& ref : witness) all_refs.push_back(ref);
      }
    }
  }
  std::sort(all_refs.begin(), all_refs.end());
  all_refs.erase(std::unique(all_refs.begin(), all_refs.end()),
                 all_refs.end());
  core->base_refs = std::move(all_refs);
  auto find_base = [core](const TupleRef& ref) {
    auto it = std::lower_bound(core->base_refs.begin(), core->base_refs.end(),
                               ref);
    return static_cast<uint32_t>(it - core->base_refs.begin());
  };

  // Member rows (raw, atom order).
  {
    uint32_t wid = 0;
    uint32_t member_slot = 0;
    for (size_t v = 0; v < view_count; ++v) {
      const View& view = instance.view(v);
      for (size_t t = 0; t < view.size(); ++t) {
        uint32_t d = core->view_first[v] + static_cast<uint32_t>(t);
        for (const Witness& witness : view.tuple(t).witnesses) {
          core->witness_owner[wid] = d;
          core->witness_member_first[wid] = member_slot;
          for (const TupleRef& ref : witness) {
            core->witness_member_base.push_back(find_base(ref));
            ++member_slot;
          }
          ++wid;
        }
      }
    }
    core->witness_member_first[wid] = member_slot;
  }
  FinishCore(core.get());
  return core;
}

}  // namespace

std::shared_ptr<const PlanCore> CompiledInstance::PatchCore(
    const PlanCore& old_core, const VseInstance& instance,
    const CoreDelta& delta) {
  auto core = std::make_shared<PlanCore>();
  size_t view_count = instance.view_count();

  // Tuple id space from the (already mutated) views.
  core->view_first.resize(view_count + 1);
  uint32_t dense = 0;
  for (size_t v = 0; v < view_count; ++v) {
    core->view_first[v] = dense;
    dense += static_cast<uint32_t>(instance.view(v).size());
  }
  core->view_first[view_count] = dense;
  uint32_t tuple_count = dense;
  core->tuple_view.resize(tuple_count);
  for (size_t v = 0; v < view_count; ++v) {
    uint32_t first = core->view_first[v];
    uint32_t last = core->view_first[v + 1];
    for (uint32_t d = first; d < last; ++d) {
      core->tuple_view[d] = static_cast<uint32_t>(v);
    }
  }

  // Old→new tuple remap. Survivors of view v occupy its first slots in their
  // old relative order (View::RemoveTuples compacts stably, AddMatch only
  // appends), so walking old dense ids in order assigns the new ids.
  uint32_t old_tuple_count = old_core.tuple_count();
  std::vector<uint32_t> tuple_remap(old_tuple_count, kNpos);
  std::vector<uint32_t> old_of(tuple_count, kNpos);  // new dense -> old dense
  std::vector<uint32_t> survivors(view_count, 0);
  for (size_t v = 0; v < view_count; ++v) {
    uint32_t next = core->view_first[v];
    for (uint32_t od = old_core.view_first[v]; od < old_core.view_first[v + 1];
         ++od) {
      if (delta.tuple_removed[od]) continue;
      tuple_remap[od] = next;
      old_of[next] = od;
      ++next;
    }
    survivors[v] = next - core->view_first[v];
  }

  // Weights: splice survivors from the old array, read appended tuples from
  // the instance (SetWeight keeps the instance map and the core in sync).
  core->weight.resize(tuple_count);
  for (uint32_t od = 0; od < old_tuple_count; ++od) {
    if (tuple_remap[od] != kNpos) {
      core->weight[tuple_remap[od]] = old_core.weight[od];
    }
  }
  for (size_t v = 0; v < view_count; ++v) {
    const View& view = instance.view(v);
    for (size_t t = survivors[v]; t < view.size(); ++t) {
      core->weight[core->view_first[v] + t] = instance.weight(ViewTupleId{v, t});
    }
  }

  // Base occurrence deltas per old base, and the refs new witnesses bring
  // in. Old bases whose count drops to zero leave the id space; fresh refs
  // join it; everything stays in ascending TupleRef order via a merge.
  uint32_t old_base_count = old_core.base_count();
  std::vector<int64_t> occ_delta(old_base_count, 0);
  std::vector<uint32_t> scratch;
  for (uint32_t ow = 0; ow < old_core.witness_count(); ++ow) {
    if (!delta.witness_removed[ow]) continue;
    scratch.assign(
        old_core.witness_member_base.begin() +
            old_core.witness_member_first[ow],
        old_core.witness_member_base.begin() +
            old_core.witness_member_first[ow + 1]);
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    for (uint32_t base : scratch) --occ_delta[base];
  }
  auto find_old_base = [&old_core](const TupleRef& ref) {
    auto it = std::lower_bound(old_core.base_refs.begin(),
                               old_core.base_refs.end(), ref);
    if (it == old_core.base_refs.end() || !(*it == ref)) {
      return CompiledInstance::kNpos;
    }
    return static_cast<uint32_t>(it - old_core.base_refs.begin());
  };
  std::vector<TupleRef> new_refs;
  std::vector<TupleRef> ref_scratch;
  // Appended-witness sweep, used twice: once to collect refs, once to fill
  // member rows. For a surviving tuple the appended witnesses are the ones
  // past its kept-old-witness count; for an appended tuple, all of them.
  auto for_each_appended_witness = [&](auto&& body) {
    for (size_t v = 0; v < view_count; ++v) {
      const View& view = instance.view(v);
      for (size_t t = 0; t < view.size(); ++t) {
        uint32_t d = core->view_first[v] + static_cast<uint32_t>(t);
        size_t kept = 0;
        if (t < survivors[v]) {
          uint32_t od = old_of[d];
          for (uint32_t ow = old_core.tuple_witness_first[od];
               ow < old_core.tuple_witness_first[od + 1]; ++ow) {
            if (!delta.witness_removed[ow]) ++kept;
          }
        }
        const std::vector<Witness>& witnesses = view.tuple(t).witnesses;
        for (size_t w = kept; w < witnesses.size(); ++w) {
          body(witnesses[w]);
        }
      }
    }
  };
  for_each_appended_witness([&](const Witness& witness) {
    ref_scratch.assign(witness.begin(), witness.end());
    std::sort(ref_scratch.begin(), ref_scratch.end());
    ref_scratch.erase(
        std::unique(ref_scratch.begin(), ref_scratch.end()),
        ref_scratch.end());
    for (const TupleRef& ref : ref_scratch) {
      uint32_t old_base = find_old_base(ref);
      if (old_base != kNpos) {
        ++occ_delta[old_base];
      } else {
        new_refs.push_back(ref);
      }
    }
  });
  std::sort(new_refs.begin(), new_refs.end());
  new_refs.erase(std::unique(new_refs.begin(), new_refs.end()),
                 new_refs.end());

  // Merge surviving old refs with the new ones (both ascending).
  std::vector<uint32_t> base_remap(old_base_count, kNpos);
  core->base_refs.reserve(old_base_count + new_refs.size());
  {
    uint32_t ob = 0;
    size_t nr = 0;
    while (ob < old_base_count || nr < new_refs.size()) {
      bool take_old;
      if (ob >= old_base_count) {
        take_old = false;
      } else if (nr >= new_refs.size()) {
        take_old = true;
      } else {
        take_old = old_core.base_refs[ob] < new_refs[nr];
      }
      if (take_old) {
        int64_t old_count = static_cast<int64_t>(old_core.base_occ_first[ob + 1]) -
                            static_cast<int64_t>(old_core.base_occ_first[ob]);
        if (old_count + occ_delta[ob] > 0) {
          base_remap[ob] = static_cast<uint32_t>(core->base_refs.size());
          core->base_refs.push_back(old_core.base_refs[ob]);
        }
        ++ob;
      } else {
        core->base_refs.push_back(new_refs[nr]);
        ++nr;
      }
    }
  }
  auto find_base = [core](const TupleRef& ref) {
    auto it = std::lower_bound(core->base_refs.begin(), core->base_refs.end(),
                               ref);
    return static_cast<uint32_t>(it - core->base_refs.begin());
  };

  // Witness CSR + member rows: kept old witnesses splice their member slices
  // through base_remap; appended witnesses resolve refs against the merged
  // id space. Both paths emit in (view, tuple, witness) order, matching a
  // from-scratch build byte for byte.
  core->tuple_witness_first.resize(tuple_count + 1);
  {
    uint32_t wid = 0;
    size_t member_total = 0;
    for (size_t v = 0; v < view_count; ++v) {
      const View& view = instance.view(v);
      for (size_t t = 0; t < view.size(); ++t) {
        uint32_t d = core->view_first[v] + static_cast<uint32_t>(t);
        core->tuple_witness_first[d] = wid;
        for (const Witness& witness : view.tuple(t).witnesses) {
          ++wid;
          member_total += witness.size();
        }
      }
    }
    core->tuple_witness_first[tuple_count] = wid;
    core->witness_owner.resize(wid);
    core->witness_member_first.resize(static_cast<size_t>(wid) + 1);
    core->witness_member_base.reserve(member_total);
  }
  {
    uint32_t wid = 0;
    uint32_t member_slot = 0;
    for (size_t v = 0; v < view_count; ++v) {
      const View& view = instance.view(v);
      for (size_t t = 0; t < view.size(); ++t) {
        uint32_t d = core->view_first[v] + static_cast<uint32_t>(t);
        size_t kept = 0;
        if (t < survivors[v]) {
          uint32_t od = old_of[d];
          for (uint32_t ow = old_core.tuple_witness_first[od];
               ow < old_core.tuple_witness_first[od + 1]; ++ow) {
            if (delta.witness_removed[ow]) continue;
            core->witness_owner[wid] = d;
            core->witness_member_first[wid] = member_slot;
            for (uint32_t slot = old_core.witness_member_first[ow];
                 slot < old_core.witness_member_first[ow + 1]; ++slot) {
              core->witness_member_base.push_back(
                  base_remap[old_core.witness_member_base[slot]]);
              ++member_slot;
            }
            ++wid;
            ++kept;
          }
        }
        const std::vector<Witness>& witnesses = view.tuple(t).witnesses;
        for (size_t w = kept; w < witnesses.size(); ++w) {
          core->witness_owner[wid] = d;
          core->witness_member_first[wid] = member_slot;
          for (const TupleRef& ref : witnesses[w]) {
            core->witness_member_base.push_back(find_base(ref));
            ++member_slot;
          }
          ++wid;
        }
      }
    }
    core->witness_member_first[wid] = member_slot;
  }
  FinishCore(core.get());
  return core;
}

std::shared_ptr<const CompiledInstance> CompiledInstance::Build(
    const VseInstance& instance) {
  return BuildFromCore(BuildCore(instance), instance.deletion_tuples(),
                       nullptr);
}

std::shared_ptr<const CompiledInstance> CompiledInstance::BuildFromCore(
    std::shared_ptr<const PlanCore> core,
    const std::vector<ViewTupleId>& deletions,
    std::shared_ptr<const CompiledInstance> recycle) {
  auto plan = std::shared_ptr<CompiledInstance>(new CompiledInstance());
  uint32_t tuple_count = core->tuple_count();
  uint32_t base_count = core->base_count();

  if (recycle != nullptr && recycle.use_count() == 1 &&
      recycle->core_->tuple_count() == tuple_count &&
      recycle->core_->base_count() == base_count) {
    // Sole owner of a retired plan with matching dimensions (the same core,
    // or a weight-patched clone of it): steal its overlay buffers. Clearing
    // by the retired ΔV/candidate lists (instead of a full fill) keeps the
    // reset O(previous ΔV incidence), and re-establishes the all-zero
    // `touched_` invariant. The const_cast is sound: we hold the only
    // reference, so no reader can observe the mutation.
    CompiledInstance& prev = const_cast<CompiledInstance&>(*recycle);
    for (uint32_t d : prev.deletion_dense_) {
      prev.is_deletion_[d] = 0;
      prev.deletion_words_[d >> 6] &= ~(1ull << (d & 63));
      prev.deletion_index_[d] = kNpos;
    }
    for (uint32_t b : prev.candidate_bases_) prev.touched_[b] = 0;
    plan->is_deletion_ = std::move(prev.is_deletion_);
    plan->deletion_words_ = std::move(prev.deletion_words_);
    plan->deletion_index_ = std::move(prev.deletion_index_);
    plan->touched_ = std::move(prev.touched_);
    plan->deletion_dense_ = std::move(prev.deletion_dense_);
    plan->deletion_dense_.clear();
    plan->candidate_bases_ = std::move(prev.candidate_bases_);
    plan->candidate_bases_.clear();
    plan->overlay_recycled_ = true;
  } else {
    plan->is_deletion_.assign(tuple_count, 0);
    plan->deletion_words_.assign((static_cast<size_t>(tuple_count) + 63) / 64,
                                 0);
    plan->deletion_index_.assign(tuple_count, kNpos);
    plan->touched_.assign(base_count, 0);
    plan->deletion_dense_.reserve(deletions.size());
  }
  recycle.reset();
  plan->core_ = std::move(core);

  for (size_t i = 0; i < deletions.size(); ++i) {
    uint32_t d = plan->DenseOf(deletions[i]);
    plan->is_deletion_[d] = 1;
    plan->deletion_words_[d >> 6] |= 1ull << (d & 63);
    plan->deletion_index_[d] = static_cast<uint32_t>(i);
    plan->deletion_dense_.push_back(d);
  }

  // Candidates: bases in witnesses of ΔV tuples, ascending. Collect-then-sort
  // (instead of the full 0..base_count scan) so a recycled rebuild stays
  // proportional to the ΔV neighborhood; the sorted result is identical.
  const PlanCore& c = *plan->core_;
  for (uint32_t d : plan->deletion_dense_) {
    for (uint32_t w = c.tuple_witness_first[d];
         w < c.tuple_witness_first[d + 1]; ++w) {
      for (uint32_t slot = c.witness_member_first[w];
           slot < c.witness_member_first[w + 1]; ++slot) {
        uint32_t base = c.witness_member_base[slot];
        if (!plan->touched_[base]) {
          plan->touched_[base] = 1;
          plan->candidate_bases_.push_back(base);
        }
      }
    }
  }
  std::sort(plan->candidate_bases_.begin(), plan->candidate_bases_.end());
  return plan;
}

// Lazy build: the first compiled() after an invalidation pays for the plan
// (or overlay) construction; every later call is a cache hit. Allocation
// here is the sanctioned cost of rebinding, not per-pick work.
// delprop-hot-stop
std::shared_ptr<const CompiledInstance> VseInstance::compiled() const {
  std::lock_guard<std::mutex> lock(caches_->mu);
  if (caches_->compiled == nullptr) {
    if (caches_->plan_core != nullptr) {
      // ΔV-only invalidation (or an ApplyDelta core patch) kept a core;
      // rebuild just the overlay, recycling the retired plan's buffers when
      // we are its sole owner and the dimensions still line up.
      ++caches_->plan_stats.core_rebinds;
      caches_->compiled = CompiledInstance::BuildFromCore(
          caches_->plan_core, deletion_tuples_, std::move(caches_->retired));
      caches_->retired.reset();
      if (caches_->compiled->overlay_recycled()) {
        ++caches_->plan_stats.overlay_recycles;
      }
    } else {
      ++caches_->plan_stats.full_builds;
      caches_->compiled = CompiledInstance::Build(*this);
      caches_->plan_core = caches_->compiled->core();
    }
  }
  return caches_->compiled;
}

}  // namespace delprop
