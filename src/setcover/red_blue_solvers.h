#ifndef DELPROP_SETCOVER_RED_BLUE_SOLVERS_H_
#define DELPROP_SETCOVER_RED_BLUE_SOLVERS_H_

#include <cstdint>

#include "common/status.h"
#include "setcover/red_blue.h"

namespace delprop {

/// Weighted-greedy baseline: repeatedly picks the set minimizing
/// (marginal red weight) / (newly covered blues) until all blues are covered.
/// Returns Infeasible if even the full collection leaves a blue uncovered.
Result<RbscSolution> SolveRbscGreedy(const RbscInstance& instance);

/// Peleg's LowDegTwo scheme (J. Discrete Algorithms 2007), the subroutine the
/// paper's Claim 1 and Algorithms 2/3 build on: for every red-degree
/// threshold τ, discard sets containing more than τ red elements, run the
/// weighted greedy on the surviving collection, and keep the best solution
/// found. Achieves the 2·sqrt(|C|·log|B|) bound of the paper.
Result<RbscSolution> SolveRbscLowDegTwo(const RbscInstance& instance);

/// Exact branch-and-bound over the lowest-id uncovered blue element. `budget`
/// caps the number of explored search nodes; on exhaustion the best feasible
/// solution found so far is returned with a FailedPrecondition status if none
/// was proven optimal. Intended for the ratio benches on small instances.
struct RbscExactOptions {
  uint64_t node_budget = 50'000'000;
};
Result<RbscSolution> SolveRbscExact(const RbscInstance& instance,
                                    const RbscExactOptions& options = {});

}  // namespace delprop

#endif  // DELPROP_SETCOVER_RED_BLUE_SOLVERS_H_
