#include "setcover/greedy_set_cover.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace delprop {

Status SetCoverInstance::Validate() const {
  if (!set_costs.empty() && set_costs.size() != sets.size()) {
    return Status::InvalidArgument("set_costs size mismatch");
  }
  for (const auto& set : sets) {
    for (size_t e : set) {
      if (e >= element_count) {
        return Status::OutOfRange("element id out of range");
      }
    }
  }
  return Status::Ok();
}

double SetCoverCost(const SetCoverInstance& instance,
                    const std::vector<size_t>& chosen) {
  double cost = 0.0;
  for (size_t s : chosen) cost += instance.SetCost(s);
  return cost;
}

bool SetCoverFeasible(const SetCoverInstance& instance,
                      const std::vector<size_t>& chosen) {
  std::vector<bool> covered(instance.element_count, false);
  for (size_t s : chosen) {
    for (size_t e : instance.sets[s]) covered[e] = true;
  }
  for (bool c : covered) {
    if (!c) return false;
  }
  return true;
}

Result<std::vector<size_t>> GreedySetCoverScanReference(
    const SetCoverInstance& instance) {
  if (Status s = instance.Validate(); !s.ok()) return s;
  std::vector<bool> covered(instance.element_count, false);
  size_t left = instance.element_count;
  std::vector<size_t> chosen;
  while (left > 0) {
    size_t best = instance.sets.size();
    double best_score = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < instance.sets.size(); ++s) {
      size_t fresh = 0;
      for (size_t e : instance.sets[s]) {
        if (!covered[e]) ++fresh;
      }
      if (fresh == 0) continue;
      double score = instance.SetCost(s) / static_cast<double>(fresh);
      if (score < best_score) {
        best_score = score;
        best = s;
      }
    }
    if (best == instance.sets.size()) {
      return Status::Infeasible("elements cannot all be covered");
    }
    chosen.push_back(best);
    for (size_t e : instance.sets[best]) {
      if (!covered[e]) {
        covered[e] = true;
        --left;
      }
    }
  }
  return chosen;
}

namespace {

// Heap entry ordered lexicographically by (score, set). Scores are
// cost/fresh; the index component makes keys totally ordered across sets, so
// the lexicographic minimum is exactly "lowest score, lowest index on ties" —
// the set the reference scan's strict-< selection picks.
struct LazyEntry {
  double score;
  size_t set;
};

struct LazyEntryGreater {
  bool operator()(const LazyEntry& a, const LazyEntry& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.set > b.set;
  }
};

}  // namespace

Result<std::vector<size_t>> GreedySetCover(const SetCoverInstance& instance) {
  if (Status s = instance.Validate(); !s.ok()) return s;
  std::vector<bool> covered(instance.element_count, false);
  size_t left = instance.element_count;
  std::vector<size_t> chosen;
  // Each pick covers at least one fresh element, so the cover never
  // exceeds min(sets, elements).
  chosen.reserve(std::min(instance.sets.size(), instance.element_count));

  // Lazy heap of (score, set). A stale score is always a lower bound on the
  // current one (fresh counts only shrink), so: pop the minimum, recompute
  // its key, and select it iff the recomputed key is no worse than the new
  // top — every remaining entry's true key is at least its stale key, which
  // is at least the top. Otherwise re-push with the recomputed (strictly
  // larger) key. Sets whose fresh count hits zero are dropped for good.
  std::priority_queue<LazyEntry, std::vector<LazyEntry>, LazyEntryGreater>
      heap;
  for (size_t s = 0; s < instance.sets.size(); ++s) {
    if (instance.sets[s].empty()) continue;
    heap.push(LazyEntry{
        instance.SetCost(s) / static_cast<double>(instance.sets[s].size()),
        s});
  }

  // Counts uncovered occurrences with the reference loop (duplicates in a
  // set's element list count twice there, so they must count twice here).
  auto fresh_count = [&](size_t s) {
    size_t fresh = 0;
    for (size_t e : instance.sets[s]) {
      if (!covered[e]) ++fresh;
    }
    return fresh;
  };

  while (left > 0) {
    size_t best = instance.sets.size();
    while (!heap.empty()) {
      LazyEntry top = heap.top();
      heap.pop();
      size_t fresh = fresh_count(top.set);
      if (fresh == 0) continue;  // never useful again
      double score =
          instance.SetCost(top.set) / static_cast<double>(fresh);
      if (heap.empty() || score < heap.top().score ||
          (score == heap.top().score && top.set < heap.top().set)) {
        best = top.set;
        break;
      }
      heap.push(LazyEntry{score, top.set});
    }
    if (best == instance.sets.size()) {
      return Status::Infeasible("elements cannot all be covered");
    }
    chosen.push_back(best);
    for (size_t e : instance.sets[best]) {
      if (!covered[e]) {
        covered[e] = true;
        --left;
      }
    }
  }
  return chosen;
}

namespace {

class SetCoverSearch {
 public:
  SetCoverSearch(const SetCoverInstance& instance, uint64_t budget)
      : instance_(instance), budget_(budget) {
    // The branch-and-bound path holds at most one entry per set.
    chosen_.reserve(instance.sets.size());
    sets_with_element_.resize(instance.element_count);
    for (size_t s = 0; s < instance.sets.size(); ++s) {
      for (size_t e : instance.sets[s]) sets_with_element_[e].push_back(s);
    }
    cover_count_.assign(instance.element_count, 0);
  }

  void Seed(std::vector<size_t> chosen, double cost) {
    best_ = std::move(chosen);
    best_cost_ = cost;
    seeded_ = true;
  }

  bool Run() {
    Descend(0.0);
    return nodes_ <= budget_;
  }
  bool found() const { return seeded_ || !best_.empty(); }
  const std::vector<size_t>& best() const { return best_; }

 private:
  void Descend(double cost) {
    if (++nodes_ > budget_) return;
    if (cost >= best_cost_) return;
    size_t pick = instance_.element_count;
    size_t pick_options = std::numeric_limits<size_t>::max();
    for (size_t e = 0; e < instance_.element_count; ++e) {
      if (cover_count_[e] > 0) continue;
      if (sets_with_element_[e].size() < pick_options) {
        pick = e;
        pick_options = sets_with_element_[e].size();
      }
    }
    if (pick == instance_.element_count) {
      best_cost_ = cost;
      best_ = chosen_;
      seeded_ = true;
      return;
    }
    if (pick_options == 0) return;
    for (size_t s : sets_with_element_[pick]) {
      for (size_t e : instance_.sets[s]) ++cover_count_[e];
      chosen_.push_back(s);
      Descend(cost + instance_.SetCost(s));
      chosen_.pop_back();
      for (size_t e : instance_.sets[s]) --cover_count_[e];
      if (nodes_ > budget_) return;
    }
  }

  const SetCoverInstance& instance_;
  uint64_t budget_;
  uint64_t nodes_ = 0;
  std::vector<std::vector<size_t>> sets_with_element_;
  std::vector<uint32_t> cover_count_;
  std::vector<size_t> chosen_;
  std::vector<size_t> best_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  bool seeded_ = false;
};

}  // namespace

Result<std::vector<size_t>> ExactSetCover(const SetCoverInstance& instance,
                                          uint64_t node_budget) {
  if (Status s = instance.Validate(); !s.ok()) return s;
  SetCoverSearch search(instance, node_budget);
  Result<std::vector<size_t>> greedy = GreedySetCover(instance);
  if (greedy.ok()) search.Seed(*greedy, SetCoverCost(instance, *greedy));
  if (!search.Run()) {
    return Status::FailedPrecondition(
        "exact set cover search exceeded node budget");
  }
  if (!search.found()) {
    return Status::Infeasible("elements cannot all be covered");
  }
  return search.best();
}

}  // namespace delprop
