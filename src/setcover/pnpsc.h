#ifndef DELPROP_SETCOVER_PNPSC_H_
#define DELPROP_SETCOVER_PNPSC_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"
#include "setcover/red_blue.h"
#include "setcover/red_blue_solvers.h"

namespace delprop {

/// An instance of the Positive-Negative Partial Set Cover problem
/// (Miettinen, IPL 2008): choose sets minimizing
///   weight(uncovered positives) + weight(covered negatives).
/// Any sub-collection is feasible (there is no hard covering constraint).
struct PnpscInstance {
  struct Set {
    std::vector<size_t> positives;
    std::vector<size_t> negatives;
  };

  size_t positive_count = 0;
  size_t negative_count = 0;
  std::vector<Set> sets;
  /// Optional weights; empty means unit weights.
  std::vector<double> positive_weights;
  std::vector<double> negative_weights;

  double PositiveWeight(size_t p) const {
    return positive_weights.empty() ? 1.0 : positive_weights[p];
  }
  double NegativeWeight(size_t n) const {
    return negative_weights.empty() ? 1.0 : negative_weights[n];
  }

  Status Validate() const;
};

/// A solution: indices of chosen sets.
struct PnpscSolution {
  std::vector<size_t> chosen;
};

/// Objective value of a solution.
double PnpscCost(const PnpscInstance& instance, const PnpscSolution& solution);

/// Miettinen's linear reduction ±PSC → RBSC: blues are the positives; reds
/// are the negatives plus one fresh red r_p per positive; every original set
/// keeps its members; a "skip set" {p, r_p} is added per positive so leaving
/// p uncovered costs exactly one red. RBSC set ids [0, sets.size()) are the
/// original sets, the remainder are skip sets.
RbscInstance ReducePnpscToRbsc(const PnpscInstance& instance);

/// Maps an RBSC solution over ReducePnpscToRbsc(instance) back to ±PSC by
/// dropping the skip sets.
PnpscSolution MapRbscSolutionBack(const PnpscInstance& instance,
                                  const RbscSolution& rbsc_solution);

/// Solves ±PSC through the RBSC reduction with the given RBSC solver
/// (defaults to Peleg's LowDegTwo, giving the paper's Lemma 1 bound).
Result<PnpscSolution> SolvePnpsc(
    const PnpscInstance& instance,
    const std::function<Result<RbscSolution>(const RbscInstance&)>& solver =
        SolveRbscLowDegTwo);

/// Exact solver by exhaustive branch-and-bound over sets (small instances
/// only; `node_budget` caps explored nodes).
Result<PnpscSolution> SolvePnpscExact(const PnpscInstance& instance,
                                      uint64_t node_budget = 50'000'000);

}  // namespace delprop

#endif  // DELPROP_SETCOVER_PNPSC_H_
