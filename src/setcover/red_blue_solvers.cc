#include "setcover/red_blue_solvers.h"

#include <algorithm>
#include <limits>
#include <set>

namespace delprop {
namespace {

/// Element→sets incidence, built once per instance and shared across the
/// per-threshold greedy runs of the low-degree solver. Entries are pushed
/// once per *occurrence* (a set listing a blue twice appears twice), so
/// incremental new-blues counts match the reference scan, which also counts
/// occurrences.
struct RbscIncidence {
  std::vector<std::vector<size_t>> blue_sets;
  std::vector<std::vector<size_t>> red_sets;

  explicit RbscIncidence(const RbscInstance& instance)
      : blue_sets(instance.blue_count), red_sets(instance.red_count) {
    for (size_t s = 0; s < instance.sets.size(); ++s) {
      for (size_t b : instance.sets[s].blues) blue_sets[b].push_back(s);
      for (size_t r : instance.sets[s].reds) red_sets[r].push_back(s);
    }
  }
};

/// Greedy over the subset of sets with `allowed[s]` true. Returns nullopt if
/// the allowed sets cannot cover all blues.
///
/// Picks the same set every iteration as the original full rescan, but keeps
/// per-set state incrementally instead of recomputing it for every set on
/// every pick:
///  - `new_blues[s]` is an integer, decremented through the blue→sets
///    incidence when a blue gets covered — exact, no drift.
///  - `marginal[s]` is a float and is NOT adjusted incrementally (subtracting
///    covered red weights would reorder the summation and change low bits on
///    weighted instances). Instead a set is marked dirty when one of its reds
///    gets covered, and dirty marginals are recomputed with the reference
///    loop — same terms, same order, bit-identical.
///  - `live` holds the allowed sets that can still cover something, in
///    ascending index order (stable compaction), so the strict-< /
///    larger-new-blues tie-break sees candidates in the reference order.
std::optional<RbscSolution> GreedyOverAllowed(const RbscInstance& instance,
                                              const RbscIncidence& incidence,
                                              const std::vector<bool>& allowed) {
  std::vector<bool> blue_covered(instance.blue_count, false);
  std::vector<bool> red_covered(instance.red_count, false);
  size_t blues_left = instance.blue_count;
  RbscSolution solution;

  std::vector<size_t> new_blues(instance.sets.size(), 0);
  std::vector<double> marginal(instance.sets.size(), 0.0);
  std::vector<bool> dirty(instance.sets.size(), false);
  auto recompute_marginal = [&](size_t s) {
    double m = 0.0;
    for (size_t r : instance.sets[s].reds) {
      if (!red_covered[r]) m += instance.RedWeight(r);
    }
    marginal[s] = m;
  };
  std::vector<size_t> live;
  live.reserve(instance.sets.size());
  for (size_t s = 0; s < instance.sets.size(); ++s) {
    // Counted for every set — incidence decrements touch disallowed sets too.
    new_blues[s] = instance.sets[s].blues.size();
    if (!allowed[s] || new_blues[s] == 0) continue;
    recompute_marginal(s);
    live.push_back(s);
  }

  while (blues_left > 0) {
    size_t best_set = instance.sets.size();
    double best_score = std::numeric_limits<double>::infinity();
    size_t best_new_blues = 0;
    size_t kept = 0;
    for (size_t s : live) {
      if (new_blues[s] == 0) continue;  // exhausted for good
      live[kept++] = s;
      if (dirty[s]) {
        recompute_marginal(s);
        dirty[s] = false;
      }
      double score = marginal[s] / static_cast<double>(new_blues[s]);
      if (score < best_score ||
          (score == best_score && new_blues[s] > best_new_blues)) {
        best_score = score;
        best_set = s;
        best_new_blues = new_blues[s];
      }
    }
    live.resize(kept);
    if (best_set == instance.sets.size()) return std::nullopt;
    solution.chosen.push_back(best_set);
    for (size_t b : instance.sets[best_set].blues) {
      if (!blue_covered[b]) {
        blue_covered[b] = true;
        --blues_left;
        for (size_t s : incidence.blue_sets[b]) --new_blues[s];
      }
    }
    for (size_t r : instance.sets[best_set].reds) {
      if (!red_covered[r]) {
        red_covered[r] = true;
        for (size_t s : incidence.red_sets[r]) dirty[s] = true;
      }
    }
  }
  return solution;
}

}  // namespace

Result<RbscSolution> SolveRbscGreedy(const RbscInstance& instance) {
  if (Status s = instance.Validate(); !s.ok()) return s;
  RbscIncidence incidence(instance);
  std::vector<bool> allowed(instance.sets.size(), true);
  std::optional<RbscSolution> solution =
      GreedyOverAllowed(instance, incidence, allowed);
  if (!solution.has_value()) {
    return Status::Infeasible("blue elements cannot all be covered");
  }
  return *solution;
}

Result<RbscSolution> SolveRbscLowDegTwo(const RbscInstance& instance) {
  if (Status s = instance.Validate(); !s.ok()) return s;
  // Candidate thresholds: the distinct red-degrees of the sets.
  std::set<size_t> thresholds;
  for (const RbscInstance::Set& set : instance.sets) {
    thresholds.insert(set.reds.size());
  }
  if (thresholds.empty()) {
    return Status::Infeasible("empty set collection");
  }

  std::optional<RbscSolution> best;
  double best_cost = std::numeric_limits<double>::infinity();
  RbscIncidence incidence(instance);
  std::vector<bool> allowed(instance.sets.size());
  for (size_t tau : thresholds) {
    for (size_t s = 0; s < instance.sets.size(); ++s) {
      allowed[s] = instance.sets[s].reds.size() <= tau;
    }
    std::optional<RbscSolution> solution =
        GreedyOverAllowed(instance, incidence, allowed);
    if (!solution.has_value()) continue;
    double cost = RbscCost(instance, *solution);
    if (!best.has_value() || cost < best_cost) {
      best = std::move(solution);
      best_cost = cost;
    }
  }
  if (!best.has_value()) {
    return Status::Infeasible("blue elements cannot all be covered");
  }
  return *best;
}

namespace {

class ExactSearch {
 public:
  ExactSearch(const RbscInstance& instance, uint64_t node_budget)
      : instance_(instance), budget_(node_budget) {
    sets_with_blue_.resize(instance.blue_count);
    for (size_t s = 0; s < instance.sets.size(); ++s) {
      for (size_t b : instance.sets[s].blues) {
        sets_with_blue_[b].push_back(s);
      }
    }
    blue_covered_by_.assign(instance.blue_count, 0);
    red_covered_by_.assign(instance.red_count, 0);
  }

  // Seeds the incumbent (upper bound) with a known feasible solution.
  void Seed(const RbscSolution& solution, double cost) {
    best_ = solution;
    best_cost_ = cost;
  }

  bool Run() {
    Descend(0.0);
    return nodes_ <= budget_;
  }

  const std::optional<RbscSolution>& best() const { return best_; }

 private:
  void Descend(double cost) {
    if (++nodes_ > budget_) return;
    if (cost >= best_cost_) return;
    // Pick the uncovered blue with the fewest candidate sets.
    size_t pick = instance_.blue_count;
    size_t pick_options = std::numeric_limits<size_t>::max();
    for (size_t b = 0; b < instance_.blue_count; ++b) {
      if (blue_covered_by_[b] > 0) continue;
      size_t options = sets_with_blue_[b].size();
      if (options < pick_options) {
        pick = b;
        pick_options = options;
      }
    }
    if (pick == instance_.blue_count) {
      // Feasible; strictly better than the incumbent by the prune above.
      best_cost_ = cost;
      best_ = RbscSolution{chosen_};
      return;
    }
    if (pick_options == 0) return;  // Dead end.
    for (size_t s : sets_with_blue_[pick]) {
      double marginal = 0.0;
      for (size_t r : instance_.sets[s].reds) {
        if (red_covered_by_[r] == 0) marginal += instance_.RedWeight(r);
      }
      Apply(s);
      chosen_.push_back(s);
      Descend(cost + marginal);
      chosen_.pop_back();
      Unapply(s);
      if (nodes_ > budget_) return;
    }
  }

  void Apply(size_t s) {
    for (size_t b : instance_.sets[s].blues) ++blue_covered_by_[b];
    for (size_t r : instance_.sets[s].reds) ++red_covered_by_[r];
  }
  void Unapply(size_t s) {
    for (size_t b : instance_.sets[s].blues) --blue_covered_by_[b];
    for (size_t r : instance_.sets[s].reds) --red_covered_by_[r];
  }

  const RbscInstance& instance_;
  uint64_t budget_;
  uint64_t nodes_ = 0;
  std::vector<std::vector<size_t>> sets_with_blue_;
  std::vector<uint32_t> blue_covered_by_;
  std::vector<uint32_t> red_covered_by_;
  std::vector<size_t> chosen_;
  std::optional<RbscSolution> best_;
  double best_cost_ = std::numeric_limits<double>::infinity();
};

}  // namespace

Result<RbscSolution> SolveRbscExact(const RbscInstance& instance,
                                    const RbscExactOptions& options) {
  if (Status s = instance.Validate(); !s.ok()) return s;
  ExactSearch search(instance, options.node_budget);
  Result<RbscSolution> greedy = SolveRbscGreedy(instance);
  if (greedy.ok()) {
    search.Seed(*greedy, RbscCost(instance, *greedy));
  }
  bool complete = search.Run();
  if (!complete) {
    return Status::FailedPrecondition("exact RBSC search exceeded node budget");
  }
  if (!search.best().has_value()) {
    return Status::Infeasible("blue elements cannot all be covered");
  }
  return *search.best();
}

}  // namespace delprop
