#ifndef DELPROP_SETCOVER_GREEDY_SET_COVER_H_
#define DELPROP_SETCOVER_GREEDY_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace delprop {

/// A classical weighted set cover instance: cover all elements minimizing the
/// total cost of chosen sets. Used for the *source* side-effect problem
/// (Tables II/III counterpart), where each deleted base tuple is a set
/// covering the ΔV tuples it kills and the objective is |ΔD|.
struct SetCoverInstance {
  size_t element_count = 0;
  std::vector<std::vector<size_t>> sets;
  /// Per-set costs; empty means unit costs.
  std::vector<double> set_costs;

  double SetCost(size_t s) const {
    return set_costs.empty() ? 1.0 : set_costs[s];
  }
  Status Validate() const;
};

/// Chvátal's greedy: H_n-approximation for weighted set cover. Implemented
/// with a lazy min-heap over (score, set-index): scores cost/fresh are
/// monotone non-decreasing as elements get covered, so a popped entry whose
/// recomputed key is still no worse than the heap's top is the true minimum.
/// Picks the same set as the full rescan on every iteration (see docs/perf.md
/// for the argument), so results are byte-identical to
/// GreedySetCoverScanReference.
Result<std::vector<size_t>> GreedySetCover(const SetCoverInstance& instance);

/// The original O(#sets) -per-pick rescan. Kept as the differential reference
/// for the lazy-heap implementation above; do not use on hot paths.
Result<std::vector<size_t>> GreedySetCoverScanReference(
    const SetCoverInstance& instance);

/// Exact branch-and-bound (small instances; `node_budget` caps search).
Result<std::vector<size_t>> ExactSetCover(const SetCoverInstance& instance,
                                          uint64_t node_budget = 50'000'000);

/// Total cost of chosen sets.
double SetCoverCost(const SetCoverInstance& instance,
                    const std::vector<size_t>& chosen);

/// True if every element is covered.
bool SetCoverFeasible(const SetCoverInstance& instance,
                      const std::vector<size_t>& chosen);

}  // namespace delprop

#endif  // DELPROP_SETCOVER_GREEDY_SET_COVER_H_
