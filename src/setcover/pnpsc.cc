#include "setcover/pnpsc.h"

#include <limits>

namespace delprop {

Status PnpscInstance::Validate() const {
  if (!positive_weights.empty() && positive_weights.size() != positive_count) {
    return Status::InvalidArgument("positive_weights size mismatch");
  }
  if (!negative_weights.empty() && negative_weights.size() != negative_count) {
    return Status::InvalidArgument("negative_weights size mismatch");
  }
  for (const Set& set : sets) {
    for (size_t p : set.positives) {
      if (p >= positive_count) {
        return Status::OutOfRange("positive element id out of range");
      }
    }
    for (size_t n : set.negatives) {
      if (n >= negative_count) {
        return Status::OutOfRange("negative element id out of range");
      }
    }
  }
  return Status::Ok();
}

double PnpscCost(const PnpscInstance& instance,
                 const PnpscSolution& solution) {
  std::vector<bool> pos_covered(instance.positive_count, false);
  std::vector<bool> neg_covered(instance.negative_count, false);
  for (size_t s : solution.chosen) {
    for (size_t p : instance.sets[s].positives) pos_covered[p] = true;
    for (size_t n : instance.sets[s].negatives) neg_covered[n] = true;
  }
  double cost = 0.0;
  for (size_t p = 0; p < instance.positive_count; ++p) {
    if (!pos_covered[p]) cost += instance.PositiveWeight(p);
  }
  for (size_t n = 0; n < instance.negative_count; ++n) {
    if (neg_covered[n]) cost += instance.NegativeWeight(n);
  }
  return cost;
}

RbscInstance ReducePnpscToRbsc(const PnpscInstance& instance) {
  RbscInstance rbsc;
  rbsc.blue_count = instance.positive_count;
  // Reds: negatives first, then one skip-red per positive.
  rbsc.red_count = instance.negative_count + instance.positive_count;
  rbsc.red_weights.resize(rbsc.red_count);
  for (size_t n = 0; n < instance.negative_count; ++n) {
    rbsc.red_weights[n] = instance.NegativeWeight(n);
  }
  for (size_t p = 0; p < instance.positive_count; ++p) {
    rbsc.red_weights[instance.negative_count + p] = instance.PositiveWeight(p);
  }
  for (const PnpscInstance::Set& set : instance.sets) {
    RbscInstance::Set rset;
    rset.blues = set.positives;
    rset.reds = set.negatives;
    rbsc.sets.push_back(std::move(rset));
  }
  for (size_t p = 0; p < instance.positive_count; ++p) {
    RbscInstance::Set skip;
    skip.blues = {p};
    skip.reds = {instance.negative_count + p};
    rbsc.sets.push_back(std::move(skip));
  }
  return rbsc;
}

PnpscSolution MapRbscSolutionBack(const PnpscInstance& instance,
                                  const RbscSolution& rbsc_solution) {
  PnpscSolution solution;
  solution.chosen.reserve(rbsc_solution.chosen.size());
  for (size_t s : rbsc_solution.chosen) {
    if (s < instance.sets.size()) solution.chosen.push_back(s);
  }
  return solution;
}

Result<PnpscSolution> SolvePnpsc(
    const PnpscInstance& instance,
    const std::function<Result<RbscSolution>(const RbscInstance&)>& solver) {
  if (Status s = instance.Validate(); !s.ok()) return s;
  RbscInstance rbsc = ReducePnpscToRbsc(instance);
  Result<RbscSolution> rbsc_solution = solver(rbsc);
  if (!rbsc_solution.ok()) return rbsc_solution.status();
  return MapRbscSolutionBack(instance, *rbsc_solution);
}

namespace {

class PnpscExactSearch {
 public:
  PnpscExactSearch(const PnpscInstance& instance, uint64_t budget)
      : instance_(instance), budget_(budget) {
    pos_cover_count_.assign(instance.positive_count, 0);
    neg_cover_count_.assign(instance.negative_count, 0);
    // Largest set index covering each positive (-1 if none): positive p is
    // still coverable by the suffix starting at `index` iff this is >= index.
    max_covering_set_.assign(instance.positive_count, -1);
    for (size_t s = 0; s < instance.sets.size(); ++s) {
      for (size_t p : instance.sets[s].positives) {
        max_covering_set_[p] = static_cast<long>(s);
      }
    }
  }

  bool Run(PnpscSolution* best, double* best_cost) {
    best_cost_ = std::numeric_limits<double>::infinity();
    Descend(0, 0.0);
    if (nodes_ > budget_) return false;
    *best = PnpscSolution{best_chosen_};
    *best_cost = best_cost_;
    return true;
  }

 private:
  // Cost so far = weight of covered negatives. At a leaf add uncovered
  // positives.
  void Descend(size_t index, double covered_negative_weight) {
    if (++nodes_ > budget_) return;
    // Lower bound: covered negatives + positives no remaining set can cover.
    double lb = covered_negative_weight;
    for (size_t p = 0; p < instance_.positive_count; ++p) {
      if (pos_cover_count_[p] > 0) continue;
      if (max_covering_set_[p] < static_cast<long>(index)) {
        lb += instance_.PositiveWeight(p);
      }
    }
    if (lb >= best_cost_) return;
    if (index == instance_.sets.size()) {
      best_cost_ = lb;
      best_chosen_ = chosen_;
      return;
    }
    const PnpscInstance::Set& set = instance_.sets[index];
    // Branch: include the set.
    double marginal = 0.0;
    for (size_t n : set.negatives) {
      if (neg_cover_count_[n] == 0) marginal += instance_.NegativeWeight(n);
    }
    for (size_t p : set.positives) ++pos_cover_count_[p];
    for (size_t n : set.negatives) ++neg_cover_count_[n];
    chosen_.push_back(index);
    Descend(index + 1, covered_negative_weight + marginal);
    chosen_.pop_back();
    for (size_t p : set.positives) --pos_cover_count_[p];
    for (size_t n : set.negatives) --neg_cover_count_[n];
    if (nodes_ > budget_) return;
    // Branch: exclude the set.
    Descend(index + 1, covered_negative_weight);
  }

  const PnpscInstance& instance_;
  uint64_t budget_;
  uint64_t nodes_ = 0;
  std::vector<uint32_t> pos_cover_count_;
  std::vector<uint32_t> neg_cover_count_;
  std::vector<long> max_covering_set_;
  std::vector<size_t> chosen_;
  std::vector<size_t> best_chosen_;
  double best_cost_ = 0.0;
};

}  // namespace

Result<PnpscSolution> SolvePnpscExact(const PnpscInstance& instance,
                                      uint64_t node_budget) {
  if (Status s = instance.Validate(); !s.ok()) return s;
  PnpscExactSearch search(instance, node_budget);
  PnpscSolution best;
  double best_cost = 0.0;
  if (!search.Run(&best, &best_cost)) {
    return Status::FailedPrecondition(
        "exact +-PSC search exceeded node budget");
  }
  return best;
}

}  // namespace delprop
