#ifndef DELPROP_SETCOVER_RED_BLUE_H_
#define DELPROP_SETCOVER_RED_BLUE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace delprop {

/// An instance of the Red-Blue Set Cover problem (Carr, Doddi, Konjevod,
/// Marathe — SODA 2002): choose a sub-collection of sets covering every blue
/// element while minimizing the total weight of covered red elements.
struct RbscInstance {
  /// One set of the collection C, split into its red and blue members
  /// (element ids index into [0, red_count) and [0, blue_count)).
  struct Set {
    std::vector<size_t> reds;
    std::vector<size_t> blues;
  };

  size_t red_count = 0;
  size_t blue_count = 0;
  std::vector<Set> sets;
  /// Per-red-element weights; empty means unit weights.
  std::vector<double> red_weights;

  /// Weight of red element `r` (1.0 when unweighted).
  double RedWeight(size_t r) const {
    return red_weights.empty() ? 1.0 : red_weights[r];
  }

  /// Checks element ids are in range and weights, if given, match red_count.
  Status Validate() const;
};

/// A solution: indices of chosen sets.
struct RbscSolution {
  std::vector<size_t> chosen;
};

/// True if the chosen sets cover every blue element.
bool RbscFeasible(const RbscInstance& instance, const RbscSolution& solution);

/// Total weight of red elements covered by the chosen sets (the objective).
double RbscCost(const RbscInstance& instance, const RbscSolution& solution);

}  // namespace delprop

#endif  // DELPROP_SETCOVER_RED_BLUE_H_
