#include "setcover/red_blue.h"

namespace delprop {

Status RbscInstance::Validate() const {
  if (!red_weights.empty() && red_weights.size() != red_count) {
    return Status::InvalidArgument("red_weights size mismatch");
  }
  for (const Set& set : sets) {
    for (size_t r : set.reds) {
      if (r >= red_count) {
        return Status::OutOfRange("red element id out of range");
      }
    }
    for (size_t b : set.blues) {
      if (b >= blue_count) {
        return Status::OutOfRange("blue element id out of range");
      }
    }
  }
  return Status::Ok();
}

bool RbscFeasible(const RbscInstance& instance, const RbscSolution& solution) {
  std::vector<bool> covered(instance.blue_count, false);
  for (size_t s : solution.chosen) {
    for (size_t b : instance.sets[s].blues) covered[b] = true;
  }
  for (bool c : covered) {
    if (!c) return false;
  }
  return true;
}

double RbscCost(const RbscInstance& instance, const RbscSolution& solution) {
  std::vector<bool> covered(instance.red_count, false);
  double cost = 0.0;
  for (size_t s : solution.chosen) {
    for (size_t r : instance.sets[s].reds) {
      if (!covered[r]) {
        covered[r] = true;
        cost += instance.RedWeight(r);
      }
    }
  }
  return cost;
}

}  // namespace delprop
