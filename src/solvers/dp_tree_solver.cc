#include "solvers/dp_tree_solver.h"

#include <algorithm>
#include <vector>

#include "solvers/tree_common.h"

namespace delprop {
namespace {

constexpr double kInf = 1e17;

double SaturatingAdd(double a, double b) {
  double sum = a + b;
  return sum >= kInf ? kInf : sum;
}

/// Per-node list of (top_depth, weight) pairs with suffix sums, answering
/// "total weight of paths through/ending at this node with top_depth >
/// a_depth" in O(log).
struct SuffixByTopDepth {
  std::vector<size_t> top_depths;  // ascending
  std::vector<double> suffix_weight;

  void Build(std::vector<std::pair<size_t, double>> entries) {
    std::sort(entries.begin(), entries.end());
    top_depths.resize(entries.size());
    suffix_weight.assign(entries.size() + 1, 0.0);
    for (size_t i = entries.size(); i-- > 0;) {
      top_depths[i] = entries[i].first;
      suffix_weight[i] = suffix_weight[i + 1] + entries[i].second;
    }
  }

  /// Σ weight over entries with top_depth > a_depth (a_depth == -1 ⇒ all).
  double WeightAbove(long a_depth) const {
    if (a_depth < 0) return suffix_weight[0];
    size_t i = std::upper_bound(top_depths.begin(), top_depths.end(),
                                static_cast<size_t>(a_depth)) -
               top_depths.begin();
    return suffix_weight[i];
  }

  /// True if any entry has top_depth > a_depth.
  bool AnyAbove(long a_depth) const { return WeightAbove(a_depth) > 0.0; }
};

}  // namespace

Result<VseSolution> DpTreeSolver::Solve(const VseInstance& instance) {
  if (instance.TotalDeletionTuples() == 0 &&
      objective_ == Objective::kStandard) {
    return MakeSolution(instance, DeletionSet(), name());
  }
  Result<TreeStructure> structure =
      BuildTreeStructure(instance, TreeMode::kVerticalAll);
  if (!structure.ok()) return structure.status();
  const DataForest& forest = structure->forest;
  const DataForest::Rooting& rooting = structure->rooting;
  size_t n = forest.node_count();

  // charge(t, a_depth): weight of preserved paths through t not already
  // killed above (top_depth > a_depth).
  std::vector<SuffixByTopDepth> charge(n);
  for (size_t node = 0; node < n; ++node) {
    std::vector<std::pair<size_t, double>> entries;
    entries.reserve(structure->preserved_through[node].size());
    for (size_t p : structure->preserved_through[node]) {
      const auto& path = structure->preserved_paths[p];
      entries.emplace_back(path.top_depth, path.weight);
    }
    charge[node].Build(std::move(entries));
  }
  // penalty(t, a_depth): ΔV paths with bottom t that are NOT yet killed when
  // t is kept (top_depth > a_depth) — infeasible (standard) or their weight
  // (balanced).
  std::vector<SuffixByTopDepth> delta_bottom(n);
  {
    std::vector<std::vector<std::pair<size_t, double>>> per_node(n);
    for (const auto& path : structure->delta_paths) {
      per_node[path.bottom_node].emplace_back(path.top_depth, path.weight);
    }
    for (size_t node = 0; node < n; ++node) {
      delta_bottom[node].Build(std::move(per_node[node]));
    }
  }

  // Children lists and bottom-up order (deeper nodes first).
  std::vector<std::vector<size_t>> children(n);
  for (size_t node = 0; node < n; ++node) {
    if (rooting.parent[node] >= 0) {
      children[static_cast<size_t>(rooting.parent[node])].push_back(node);
    }
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rooting.depth[a] > rooting.depth[b];
  });

  // dp[node][a_index] with a_index = a_depth + 1 ∈ [0, depth(node)];
  // delete_choice[node][a_index] records the optimal decision.
  std::vector<std::vector<double>> dp(n);
  std::vector<std::vector<bool>> choose_delete(n);

  for (size_t node : order) {
    size_t states = rooting.depth[node] + 1;
    dp[node].resize(states);
    choose_delete[node].resize(states);
    for (size_t a_index = 0; a_index < states; ++a_index) {
      long a_depth = static_cast<long>(a_index) - 1;
      // Option 1: delete node.
      double del = charge[node].WeightAbove(a_depth);
      for (size_t c : children[node]) {
        del = SaturatingAdd(del, dp[c][rooting.depth[node] + 1]);
      }
      // Option 2: keep node.
      double keep;
      if (objective_ == Objective::kStandard) {
        keep = delta_bottom[node].AnyAbove(a_depth) ? kInf : 0.0;
      } else {
        keep = delta_bottom[node].WeightAbove(a_depth);
      }
      for (size_t c : children[node]) {
        keep = SaturatingAdd(keep, dp[c][a_index]);
      }
      if (del < keep) {
        dp[node][a_index] = del;
        choose_delete[node][a_index] = true;
      } else {
        dp[node][a_index] = keep;
        choose_delete[node][a_index] = false;
      }
    }
  }

  // Reconstruct: walk top-down from the pivot roots with a_index = 0.
  DeletionSet deletion;
  double total = 0.0;
  std::vector<std::pair<size_t, size_t>> stack;
  stack.reserve(n);  // every node enters the walk exactly once
  for (size_t root : rooting.roots) {
    total = SaturatingAdd(total, dp[root][0]);
    stack.emplace_back(root, 0);
  }
  if (total >= kInf) {
    return Status::Infeasible("no vertical deletion eliminates all of ΔV");
  }
  while (!stack.empty()) {
    auto [node, a_index] = stack.back();
    stack.pop_back();
    bool del = choose_delete[node][a_index];
    if (del) deletion.Insert(forest.node_ref(node));
    size_t child_a_index = del ? rooting.depth[node] + 1 : a_index;
    for (size_t c : children[node]) stack.emplace_back(c, child_a_index);
  }
  return MakeSolution(instance, std::move(deletion), name());
}

}  // namespace delprop
