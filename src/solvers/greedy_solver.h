#ifndef DELPROP_SOLVERS_GREEDY_SOLVER_H_
#define DELPROP_SOLVERS_GREEDY_SOLVER_H_

#include "dp/solver.h"

namespace delprop {

/// Baseline heuristic for the standard objective: while some ΔV tuple
/// survives, pick one of its unhit witnesses and delete the member with the
/// lowest marginal damage; finish with a reverse-delete minimality pass.
/// No approximation guarantee (Theorem 1 rules a constant one out) — used as
/// the baseline the paper's algorithms are compared against.
class GreedySolver : public VseSolver {
 public:
  std::string name() const override { return "greedy"; }
  Result<VseSolution> Solve(const VseInstance& instance) override;
  Result<VseSolution> SolveWith(const VseInstance& instance,
                                ScratchPool* scratch) override;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_GREEDY_SOLVER_H_
