#ifndef DELPROP_SOLVERS_TREE_COMMON_H_
#define DELPROP_SOLVERS_TREE_COMMON_H_

#include <vector>

#include "common/status.h"
#include "dp/vse_instance.h"
#include "hypergraph/data_forest.h"

namespace delprop {

/// How strictly BuildTreeStructure checks the instance's shape.
enum class TreeMode {
  /// Forest + every ΔV witness a path (precondition of Algorithms 1-3; the
  /// forest is rooted at default roots).
  kDeltaPaths,
  /// Forest + a pivot rooting making every witness vertical (precondition of
  /// Algorithm 4).
  kVerticalAll,
};

/// The tree-case view of a VseInstance: the data forest, a rooting, and every
/// view tuple's witness as a node path with precomputed LCA/top/bottom.
struct TreeStructure {
  struct PathInfo {
    ViewTupleId id;
    std::vector<size_t> nodes;
    double weight = 1.0;
    /// Depth of the shallowest node (the path's top end).
    size_t top_depth = 0;
    /// Deepest node of the path.
    size_t bottom_node = 0;
    /// Shallowest node of the path (its LCA in the tree).
    size_t lca_node = 0;
  };

  DataForest forest;
  DataForest::Rooting rooting;
  std::vector<PathInfo> delta_paths;
  std::vector<PathInfo> preserved_paths;
  /// Per forest node: indices into delta_paths / preserved_paths of the
  /// paths containing it.
  std::vector<std::vector<size_t>> delta_through;
  std::vector<std::vector<size_t>> preserved_through;
};

/// Builds the structure, failing with FailedPrecondition when the instance is
/// not a tree case of the requested mode (multiple witnesses, cycles in the
/// data dual graph, non-path ΔV witnesses, or no pivot rooting).
Result<TreeStructure> BuildTreeStructure(const VseInstance& instance,
                                         TreeMode mode);

}  // namespace delprop

#endif  // DELPROP_SOLVERS_TREE_COMMON_H_
