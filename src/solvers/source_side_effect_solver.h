#ifndef DELPROP_SOLVERS_SOURCE_SIDE_EFFECT_SOLVER_H_
#define DELPROP_SOLVERS_SOURCE_SIDE_EFFECT_SOLVER_H_

#include <cstdint>

#include "dp/solver.h"

namespace delprop {

/// The *source* side-effect problem (the Tables II/III counterpart): delete
/// as few base tuples as possible so that every ΔV tuple is eliminated,
/// ignoring damage to other view tuples. For unique-witness views this is
/// classical set cover (elements = ΔV tuples, sets = candidate base tuples);
/// solved greedily (H_n-approximation) or exactly by branch-and-bound.
class SourceSideEffectSolver : public VseSolver {
 public:
  enum class Mode { kGreedy, kExact };

  explicit SourceSideEffectSolver(Mode mode = Mode::kGreedy,
                                  uint64_t node_budget = 20'000'000)
      : mode_(mode), node_budget_(node_budget) {}

  std::string name() const override {
    return mode_ == Mode::kGreedy ? "source-greedy" : "source-exact";
  }
  Result<VseSolution> Solve(const VseInstance& instance) override;

 private:
  Mode mode_;
  uint64_t node_budget_;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_SOURCE_SIDE_EFFECT_SOLVER_H_
