#include "solvers/lowdeg_tree_solver.h"

#include <cmath>
#include <set>

#include "solvers/primal_dual_tree_solver.h"
#include "solvers/tree_common.h"

namespace delprop {

Result<VseSolution> LowDegTreeSolver::Solve(const VseInstance& instance) {
  if (instance.TotalDeletionTuples() == 0) {
    return MakeSolution(instance, DeletionSet(), name());
  }
  Result<TreeStructure> structure =
      BuildTreeStructure(instance, TreeMode::kDeltaPaths);
  if (!structure.ok()) return structure.status();
  const DataForest& forest = structure->forest;
  size_t n = forest.node_count();

  // Red degree of a node: number of preserved view tuples it is joined into.
  std::vector<size_t> red_degree(n);
  std::set<size_t> thresholds;
  for (size_t node = 0; node < n; ++node) {
    red_degree[node] = structure->preserved_through[node].size();
    thresholds.insert(red_degree[node]);
  }

  // Prune set: preserved paths wider than sqrt(‖V‖).
  double width_cut = std::sqrt(static_cast<double>(instance.TotalViewTuples()));
  PrimalDualOptions options;
  options.zero_weight.assign(structure->preserved_paths.size(), false);
  for (size_t p = 0; p < structure->preserved_paths.size(); ++p) {
    if (static_cast<double>(structure->preserved_paths[p].nodes.size()) >
        width_cut) {
      options.zero_weight[p] = true;
    }
  }

  std::optional<VseSolution> best;
  for (size_t tau : thresholds) {
    options.undeletable.assign(n, false);
    for (size_t node = 0; node < n; ++node) {
      if (red_degree[node] > tau) options.undeletable[node] = true;
    }
    Result<std::vector<size_t>> nodes =
        PrimalDualTreeSolver::SolveOnTree(*structure, options);
    if (!nodes.ok()) continue;  // This τ's restriction is infeasible.
    DeletionSet deletion;
    for (size_t node : *nodes) deletion.Insert(forest.node_ref(node));
    VseSolution candidate = MakeSolution(instance, std::move(deletion), name());
    if (!candidate.Feasible()) continue;
    if (!best.has_value() || candidate.Cost() < best->Cost()) {
      best = std::move(candidate);
    }
  }
  if (!best.has_value()) {
    return Status::Infeasible("no threshold produced a feasible deletion");
  }
  return *best;
}

}  // namespace delprop
