#include "solvers/primal_dual_tree_solver.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace delprop {

Result<std::vector<size_t>> PrimalDualTreeSolver::SolveOnTree(
    const TreeStructure& structure, const PrimalDualOptions& options) {
  const DataForest& forest = structure.forest;
  size_t n = forest.node_count();

  auto deletable = [&](size_t node) {
    return options.undeletable.empty() || !options.undeletable[node];
  };

  // Capacity of a node: total weight of preserved paths through it (the dual
  // constraint (8) budget); zero-weight paths contribute nothing.
  std::vector<double> capacity(n, 0.0);
  for (size_t node = 0; node < n; ++node) {
    for (size_t p : structure.preserved_through[node]) {
      if (!options.zero_weight.empty() && options.zero_weight[p]) continue;
      capacity[node] += structure.preserved_paths[p].weight;
    }
  }

  std::vector<double> used(n, 0.0);
  std::vector<bool> deleted(n, false);
  std::vector<size_t> deletion_order;
  deletion_order.reserve(n);  // each node is deleted at most once

  auto path_cut = [&](const TreeStructure::PathInfo& path) {
    return std::any_of(path.nodes.begin(), path.nodes.end(),
                       [&](size_t node) { return deleted[node]; });
  };

  // ΔV paths grouped by LCA, processed bottom-up (deepest LCA first), the
  // GVY order.
  std::vector<size_t> order(structure.delta_paths.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return structure.rooting.depth[structure.delta_paths[a].lca_node] >
           structure.rooting.depth[structure.delta_paths[b].lca_node];
  });

  constexpr double kEps = 1e-9;
  for (size_t index : order) {
    const TreeStructure::PathInfo& path = structure.delta_paths[index];
    if (path_cut(path)) continue;
    // Raise this path's dual as much as possible: δ = min slack over its
    // deletable nodes.
    double delta = std::numeric_limits<double>::infinity();
    for (size_t node : path.nodes) {
      if (!deletable(node)) continue;
      delta = std::min(delta, capacity[node] - used[node]);
    }
    if (delta == std::numeric_limits<double>::infinity()) {
      return Status::Infeasible(
          "a deletion path consists solely of undeletable tuples");
    }
    for (size_t node : path.nodes) {
      if (!deletable(node)) continue;
      used[node] += delta;
      if (!deleted[node] && capacity[node] - used[node] <= kEps) {
        deleted[node] = true;
        deletion_order.push_back(node);
      }
    }
  }

  // Reverse-delete: drop deletions (newest first) that are not needed to
  // keep every ΔV path cut.
  if (options.skip_reverse_delete) {
    std::vector<size_t> all;
    all.reserve(deletion_order.size());
    for (size_t node = 0; node < n; ++node) {
      if (deleted[node]) all.push_back(node);
    }
    return all;
  }
  std::vector<uint32_t> cut_count(structure.delta_paths.size(), 0);
  for (size_t p = 0; p < structure.delta_paths.size(); ++p) {
    for (size_t node : structure.delta_paths[p].nodes) {
      if (deleted[node]) ++cut_count[p];
    }
  }
  for (auto it = deletion_order.rbegin(); it != deletion_order.rend(); ++it) {
    size_t node = *it;
    bool removable = true;
    for (size_t p : structure.delta_through[node]) {
      if (cut_count[p] <= 1) {
        removable = false;
        break;
      }
    }
    if (removable) {
      deleted[node] = false;
      for (size_t p : structure.delta_through[node]) --cut_count[p];
    }
  }

  std::vector<size_t> result;
  result.reserve(deletion_order.size());
  for (size_t node = 0; node < n; ++node) {
    if (deleted[node]) result.push_back(node);
  }
  return result;
}

Result<VseSolution> PrimalDualTreeSolver::Solve(const VseInstance& instance) {
  if (instance.TotalDeletionTuples() == 0) {
    return MakeSolution(instance, DeletionSet(), name());
  }
  Result<TreeStructure> structure =
      BuildTreeStructure(instance, TreeMode::kDeltaPaths);
  if (!structure.ok()) return structure.status();
  Result<std::vector<size_t>> nodes = SolveOnTree(*structure, {});
  if (!nodes.ok()) return nodes.status();
  DeletionSet deletion;
  for (size_t node : *nodes) {
    deletion.Insert(structure->forest.node_ref(node));
  }
  return MakeSolution(instance, std::move(deletion), name());
}

}  // namespace delprop
