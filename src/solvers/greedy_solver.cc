#include "solvers/greedy_solver.h"

#include <limits>

#include "solvers/damage_tracker.h"

namespace delprop {

Result<VseSolution> GreedySolver::Solve(const VseInstance& instance) {
  DamageTracker tracker(instance);

  while (tracker.unkilled_deletion_count() > 0) {
    // Find an unkilled ΔV tuple and one of its unhit witnesses.
    const Witness* target = nullptr;
    for (const ViewTupleId& id : instance.deletion_tuples()) {
      if (tracker.IsKilled(id)) continue;
      for (const Witness& witness : instance.view_tuple(id).witnesses) {
        bool hit = false;
        for (const TupleRef& ref : witness) {
          if (tracker.IsDeleted(ref)) {
            hit = true;
            break;
          }
        }
        if (!hit) {
          target = &witness;
          break;
        }
      }
      if (target != nullptr) break;
    }
    if (target == nullptr) {
      return Status::Internal("unkilled deletion without an unhit witness");
    }
    if (target->empty()) {
      // Guarded at VseInstance construction; kept as a cheap invariant check
      // so a hand-built instance fails loudly instead of indexing into an
      // empty witness.
      return Status::InvalidArgument(
          "deletion target has an empty witness; instance is malformed");
    }
    // Delete the member with the lowest marginal damage.
    TupleRef best = (*target)[0];
    double best_damage = std::numeric_limits<double>::infinity();
    for (const TupleRef& ref : *target) {
      if (tracker.IsDeleted(ref)) continue;
      double damage = tracker.MarginalDamage(ref);
      if (damage < best_damage) {
        best_damage = damage;
        best = ref;
      }
    }
    tracker.Delete(best);
  }

  // Reverse-delete pass: drop deletions that are no longer needed.
  std::vector<TupleRef> deleted = tracker.CurrentDeletion().Sorted();
  for (auto it = deleted.rbegin(); it != deleted.rend(); ++it) {
    tracker.Undelete(*it);
    if (tracker.unkilled_deletion_count() > 0) tracker.Delete(*it);
  }

  return MakeSolution(instance, tracker.CurrentDeletion(), name());
}

}  // namespace delprop
