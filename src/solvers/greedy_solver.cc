#include "solvers/greedy_solver.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "solvers/damage_tracker.h"
#include "solvers/scratch_pool.h"

namespace delprop {

Result<VseSolution> GreedySolver::Solve(const VseInstance& instance) {
  return SolveWith(instance, nullptr);
}

Result<VseSolution> GreedySolver::SolveWith(const VseInstance& instance,
                                            ScratchPool* scratch) {
  std::optional<DamageTracker> local;
  if (scratch == nullptr) local.emplace(instance);
  DamageTracker& tracker =
      scratch != nullptr ? *scratch->AcquireTracker(instance) : *local;
  const CompiledInstance& plan = tracker.plan();
  const std::vector<uint32_t>& targets = plan.deletion_dense();

  // Kills only grow during this phase, so a monotone cursor over ΔV replaces
  // the legacy full rescan (which was quadratic in ‖ΔV‖): once a ΔV tuple is
  // killed it stays killed, and the legacy scan always stopped at the first
  // unkilled tuple — exactly where the cursor stands.
  size_t cursor = 0;
  while (tracker.unkilled_deletion_count() > 0) {
    while (cursor < targets.size() && tracker.IsKilledDense(targets[cursor])) {
      ++cursor;
    }
    if (cursor == targets.size()) {
      return Status::Internal("unkilled deletion without an unhit witness");
    }
    uint32_t target_tuple = targets[cursor];
    // First unhit witness of the target (a witness is hit once any member is
    // deleted) — one ctz on the alive mask under the bit kernels.
    uint32_t witness = tracker.FirstUnhitWitness(target_tuple);
    if (witness == CompiledInstance::kNpos) {
      return Status::Internal("unkilled deletion without an unhit witness");
    }
    uint32_t mbegin = plan.member_begin(witness);
    uint32_t mend = plan.member_end(witness);
    if (mbegin == mend) {
      // Guarded at VseInstance construction; kept as a cheap invariant check
      // so a hand-built instance fails loudly instead of indexing into an
      // empty witness.
      return Status::InvalidArgument(
          "deletion target has an empty witness; instance is malformed");
    }
    // Delete the member with the lowest marginal damage (first wins ties —
    // the raw atom-order member list preserves the legacy tie-break).
    uint32_t best = plan.member_base(mbegin);
    double best_damage = std::numeric_limits<double>::infinity();
    for (uint32_t slot = mbegin; slot < mend; ++slot) {
      uint32_t base = plan.member_base(slot);
      if (tracker.IsDeletedBase(base)) continue;
      double damage = tracker.MarginalDamageBase(base);
      if (damage < best_damage) {
        best_damage = damage;
        best = base;
      }
    }
    tracker.DeleteBase(best);
  }

  // Reverse-delete pass: drop deletions that are no longer needed. Base ids
  // ascend with TupleRefs, so sorting them reproduces the legacy
  // CurrentDeletion().Sorted() order. The snapshot draws on the pooled id
  // buffer when available so steady-state batched requests don't allocate.
  std::vector<uint32_t> local_ids;
  std::vector<uint32_t>& deleted =
      scratch != nullptr ? scratch->IdBuffer() : local_ids;
  deleted.assign(tracker.DeletedBases().begin(), tracker.DeletedBases().end());
  std::sort(deleted.begin(), deleted.end());
  for (auto it = deleted.rbegin(); it != deleted.rend(); ++it) {
    // Read-only droppability probe instead of the Undelete → check →
    // re-Delete dance: the solution is feasible here, so "no killed ΔV
    // tuple revives" is exactly "unkilled stays 0".
    if (tracker.CanDropBase(*it)) tracker.UndeleteBase(*it);
  }

  return MakeSolution(instance, tracker.CurrentDeletion(), name());
}

}  // namespace delprop
