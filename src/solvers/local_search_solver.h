#ifndef DELPROP_SOLVERS_LOCAL_SEARCH_SOLVER_H_
#define DELPROP_SOLVERS_LOCAL_SEARCH_SOLVER_H_

#include <cstdint>

#include "dp/solver.h"

namespace delprop {

/// Local-search baseline (not from the paper — an extra comparator for the
/// benches): start from the greedy solution, then repeatedly try swap moves
/// — replace one deleted tuple by one undeleted candidate — and drop moves,
/// accepting strict improvements, with restarts from randomized greedy
/// orders. No approximation guarantee (Theorem 1 again), but a strong
/// practical baseline to situate the paper's algorithms against.
class LocalSearchSolver : public VseSolver {
 public:
  struct Options {
    uint64_t seed = 1;
    size_t restarts = 4;
    size_t max_rounds_per_restart = 50;
  };

  LocalSearchSolver() : options_(Options{}) {}
  explicit LocalSearchSolver(Options options) : options_(options) {}

  std::string name() const override { return "local-search"; }
  Result<VseSolution> Solve(const VseInstance& instance) override;
  Result<VseSolution> SolveWith(const VseInstance& instance,
                                ScratchPool* scratch) override;

 private:
  Options options_;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_LOCAL_SEARCH_SOLVER_H_
