#include "solvers/scratch_pool.h"

namespace delprop {

DamageTracker* ScratchPool::AcquireTracker(const VseInstance& instance) {
  ++stats_.tracker_acquires;
  if (!tracker_.has_value()) {
    tracker_.emplace(instance);
    ++stats_.tracker_allocs;
  } else if (tracker_->Rebind(instance)) {
    ++stats_.tracker_reuses;
  } else {
    ++stats_.tracker_allocs;
  }
  return &*tracker_;
}

void ScratchPool::ReleasePlans() {
  if (tracker_.has_value()) tracker_->ReleasePlan();
}

}  // namespace delprop
