#ifndef DELPROP_SOLVERS_PRIMAL_DUAL_TREE_SOLVER_H_
#define DELPROP_SOLVERS_PRIMAL_DUAL_TREE_SOLVER_H_

#include "dp/solver.h"
#include "solvers/tree_common.h"

namespace delprop {

/// Extra constraints threaded through the primal-dual core so that
/// LowDegTreeVSE (Algorithm 2) can reuse it.
struct PrimalDualOptions {
  /// Forest nodes that may not be deleted (their capacity is infinite).
  /// Indexed by forest node id; empty means all deletable.
  std::vector<bool> undeletable;
  /// Preserved paths whose weight the LP treats as zero (Algorithm 2's prune
  /// of view tuples wider than sqrt(‖V‖)); indexed by preserved-path id.
  std::vector<bool> zero_weight;
  /// Ablation switch: skip the final reverse-delete pass (Algorithm 1,
  /// lines 7-10). Solutions stay feasible but lose minimality.
  bool skip_reverse_delete = false;
};

/// Algorithm 1, PrimeDualVSE: the Garg-Vazirani-Yannakakis-style primal-dual
/// l-approximation for the forest case (Theorem 3). ΔV witnesses are paths
/// to cut; each path's dual is raised at its LCA in bottom-up order until a
/// tuple on it saturates its capacity Σ_{s∈R, t∈s} w_s; saturated tuples are
/// deleted, and a reverse-delete pass restores minimality.
class PrimalDualTreeSolver : public VseSolver {
 public:
  std::string name() const override { return "primal-dual"; }
  Result<VseSolution> Solve(const VseInstance& instance) override;

  /// The core on a prebuilt tree structure; returns the set of deleted
  /// forest nodes or Infeasible if some ΔV path has no deletable node.
  static Result<std::vector<size_t>> SolveOnTree(
      const TreeStructure& structure, const PrimalDualOptions& options);
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_PRIMAL_DUAL_TREE_SOLVER_H_
