#include "solvers/kill_kernels.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace delprop {
namespace kernels {

namespace {

/// Process-wide mode from DELPROP_KILL_KERNELS, parsed once. Unknown values
/// fall back to kAuto so a typo can never silently pin a path.
KernelMode EnvKernelMode() {
  static const KernelMode mode = [] {
    const char* env = std::getenv("DELPROP_KILL_KERNELS");
    if (env == nullptr) return KernelMode::kAuto;
    if (std::strcmp(env, "scalar") == 0) return KernelMode::kScalar;
    if (std::strcmp(env, "bitset") == 0) return KernelMode::kBitset;
    return KernelMode::kAuto;
  }();
  return mode;
}

thread_local KernelMode tls_override = KernelMode::kAuto;
thread_local bool tls_override_active = false;

}  // namespace

KernelMode RequestedKernelMode() {
  if (tls_override_active) return tls_override;
  return EnvKernelMode();
}

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kBitset:
      return "bitset";
    default:
      return "auto";
  }
}

ScopedKernelOverride::ScopedKernelOverride(KernelMode mode)
    : previous_(tls_override), had_previous_(tls_override_active) {
  tls_override = mode;
  tls_override_active = true;
}

ScopedKernelOverride::~ScopedKernelOverride() {
  tls_override = previous_;
  tls_override_active = had_previous_;
}

double KillKernels::MarginalDamageBase(uint32_t base) const {
  const CompiledInstance& plan = *plan_;
  double damage = 0.0;
  uint32_t end = plan.kill_end(base);
  for (uint32_t slot = plan.kill_begin(base); slot < end; ++slot) {
    uint32_t dense = plan.kill_tuple(slot);
    if (plan.is_deletion(dense)) continue;
    uint64_t la = AliveMask(dense);
    // Newly killed ⇔ some witness is still alive and every alive witness
    // contains the base (the kill mask covers the alive mask).
    if (la != 0 && (la & ~plan.kill_witness_mask(slot)) == 0) {
      damage += plan.weight(dense);
    }
  }
  return damage;
}

bool KillKernels::CanDropBase(uint32_t base) const {
  const CompiledInstance& plan = *plan_;
  const uint64_t* hit = state_->hit_words.data();
  uint32_t end = plan.occ_end(base);
  uint32_t slot = plan.occ_begin(base);
  while (slot < end) {
    uint32_t dense = plan.occ_tuple(slot);
    if (!plan.is_deletion(dense) || !IsKilled(dense)) {
      // Only killed ΔV tuples can make the drop infeasible; skip the run.
      do {
        ++slot;
      } while (slot < end && plan.occ_tuple(slot) == dense);
      continue;
    }
    do {
      uint32_t wid = plan.occ_witness(slot);
      uint32_t first = plan.witness_bit_begin(wid);
      if (RangePopCount(hit, first, plan.witness_bit_end(wid) - first) == 1) {
        return false;  // base is this witness's only deleted member
      }
      ++slot;
    } while (slot < end && plan.occ_tuple(slot) == dense);
  }
  return true;
}

void KillKernels::BuildBranchIndex() {
  const CompiledInstance& plan = *plan_;
  witness_word_count_ = (plan.witness_count() + 63) / 64;
  branch_sizes_.clear();
  size_t delta_witnesses = 0;
  for (uint32_t dense : plan.deletion_dense()) {
    delta_witnesses += plan.tuple_witness_end(dense) -
                       plan.tuple_witness_begin(dense);
  }
  branch_sizes_.reserve(delta_witnesses);
  for (uint32_t dense : plan.deletion_dense()) {
    uint32_t wend = plan.tuple_witness_end(dense);
    for (uint32_t w = plan.tuple_witness_begin(dense); w < wend; ++w) {
      branch_sizes_.push_back(plan.member_end(w) - plan.member_begin(w));
    }
  }
  std::sort(branch_sizes_.begin(), branch_sizes_.end());
  branch_sizes_.erase(std::unique(branch_sizes_.begin(), branch_sizes_.end()),
                      branch_sizes_.end());
  branch_words_.assign(branch_sizes_.size() * witness_word_count_, 0);
  for (uint32_t dense : plan.deletion_dense()) {
    uint32_t wend = plan.tuple_witness_end(dense);
    for (uint32_t w = plan.tuple_witness_begin(dense); w < wend; ++w) {
      uint32_t size = plan.member_end(w) - plan.member_begin(w);
      size_t bucket = static_cast<size_t>(
          std::lower_bound(branch_sizes_.begin(), branch_sizes_.end(), size) -
          branch_sizes_.begin());
      SetBit(branch_words_.data() + bucket * witness_word_count_, w);
    }
  }
  // Packed KpwAfterDelete probe records: for each base, the preserved tuples
  // of its kill row in kill-row (ascending-tuple) order, each with its
  // alive-extract parameters, kill mask, and weight inlined. Same entries,
  // same order, same operands as the CSR walk — only the layout changes.
  kpw_first_.assign(plan.base_count() + 1, 0);
  kpw_entries_.clear();
  kpw_entries_.reserve(plan.kill_begin(plan.base_count()));
  for (uint32_t base = 0; base < plan.base_count(); ++base) {
    kpw_first_[base] = static_cast<uint32_t>(kpw_entries_.size());
    uint32_t end = plan.kill_end(base);
    for (uint32_t slot = plan.kill_begin(base); slot < end; ++slot) {
      uint32_t dense = plan.kill_tuple(slot);
      if (plan.is_deletion(dense)) continue;
      uint32_t wb = plan.tuple_witness_begin(dense);
      kpw_entries_.push_back({wb, plan.tuple_witness_end(dense) - wb,
                              plan.kill_witness_mask(slot),
                              plan.weight(dense)});
    }
  }
  kpw_first_[plan.base_count()] = static_cast<uint32_t>(kpw_entries_.size());
}

bool KillKernels::SwapWouldImprove(uint32_t base, const uint32_t* revived,
                                   uint32_t n, double current_kpw,
                                   double budget) const {
  const CompiledInstance& plan = *plan_;
  // Feasibility first: every revived ΔV tuple must be newly killed by
  // `base`. Each check is a binary search into the base's (ascending) kill
  // row plus one mask test — O(r log k) total, so infeasible candidates are
  // rejected without walking their full kill row.
  uint32_t lo = plan.kill_begin(base);
  uint32_t end = plan.kill_end(base);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t target = revived[i];
    uint32_t hi = end;
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      if (plan.kill_tuple(mid) < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == end || plan.kill_tuple(lo) != target) return false;
    uint64_t la = AliveMask(target);
    if (la == 0 || (la & ~plan.kill_witness_mask(lo)) != 0) return false;
    ++lo;  // revived ids ascend, so the next search starts past this entry
  }
  // Cost: accumulate the post-delete killed preserved weight in the exact
  // order DeleteBase would (ascending tuple), so `acc < budget` is
  // bit-identical to comparing after a real delete + undelete pair.
  double acc = current_kpw;
  for (uint32_t slot = plan.kill_begin(base); slot < end; ++slot) {
    uint32_t dense = plan.kill_tuple(slot);
    if (plan.is_deletion(dense)) continue;
    uint64_t la = AliveMask(dense);
    if (la != 0 && (la & ~plan.kill_witness_mask(slot)) == 0) {
      acc += plan.weight(dense);
    }
  }
  return acc < budget;
}

}  // namespace kernels
}  // namespace delprop
