#ifndef DELPROP_SOLVERS_DAMAGE_TRACKER_H_
#define DELPROP_SOLVERS_DAMAGE_TRACKER_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "dp/vse_instance.h"
#include "plan/compiled_instance.h"
#include "relational/deletion_set.h"
#include "solvers/kill_kernels.h"

namespace delprop {

/// Incremental accounting of which view tuples die as base tuples are
/// deleted, with exact multi-witness semantics: a witness is dead when it
/// loses any member; a view tuple is killed when all of its witnesses are
/// dead. Supports O(occurrences) delete/undelete and marginal-damage queries,
/// shared by the greedy, exact, local-search, and ILP solvers.
///
/// Runs entirely on the instance's CompiledInstance plan. Two state
/// representations back the same contract, chosen per plan at Rebind time:
///   * scalar: per-witness hit counters + per-tuple dead-witness counters
///     (the CSR fallback, always available);
///   * bit-parallel (src/solvers/kill_kernels.h): word-packed member-hit
///     bits, a witness-alive bitset, and a tuple-killed bitset, with
///     popcount marginal queries over the kill rows' witness-incidence
///     masks. Bound whenever `plan->bits_supported()` (witness fan-in ≤ 64
///     per tuple) unless DELPROP_KILL_KERNELS / a ScopedKernelOverride
///     forces the scalar path.
/// Both paths produce bit-identical aggregates and solver decisions — the
/// `bitset-vs-scalar` fuzz oracle holds them to that.
///
/// The TupleRef overloads stay for callers holding refs; the *Base overloads
/// take dense base ids straight from the plan. Refs that occur in no witness
/// ("foreign" refs, possible through the public API) are tracked on a small
/// sorted side list (binary-searched, never scanned on the solver hot path)
/// and are harmless no-ops for damage.
class DamageTracker {
 public:
  explicit DamageTracker(const VseInstance& instance);

  /// Rebinds the tracker to `instance`'s current compiled plan in the
  /// freshly-constructed state, reusing the existing counter/stamp arrays
  /// when the new plan's dimensions match (same shared core, different ΔV —
  /// the batched-serving steady state). Drops the old plan reference BEFORE
  /// acquiring the new one so the instance can recycle a retired plan's
  /// overlay buffers. Returns true when array storage was reused (no
  /// allocation happened).
  bool Rebind(const VseInstance& instance);

  /// Releases the tracker's plan reference without rebinding; the tracker
  /// is unusable until the next Rebind. Engine workers call this before
  /// mutating their replica's ΔV so the retired plan becomes recyclable.
  void ReleasePlan() { plan_.reset(); }

  /// True when this tracker bound the bit-parallel kill kernels.
  bool bit_kernels_active() const { return bits_; }

  /// Deletes `ref` (must not be deleted already). Returns the preserved
  /// weight newly killed by this deletion.
  double Delete(const TupleRef& ref);

  /// Reverts a prior Delete of `ref` (order-independent).
  void Undelete(const TupleRef& ref);

  bool IsDeleted(const TupleRef& ref) const;

  /// Preserved weight that deleting `ref` would newly kill right now.
  double MarginalDamage(const TupleRef& ref) const;

  /// Dense-id variants (ids from plan(); never foreign). Inline — the exact
  /// search's delete/undelete pair runs tens of millions of times per solve.
  double DeleteBase(uint32_t base) {
    assert(!IsDeletedBase(base));
    deleted_pos_[base] = static_cast<uint32_t>(deleted_.size());
    deleted_.push_back(base);
    deleted_stamp_[base] = epoch_;
    if (bits_) {
      return kernels_.DeleteBase(base, &touch_, &unkilled_deletions_,
                                 &killed_preserved_weight_,
                                 &surviving_deletion_weight_);
    }
    return DeleteBaseScalar(base);
  }
  void UndeleteBase(uint32_t base) {
    assert(IsDeletedBase(base));
    uint32_t hole = deleted_pos_[base];
    if (hole + 1 != deleted_.size()) {
      deleted_[hole] = deleted_.back();
      deleted_pos_[deleted_[hole]] = hole;
    }
    deleted_.pop_back();
    deleted_stamp_[base] = 0;
    if (bits_) {
      kernels_.UndeleteBase(base, &unkilled_deletions_,
                            &killed_preserved_weight_,
                            &surviving_deletion_weight_);
      return;
    }
    UndeleteBaseScalar(base);
  }
  bool IsDeletedBase(uint32_t base) const {
    return deleted_stamp_[base] == epoch_;
  }
  double MarginalDamageBase(uint32_t base) const;

  /// Batch marginal damage: out[i] = MarginalDamageBase(bases[i]). `out` is
  /// resized to match.
  void MarginalDamageAll(const std::vector<uint32_t>& bases,
                         std::vector<double>* out) const;

  /// True iff undeleting `base` (currently deleted) would not revive any
  /// currently-killed ΔV tuple — i.e. the drop keeps feasibility. Read-only
  /// twin of the Undelete → check → re-Delete dance.
  bool CanDropBase(uint32_t base) const;

  /// Collects the currently-unkilled ΔV tuples in `base`'s kill row
  /// (ascending) into `out` (cleared first). After undeleting one member of
  /// a feasible solution these are exactly the revived tuples.
  void CollectUnkilledDeletions(uint32_t base, std::vector<uint32_t>* out) const;

  /// Exchange probe: would deleting `base` kill every tuple in `revived`
  /// (currently-unkilled ΔV tuples, ascending) and leave the killed
  /// preserved weight strictly below `budget`? The cost accumulates from
  /// killed_preserved_weight() in DeleteBase's addition order, so the
  /// comparison is bit-identical to a real Delete → compare → Undelete.
  bool SwapWouldImprove(uint32_t base, const std::vector<uint32_t>& revived,
                        double budget) const;

  /// The killed_preserved_weight() this tracker would report after
  /// DeleteBase(base) (`base` not deleted), accumulated from the current
  /// value in DeleteBase's own addition order (ascending newly-killed
  /// tuple) — bit-identical to a real Delete → read → Undelete, so
  /// branch-and-bound entry prunes can run without mutating state. Inline:
  /// one call per exact-search node.
  double KpwAfterDeleteBase(uint32_t base) const {
    if (bits_) return kernels_.KpwAfterDelete(base, killed_preserved_weight_);
    return KpwAfterDeleteBaseScalar(base);
  }

  /// Number of ΔV tuples not yet killed.
  size_t unkilled_deletion_count() const { return unkilled_deletions_; }

  /// Weight of preserved tuples killed so far.
  double killed_preserved_weight() const { return killed_preserved_weight_; }

  /// Weight of ΔV tuples not yet killed (for the balanced objective).
  double surviving_deletion_weight() const {
    return surviving_deletion_weight_;
  }

  bool IsKilled(const ViewTupleId& id) const {
    return IsKilledDense(plan_->DenseOf(id));
  }
  bool IsKilledDense(uint32_t dense) const {
    if (bits_) return kernels::TestBit(kstate_.killed_words.data(), dense);
    return dead_witnesses_[dense] == plan_->tuple_witness_count(dense);
  }

  /// Deleted-member count of witness `wid` (0 = the witness is alive).
  uint32_t witness_hits(uint32_t wid) const {
    if (bits_) return kernels_.WitnessHits(wid);
    return witness_hits_[wid];
  }

  /// Dead-witness count of view tuple `dense` (== its witness count exactly
  /// when the tuple is killed). Lets bounding code derive the number of
  /// still-unhit witnesses without rescanning the witness row.
  uint32_t dead_witness_count(uint32_t dense) const {
    if (bits_) return kernels_.DeadWitnessCount(dense);
    return dead_witnesses_[dense];
  }

  /// Bit path only (bit_kernels_active()): alive-witness mask of `dense`
  /// (bit j set ⇔ witness tuple_witness_begin(dense) + j is unhit). Pairs
  /// with the plan's kill_witness_mask for word-level marginal tests in
  /// bounding code (ilp_solver's pack charge walk).
  uint64_t AliveMaskDense(uint32_t dense) const {
    return kernels_.AliveMask(dense);
  }

  /// Branch pick for the exact search: the first witness — scanning unkilled
  /// ΔV tuples ascending, then their unhit witnesses ascending — whose raw
  /// member count equals the minimum over that whole scan, or
  /// CompiledInstance::kNpos when every ΔV tuple is killed. The scalar path
  /// runs that scan literally (with the legacy static-min early stop); the
  /// bit path answers from a per-size witness-bitmask index in a few word
  /// ANDs (kernels::KillKernels::SelectBranchWitness — equivalence argued
  /// there). Non-const only because the bit path builds its index lazily.
  uint32_t SelectBranchWitness();

  /// First still-unhit witness of `dense` in witness-id order, or
  /// CompiledInstance::kNpos when every witness is dead.
  uint32_t FirstUnhitWitness(uint32_t dense) const {
    if (bits_) {
      uint64_t la = kernels_.AliveMask(dense);
      if (la == 0) return CompiledInstance::kNpos;
      return plan_->tuple_witness_begin(dense) + kernels::Ctz64(la);
    }
    uint32_t end = plan_->tuple_witness_end(dense);
    for (uint32_t w = plan_->tuple_witness_begin(dense); w < end; ++w) {
      // delprop-lint: scalar-kill-loop-ok scalar fallback path
      if (witness_hits_[w] == 0) return w;
    }
    return CompiledInstance::kNpos;
  }

  /// Calls fn(wid) for every still-unhit witness of `dense`, ascending.
  /// fn returns false to stop early.
  template <typename Fn>
  void ForEachUnhitWitness(uint32_t dense, Fn&& fn) const {
    if (bits_) {
      uint32_t wb = plan_->tuple_witness_begin(dense);
      uint64_t la = kernels_.AliveMask(dense);
      while (la != 0) {
        if (!fn(wb + kernels::Ctz64(la))) return;
        la &= la - 1;
      }
      return;
    }
    uint32_t end = plan_->tuple_witness_end(dense);
    for (uint32_t w = plan_->tuple_witness_begin(dense); w < end; ++w) {
      // delprop-lint: scalar-kill-loop-ok scalar fallback path
      if (witness_hits_[w] != 0) continue;
      if (!fn(w)) return;
    }
  }

  /// Calls fn(dense) for every not-yet-killed ΔV tuple, ascending (the
  /// deletion_dense order). fn returns false to stop early. The bit path
  /// scans deletion_words & ~killed_words one word at a time.
  template <typename Fn>
  void ForEachUnkilledDeletion(Fn&& fn) const {
    if (bits_) {
      const std::vector<uint64_t>& del = plan_->deletion_words();
      const uint64_t* killed = kstate_.killed_words.data();
      for (size_t i = 0; i < del.size(); ++i) {
        uint64_t w = del[i] & ~killed[i];
        while (w != 0) {
          uint32_t dense =
              static_cast<uint32_t>(i << 6) + kernels::Ctz64(w);
          if (!fn(dense)) return;
          w &= w - 1;
        }
      }
      return;
    }
    for (uint32_t dense : plan_->deletion_dense()) {
      if (IsKilledDense(dense)) continue;
      if (!fn(dense)) return;
    }
  }

  /// Snapshot of the current deletion as a DeletionSet.
  DeletionSet CurrentDeletion() const;

  /// Deleted interned bases, in deletion order (excludes foreign refs).
  const std::vector<uint32_t>& DeletedBases() const { return deleted_; }

  /// Number of deleted base tuples (interned + foreign). O(1) — two vector
  /// sizes; never scans the foreign side list.
  size_t deleted_count() const { return deleted_.size() + foreign_.size(); }

  /// Reverts to the freshly-constructed state: restores the aggregate
  /// weights to their exact initial values (no floating-point drift from
  /// incremental rollback) and bumps the epoch so the deleted-stamp array
  /// clears in O(1). The per-witness/per-tuple state rolls back sparsely —
  /// O(touched) — when the touch log stayed under its caps, and falls back
  /// to the O(‖V‖ + witnesses) full zeroing otherwise. Lets restart-style
  /// callers (local search) reuse one tracker cheaply.
  void Reset();

  const CompiledInstance& plan() const { return *plan_; }

 private:
  /// Binds/clears whichever state representation `want_bits` selects;
  /// returns true when array storage was reused.
  bool PrepareState(bool want_bits);
  /// Rolls the active representation back to pristine (sparse when the
  /// touch log allows), clears the log, and restamps `state_core_`.
  void ClearState();
  double DeleteBaseScalar(uint32_t base);
  void UndeleteBaseScalar(uint32_t base);
  double MarginalDamageBaseScalar(uint32_t base) const;
  double KpwAfterDeleteBaseScalar(uint32_t base) const;
  bool CanDropBaseScalar(uint32_t base) const;
  bool SwapWouldImproveScalar(uint32_t base, const uint32_t* revived,
                              uint32_t n, double budget) const;

  std::shared_ptr<const CompiledInstance> plan_;

  // Which representation is live (chosen per plan in Rebind).
  bool bits_ = false;
  kernels::KillKernels kernels_;
  kernels::KernelState kstate_;
  // Scalar fallback state.
  // Per witness: number of deleted (unique) members.
  std::vector<uint32_t> witness_hits_;
  // Per view tuple: number of dead witnesses.
  std::vector<uint32_t> dead_witnesses_;
  // Transition log driving the sparse Reset/Rebind rollback (both paths).
  kernels::TouchLog touch_;
  // Core whose layout the dirty state (and touch log) was produced under;
  // a sparse rollback is only sound against the same core.
  const void* state_core_ = nullptr;
  // Tuples with an empty witness row are killed from the start (scalar:
  // dead == total == 0); the bit path must seed their killed bits after
  // every full clear. Cached per core; empty on every real workload.
  std::vector<uint32_t> zero_witness_tuples_;
  const void* zero_witness_core_ = nullptr;

  // Per base: stamp == epoch_ iff deleted; epoch bump clears all in O(1).
  std::vector<uint32_t> deleted_stamp_;
  // Per base: position in deleted_ (valid only while stamped).
  std::vector<uint32_t> deleted_pos_;
  std::vector<uint32_t> deleted_;
  // Refs not interned in the plan (occur in no witness); rare, test-only in
  // practice. Kept sorted so IsDeleted/Undelete are binary searches —
  // bounded even if a script piles up foreign refs.
  std::vector<TupleRef> foreign_;

  uint32_t epoch_ = 1;
  size_t unkilled_deletions_ = 0;
  double killed_preserved_weight_ = 0.0;
  double surviving_deletion_weight_ = 0.0;
  // Exact initial aggregates, restored by Reset().
  size_t initial_unkilled_deletions_ = 0;
  double initial_surviving_deletion_weight_ = 0.0;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_DAMAGE_TRACKER_H_
