#ifndef DELPROP_SOLVERS_DAMAGE_TRACKER_H_
#define DELPROP_SOLVERS_DAMAGE_TRACKER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "dp/vse_instance.h"
#include "plan/compiled_instance.h"
#include "relational/deletion_set.h"

namespace delprop {

/// Incremental accounting of which view tuples die as base tuples are
/// deleted, with exact multi-witness semantics: a witness is dead when it
/// loses any member; a view tuple is killed when all of its witnesses are
/// dead. Supports O(occurrences) delete/undelete and marginal-damage queries,
/// shared by the greedy, exact, and local-search solvers.
///
/// Runs entirely on the instance's CompiledInstance plan: membership is an
/// epoch-stamped dense array, occurrence walks are CSR-row scans — no hashing
/// on any hot path. The TupleRef overloads stay for callers holding refs; the
/// *Base overloads take dense base ids straight from the plan. Refs that
/// occur in no witness ("foreign" refs, possible through the public API) are
/// tracked on a small side list and are harmless no-ops for damage.
class DamageTracker {
 public:
  explicit DamageTracker(const VseInstance& instance);

  /// Rebinds the tracker to `instance`'s current compiled plan in the
  /// freshly-constructed state, reusing the existing counter/stamp arrays
  /// when the new plan's dimensions match (same shared core, different ΔV —
  /// the batched-serving steady state). Drops the old plan reference BEFORE
  /// acquiring the new one so the instance can recycle a retired plan's
  /// overlay buffers. Returns true when array storage was reused (no
  /// allocation happened).
  bool Rebind(const VseInstance& instance);

  /// Releases the tracker's plan reference without rebinding; the tracker
  /// is unusable until the next Rebind. Engine workers call this before
  /// mutating their replica's ΔV so the retired plan becomes recyclable.
  void ReleasePlan() { plan_.reset(); }

  /// Deletes `ref` (must not be deleted already). Returns the preserved
  /// weight newly killed by this deletion.
  double Delete(const TupleRef& ref);

  /// Reverts a prior Delete of `ref` (order-independent).
  void Undelete(const TupleRef& ref);

  bool IsDeleted(const TupleRef& ref) const;

  /// Preserved weight that deleting `ref` would newly kill right now.
  double MarginalDamage(const TupleRef& ref) const;

  /// Dense-id variants (ids from plan(); never foreign).
  double DeleteBase(uint32_t base);
  void UndeleteBase(uint32_t base);
  bool IsDeletedBase(uint32_t base) const {
    return deleted_stamp_[base] == epoch_;
  }
  double MarginalDamageBase(uint32_t base) const;

  /// Number of ΔV tuples not yet killed.
  size_t unkilled_deletion_count() const { return unkilled_deletions_; }

  /// Weight of preserved tuples killed so far.
  double killed_preserved_weight() const { return killed_preserved_weight_; }

  /// Weight of ΔV tuples not yet killed (for the balanced objective).
  double surviving_deletion_weight() const {
    return surviving_deletion_weight_;
  }

  bool IsKilled(const ViewTupleId& id) const {
    return IsKilledDense(plan_->DenseOf(id));
  }
  bool IsKilledDense(uint32_t dense) const {
    return dead_witnesses_[dense] == plan_->tuple_witness_count(dense);
  }

  /// Deleted-member count of witness `wid` (0 = the witness is alive).
  uint32_t witness_hits(uint32_t wid) const { return witness_hits_[wid]; }

  /// Dead-witness count of view tuple `dense` (== its witness count exactly
  /// when the tuple is killed). Lets bounding code derive the number of
  /// still-unhit witnesses without rescanning the witness row.
  uint32_t dead_witness_count(uint32_t dense) const {
    return dead_witnesses_[dense];
  }

  /// Snapshot of the current deletion as a DeletionSet.
  DeletionSet CurrentDeletion() const;

  /// Deleted interned bases, in deletion order (excludes foreign refs).
  const std::vector<uint32_t>& DeletedBases() const { return deleted_; }

  /// Number of deleted base tuples (interned + foreign).
  size_t deleted_count() const { return deleted_.size() + foreign_.size(); }

  /// Reverts to the freshly-constructed state in O(‖V‖ + witnesses): zeroes
  /// the per-witness/per-tuple counters, restores the aggregate weights to
  /// their exact initial values (no floating-point drift from incremental
  /// rollback), and bumps the epoch so the deleted-stamp array clears in
  /// O(1). Lets restart-style callers (local search) reuse one tracker.
  void Reset();

  const CompiledInstance& plan() const { return *plan_; }

 private:
  std::shared_ptr<const CompiledInstance> plan_;

  // Per witness: number of deleted (unique) members.
  std::vector<uint32_t> witness_hits_;
  // Per view tuple: number of dead witnesses.
  std::vector<uint32_t> dead_witnesses_;
  // Per base: stamp == epoch_ iff deleted; epoch bump clears all in O(1).
  std::vector<uint32_t> deleted_stamp_;
  // Per base: position in deleted_ (valid only while stamped).
  std::vector<uint32_t> deleted_pos_;
  std::vector<uint32_t> deleted_;
  // Refs not interned in the plan (occur in no witness); rare, test-only in
  // practice. Kept so Delete/Undelete of arbitrary refs stays harmless.
  std::vector<TupleRef> foreign_;

  uint32_t epoch_ = 1;
  size_t unkilled_deletions_ = 0;
  double killed_preserved_weight_ = 0.0;
  double surviving_deletion_weight_ = 0.0;
  // Exact initial aggregates, restored by Reset().
  size_t initial_unkilled_deletions_ = 0;
  double initial_surviving_deletion_weight_ = 0.0;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_DAMAGE_TRACKER_H_
