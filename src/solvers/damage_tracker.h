#ifndef DELPROP_SOLVERS_DAMAGE_TRACKER_H_
#define DELPROP_SOLVERS_DAMAGE_TRACKER_H_

#include <unordered_map>
#include <vector>

#include "dp/vse_instance.h"
#include "relational/deletion_set.h"

namespace delprop {

/// Incremental accounting of which view tuples die as base tuples are
/// deleted, with exact multi-witness semantics: a witness is dead when it
/// loses any member; a view tuple is killed when all of its witnesses are
/// dead. Supports O(occurrences) delete/undelete and marginal-damage queries,
/// shared by the greedy and exact solvers.
class DamageTracker {
 public:
  explicit DamageTracker(const VseInstance& instance);

  /// Deletes `ref` (must not be deleted already). Returns the preserved
  /// weight newly killed by this deletion.
  double Delete(const TupleRef& ref);

  /// Reverts a prior Delete of `ref` (order-independent).
  void Undelete(const TupleRef& ref);

  bool IsDeleted(const TupleRef& ref) const;

  /// Preserved weight that deleting `ref` would newly kill right now.
  double MarginalDamage(const TupleRef& ref) const;

  /// Number of ΔV tuples not yet killed.
  size_t unkilled_deletion_count() const { return unkilled_deletions_; }

  /// Weight of preserved tuples killed so far.
  double killed_preserved_weight() const { return killed_preserved_weight_; }

  /// Weight of ΔV tuples not yet killed (for the balanced objective).
  double surviving_deletion_weight() const {
    return surviving_deletion_weight_;
  }

  bool IsKilled(const ViewTupleId& id) const;

  /// Snapshot of the current deletion as a DeletionSet.
  DeletionSet CurrentDeletion() const;

  /// Number of deleted base tuples.
  size_t deleted_count() const { return deleted_.size(); }

 private:
  struct TupleState {
    ViewTupleId id;
    size_t witness_count = 0;
    size_t dead_witnesses = 0;
    bool is_deletion = false;
    double weight = 1.0;
  };

  // Dense id spaces: view tuples and witnesses.
  size_t DenseViewTuple(const ViewTupleId& id) const;

  const VseInstance* instance_;
  std::vector<TupleState> tuples_;
  std::vector<size_t> view_tuple_base_;  // per view: first dense id
  std::vector<uint32_t> witness_hits_;   // per witness: deleted members
  std::vector<size_t> witness_owner_;    // per witness: dense view tuple
  // Per base tuple: (dense view tuple, witness id) pairs sorted by tuple.
  std::unordered_map<TupleRef, std::vector<std::pair<size_t, size_t>>,
                     TupleRefHash>
      occurrences_;
  // The current deletion as a dense list plus each member's position in it,
  // so Undelete is O(1) swap-and-pop instead of an O(k) list scan (which
  // made reverse-delete passes quadratic).
  std::vector<TupleRef> deleted_;
  std::unordered_map<TupleRef, size_t, TupleRefHash> deleted_index_;

  size_t unkilled_deletions_ = 0;
  double killed_preserved_weight_ = 0.0;
  double surviving_deletion_weight_ = 0.0;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_DAMAGE_TRACKER_H_
