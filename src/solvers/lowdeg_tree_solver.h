#ifndef DELPROP_SOLVERS_LOWDEG_TREE_SOLVER_H_
#define DELPROP_SOLVERS_LOWDEG_TREE_SOLVER_H_

#include "dp/solver.h"

namespace delprop {

/// Algorithms 2 + 3, LowDegTreeVSE(Two): the 2·sqrt(‖V‖)-approximation for
/// the forest case (Theorem 4). For every red-degree threshold τ:
///  * tuples joined into more than τ preserved view tuples become
///    undeletable (Algorithm 2, step 1);
///  * preserved view tuples wider than sqrt(‖V‖) are pruned from the LP
///    (steps 6-7) — they are few (Claim 2: fewer than sqrt(‖V‖)·τ);
///  * PrimeDualVSE runs on the reduced instance.
/// The best feasible solution over all τ (by true cost) is returned
/// (Algorithm 3's outer loop).
class LowDegTreeSolver : public VseSolver {
 public:
  std::string name() const override { return "lowdeg-tree"; }
  Result<VseSolution> Solve(const VseInstance& instance) override;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_LOWDEG_TREE_SOLVER_H_
