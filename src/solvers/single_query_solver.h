#ifndef DELPROP_SOLVERS_SINGLE_QUERY_SOLVER_H_
#define DELPROP_SOLVERS_SINGLE_QUERY_SOLVER_H_

#include "dp/solver.h"

namespace delprop {

/// The polynomial special case the prior work settled (Cong et al. 2012,
/// Table IV): a single view tuple deletion over key-preserving views. The
/// unique witness makes the optimum the witness member with the lowest
/// damage — computable in linear time (deleting more than one tuple can only
/// add damage). Fails with FailedPrecondition when ‖ΔV‖ ≠ 1 or witnesses are
/// not unique; the general solvers cover those cases (and must, per
/// Theorem 1, pay for it).
class SingleQuerySolver : public VseSolver {
 public:
  std::string name() const override { return "single-deletion"; }
  Result<VseSolution> Solve(const VseInstance& instance) override;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_SINGLE_QUERY_SOLVER_H_
