#ifndef DELPROP_SOLVERS_SCRATCH_POOL_H_
#define DELPROP_SOLVERS_SCRATCH_POOL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "solvers/damage_tracker.h"

namespace delprop {

/// Reusable per-worker solver scratch state for batched serving: one
/// DamageTracker (rebound per request via the epoch-stamped reset, so the
/// big counter/stamp arrays are allocated once and reused for every
/// subsequent request over the same instance shape) plus a generic id
/// buffer for solver-local lists. Not thread-safe — each engine worker owns
/// one pool; solvers receive it through `VseSolver::SolveWith` and must
/// treat AcquireTracker as invalidating any tracker previously acquired
/// from the same pool (there is exactly one underlying tracker).
class ScratchPool {
 public:
  struct Stats {
    size_t tracker_acquires = 0;
    /// Acquisitions that allocated tracker storage (first use, or a plan
    /// with different dimensions). Steady state: exactly 1 per pool.
    size_t tracker_allocs = 0;
    /// Acquisitions that reused the existing storage (no allocation).
    size_t tracker_reuses = 0;
  };

  /// Returns the pooled tracker bound to `instance`'s current plan in the
  /// freshly-constructed state. Invalidates any previously-acquired tracker.
  DamageTracker* AcquireTracker(const VseInstance& instance);

  /// Drops the pooled tracker's plan reference (keeping its storage) so the
  /// instance can recycle the retired plan's overlay buffers. Call before
  /// mutating the instance's ΔV for the next request.
  void ReleasePlans();

  /// A reusable id buffer for solver-local lists (e.g. the greedy solver's
  /// reverse-delete snapshot). Contents are undefined across requests.
  std::vector<uint32_t>& IdBuffer() { return ids_; }

  const Stats& stats() const { return stats_; }

 private:
  std::optional<DamageTracker> tracker_;
  std::vector<uint32_t> ids_;
  Stats stats_;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_SCRATCH_POOL_H_
