#include "solvers/exact_solver.h"

#include <limits>
#include <optional>

#include "solvers/damage_tracker.h"
#include "solvers/greedy_solver.h"
#include "solvers/scratch_pool.h"

namespace delprop {
namespace {

// The searches borrow their tracker (freshly bound to the instance's plan)
// so batched callers can hand in pooled storage; sequential callers pass a
// local one.
class StandardSearch {
 public:
  StandardSearch(const VseInstance& instance, DamageTracker& tracker,
                 uint64_t budget,
                 size_t max_deletions = std::numeric_limits<size_t>::max())
      : instance_(instance),
        tracker_(tracker),
        budget_(budget),
        max_deletions_(max_deletions) {}

  void Seed(DeletionSet deletion, double cost) {
    best_deletion_ = std::move(deletion);
    best_cost_ = cost;
    found_ = true;
  }

  bool Run() {
    Descend();
    return nodes_ <= budget_;
  }

  bool found() const { return found_; }
  const DeletionSet& best_deletion() const { return best_deletion_; }
  double best_cost() const { return best_cost_; }
  uint64_t nodes() const { return nodes_; }

  /// Certified lower bound on the optimum after an incomplete run: every
  /// subtree abandoned by the budget cut has its root's killed-preserved
  /// weight as a valid bound (the killed weight only grows along a branch),
  /// and every other subtree was either explored or pruned at >= best_cost_.
  double CertifiedLowerBound() const {
    return std::min(best_cost_, frontier_low_);
  }

 private:
  // Root-node entry: the legacy per-node prologue. Child entries run the
  // same checks, hoisted into the parent's member loop (Expand) so a child
  // that prunes at its killed-weight check is counted but never pays the
  // delete/undelete pair.
  void Descend() {
    if (++nodes_ > budget_) {
      CutFrontier();
      return;
    }
    if (tracker_.killed_preserved_weight() >= best_cost_) return;
    Expand();
  }

  // Node body, entry checks already passed. Picks the unkilled ΔV tuple and
  // unhit witness with the fewest raw members; branches on deleting each
  // member. The pick is delegated to the tracker
  // (DamageTracker::SelectBranchWitness), which mirrors the legacy scan
  // exactly — same scan order, same strict-< first-min witness choice, raw
  // member lists with duplicates. Child entry checks run here in legacy
  // order (count node, budget cut, killed-weight prune) on the tracker's
  // bit-identical KpwAfterDeleteBase probe, so node counts, budget
  // boundaries, prune decisions, and frontier-cut values are all unchanged.
  void Expand() {
    const CompiledInstance& plan = tracker_.plan();
    uint32_t branch_witness = tracker_.SelectBranchWitness();
    if (branch_witness == CompiledInstance::kNpos) {
      // All ΔV tuples killed: feasible leaf, strictly better by the prune.
      best_cost_ = tracker_.killed_preserved_weight();
      best_deletion_ = tracker_.CurrentDeletion();
      found_ = true;
      return;
    }
    if (tracker_.deleted_count() >= max_deletions_) return;  // cap reached
    uint32_t mend = plan.member_end(branch_witness);
    for (uint32_t slot = plan.member_begin(branch_witness); slot < mend;
         ++slot) {
      uint32_t base = plan.member_base(slot);
      if (tracker_.IsDeletedBase(base)) continue;
      if (++nodes_ > budget_) {
        // The legacy child cut saw the post-delete state; then the parent
        // cut saw this node's state after the undelete. Replicate both.
        CutFrontierValue(tracker_.KpwAfterDeleteBase(base));
        CutFrontier();
        return;
      }
      if (tracker_.KpwAfterDeleteBase(base) >= best_cost_) continue;
      tracker_.DeleteBase(base);
      Expand();
      tracker_.UndeleteBase(base);
      if (nodes_ > budget_) {
        CutFrontier();  // untried sibling subtrees root at this node's state
        return;
      }
    }
  }

  void CutFrontier() { CutFrontierValue(tracker_.killed_preserved_weight()); }
  void CutFrontierValue(double kpw) {
    frontier_low_ = std::min(frontier_low_, kpw);
  }

  const VseInstance& instance_;
  DamageTracker& tracker_;
  uint64_t budget_;
  size_t max_deletions_;
  uint64_t nodes_ = 0;
  DeletionSet best_deletion_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  double frontier_low_ = std::numeric_limits<double>::infinity();
  bool found_ = false;
};

}  // namespace

Result<VseSolution> ExactSolver::Solve(const VseInstance& instance) {
  return SolveWith(instance, nullptr);
}

namespace {

/// Stamps a search's optimality certificate onto `solution`: proven-optimal
/// bounds when the search completed, the incumbent plus the strongest
/// certified frontier bound when the node budget cut it short.
void StampGap(VseSolution& solution, double upper, bool complete,
              double incomplete_lower, uint64_t nodes) {
  solution.gap.has_bound = true;
  solution.gap.optimal = complete;
  solution.gap.upper_bound = upper;
  solution.gap.lower_bound = complete ? upper
                                      : std::min(incomplete_lower, upper);
  solution.gap.nodes = nodes;
  solution.gap.budget_hit = !complete;
}

}  // namespace

Result<VseSolution> ExactSolver::SolveWith(const VseInstance& instance,
                                           ScratchPool* scratch) {
  if (instance.TotalDeletionTuples() == 0) {
    VseSolution solution = MakeSolution(instance, DeletionSet(), name());
    StampGap(solution, 0.0, /*complete=*/true, 0.0, 0);
    return solution;
  }
  GreedySolver greedy;
  Result<VseSolution> seed = greedy.SolveWith(instance, scratch);
  // Acquire the search tracker after the greedy seed: the pool holds one
  // tracker, and re-acquiring rebinds it to the freshly-constructed state.
  std::optional<DamageTracker> local;
  if (scratch == nullptr) local.emplace(instance);
  DamageTracker& tracker =
      scratch != nullptr ? *scratch->AcquireTracker(instance) : *local;
  StandardSearch search(instance, tracker, node_budget_);
  if (seed.ok() && seed->Feasible()) {
    search.Seed(seed->deletion, seed->Cost());
  }
  bool complete = search.Run();
  if (!search.found()) {
    if (!complete) {
      return Status::FailedPrecondition(
          "exact search exceeded node budget before finding any feasible "
          "solution");
    }
    return Status::Infeasible("no deletion eliminates all of ΔV");
  }
  // Budget exhaustion with an incumbent in hand is an anytime result, not a
  // failure: return the best feasible solution found with a certified gap.
  VseSolution solution = MakeSolution(instance, search.best_deletion(), name());
  StampGap(solution, search.best_cost(), complete,
           search.CertifiedLowerBound(), search.nodes());
  return solution;
}

Result<VseSolution> BoundedExactSolver::Solve(const VseInstance& instance) {
  if (instance.TotalDeletionTuples() == 0) {
    VseSolution solution = MakeSolution(instance, DeletionSet(), name());
    StampGap(solution, 0.0, /*complete=*/true, 0.0, 0);
    return solution;
  }
  DamageTracker tracker(instance);
  StandardSearch search(instance, tracker, node_budget_, max_deletions_);
  // No greedy seed: the greedy may overshoot the cardinality cap, and a
  // seed above the cap would not be a certificate of feasibility.
  bool complete = search.Run();
  if (!search.found()) {
    if (!complete) {
      return Status::FailedPrecondition(
          "bounded exact search exceeded node budget before finding any "
          "feasible solution");
    }
    return Status::Infeasible(
        "no deletion of at most " + std::to_string(max_deletions_) +
        " tuples eliminates all of ΔV");
  }
  // The gap refers to the cardinality-capped optimum (the solver's own
  // objective domain), not the unconstrained one.
  VseSolution solution = MakeSolution(instance, search.best_deletion(), name());
  StampGap(solution, search.best_cost(), complete,
           search.CertifiedLowerBound(), search.nodes());
  return solution;
}

namespace {

class BalancedSearch {
 public:
  BalancedSearch(const VseInstance& instance, DamageTracker& tracker,
                 uint64_t budget)
      : instance_(instance), tracker_(tracker), budget_(budget) {}

  bool Run() {
    // The empty deletion is always feasible for the balanced objective.
    best_cost_ = tracker_.killed_preserved_weight() +
                 tracker_.surviving_deletion_weight();
    best_deletion_ = DeletionSet();
    Descend(0);
    return nodes_ <= budget_;
  }

  const DeletionSet& best_deletion() const { return best_deletion_; }
  double best_cost() const { return best_cost_; }
  uint64_t nodes() const { return nodes_; }

  /// Certified lower bound after an incomplete run; see StandardSearch.
  /// A subtree's balanced cost is at least its root's killed-preserved
  /// weight (the killed weight is monotone, surviving weight nonnegative).
  double CertifiedLowerBound() const {
    return std::min(best_cost_, frontier_low_);
  }

 private:
  void Descend(size_t index) {
    if (++nodes_ > budget_) {
      CutFrontier();
      return;
    }
    // Killed-preserved weight only grows along a branch.
    if (tracker_.killed_preserved_weight() >= best_cost_) return;
    double cost = tracker_.killed_preserved_weight() +
                  tracker_.surviving_deletion_weight();
    if (cost < best_cost_) {
      best_cost_ = cost;
      best_deletion_ = tracker_.CurrentDeletion();
    }
    const std::vector<uint32_t>& candidates =
        tracker_.plan().candidate_bases();
    if (index == candidates.size()) return;
    // Branch: delete candidate.
    tracker_.DeleteBase(candidates[index]);
    Descend(index + 1);
    tracker_.UndeleteBase(candidates[index]);
    if (nodes_ > budget_) {
      CutFrontier();  // the keep-branch subtree roots at this node's state
      return;
    }
    // Branch: keep candidate.
    Descend(index + 1);
  }

  void CutFrontier() {
    frontier_low_ = std::min(frontier_low_, tracker_.killed_preserved_weight());
  }

  const VseInstance& instance_;
  DamageTracker& tracker_;
  uint64_t budget_;
  uint64_t nodes_ = 0;
  DeletionSet best_deletion_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  double frontier_low_ = std::numeric_limits<double>::infinity();
};

}  // namespace

Result<VseSolution> ExactBalancedSolver::Solve(const VseInstance& instance) {
  return SolveWith(instance, nullptr);
}

Result<VseSolution> ExactBalancedSolver::SolveWith(const VseInstance& instance,
                                                   ScratchPool* scratch) {
  std::optional<DamageTracker> local;
  if (scratch == nullptr) local.emplace(instance);
  DamageTracker& tracker =
      scratch != nullptr ? *scratch->AcquireTracker(instance) : *local;
  BalancedSearch search(instance, tracker, node_budget_);
  // The empty deletion seeds the incumbent, so there is always a feasible
  // best-so-far to return; exhaustion downgrades `optimal`, never the result.
  bool complete = search.Run();
  VseSolution solution = MakeSolution(instance, search.best_deletion(), name());
  StampGap(solution, search.best_cost(), complete,
           search.CertifiedLowerBound(), search.nodes());
  return solution;
}

}  // namespace delprop
