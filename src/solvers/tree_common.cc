#include "solvers/tree_common.h"

#include <algorithm>

namespace delprop {

// Per-solve materialization: builds the data forest, rooting, and path
// tables once before a tree solver's DP/primal-dual loops run over them.
// delprop-hot-stop
Result<TreeStructure> BuildTreeStructure(const VseInstance& instance,
                                         TreeMode mode) {
  if (!instance.all_unique_witness()) {
    return Status::FailedPrecondition(
        "tree algorithms require unique-witness (key-preserving) views");
  }
  TreeStructure structure{DataForest::Build(instance.ViewPointers()),
                          {}, {}, {}, {}, {}};
  const DataForest& forest = structure.forest;
  if (!forest.is_forest()) {
    return Status::FailedPrecondition(
        "data dual graph has a cycle: not a tree case");
  }

  if (mode == TreeMode::kVerticalAll) {
    std::optional<std::vector<size_t>> pivots = forest.FindPivotRoots();
    if (!pivots.has_value()) {
      return Status::FailedPrecondition(
          "no pivot rooting exists: Algorithm 4 does not apply");
    }
    structure.rooting = forest.RootAt(*pivots);
  } else {
    structure.rooting = forest.RootAt();
  }

  structure.delta_through.resize(forest.node_count());
  structure.preserved_through.resize(forest.node_count());

  for (const ForestWitness& witness : forest.witnesses()) {
    ViewTupleId id{witness.view_index, witness.tuple_index};
    bool is_deletion = instance.IsMarkedForDeletion(id);

    if (is_deletion || mode == TreeMode::kVerticalAll) {
      bool ok = (mode == TreeMode::kVerticalAll)
                    ? forest.WitnessIsVerticalPath(witness, structure.rooting)
                    : forest.WitnessIsPath(witness, structure.rooting);
      if (!ok) {
        return Status::FailedPrecondition(
            "witness of " + instance.RenderViewTuple(id) +
            " is not a path in the data dual graph");
      }
    }

    TreeStructure::PathInfo info;
    info.id = id;
    info.nodes = witness.nodes;
    info.weight = instance.weight(id);
    info.top_depth = structure.rooting.depth[info.nodes[0]];
    info.bottom_node = info.nodes[0];
    info.lca_node = info.nodes[0];
    for (size_t n : info.nodes) {
      size_t depth = structure.rooting.depth[n];
      if (depth < info.top_depth) {
        info.top_depth = depth;
        info.lca_node = n;
      }
      if (depth > structure.rooting.depth[info.bottom_node]) {
        info.bottom_node = n;
      }
    }

    auto& list = is_deletion ? structure.delta_paths
                             : structure.preserved_paths;
    size_t path_index = list.size();
    for (size_t n : info.nodes) {
      (is_deletion ? structure.delta_through
                   : structure.preserved_through)[n]
          .push_back(path_index);
    }
    list.push_back(std::move(info));
  }
  return structure;
}

}  // namespace delprop
