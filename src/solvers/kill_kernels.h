#ifndef DELPROP_SOLVERS_KILL_KERNELS_H_
#define DELPROP_SOLVERS_KILL_KERNELS_H_

#include <cstdint>
#include <vector>

#include "plan/compiled_instance.h"

namespace delprop {
namespace kernels {

// ---------------------------------------------------------------------------
// Kernel-mode selection. The tracker binds the bit-parallel path whenever the
// plan supports it (every tuple's witness fan-in fits one 64-bit word); the
// DELPROP_KILL_KERNELS environment variable ("scalar" | "bitset" | "auto")
// and a thread-local override (tests, the differential oracle) force a path
// for A/B benching. "bitset" is best-effort: plans whose rows are too wide
// still fall back to scalar.
// ---------------------------------------------------------------------------

enum class KernelMode : uint8_t { kAuto = 0, kScalar = 1, kBitset = 2 };

/// The mode requested for the calling thread: the thread-local override if
/// one is active, else the process-wide DELPROP_KILL_KERNELS setting (parsed
/// once), else kAuto.
KernelMode RequestedKernelMode();

const char* KernelModeName(KernelMode mode);

/// RAII thread-local mode override. Nestable; each fuzz-engine case runs
/// entirely on one worker thread, so a scoped override cannot race another
/// case. Restores the previous override on destruction.
class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(KernelMode mode);
  ~ScopedKernelOverride();
  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;

 private:
  KernelMode previous_;
  bool had_previous_;
};

// ---------------------------------------------------------------------------
// Word-level primitives. All hot, all inline.
// ---------------------------------------------------------------------------

inline int PopCount64(uint64_t w) { return __builtin_popcountll(w); }
inline uint32_t Ctz64(uint64_t w) {
  return static_cast<uint32_t>(__builtin_ctzll(w));
}
/// Mask of the `n` lowest bits, n in [0, 64].
inline uint64_t LowMask(uint32_t n) {
  return n >= 64 ? ~0ull : (1ull << n) - 1;
}
inline bool TestBit(const uint64_t* words, uint32_t bit) {
  return (words[bit >> 6] >> (bit & 63)) & 1u;
}
inline void SetBit(uint64_t* words, uint32_t bit) {
  words[bit >> 6] |= 1ull << (bit & 63);
}
inline void ClearBit(uint64_t* words, uint32_t bit) {
  words[bit >> 6] &= ~(1ull << (bit & 63));
}
/// Extracts bits [first, first + count) as one word; count in [0, 64]. The
/// straddling read of words[wi + 1] is in bounds whenever the range itself
/// is (the range's last bit lives in that word).
inline uint64_t ExtractBits(const uint64_t* words, uint32_t first,
                            uint32_t count) {
  if (count == 0) return 0;
  uint32_t wi = first >> 6;
  uint32_t off = first & 63;
  uint64_t lo = words[wi] >> off;
  if (off + count > 64) lo |= words[wi + 1] << (64 - off);
  return lo & LowMask(count);
}
/// True iff bits [first, first + count) are all zero (count unbounded —
/// witness member rows can exceed one word).
inline bool RangeIsZero(const uint64_t* words, uint32_t first,
                        uint32_t count) {
  while (count > 64) {
    if (ExtractBits(words, first, 64) != 0) return false;
    first += 64;
    count -= 64;
  }
  return ExtractBits(words, first, count) == 0;
}
/// Popcount of bits [first, first + count) (count unbounded).
inline uint32_t RangePopCount(const uint64_t* words, uint32_t first,
                              uint32_t count) {
  uint32_t total = 0;
  while (count > 64) {
    total += static_cast<uint32_t>(PopCount64(ExtractBits(words, first, 64)));
    first += 64;
    count -= 64;
  }
  total += static_cast<uint32_t>(PopCount64(ExtractBits(words, first, count)));
  return total;
}
/// Zeroes bits [first, first + count).
inline void ClearRange(uint64_t* words, uint32_t first, uint32_t count) {
  while (count > 0) {
    uint32_t off = first & 63;
    uint32_t step = 64 - off;
    if (step > count) step = count;
    words[first >> 6] &= ~(LowMask(step) << off);
    first += step;
    count -= step;
  }
}

// ---------------------------------------------------------------------------
// Packed tracker state + sparse-reset log.
// ---------------------------------------------------------------------------

/// The bit-parallel twin of DamageTracker's counter arrays. Invariants while
/// bound: alive bit of witness w ⇔ w's hit slice is all-zero; killed bit of
/// tuple t ⇔ t's alive slice is all-zero (plus tuples with no witnesses,
/// which are killed from the start — matching the scalar convention
/// dead_witnesses == tuple_witness_count == 0).
struct KernelState {
  std::vector<uint64_t> hit_words;    // deleted-member bits, hit-bit space
  std::vector<uint64_t> alive_words;  // 1 bit per witness, 1 = unhit
  std::vector<uint64_t> killed_words;  // 1 bit per view tuple
};

/// Records which witnesses died and which tuples changed kill state since
/// the last reset, so Reset/Rebind can roll back sparsely instead of zeroing
/// whole arrays. Shared by the scalar and bit-parallel paths (each logs the
/// transitions its own representation needs to undo). Past the caps the log
/// overflows and the owner falls back to a full clear — the caps are a
/// fraction of the array sizes, so a sparse rollback is only attempted when
/// it is actually cheaper.
struct TouchLog {
  std::vector<uint32_t> witnesses;
  std::vector<uint32_t> tuples;
  size_t witness_cap = 0;
  size_t tuple_cap = 0;
  bool overflow = false;

  void Bind(size_t witness_count, size_t tuple_count) {
    witness_cap = witness_count / 8 + 8;
    tuple_cap = tuple_count / 8 + 8;
    witnesses.clear();
    tuples.clear();
    witnesses.reserve(witness_cap);
    tuples.reserve(tuple_cap);
    overflow = false;
  }
  void NoteWitness(uint32_t wid) {
    if (overflow) return;
    if (witnesses.size() >= witness_cap) {
      overflow = true;
      return;
    }
    witnesses.push_back(wid);
  }
  void NoteTuple(uint32_t dense) {
    if (overflow) return;
    if (tuples.size() >= tuple_cap) {
      overflow = true;
      return;
    }
    tuples.push_back(dense);
  }
  void Clear() {
    witnesses.clear();
    tuples.clear();
    overflow = false;
  }
};

// ---------------------------------------------------------------------------
// KillKernels: the word-level delete/undelete/marginal engine. Non-owning —
// DamageTracker owns the KernelState and aggregate counters and binds them
// here; the kernels mutate state through masked OR/ANDN word ops and report
// aggregate transitions straight into the tracker's counters.
// ---------------------------------------------------------------------------

class KillKernels {
 public:
  void Bind(const CompiledInstance* plan, KernelState* state) {
    plan_ = plan;
    state_ = state;
    branch_index_built_ = false;
  }

  /// Masked-OR delete of `base`'s hit bits; returns the preserved weight
  /// newly killed (same contract as DamageTracker::DeleteBase). Aggregate
  /// counters are the tracker's; transitions are logged into `log`. Inline:
  /// the exact search calls this tens of millions of times per solve.
  double DeleteBase(uint32_t base, TouchLog* log, size_t* unkilled_deletions,
                    double* killed_preserved_weight,
                    double* surviving_deletion_weight) {
    // Fan-in-1 plans (every tuple has exactly one witness wherever it has
    // any) skip the per-kill alive-range extract: a newly-dead witness
    // always kills its owner.
    return plan_->max_witnesses_per_tuple() <= 1
               ? DeleteBaseImpl<true>(base, log, unkilled_deletions,
                                      killed_preserved_weight,
                                      surviving_deletion_weight)
               : DeleteBaseImpl<false>(base, log, unkilled_deletions,
                                       killed_preserved_weight,
                                       surviving_deletion_weight);
  }

  /// Masked-ANDN undelete of `base`'s hit bits (reverse of DeleteBase). No
  /// touch logging: an undelete restores the pristine value, and a later
  /// re-kill logs the tuple again. Inline, same reason as DeleteBase.
  void UndeleteBase(uint32_t base, size_t* unkilled_deletions,
                    double* killed_preserved_weight,
                    double* surviving_deletion_weight) {
    if (plan_->max_witnesses_per_tuple() <= 1) {
      UndeleteBaseImpl<true>(base, unkilled_deletions, killed_preserved_weight,
                             surviving_deletion_weight);
    } else {
      UndeleteBaseImpl<false>(base, unkilled_deletions, killed_preserved_weight,
                              surviving_deletion_weight);
    }
  }

  /// Preserved weight deleting `base` would newly kill: one pass over the
  /// base's kill row testing `alive & ~mask` per killed tuple.
  double MarginalDamageBase(uint32_t base) const;

  /// True iff undeleting `base` keeps every ΔV tuple killed (no witness
  /// with `base` as its only deleted member under a ΔV tuple).
  bool CanDropBase(uint32_t base) const;

  /// Exchange probe: would deleting `base` (given the `n` currently-unkilled
  /// ΔV tuples in `revived`, ascending) restore feasibility with total
  /// killed preserved weight strictly below `budget`? `current_kpw` is the
  /// tracker's killed_preserved_weight; the probe accumulates in DeleteBase
  /// order so the comparison is bit-identical to a real delete.
  bool SwapWouldImprove(uint32_t base, const uint32_t* revived, uint32_t n,
                        double current_kpw, double budget) const;

  /// The killed preserved weight the tracker would hold after DeleteBase
  /// (`base` not deleted), accumulated from `current_kpw` in DeleteBase's
  /// own addition order (ascending newly-killed tuple) — bit-identical to a
  /// real delete, so branch-and-bound entry prunes can be hoisted above the
  /// delete/undelete pair. Inline: one call per search node.
  double KpwAfterDelete(uint32_t base, double current_kpw) const {
    double acc = current_kpw;
    if (branch_index_built_) {
      // Fast path: the packed probe records carry the same preserved tuples
      // in the same ascending order with identical extract parameters, mask,
      // and weight — the adds are bit-for-bit those of the fallback below —
      // but the walk touches one sequential stream instead of four arrays.
      const uint64_t* alive = state_->alive_words.data();
      const KpwEntry* e = kpw_entries_.data() + kpw_first_[base];
      const KpwEntry* stop = kpw_entries_.data() + kpw_first_[base + 1];
      for (; e != stop; ++e) {
        uint64_t la = ExtractBits(alive, e->wb, e->wcount);
        if (la != 0 && (la & ~e->mask) == 0) acc += e->weight;
      }
      return acc;
    }
    const CompiledInstance& plan = *plan_;
    uint32_t end = plan.kill_end(base);
    for (uint32_t slot = plan.kill_begin(base); slot < end; ++slot) {
      uint32_t dense = plan.kill_tuple(slot);
      if (plan.is_deletion(dense)) continue;
      uint64_t la = AliveMask(dense);
      if (la != 0 && (la & ~plan.kill_witness_mask(slot)) == 0) {
        acc += plan.weight(dense);
      }
    }
    return acc;
  }

  /// Branch pick for the exact search: the lowest-id still-unhit witness of
  /// a ΔV tuple among those with globally minimal raw member count, or
  /// CompiledInstance::kNpos when every ΔV tuple is killed. Equivalent to
  /// the legacy nested scan (ascending ΔV tuple, ascending witness, strict-<
  /// first-min) because witness ids ascend with their owning tuple's dense
  /// id — so "first witness reaching the running minimum in scan order" IS
  /// "lowest witness id in the smallest nonempty size bucket". The first
  /// call builds a per-size witness-bitmask index over the ΔV witnesses
  /// (size = raw member count); each later call is a handful of word ANDs
  /// against alive_words per size class instead of a walk over every
  /// unkilled ΔV tuple. Inline (minus the one-time build): one call per
  /// expanded search node.
  uint32_t SelectBranchWitness() {
    if (!branch_index_built_) {
      BuildBranchIndex();
      branch_index_built_ = true;
    }
    // An alive (unhit) witness implies its owner is unkilled, so bucket-mask
    // ∧ alive is exactly "unhit witness of an unkilled ΔV tuple" — no
    // separate killed-tuple filter needed. Trailing padding bits of
    // alive_words are masked off by the bucket masks, which only carry real
    // witness ids.
    const uint64_t* alive = state_->alive_words.data();
    const uint64_t* bucket = branch_words_.data();
    for (size_t b = 0; b < branch_sizes_.size();
         ++b, bucket += witness_word_count_) {
      for (size_t i = 0; i < witness_word_count_; ++i) {
        uint64_t w = bucket[i] & alive[i];
        if (w != 0) return static_cast<uint32_t>(i << 6) + Ctz64(w);
      }
    }
    return CompiledInstance::kNpos;
  }

  bool IsKilled(uint32_t dense) const {
    return TestBit(state_->killed_words.data(), dense);
  }
  uint32_t WitnessHits(uint32_t wid) const {
    uint32_t first = plan_->witness_bit_begin(wid);
    return RangePopCount(state_->hit_words.data(), first,
                         plan_->witness_bit_end(wid) - first);
  }
  uint32_t DeadWitnessCount(uint32_t dense) const {
    uint32_t wb = plan_->tuple_witness_begin(dense);
    uint32_t n = plan_->tuple_witness_end(dense) - wb;
    return n - static_cast<uint32_t>(PopCount64(
                   ExtractBits(state_->alive_words.data(), wb, n)));
  }
  /// Alive-witness mask of `dense` (bit j ⇔ witness wb + j unhit).
  uint64_t AliveMask(uint32_t dense) const {
    uint32_t wb = plan_->tuple_witness_begin(dense);
    return ExtractBits(state_->alive_words.data(), wb,
                       plan_->tuple_witness_end(dense) - wb);
  }

 private:
  void BuildBranchIndex();

  template <bool kFanInOne>
  double DeleteBaseImpl(uint32_t base, TouchLog* log,
                        size_t* unkilled_deletions,
                        double* killed_preserved_weight,
                        double* surviving_deletion_weight) {
    const CompiledInstance& plan = *plan_;
    uint64_t* hit = state_->hit_words.data();
    uint64_t* alive = state_->alive_words.data();
    uint64_t* killed = state_->killed_words.data();
    double newly_killed = 0.0;
    uint32_t end = plan.occ_end(base);
    for (uint32_t slot = plan.occ_begin(base); slot < end; ++slot) {
      uint32_t bit = plan.occ_hit_bit(slot);
      hit[bit >> 6] |= 1ull << (bit & 63);
      uint32_t wid = plan.occ_witness(slot);
      if (!TestBit(alive, wid)) continue;  // witness already hit elsewhere
      ClearBit(alive, wid);
      log->NoteWitness(wid);
      uint32_t dense = plan.occ_tuple(slot);
      if constexpr (!kFanInOne) {
        uint32_t wb = plan.tuple_witness_begin(dense);
        if (ExtractBits(alive, wb, plan.tuple_witness_end(dense) - wb) != 0) {
          continue;  // some witness still alive — tuple survives
        }
      }
      // Fan-in 1: the witness that just died is its owner's only one.
      SetBit(killed, dense);
      log->NoteTuple(dense);
      if (plan.is_deletion(dense)) {
        --*unkilled_deletions;
        *surviving_deletion_weight -= plan.weight(dense);
      } else {
        double w = plan.weight(dense);
        *killed_preserved_weight += w;
        newly_killed += w;
      }
    }
    return newly_killed;
  }

  template <bool kFanInOne>
  void UndeleteBaseImpl(uint32_t base, size_t* unkilled_deletions,
                        double* killed_preserved_weight,
                        double* surviving_deletion_weight) {
    const CompiledInstance& plan = *plan_;
    uint64_t* hit = state_->hit_words.data();
    uint64_t* alive = state_->alive_words.data();
    uint64_t* killed = state_->killed_words.data();
    uint32_t end = plan.occ_end(base);
    for (uint32_t slot = plan.occ_begin(base); slot < end; ++slot) {
      uint32_t bit = plan.occ_hit_bit(slot);
      hit[bit >> 6] &= ~(1ull << (bit & 63));
      uint32_t wid = plan.occ_witness(slot);
      uint32_t first = plan.witness_bit_begin(wid);
      if (!RangeIsZero(hit, first, plan.witness_bit_end(wid) - first)) {
        continue;  // another deleted member still pins the witness dead
      }
      SetBit(alive, wid);
      uint32_t dense = plan.occ_tuple(slot);
      if constexpr (!kFanInOne) {
        if (!TestBit(killed, dense)) continue;
      }
      // Fan-in 1: the revived witness is its owner's only one, so the owner
      // was necessarily killed.
      ClearBit(killed, dense);
      if (plan.is_deletion(dense)) {
        ++*unkilled_deletions;
        *surviving_deletion_weight += plan.weight(dense);
      } else {
        *killed_preserved_weight -= plan.weight(dense);
      }
    }
  }

  /// One packed probe record per preserved tuple in a base's kill row
  /// (KpwAfterDelete fast path): the alive-extract parameters, the kill
  /// witness-incidence mask, and the tuple weight, laid out in one stream.
  struct KpwEntry {
    uint32_t wb;
    uint32_t wcount;
    uint64_t mask;
    double weight;
  };

  const CompiledInstance* plan_ = nullptr;
  KernelState* state_ = nullptr;
  // Lazy branch-selection index (SelectBranchWitness): distinct raw member
  // counts of ΔV witnesses ascending, and one witness bitmask per count.
  // Depends only on the plan (including its ΔV overlay), never on state, so
  // Reset leaves it valid; Bind invalidates it.
  bool branch_index_built_ = false;
  size_t witness_word_count_ = 0;
  std::vector<uint32_t> branch_sizes_;
  std::vector<uint64_t> branch_words_;  // branch_sizes_.size() blocks
  std::vector<uint32_t> kpw_first_;     // base_count + 1 prefix
  std::vector<KpwEntry> kpw_entries_;
};

}  // namespace kernels
}  // namespace delprop

#endif  // DELPROP_SOLVERS_KILL_KERNELS_H_
