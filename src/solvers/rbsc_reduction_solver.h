#ifndef DELPROP_SOLVERS_RBSC_REDUCTION_SOLVER_H_
#define DELPROP_SOLVERS_RBSC_REDUCTION_SOLVER_H_

#include <functional>

#include "dp/solver.h"
#include "setcover/red_blue.h"
#include "setcover/red_blue_solvers.h"

namespace delprop {

/// The paper's general-case algorithm (Claim 1): reduce view side-effect to
/// Red-Blue Set Cover, solve with Peleg's LowDegTwo, and map the chosen sets
/// back to a source deletion. Approximation bound:
/// O(2·sqrt(l·‖V‖·log‖ΔV‖)).
///
/// Requires every view tuple to have a unique witness (key-preserving or
/// project-free queries); fails with FailedPrecondition otherwise, because
/// the RBSC image only models single-witness lineage faithfully.
class RbscReductionSolver : public VseSolver {
 public:
  using RbscSolverFn =
      std::function<Result<RbscSolution>(const RbscInstance&)>;

  /// `rbsc_solver` defaults to Peleg's LowDegTwo; inject SolveRbscGreedy or
  /// SolveRbscExact for ablations.
  explicit RbscReductionSolver(RbscSolverFn rbsc_solver = SolveRbscLowDegTwo,
                               std::string name = "rbsc-lowdeg")
      : rbsc_solver_(std::move(rbsc_solver)), name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Result<VseSolution> Solve(const VseInstance& instance) override;

 private:
  RbscSolverFn rbsc_solver_;
  std::string name_;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_RBSC_REDUCTION_SOLVER_H_
