#ifndef DELPROP_SOLVERS_BALANCED_PNPSC_SOLVER_H_
#define DELPROP_SOLVERS_BALANCED_PNPSC_SOLVER_H_

#include <functional>

#include "dp/solver.h"
#include "setcover/pnpsc.h"

namespace delprop {

/// The paper's balanced-variant algorithm (Lemma 1): reduce balanced
/// deletion propagation to Positive-Negative Partial Set Cover, solve that
/// through Miettinen's reduction to RBSC with Peleg's LowDegTwo, map back.
/// Approximation bound: 2·sqrt(l·(‖V‖+‖ΔV‖)·log‖ΔV‖).
///
/// Requires unique-witness views (key-preserving / project-free), as the
/// ±PSC image only models single-witness lineage faithfully.
class BalancedPnpscSolver : public VseSolver {
 public:
  using RbscSolverFn =
      std::function<Result<RbscSolution>(const RbscInstance&)>;

  explicit BalancedPnpscSolver(RbscSolverFn rbsc_solver = SolveRbscLowDegTwo,
                               std::string name = "balanced-pnpsc")
      : rbsc_solver_(std::move(rbsc_solver)), name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Objective objective() const override { return Objective::kBalanced; }
  Result<VseSolution> Solve(const VseInstance& instance) override;

 private:
  RbscSolverFn rbsc_solver_;
  std::string name_;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_BALANCED_PNPSC_SOLVER_H_
