#include "solvers/damage_tracker.h"

#include <algorithm>
#include <cassert>

namespace delprop {

DamageTracker::DamageTracker(const VseInstance& instance) {
  (void)Rebind(instance);
}

bool DamageTracker::Rebind(const VseInstance& instance) {
  // Release the previous plan before acquiring the new one: if this tracker
  // held the last outside reference to a retired plan, the acquire below can
  // now recycle its overlay buffers instead of allocating.
  plan_.reset();
  plan_ = instance.compiled();
  bool reused = witness_hits_.size() == plan_->witness_count() &&
                dead_witnesses_.size() == plan_->tuple_count() &&
                deleted_stamp_.size() == plan_->base_count();
  if (reused && epoch_ != 0xFFFFFFFFu) {
    std::fill(witness_hits_.begin(), witness_hits_.end(), 0);
    std::fill(dead_witnesses_.begin(), dead_witnesses_.end(), 0);
    ++epoch_;
  } else {
    witness_hits_.assign(plan_->witness_count(), 0);
    dead_witnesses_.assign(plan_->tuple_count(), 0);
    deleted_stamp_.assign(plan_->base_count(), 0);
    deleted_pos_.resize(plan_->base_count());
    // At most every candidate base can be deleted; reserving here keeps
    // DeleteBase (the per-pick hot path) allocation-free.
    deleted_.reserve(plan_->base_count());
    epoch_ = 1;
  }
  deleted_.clear();
  foreign_.clear();
  initial_unkilled_deletions_ = 0;
  initial_surviving_deletion_weight_ = 0.0;
  for (uint32_t d : plan_->deletion_dense()) {
    ++initial_unkilled_deletions_;
    initial_surviving_deletion_weight_ += plan_->weight(d);
  }
  unkilled_deletions_ = initial_unkilled_deletions_;
  killed_preserved_weight_ = 0.0;
  surviving_deletion_weight_ = initial_surviving_deletion_weight_;
  return reused;
}

void DamageTracker::Reset() {
  std::fill(witness_hits_.begin(), witness_hits_.end(), 0);
  std::fill(dead_witnesses_.begin(), dead_witnesses_.end(), 0);
  deleted_.clear();
  foreign_.clear();
  ++epoch_;
  unkilled_deletions_ = initial_unkilled_deletions_;
  killed_preserved_weight_ = 0.0;
  surviving_deletion_weight_ = initial_surviving_deletion_weight_;
}

bool DamageTracker::IsDeleted(const TupleRef& ref) const {
  uint32_t base = plan_->FindBase(ref);
  if (base != CompiledInstance::kNpos) return IsDeletedBase(base);
  return std::find(foreign_.begin(), foreign_.end(), ref) != foreign_.end();
}

double DamageTracker::Delete(const TupleRef& ref) {
  uint32_t base = plan_->FindBase(ref);
  if (base == CompiledInstance::kNpos) {
    // Not in any witness: deleting it kills nothing. Track it so
    // IsDeleted/Undelete/CurrentDeletion stay consistent.
    assert(std::find(foreign_.begin(), foreign_.end(), ref) ==
           foreign_.end());
    // Foreign refs (tuples outside every witness) never occur on the engine
    // steady-state path — solvers only delete candidate bases; this branch
    // serves ad-hoc script use.
    // delprop-lint: hot-path-allocation-ok cold branch, see above
    foreign_.push_back(ref);
    return 0.0;
  }
  return DeleteBase(base);
}

double DamageTracker::DeleteBase(uint32_t base) {
  assert(!IsDeletedBase(base));
  deleted_pos_[base] = static_cast<uint32_t>(deleted_.size());
  deleted_.push_back(base);
  deleted_stamp_[base] = epoch_;
  double newly_killed = 0.0;
  uint32_t end = plan_->occ_end(base);
  for (uint32_t slot = plan_->occ_begin(base); slot < end; ++slot) {
    if (witness_hits_[plan_->occ_witness(slot)]++ == 0) {
      uint32_t dense = plan_->occ_tuple(slot);
      if (++dead_witnesses_[dense] == plan_->tuple_witness_count(dense)) {
        if (plan_->is_deletion(dense)) {
          --unkilled_deletions_;
          surviving_deletion_weight_ -= plan_->weight(dense);
        } else {
          killed_preserved_weight_ += plan_->weight(dense);
          newly_killed += plan_->weight(dense);
        }
      }
    }
  }
  return newly_killed;
}

void DamageTracker::Undelete(const TupleRef& ref) {
  uint32_t base = plan_->FindBase(ref);
  if (base == CompiledInstance::kNpos) {
    auto it = std::find(foreign_.begin(), foreign_.end(), ref);
    assert(it != foreign_.end());
    if (it != foreign_.end()) foreign_.erase(it);
    return;
  }
  UndeleteBase(base);
}

void DamageTracker::UndeleteBase(uint32_t base) {
  assert(IsDeletedBase(base));
  uint32_t hole = deleted_pos_[base];
  if (hole + 1 != deleted_.size()) {
    deleted_[hole] = deleted_.back();
    deleted_pos_[deleted_[hole]] = hole;
  }
  deleted_.pop_back();
  deleted_stamp_[base] = 0;
  uint32_t end = plan_->occ_end(base);
  for (uint32_t slot = plan_->occ_begin(base); slot < end; ++slot) {
    if (--witness_hits_[plan_->occ_witness(slot)] == 0) {
      uint32_t dense = plan_->occ_tuple(slot);
      if (dead_witnesses_[dense]-- == plan_->tuple_witness_count(dense)) {
        if (plan_->is_deletion(dense)) {
          ++unkilled_deletions_;
          surviving_deletion_weight_ += plan_->weight(dense);
        } else {
          killed_preserved_weight_ -= plan_->weight(dense);
        }
      }
    }
  }
}

double DamageTracker::MarginalDamage(const TupleRef& ref) const {
  uint32_t base = plan_->FindBase(ref);
  if (base == CompiledInstance::kNpos) return 0.0;
  return MarginalDamageBase(base);
}

double DamageTracker::MarginalDamageBase(uint32_t base) const {
  double damage = 0.0;
  uint32_t slot = plan_->occ_begin(base);
  uint32_t end = plan_->occ_end(base);
  // Occurrence rows are sorted by view tuple; walk runs.
  while (slot < end) {
    uint32_t dense = plan_->occ_tuple(slot);
    uint32_t fresh_dead = 0;
    do {
      if (witness_hits_[plan_->occ_witness(slot)] == 0) ++fresh_dead;
      ++slot;
    } while (slot < end && plan_->occ_tuple(slot) == dense);
    if (plan_->is_deletion(dense)) continue;
    uint32_t dead = dead_witnesses_[dense];
    uint32_t total = plan_->tuple_witness_count(dense);
    if (dead + fresh_dead == total && dead < total) {
      damage += plan_->weight(dense);
    }
  }
  return damage;
}

// Result materialization: builds the final DeletionSet once, after the
// solver's delete/undelete loops are done.
// delprop-hot-stop
DeletionSet DamageTracker::CurrentDeletion() const {
  DeletionSet out;
  for (uint32_t base : deleted_) out.Insert(plan_->base_ref(base));
  for (const TupleRef& ref : foreign_) out.Insert(ref);
  return out;
}

}  // namespace delprop
