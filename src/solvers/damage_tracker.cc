#include "solvers/damage_tracker.h"

#include <algorithm>
#include <cassert>

namespace delprop {

DamageTracker::DamageTracker(const VseInstance& instance)
    : instance_(&instance) {
  view_tuple_base_.resize(instance.view_count());
  size_t dense = 0;
  for (size_t v = 0; v < instance.view_count(); ++v) {
    view_tuple_base_[v] = dense;
    dense += instance.view(v).size();
  }
  tuples_.resize(dense);
  for (size_t v = 0; v < instance.view_count(); ++v) {
    const View& view = instance.view(v);
    for (size_t t = 0; t < view.size(); ++t) {
      ViewTupleId id{v, t};
      TupleState& state = tuples_[view_tuple_base_[v] + t];
      state.id = id;
      state.witness_count = view.tuple(t).witnesses.size();
      state.is_deletion = instance.IsMarkedForDeletion(id);
      state.weight = instance.weight(id);
      if (state.is_deletion) {
        ++unkilled_deletions_;
        surviving_deletion_weight_ += state.weight;
      }
      for (const Witness& witness : view.tuple(t).witnesses) {
        size_t wid = witness_hits_.size();
        witness_hits_.push_back(0);
        witness_owner_.push_back(view_tuple_base_[v] + t);
        // Deduplicate refs within one witness (self-joins may repeat them).
        std::vector<TupleRef> refs(witness.begin(), witness.end());
        std::sort(refs.begin(), refs.end());
        refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
        for (const TupleRef& ref : refs) {
          occurrences_[ref].emplace_back(view_tuple_base_[v] + t, wid);
        }
      }
    }
  }
  for (auto& [ref, occ] : occurrences_) {
    std::sort(occ.begin(), occ.end());
  }
}

size_t DamageTracker::DenseViewTuple(const ViewTupleId& id) const {
  return view_tuple_base_[id.view] + id.tuple;
}

bool DamageTracker::IsDeleted(const TupleRef& ref) const {
  return deleted_index_.count(ref) > 0;
}

bool DamageTracker::IsKilled(const ViewTupleId& id) const {
  const TupleState& state = tuples_[DenseViewTuple(id)];
  return state.witness_count > 0 && state.dead_witnesses == state.witness_count;
}

double DamageTracker::Delete(const TupleRef& ref) {
  assert(!IsDeleted(ref));
  deleted_index_[ref] = deleted_.size();
  deleted_.push_back(ref);
  double newly_killed = 0.0;
  auto it = occurrences_.find(ref);
  if (it == occurrences_.end()) return 0.0;
  for (const auto& [dense, wid] : it->second) {
    if (witness_hits_[wid]++ == 0) {
      TupleState& state = tuples_[dense];
      if (++state.dead_witnesses == state.witness_count) {
        if (state.is_deletion) {
          --unkilled_deletions_;
          surviving_deletion_weight_ -= state.weight;
        } else {
          killed_preserved_weight_ += state.weight;
          newly_killed += state.weight;
        }
      }
    }
  }
  return newly_killed;
}

void DamageTracker::Undelete(const TupleRef& ref) {
  auto pos = deleted_index_.find(ref);
  assert(pos != deleted_index_.end());
  if (pos == deleted_index_.end()) return;
  size_t hole = pos->second;
  deleted_index_.erase(pos);
  if (hole + 1 != deleted_.size()) {
    deleted_[hole] = deleted_.back();
    deleted_index_[deleted_[hole]] = hole;
  }
  deleted_.pop_back();
  auto it = occurrences_.find(ref);
  if (it == occurrences_.end()) return;
  for (const auto& [dense, wid] : it->second) {
    if (--witness_hits_[wid] == 0) {
      TupleState& state = tuples_[dense];
      if (state.dead_witnesses-- == state.witness_count) {
        if (state.is_deletion) {
          ++unkilled_deletions_;
          surviving_deletion_weight_ += state.weight;
        } else {
          killed_preserved_weight_ -= state.weight;
        }
      }
    }
  }
}

double DamageTracker::MarginalDamage(const TupleRef& ref) const {
  auto it = occurrences_.find(ref);
  if (it == occurrences_.end()) return 0.0;
  double damage = 0.0;
  const auto& occ = it->second;
  // Occurrences are sorted by dense view tuple; walk runs.
  for (size_t i = 0; i < occ.size();) {
    size_t dense = occ[i].first;
    size_t fresh_dead = 0;
    while (i < occ.size() && occ[i].first == dense) {
      if (witness_hits_[occ[i].second] == 0) ++fresh_dead;
      ++i;
    }
    const TupleState& state = tuples_[dense];
    if (state.is_deletion) continue;
    if (state.dead_witnesses + fresh_dead == state.witness_count &&
        state.dead_witnesses < state.witness_count) {
      damage += state.weight;
    }
  }
  return damage;
}

DeletionSet DamageTracker::CurrentDeletion() const {
  DeletionSet out;
  for (const TupleRef& ref : deleted_) out.Insert(ref);
  return out;
}

}  // namespace delprop
