#include "solvers/damage_tracker.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace delprop {

using kernels::ClearBit;
using kernels::ClearRange;
using kernels::LowMask;
using kernels::SetBit;

DamageTracker::DamageTracker(const VseInstance& instance) {
  (void)Rebind(instance);
}

bool DamageTracker::Rebind(const VseInstance& instance) {
  // Release the previous plan before acquiring the new one: if this tracker
  // held the last outside reference to a retired plan, the acquire below can
  // now recycle its overlay buffers instead of allocating.
  plan_.reset();
  plan_ = instance.compiled();
  kernels_.Bind(plan_.get(), &kstate_);
  bool want_bits =
      plan_->bits_supported() &&
      kernels::RequestedKernelMode() != kernels::KernelMode::kScalar;
  bool reused = PrepareState(want_bits);
  deleted_.clear();
  foreign_.clear();
  initial_unkilled_deletions_ = 0;
  initial_surviving_deletion_weight_ = 0.0;
  for (uint32_t d : plan_->deletion_dense()) {
    ++initial_unkilled_deletions_;
    initial_surviving_deletion_weight_ += plan_->weight(d);
  }
  unkilled_deletions_ = initial_unkilled_deletions_;
  killed_preserved_weight_ = 0.0;
  surviving_deletion_weight_ = initial_surviving_deletion_weight_;
  return reused;
}

bool DamageTracker::PrepareState(bool want_bits) {
  if (want_bits != bits_ && plan_ != nullptr) {
    // Mode flip (an override or a plan losing/gaining bit support): the
    // retiring representation may hold dirty state its successor cannot
    // roll back, so drop it entirely. Flips only happen under explicit A/B
    // forcing — the steady state stays in one mode.
    if (bits_) {
      kstate_.hit_words = std::vector<uint64_t>();
      kstate_.alive_words = std::vector<uint64_t>();
      kstate_.killed_words = std::vector<uint64_t>();
    } else {
      witness_hits_ = std::vector<uint32_t>();
      dead_witnesses_ = std::vector<uint32_t>();
    }
    touch_.Clear();
    state_core_ = nullptr;
  }
  bits_ = want_bits;
  uint32_t witness_count = plan_->witness_count();
  uint32_t tuple_count = plan_->tuple_count();
  uint32_t base_count = plan_->base_count();
  bool reused;
  if (bits_) {
    size_t hit_words = (static_cast<size_t>(plan_->hit_bit_count()) + 63) / 64;
    size_t alive_words = (static_cast<size_t>(witness_count) + 63) / 64;
    size_t killed_words = (static_cast<size_t>(tuple_count) + 63) / 64;
    reused = kstate_.hit_words.size() == hit_words &&
             kstate_.alive_words.size() == alive_words &&
             kstate_.killed_words.size() == killed_words &&
             deleted_stamp_.size() == base_count && epoch_ != 0xFFFFFFFFu;
    if (reused) {
      ClearState();
      ++epoch_;
      return true;
    }
    kstate_.hit_words.assign(hit_words, 0);
    kstate_.alive_words.assign(alive_words, ~0ull);
    kstate_.killed_words.assign(killed_words, 0);
  } else {
    reused = witness_hits_.size() == witness_count &&
             dead_witnesses_.size() == tuple_count &&
             deleted_stamp_.size() == base_count && epoch_ != 0xFFFFFFFFu;
    if (reused) {
      ClearState();
      ++epoch_;
      return true;
    }
    witness_hits_.assign(witness_count, 0);
    dead_witnesses_.assign(tuple_count, 0);
  }
  deleted_stamp_.assign(base_count, 0);
  deleted_pos_.resize(base_count);
  // At most every candidate base can be deleted; reserving here keeps
  // DeleteBase (the per-pick hot path) allocation-free.
  deleted_.reserve(base_count);
  epoch_ = 1;
  touch_.Bind(witness_count, tuple_count);
  state_core_ = nullptr;  // freshly assigned arrays still need seeding
  ClearState();
  return false;
}

void DamageTracker::ClearState() {
  uint32_t witness_count = plan_->witness_count();
  uint32_t tuple_count = plan_->tuple_count();
  // A sparse rollback replays the touch log against the layout it was
  // recorded under, so it requires the same core (identical witness-bit
  // ranges) and a log that never overflowed its caps.
  bool sparse = !touch_.overflow && state_core_ == plan_->core().get();
  if (bits_) {
    uint64_t* hit = kstate_.hit_words.data();
    uint64_t* alive = kstate_.alive_words.data();
    uint64_t* killed = kstate_.killed_words.data();
    if (sparse) {
      for (uint32_t wid : touch_.witnesses) {
        uint32_t first = plan_->witness_bit_begin(wid);
        ClearRange(hit, first, plan_->witness_bit_end(wid) - first);
        SetBit(alive, wid);
      }
      for (uint32_t dense : touch_.tuples) ClearBit(killed, dense);
    } else {
      std::fill(kstate_.hit_words.begin(), kstate_.hit_words.end(), 0);
      std::fill(kstate_.alive_words.begin(), kstate_.alive_words.end(),
                ~0ull);
      if (witness_count % 64 != 0 && !kstate_.alive_words.empty()) {
        kstate_.alive_words.back() = LowMask(witness_count % 64);
      }
      std::fill(kstate_.killed_words.begin(), kstate_.killed_words.end(), 0);
      // Witness-less tuples are killed from the start (scalar convention:
      // dead_witnesses == tuple_witness_count == 0). Absent on every
      // generated workload; the list is cached per core.
      if (zero_witness_core_ != plan_->core().get()) {
        zero_witness_tuples_.clear();
        for (uint32_t t = 0; t < tuple_count; ++t) {
          if (plan_->tuple_witness_count(t) == 0) {
            // delprop-lint: hot-path-allocation-ok once per core, cold
            zero_witness_tuples_.push_back(t);
          }
        }
        zero_witness_core_ = plan_->core().get();
      }
      for (uint32_t t : zero_witness_tuples_) SetBit(killed, t);
    }
  } else {
    if (sparse) {
      // delprop-lint: scalar-kill-loop-ok sparse rollback of the scalar state
      for (uint32_t wid : touch_.witnesses) witness_hits_[wid] = 0;
      for (uint32_t dense : touch_.tuples) dead_witnesses_[dense] = 0;
    } else {
      std::fill(witness_hits_.begin(), witness_hits_.end(), 0);
      std::fill(dead_witnesses_.begin(), dead_witnesses_.end(), 0);
    }
  }
  touch_.Clear();
  state_core_ = plan_->core().get();
}

void DamageTracker::Reset() {
  ClearState();
  deleted_.clear();
  foreign_.clear();
  ++epoch_;
  unkilled_deletions_ = initial_unkilled_deletions_;
  killed_preserved_weight_ = 0.0;
  surviving_deletion_weight_ = initial_surviving_deletion_weight_;
}

bool DamageTracker::IsDeleted(const TupleRef& ref) const {
  uint32_t base = plan_->FindBase(ref);
  if (base != CompiledInstance::kNpos) return IsDeletedBase(base);
  return std::binary_search(foreign_.begin(), foreign_.end(), ref);
}

double DamageTracker::Delete(const TupleRef& ref) {
  uint32_t base = plan_->FindBase(ref);
  if (base == CompiledInstance::kNpos) {
    // Not in any witness: deleting it kills nothing. Track it (sorted) so
    // IsDeleted/Undelete/CurrentDeletion stay consistent.
    auto it = std::lower_bound(foreign_.begin(), foreign_.end(), ref);
    assert(it == foreign_.end() || !(*it == ref));
    // Foreign refs (tuples outside every witness) never occur on the engine
    // steady-state path — solvers only delete candidate bases; this branch
    // serves ad-hoc script use.
    // delprop-lint: hot-path-allocation-ok cold branch, see above
    foreign_.insert(it, ref);
    return 0.0;
  }
  return DeleteBase(base);
}

double DamageTracker::DeleteBaseScalar(uint32_t base) {
  double newly_killed = 0.0;
  uint32_t end = plan_->occ_end(base);
  for (uint32_t slot = plan_->occ_begin(base); slot < end; ++slot) {
    uint32_t wid = plan_->occ_witness(slot);
    // delprop-lint: scalar-kill-loop-ok scalar fallback path
    if (witness_hits_[wid]++ == 0) {
      touch_.NoteWitness(wid);
      uint32_t dense = plan_->occ_tuple(slot);
      uint32_t dead = ++dead_witnesses_[dense];
      if (dead == 1) touch_.NoteTuple(dense);
      if (dead == plan_->tuple_witness_count(dense)) {
        if (plan_->is_deletion(dense)) {
          --unkilled_deletions_;
          surviving_deletion_weight_ -= plan_->weight(dense);
        } else {
          killed_preserved_weight_ += plan_->weight(dense);
          newly_killed += plan_->weight(dense);
        }
      }
    }
  }
  return newly_killed;
}

void DamageTracker::Undelete(const TupleRef& ref) {
  uint32_t base = plan_->FindBase(ref);
  if (base == CompiledInstance::kNpos) {
    auto it = std::lower_bound(foreign_.begin(), foreign_.end(), ref);
    assert(it != foreign_.end() && *it == ref);
    if (it != foreign_.end() && *it == ref) foreign_.erase(it);
    return;
  }
  UndeleteBase(base);
}

void DamageTracker::UndeleteBaseScalar(uint32_t base) {
  uint32_t end = plan_->occ_end(base);
  for (uint32_t slot = plan_->occ_begin(base); slot < end; ++slot) {
    // delprop-lint: scalar-kill-loop-ok scalar fallback path
    if (--witness_hits_[plan_->occ_witness(slot)] == 0) {
      uint32_t dense = plan_->occ_tuple(slot);
      if (dead_witnesses_[dense]-- == plan_->tuple_witness_count(dense)) {
        if (plan_->is_deletion(dense)) {
          ++unkilled_deletions_;
          surviving_deletion_weight_ += plan_->weight(dense);
        } else {
          killed_preserved_weight_ -= plan_->weight(dense);
        }
      }
    }
  }
}

double DamageTracker::MarginalDamage(const TupleRef& ref) const {
  uint32_t base = plan_->FindBase(ref);
  if (base == CompiledInstance::kNpos) return 0.0;
  return MarginalDamageBase(base);
}

double DamageTracker::MarginalDamageBase(uint32_t base) const {
  if (bits_) return kernels_.MarginalDamageBase(base);
  return MarginalDamageBaseScalar(base);
}

uint32_t DamageTracker::SelectBranchWitness() {
  if (bits_) return kernels_.SelectBranchWitness();
  const CompiledInstance& plan = *plan_;
  const uint32_t static_min = plan.min_witness_raw_members();
  uint32_t best = CompiledInstance::kNpos;
  uint32_t best_size = std::numeric_limits<uint32_t>::max();
  for (uint32_t dense : plan.deletion_dense()) {
    if (IsKilledDense(dense)) continue;
    uint32_t wend = plan.tuple_witness_end(dense);
    for (uint32_t w = plan.tuple_witness_begin(dense); w < wend; ++w) {
      // delprop-lint: scalar-kill-loop-ok scalar fallback path
      if (witness_hits_[w] != 0) continue;
      uint32_t size = plan.member_end(w) - plan.member_begin(w);
      if (size < best_size) {
        best = w;
        best_size = size;
      }
      // Strict-< first-wins: nothing can displace a static-minimum witness.
      if (best_size == static_min) return best;
    }
  }
  return best;
}

double DamageTracker::KpwAfterDeleteBaseScalar(uint32_t base) const {
  // The marginal-damage run walk, but accumulating from the live aggregate
  // per newly-killed tuple (ascending, one add per run) — the exact FP
  // sequence DeleteBaseScalar would produce.
  double acc = killed_preserved_weight_;
  uint32_t slot = plan_->occ_begin(base);
  uint32_t end = plan_->occ_end(base);
  while (slot < end) {
    uint32_t dense = plan_->occ_tuple(slot);
    uint32_t fresh_dead = 0;
    do {
      // delprop-lint: scalar-kill-loop-ok scalar fallback path
      if (witness_hits_[plan_->occ_witness(slot)] == 0) ++fresh_dead;
      ++slot;
    } while (slot < end && plan_->occ_tuple(slot) == dense);
    if (plan_->is_deletion(dense)) continue;
    uint32_t dead = dead_witnesses_[dense];
    uint32_t total = plan_->tuple_witness_count(dense);
    if (dead + fresh_dead == total && dead < total) {
      acc += plan_->weight(dense);
    }
  }
  return acc;
}

double DamageTracker::MarginalDamageBaseScalar(uint32_t base) const {
  double damage = 0.0;
  uint32_t slot = plan_->occ_begin(base);
  uint32_t end = plan_->occ_end(base);
  // Occurrence rows are sorted by view tuple; walk runs.
  while (slot < end) {
    uint32_t dense = plan_->occ_tuple(slot);
    uint32_t fresh_dead = 0;
    do {
      // delprop-lint: scalar-kill-loop-ok scalar fallback path
      if (witness_hits_[plan_->occ_witness(slot)] == 0) ++fresh_dead;
      ++slot;
    } while (slot < end && plan_->occ_tuple(slot) == dense);
    if (plan_->is_deletion(dense)) continue;
    uint32_t dead = dead_witnesses_[dense];
    uint32_t total = plan_->tuple_witness_count(dense);
    if (dead + fresh_dead == total && dead < total) {
      damage += plan_->weight(dense);
    }
  }
  return damage;
}

void DamageTracker::MarginalDamageAll(const std::vector<uint32_t>& bases,
                                      std::vector<double>* out) const {
  out->resize(bases.size());
  for (size_t i = 0; i < bases.size(); ++i) {
    (*out)[i] = MarginalDamageBase(bases[i]);
  }
}

bool DamageTracker::CanDropBase(uint32_t base) const {
  assert(IsDeletedBase(base));
  if (bits_) return kernels_.CanDropBase(base);
  return CanDropBaseScalar(base);
}

bool DamageTracker::CanDropBaseScalar(uint32_t base) const {
  uint32_t end = plan_->occ_end(base);
  uint32_t slot = plan_->occ_begin(base);
  while (slot < end) {
    uint32_t dense = plan_->occ_tuple(slot);
    if (!plan_->is_deletion(dense) || !IsKilledDense(dense)) {
      do {
        ++slot;
      } while (slot < end && plan_->occ_tuple(slot) == dense);
      continue;
    }
    do {
      // delprop-lint: scalar-kill-loop-ok scalar fallback path
      if (witness_hits_[plan_->occ_witness(slot)] == 1) return false;
      ++slot;
    } while (slot < end && plan_->occ_tuple(slot) == dense);
  }
  return true;
}

void DamageTracker::CollectUnkilledDeletions(uint32_t base,
                                             std::vector<uint32_t>* out) const {
  out->clear();
  uint32_t end = plan_->kill_end(base);
  for (uint32_t slot = plan_->kill_begin(base); slot < end; ++slot) {
    uint32_t dense = plan_->kill_tuple(slot);
    if (plan_->is_deletion(dense) && !IsKilledDense(dense)) {
      // delprop-lint: hot-path-allocation-ok caller reserves to ΔV size
      out->push_back(dense);
    }
  }
}

bool DamageTracker::SwapWouldImprove(uint32_t base,
                                     const std::vector<uint32_t>& revived,
                                     double budget) const {
  if (bits_) {
    return kernels_.SwapWouldImprove(base, revived.data(),
                                     static_cast<uint32_t>(revived.size()),
                                     killed_preserved_weight_, budget);
  }
  return SwapWouldImproveScalar(base, revived.data(),
                                static_cast<uint32_t>(revived.size()),
                                budget);
}

bool DamageTracker::SwapWouldImproveScalar(uint32_t base,
                                           const uint32_t* revived,
                                           uint32_t n, double budget) const {
  // Feasibility first: every revived ΔV tuple must be newly killed by
  // `base`. Each check binary-searches the base's occurrence row (sorted by
  // tuple) for the tuple's run, then replays the marginal condition.
  uint32_t begin = plan_->occ_begin(base);
  uint32_t end = plan_->occ_end(base);
  uint32_t lo = begin;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t target = revived[i];
    uint32_t hi = end;
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      if (plan_->occ_tuple(mid) < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == end || plan_->occ_tuple(lo) != target) return false;
    uint32_t fresh_dead = 0;
    uint32_t run = lo;
    do {
      // delprop-lint: scalar-kill-loop-ok scalar fallback path
      if (witness_hits_[plan_->occ_witness(run)] == 0) ++fresh_dead;
      ++run;
    } while (run < end && plan_->occ_tuple(run) == target);
    uint32_t dead = dead_witnesses_[target];
    uint32_t total = plan_->tuple_witness_count(target);
    if (dead + fresh_dead != total || dead >= total) return false;
    lo = run;  // revived ids ascend, so the next search starts past the run
  }
  // Cost: accumulate the post-delete killed preserved weight in DeleteBase's
  // addition order (ascending tuple, one add per newly-killed tuple).
  double acc = killed_preserved_weight_;
  uint32_t slot = begin;
  while (slot < end) {
    uint32_t dense = plan_->occ_tuple(slot);
    uint32_t fresh_dead = 0;
    do {
      // delprop-lint: scalar-kill-loop-ok scalar fallback path
      if (witness_hits_[plan_->occ_witness(slot)] == 0) ++fresh_dead;
      ++slot;
    } while (slot < end && plan_->occ_tuple(slot) == dense);
    if (plan_->is_deletion(dense)) continue;
    uint32_t dead = dead_witnesses_[dense];
    uint32_t total = plan_->tuple_witness_count(dense);
    if (dead + fresh_dead == total && dead < total) {
      acc += plan_->weight(dense);
    }
  }
  return acc < budget;
}

// Result materialization: builds the final DeletionSet once, after the
// solver's delete/undelete loops are done.
// delprop-hot-stop
DeletionSet DamageTracker::CurrentDeletion() const {
  DeletionSet out;
  for (uint32_t base : deleted_) out.Insert(plan_->base_ref(base));
  for (const TupleRef& ref : foreign_) out.Insert(ref);
  return out;
}

}  // namespace delprop
