#include "solvers/rbsc_reduction_solver.h"

#include "reductions/vse_to_rbsc.h"

namespace delprop {

Result<VseSolution> RbscReductionSolver::Solve(const VseInstance& instance) {
  if (instance.TotalDeletionTuples() == 0) {
    return MakeSolution(instance, DeletionSet(), name());
  }
  if (!instance.all_unique_witness()) {
    return Status::FailedPrecondition(
        "RBSC reduction requires unique-witness (key-preserving) views");
  }
  Result<VseToRbscMapping> mapping = ReduceVseToRbsc(instance);
  if (!mapping.ok()) return mapping.status();
  Result<RbscSolution> rbsc_solution = rbsc_solver_(mapping->rbsc);
  if (!rbsc_solution.ok()) return rbsc_solution.status();
  DeletionSet deletion = MapRbscChoiceToDeletion(*mapping, *rbsc_solution);
  VseSolution solution = MakeSolution(instance, std::move(deletion), name());
  if (!solution.Feasible()) {
    return Status::Internal(
        "RBSC image solution did not eliminate all deletions");
  }
  return solution;
}

}  // namespace delprop
