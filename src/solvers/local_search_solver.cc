#include "solvers/local_search_solver.h"

#include <limits>
#include <optional>

#include "common/rng.h"
#include "solvers/damage_tracker.h"

namespace delprop {
namespace {

// Randomized greedy construction: kill ΔV tuples in random order, always
// deleting the cheapest member of the first unhit witness.
void RandomizedGreedy(const VseInstance& instance, Rng& rng,
                      DamageTracker& tracker) {
  std::vector<ViewTupleId> order = instance.deletion_tuples();
  rng.Shuffle(order);
  for (const ViewTupleId& id : order) {
    while (!tracker.IsKilled(id)) {
      const Witness* target = nullptr;
      for (const Witness& witness : instance.view_tuple(id).witnesses) {
        bool hit = false;
        for (const TupleRef& ref : witness) {
          if (tracker.IsDeleted(ref)) {
            hit = true;
            break;
          }
        }
        if (!hit) {
          target = &witness;
          break;
        }
      }
      if (target == nullptr) break;  // killed by earlier deletions
      TupleRef best = (*target)[0];
      double best_damage = std::numeric_limits<double>::infinity();
      for (const TupleRef& ref : *target) {
        if (tracker.IsDeleted(ref)) continue;
        double damage = tracker.MarginalDamage(ref);
        // Random tie-breaking keeps restarts diverse.
        if (damage < best_damage ||
            (damage == best_damage && rng.NextBool(0.5))) {
          best_damage = damage;
          best = ref;
        }
      }
      tracker.Delete(best);
    }
  }
}

// Drops unneeded deletions (in random order); returns true on any change.
bool DropPass(Rng& rng, DamageTracker& tracker) {
  std::vector<TupleRef> deleted = tracker.CurrentDeletion().Sorted();
  rng.Shuffle(deleted);
  bool changed = false;
  for (const TupleRef& ref : deleted) {
    tracker.Undelete(ref);
    if (tracker.unkilled_deletion_count() > 0) {
      tracker.Delete(ref);
    } else {
      changed = true;
    }
  }
  return changed;
}

// One swap pass: replace a deleted tuple by an undeleted candidate when that
// keeps feasibility and strictly lowers the cost. Returns true on change.
bool SwapPass(const std::vector<TupleRef>& candidates, Rng& rng,
              DamageTracker& tracker) {
  std::vector<TupleRef> deleted = tracker.CurrentDeletion().Sorted();
  rng.Shuffle(deleted);
  bool changed = false;
  for (const TupleRef& out : deleted) {
    double current = tracker.killed_preserved_weight();
    tracker.Undelete(out);
    if (tracker.unkilled_deletion_count() == 0 &&
        tracker.killed_preserved_weight() < current) {
      changed = true;  // plain drop is already an improvement
      continue;
    }
    bool swapped = false;
    for (const TupleRef& in : candidates) {
      if (tracker.IsDeleted(in) || in == out) continue;
      tracker.Delete(in);
      if (tracker.unkilled_deletion_count() == 0 &&
          tracker.killed_preserved_weight() < current) {
        swapped = true;
        changed = true;
        break;
      }
      tracker.Undelete(in);
    }
    if (!swapped) tracker.Delete(out);
  }
  return changed;
}

}  // namespace

Result<VseSolution> LocalSearchSolver::Solve(const VseInstance& instance) {
  if (instance.TotalDeletionTuples() == 0) {
    return MakeSolution(instance, DeletionSet(), name());
  }
  std::vector<TupleRef> candidates = instance.CandidateTuples();
  Rng rng(options_.seed);

  std::optional<DeletionSet> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t restart = 0; restart < options_.restarts; ++restart) {
    DamageTracker tracker(instance);
    RandomizedGreedy(instance, rng, tracker);
    if (tracker.unkilled_deletion_count() > 0) {
      return Status::Internal("randomized greedy failed to kill all of ΔV");
    }
    for (size_t round = 0; round < options_.max_rounds_per_restart; ++round) {
      bool dropped = DropPass(rng, tracker);
      bool swapped = SwapPass(candidates, rng, tracker);
      if (!dropped && !swapped) break;
    }
    double cost = tracker.killed_preserved_weight();
    if (cost < best_cost) {
      best_cost = cost;
      best = tracker.CurrentDeletion();
    }
  }
  return MakeSolution(instance, std::move(*best), name());
}

}  // namespace delprop
