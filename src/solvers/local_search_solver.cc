#include "solvers/local_search_solver.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/rng.h"
#include "solvers/damage_tracker.h"
#include "solvers/scratch_pool.h"

namespace delprop {
namespace {

// Randomized greedy construction: kill ΔV tuples in random order, always
// deleting the cheapest member of the first unhit witness.
//
// Dense-id note: Rng::Shuffle is a Fisher-Yates that depends only on the
// vector's size, and every dense list mirrors the legacy tuple order, so the
// shuffled sequences, the rng stream (including NextBool consumed on exact
// damage ties — duplicates in the raw member list still tie against
// themselves, as before), and therefore the output are byte-identical to the
// legacy TupleRef-based implementation.
void RandomizedGreedy(const CompiledInstance& plan, Rng& rng,
                      DamageTracker& tracker) {
  std::vector<uint32_t> order = plan.deletion_dense();
  rng.Shuffle(order);
  for (uint32_t id : order) {
    while (!tracker.IsKilledDense(id)) {
      uint32_t witness = tracker.FirstUnhitWitness(id);
      if (witness == CompiledInstance::kNpos) break;  // killed earlier
      uint32_t mbegin = plan.member_begin(witness);
      uint32_t mend = plan.member_end(witness);
      uint32_t best = plan.member_base(mbegin);
      double best_damage = std::numeric_limits<double>::infinity();
      for (uint32_t slot = mbegin; slot < mend; ++slot) {
        uint32_t base = plan.member_base(slot);
        if (tracker.IsDeletedBase(base)) continue;
        double damage = tracker.MarginalDamageBase(base);
        // Random tie-breaking keeps restarts diverse.
        if (damage < best_damage ||
            (damage == best_damage && rng.NextBool(0.5))) {
          best_damage = damage;
          best = base;
        }
      }
      tracker.DeleteBase(best);
    }
  }
}

// Drops unneeded deletions (in random order); returns true on any change.
// The droppability check is a read-only probe (the pass runs on feasible
// states, where "no killed ΔV tuple revives" is exactly "stays feasible"),
// so kept deletions cost one row scan instead of an Undelete/Delete pair.
bool DropPass(Rng& rng, DamageTracker& tracker) {
  std::vector<uint32_t> deleted = tracker.DeletedBases();
  std::sort(deleted.begin(), deleted.end());
  rng.Shuffle(deleted);
  bool changed = false;
  for (uint32_t base : deleted) {
    if (tracker.CanDropBase(base)) {
      tracker.UndeleteBase(base);
      changed = true;
    }
  }
  return changed;
}

// One swap pass: replace a deleted tuple by an undeleted candidate when that
// keeps feasibility and strictly lowers the cost. Returns true on change.
// Candidates are evaluated with the SwapWouldImprove probe — feasibility is
// checked against the (few) tuples the outgoing deletion revived before the
// full damage walk runs, so rejected candidates never mutate the tracker.
// The accept decision is bit-identical to the old Delete → compare →
// Undelete evaluation (same accumulation order), verified by the
// local-search oracle.
bool SwapPass(const std::vector<uint32_t>& candidates, Rng& rng,
              DamageTracker& tracker, std::vector<uint32_t>& revived) {
  std::vector<uint32_t> deleted = tracker.DeletedBases();
  std::sort(deleted.begin(), deleted.end());
  rng.Shuffle(deleted);
  bool changed = false;
  for (uint32_t out : deleted) {
    double current = tracker.killed_preserved_weight();
    tracker.UndeleteBase(out);
    if (tracker.unkilled_deletion_count() == 0 &&
        tracker.killed_preserved_weight() < current) {
      changed = true;  // plain drop is already an improvement
      continue;
    }
    // Every now-unkilled ΔV tuple is in `out`'s kill row (the state was
    // feasible before the undelete), so this collects exactly the tuples a
    // replacement must kill.
    tracker.CollectUnkilledDeletions(out, &revived);
    bool swapped = false;
    for (uint32_t in : candidates) {
      if (tracker.IsDeletedBase(in) || in == out) continue;
      if (tracker.SwapWouldImprove(in, revived, current)) {
        tracker.DeleteBase(in);
        swapped = true;
        changed = true;
        break;
      }
    }
    if (!swapped) tracker.DeleteBase(out);
  }
  return changed;
}

}  // namespace

Result<VseSolution> LocalSearchSolver::Solve(const VseInstance& instance) {
  return SolveWith(instance, nullptr);
}

Result<VseSolution> LocalSearchSolver::SolveWith(const VseInstance& instance,
                                                 ScratchPool* scratch) {
  if (instance.TotalDeletionTuples() == 0) {
    return MakeSolution(instance, DeletionSet(), name());
  }
  Rng rng(options_.seed);

  // One tracker reused across restarts: Reset() restores the exact initial
  // state (no floating-point drift), so this matches constructing a fresh
  // tracker per restart — minus the allocations. Batched callers supply the
  // tracker storage from their scratch pool.
  std::optional<DamageTracker> local;
  if (scratch == nullptr) local.emplace(instance);
  DamageTracker& tracker =
      scratch != nullptr ? *scratch->AcquireTracker(instance) : *local;
  const std::vector<uint32_t>& candidates = tracker.plan().candidate_bases();
  std::vector<uint32_t> revived;
  revived.reserve(tracker.plan().deletion_dense().size());

  std::optional<DeletionSet> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t restart = 0; restart < options_.restarts; ++restart) {
    if (restart > 0) tracker.Reset();
    RandomizedGreedy(tracker.plan(), rng, tracker);
    if (tracker.unkilled_deletion_count() > 0) {
      return Status::Internal("randomized greedy failed to kill all of ΔV");
    }
    for (size_t round = 0; round < options_.max_rounds_per_restart; ++round) {
      bool dropped = DropPass(rng, tracker);
      bool swapped = SwapPass(candidates, rng, tracker, revived);
      if (!dropped && !swapped) break;
    }
    double cost = tracker.killed_preserved_weight();
    if (cost < best_cost) {
      best_cost = cost;
      best = tracker.CurrentDeletion();
    }
  }
  return MakeSolution(instance, std::move(*best), name());
}

}  // namespace delprop
