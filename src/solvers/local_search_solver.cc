#include "solvers/local_search_solver.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/rng.h"
#include "solvers/damage_tracker.h"
#include "solvers/scratch_pool.h"

namespace delprop {
namespace {

// Randomized greedy construction: kill ΔV tuples in random order, always
// deleting the cheapest member of the first unhit witness.
//
// Dense-id note: Rng::Shuffle is a Fisher-Yates that depends only on the
// vector's size, and every dense list mirrors the legacy tuple order, so the
// shuffled sequences, the rng stream (including NextBool consumed on exact
// damage ties — duplicates in the raw member list still tie against
// themselves, as before), and therefore the output are byte-identical to the
// legacy TupleRef-based implementation.
void RandomizedGreedy(const CompiledInstance& plan, Rng& rng,
                      DamageTracker& tracker) {
  std::vector<uint32_t> order = plan.deletion_dense();
  rng.Shuffle(order);
  for (uint32_t id : order) {
    while (!tracker.IsKilledDense(id)) {
      uint32_t witness = CompiledInstance::kNpos;
      uint32_t wend = plan.tuple_witness_end(id);
      for (uint32_t w = plan.tuple_witness_begin(id); w < wend; ++w) {
        if (tracker.witness_hits(w) == 0) {
          witness = w;
          break;
        }
      }
      if (witness == CompiledInstance::kNpos) break;  // killed earlier
      uint32_t mbegin = plan.member_begin(witness);
      uint32_t mend = plan.member_end(witness);
      uint32_t best = plan.member_base(mbegin);
      double best_damage = std::numeric_limits<double>::infinity();
      for (uint32_t slot = mbegin; slot < mend; ++slot) {
        uint32_t base = plan.member_base(slot);
        if (tracker.IsDeletedBase(base)) continue;
        double damage = tracker.MarginalDamageBase(base);
        // Random tie-breaking keeps restarts diverse.
        if (damage < best_damage ||
            (damage == best_damage && rng.NextBool(0.5))) {
          best_damage = damage;
          best = base;
        }
      }
      tracker.DeleteBase(best);
    }
  }
}

// Drops unneeded deletions (in random order); returns true on any change.
bool DropPass(Rng& rng, DamageTracker& tracker) {
  std::vector<uint32_t> deleted = tracker.DeletedBases();
  std::sort(deleted.begin(), deleted.end());
  rng.Shuffle(deleted);
  bool changed = false;
  for (uint32_t base : deleted) {
    tracker.UndeleteBase(base);
    if (tracker.unkilled_deletion_count() > 0) {
      tracker.DeleteBase(base);
    } else {
      changed = true;
    }
  }
  return changed;
}

// One swap pass: replace a deleted tuple by an undeleted candidate when that
// keeps feasibility and strictly lowers the cost. Returns true on change.
bool SwapPass(const std::vector<uint32_t>& candidates, Rng& rng,
              DamageTracker& tracker) {
  std::vector<uint32_t> deleted = tracker.DeletedBases();
  std::sort(deleted.begin(), deleted.end());
  rng.Shuffle(deleted);
  bool changed = false;
  for (uint32_t out : deleted) {
    double current = tracker.killed_preserved_weight();
    tracker.UndeleteBase(out);
    if (tracker.unkilled_deletion_count() == 0 &&
        tracker.killed_preserved_weight() < current) {
      changed = true;  // plain drop is already an improvement
      continue;
    }
    bool swapped = false;
    for (uint32_t in : candidates) {
      if (tracker.IsDeletedBase(in) || in == out) continue;
      tracker.DeleteBase(in);
      if (tracker.unkilled_deletion_count() == 0 &&
          tracker.killed_preserved_weight() < current) {
        swapped = true;
        changed = true;
        break;
      }
      tracker.UndeleteBase(in);
    }
    if (!swapped) tracker.DeleteBase(out);
  }
  return changed;
}

}  // namespace

Result<VseSolution> LocalSearchSolver::Solve(const VseInstance& instance) {
  return SolveWith(instance, nullptr);
}

Result<VseSolution> LocalSearchSolver::SolveWith(const VseInstance& instance,
                                                 ScratchPool* scratch) {
  if (instance.TotalDeletionTuples() == 0) {
    return MakeSolution(instance, DeletionSet(), name());
  }
  Rng rng(options_.seed);

  // One tracker reused across restarts: Reset() restores the exact initial
  // state (no floating-point drift), so this matches constructing a fresh
  // tracker per restart — minus the allocations. Batched callers supply the
  // tracker storage from their scratch pool.
  std::optional<DamageTracker> local;
  if (scratch == nullptr) local.emplace(instance);
  DamageTracker& tracker =
      scratch != nullptr ? *scratch->AcquireTracker(instance) : *local;
  const std::vector<uint32_t>& candidates = tracker.plan().candidate_bases();

  std::optional<DeletionSet> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t restart = 0; restart < options_.restarts; ++restart) {
    if (restart > 0) tracker.Reset();
    RandomizedGreedy(tracker.plan(), rng, tracker);
    if (tracker.unkilled_deletion_count() > 0) {
      return Status::Internal("randomized greedy failed to kill all of ΔV");
    }
    for (size_t round = 0; round < options_.max_rounds_per_restart; ++round) {
      bool dropped = DropPass(rng, tracker);
      bool swapped = SwapPass(candidates, rng, tracker);
      if (!dropped && !swapped) break;
    }
    double cost = tracker.killed_preserved_weight();
    if (cost < best_cost) {
      best_cost = cost;
      best = tracker.CurrentDeletion();
    }
  }
  return MakeSolution(instance, std::move(*best), name());
}

}  // namespace delprop
