#ifndef DELPROP_SOLVERS_EXACT_SOLVER_H_
#define DELPROP_SOLVERS_EXACT_SOLVER_H_

#include <cstdint>

#include "dp/solver.h"

namespace delprop {

/// Exact branch-and-bound for the standard view side-effect objective.
/// Branches on the lowest-damage ways to cut an unkilled ΔV tuple's witness,
/// pruning on the incumbent cost (the greedy solution seeds the incumbent).
/// Handles general CQs (multi-witness lineage) correctly. Exponential in the
/// worst case — the paper's Theorem 1 says it must be — so it is intended
/// for small instances in tests and the ratio benches; `node_budget` caps
/// the search. On exhaustion with an incumbent in hand the solver returns
/// the best feasible solution found with `VseSolution::gap` reporting a
/// certified lower bound and `optimal == false`; exhaustion before any
/// feasible solution still fails with FailedPrecondition. Callers that need
/// a proven optimum must check `gap.optimal`.
class ExactSolver : public VseSolver {
 public:
  explicit ExactSolver(uint64_t node_budget = 20'000'000)
      : node_budget_(node_budget) {}

  std::string name() const override { return "exact"; }
  Result<VseSolution> Solve(const VseInstance& instance) override;
  Result<VseSolution> SolveWith(const VseInstance& instance,
                                ScratchPool* scratch) override;

 private:
  uint64_t node_budget_;
};

/// The bounded variant of Table V (Miao et al. 2018: view propagation with
/// the source deletion bounded in advance): eliminate all of ΔV using at
/// most `max_deletions` source tuples, minimizing the view side-effect;
/// Infeasible when no such deletion exists. Exact branch-and-bound with a
/// cardinality cap.
class BoundedExactSolver : public VseSolver {
 public:
  explicit BoundedExactSolver(size_t max_deletions,
                              uint64_t node_budget = 20'000'000)
      : max_deletions_(max_deletions), node_budget_(node_budget) {}

  std::string name() const override { return "bounded-exact"; }
  Result<VseSolution> Solve(const VseInstance& instance) override;

 private:
  size_t max_deletions_;
  uint64_t node_budget_;
};

/// Exact branch-and-bound for the balanced objective: include/exclude search
/// over the candidate base tuples, pruning with the (monotone) killed-
/// preserved weight plus a surviving-ΔV lower bound.
class ExactBalancedSolver : public VseSolver {
 public:
  explicit ExactBalancedSolver(uint64_t node_budget = 20'000'000)
      : node_budget_(node_budget) {}

  std::string name() const override { return "exact-balanced"; }
  Objective objective() const override { return Objective::kBalanced; }
  Result<VseSolution> Solve(const VseInstance& instance) override;
  Result<VseSolution> SolveWith(const VseInstance& instance,
                                ScratchPool* scratch) override;

 private:
  uint64_t node_budget_;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_EXACT_SOLVER_H_
