#ifndef DELPROP_SOLVERS_SOLVER_REGISTRY_H_
#define DELPROP_SOLVERS_SOLVER_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "dp/solver.h"

namespace delprop {

/// Creates a solver by its stable name:
///   "exact", "exact-balanced", "greedy", "rbsc-lowdeg", "rbsc-greedy",
///   "balanced-pnpsc", "primal-dual", "lowdeg-tree", "dp-tree",
///   "dp-tree-balanced", "source-greedy", "source-exact", "single-deletion".
/// Returns nullptr for an unknown name.
std::unique_ptr<VseSolver> MakeSolver(const std::string& name);

/// All solver names, in a stable presentation order.
std::vector<std::string> AllSolverNames();

/// Instantiates the approximation/heuristic solvers for the standard
/// objective (everything except the exact, balanced, and source solvers).
std::vector<std::unique_ptr<VseSolver>> StandardApproximationSolvers();

}  // namespace delprop

#endif  // DELPROP_SOLVERS_SOLVER_REGISTRY_H_
