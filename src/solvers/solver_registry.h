#ifndef DELPROP_SOLVERS_SOLVER_REGISTRY_H_
#define DELPROP_SOLVERS_SOLVER_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "dp/solver.h"
#include "runtime/thread_pool.h"

namespace delprop {

/// Creates a solver by its stable name:
///   "exact", "exact-balanced", "greedy", "rbsc-lowdeg", "rbsc-greedy",
///   "balanced-pnpsc", "primal-dual", "lowdeg-tree", "dp-tree",
///   "dp-tree-balanced", "source-greedy", "source-exact", "single-deletion".
/// Returns nullptr for an unknown name.
std::unique_ptr<VseSolver> MakeSolver(const std::string& name);

/// All solver names, in a stable presentation order.
std::vector<std::string> AllSolverNames();

/// Instantiates the approximation/heuristic solvers for the standard
/// objective (everything except the exact, balanced, and source solvers).
std::vector<std::unique_ptr<VseSolver>> StandardApproximationSolvers();

/// Outcome of one solver inside RunAll: the solver's result (a solution, or
/// its refusal/error status) plus its wall-clock time.
struct SolverRun {
  std::string name;
  Result<VseSolution> result;
  double wall_ms = 0.0;
};

/// Runs the named solvers over `instance`, concurrently when `pool` has more
/// than one worker (each solver is one task; `instance` is only read). The
/// returned vector is in `names` order and its contents are identical for
/// any thread count — solvers are deterministic and each task writes only
/// its own slot. Unknown names yield a NotFound result in their slot.
/// With an empty `names`, runs the bench comparison set: "exact" plus
/// StandardApproximationSolvers().
std::vector<SolverRun> RunAll(const VseInstance& instance,
                              ThreadPool* pool = nullptr,
                              std::vector<std::string> names = {});

}  // namespace delprop

#endif  // DELPROP_SOLVERS_SOLVER_REGISTRY_H_
