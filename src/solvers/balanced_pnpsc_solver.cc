#include "solvers/balanced_pnpsc_solver.h"

#include "reductions/balanced_to_pnpsc.h"

namespace delprop {

Result<VseSolution> BalancedPnpscSolver::Solve(const VseInstance& instance) {
  if (instance.TotalDeletionTuples() == 0) {
    return MakeSolution(instance, DeletionSet(), name());
  }
  if (!instance.all_unique_witness()) {
    return Status::FailedPrecondition(
        "±PSC reduction requires unique-witness (key-preserving) views");
  }
  Result<BalancedToPnpscMapping> mapping = ReduceBalancedToPnpsc(instance);
  if (!mapping.ok()) return mapping.status();
  Result<PnpscSolution> pnpsc_solution =
      SolvePnpsc(mapping->pnpsc, rbsc_solver_);
  if (!pnpsc_solution.ok()) return pnpsc_solution.status();
  DeletionSet deletion = MapPnpscChoiceToDeletion(*mapping, *pnpsc_solution);
  return MakeSolution(instance, std::move(deletion), name());
}

}  // namespace delprop
