#include "solvers/source_side_effect_solver.h"

#include "plan/compiled_instance.h"
#include "setcover/greedy_set_cover.h"

namespace delprop {

Result<VseSolution> SourceSideEffectSolver::Solve(
    const VseInstance& instance) {
  if (instance.TotalDeletionTuples() == 0) {
    return MakeSolution(instance, DeletionSet(), name());
  }
  if (!instance.all_unique_witness()) {
    return Status::FailedPrecondition(
        "source side-effect via set cover requires unique-witness views");
  }
  // Elements: ΔV tuples (element id = ΔV position = the plan's
  // deletion_index); sets: candidate base tuples, their covered elements
  // read straight off the kill CSR rows.
  std::shared_ptr<const CompiledInstance> plan = instance.compiled();
  const std::vector<uint32_t>& candidates = plan->candidate_bases();
  SetCoverInstance cover;
  cover.element_count = instance.TotalDeletionTuples();
  cover.sets.reserve(candidates.size());
  for (uint32_t base : candidates) {
    uint32_t begin = plan->kill_begin(base);
    uint32_t end = plan->kill_end(base);
    // Count first so the per-set vector is sized exactly — these lists are
    // retained for the whole set-cover run. Branchless bit tests against
    // the ΔV word overlay.
    size_t deletions = plan->KillRowDeletionCount(base);
    std::vector<size_t> elements;
    elements.reserve(deletions);
    for (uint32_t slot = begin; slot < end; ++slot) {
      uint32_t dense = plan->kill_tuple(slot);
      if (plan->is_deletion(dense)) {
        elements.push_back(plan->deletion_index(dense));
      }
    }
    cover.sets.push_back(std::move(elements));
  }
  Result<std::vector<size_t>> chosen =
      mode_ == Mode::kGreedy ? GreedySetCover(cover)
                             : ExactSetCover(cover, node_budget_);
  if (!chosen.ok()) return chosen.status();
  DeletionSet deletion;
  for (size_t s : *chosen) deletion.Insert(plan->base_ref(candidates[s]));
  return MakeSolution(instance, std::move(deletion), name());
}

}  // namespace delprop
