#include "solvers/source_side_effect_solver.h"

#include <unordered_map>

#include "setcover/greedy_set_cover.h"

namespace delprop {

Result<VseSolution> SourceSideEffectSolver::Solve(
    const VseInstance& instance) {
  if (instance.TotalDeletionTuples() == 0) {
    return MakeSolution(instance, DeletionSet(), name());
  }
  if (!instance.all_unique_witness()) {
    return Status::FailedPrecondition(
        "source side-effect via set cover requires unique-witness views");
  }
  // Elements: ΔV tuples; sets: candidate base tuples killing them.
  std::unordered_map<ViewTupleId, size_t, ViewTupleIdHash> element_id;
  for (const ViewTupleId& id : instance.deletion_tuples()) {
    element_id.emplace(id, element_id.size());
  }
  std::vector<TupleRef> candidates = instance.CandidateTuples();
  SetCoverInstance cover;
  cover.element_count = element_id.size();
  for (const TupleRef& ref : candidates) {
    std::vector<size_t> elements;
    for (const ViewTupleId& id : instance.KilledBy(ref)) {
      auto it = element_id.find(id);
      if (it != element_id.end()) elements.push_back(it->second);
    }
    cover.sets.push_back(std::move(elements));
  }
  Result<std::vector<size_t>> chosen =
      mode_ == Mode::kGreedy ? GreedySetCover(cover)
                             : ExactSetCover(cover, node_budget_);
  if (!chosen.ok()) return chosen.status();
  DeletionSet deletion;
  for (size_t s : *chosen) deletion.Insert(candidates[s]);
  return MakeSolution(instance, std::move(deletion), name());
}

}  // namespace delprop
