#include "solvers/solver_registry.h"

#include <chrono>
#include <utility>

#include "ilp/ilp_solver.h"
#include "setcover/red_blue_solvers.h"
#include "solvers/balanced_pnpsc_solver.h"
#include "solvers/dp_tree_solver.h"
#include "solvers/exact_solver.h"
#include "solvers/greedy_solver.h"
#include "solvers/local_search_solver.h"
#include "solvers/lowdeg_tree_solver.h"
#include "solvers/primal_dual_tree_solver.h"
#include "solvers/rbsc_reduction_solver.h"
#include "solvers/single_query_solver.h"
#include "solvers/source_side_effect_solver.h"

namespace delprop {

// Solver construction is once-per-request setup, not part of any solve
// inner loop; the engine additionally memoizes solvers per worker.
// delprop-hot-stop
std::unique_ptr<VseSolver> MakeSolver(const std::string& name) {
  if (name == "exact") return std::make_unique<ExactSolver>();
  if (name == "exact-balanced") return std::make_unique<ExactBalancedSolver>();
  if (name == "ilp" || name == "ilp-balanced") {
    // Registry-made ILP solvers carry a 2s wall-clock deadline so RunAll and
    // the shell stay responsive on adversarial instances; past it the solver
    // still returns its incumbent with a certified gap. Tests and oracles
    // construct IlpSolver directly with the deadline disabled when they need
    // machine-independent node counts.
    IlpOptions options;
    options.deadline_ms = 2000.0;
    return std::make_unique<IlpSolver>(name == "ilp-balanced"
                                           ? Objective::kBalanced
                                           : Objective::kStandard,
                                       options);
  }
  if (name == "greedy") return std::make_unique<GreedySolver>();
  if (name == "local-search") return std::make_unique<LocalSearchSolver>();
  if (name == "rbsc-lowdeg") return std::make_unique<RbscReductionSolver>();
  if (name == "rbsc-greedy") {
    return std::make_unique<RbscReductionSolver>(SolveRbscGreedy,
                                                 "rbsc-greedy");
  }
  if (name == "balanced-pnpsc") return std::make_unique<BalancedPnpscSolver>();
  if (name == "primal-dual") return std::make_unique<PrimalDualTreeSolver>();
  if (name == "lowdeg-tree") return std::make_unique<LowDegTreeSolver>();
  if (name == "dp-tree") return std::make_unique<DpTreeSolver>();
  if (name == "dp-tree-balanced") {
    return std::make_unique<DpTreeSolver>(Objective::kBalanced);
  }
  if (name == "source-greedy") {
    return std::make_unique<SourceSideEffectSolver>();
  }
  if (name == "source-exact") {
    return std::make_unique<SourceSideEffectSolver>(
        SourceSideEffectSolver::Mode::kExact);
  }
  if (name == "single-deletion") return std::make_unique<SingleQuerySolver>();
  return nullptr;
}

std::vector<std::string> AllSolverNames() {
  return {"exact",       "exact-balanced", "ilp",            "ilp-balanced",
          "greedy",      "local-search",   "rbsc-lowdeg",    "rbsc-greedy",
          "balanced-pnpsc", "primal-dual", "lowdeg-tree",    "dp-tree",
          "dp-tree-balanced", "source-greedy", "source-exact",
          "single-deletion"};
}

std::vector<SolverRun> RunAll(const VseInstance& instance, ThreadPool* pool,
                              std::vector<std::string> names) {
  if (names.empty()) {
    names.push_back("exact");
    names.push_back("ilp");
    for (const auto& solver : StandardApproximationSolvers()) {
      names.push_back(solver->name());
    }
  }
  std::vector<SolverRun> runs;
  runs.reserve(names.size());
  for (std::string& name : names) {
    runs.push_back(
        SolverRun{std::move(name), Status::Internal("solver did not run")});
  }
  // One task per solver. Every task owns its solver object and writes only
  // runs[i]; the instance is shared read-only, which every solver's contract
  // already promises.
  ParallelFor(pool, runs.size(), [&](size_t i) {
    SolverRun& run = runs[i];
    std::unique_ptr<VseSolver> solver = MakeSolver(run.name);
    if (solver == nullptr) {
      run.result = Status::NotFound("unknown solver '" + run.name + "'");
      return;
    }
    auto start = std::chrono::steady_clock::now();
    run.result = solver->Solve(instance);
    auto end = std::chrono::steady_clock::now();
    run.wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            end - start)
            .count();
  });
  return runs;
}

std::vector<std::unique_ptr<VseSolver>> StandardApproximationSolvers() {
  std::vector<std::unique_ptr<VseSolver>> solvers;
  solvers.push_back(MakeSolver("greedy"));
  solvers.push_back(MakeSolver("local-search"));
  solvers.push_back(MakeSolver("rbsc-greedy"));
  solvers.push_back(MakeSolver("rbsc-lowdeg"));
  solvers.push_back(MakeSolver("primal-dual"));
  solvers.push_back(MakeSolver("lowdeg-tree"));
  solvers.push_back(MakeSolver("dp-tree"));
  return solvers;
}

}  // namespace delprop
