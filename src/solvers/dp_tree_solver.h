#ifndef DELPROP_SOLVERS_DP_TREE_SOLVER_H_
#define DELPROP_SOLVERS_DP_TREE_SOLVER_H_

#include "dp/solver.h"

namespace delprop {

/// Algorithm 4, DPTreeVSE: exact polynomial dynamic programming for forest
/// cases with a pivot tuple — every witness is a vertical (ancestor-chain)
/// path under the pivot rooting. States are (node, depth of the closest
/// deleted strict ancestor); killed view tuples are charged at their first
/// deleted node top-down, which is well-defined exactly because paths are
/// vertical. Solves both the standard objective (hard feasibility on ΔV) and
/// the balanced one (soft penalties) exactly.
class DpTreeSolver : public VseSolver {
 public:
  explicit DpTreeSolver(Objective objective = Objective::kStandard)
      : objective_(objective) {}

  std::string name() const override {
    return objective_ == Objective::kStandard ? "dp-tree" : "dp-tree-balanced";
  }
  Objective objective() const override { return objective_; }
  Result<VseSolution> Solve(const VseInstance& instance) override;

 private:
  Objective objective_;
};

}  // namespace delprop

#endif  // DELPROP_SOLVERS_DP_TREE_SOLVER_H_
