#include "solvers/single_query_solver.h"

#include <limits>

#include "solvers/damage_tracker.h"

namespace delprop {

Result<VseSolution> SingleQuerySolver::Solve(const VseInstance& instance) {
  if (instance.TotalDeletionTuples() != 1) {
    return Status::FailedPrecondition(
        "single-deletion solver requires exactly one ΔV tuple");
  }
  if (!instance.all_unique_witness()) {
    return Status::FailedPrecondition(
        "single-deletion solver requires unique-witness views");
  }
  const ViewTupleId& target = instance.deletion_tuples()[0];
  const Witness& witness = instance.view_tuple(target).witnesses[0];

  DamageTracker tracker(instance);
  TupleRef best = witness[0];
  double best_damage = std::numeric_limits<double>::infinity();
  for (const TupleRef& ref : witness) {
    double damage = tracker.MarginalDamage(ref);
    if (damage < best_damage) {
      best_damage = damage;
      best = ref;
    }
  }
  DeletionSet deletion;
  deletion.Insert(best);
  return MakeSolution(instance, std::move(deletion), name());
}

}  // namespace delprop
