#ifndef DELPROP_ENGINE_BATCH_ENGINE_H_
#define DELPROP_ENGINE_BATCH_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dp/base_delta.h"
#include "dp/solution.h"
#include "dp/solver.h"
#include "dp/vse_instance.h"
#include "runtime/thread_pool.h"
#include "solvers/scratch_pool.h"

namespace delprop {

/// One deletion-propagation request against the engine's instance: a ΔV
/// subset (any order, duplicates allowed), a registry solver name, and the
/// objective the caller expects — requests whose objective does not match
/// the named solver's fail with InvalidArgument instead of silently
/// optimizing the wrong thing.
struct SolveRequest {
  std::vector<ViewTupleId> delta_v;
  std::string solver = "greedy";
  Objective objective = Objective::kStandard;
};

/// Per-request provenance counters. `wall_ms` and `cache_hit` depend on
/// scheduling (which worker saw the duplicate first), so they — unlike the
/// results — may differ between runs at different thread counts.
struct RequestStats {
  double wall_ms = 0.0;
  bool cache_hit = false;
  /// The solver drew tracker storage from the worker pool without
  /// allocating (steady state after the worker's first request).
  bool scratch_reused = false;
  /// The request's plan was an overlay-only rebuild over the shared core.
  bool plan_core_reused = false;
  /// The overlay itself was built into recycled buffers (no allocation).
  bool plan_overlay_recycled = false;
};

struct RequestOutcome {
  Result<VseSolution> result;
  RequestStats stats;

  RequestOutcome() : result(Status::Internal("request did not run")) {}
};

/// Cumulative engine counters, aggregated across workers after each batch.
struct EngineStats {
  size_t requests = 0;
  size_t cache_hits = 0;
  size_t solver_runs = 0;
  size_t invalid_requests = 0;
  size_t scratch_acquires = 0;
  size_t scratch_allocs = 0;
  size_t scratch_reuses = 0;
  size_t plan_full_builds = 0;
  size_t plan_core_rebinds = 0;
  size_t plan_overlay_recycles = 0;
  /// Base-data deltas applied through BatchSolveEngine::ApplyDelta.
  size_t deltas_applied = 0;
};

/// Executes batches of SolveRequests against ONE instance, amortizing
/// everything ΔV-independent across the whole batch:
///   * the CompiledInstance core is built once (on the primary instance,
///     before replication) and shared read-only by every worker replica;
///   * each worker owns a `VseInstance::Replicate()` replica whose ΔV is
///     swapped per request via ResetDeletions — an overlay-only plan rebuild
///     into recycled buffers, no re-interning;
///   * each worker owns a ScratchPool whose single DamageTracker is rebound
///     (epoch-stamped reset) instead of reallocated per request;
///   * solvers are constructed once per (worker, name) and reused;
///   * an optional memo cache returns the stored result for an identical
///     (solver, normalized ΔV) pair without re-solving.
/// After each worker's first request (warmup), the greedy hot path performs
/// no steady-state allocations — asserted by tests via the counters above.
///
/// Results are deterministic: outcome i is solved against the same replica
/// state regardless of which worker claims it, so the outcome vector is
/// byte-identical at any `threads` setting and with the cache on or off
/// (RequestStats, which record scheduling provenance, are exempt).
///
/// Live base data: ApplyDelta (below) mutates the primary instance between
/// batches and atomically re-replicates every worker from the updated
/// structure and plan core — the core-epoch counts these handoffs.
///
/// The instance, its database, and its queries must outlive the engine.
class BatchSolveEngine {
 public:
  struct Options {
    /// Worker replicas; > 1 also spins up an internal ThreadPool.
    size_t threads = 1;
    /// Memoize (solver, ΔV) → result across the engine's lifetime.
    bool memo_cache = true;
  };

  /// The engine keeps a pointer to `instance` (the primary): SolveBatch only
  /// reads it, ApplyDelta mutates it on the caller's behalf.
  BatchSolveEngine(VseInstance& instance, Options options);
  ~BatchSolveEngine();

  BatchSolveEngine(const BatchSolveEngine&) = delete;
  BatchSolveEngine& operator=(const BatchSolveEngine&) = delete;

  /// Executes `requests`, returning one outcome per request (same order).
  /// Invalid requests (unknown solver, objective mismatch, out-of-range ΔV)
  /// yield error outcomes; they never abort the batch.
  std::vector<RequestOutcome> SolveBatch(
      const std::vector<SolveRequest>& requests);

  /// Applies a base-data delta to the primary instance and re-replicates
  /// every worker from the result, so the next batch serves the new data.
  /// Call between batches — not concurrently with SolveBatch.
  ///
  /// The handoff drops every worker replica FIRST (making the primary the
  /// sole owner of the shared view structure, so VseInstance::ApplyDelta
  /// mutates in place instead of detaching a copy), then applies the delta,
  /// recompiles the primary's plan once, and re-replicates. On success the
  /// core-epoch advances and the memo cache is cleared (cached results were
  /// computed against the old base data). On validation failure the primary
  /// is untouched and the epoch keeps its value, but replicas are rebuilt
  /// either way.
  Status ApplyDelta(Database& database, const BaseDelta& delta,
                    const ApplyDeltaOptions& delta_options = {},
                    ApplyDeltaReport* report = nullptr);

  /// Number of successful ApplyDelta handoffs; every worker replica always
  /// serves the structure this epoch refers to.
  uint64_t core_epoch() const { return core_epoch_; }

  /// Cumulative counters over every batch so far. Call between batches —
  /// not concurrently with SolveBatch.
  EngineStats stats() const;

  size_t worker_count() const { return workers_.size(); }

 private:
  struct Worker;

  struct CacheKey {
    std::string solver;
    std::vector<ViewTupleId> delta_v;  // normalized: sorted, deduplicated
  };
  /// Borrowed-reference mirror of CacheKey: probing the memo cache with one
  /// of these (heterogeneous lookup) costs zero allocations; an owned
  /// CacheKey is only materialized on a miss, when the entry is inserted.
  struct CacheKeyView {
    const std::string& solver;
    const std::vector<ViewTupleId>& delta_v;
  };
  struct CacheKeyHash {
    using is_transparent = void;
    size_t operator()(const CacheKey& key) const;
    size_t operator()(const CacheKeyView& key) const;
  };
  struct CacheKeyEq {
    using is_transparent = void;
    bool operator()(const CacheKey& a, const CacheKey& b) const {
      return a.solver == b.solver && a.delta_v == b.delta_v;
    }
    bool operator()(const CacheKey& a, const CacheKeyView& b) const {
      return a.solver == b.solver && a.delta_v == b.delta_v;
    }
    bool operator()(const CacheKeyView& a, const CacheKey& b) const {
      return a.solver == b.solver && a.delta_v == b.delta_v;
    }
  };

  void Process(Worker& worker, const SolveRequest& request,
               RequestOutcome* outcome);

  Options options_;
  VseInstance* primary_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<ThreadPool> pool_;
  uint64_t core_epoch_ = 0;
  size_t deltas_applied_ = 0;

  std::mutex cache_mu_;
  std::unordered_map<CacheKey, Result<VseSolution>, CacheKeyHash, CacheKeyEq>
      cache_;
};

}  // namespace delprop

#endif  // DELPROP_ENGINE_BATCH_ENGINE_H_
