#include "engine/batch_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <utility>

#include "common/hash.h"
#include "solvers/solver_registry.h"

namespace delprop {

/// Everything one worker owns privately: a replica of the engine's instance
/// (mutable ΔV over the shared plan core), pooled solver scratch, the
/// solvers it has constructed so far (std::map: deterministic iteration is
/// irrelevant here, but lookups are off the hot path and the key set is
/// tiny), a ΔV normalization buffer, and its share of the engine counters.
struct BatchSolveEngine::Worker {
  explicit Worker(VseInstance replica_in) { replica.emplace(std::move(replica_in)); }

  /// Engaged except transiently inside BatchSolveEngine::ApplyDelta, which
  /// drops every replica before mutating the primary (sole-owner in-place
  /// mutation) and re-emplaces them from the updated primary afterwards.
  std::optional<VseInstance> replica;
  ScratchPool scratch;
  std::map<std::string, std::unique_ptr<VseSolver>> solvers;
  std::vector<ViewTupleId> dv_buffer;

  size_t requests = 0;
  size_t cache_hits = 0;
  size_t solver_runs = 0;
  size_t invalid_requests = 0;
};

size_t BatchSolveEngine::CacheKeyHash::operator()(const CacheKey& key) const {
  return (*this)(CacheKeyView{key.solver, key.delta_v});
}

size_t BatchSolveEngine::CacheKeyHash::operator()(
    const CacheKeyView& key) const {
  size_t seed = std::hash<std::string>()(key.solver);
  for (const ViewTupleId& id : key.delta_v) {
    HashCombine(seed, ViewTupleIdHash()(id));
  }
  return seed;
}

BatchSolveEngine::BatchSolveEngine(VseInstance& instance, Options options)
    : options_(options), primary_(&instance) {
  if (options_.threads == 0) options_.threads = 1;
  // Compile the primary's plan before replicating so every replica starts
  // from the one shared core (and the current plan) instead of building its
  // own.
  (void)instance.compiled();
  workers_.reserve(options_.threads);
  for (size_t w = 0; w < options_.threads; ++w) {
    workers_.push_back(std::make_unique<Worker>(instance.Replicate()));
  }
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
}

BatchSolveEngine::~BatchSolveEngine() = default;

void BatchSolveEngine::Process(Worker& worker, const SolveRequest& request,
                               RequestOutcome* outcome) {
  auto start = std::chrono::steady_clock::now();
  ++worker.requests;
  do {
    // Resolve the solver first: worker-cached, constructed once per name.
    VseSolver* solver = nullptr;
    auto it = worker.solvers.find(request.solver);
    if (it != worker.solvers.end()) {
      solver = it->second.get();
    } else {
      std::unique_ptr<VseSolver> made = MakeSolver(request.solver);
      if (made == nullptr) {
        ++worker.invalid_requests;
        outcome->result =
            Status::NotFound("unknown solver '" + request.solver + "'");
        break;
      }
      solver = made.get();
      worker.solvers.emplace(request.solver, std::move(made));
    }
    if (solver->objective() != request.objective) {
      ++worker.invalid_requests;
      outcome->result = Status::InvalidArgument(
          "solver '" + request.solver + "' optimizes a different objective");
      break;
    }

    // Normalize ΔV into the worker buffer (capacity reused across requests).
    worker.dv_buffer.assign(request.delta_v.begin(), request.delta_v.end());
    std::sort(worker.dv_buffer.begin(), worker.dv_buffer.end());
    worker.dv_buffer.erase(
        std::unique(worker.dv_buffer.begin(), worker.dv_buffer.end()),
        worker.dv_buffer.end());

    if (options_.memo_cache) {
      // Heterogeneous probe: no CacheKey (string + vector copies) is
      // constructed on the hit path — or on the miss path; the owned key is
      // built once, at insertion after the solve.
      std::lock_guard<std::mutex> lock(cache_mu_);
      auto hit = cache_.find(CacheKeyView{request.solver, worker.dv_buffer});
      if (hit != cache_.end()) {
        ++worker.cache_hits;
        outcome->stats.cache_hit = true;
        outcome->result = hit->second;
        break;
      }
    }

    // Release the pooled tracker's plan reference BEFORE swapping ΔV: the
    // retired plan then has no outside owner, so the rebuild below recycles
    // its overlay buffers instead of allocating.
    worker.scratch.ReleasePlans();
    if (Status s = worker.replica->ResetDeletions(worker.dv_buffer);
        !s.ok()) {
      ++worker.invalid_requests;
      outcome->result = std::move(s);
      break;
    }

    PlanBuildStats plan_before = worker.replica->plan_stats();
    ScratchPool::Stats scratch_before = worker.scratch.stats();
    outcome->result = solver->SolveWith(*worker.replica, &worker.scratch);
    ++worker.solver_runs;
    PlanBuildStats plan_after = worker.replica->plan_stats();
    ScratchPool::Stats scratch_after = worker.scratch.stats();
    outcome->stats.plan_core_reused =
        plan_after.full_builds == plan_before.full_builds;
    outcome->stats.plan_overlay_recycled =
        plan_after.overlay_recycles > plan_before.overlay_recycles;
    outcome->stats.scratch_reused =
        scratch_after.tracker_reuses > scratch_before.tracker_reuses &&
        scratch_after.tracker_allocs == scratch_before.tracker_allocs;

    if (options_.memo_cache) {
      CacheKey key{request.solver, worker.dv_buffer};
      std::lock_guard<std::mutex> lock(cache_mu_);
      // Two workers may race on the same fresh key; both computed the same
      // deterministic result, so first-in wins and the duplicate is dropped.
      cache_.emplace(std::move(key), outcome->result);
    }
  } while (false);
  outcome->stats.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
}

std::vector<RequestOutcome> BatchSolveEngine::SolveBatch(
    const std::vector<SolveRequest>& requests) {
  std::vector<RequestOutcome> outcomes(requests.size());
  if (workers_.size() == 1 || pool_ == nullptr || requests.size() <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) {
      Process(*workers_[0], requests[i], &outcomes[i]);
    }
    return outcomes;
  }
  // Dynamic claiming: each worker body owns one replica and pulls the next
  // unclaimed request. Outcome slots are pre-assigned by request index, so
  // the output does not depend on the claim order.
  std::atomic<size_t> next{0};
  ParallelFor(pool_.get(), workers_.size(), [&](size_t w) {
    for (size_t i = next.fetch_add(1); i < requests.size();
         i = next.fetch_add(1)) {
      Process(*workers_[w], requests[i], &outcomes[i]);
    }
  });
  return outcomes;
}

EngineStats BatchSolveEngine::stats() const {
  EngineStats total;
  for (const std::unique_ptr<Worker>& worker : workers_) {
    total.requests += worker->requests;
    total.cache_hits += worker->cache_hits;
    total.solver_runs += worker->solver_runs;
    total.invalid_requests += worker->invalid_requests;
    const ScratchPool::Stats& scratch = worker->scratch.stats();
    total.scratch_acquires += scratch.tracker_acquires;
    total.scratch_allocs += scratch.tracker_allocs;
    total.scratch_reuses += scratch.tracker_reuses;
    PlanBuildStats plan = worker->replica->plan_stats();
    total.plan_full_builds += plan.full_builds;
    total.plan_core_rebinds += plan.core_rebinds;
    total.plan_overlay_recycles += plan.overlay_recycles;
  }
  total.deltas_applied = deltas_applied_;
  return total;
}

Status BatchSolveEngine::ApplyDelta(Database& database, const BaseDelta& delta,
                                    const ApplyDeltaOptions& delta_options,
                                    ApplyDeltaReport* report) {
  // Drop every replica (and its scratch's plan references) first: the
  // primary becomes the sole owner of the shared view structure and plan
  // core, so VseInstance::ApplyDelta mutates in place instead of detaching a
  // copy-on-write duplicate for data no one will ever read again.
  for (std::unique_ptr<Worker>& worker : workers_) {
    worker->scratch.ReleasePlans();
    worker->replica.reset();
  }
  Status applied = primary_->ApplyDelta(database, delta, delta_options,
                                        report);
  // Recompile once on the primary (patched core + fresh overlay), then hand
  // the result to every worker — on validation failure the primary is
  // unchanged and this simply restores the fleet.
  (void)primary_->compiled();
  for (std::unique_ptr<Worker>& worker : workers_) {
    worker->replica.emplace(primary_->Replicate());
  }
  if (applied.ok()) {
    ++core_epoch_;
    ++deltas_applied_;
    // Memoized results were computed against the old base data.
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_.clear();
  }
  return applied;
}

}  // namespace delprop
