#include "query/semijoin.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "hypergraph/gyo.h"
#include "query/query_properties.h"

namespace delprop {
namespace {

using ValueKey = std::vector<ValueId>;
using KeySet = std::unordered_set<ValueKey, VectorHash<ValueId>>;

/// Rows of `atom`'s relation that satisfy the atom's constants and repeated
/// variables and are not masked.
std::vector<uint32_t> InitialAliveRows(const Database& db, const Atom& atom,
                                       const DeletionSet* mask) {
  const Relation& rel = db.relation(atom.relation);
  std::vector<uint32_t> alive;
  for (uint32_t row_index = 0; row_index < rel.row_count(); ++row_index) {
    if (mask != nullptr && mask->Contains({atom.relation, row_index})) {
      continue;
    }
    const Tuple& row = rel.row(row_index);
    bool ok = true;
    // Constants must match; repeated variables must agree.
    for (size_t p = 0; p < atom.terms.size() && ok; ++p) {
      const Term& t = atom.terms[p];
      if (t.is_constant()) {
        ok = row[p] == t.id;
        continue;
      }
      for (size_t q = p + 1; q < atom.terms.size() && ok; ++q) {
        const Term& u = atom.terms[q];
        if (u.is_variable() && u.id == t.id) ok = row[p] == row[q];
      }
    }
    if (ok) alive.push_back(row_index);
  }
  return alive;
}

/// Positions of `atom` holding each variable of `shared` (first occurrence).
std::vector<size_t> SharedPositions(const Atom& atom,
                                    const std::vector<VarId>& shared) {
  std::vector<size_t> positions;
  for (VarId var : shared) {
    for (size_t p = 0; p < atom.terms.size(); ++p) {
      if (atom.terms[p].is_variable() && atom.terms[p].id == var) {
        positions.push_back(p);
        break;
      }
    }
  }
  return positions;
}

ValueKey ProjectRow(const Tuple& row, const std::vector<size_t>& positions) {
  ValueKey key;
  key.reserve(positions.size());
  for (size_t p : positions) key.push_back(row[p]);
  return key;
}

}  // namespace

Result<View> EvaluateWithSemijoinReduction(const Database& database,
                                           const ConjunctiveQuery& query,
                                           const EvalOptions& options,
                                           SemijoinStats* semijoin_stats) {
  if (Status s = query.Validate(database.schema()); !s.ok()) return s;
  if (semijoin_stats != nullptr) {
    semijoin_stats->rows_pruned.assign(query.atoms().size(), 0);
    semijoin_stats->acyclic = false;
  }

  // Self-joins share one relation across atoms, so a per-relation mask
  // cannot express per-atom pruning — fall back.
  if (!IsSelfJoinFree(query)) return Evaluate(database, query, options);

  // Join tree over atoms (vertices = variables).
  Hypergraph graph(query.variable_count());
  for (const Atom& atom : query.atoms()) {
    std::vector<size_t> vars;
    for (const Term& t : atom.terms) {
      if (t.is_variable()) vars.push_back(t.id);
    }
    graph.AddEdge(std::move(vars));
  }
  JoinTree tree;
  if (!IsAlphaAcyclic(graph, &tree)) {
    return Evaluate(database, query, options);
  }
  if (semijoin_stats != nullptr) semijoin_stats->acyclic = true;

  const auto& atoms = query.atoms();
  size_t n = atoms.size();
  std::vector<std::vector<uint32_t>> alive(n);
  for (size_t a = 0; a < n; ++a) {
    alive[a] = InitialAliveRows(database, atoms[a], options.mask);
  }

  // Shared variables with the parent, per atom.
  std::vector<std::vector<VarId>> shared(n);
  for (size_t a = 0; a < n; ++a) {
    if (tree.parent[a] < 0) continue;
    size_t p = static_cast<size_t>(tree.parent[a]);
    std::unordered_set<VarId> parent_vars;
    for (const Term& t : atoms[p].terms) {
      if (t.is_variable()) parent_vars.insert(t.id);
    }
    std::unordered_set<VarId> seen;
    for (const Term& t : atoms[a].terms) {
      if (t.is_variable() && parent_vars.count(t.id) > 0 &&
          seen.insert(t.id).second) {
        shared[a].push_back(t.id);
      }
    }
  }

  // Semijoin `target` with `source` on `vars`: keep target rows whose
  // projection appears among source's alive rows.
  auto semijoin = [&](size_t target, size_t source,
                      const std::vector<VarId>& vars) {
    if (vars.empty()) return;  // cartesian link: nothing to filter on
    std::vector<size_t> source_pos = SharedPositions(atoms[source], vars);
    std::vector<size_t> target_pos = SharedPositions(atoms[target], vars);
    const Relation& source_rel = database.relation(atoms[source].relation);
    const Relation& target_rel = database.relation(atoms[target].relation);
    KeySet keys;
    for (uint32_t row : alive[source]) {
      keys.insert(ProjectRow(source_rel.row(row), source_pos));
    }
    std::vector<uint32_t> kept;
    for (uint32_t row : alive[target]) {
      if (keys.count(ProjectRow(target_rel.row(row), target_pos)) > 0) {
        kept.push_back(row);
      }
    }
    alive[target] = std::move(kept);
  };

  // Process children before parents: absorption order is already such that
  // an edge is removed only after everything absorbed into IT — children
  // have lower "removal time". GYO emits parents during reduction, so a
  // child was removed before its parent; iterating atoms in any order twice
  // (up then down) with the parent links is sufficient because the forest
  // has depth ≤ n: do a fixpoint-free two-phase sweep ordered by depth.
  std::vector<size_t> depth(n, 0);
  for (size_t a = 0; a < n; ++a) {
    size_t walker = a, d = 0;
    while (tree.parent[walker] >= 0) {
      walker = static_cast<size_t>(tree.parent[walker]);
      if (++d > n) break;  // defensive: malformed tree
    }
    depth[a] = d;
  }
  std::vector<size_t> order(n);
  for (size_t a = 0; a < n; ++a) order[a] = a;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return depth[a] > depth[b]; });

  // Upward pass: parent ⋉ child, deepest children first.
  for (size_t a : order) {
    if (tree.parent[a] >= 0) {
      semijoin(static_cast<size_t>(tree.parent[a]), a, shared[a]);
    }
  }
  // Downward pass: child ⋉ parent, shallowest first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (tree.parent[*it] >= 0) {
      semijoin(*it, static_cast<size_t>(tree.parent[*it]), shared[*it]);
    }
  }

  // Fold pruned rows into a mask and run the plain evaluator.
  DeletionSet mask;
  if (options.mask != nullptr) {
    for (const TupleRef& ref : *options.mask) mask.Insert(ref);
  }
  for (size_t a = 0; a < n; ++a) {
    const Relation& rel = database.relation(atoms[a].relation);
    std::unordered_set<uint32_t> alive_set(alive[a].begin(), alive[a].end());
    for (uint32_t row = 0; row < rel.row_count(); ++row) {
      if (alive_set.count(row) == 0) {
        if (mask.Insert({atoms[a].relation, row}) &&
            semijoin_stats != nullptr) {
          ++semijoin_stats->rows_pruned[a];
        }
      }
    }
  }
  EvalOptions reduced = options;
  reduced.mask = &mask;
  return Evaluate(database, query, reduced);
}

}  // namespace delprop
