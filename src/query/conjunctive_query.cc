#include "query/conjunctive_query.h"

#include <algorithm>

namespace delprop {

VarId ConjunctiveQuery::AddVariable(std::string_view var_name) {
  auto it = var_ids_.find(std::string(var_name));
  if (it != var_ids_.end()) return it->second;
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.emplace_back(var_name);
  var_ids_.emplace(std::string(var_name), id);
  return id;
}

Status ConjunctiveQuery::Validate(const Schema& schema) const {
  if (atoms_.empty()) {
    return Status::InvalidArgument("query '" + name_ + "' has an empty body");
  }
  if (head_.empty()) {
    return Status::InvalidArgument("query '" + name_ + "' has an empty head");
  }
  std::vector<bool> in_body(var_names_.size(), false);
  for (const Atom& atom : atoms_) {
    if (atom.relation >= schema.relation_count()) {
      return Status::InvalidArgument("query '" + name_ +
                                     "' references an undeclared relation");
    }
    const RelationSchema& rel = schema.relation(atom.relation);
    if (atom.terms.size() != rel.arity) {
      return Status::InvalidArgument("query '" + name_ + "' atom over '" +
                                     rel.name + "' has wrong arity");
    }
    for (const Term& t : atom.terms) {
      if (t.is_variable()) {
        if (t.id >= var_names_.size()) {
          return Status::Internal("unregistered variable id in query '" +
                                  name_ + "'");
        }
        in_body[t.id] = true;
      }
    }
  }
  for (const Term& t : head_) {
    if (t.is_variable() && !in_body[t.id]) {
      return Status::InvalidArgument("head variable '" + var_names_[t.id] +
                                     "' of query '" + name_ +
                                     "' does not occur in the body");
    }
  }
  return Status::Ok();
}

bool ConjunctiveQuery::IsHeadVariable(VarId var) const {
  return std::any_of(head_.begin(), head_.end(), [var](const Term& t) {
    return t.is_variable() && t.id == var;
  });
}

std::string ConjunctiveQuery::ToString(const Schema& schema,
                                       const ValueDictionary& dict) const {
  auto render_term = [&](const Term& t) -> std::string {
    if (t.is_variable()) return var_names_[t.id];
    return "'" + dict.Text(t.id) + "'";
  };
  std::string out = name_;
  out += '(';
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ", ";
    out += render_term(head_[i]);
  }
  out += ") :- ";
  for (size_t a = 0; a < atoms_.size(); ++a) {
    if (a > 0) out += ", ";
    out += schema.relation(atoms_[a].relation).name;
    out += '(';
    for (size_t i = 0; i < atoms_[a].terms.size(); ++i) {
      if (i > 0) out += ", ";
      out += render_term(atoms_[a].terms[i]);
    }
    out += ')';
  }
  return out;
}

}  // namespace delprop
