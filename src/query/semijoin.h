#ifndef DELPROP_QUERY_SEMIJOIN_H_
#define DELPROP_QUERY_SEMIJOIN_H_

#include "common/status.h"
#include "query/evaluator.h"

namespace delprop {

/// Work counters for the semijoin reduction.
struct SemijoinStats {
  /// Rows eliminated as dangling per atom (indexed by atom position).
  std::vector<size_t> rows_pruned;
  /// True when the query's atom hypergraph was acyclic and the full
  /// Yannakakis-style reduction ran; false = fell back to plain evaluation.
  bool acyclic = false;
};

/// Yannakakis-style evaluation for acyclic conjunctive queries: builds the
/// GYO join tree over the atoms (vertices = variables, one hyperedge per
/// atom), removes dangling rows with an upward then downward semijoin sweep,
/// and runs the backtracking evaluator on the reduced relations. Produces
/// exactly the same View (answers AND witnesses) as Evaluate(); for cyclic
/// queries it transparently falls back to plain evaluation.
///
/// The payoff is enumeration work: dangling rows never enter the join. The
/// differential tests assert result equality; the substrate bench measures
/// the rows_scanned reduction.
Result<View> EvaluateWithSemijoinReduction(const Database& database,
                                           const ConjunctiveQuery& query,
                                           const EvalOptions& options = {},
                                           SemijoinStats* semijoin_stats =
                                               nullptr);

}  // namespace delprop

#endif  // DELPROP_QUERY_SEMIJOIN_H_
