#ifndef DELPROP_QUERY_CONTAINMENT_H_
#define DELPROP_QUERY_CONTAINMENT_H_

#include "common/status.h"
#include "query/conjunctive_query.h"

namespace delprop {

/// Classical CQ containment via the Chandra-Merlin homomorphism theorem
/// (STOC 1977, the paper's reference [9]): q1 ⊑ q2 (q1(D) ⊆ q2(D) on every
/// instance) iff q2's canonical evaluation over q1's frozen body produces
/// q1's frozen head. Keys are ignored — this is containment over plain
/// instances, the classical notion.
///
/// Both queries must be over the same schema, and their constants must have
/// been interned into the same ValueDictionary (constants are compared by
/// ValueId). Differing arity returns false.
Result<bool> IsContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2, const Schema& schema);

/// q1 ≡ q2: containment both ways.
Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2, const Schema& schema);

/// Chandra-Merlin minimization: greedily removes atoms whose removal keeps
/// the query equivalent; the result is a core (minimal equivalent query).
Result<ConjunctiveQuery> MinimizeQuery(const ConjunctiveQuery& query,
                                       const Schema& schema);

}  // namespace delprop

#endif  // DELPROP_QUERY_CONTAINMENT_H_
