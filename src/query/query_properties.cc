#include "query/query_properties.h"

#include <unordered_set>

namespace delprop {
namespace {

std::unordered_set<VarId> HeadVariableSet(const ConjunctiveQuery& query) {
  std::unordered_set<VarId> head;
  for (const Term& t : query.head()) {
    if (t.is_variable()) head.insert(t.id);
  }
  return head;
}

}  // namespace

bool IsProjectFree(const ConjunctiveQuery& query) {
  std::unordered_set<VarId> head = HeadVariableSet(query);
  for (const Atom& atom : query.atoms()) {
    for (const Term& t : atom.terms) {
      if (t.is_variable() && head.count(t.id) == 0) return false;
    }
  }
  return true;
}

bool IsSelfJoinFree(const ConjunctiveQuery& query) {
  std::unordered_set<RelationId> seen;
  for (const Atom& atom : query.atoms()) {
    if (!seen.insert(atom.relation).second) return false;
  }
  return true;
}

bool IsKeyPreserving(const ConjunctiveQuery& query, const Schema& schema) {
  std::unordered_set<VarId> head = HeadVariableSet(query);
  for (const Atom& atom : query.atoms()) {
    const RelationSchema& rel = schema.relation(atom.relation);
    for (size_t pos : rel.key_positions) {
      const Term& t = atom.terms[pos];
      if (t.is_variable() && head.count(t.id) == 0) return false;
    }
  }
  return true;
}

std::vector<VarId> HeadVariables(const ConjunctiveQuery& query) {
  std::vector<VarId> out;
  std::unordered_set<VarId> seen;
  for (const Term& t : query.head()) {
    if (t.is_variable() && seen.insert(t.id).second) out.push_back(t.id);
  }
  return out;
}

std::vector<VarId> ExistentialVariables(const ConjunctiveQuery& query) {
  std::unordered_set<VarId> head = HeadVariableSet(query);
  std::vector<VarId> out;
  std::unordered_set<VarId> seen;
  for (const Atom& atom : query.atoms()) {
    for (const Term& t : atom.terms) {
      if (t.is_variable() && head.count(t.id) == 0 &&
          seen.insert(t.id).second) {
        out.push_back(t.id);
      }
    }
  }
  return out;
}

std::vector<VarId> KeyVariables(const ConjunctiveQuery& query,
                                const Schema& schema) {
  std::vector<VarId> out;
  std::unordered_set<VarId> seen;
  for (const Atom& atom : query.atoms()) {
    const RelationSchema& rel = schema.relation(atom.relation);
    for (size_t pos : rel.key_positions) {
      const Term& t = atom.terms[pos];
      if (t.is_variable() && seen.insert(t.id).second) out.push_back(t.id);
    }
  }
  return out;
}

}  // namespace delprop
