#include "query/containment.h"

#include <string>

#include "query/evaluator.h"

namespace delprop {
namespace {

/// Builds q's canonical ("frozen") database: each variable becomes a fresh
/// constant, each atom a row. Keys are relaxed to the full tuple so the
/// frozen body always inserts (identical atoms collapse). Returns the frozen
/// head values through `frozen_head`.
Result<Database> FreezeQuery(const ConjunctiveQuery& query,
                             const Schema& schema, Tuple* frozen_head) {
  Database db;
  // Mirror the schema with key = all positions (classical containment
  // ignores dependencies).
  for (RelationId rel = 0; rel < schema.relation_count(); ++rel) {
    const RelationSchema& r = schema.relation(rel);
    std::vector<size_t> all_positions;
    for (size_t p = 0; p < r.arity; ++p) all_positions.push_back(p);
    Result<RelationId> id = db.AddRelation(r.name, r.arity, all_positions);
    if (!id.ok()) return id.status();
  }
  // Freeze variables to canonical constants "~var<i>"; constants keep their
  // original text so they unify with the other query's constants.
  // Constants are frozen by ValueId — both queries must share one
  // ValueDictionary (see the header contract) so ids identify constants.
  auto frozen_term = [&db](const Term& t) {
    if (t.is_constant()) {
      return db.dict().Intern("~const" + std::to_string(t.id));
    }
    return db.dict().Intern("~var" + std::to_string(t.id));
  };
  for (const Atom& atom : query.atoms()) {
    Tuple row;
    row.reserve(atom.terms.size());
    for (const Term& t : atom.terms) row.push_back(frozen_term(t));
    Result<TupleRef> ref = db.Insert(atom.relation, std::move(row));
    if (!ref.ok() && ref.status().code() != StatusCode::kKeyViolation) {
      return ref.status();
    }
  }
  frozen_head->clear();
  for (const Term& t : query.head()) frozen_head->push_back(frozen_term(t));
  return db;
}

/// Rewrites q2 so its constants survive freezing: constant c becomes the
/// frozen constant "~const<c>" of the canonical database's dictionary.
ConjunctiveQuery RetagConstants(const ConjunctiveQuery& query, Database& db) {
  ConjunctiveQuery out(query.name());
  for (VarId v = 0; v < query.variable_count(); ++v) {
    out.AddVariable(query.variable_name(v));
  }
  auto retag = [&db](const Term& t) {
    if (t.is_constant()) {
      return Term::Constant(
          db.dict().Intern("~const" + std::to_string(t.id)));
    }
    return t;
  };
  for (const Term& t : query.head()) out.AddHeadTerm(retag(t));
  for (const Atom& atom : query.atoms()) {
    Atom copy;
    copy.relation = atom.relation;
    for (const Term& t : atom.terms) copy.terms.push_back(retag(t));
    out.AddAtom(std::move(copy));
  }
  return out;
}

}  // namespace

Result<bool> IsContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2, const Schema& schema) {
  if (Status s = q1.Validate(schema); !s.ok()) return s;
  if (Status s = q2.Validate(schema); !s.ok()) return s;
  if (q1.arity() != q2.arity()) return false;

  Tuple frozen_head;
  Result<Database> canonical = FreezeQuery(q1, schema, &frozen_head);
  if (!canonical.ok()) return canonical.status();

  ConjunctiveQuery retagged = RetagConstants(q2, *canonical);
  Result<View> result = Evaluate(*canonical, retagged);
  if (!result.ok()) return result.status();
  return result->Find(frozen_head).has_value();
}

Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2, const Schema& schema) {
  Result<bool> forward = IsContainedIn(q1, q2, schema);
  if (!forward.ok()) return forward;
  if (!*forward) return false;
  return IsContainedIn(q2, q1, schema);
}

Result<ConjunctiveQuery> MinimizeQuery(const ConjunctiveQuery& query,
                                       const Schema& schema) {
  if (Status s = query.Validate(schema); !s.ok()) return s;
  ConjunctiveQuery current("");
  // Working copy.
  {
    ConjunctiveQuery clone(query.name());
    for (VarId v = 0; v < query.variable_count(); ++v) {
      clone.AddVariable(query.variable_name(v));
    }
    for (const Term& t : query.head()) clone.AddHeadTerm(t);
    for (const Atom& atom : query.atoms()) clone.AddAtom(atom);
    current = std::move(clone);
  }

  bool progress = true;
  while (progress && current.atoms().size() > 1) {
    progress = false;
    for (size_t drop = 0; drop < current.atoms().size(); ++drop) {
      ConjunctiveQuery candidate(current.name());
      for (VarId v = 0; v < current.variable_count(); ++v) {
        candidate.AddVariable(current.variable_name(v));
      }
      for (const Term& t : current.head()) candidate.AddHeadTerm(t);
      for (size_t a = 0; a < current.atoms().size(); ++a) {
        if (a != drop) candidate.AddAtom(current.atoms()[a]);
      }
      // Safety: head variables must still occur in the body.
      if (!candidate.Validate(schema).ok()) continue;
      // Dropping an atom can only enlarge the result (candidate ⊒ current);
      // equivalence needs candidate ⊑ current.
      Result<bool> contained = IsContainedIn(candidate, current, schema);
      if (!contained.ok()) return contained.status();
      if (*contained) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace delprop
