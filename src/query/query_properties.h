#ifndef DELPROP_QUERY_QUERY_PROPERTIES_H_
#define DELPROP_QUERY_QUERY_PROPERTIES_H_

#include <vector>

#include "query/conjunctive_query.h"

namespace delprop {

/// The syntactic query classes the paper's dichotomies are stated over.

/// True if every variable occurring in the body also occurs in the head
/// (a select-join query; the paper's "project-free" fragment).
bool IsProjectFree(const ConjunctiveQuery& query);

/// True if no relation symbol occurs twice in the body (sj-free).
bool IsSelfJoinFree(const ConjunctiveQuery& query);

/// True if the query is key preserving (Section II.B): every variable located
/// at a key attribute position of any atom occurs in the head. (Constants at
/// key positions are allowed; project-free queries are always key
/// preserving.)
bool IsKeyPreserving(const ConjunctiveQuery& query, const Schema& schema);

/// Head variables Var_h(Q) in first-occurrence order.
std::vector<VarId> HeadVariables(const ConjunctiveQuery& query);

/// Existential variables Var_∃(Q) (body variables not in the head) in
/// first-occurrence order.
std::vector<VarId> ExistentialVariables(const ConjunctiveQuery& query);

/// All key variables (variables at key positions of some atom), deduplicated,
/// in first-occurrence order.
std::vector<VarId> KeyVariables(const ConjunctiveQuery& query,
                                const Schema& schema);

}  // namespace delprop

#endif  // DELPROP_QUERY_QUERY_PROPERTIES_H_
