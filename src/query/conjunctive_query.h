#ifndef DELPROP_QUERY_CONJUNCTIVE_QUERY_H_
#define DELPROP_QUERY_CONJUNCTIVE_QUERY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "query/term.h"
#include "relational/database.h"

namespace delprop {

/// A conjunctive query in the paper's datalog style:
///   Q(y1, ..., yq) :- T1(x1, y1, c1), ..., Tq(xq, yq, cq)
/// Head terms may repeat variables and include constants; every head variable
/// must occur in the body (safety).
class ConjunctiveQuery {
 public:
  /// Creates an empty query named `name`; populate via AddVariable/SetHead/
  /// AddAtom, then Validate.
  explicit ConjunctiveQuery(std::string name) : name_(std::move(name)) {}

  /// Registers (or finds) a variable by name and returns its id.
  VarId AddVariable(std::string_view var_name);

  /// Appends a term to the head.
  void AddHeadTerm(Term term) { head_.push_back(term); }

  /// Appends a body atom.
  void AddAtom(Atom atom) { atoms_.push_back(std::move(atom)); }

  /// Checks well-formedness against `schema`: atom arities match relation
  /// declarations, the body is non-empty, the head is non-empty (the paper
  /// requires each yi non-empty), and every head variable occurs in the body.
  Status Validate(const Schema& schema) const;

  /// The paper's arity(Q): number of head terms.
  size_t arity() const { return head_.size(); }

  const std::string& name() const { return name_; }
  const std::vector<Term>& head() const { return head_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  size_t variable_count() const { return var_names_.size(); }
  const std::string& variable_name(VarId var) const {
    return var_names_[var];
  }

  /// True if `var` occurs in some head position.
  bool IsHeadVariable(VarId var) const;

  /// Renders the query in datalog syntax against `schema` and `dict`.
  std::string ToString(const Schema& schema,
                       const ValueDictionary& dict) const;

 private:
  std::string name_;
  std::vector<Term> head_;
  std::vector<Atom> atoms_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_ids_;
};

}  // namespace delprop

#endif  // DELPROP_QUERY_CONJUNCTIVE_QUERY_H_
