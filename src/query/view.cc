#include "query/view.h"

#include <algorithm>

namespace delprop {

size_t View::AddMatch(const Tuple& values, Witness witness) {
  auto [it, inserted] = index_by_values_.emplace(values, tuples_.size());
  if (inserted) {
    ViewTuple vt;
    vt.values = values;
    tuples_.push_back(std::move(vt));
  }
  size_t index = it->second;
  std::vector<Witness>& witnesses = tuples_[index].witnesses;
  if (std::find(witnesses.begin(), witnesses.end(), witness) ==
      witnesses.end()) {
    witnesses.push_back(std::move(witness));
  }
  return index;
}

std::optional<size_t> View::Find(const Tuple& values) const {
  auto it = index_by_values_.find(values);
  if (it == index_by_values_.end()) return std::nullopt;
  return it->second;
}

bool View::Survives(size_t index, const DeletionSet& deletion) const {
  for (const Witness& witness : tuples_[index].witnesses) {
    bool hit = false;
    for (const TupleRef& ref : witness) {
      if (deletion.Contains(ref)) {
        hit = true;
        break;
      }
    }
    if (!hit) return true;
  }
  return false;
}

std::string View::RenderTuple(size_t index) const {
  const ValueDictionary& dict = database_->dict();
  std::string out = query_->name();
  out += '(';
  const Tuple& values = tuples_[index].values;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += dict.Text(values[i]);
  }
  out += ')';
  return out;
}

}  // namespace delprop
