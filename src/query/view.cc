#include "query/view.h"

#include <algorithm>

namespace delprop {

size_t View::AddMatch(const Tuple& values, Witness witness) {
  auto [it, inserted] = index_by_values_.emplace(values, tuples_.size());
  if (inserted) {
    ViewTuple vt;
    vt.values = values;
    tuples_.push_back(std::move(vt));
  }
  size_t index = it->second;
  std::vector<Witness>& witnesses = tuples_[index].witnesses;
  if (std::find(witnesses.begin(), witnesses.end(), witness) ==
      witnesses.end()) {
    witnesses.push_back(std::move(witness));
  }
  return index;
}

void View::RemoveTuples(const std::vector<size_t>& sorted_indices) {
  if (sorted_indices.empty()) return;
  size_t next_removed = 0;
  size_t write = 0;
  for (size_t read = 0; read < tuples_.size(); ++read) {
    if (next_removed < sorted_indices.size() &&
        sorted_indices[next_removed] == read) {
      ++next_removed;
      continue;
    }
    if (write != read) tuples_[write] = std::move(tuples_[read]);
    ++write;
  }
  tuples_.resize(write);
  // Re-point the head-value index without rehashing any tuple: a survivor's
  // index drops by the number of removed indices below it, a removed index
  // drops out. One pass over the map (mutation only — nothing here depends
  // on its iteration order) beats a hash of the full value vector per
  // survivor, which dominated ApplyDelta's delete path.
  for (auto it = index_by_values_.begin(); it != index_by_values_.end();) {
    size_t below = static_cast<size_t>(
        std::lower_bound(sorted_indices.begin(), sorted_indices.end(),
                         it->second) -
        sorted_indices.begin());
    if (below < sorted_indices.size() && sorted_indices[below] == it->second) {
      it = index_by_values_.erase(it);
      continue;
    }
    it->second -= below;
    ++it;
  }
}

std::optional<size_t> View::Find(const Tuple& values) const {
  auto it = index_by_values_.find(values);
  if (it == index_by_values_.end()) return std::nullopt;
  return it->second;
}

bool View::Survives(size_t index, const DeletionSet& deletion) const {
  for (const Witness& witness : tuples_[index].witnesses) {
    bool hit = false;
    for (const TupleRef& ref : witness) {
      if (deletion.Contains(ref)) {
        hit = true;
        break;
      }
    }
    if (!hit) return true;
  }
  return false;
}

std::string View::RenderTuple(size_t index) const {
  const ValueDictionary& dict = database_->dict();
  std::string out = query_->name();
  out += '(';
  const Tuple& values = tuples_[index].values;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += dict.Text(values[i]);
  }
  out += ')';
  return out;
}

}  // namespace delprop
