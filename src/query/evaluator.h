#ifndef DELPROP_QUERY_EVALUATOR_H_
#define DELPROP_QUERY_EVALUATOR_H_

#include "common/status.h"
#include "query/conjunctive_query.h"
#include "query/view.h"
#include "relational/database.h"
#include "relational/deletion_set.h"
#include "runtime/index_cache.h"

namespace delprop {

/// Counters filled during evaluation (plan + work measures), for tests,
/// EXPLAIN output, and the substrate benches.
struct EvalStats {
  /// The greedy join order chosen, as original atom indices.
  std::vector<size_t> atom_order;
  /// Matches emitted (including duplicates collapsing into one view tuple).
  size_t matches = 0;
  /// Candidate rows examined across all lookups.
  size_t rows_scanned = 0;
  /// Per-(relation, position) hash indexes built on demand (cache misses
  /// included, cache hits not — a hit builds nothing).
  size_t indexes_built = 0;
  /// Indexes served by EvalOptions::index_cache without building (counted
  /// once per (relation, position) per evaluation).
  size_t index_cache_hits = 0;
  /// Indexes the shared cache had to build for this evaluation.
  size_t index_cache_misses = 0;
};

/// Options for query evaluation.
struct EvalOptions {
  /// If set, evaluate against D \ mask (rows in the mask are invisible).
  const DeletionSet* mask = nullptr;
  /// If set, filled with plan and work counters.
  EvalStats* stats = nullptr;
  /// Guard against runaway results (cartesian products of ad-hoc queries):
  /// evaluation fails with OutOfRange once this many matches were emitted.
  /// 0 disables the guard.
  size_t max_matches = 0;
  /// If set, per-(relation, position) indexes are taken from (and published
  /// to) this shared cache instead of being rebuilt per Evaluate() call.
  /// The cache must belong to the evaluated database; it may be shared by
  /// concurrent evaluations. Results are identical with or without a cache.
  IndexCache* index_cache = nullptr;
};

/// Renders the evaluation plan (join order with per-atom binding info) the
/// evaluator would choose, without running the query.
std::string ExplainPlan(const Database& database,
                        const ConjunctiveQuery& query);

/// Evaluates `query` over `database` and materializes the result with
/// why-provenance (every match's witness set is recorded on its view tuple).
///
/// The evaluator is a backtracking join: atoms are ordered greedily (most
/// bound terms first), and per-(relation, position) hash indexes accelerate
/// lookups of partially bound atoms. Works for arbitrary CQs, including
/// self-joins and repeated head variables.
Result<View> Evaluate(const Database& database, const ConjunctiveQuery& query,
                      const EvalOptions& options = {});

}  // namespace delprop

#endif  // DELPROP_QUERY_EVALUATOR_H_
