#include "query/parser.h"

#include <cctype>
#include <optional>
#include <string>
#include <vector>

namespace delprop {
namespace {

struct Token {
  enum class Kind { kIdent, kConstant, kLParen, kRParen, kComma, kTurnstile };
  Kind kind;
  std::string text;  // identifier name or constant spelling
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  // Returns the next token, std::nullopt at end of input, or an error status.
  Result<std::optional<Token>> Next() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) return std::optional<Token>();
    char c = input_[pos_];
    if (c == '(') {
      ++pos_;
      return std::optional<Token>(Token{Token::Kind::kLParen, "("});
    }
    if (c == ')') {
      ++pos_;
      return std::optional<Token>(Token{Token::Kind::kRParen, ")"});
    }
    if (c == ',') {
      ++pos_;
      return std::optional<Token>(Token{Token::Kind::kComma, ","});
    }
    if (c == ':') {
      if (pos_ + 1 >= input_.size() || input_[pos_ + 1] != '-') {
        return Status::InvalidArgument("expected ':-' in query text");
      }
      pos_ += 2;
      return std::optional<Token>(Token{Token::Kind::kTurnstile, ":-"});
    }
    if (c == '\'') {
      size_t end = input_.find('\'', pos_ + 1);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quoted constant");
      }
      Token tok{Token::Kind::kConstant,
                std::string(input_.substr(pos_ + 1, end - pos_ - 1))};
      pos_ = end + 1;
      return std::optional<Token>(tok);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t start = pos_++;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      return std::optional<Token>(Token{
          Token::Kind::kConstant, std::string(input_.substr(start, pos_ - start))});
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_++;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      return std::optional<Token>(Token{
          Token::Kind::kIdent, std::string(input_.substr(start, pos_ - start))});
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in query text");
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<ConjunctiveQuery> ParseQuery(std::string_view text,
                                    const Schema& schema,
                                    ValueDictionary& dict) {
  Lexer lexer(text);
  std::vector<Token> tokens;
  for (;;) {
    Result<std::optional<Token>> tok = lexer.Next();
    if (!tok.ok()) return tok.status();
    if (!tok->has_value()) break;
    tokens.push_back(**tok);
  }
  size_t i = 0;
  auto expect = [&](Token::Kind kind, const char* what) -> Status {
    if (i >= tokens.size() || tokens[i].kind != kind) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " in query text");
    }
    ++i;
    return Status::Ok();
  };

  if (i >= tokens.size() || tokens[i].kind != Token::Kind::kIdent) {
    return Status::InvalidArgument("expected query name");
  }
  ConjunctiveQuery query(tokens[i++].text);

  auto parse_term = [&]() -> Result<Term> {
    if (i >= tokens.size()) {
      return Status::InvalidArgument("unexpected end of query text");
    }
    const Token& tok = tokens[i++];
    if (tok.kind == Token::Kind::kIdent) {
      return Term::Variable(query.AddVariable(tok.text));
    }
    if (tok.kind == Token::Kind::kConstant) {
      return Term::Constant(dict.Intern(tok.text));
    }
    return Status::InvalidArgument("expected a term");
  };

  // Head term list.
  if (Status s = expect(Token::Kind::kLParen, "'('"); !s.ok()) return s;
  for (;;) {
    Result<Term> term = parse_term();
    if (!term.ok()) return term.status();
    query.AddHeadTerm(*term);
    if (i < tokens.size() && tokens[i].kind == Token::Kind::kComma) {
      ++i;
      continue;
    }
    break;
  }
  if (Status s = expect(Token::Kind::kRParen, "')'"); !s.ok()) return s;
  if (Status s = expect(Token::Kind::kTurnstile, "':-'"); !s.ok()) return s;

  // Body atoms.
  for (;;) {
    if (i >= tokens.size() || tokens[i].kind != Token::Kind::kIdent) {
      return Status::InvalidArgument("expected relation name in body");
    }
    std::string rel_name = tokens[i++].text;
    std::optional<RelationId> rel = schema.FindRelation(rel_name);
    if (!rel.has_value()) {
      return Status::NotFound("undeclared relation '" + rel_name +
                              "' in query body");
    }
    Atom atom;
    atom.relation = *rel;
    if (Status s = expect(Token::Kind::kLParen, "'('"); !s.ok()) return s;
    for (;;) {
      Result<Term> term = parse_term();
      if (!term.ok()) return term.status();
      atom.terms.push_back(*term);
      if (i < tokens.size() && tokens[i].kind == Token::Kind::kComma) {
        ++i;
        continue;
      }
      break;
    }
    if (Status s = expect(Token::Kind::kRParen, "')'"); !s.ok()) return s;
    query.AddAtom(std::move(atom));
    if (i < tokens.size() && tokens[i].kind == Token::Kind::kComma) {
      ++i;
      continue;
    }
    break;
  }
  if (i != tokens.size()) {
    return Status::InvalidArgument("trailing tokens after query body");
  }
  if (Status s = query.Validate(schema); !s.ok()) return s;
  return query;
}

}  // namespace delprop
