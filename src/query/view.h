#ifndef DELPROP_QUERY_VIEW_H_
#define DELPROP_QUERY_VIEW_H_

#include <optional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "relational/database.h"
#include "relational/deletion_set.h"
#include "query/conjunctive_query.h"

namespace delprop {

/// One witness (the paper's match μ restricted to base tuples): the base
/// tuple matched by each body atom, in atom order.
using Witness = std::vector<TupleRef>;

/// One answer tuple of a materialized view together with its why-provenance.
/// For key-preserving queries each view tuple has exactly one witness — the
/// structural property all of the paper's algorithms rely on.
struct ViewTuple {
  /// The head values μ(y1), ..., μ(yq).
  Tuple values;
  /// All witnesses producing these head values (deduplicated).
  std::vector<Witness> witnesses;
};

/// A materialized query result Q(D) with lineage.
class View {
 public:
  View(const ConjunctiveQuery* query, const Database* database)
      : query_(query), database_(database) {}

  /// Adds a witness for head values `values`, creating the view tuple if new.
  /// Returns the view-tuple index.
  size_t AddMatch(const Tuple& values, Witness witness);

  /// Index of the view tuple with head `values`, if present.
  std::optional<size_t> Find(const Tuple& values) const;

  /// In-place witness list of tuple `index` — for VseInstance::ApplyDelta's
  /// incremental maintenance only. Callers must leave the list non-empty or
  /// remove the emptied tuple via RemoveTuples before anything else reads
  /// the view.
  std::vector<Witness>& MutableWitnesses(size_t index) {
    return tuples_[index].witnesses;
  }

  /// Removes the tuples at `sorted_indices` (ascending, distinct), compacting
  /// the survivors in order and re-pointing the head-value index. Preserving
  /// the survivors' relative order keeps dense-id iteration — and every
  /// solver tie-break derived from it — deterministic across deltas.
  void RemoveTuples(const std::vector<size_t>& sorted_indices);

  /// True if view tuple `index` survives deleting `deletion` from the source:
  /// some witness is disjoint from the deletion set.
  bool Survives(size_t index, const DeletionSet& deletion) const;

  /// Renders view tuple `index` as "Q(a, b)".
  std::string RenderTuple(size_t index) const;

  const ConjunctiveQuery& query() const { return *query_; }
  const Database& database() const { return *database_; }
  const ViewTuple& tuple(size_t index) const { return tuples_[index]; }
  size_t size() const { return tuples_.size(); }

 private:
  const ConjunctiveQuery* query_;
  const Database* database_;
  std::vector<ViewTuple> tuples_;
  std::unordered_map<Tuple, size_t, VectorHash<ValueId>> index_by_values_;
};

}  // namespace delprop

#endif  // DELPROP_QUERY_VIEW_H_
