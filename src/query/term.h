#ifndef DELPROP_QUERY_TERM_H_
#define DELPROP_QUERY_TERM_H_

#include <cstdint>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace delprop {

/// Dense id of a variable within one ConjunctiveQuery.
using VarId = uint32_t;

/// One term of an atom or head: either a query variable or a constant from
/// the shared value dictionary.
struct Term {
  enum class Kind : uint8_t { kVariable, kConstant };

  Kind kind = Kind::kVariable;
  /// VarId when kind==kVariable, ValueId when kind==kConstant.
  uint32_t id = 0;

  static Term Variable(VarId var) { return Term{Kind::kVariable, var}; }
  static Term Constant(ValueId value) { return Term{Kind::kConstant, value}; }

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.id == b.id;
  }
};

/// One atom `T(term, term, ...)` of a conjunctive query body.
struct Atom {
  RelationId relation = 0;
  std::vector<Term> terms;
};

}  // namespace delprop

#endif  // DELPROP_QUERY_TERM_H_
