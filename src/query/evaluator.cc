#include "query/evaluator.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

namespace delprop {
namespace {

constexpr ValueId kUnbound = std::numeric_limits<ValueId>::max();

class JoinContext {
 public:
  JoinContext(const Database& db, const ConjunctiveQuery& query,
              const DeletionSet* mask, EvalStats* stats, size_t max_matches,
              IndexCache* cache, View* out)
      : db_(db),
        query_(query),
        mask_(mask),
        stats_(stats),
        max_matches_(max_matches),
        cache_(cache),
        out_(out) {
    assignment_.assign(query.variable_count(), kUnbound);
    witness_.resize(query.atoms().size());
    OrderAtoms();
    if (stats_ != nullptr) stats_->atom_order = order_;
  }

  void Run() { Descend(0); }

  const std::vector<size_t>& order() const { return order_; }
  bool overflowed() const { return overflowed_; }

 private:
  /// Greedy ordering: repeatedly pick the unplaced atom with the most terms
  /// bound by constants or previously placed atoms; break ties towards the
  /// smaller relation.
  void OrderAtoms() {
    const auto& atoms = query_.atoms();
    std::vector<bool> placed(atoms.size(), false);
    std::vector<bool> bound(query_.variable_count(), false);
    for (size_t step = 0; step < atoms.size(); ++step) {
      size_t best = atoms.size();
      size_t best_bound = 0;
      size_t best_rows = 0;
      for (size_t a = 0; a < atoms.size(); ++a) {
        if (placed[a]) continue;
        size_t bound_terms = 0;
        for (const Term& t : atoms[a].terms) {
          if (t.is_constant() || bound[t.id]) ++bound_terms;
        }
        size_t rows = db_.relation(atoms[a].relation).row_count();
        if (best == atoms.size() || bound_terms > best_bound ||
            (bound_terms == best_bound && rows < best_rows)) {
          best = a;
          best_bound = bound_terms;
          best_rows = rows;
        }
      }
      order_.push_back(best);
      placed[best] = true;
      for (const Term& t : atoms[best].terms) {
        if (t.is_variable()) bound[t.id] = true;
      }
    }
  }

  /// Returns the index for (relation, position) if it is already
  /// materialized — pinned by this evaluation or present in the shared cache
  /// — without building anything. Used to pick a probe position cheaply.
  const PositionIndex* FindExisting(RelationId relation, size_t position) {
    auto key = std::make_pair(relation, position);
    auto it = indexes_.find(key);
    if (it != indexes_.end()) return it->second.get();
    if (cache_ != nullptr) {
      std::shared_ptr<const PositionIndex> cached =
          cache_->Peek(db_, relation, position);
      if (cached != nullptr) {
        if (stats_ != nullptr) ++stats_->index_cache_hits;
        return indexes_.emplace(key, std::move(cached)).first->second.get();
      }
    }
    return nullptr;
  }

  const PositionIndex& IndexFor(RelationId relation, size_t position) {
    if (const PositionIndex* existing = FindExisting(relation, position)) {
      return *existing;
    }
    auto key = std::make_pair(relation, position);
    std::shared_ptr<const PositionIndex> index;
    if (cache_ != nullptr) {
      bool was_hit = false;
      index = cache_->Get(db_, relation, position, &was_hit);
      if (stats_ != nullptr) {
        // FindExisting already peeked, so a hit here means another thread
        // published the entry in between; still a reuse from our side.
        if (was_hit) {
          ++stats_->index_cache_hits;
        } else {
          ++stats_->index_cache_misses;
          ++stats_->indexes_built;
        }
      }
    } else {
      index = std::make_shared<const PositionIndex>(
          BuildPositionIndex(db_.relation(relation), position));
      if (stats_ != nullptr) ++stats_->indexes_built;
    }
    return *indexes_.emplace(key, std::move(index)).first->second;
  }

  /// Tries to extend the current partial assignment with row `row` of the
  /// atom at order position `depth`. Returns the list of variables bound by
  /// this row (to undo on backtrack), or nullopt on mismatch.
  bool TryBind(const Atom& atom, const Tuple& row,
               std::vector<VarId>* newly_bound) {
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      const Term& t = atom.terms[pos];
      if (t.is_constant()) {
        if (row[pos] != t.id) return false;
      } else if (assignment_[t.id] != kUnbound) {
        if (row[pos] != assignment_[t.id]) return false;
      } else {
        assignment_[t.id] = row[pos];
        newly_bound->push_back(t.id);
      }
    }
    return true;
  }

  void Undo(const std::vector<VarId>& newly_bound) {
    for (VarId v : newly_bound) assignment_[v] = kUnbound;
  }

  void Descend(size_t depth) {
    if (overflowed_) return;
    if (depth == order_.size()) {
      Emit();
      return;
    }
    size_t atom_index = order_[depth];
    const Atom& atom = query_.atoms()[atom_index];
    const Relation& rel = db_.relation(atom.relation);

    // Collect the bound positions of this atom under the current assignment.
    struct BoundPosition {
      size_t pos;
      ValueId value;
    };
    std::vector<BoundPosition> bound_positions;
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      const Term& t = atom.terms[pos];
      if (t.is_constant()) {
        bound_positions.push_back({pos, t.id});
      } else if (assignment_[t.id] != kUnbound) {
        bound_positions.push_back({pos, assignment_[t.id]});
      }
    }
    bool have_bound_position = !bound_positions.empty();

    // Pick a probe position lazily: compare candidate lists only across
    // indexes that are already materialized (stopping at the first empty
    // list), and build at most one new index — never one per bound position.
    // Any bound position's list is correct (TryBind re-checks every
    // position), and every list is in ascending row order, so the choice
    // cannot change the emitted view, only the rows scanned.
    const std::vector<uint32_t>* candidates = nullptr;
    std::vector<uint32_t> empty;
    for (const BoundPosition& bp : bound_positions) {
      const PositionIndex* index = FindExisting(atom.relation, bp.pos);
      if (index == nullptr) continue;
      auto it = index->find(bp.value);
      const std::vector<uint32_t>* list =
          (it == index->end()) ? &empty : &it->second;
      if (candidates == nullptr || list->size() < candidates->size()) {
        candidates = list;
        if (candidates->empty()) break;
      }
    }
    if (have_bound_position && candidates == nullptr) {
      const BoundPosition& bp = bound_positions.front();
      const PositionIndex& index = IndexFor(atom.relation, bp.pos);
      auto it = index.find(bp.value);
      candidates = (it == index.end()) ? &empty : &it->second;
    }

    auto try_row = [&](uint32_t row_index) {
      if (stats_ != nullptr) ++stats_->rows_scanned;
      TupleRef ref{atom.relation, row_index};
      if (mask_ != nullptr && mask_->Contains(ref)) return;
      std::vector<VarId> newly_bound;
      if (TryBind(atom, rel.row(row_index), &newly_bound)) {
        witness_[atom_index] = ref;
        Descend(depth + 1);
      }
      Undo(newly_bound);
    };

    if (have_bound_position) {
      for (uint32_t row_index : *candidates) try_row(row_index);
    } else {
      for (uint32_t row_index = 0; row_index < rel.row_count(); ++row_index) {
        try_row(row_index);
      }
    }
  }

  void Emit() {
    if (max_matches_ > 0 && emitted_ >= max_matches_) {
      overflowed_ = true;
      return;
    }
    ++emitted_;
    if (stats_ != nullptr) ++stats_->matches;
    Tuple values;
    values.reserve(query_.head().size());
    for (const Term& t : query_.head()) {
      values.push_back(t.is_constant() ? t.id : assignment_[t.id]);
    }
    out_->AddMatch(values, witness_);
  }

  const Database& db_;
  const ConjunctiveQuery& query_;
  const DeletionSet* mask_;
  EvalStats* stats_;
  size_t max_matches_;
  IndexCache* cache_;
  View* out_;
  size_t emitted_ = 0;
  bool overflowed_ = false;
  std::vector<size_t> order_;
  std::vector<ValueId> assignment_;
  Witness witness_;
  // Indexes pinned for this evaluation: locally built ones and shared-cache
  // entries alike. Pinning keeps cache entries alive even if the cache drops
  // them mid-query.
  std::unordered_map<std::pair<RelationId, size_t>,
                     std::shared_ptr<const PositionIndex>,
                     PairHash<RelationId, size_t>>
      indexes_;
};

}  // namespace

Result<View> Evaluate(const Database& database, const ConjunctiveQuery& query,
                      const EvalOptions& options) {
  if (Status s = query.Validate(database.schema()); !s.ok()) return s;
  View view(&query, &database);
  JoinContext context(database, query, options.mask, options.stats,
                      options.max_matches, options.index_cache, &view);
  context.Run();
  if (context.overflowed()) {
    return Status::OutOfRange("query '" + query.name() + "' exceeded " +
                              std::to_string(options.max_matches) +
                              " matches");
  }
  return view;
}

std::string ExplainPlan(const Database& database,
                        const ConjunctiveQuery& query) {
  View scratch(&query, &database);
  JoinContext context(database, query, nullptr, nullptr, 0, nullptr,
                      &scratch);
  std::string out = "plan for " + query.name() + ":\n";
  std::vector<bool> bound(query.variable_count(), false);
  for (size_t step = 0; step < context.order().size(); ++step) {
    size_t atom_index = context.order()[step];
    const Atom& atom = query.atoms()[atom_index];
    const RelationSchema& rel = database.schema().relation(atom.relation);
    size_t bound_terms = 0;
    for (const Term& t : atom.terms) {
      if (t.is_constant() || bound[t.id]) ++bound_terms;
    }
    out += "  " + std::to_string(step + 1) + ". " + rel.name + " (" +
           std::to_string(database.relation(atom.relation).row_count()) +
           " rows, " + std::to_string(bound_terms) + "/" +
           std::to_string(atom.terms.size()) + " terms bound, " +
           (bound_terms > 0 ? "index lookup" : "full scan") + ")\n";
    for (const Term& t : atom.terms) {
      if (t.is_variable()) bound[t.id] = true;
    }
  }
  return out;
}

}  // namespace delprop
