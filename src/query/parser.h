#ifndef DELPROP_QUERY_PARSER_H_
#define DELPROP_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/conjunctive_query.h"

namespace delprop {

/// Parses a conjunctive query in the paper's datalog style, e.g.
///   "Q3(x, z) :- T1(x, y), T2(y, z, w)"
/// Lexical rules:
///  * identifiers are variables (e.g. x, y1, topic);
///  * single-quoted strings ('XML') and bare integer literals (42, -7) are
///    constants interned into `dict`;
///  * relation names are resolved against `schema` and must be declared.
/// The returned query is already validated against `schema`.
Result<ConjunctiveQuery> ParseQuery(std::string_view text,
                                    const Schema& schema,
                                    ValueDictionary& dict);

}  // namespace delprop

#endif  // DELPROP_QUERY_PARSER_H_
