#include "runtime/index_cache.h"

#include <mutex>

namespace delprop {

PositionIndex BuildPositionIndex(const Relation& relation, size_t position) {
  PositionIndex index;
  for (uint32_t row = 0; row < relation.row_count(); ++row) {
    index[relation.row(row)[position]].push_back(row);
  }
  return index;
}

void IndexCache::EnsureBound(const Database& database) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (bound_database_ == &database) return;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (bound_database_ != &database) {
    entries_.clear();
    bound_database_ = &database;
  }
}

std::shared_ptr<const PositionIndex> IndexCache::Get(const Database& database,
                                                     RelationId relation,
                                                     size_t position,
                                                     bool* was_hit) {
  EnsureBound(database);
  const Relation& rel = database.relation(relation);
  Key key{relation, position};
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.rows == rel.row_count()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (was_hit != nullptr) *was_hit = true;
      return it->second.index;
    }
  }
  // Miss or stale: build outside the lock (rows are immutable, concurrent
  // readers are safe), then publish. A racing thread may publish first; both
  // builds produce identical indexes, so last-writer-wins is fine.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (was_hit != nullptr) *was_hit = false;
  auto built =
      std::make_shared<const PositionIndex>(BuildPositionIndex(rel, position));
  size_t rows = rel.row_count();
  std::unique_lock<std::shared_mutex> lock(mutex_);
  Entry& entry = entries_[key];
  entry.index = built;
  entry.rows = rows;
  return built;
}

std::shared_ptr<const PositionIndex> IndexCache::Peek(const Database& database,
                                                      RelationId relation,
                                                      size_t position) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  if (bound_database_ != &database) return nullptr;
  auto it = entries_.find(Key{relation, position});
  if (it == entries_.end() ||
      it->second.rows != database.relation(relation).row_count()) {
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.index;
}

void IndexCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
}

size_t IndexCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace delprop
