#ifndef DELPROP_RUNTIME_THREAD_POOL_H_
#define DELPROP_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace delprop {

/// A fixed-size worker pool with a single shared FIFO queue. Deliberately
/// simple (no work stealing, no priorities): solver runs and workload sweeps
/// are coarse-grained tasks, so a mutex-guarded queue is never the
/// bottleneck, and the simplicity keeps the pool easy to reason about under
/// TSan.
///
/// Tasks must not throw — the library reports failures via Status, and an
/// escaping exception would terminate the worker thread.
///
/// Determinism contract: the pool itself guarantees nothing about execution
/// order. Callers that need reproducible results must (a) write results into
/// pre-assigned slots (as ParallelFor's body does by index) and (b) seed any
/// randomness per task via DeriveTaskSeed rather than sharing one Rng stream
/// across tasks.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t threads);

  /// Drains the queue, waits for in-flight tasks, and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(0) ... body(count - 1)`, spreading iterations over `pool`'s
/// workers; the calling thread blocks until every iteration has finished.
/// With a null pool (or a single worker, or a single iteration) the loop runs
/// inline on the calling thread — callers write one code path and switch
/// parallelism with a flag.
///
/// Iterations are claimed dynamically (atomic counter), so the mapping of
/// iteration to thread is nondeterministic; bodies must be independent and
/// write only to their own index's state.
void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& body);

}  // namespace delprop

#endif  // DELPROP_RUNTIME_THREAD_POOL_H_
