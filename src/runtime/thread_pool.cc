#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace delprop {

ThreadPool::ThreadPool(size_t threads) {
  threads = std::max<size_t>(1, threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Drain remaining work even during shutdown so Submit-then-destroy
      // never drops tasks.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (pool == nullptr || pool->thread_count() <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  struct SharedState {
    std::atomic<size_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    size_t live_runners = 0;
  };
  auto state = std::make_shared<SharedState>();
  size_t runners = std::min(pool->thread_count(), count);
  state->live_runners = runners;
  for (size_t r = 0; r < runners; ++r) {
    // `body` is captured by reference: ParallelFor does not return before
    // every runner has finished, so the reference outlives all uses.
    pool->Submit([state, count, &body] {
      for (size_t i = state->next.fetch_add(1); i < count;
           i = state->next.fetch_add(1)) {
        body(i);
      }
      std::unique_lock<std::mutex> lock(state->mutex);
      if (--state->live_runners == 0) state->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->live_runners == 0; });
}

}  // namespace delprop
