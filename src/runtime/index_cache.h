#ifndef DELPROP_RUNTIME_INDEX_CACHE_H_
#define DELPROP_RUNTIME_INDEX_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "relational/database.h"

namespace delprop {

/// Hash index over one attribute position of one relation: value -> row
/// indices in ascending row order. (Ascending order is load-bearing: the
/// evaluator's emission order — and hence view-tuple numbering — must not
/// depend on which position's index serves a lookup.)
using PositionIndex = std::unordered_map<ValueId, std::vector<uint32_t>>;

/// A database-level cache of PositionIndex structures, shared across
/// Evaluate() calls (and across threads) so repeated evaluation of a query
/// set does not rebuild the same per-(relation, position) indexes each time.
///
/// Invalidation: relations are append-only with immutable rows (see
/// relational/relation.h), so an entry is stale exactly when its relation's
/// row count changed since the entry was built. Get() detects this and
/// rebuilds transparently — any Database mutation therefore invalidates the
/// affected entries on the next lookup. Entries handed out earlier stay alive
/// (shared_ptr) and continue to describe the rows that existed when they were
/// built, which is the snapshot semantics the evaluator wants mid-query.
///
/// A cache belongs to one Database. Binding is checked on every call: using
/// the cache with a second database drops all entries (defensive — indexes
/// from different databases must never mix).
///
/// Thread safety: all methods are safe to call concurrently; lookups take a
/// shared lock and builds happen outside any lock (rows are immutable).
class IndexCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;  // includes stale rebuilds
  };

  IndexCache() = default;
  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Returns the index for `position` of `relation`, building (or rebuilding
  /// a stale entry) on miss. If `was_hit` is non-null it reports whether the
  /// call was served from cache.
  std::shared_ptr<const PositionIndex> Get(const Database& database,
                                           RelationId relation,
                                           size_t position,
                                           bool* was_hit = nullptr);

  /// Returns the cached index if present and fresh, nullptr otherwise.
  /// Never builds. A successful Peek counts as a hit (it is a reuse); a
  /// failed one counts nothing — misses are counted only by Get, so
  /// `stats().misses` equals the number of index builds. Used by the
  /// evaluator to prefer already-materialized indexes when picking a probe
  /// position.
  std::shared_ptr<const PositionIndex> Peek(const Database& database,
                                            RelationId relation,
                                            size_t position) const;

  /// Drops every entry (counters are kept).
  void Clear();

  /// Number of live entries.
  size_t size() const;

  /// Cumulative hit/miss counters since construction.
  Stats stats() const {
    return Stats{hits_.load(std::memory_order_relaxed),
                 misses_.load(std::memory_order_relaxed)};
  }

 private:
  struct Entry {
    std::shared_ptr<const PositionIndex> index;
    size_t rows = 0;  // relation row count the index was built against
  };
  using Key = std::pair<RelationId, size_t>;

  /// Drops all entries if `database` is not the one the cache is bound to,
  /// and (re)binds. Caller holds no lock.
  void EnsureBound(const Database& database);

  mutable std::shared_mutex mutex_;
  const Database* bound_database_ = nullptr;
  std::unordered_map<Key, Entry, PairHash<RelationId, size_t>> entries_;
  mutable std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

/// Builds the value -> rows index for one position of `relation` (exposed for
/// the evaluator's uncached path and for tests).
PositionIndex BuildPositionIndex(const Relation& relation, size_t position);

}  // namespace delprop

#endif  // DELPROP_RUNTIME_INDEX_CACHE_H_
