#ifndef DELPROP_COMMON_STATUS_H_
#define DELPROP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace delprop {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kKeyViolation,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kInfeasible,
};

/// Returns a human-readable name of `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight success/error carrier used throughout the library instead of
/// exceptions. A `Status` is either OK or an error code plus message.
///
/// `[[nodiscard]]` so the compiler flags call sites that silently drop an
/// error; the delprop-lint `discarded-status` rule enforces the same contract
/// across translation units (see docs/lint.md).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors for the common error categories.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status KeyViolation(std::string msg) {
    return Status(StatusCode::kKeyViolation, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value — enables `return value;` in functions returning
  /// Result<T> (mirrors absl::StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace delprop

#endif  // DELPROP_COMMON_STATUS_H_
