#include "common/text_table.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace delprop {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-") << std::string(widths[c], '-') << "-|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FmtDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FmtRatio(double numerator, double denominator, int digits) {
  if (denominator == 0.0) {
    return numerator == 0.0 ? "1.000" : "inf";
  }
  if (std::isnan(numerator) || std::isnan(denominator)) return "n/a";
  return FmtDouble(numerator / denominator, digits);
}

}  // namespace delprop
