#include "common/rng.h"

#include <cassert>
#include <numeric>

namespace delprop {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  // xoshiro256** step.
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? Next() : NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t DeriveTaskSeed(uint64_t base_seed, uint64_t task_index) {
  // Two splitmix64 rounds over a mix of base and index: adjacent indices land
  // in unrelated parts of the sequence, and (base, index) pairs never collide
  // for distinct small inputs in practice.
  uint64_t x = base_seed ^ (task_index * 0xd1342543de82ef95ULL + 1);
  SplitMix64(x);
  return SplitMix64(x);
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  // Partial Fisher-Yates: the first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBelow(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace delprop
