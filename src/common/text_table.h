#ifndef DELPROP_COMMON_TEXT_TABLE_H_
#define DELPROP_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace delprop {

/// Plain-text table renderer used by the bench harnesses to print paper-style
/// result tables. Columns are sized to the widest cell; numbers are passed
/// pre-formatted as strings (see Fmt helpers below).
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; it must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> row);

  /// Number of data rows added so far.
  size_t row_count() const { return rows_.size(); }

  /// Renders the table with a header underline and aligned columns.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string FmtDouble(double value, int digits = 3);

/// Formats a ratio as "x.yzw" or "inf"/"n/a" for degenerate denominators.
std::string FmtRatio(double numerator, double denominator, int digits = 3);

}  // namespace delprop

#endif  // DELPROP_COMMON_TEXT_TABLE_H_
