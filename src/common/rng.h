#ifndef DELPROP_COMMON_RNG_H_
#define DELPROP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace delprop {

/// Deterministic 64-bit PRNG (splitmix64 seeded xoshiro256**). All workload
/// generators take an explicit Rng so experiments are reproducible.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams on every platform.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k clamped to n), in random
  /// order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

/// Derives an independent per-task seed from a base seed and a task index.
/// `Rng(DeriveTaskSeed(base, i))` gives task i the same stream no matter how
/// tasks are scheduled across threads — the contract parallel sweeps rely on
/// for run-to-run determinism (see runtime/thread_pool.h).
uint64_t DeriveTaskSeed(uint64_t base_seed, uint64_t task_index);

}  // namespace delprop

#endif  // DELPROP_COMMON_RNG_H_
