#ifndef DELPROP_COMMON_HASH_H_
#define DELPROP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace delprop {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit variant).
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hash functor for std::vector of hashable elements; used for tuple and
/// witness-set keys in unordered containers.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    std::hash<T> h;
    for (const T& x : v) HashCombine(seed, h(x));
    return seed;
  }
};

/// Hash functor for std::pair.
template <typename A, typename B>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = std::hash<A>()(p.first);
    HashCombine(seed, std::hash<B>()(p.second));
    return seed;
  }
};

}  // namespace delprop

#endif  // DELPROP_COMMON_HASH_H_
