#include "dp/base_delta.h"

namespace delprop {
namespace internal {
namespace {

/// Backtracking enumerator for the delta matches of one query. One instance
/// is reused across pivots; Assign always unwinds its bindings, so the
/// valuation is all-unbound between top-level calls.
class DeltaMatcher {
 public:
  DeltaMatcher(const Database& database, const ConjunctiveQuery& query,
               const DeletionSet& mask,
               const std::vector<uint32_t>& first_new_row,
               std::vector<std::pair<Tuple, Witness>>* out)
      : database_(database),
        query_(query),
        mask_(mask),
        first_new_row_(first_new_row),
        out_(out) {
    binding_.resize(query.variable_count(), 0);
    bound_.resize(query.variable_count(), 0);
    witness_.reserve(query.atoms().size());
  }

  /// Enumerates every match whose earliest new-row atom is `pivot_atom`
  /// bound to row `pivot_row`.
  void EnumeratePivot(size_t pivot_atom, uint32_t pivot_row) {
    pivot_atom_ = pivot_atom;
    pivot_row_ = pivot_row;
    Assign(0);
  }

 private:
  void Assign(size_t atom_index) {
    const std::vector<Atom>& atoms = query_.atoms();
    if (atom_index == atoms.size()) {
      Emit();
      return;
    }
    const Atom& atom = atoms[atom_index];
    const Relation& relation = database_.relation(atom.relation);
    // The pivot atom is pinned to its new row; atoms before it see only old
    // rows (their new-row matches are some earlier pivot's), atoms after it
    // see everything live.
    uint32_t begin = 0;
    uint32_t end = static_cast<uint32_t>(relation.row_count());
    if (atom_index == pivot_atom_) {
      begin = pivot_row_;
      end = pivot_row_ + 1;
    } else if (atom_index < pivot_atom_) {
      end = first_new_row_[atom.relation];
    }
    for (uint32_t r = begin; r < end; ++r) {
      if (mask_.Contains(TupleRef{atom.relation, r})) continue;
      size_t unwind = trail_.size();
      if (!BindRow(atom, relation.row(r))) {
        Unwind(unwind);
        continue;
      }
      witness_.push_back(TupleRef{atom.relation, r});
      Assign(atom_index + 1);
      witness_.pop_back();
      Unwind(unwind);
    }
  }

  /// Unifies `row` with the atom's terms, recording fresh bindings on the
  /// trail. On mismatch the caller unwinds to its saved trail mark.
  bool BindRow(const Atom& atom, const Tuple& row) {
    for (size_t p = 0; p < atom.terms.size(); ++p) {
      const Term& term = atom.terms[p];
      if (term.is_constant()) {
        if (row[p] != term.id) return false;
      } else if (bound_[term.id]) {
        if (row[p] != binding_[term.id]) return false;
      } else {
        bound_[term.id] = 1;
        binding_[term.id] = row[p];
        trail_.push_back(term.id);
      }
    }
    return true;
  }

  void Unwind(size_t mark) {
    while (trail_.size() > mark) {
      bound_[trail_.back()] = 0;
      trail_.pop_back();
    }
  }

  void Emit() {
    Tuple values;
    values.reserve(query_.head().size());
    for (const Term& term : query_.head()) {
      values.push_back(term.is_constant() ? term.id : binding_[term.id]);
    }
    out_->emplace_back(std::move(values), witness_);
  }

  const Database& database_;
  const ConjunctiveQuery& query_;
  const DeletionSet& mask_;
  const std::vector<uint32_t>& first_new_row_;
  std::vector<std::pair<Tuple, Witness>>* out_;

  size_t pivot_atom_ = 0;
  uint32_t pivot_row_ = 0;
  std::vector<ValueId> binding_;
  std::vector<uint8_t> bound_;
  std::vector<VarId> trail_;
  Witness witness_;
};

}  // namespace

Status CollectDeltaMatches(const Database& database,
                           const ConjunctiveQuery& query,
                           const DeletionSet& mask,
                           const std::vector<uint32_t>& first_new_row,
                           std::vector<std::pair<Tuple, Witness>>* out) {
  if (first_new_row.size() != database.relation_count()) {
    return Status::InvalidArgument(
        "CollectDeltaMatches needs one first_new_row entry per relation");
  }
  DeltaMatcher matcher(database, query, mask, first_new_row, out);
  const std::vector<Atom>& atoms = query.atoms();
  for (size_t a = 0; a < atoms.size(); ++a) {
    const Relation& relation = database.relation(atoms[a].relation);
    uint32_t row_count = static_cast<uint32_t>(relation.row_count());
    for (uint32_t r = first_new_row[atoms[a].relation]; r < row_count; ++r) {
      matcher.EnumeratePivot(a, r);
    }
  }
  return Status::Ok();
}

}  // namespace internal
}  // namespace delprop
