#include "dp/solution.h"

// VseSolution is a passive aggregate; its behaviour lives in side_effect.cc
// and solver.cc. This translation unit pins the header's include graph.

namespace delprop {}  // namespace delprop
