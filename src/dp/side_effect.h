#ifndef DELPROP_DP_SIDE_EFFECT_H_
#define DELPROP_DP_SIDE_EFFECT_H_

#include <vector>

#include "dp/vse_instance.h"
#include "relational/deletion_set.h"

namespace delprop {

/// Full accounting of what a source deletion ΔD does to the views. Computed
/// from the recorded lineage: a view tuple survives iff some witness is
/// disjoint from ΔD (correct for monotone CQs).
struct SideEffectReport {
  /// Condition (a) of the problem statement: every ΔV tuple eliminated,
  /// i.e. Qi(D \ ΔD) ⊆ Vi \ ΔVi for all i.
  bool eliminates_all_deletions = false;

  /// Preserved view tuples (in V \ ΔV) killed by ΔD — the side-effect.
  std::vector<ViewTupleId> killed_preserved;
  /// ΔV tuples that survive ΔD (empty iff eliminates_all_deletions).
  std::vector<ViewTupleId> surviving_deletions;

  /// The standard objective: Σ si as a count, and its weighted value.
  size_t side_effect_count = 0;
  double side_effect_weight = 0.0;

  /// The per-view breakdown: si = |Vi \ ΔVi| − |Qi(D \ ΔD)| exactly as the
  /// problem statement defines it (one entry per view).
  std::vector<size_t> per_view_side_effect;

  /// The balanced objective (Section III, fixed per DESIGN.md):
  /// weight(ΔV tuples not eliminated) + weight(preserved tuples eliminated).
  double balanced_cost = 0.0;

  /// |ΔD| — the source side-effect counterpart (Tables II/III).
  size_t source_deletion_count = 0;
};

/// Evaluates the deletion against every view of the instance.
SideEffectReport EvaluateDeletion(const VseInstance& instance,
                                  const DeletionSet& deletion);

}  // namespace delprop

#endif  // DELPROP_DP_SIDE_EFFECT_H_
