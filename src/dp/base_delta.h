#ifndef DELPROP_DP_BASE_DELTA_H_
#define DELPROP_DP_BASE_DELTA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "query/conjunctive_query.h"
#include "query/view.h"
#include "relational/database.h"
#include "relational/deletion_set.h"

namespace delprop {

/// One base-tuple insertion of a BaseDelta: a pre-interned tuple destined
/// for `relation`. Use Database::dict() to intern text values first.
struct BaseInsert {
  RelationId relation = 0;
  Tuple tuple;
};

/// A batch of live base-data changes, applied atomically by
/// VseInstance::ApplyDelta. Inserted rows are physically appended to the
/// database; deleted rows join the instance's base mask (row indices stay
/// stable, matching the repo-wide logical-deletion contract). Deletes are
/// validated against the pre-delta database, so a row inserted by this same
/// delta cannot also be deleted by it.
struct BaseDelta {
  std::vector<BaseInsert> inserts;
  std::vector<TupleRef> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
};

/// Knobs for VseInstance::ApplyDelta.
struct ApplyDeltaOptions {
  /// Reject — with InvalidArgument naming the relation/row — any delete of a
  /// base row that still occurs in a witness of a live view tuple. For
  /// callers doing pure base-table cleanup who want proof the views are
  /// untouched; off by default because removing view tuples is the point of
  /// deletion propagation.
  bool forbid_witnessed_deletes = false;
  /// Patch-vs-rebuild threshold: the compiled PlanCore is spliced from the
  /// previous core while (removed + added) witnesses stay within this
  /// fraction of the old witness count; larger deltas drop the core and the
  /// next compiled() pays a counted full rebuild instead.
  double patch_threshold = 0.5;
};

/// What one ApplyDelta did: the size of the induced view delta and which
/// plan-maintenance path ran.
struct ApplyDeltaReport {
  size_t view_tuples_added = 0;
  size_t view_tuples_removed = 0;
  size_t witnesses_added = 0;
  size_t witnesses_removed = 0;
  bool core_patched = false;  // PlanCore spliced from the previous core
  bool core_rebuilt = false;  // threshold exceeded: core dropped for rebuild
};

namespace internal {

/// Appends every (head values, witness) match of `query` over D \ mask whose
/// witness uses at least one row with index ≥ first_new_row[relation] — i.e.
/// exactly the matches created by appending those rows. Each new witness is
/// emitted once (canonical first-new-atom decomposition: the earliest atom
/// bound to a new row is pinned, earlier atoms range over old rows only), in
/// deterministic (pivot atom, pivot row, backtracking) order. Work is
/// proportional to the delta's join neighborhood, never to the old matches.
/// `first_new_row` must have one entry per relation.
Status CollectDeltaMatches(const Database& database,
                           const ConjunctiveQuery& query,
                           const DeletionSet& mask,
                           const std::vector<uint32_t>& first_new_row,
                           std::vector<std::pair<Tuple, Witness>>* out);

}  // namespace internal
}  // namespace delprop

#endif  // DELPROP_DP_BASE_DELTA_H_
